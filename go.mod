module github.com/evolvefd/evolvefd

go 1.24
