package evolvefd

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/evolvefd/evolvefd/internal/replica"
	"github.com/evolvefd/evolvefd/internal/wal"
)

// FollowerOptions tunes a follower session. The zero value is usable: real
// filesystem, pin id "follower", unbounded catch-up batches, five retries
// with 5ms exponential backoff.
type FollowerOptions struct {
	// FS overrides the filesystem the follower reads the leader's directory
	// through; nil means the real one. Fault-injection tests pass a
	// wal.ErrFS here.
	FS wal.FS
	// ID names this follower's pin file in the leader's directory, so leader
	// retention keeps the segments the follower still needs. Followers
	// sharing a leader must use distinct ids.
	ID string
	// NoPin disables pinning, for followers over a read-only copy of the
	// leader's directory.
	NoPin bool
	// MaxOpsPerCatchUp bounds the ops one CatchUp call replays (0 means no
	// bound), trading convergence for bounded serving latency under a
	// fast-writing leader.
	MaxOpsPerCatchUp int
	// RetryLimit bounds consecutive retries of a transient read error before
	// CatchUp gives up and returns it (the follower stays usable; a later
	// CatchUp starts fresh). RetryBackoff is the first sleep, doubling per
	// retry. Sleep overrides time.Sleep for tests.
	RetryLimit   int
	RetryBackoff time.Duration
	Sleep        func(time.Duration)
}

// FollowerStats describes a follower's replication progress and health.
type FollowerStats struct {
	// Seq is the leader log generation being tailed; Records and Bytes count
	// everything replayed since OpenFollower, across resyncs.
	Seq     uint64
	Records uint64
	Bytes   int64
	// SegmentLag and ByteLag measure the distance to the leader's durable
	// head as of the last CatchUp or Stats call: how many generations ahead
	// the newest on-disk state is, and roughly how many unconsumed log bytes
	// remain.
	SegmentLag uint64
	ByteLag    int64
	// Retries counts transient read errors survived; Resyncs counts
	// re-bootstraps from a snapshot (after falling behind retention or
	// quarantining corruption); Quarantines counts segments abandoned as
	// corrupt. Degraded is set while the follower serves stale state because
	// no readable snapshot past a quarantined segment exists yet — it clears
	// on the next successful resync.
	Retries     int
	Resyncs     int
	Quarantines int
	Degraded    bool
}

// Follower is a read-only replica of a durable session: it bootstraps from
// the leader's newest valid snapshot, tails the leader's write-ahead log,
// and replays every record through the same code paths recovery uses — so
// at every checkpoint (a CatchUp that drained the log) it answers Check,
// Discover and Suggestions queries identically to the leader.
//
// A follower never mutates the leader's state; the only file it writes in
// the leader's directory is its retention pin. It survives the leader
// compacting mid-tail (the seal marker walks it onto the next generation),
// falling behind retention and segment corruption (resync from the newest
// valid snapshot, surfaced in Stats), and transient read errors (bounded
// retry with exponential backoff).
//
// Follower methods are safe for concurrent use with each other; reads
// observe the state as of the last completed CatchUp.
type Follower struct {
	mu   sync.Mutex
	dir  string
	opts FollowerOptions

	s    *Session
	tail *replica.Tailer

	stats  FollowerStats
	closed bool
	// quarantined is the highest segment abandoned as corrupt; a resync must
	// land strictly past it or it would replay the same damage.
	quarantined uint64
}

// OpenFollower opens a read-only follower over a leader's data directory.
// It bootstraps from the newest valid snapshot but does not replay the log
// tail — call CatchUp to converge on the leader's head.
func OpenFollower(dir string, opts FollowerOptions) (*Follower, error) {
	if opts.ID == "" {
		opts.ID = "follower"
	}
	if opts.RetryLimit <= 0 {
		opts.RetryLimit = 5
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 5 * time.Millisecond
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	f := &Follower{dir: dir, opts: opts}
	s, seq, err := f.bootstrap(0)
	if err != nil {
		return nil, err
	}
	f.s = s
	f.tail = replica.NewTailer(opts.FS, dir, seq)
	f.stats.Seq = seq
	f.writePin(seq)
	return f, nil
}

// bootstrap restores a session from the newest snapshot in the leader's
// directory that both reads back valid and lies strictly past minSeq.
func (f *Follower) bootstrap(minSeq uint64) (*Session, uint64, error) {
	snaps, _, err := wal.ListStatesFS(f.opts.FS, f.dir)
	if err != nil {
		return nil, 0, err
	}
	if len(snaps) == 0 {
		return nil, 0, fmt.Errorf("evolvefd: no snapshot in %s (not a leader directory?)", f.dir)
	}
	var firstErr error
	for i := len(snaps) - 1; i >= 0; i-- {
		if snaps[i] <= minSeq {
			break
		}
		snap, err := wal.ReadSnapshotFS(f.opts.FS, f.dir, snaps[i])
		var s *Session
		if err == nil {
			s, err = restoreSnapshot(snap)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("snapshot %d: %w", snaps[i], err)
			}
			continue
		}
		return s, snaps[i], nil
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("no snapshot past %d", minSeq)
	}
	return nil, 0, fmt.Errorf("evolvefd: no usable snapshot in %s: %w", f.dir, firstErr)
}

// CatchUp replays the leader's log from the follower's position toward the
// leader's flushed head, returning how many ops it applied. A nil error
// means the follower either drained everything durable (a checkpoint — its
// answers now match the leader's) or hit its MaxOpsPerCatchUp budget, or is
// serving degraded after unrecoverable corruption (see Stats). A non-nil
// error is a transient failure that outlived the retry budget; the follower
// remains usable and a later CatchUp starts fresh.
func (f *Follower) CatchUp() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrSessionClosed
	}
	applied, err := f.catchUpLocked()
	f.refreshLocked()
	return applied, err
}

func (f *Follower) catchUpLocked() (int, error) {
	applied := 0
	retries := 0
	corruptRetried := false
	resyncs := 0
	for {
		max := 0
		if b := f.opts.MaxOpsPerCatchUp; b > 0 {
			max = b - applied
			if max <= 0 {
				return applied, nil
			}
		}
		ops, err := f.tail.Poll(max)
		for _, op := range ops {
			if aerr := f.s.applyOp(op); aerr != nil {
				// A checksum-valid record the session cannot apply is stream
				// corruption wearing a different coat. The tailer has already
				// moved past the record, so a re-read would silently skip it —
				// quarantine straight away, no retry.
				seq, off := f.tail.Pos()
				err = &replica.CorruptError{Seq: seq, Offset: off, Err: aerr}
				corruptRetried = true
				break
			}
			applied++
		}
		if err == nil {
			if len(ops) == 0 {
				return applied, nil
			}
			retries, corruptRetried = 0, false
			continue
		}
		var cerr *replica.CorruptError
		switch {
		case errors.As(err, &cerr):
			if !corruptRetried {
				// One free re-read shields against racing a leader flush
				// mid-record; real corruption is still corrupt the second time.
				corruptRetried = true
				continue
			}
			corruptRetried = false
			f.stats.Quarantines++
			if cerr.Seq > f.quarantined {
				f.quarantined = cerr.Seq
			}
			if !f.resyncLocked(f.quarantined) {
				// Nothing valid past the damage yet: serve what we have and
				// say so, rather than dying. The next CatchUp tries again.
				f.stats.Degraded = true
				return applied, nil
			}
		case errors.Is(err, replica.ErrFellBehind):
			if resyncs++; resyncs > 3 {
				return applied, fmt.Errorf("evolvefd: follower cannot converge on %s: %w", f.dir, err)
			}
			if !f.resyncLocked(f.quarantined) {
				f.stats.Degraded = true
				return applied, nil
			}
		default:
			if retries >= f.opts.RetryLimit {
				return applied, err
			}
			f.stats.Retries++
			f.opts.Sleep(f.opts.RetryBackoff << retries)
			retries++
		}
	}
}

// resyncLocked re-bootstraps from the newest valid snapshot strictly past
// minSeq, reporting whether one was found.
func (f *Follower) resyncLocked(minSeq uint64) bool {
	s, seq, err := f.bootstrap(minSeq)
	if err != nil {
		return false
	}
	f.s = s
	f.tail.Reset(seq)
	f.stats.Resyncs++
	f.stats.Degraded = false
	return true
}

// refreshLocked updates the position, lag and pin after a catch-up pass.
func (f *Follower) refreshLocked() {
	seq, _ := f.tail.Pos()
	if seq != f.stats.Seq {
		f.writePin(seq)
	}
	f.stats.Seq = seq
	f.stats.Records, f.stats.Bytes = f.tail.Consumed()
	if segs, bytes, err := f.tail.Lag(); err == nil {
		f.stats.SegmentLag, f.stats.ByteLag = segs, bytes
	}
}

// writePin advertises the oldest generation this follower still needs.
// Pinning is advisory — a failure (say, a read-only leader directory) makes
// the follower prunable, not broken — so errors are dropped.
func (f *Follower) writePin(seq uint64) {
	if f.opts.NoPin {
		return
	}
	_ = wal.WritePin(f.opts.FS, f.dir, f.opts.ID, seq)
}

// Stats returns a snapshot of the follower's replication counters, with the
// lag figures refreshed against the leader's directory.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.closed {
		if segs, bytes, err := f.tail.Lag(); err == nil {
			f.stats.SegmentLag, f.stats.ByteLag = segs, bytes
		}
	}
	return f.stats
}

// Close removes the follower's retention pin and marks it closed. The
// replica state stays readable; only CatchUp is refused afterwards.
func (f *Follower) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	if f.opts.NoPin {
		return nil
	}
	return wal.RemovePin(f.opts.FS, f.dir, f.opts.ID)
}

// DataDir returns the leader directory this follower tails.
func (f *Follower) DataDir() string { return f.dir }

// session returns the inner replica session for a read delegation. The
// inner session is ephemeral (its durability hooks are nil), so even the
// delegated methods that touch caches or advisor baselines never write a
// byte anywhere.
func (f *Follower) session() *Session {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.s
}

// Check reports the violated defined FDs as of the last CatchUp.
func (f *Follower) Check() []Violation { return f.session().Check() }

// Measures evaluates one defined FD's measures as of the last CatchUp.
func (f *Follower) Measures(label string) (Measures, error) { return f.session().Measures(label) }

// Repair searches antecedent extensions for a violated FD, read-only.
func (f *Follower) Repair(label string, opts Options) ([]Suggestion, error) {
	return f.session().Repair(label, opts)
}

// Discover runs full FD discovery over the replicated instance.
func (f *Follower) Discover(opts DiscoveryOptions) ([]DiscoveredFD, error) {
	return f.session().Discover(opts)
}

// DiscoverIncremental discovers over the replica's maintained borders.
func (f *Follower) DiscoverIncremental(opts DiscoveryOptions) ([]DiscoveredFD, error) {
	return f.session().DiscoverIncremental(opts)
}

// Suggestions reports the advisor feed as of the last CatchUp. The
// emerged/broken baseline is replica-local state: it matches the leader's
// when the two call Suggestions at the same checkpoints (the baseline is
// itself replicated through snapshots, so a fresh follower starts from the
// leader's last checkpointed baseline).
func (f *Follower) Suggestions() ([]AdvisorSuggestion, error) { return f.session().Suggestions() }

// Labels lists the defined FD labels in definition order.
func (f *Follower) Labels() []string { return f.session().Labels() }

// CacheStats reports the replica's measure-cache reuse counters.
func (f *Follower) CacheStats() (reused, recomputed uint64) { return f.session().CacheStats() }

// FDText formats one defined FD.
func (f *Follower) FDText(label string) (string, error) { return f.session().FDText(label) }

// LiveRows returns the replicated live row count.
func (f *Follower) LiveRows() int { return f.session().LiveRows() }

// Generation returns the replica counter's generation clock.
func (f *Follower) Generation() uint64 { return f.session().Generation() }

// Epoch returns the replica's storage epoch.
func (f *Follower) Epoch() uint64 { return f.session().Epoch() }

// MemStats describes the replica's storage and incremental-state footprint.
func (f *Follower) MemStats() MemStats { return f.session().MemStats() }

// DiscoveryStats describes the replica's maintained discovery borders.
func (f *Follower) DiscoveryStats() DiscoveryStats { return f.session().DiscoveryStats() }

// Consistent re-derives the replica's incremental state from scratch and
// compares — the expensive invariant check, exposed for tests.
func (f *Follower) Consistent() bool { return f.session().Consistent() }

// Relation exposes the replicated relation for read-only inspection.
func (f *Follower) Relation() *Relation { return f.session().Relation() }
