package evolvefd_test

import (
	"reflect"
	"testing"

	evolvefd "github.com/evolvefd/evolvefd"
	"github.com/evolvefd/evolvefd/internal/datasets"
)

func TestSessionCompactBasics(t *testing.T) {
	s := placesSession(t)
	total := s.Relation().NumRows()

	// Compacting a clean instance is a no-op.
	st := s.Compact()
	if st.Reclaimed != 0 || st.Epoch != 0 {
		t.Fatalf("no-op compaction = %+v", st)
	}

	if err := s.Delete(1, 3); err != nil {
		t.Fatal(err)
	}
	mem := s.MemStats()
	if mem.Tombstones != 2 || mem.PhysicalRows != total || mem.ReclaimableBytes == 0 {
		t.Fatalf("pre-compaction MemStats = %+v", mem)
	}

	st = s.Compact()
	if st.Reclaimed != 2 || st.OldRows != total || st.NewRows != total-2 || st.Epoch != 1 {
		t.Fatalf("compaction stats = %+v", st)
	}
	if st.Moved != total-2-1 {
		t.Fatalf("Moved = %d, want %d (everything after row 1)", st.Moved, total-2-1)
	}
	if s.Epoch() != 1 || s.LiveRows() != total-2 || s.Relation().NumRows() != total-2 {
		t.Fatalf("post-compaction shape: epoch %d, live %d, physical %d",
			s.Epoch(), s.LiveRows(), s.Relation().NumRows())
	}
	mem = s.MemStats()
	if mem.Tombstones != 0 || mem.ReclaimableBytes != 0 || mem.Compactions != 1 {
		t.Fatalf("post-compaction MemStats = %+v", mem)
	}
}

// TestSessionCompactPreservesState is the facade-level differential: Check,
// Measures, Repair and the discovered cover must be identical before and
// after a compaction, and the unchanged measures must be served from cache
// across the epoch boundary (reused, not recomputed).
func TestSessionCompactPreservesState(t *testing.T) {
	s := placesSession(t)
	// Seed the incremental discoverer before the deletes, so the cover
	// comparisons below exercise maintained state rather than fresh seeds.
	if _, err := s.DiscoverIncremental(evolvefd.DiscoveryOptions{MaxLHS: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(2, 5); err != nil {
		t.Fatal(err)
	}
	check0 := s.Check()
	repair0, err := s.Repair("F1", evolvefd.Options{MaxAdded: 2})
	if err != nil {
		t.Fatal(err)
	}
	cover0, err := s.DiscoverIncremental(evolvefd.DiscoveryOptions{MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	reused0, recomputed0 := s.CacheStats()

	if st := s.Compact(); st.Reclaimed != 2 {
		t.Fatalf("compaction stats = %+v", st)
	}

	check1 := s.Check()
	if !reflect.DeepEqual(check0, check1) {
		t.Fatalf("Check diverged across compaction:\n before %+v\n after  %+v", check0, check1)
	}
	repair1, err := s.Repair("F1", evolvefd.Options{MaxAdded: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repair0, repair1) {
		t.Fatalf("Repair diverged across compaction:\n before %+v\n after  %+v", repair0, repair1)
	}
	cover1, err := s.DiscoverIncremental(evolvefd.DiscoveryOptions{MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cover0, cover1) {
		t.Fatalf("cover diverged across compaction:\n before %+v\n after  %+v", cover0, cover1)
	}
	if st := s.DiscoveryStats(); st.Reseeds != 0 {
		t.Fatalf("compaction reseeded discovery %d times, want 0", st.Reseeds)
	}
	// The post-compaction Check recomputed nothing: every measure crossed the
	// epoch boundary in cache.
	reused1, recomputed1 := s.CacheStats()
	if recomputed1 != recomputed0 {
		t.Fatalf("compaction forced %d measure recomputations, want 0", recomputed1-recomputed0)
	}
	if reused1 == reused0 {
		t.Fatal("post-compaction Check did not touch the measure cache")
	}
}

// TestSessionCompactThenEvolve streams DML across several compactions and
// checks the session against a fresh session over the equivalent dense
// instance at the end.
func TestSessionCompactThenEvolve(t *testing.T) {
	s := placesSession(t)
	if err := s.Delete(0, 4, 7); err != nil {
		t.Fatal(err)
	}
	s.Compact()
	// Row ids are dense again; keep mutating in the new epoch.
	if err := s.AppendStrings("Newtown", "Granville", "Glendale", "999", "974-2345", "Boxwood", "10211", "NY", "NY"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(2); err != nil {
		t.Fatal(err)
	}
	s.Compact()
	if s.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", s.Epoch())
	}

	fresh := evolvefd.NewSession(s.Relation().Clone("dense"))
	for _, label := range []string{"F1", "F2", "F3"} {
		if err := fresh.Define(label, datasets.PlacesFDs()[label]); err != nil {
			t.Fatal(err)
		}
	}
	got, want := s.Check(), fresh.Check()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("evolved session diverged from dense replay:\n got %+v\nwant %+v", got, want)
	}
	for _, label := range []string{"F1", "F2", "F3"} {
		gm, err1 := s.Measures(label)
		wm, err2 := fresh.Measures(label)
		if err1 != nil || err2 != nil || gm != wm {
			t.Fatalf("%s measures diverged: %+v vs %+v (%v/%v)", label, gm, wm, err1, err2)
		}
	}
}

func TestSessionAutoCompact(t *testing.T) {
	s := placesSession(t)
	s.EnableAutoCompact(evolvefd.AutoCompactOptions{TombstoneRatio: 0.25, MinTombstones: 2})
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 0 {
		t.Fatal("one tombstone of 11 rows must not trigger the policy")
	}
	if err := s.Delete(3, 5); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 {
		t.Fatalf("3/11 tombstones ≥ 25%% with ≥ 2 minimum must compact; epoch = %d", s.Epoch())
	}
	if st := s.MemStats(); st.Tombstones != 0 || st.Compactions != 1 || st.LiveRows != 8 {
		t.Fatalf("post-auto-compaction MemStats = %+v", st)
	}
	s.DisableAutoCompact()
	if err := s.Delete(0, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 || s.MemStats().Tombstones != 4 {
		t.Fatal("disabled policy must leave tombstones in place")
	}
	// The evolved instance still answers correctly.
	if s.LiveRows() != 4 {
		t.Fatalf("live = %d, want 4", s.LiveRows())
	}
}
