// Quickstart: define a relation, declare an FD the data violates, and let
// the library propose how to evolve it. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	evolvefd "github.com/evolvefd/evolvefd"
)

// Sales log where a "city determines warehouse" rule used to hold — until
// the company opened a second warehouse in Milan.
const salesCSV = `order:int,city,warehouse,carrier,weight:float
1,Milan,MXP-1,fastship,12.5
2,Milan,MXP-1,fastship,3.0
3,Rome,FCO-1,slowfreight,80.0
4,Milan,MXP-2,slowfreight,95.5
5,Rome,FCO-1,fastship,1.2
6,Milan,MXP-2,slowfreight,60.0
7,Turin,TRN-1,fastship,7.7
`

func main() {
	rel, err := evolvefd.OpenCSVReader("sales", strings.NewReader(salesCSV), evolvefd.CSVOptions{})
	if err != nil {
		log.Fatal(err)
	}
	session := evolvefd.NewSession(rel)
	session.MustDefine("CityWarehouse", "city -> warehouse")

	// 1. Detect: which declared dependencies does the data violate?
	for _, v := range session.Check() {
		fmt.Printf("violated: %s  confidence %s = %.2f, goodness %d\n",
			v.FD, v.Measures.ConfidenceRatio, v.Measures.Confidence, v.Measures.Goodness)

		// 2. Propose: ranked antecedent extensions that make it exact again.
		suggestions, err := session.Repair(v.Label, evolvefd.Options{})
		if err != nil {
			log.Fatal(err)
		}
		for i, s := range suggestions {
			fmt.Printf("  option %d: add %v  →  %s (confidence %s, goodness %d)\n",
				i+1, s.Added, s.FD, s.Measures.ConfidenceRatio, s.Measures.Goodness)
		}

		// 3. Decide: the designer accepts the top-ranked repair. Here the
		//    carrier column explains the split (heavy Milan freight ships
		//    from the new warehouse), so the evolved rule is
		//    city, carrier → warehouse.
		if len(suggestions) > 0 {
			if err := session.Accept(v.Label, suggestions[0]); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("accepted: %s\n", suggestions[0].FD)
		}
	}

	fmt.Printf("all dependencies satisfied: %v\n", session.Consistent())
}
