// TPCH reproduces a laptop-scale slice of the paper's §6.1 synthetic-data
// study: generate the eight TPC-H tables, declare the Table 5 dependencies,
// and time FindFDRepairs on each. Run with:
//
//	go run ./examples/tpch            # SF 0.005
//	go run ./examples/tpch -sf 0.1    # the paper's "100MB" database
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/texttable"
	"github.com/evolvefd/evolvefd/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor (1 = the paper's 1GB database)")
	firstOnly := flag.Bool("first", false, "stop at the first repair instead of finding all")
	flag.Parse()

	fmt.Printf("generating TPC-H at SF %g …\n", *sf)
	genStart := time.Now()
	db := tpch.Generate(*sf, 1)
	fmt.Printf("generated %d tables in %s\n\n", db.Len(), time.Since(genStart).Round(time.Millisecond))

	mode := "find all repairs (depth ≤ 3)"
	if *firstOnly {
		mode = "find the first repair"
	}
	tab := texttable.New("Table 5 workload — "+mode,
		"table", "FD", "rows", "confidence", "repairs", "time").AlignRight(2, 3, 4, 5)
	for _, name := range tpch.TableNames {
		rel, err := db.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		fd, err := core.ParseFD(rel.Schema(), name, tpch.Table5FDs()[name])
		if err != nil {
			log.Fatal(err)
		}
		counter := pli.NewPLICounter(rel)
		start := time.Now()
		res := core.FindRepairs(counter, fd, core.RepairOptions{
			FirstOnly: *firstOnly,
			MaxAdded:  3,
		})
		elapsed := time.Since(start)
		tab.Add(name, tpch.Table5FDs()[name],
			fmt.Sprintf("%d", rel.NumRows()),
			fmt.Sprintf("%.3f", res.Initial.Confidence),
			fmt.Sprintf("%d", len(res.Repairs)),
			elapsed.Round(time.Microsecond).String())
	}
	fmt.Print(tab.Render())
	fmt.Println("\nexpected shape (paper, Table 5): lineitem dominates by orders of magnitude;")
	fmt.Println("nation/region are trivial; processing grows with arity more than cardinality.")
}
