// Evolution simulates the scenario that motivates the paper: reality
// changes under a running database, systematic violations of a constraint
// appear, and the periodic validation process evolves the constraint
// instead of "repairing" the data.
//
// A telecom schema starts with the rule district → area_code. The regulator
// then splits area codes by subscriber line type (an overlay plan), so new
// rows violate the rule — not because they are dirty, but because the rule
// is stale. The advisor detects the violation, proposes extensions ranked
// by confidence and goodness, and the accepted repair district, line_type →
// area_code captures the new reality. Run with:
//
//	go run ./examples/evolution
package main

import (
	"fmt"
	"log"

	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/datasets"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
)

func main() {
	// Era 1: area_code is a function of district alone. line_type and the
	// other columns exist but do not influence it yet.
	before := datasets.Synthesize("subscribers", 5000, 42, []datasets.ColumnSpec{
		{Name: "subscriber", Card: 0},
		{Name: "district", Card: 40, Salt: 1},
		{Name: "line_type", Card: 3, Salt: 2},
		{Name: "area_code", Card: 40, DerivedFrom: []int{1}, Salt: 3},
		{Name: "tariff", Card: 12, Salt: 4},
	})

	check := func(r *relation.Relation, label string) bool {
		counter := pli.NewPLICounter(r)
		fd, err := core.ParseFD(r.Schema(), "AC", "district -> area_code")
		if err != nil {
			log.Fatal(err)
		}
		m := core.Compute(counter, fd)
		fmt.Printf("[%s] %s: confidence %s = %.3f, goodness %d, exact=%v\n",
			label, fd.FormatWith(r.Schema()), m.ConfidenceRatio(), m.Confidence, m.Goodness, m.Exact())
		return m.Exact()
	}

	fmt.Println("== era 1: the original constraint models reality ==")
	if !check(before, "era 1") {
		log.Fatal("era-1 data should satisfy the FD")
	}

	// Era 2: the overlay plan. New contracts get area codes that also
	// depend on the line type; existing subscribers keep their old codes.
	// The live table accumulates both generations, distinguished by the
	// contract plan column.
	after := datasets.Synthesize("subscribers", 5000, 43, []datasets.ColumnSpec{
		{Name: "subscriber", Card: 0},
		{Name: "district", Card: 40, Salt: 1},
		{Name: "line_type", Card: 3, Salt: 2},
		{Name: "area_code", Card: 80, DerivedFrom: []int{1, 2}, Salt: 5},
		{Name: "tariff", Card: 12, Salt: 4},
	})
	schema := relation.MustSchema(
		relation.Column{Name: "subscriber", Kind: relation.KindString},
		relation.Column{Name: "district", Kind: relation.KindString},
		relation.Column{Name: "line_type", Kind: relation.KindString},
		relation.Column{Name: "area_code", Kind: relation.KindString},
		relation.Column{Name: "tariff", Kind: relation.KindString},
		relation.Column{Name: "plan", Kind: relation.KindString},
	)
	merged := relation.New("subscribers", schema)
	for row := 0; row < before.NumRows(); row++ {
		merged.MustAppend(append(before.Row(row), relation.String("plan-2015"))...)
	}
	for row := 0; row < after.NumRows(); row++ {
		merged.MustAppend(append(after.Row(row), relation.String("plan-2016"))...)
	}

	fmt.Println("\n== era 2: overlay plan rolls out; violations accumulate ==")
	if check(merged, "era 2") {
		log.Fatal("era-2 data should violate the FD")
	}

	// Periodic validation: the advisor ranks the violation and proposes
	// evolutions. AcceptFirst plays the designer approving the top-ranked
	// proposal.
	counter := pli.NewPLICounter(merged)
	fd, err := core.ParseFD(merged.Schema(), "AC", "district -> area_code")
	if err != nil {
		log.Fatal(err)
	}
	advisor := core.NewAdvisor(counter, []core.FD{fd}, core.ScopeAllAttributes,
		core.RepairOptions{})
	steps := advisor.RunSession(core.AcceptFirst)
	fmt.Println("\n== advisor session ==")
	fmt.Print(core.SessionSummary(merged.Schema(), steps))

	if !advisor.Consistent() {
		log.Fatal("advisor should have evolved the FD to consistency")
	}
	evolved := advisor.FDs()[0]
	fmt.Printf("\nevolved constraint: %s\n", evolved.FormatWith(merged.Schema()))
	fmt.Println("the constraint now encodes the overlay plan — data untouched")
}
