// Places walks the paper's running example end to end: the Figure 1
// relation, the §3 measures, the Figure 2 clusterings, and the Tables 1–3
// candidate rankings, finishing with the §4.3 two-attribute repair of F4.
// Run with:
//
//	go run ./examples/places
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/evolvefd/evolvefd/internal/bench"
	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/datasets"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/texttable"
)

func main() {
	r := datasets.Places()

	// Figure 1: the instance itself.
	tab := texttable.New("Figure 1 — relation Places", append([]string{"tid"}, r.Schema().Names()...)...)
	for row := 0; row < r.NumRows(); row++ {
		cells := []string{fmt.Sprintf("t%d", row+1)}
		for col := 0; col < r.NumCols(); col++ {
			cells = append(cells, r.Value(row, col).String())
		}
		tab.Add(cells...)
	}
	fmt.Print(tab.Render())
	fmt.Println()

	// §3 measures, §4.1 order, Figure 2, Tables 1–3 via the harness.
	for _, id := range []string{"running-example", "figure2", "table1", "table2", "table3"} {
		e, ok := bench.Lookup(id)
		if !ok {
			log.Fatalf("experiment %s missing", id)
		}
		fmt.Printf("==== %s ====\n", e.Title)
		if err := e.Run(bench.Config{}, os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// §4.3: repairing F4 takes two attributes; both minimal repairs tie.
	counter := pli.NewPLICounter(r)
	f4, err := core.ParseFD(r.Schema(), "F4", datasets.PlacesF4())
	if err != nil {
		log.Fatal(err)
	}
	res := core.FindRepairs(counter, f4, core.RepairOptions{PruneNonMinimal: true})
	fmt.Printf("==== §4.3: minimal repairs of %s ====\n", f4.FormatWith(r.Schema()))
	for _, rep := range res.Repairs {
		fmt.Printf("  add {%s} → %s  (%s)\n",
			r.Schema().FormatSet(rep.Added), rep.FD.FormatWith(r.Schema()), rep.Measures)
	}
	fmt.Printf("search stats: %d candidates evaluated, %d nodes expanded\n",
		res.Stats.Evaluated, res.Stats.Expanded)
}
