package evolvefd_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	evolvefd "github.com/evolvefd/evolvefd"
	"github.com/evolvefd/evolvefd/internal/datasets"
)

func TestSessionAppendBasics(t *testing.T) {
	s := placesSession(t)
	before := s.Relation().NumRows()
	if err := s.AppendStrings(
		"Milan", "Lombardy", "Brera", "Via Verdi", "02", "5551234", "20121", "IT", "North",
	); err != nil {
		t.Fatal(err)
	}
	if got := s.Relation().NumRows(); got != before+1 {
		t.Fatalf("rows after append = %d, want %d", got, before+1)
	}
	if err := s.AppendStrings("too", "few"); err == nil {
		t.Fatal("arity mismatch must error")
	}
	if err := s.Append(); err == nil {
		t.Fatal("empty tuple must error")
	}
}

// TestSessionAppendMatchesFreshSession is the facade-level differential
// test: after any sequence of appends, Check and Measures through the
// incremental session must equal a fresh session built over the same final
// data.
func TestSessionAppendMatchesFreshSession(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := placesSession(t)
	// Interleave appends and checks; random rows reuse a small value pool so
	// some appends change no projection of some FDs.
	pool := []string{"a", "b", "c"}
	for round := 0; round < 6; round++ {
		for i := 0; i < 1+rng.Intn(3); i++ {
			cells := make([]string, s.Relation().NumCols())
			for c := range cells {
				cells[c] = pool[rng.Intn(len(pool))] + fmt.Sprint(rng.Intn(3))
			}
			if err := s.AppendStrings(cells...); err != nil {
				t.Fatal(err)
			}
		}
		fresh := evolvefd.NewSession(s.Relation().Clone("fresh"))
		for _, label := range s.Labels() {
			text, err := s.FDText(label)
			if err != nil {
				t.Fatal(err)
			}
			spec := text[strings.Index(text, ":")+1:]
			if err := fresh.Define(label, spec); err != nil {
				t.Fatal(err)
			}
		}
		gotV, wantV := s.Check(), fresh.Check()
		if len(gotV) != len(wantV) {
			t.Fatalf("round %d: %d violations incrementally, %d fresh", round, len(gotV), len(wantV))
		}
		for i := range gotV {
			if gotV[i] != wantV[i] {
				t.Fatalf("round %d violation %d:\nincremental %+v\nfresh       %+v",
					round, i, gotV[i], wantV[i])
			}
		}
		for _, label := range s.Labels() {
			got, err := s.Measures(label)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Measures(label)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("round %d %s: incremental %+v, fresh %+v", round, label, got, want)
			}
		}
	}
}

func TestSessionAppendReusesUnchangedMeasures(t *testing.T) {
	s := placesSession(t)
	s.Check()
	_, cold := s.CacheStats()
	if cold == 0 {
		t.Fatal("first Check must compute measures")
	}
	// Re-checking an unchanged instance must be pure cache hits.
	s.Check()
	reused, recomputed := s.CacheStats()
	if recomputed != cold {
		t.Fatalf("unchanged re-check recomputed %d measures", recomputed-cold)
	}
	if reused == 0 {
		t.Fatal("unchanged re-check must reuse cached measures")
	}
	// Appending an exact duplicate of row 0 creates no new cluster anywhere:
	// every FD must be served from cache again.
	row := s.Relation().Row(0)
	if err := s.Append(row...); err != nil {
		t.Fatal(err)
	}
	s.Check()
	_, after := s.CacheStats()
	if after != cold {
		t.Fatalf("duplicate append recomputed %d measures, want 0", after-cold)
	}
	gen := s.Generation()
	if gen < 2 {
		t.Fatalf("generation = %d, want ≥ 2 after an append batch", gen)
	}
}

func TestSessionAppendRepairStillWorks(t *testing.T) {
	// Repair goes through the delegate counter; it must see appended rows.
	s := evolvefd.NewSession(datasets.Places())
	s.MustDefine("F1", datasets.PlacesFDs()["F1"])
	if err := s.AppendStrings(
		"Segrate", "Lombardy", "MI", "Via Nuova", "02", "5559999", "20090", "IT", "North",
	); err != nil {
		t.Fatal(err)
	}
	suggestions, err := s.Repair("F1", evolvefd.Options{FirstOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(suggestions) == 0 {
		t.Fatal("no repair found after append")
	}
	if !suggestions[0].Measures.Exact {
		t.Fatal("repair must be exact on the grown instance")
	}
	if err := s.Accept("F1", suggestions[0]); err != nil {
		t.Fatal(err)
	}
	m, err := s.Measures("F1")
	if err != nil || !m.Exact {
		t.Fatalf("accepted repair not exact on grown instance: %+v %v", m, err)
	}
}
