package evolvefd_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	evolvefd "github.com/evolvefd/evolvefd"
	"github.com/evolvefd/evolvefd/internal/datasets"
	"github.com/evolvefd/evolvefd/internal/wal"
)

// noSleep makes follower retry backoff instantaneous in tests that don't
// inspect it.
func noSleep(time.Duration) {}

// assertReplicaDifferential compares a caught-up follower against its leader
// on every surface the paper's designer reads: the instance, the violation
// report, per-FD measures and repair suggestions, the discovered minimal
// cover, and the advisor feed (called in lockstep, so the emerged/broken
// baselines advance identically on both sides).
func assertReplicaDifferential(t *testing.T, ctx string, f *evolvefd.Follower, leader *evolvefd.Session) {
	t.Helper()
	if !bytes.Equal(f.Relation().AppendBinary(nil), leader.Relation().AppendBinary(nil)) {
		t.Fatalf("%s: follower relation is not bit-identical to the leader", ctx)
	}
	if f.Epoch() != leader.Epoch() || f.Generation() != leader.Generation() {
		t.Fatalf("%s: epoch/generation %d/%d vs %d/%d", ctx, f.Epoch(), f.Generation(), leader.Epoch(), leader.Generation())
	}
	if !reflect.DeepEqual(f.Labels(), leader.Labels()) {
		t.Fatalf("%s: labels %v vs %v", ctx, f.Labels(), leader.Labels())
	}
	if vf, vl := f.Check(), leader.Check(); !reflect.DeepEqual(vf, vl) {
		t.Fatalf("%s: Check diverged:\nfollower %+v\n  leader %+v", ctx, vf, vl)
	}
	for _, label := range leader.Labels() {
		mf, err1 := f.Measures(label)
		ml, err2 := leader.Measures(label)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: measures %s: %v / %v", ctx, label, err1, err2)
		}
		if mf != ml {
			t.Fatalf("%s: measures %s: %+v vs %+v", ctx, label, mf, ml)
		}
		sf, err1 := f.Repair(label, evolvefd.DefaultOptions())
		sl, err2 := leader.Repair(label, evolvefd.DefaultOptions())
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: repair %s: %v / %v", ctx, label, err1, err2)
		}
		if !reflect.DeepEqual(sf, sl) {
			t.Fatalf("%s: repair %s diverged", ctx, label)
		}
	}
	cf, err1 := f.DiscoverIncremental(evolvefd.DiscoveryOptions{})
	cl, err2 := leader.DiscoverIncremental(evolvefd.DiscoveryOptions{})
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: discover: %v / %v", ctx, err1, err2)
	}
	if !reflect.DeepEqual(cf, cl) {
		t.Fatalf("%s: minimal cover diverged:\nfollower %+v\n  leader %+v", ctx, cf, cl)
	}
	gl, err1 := leader.Suggestions()
	gf, err2 := f.Suggestions()
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: suggestions: %v / %v", ctx, err1, err2)
	}
	if !reflect.DeepEqual(gf, gl) {
		t.Fatalf("%s: suggestions diverged:\nfollower %+v\n  leader %+v", ctx, gf, gl)
	}
}

// newKillLeader builds a durable leader over the synthetic differential
// dataset with both FDs defined, discovery seeded, and one checkpoint taken
// so the first snapshot already carries borders and advisor baselines.
func newKillLeader(t *testing.T, seed int64, rows int, opts evolvefd.DurabilityOptions) (*evolvefd.Session, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "leader")
	s, err := evolvefd.NewDurableSession(datasets.Synthesize("kill", rows, seed, killSpecs), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"FA", "FB"} {
		s.MustDefine(label, killFDs[label])
	}
	if _, err := s.DiscoverIncremental(evolvefd.DiscoveryOptions{}); err != nil {
		t.Fatal(err)
	}
	s.Compact()
	return s, dir
}

// TestFollowerLiveDifferential is the acceptance differential: a follower
// tails a live leader through a mixed DML stream with compactions (and
// size-based rotations) mid-stream, and at every checkpoint answers Check,
// Discover and Suggestions queries identically to the leader.
func TestFollowerLiveDifferential(t *testing.T) {
	const loaded, total, nsteps = 300, 400, 120
	seed := int64(5)
	rng := rand.New(rand.NewSource(seed))
	pool := datasets.Synthesize("kill", total, seed, killSpecs)
	// A small MaxLogBytes forces OpCheckpoint seals between the stream's own
	// OpCompact seals, so the follower crosses both marker kinds.
	opts := evolvefd.DurabilityOptions{GroupCommit: 1, NoFsync: true, MaxLogBytes: 2048}
	s, dir := newKillLeader(t, seed, loaded, opts)
	defer s.Close()

	f, err := evolvefd.OpenFollower(dir, evolvefd.FollowerOptions{Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	checkpoints := 0
	checkpoint := func(i int) {
		if i%30 != 0 || i == 0 {
			return
		}
		if i == 60 {
			s.Compact() // guarantee at least one mid-stream epoch switchover
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("step %d: leader flush: %v", i, err)
		}
		if _, err := f.CatchUp(); err != nil {
			t.Fatalf("step %d: catch-up: %v", i, err)
		}
		assertReplicaDifferential(t, fmt.Sprintf("checkpoint@%d", i), f, s)
		checkpoints++
	}
	makeKillStream(t, s, rng, pool, loaded, nsteps, checkpoint)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}
	assertReplicaDifferential(t, "final", f, s)
	if checkpoints < 3 {
		t.Fatalf("only %d mid-stream checkpoints ran", checkpoints)
	}

	st := f.Stats()
	if st.Records == 0 || st.Bytes == 0 {
		t.Fatalf("stats counted nothing: %+v", st)
	}
	if st.SegmentLag != 0 || st.ByteLag != 0 {
		t.Fatalf("caught-up follower reports lag: %+v", st)
	}
	if st.Quarantines != 0 || st.Degraded {
		t.Fatalf("healthy run surfaced faults: %+v", st)
	}
	// The follower wrote nothing into the leader's directory except its pin.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range names {
		n := e.Name()
		if !strings.HasPrefix(n, "snap-") && !strings.HasPrefix(n, "wal-") && !strings.HasPrefix(n, "pin-") {
			t.Fatalf("unexpected file %q in leader directory", n)
		}
	}
}

// TestFollowerKillPointDifferential kills the follower at random replay
// offsets (a bounded catch-up budget stands in for the kill: the follower
// stops mid-replay at op granularity), reopens a fresh one, and verifies
// bit-equal measures and cover against the leader — both for the rebooted
// follower and for the interrupted one once it drains.
func TestFollowerKillPointDifferential(t *testing.T) {
	const loaded, total, nsteps = 300, 400, 100
	for _, seed := range []int64{2, 13} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			pool := datasets.Synthesize("kill", total, seed, killSpecs)
			s, dir := newKillLeader(t, seed, loaded, noFsync)
			defer s.Close()

			// The interrupted follower opens before the stream (its pin holds
			// retention), then replays in bounded bursts, "dying" at every
			// burst boundary; each reopen-from-scratch must converge too.
			frag, err := evolvefd.OpenFollower(dir, evolvefd.FollowerOptions{
				ID: "frag", MaxOpsPerCatchUp: 7, Sleep: noSleep,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer frag.Close()

			makeKillStream(t, s, rng, pool, loaded, nsteps, nil)
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			bursts := 0
			for {
				n, err := frag.CatchUp()
				if err != nil {
					t.Fatalf("burst %d: %v", bursts, err)
				}
				bursts++
				if n < 7 && frag.Stats().SegmentLag == 0 && frag.Stats().ByteLag == 0 {
					break
				}
				if bursts%3 == 0 {
					// Kill and reopen at this offset: a fresh follower must
					// reach the same answers from a cold bootstrap.
					reborn, err := evolvefd.OpenFollower(dir, evolvefd.FollowerOptions{
						ID: fmt.Sprintf("reborn-%d", bursts), Sleep: noSleep,
					})
					if err != nil {
						t.Fatalf("reopen at burst %d: %v", bursts, err)
					}
					if _, err := reborn.CatchUp(); err != nil {
						t.Fatalf("reborn catch-up at burst %d: %v", bursts, err)
					}
					if !bytes.Equal(reborn.Relation().AppendBinary(nil), s.Relation().AppendBinary(nil)) {
						t.Fatalf("reborn follower at burst %d: relation diverged", bursts)
					}
					cf, err1 := reborn.DiscoverIncremental(evolvefd.DiscoveryOptions{})
					cl, err2 := s.DiscoverIncremental(evolvefd.DiscoveryOptions{})
					if err1 != nil || err2 != nil || !reflect.DeepEqual(cf, cl) {
						t.Fatalf("reborn cover at burst %d diverged: %v/%v", bursts, err1, err2)
					}
					for _, label := range s.Labels() {
						mf, _ := reborn.Measures(label)
						ml, _ := s.Measures(label)
						if mf != ml {
							t.Fatalf("reborn measures %s at burst %d: %+v vs %+v", label, bursts, mf, ml)
						}
					}
					reborn.Close()
				}
			}
			if bursts < 3 {
				t.Fatalf("stream drained in %d bursts; too short to exercise kill points", bursts)
			}
			// The interrupted follower itself, fully drained, matches too.
			assertReplicaDifferential(t, "drained", frag, s)
		})
	}
}

// TestFollowerQuarantineAndResync injects a persistent bit flip into the
// segment a follower is tailing: the follower must quarantine the segment,
// keep serving its stale-but-consistent state (surfacing Degraded while no
// newer snapshot exists), and resync to exact convergence once the leader's
// next checkpoint publishes one.
func TestFollowerQuarantineAndResync(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "leader")
	s, err := evolvefd.NewDurableSession(datasets.Places(), dir, noFsync)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.MustDefine("F1", datasets.PlacesFDs()["F1"])
	for i := 0; i < 8; i++ {
		if err := s.AppendStrings(placesRow(i)...); err != nil {
			t.Fatal(err)
		}
	}

	// Find the boundary of the 4th record so the flip lands cleanly inside
	// the 5th record's payload.
	logPath := wal.LogPath(dir, 1)
	logBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	var bounds []int
	for off := 0; off < len(logBytes); {
		_, n, ok := wal.NextRecord(logBytes[off:])
		if !ok {
			break
		}
		off += n
		bounds = append(bounds, off)
	}
	if len(bounds) < 6 {
		t.Fatalf("log holds only %d records", len(bounds))
	}
	efs := wal.NewErrFS(nil)
	efs.FlipBit(filepath.Base(logPath), int64(bounds[3]+9), 0x10)

	f, err := evolvefd.OpenFollower(dir, evolvefd.FollowerOptions{FS: efs, Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	applied, err := f.CatchUp()
	if err != nil {
		t.Fatalf("catch-up across corruption: %v", err)
	}
	st := f.Stats()
	if st.Quarantines == 0 || !st.Degraded {
		t.Fatalf("corruption not surfaced: %+v", st)
	}
	if applied != 4 {
		t.Fatalf("applied %d ops before the damage, want 4", applied)
	}
	// Stale but consistent: the follower serves the pre-damage prefix.
	if got := f.LiveRows(); got >= s.LiveRows() {
		t.Fatalf("degraded follower claims %d rows, leader has %d", got, s.LiveRows())
	}
	if labels := f.Labels(); len(labels) != 1 || labels[0] != "F1" {
		t.Fatalf("degraded follower stopped serving reads: labels %v", labels)
	}

	// The leader checkpoints: a clean snapshot past the damage now exists.
	s.Compact()
	if err := s.AppendStrings(placesRow(9)...); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CatchUp(); err != nil {
		t.Fatalf("resync catch-up: %v", err)
	}
	st = f.Stats()
	if st.Resyncs == 0 || st.Degraded {
		t.Fatalf("resync not recorded: %+v", st)
	}
	if !bytes.Equal(f.Relation().AppendBinary(nil), s.Relation().AppendBinary(nil)) {
		t.Fatal("resynced follower diverged from leader")
	}
}

// TestFollowerTransientReadRetry: transient read faults are retried with
// exponential backoff and counted; a fault outliving the budget surfaces as
// an error without wedging the follower.
func TestFollowerTransientReadRetry(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "leader")
	s, err := evolvefd.NewDurableSession(datasets.Places(), dir, noFsync)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendStrings(placesRow(0)...); err != nil {
		t.Fatal(err)
	}

	efs := wal.NewErrFS(nil)
	flaky := errors.New("simulated transient read error")
	logName := filepath.Base(wal.LogPath(dir, 1))
	var sleeps []time.Duration
	f, err := evolvefd.OpenFollower(dir, evolvefd.FollowerOptions{
		FS: efs, RetryBackoff: time.Millisecond,
		Sleep: func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	efs.FailReads(logName, 2, flaky)
	if _, err := f.CatchUp(); err != nil {
		t.Fatalf("catch-up through transient faults: %v", err)
	}
	if want := []time.Duration{time.Millisecond, 2 * time.Millisecond}; !reflect.DeepEqual(sleeps, want) {
		t.Fatalf("backoff sleeps %v, want %v", sleeps, want)
	}
	if st := f.Stats(); st.Retries != 2 {
		t.Fatalf("retries %d, want 2", st.Retries)
	}
	if f.LiveRows() != s.LiveRows() {
		t.Fatal("follower did not converge after retries")
	}

	// A persistent fault exhausts the budget and surfaces — then clears.
	if err := s.AppendStrings(placesRow(1)...); err != nil {
		t.Fatal(err)
	}
	efs.FailReads(logName, 1000, flaky)
	if _, err := f.CatchUp(); !errors.Is(err, flaky) {
		t.Fatalf("exhausted retries: %v, want %v", err, flaky)
	}
	efs.ClearFaults()
	if _, err := f.CatchUp(); err != nil {
		t.Fatalf("catch-up after fault cleared: %v", err)
	}
	if f.LiveRows() != s.LiveRows() {
		t.Fatal("follower did not converge after the fault cleared")
	}
}

// TestFollowerFellBehindResync: an unpinned follower whose segment was
// pruned resyncs from the newest snapshot instead of dying.
func TestFollowerFellBehindResync(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "leader")
	s, err := evolvefd.NewDurableSession(datasets.Places(), dir, noFsync)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.MustDefine("F1", datasets.PlacesFDs()["F1"])

	f, err := evolvefd.OpenFollower(dir, evolvefd.FollowerOptions{NoPin: true, Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}

	// Two checkpoints advance retention past the follower's position.
	for i := 0; i < 2; i++ {
		if err := s.AppendStrings(placesRow(i)...); err != nil {
			t.Fatal(err)
		}
		s.Compact()
	}
	if _, err := os.Stat(wal.LogPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatal("segment 1 survived retention; the fell-behind path is untested")
	}
	if _, err := f.CatchUp(); err != nil {
		t.Fatalf("fell-behind catch-up: %v", err)
	}
	if st := f.Stats(); st.Resyncs == 0 {
		t.Fatalf("resync not recorded: %+v", st)
	}
	if !bytes.Equal(f.Relation().AppendBinary(nil), s.Relation().AppendBinary(nil)) {
		t.Fatal("resynced follower diverged from leader")
	}
}

// TestFollowerPinRetention: a pinned follower's segments survive leader
// checkpoints until the follower advances, then retention catches up.
func TestFollowerPinRetention(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "leader")
	s, err := evolvefd.NewDurableSession(datasets.Places(), dir, noFsync)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	f, err := evolvefd.OpenFollower(dir, evolvefd.FollowerOptions{Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.AppendStrings(placesRow(i)...); err != nil {
			t.Fatal(err)
		}
		s.Compact()
	}
	// Without the pin, segment 1 would be gone (see the fell-behind test).
	if _, err := os.Stat(wal.LogPath(dir, 1)); err != nil {
		t.Fatalf("pinned segment 1 was pruned: %v", err)
	}
	if _, err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}
	s.Compact() // now the pin has advanced, retention may proceed
	if _, err := os.Stat(wal.LogPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatal("segment 1 survived after the pin advanced")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(wal.PinPath(dir, "follower")); !os.IsNotExist(err) {
		t.Fatal("Close left the pin behind")
	}
	if _, err := f.CatchUp(); !errors.Is(err, evolvefd.ErrSessionClosed) {
		t.Fatalf("CatchUp on closed follower: %v", err)
	}
	if f.LiveRows() != s.LiveRows() {
		t.Fatal("closed follower stopped serving reads")
	}
}

// TestFollowerBootstrapSkipsCorruptSnapshot: a follower probing snapshots
// newest-first falls back past a corrupt one and replays across the
// generation boundary to the identical state.
func TestFollowerBootstrapSkipsCorruptSnapshot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "leader")
	s, err := evolvefd.NewDurableSession(datasets.Places(), dir, noFsync)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.MustDefine("F1", datasets.PlacesFDs()["F1"])
	if err := s.AppendStrings(placesRow(0)...); err != nil {
		t.Fatal(err)
	}
	s.Compact() // snapshot 2
	if err := s.AppendStrings(placesRow(1)...); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	efs := wal.NewErrFS(nil)
	efs.FlipBit(filepath.Base(wal.SnapshotPath(dir, 2)), 30, 0x01)
	f, err := evolvefd.OpenFollower(dir, evolvefd.FollowerOptions{FS: efs, Sleep: noSleep})
	if err != nil {
		t.Fatalf("bootstrap with corrupt newest snapshot: %v", err)
	}
	defer f.Close()
	if _, err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Relation().AppendBinary(nil), s.Relation().AppendBinary(nil)) {
		t.Fatal("fallback-bootstrapped follower diverged from leader")
	}
	if seq := f.Stats().Seq; seq != 2 {
		t.Fatalf("follower tails generation %d, want 2", seq)
	}
}

// TestFollowerOpenRejectsEmptyDir: a directory without session state is not
// a leader.
func TestFollowerOpenRejectsEmptyDir(t *testing.T) {
	if _, err := evolvefd.OpenFollower(t.TempDir(), evolvefd.FollowerOptions{}); err == nil {
		t.Fatal("OpenFollower succeeded on an empty directory")
	}
}
