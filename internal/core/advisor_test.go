package core

import (
	"strings"
	"testing"

	"github.com/evolvefd/evolvefd/internal/datasets"
	"github.com/evolvefd/evolvefd/internal/pli"
)

func placesAdvisor(t *testing.T, opts RepairOptions) *Advisor {
	t.Helper()
	r := datasets.Places()
	counter := pli.NewPLICounter(r)
	var fds []FD
	for _, label := range []string{"F1", "F2", "F3"} {
		fd, err := ParseFD(r.Schema(), label, datasets.PlacesFDs()[label])
		if err != nil {
			t.Fatal(err)
		}
		fds = append(fds, fd)
	}
	return NewAdvisor(counter, fds, ScopeConsequentOnly, opts)
}

func TestAdvisorDecomposesConsequents(t *testing.T) {
	a := placesAdvisor(t, RepairOptions{})
	// F2: Zip → City,State decomposes into two FDs, so 4 in total.
	if got := len(a.FDs()); got != 4 {
		t.Fatalf("FDs = %d, want 4 after decomposition", got)
	}
}

func TestAdvisorReviewFindsViolations(t *testing.T) {
	a := placesAdvisor(t, RepairOptions{})
	violated := a.Review()
	// F1 violated; F2.1 (Zip→City) violated; F2.2 (Zip→State) violated;
	// F3 violated → 4.
	if len(violated) != 4 {
		t.Fatalf("violated = %d, want 4", len(violated))
	}
	// Ranks must be non-increasing.
	for i := 1; i < len(violated); i++ {
		if violated[i].Rank > violated[i-1].Rank {
			t.Fatal("review not sorted by rank")
		}
	}
}

func TestAdvisorSessionReachesConsistency(t *testing.T) {
	a := placesAdvisor(t, RepairOptions{FirstOnly: true})
	if a.Consistent() {
		t.Fatal("initial FD set must be inconsistent")
	}
	// Accept the best repair when one exists; drop unrepairable FDs (F3 is
	// genuinely unrepairable on Places — t10/t11 differ only in Street).
	acceptOrDrop := func(v RankedFD, repairs []Repair) (Decision, int) {
		if len(repairs) == 0 {
			return DecisionDrop, 0
		}
		return DecisionAccept, 0
	}
	steps := a.RunSession(acceptOrDrop)
	if len(steps) == 0 {
		t.Fatal("session should process violations")
	}
	accepted, dropped := 0, 0
	for _, s := range steps {
		switch s.Decision {
		case DecisionAccept:
			accepted++
			if s.Chosen == nil {
				t.Fatal("accepted step must carry the chosen repair")
			}
		case DecisionDrop:
			dropped++
		}
	}
	if accepted == 0 || dropped == 0 {
		t.Fatalf("expected both accepts and drops, got %d/%d", accepted, dropped)
	}
	if !a.Consistent() {
		t.Fatal("after the session the FD set must be consistent")
	}
	// Labels survive replacement.
	hasF1 := false
	for _, fd := range a.FDs() {
		if fd.Label == "F1" {
			hasF1 = true
			if fd.X.Len() <= 2 {
				t.Fatal("F1 must have been extended")
			}
		}
	}
	if !hasF1 {
		t.Fatal("F1 label lost during session")
	}
}

func TestAdvisorDropDecision(t *testing.T) {
	a := placesAdvisor(t, RepairOptions{FirstOnly: true})
	before := len(a.FDs())
	dropAll := func(RankedFD, []Repair) (Decision, int) { return DecisionDrop, 0 }
	steps := a.RunSession(dropAll)
	if len(a.FDs()) != before-len(steps) {
		t.Fatalf("dropped %d FDs but set shrank by %d", len(steps), before-len(a.FDs()))
	}
	if !a.Consistent() {
		t.Fatal("after dropping all violations the rest must be consistent")
	}
}

func TestAdvisorSkipDecision(t *testing.T) {
	a := placesAdvisor(t, RepairOptions{FirstOnly: true})
	before := a.FDs()
	skipAll := func(RankedFD, []Repair) (Decision, int) { return DecisionSkip, 0 }
	a.RunSession(skipAll)
	after := a.FDs()
	if len(before) != len(after) {
		t.Fatal("skip must not change the FD set")
	}
	for i := range before {
		if !before[i].Equal(after[i]) {
			t.Fatal("skip must not rewrite FDs")
		}
	}
	if a.Consistent() {
		t.Fatal("skipping leaves the violations in place")
	}
}

func TestAdvisorAcceptOutOfRangeChoiceFallsBack(t *testing.T) {
	a := placesAdvisor(t, RepairOptions{FirstOnly: true})
	wild := func(RankedFD, []Repair) (Decision, int) { return DecisionAccept, 99 }
	steps := a.RunSession(wild)
	sawFallback := false
	for _, s := range steps {
		switch s.Decision {
		case DecisionAccept:
			if s.Chosen == nil {
				t.Fatal("accept with wild index should fall back to best repair")
			}
			sawFallback = true
		case DecisionSkip:
			// Accept on an unrepairable FD degrades to skip.
			if len(s.Proposed) != 0 {
				t.Fatal("skip downgrade only allowed when nothing was proposed")
			}
		}
	}
	if !sawFallback {
		t.Fatal("no accepted step exercised the fallback")
	}
}

func TestAdvisorAddFD(t *testing.T) {
	a := placesAdvisor(t, RepairOptions{FirstOnly: true})
	r := a.Relation()
	f4, err := ParseFD(r.Schema(), "F4", datasets.PlacesF4())
	if err != nil {
		t.Fatal(err)
	}
	a.AddFD(f4)
	found := false
	for _, fd := range a.FDs() {
		if fd.Label == "F4" {
			found = true
		}
	}
	if !found {
		t.Fatal("AddFD must register the new dependency")
	}
}

func TestSessionSummaryRendering(t *testing.T) {
	a := placesAdvisor(t, RepairOptions{FirstOnly: true})
	schema := a.Relation().Schema()
	steps := a.RunSession(AcceptFirst)
	out := SessionSummary(schema, steps)
	for _, want := range []string{"F1", "accepted", "candidate +{"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if got := SessionSummary(schema, nil); !strings.Contains(got, "satisfied") {
		t.Fatalf("empty summary = %q", got)
	}
}

func TestAcceptFirstWithNoRepairs(t *testing.T) {
	if d, _ := AcceptFirst(RankedFD{}, nil); d != DecisionSkip {
		t.Fatal("AcceptFirst with no repairs must skip")
	}
	if d, i := AcceptFirst(RankedFD{}, []Repair{{}}); d != DecisionAccept || i != 0 {
		t.Fatal("AcceptFirst must accept the top repair")
	}
}
