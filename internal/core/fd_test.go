package core

import (
	"strings"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

func placesSchema(t testing.TB) *relation.Schema {
	t.Helper()
	s, err := relation.SchemaOf(
		"District", "Region", "Municipal", "AreaCode", "PhNo",
		"Street", "Zip", "City", "State")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewFDValidation(t *testing.T) {
	if _, err := NewFD("F", bitset.Set{}, bitset.New(1)); err == nil {
		t.Error("empty antecedent must be rejected")
	}
	if _, err := NewFD("F", bitset.New(0), bitset.Set{}); err == nil {
		t.Error("empty consequent must be rejected")
	}
	if _, err := NewFD("F", bitset.New(0, 1), bitset.New(1)); err == nil {
		t.Error("overlapping antecedent/consequent must be rejected")
	}
	fd, err := NewFD("F", bitset.New(0, 1), bitset.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if fd.Size() != 3 {
		t.Errorf("Size = %d, want 3", fd.Size())
	}
}

func TestNewFDClonesInputs(t *testing.T) {
	x, y := bitset.New(0), bitset.New(1)
	fd := MustFD("F", x, y)
	x.Add(5)
	if fd.X.Contains(5) {
		t.Fatal("FD must clone its attribute sets")
	}
}

func TestParseFD(t *testing.T) {
	s := placesSchema(t)
	fd, err := ParseFD(s, "F1", "District, Region -> AreaCode")
	if err != nil {
		t.Fatal(err)
	}
	if !fd.X.Equal(bitset.New(0, 1)) || !fd.Y.Equal(bitset.New(3)) {
		t.Fatalf("parsed FD wrong: %v", fd)
	}
	// Paper's bracketed style with the unicode arrow.
	fd2, err := ParseFD(s, "F1", "[District, Region] → [AreaCode]")
	if err != nil {
		t.Fatal(err)
	}
	if !fd.Equal(fd2) {
		t.Fatal("bracketed form should parse identically")
	}
	if got := fd.FormatWith(s); got != "F1: [District, Region] -> [AreaCode]" {
		t.Fatalf("FormatWith = %q", got)
	}
}

func TestParseFDErrors(t *testing.T) {
	s := placesSchema(t)
	for _, bad := range []string{
		"District, Region",     // no arrow
		"-> AreaCode",          // empty antecedent
		"District ->",          // empty consequent
		"Ghost -> AreaCode",    // unknown attribute
		"District -> Ghost",    // unknown consequent
		"District -> District", // trivial
	} {
		if _, err := ParseFD(s, "F", bad); err == nil {
			t.Errorf("ParseFD(%q) should fail", bad)
		}
	}
}

func TestDecompose(t *testing.T) {
	s := placesSchema(t)
	fd, err := ParseFD(s, "F2", "Zip -> City, State")
	if err != nil {
		t.Fatal(err)
	}
	parts := fd.Decompose()
	if len(parts) != 2 {
		t.Fatalf("decompose len = %d", len(parts))
	}
	if parts[0].FormatWith(s) != "F2.1: [Zip] -> [City]" {
		t.Errorf("part 0 = %s", parts[0].FormatWith(s))
	}
	if parts[1].FormatWith(s) != "F2.2: [Zip] -> [State]" {
		t.Errorf("part 1 = %s", parts[1].FormatWith(s))
	}
	// Single-consequent FDs decompose to themselves, keeping the label.
	single, _ := ParseFD(s, "F1", "District -> AreaCode")
	if got := single.Decompose(); len(got) != 1 || got[0].Label != "F1" {
		t.Fatalf("single decompose = %v", got)
	}
}

func TestOverlapAndExtension(t *testing.T) {
	s := placesSchema(t)
	f2, _ := ParseFD(s, "F2", "Zip -> City, State")
	f3, _ := ParseFD(s, "F3", "PhNo, Zip -> Street")
	if got := f2.Overlap(f3); got != 1 { // Zip
		t.Fatalf("overlap = %d, want 1", got)
	}
	ext := f2.WithExtendedAntecedent(bitset.New(0))
	if !ext.X.Equal(bitset.New(0, 6)) || !ext.Y.Equal(f2.Y) {
		t.Fatalf("extension wrong: %v", ext)
	}
	if !strings.HasPrefix(ext.Label, "F2") {
		t.Fatalf("extension label = %q", ext.Label)
	}
	// Extending must not mutate the original.
	if f2.X.Contains(0) {
		t.Fatal("WithExtendedAntecedent mutated the source FD")
	}
}

func TestFDString(t *testing.T) {
	fd := MustFD("F", bitset.New(0), bitset.New(1))
	if got := fd.String(); got != "F: {0} -> {1}" {
		t.Fatalf("String = %q", got)
	}
	anon := MustFD("", bitset.New(2), bitset.New(3))
	if got := anon.String(); got != "{2} -> {3}" {
		t.Fatalf("String = %q", got)
	}
}
