package core

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// normalizeResult strips the wall-clock field so results can be compared
// structurally across runs.
func normalizeResult(res RepairResult) RepairResult {
	res.Stats.Elapsed = 0
	return res
}

// randomSearchRelation builds a small random instance with a violated x → y
// and a handful of candidate columns of mixed cardinality.
func randomSearchRelation(t *testing.T, rng *rand.Rand) *relation.Relation {
	cols := []string{"x", "y", "a", "b", "c", "d", "e"}
	rows := make([][]string, 6+rng.Intn(30))
	for i := range rows {
		rows[i] = []string{
			string(rune('A' + rng.Intn(2))),
			string(rune('A' + rng.Intn(4))),
			string(rune('A' + rng.Intn(3))),
			string(rune('A' + rng.Intn(3))),
			string(rune('A' + rng.Intn(4))),
			string(rune('A' + rng.Intn(len(rows)))), // near-key column
			string(rune('A' + rng.Intn(2))),
		}
	}
	return buildRelation(t, cols, rows)
}

// TestQuickFindRepairsParallelismInvariance is the determinism property the
// parallel frontier relies on: FindRepairs must return bit-identical results
// (repairs, measures, discovery order, and search stats) for any Parallelism
// and with the search-aware partition reuse on or off, across randomized
// datasets and option mixes.
func TestQuickFindRepairsParallelismInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	maxG := 2
	optionMixes := []RepairOptions{
		{},
		{FirstOnly: true},
		{MaxAdded: 2},
		{Objective: ObjectiveBalanced},
		{Objective: ObjectiveBalanced, FirstOnly: true},
		{FirstOnly: true, Candidates: CandidateOptions{MaxGoodness: &maxG}},
		{MaxEvaluated: 9},
		{Objective: ObjectiveBalanced, FirstOnly: true, MaxEvaluated: 11},
		{PruneNonMinimal: true},
	}
	for iter := 0; iter < 20; iter++ {
		r := randomSearchRelation(t, rng)
		fd := MustFD("F", bitset.New(0), bitset.New(1))
		if Compute(pli.NewPLICounter(r), fd).Exact() {
			continue
		}
		for oi, base := range optionMixes {
			ref := base
			ref.Parallelism = 1
			ref.NoPartitionReuse = true
			want := normalizeResult(FindRepairs(pli.NewPLICounter(r), fd, ref))
			for _, workers := range []int{1, 2, 8} {
				for _, noReuse := range []bool{false, true} {
					opts := base
					opts.Parallelism = workers
					opts.NoPartitionReuse = noReuse
					got := normalizeResult(FindRepairs(pli.NewPLICounter(r), fd, opts))
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("iter %d, options %d, workers %d, noReuse %v:\n got %+v\nwant %+v",
							iter, oi, workers, noReuse, got, want)
					}
				}
			}
		}
	}
}

// TestQuickParallelismInvarianceOnIncrementalCounter repeats the invariance
// check on the session counter (tracked sets + inner PLI delegate), which is
// the counter Session.Repair actually uses.
func TestQuickParallelismInvarianceOnIncrementalCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for iter := 0; iter < 10; iter++ {
		r := randomSearchRelation(t, rng)
		fd := MustFD("F", bitset.New(0), bitset.New(1))
		ref := pli.NewIncrementalCounter(r)
		if Compute(ref, fd).Exact() {
			continue
		}
		want := normalizeResult(FindRepairs(ref, fd, RepairOptions{Parallelism: 1, NoPartitionReuse: true}))
		for _, workers := range []int{2, 8} {
			counter := pli.NewIncrementalCounter(r)
			got := normalizeResult(FindRepairs(counter, fd, RepairOptions{Parallelism: workers}))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("iter %d, workers %d: incremental-counter search diverged:\n got %+v\nwant %+v",
					iter, workers, got, want)
			}
		}
	}
}

// TestEvolveDatabaseParallelMatchesSerial: repairing ranked FDs concurrently
// must preserve both the rank order and every per-FD result.
func TestEvolveDatabaseParallelMatchesSerial(t *testing.T) {
	counter := placesCounter(t)
	r := counter.Relation()
	fds := []FD{
		placesFD(t, r, "F2", "Zip -> City, State"),
		placesFD(t, r, "F1", "District, Region -> AreaCode"),
		placesFD(t, r, "F3", "PhNo, Zip -> Street"),
	}
	serial := EvolveDatabase(counter, fds, ScopeConsequentOnly, RepairOptions{Parallelism: 1})
	for _, workers := range []int{2, 8} {
		parallel := EvolveDatabase(placesCounter(t), fds, ScopeConsequentOnly,
			RepairOptions{Parallelism: workers})
		if len(parallel) != len(serial) {
			t.Fatalf("workers %d: %d results, want %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if !reflect.DeepEqual(normalizeResult(parallel[i]), normalizeResult(serial[i])) {
				t.Fatalf("workers %d: result %d (%s) diverged", workers, i, serial[i].FD.Label)
			}
		}
	}
}
