package core

import (
	"fmt"

	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// Decision is a designer's verdict on a proposed repair.
type Decision int

const (
	// DecisionSkip leaves the violated FD unchanged for now.
	DecisionSkip Decision = iota
	// DecisionAccept replaces the violated FD with the proposed repair.
	DecisionAccept
	// DecisionDrop removes the violated FD from the constraint set (the
	// designer has decided the dependency no longer models reality at all).
	DecisionDrop
)

// DecisionFunc inspects a violated FD and its ranked repairs and picks what
// to do; choice indexes into repairs when the decision is DecisionAccept.
// This is the "semi-automatic" hinge of the paper: the method proposes, the
// designer disposes.
type DecisionFunc func(violated RankedFD, repairs []Repair) (Decision, int)

// AcceptFirst is a DecisionFunc that always accepts the top-ranked (minimal)
// repair when one exists and skips otherwise; useful for unattended runs and
// tests.
func AcceptFirst(_ RankedFD, repairs []Repair) (Decision, int) {
	if len(repairs) == 0 {
		return DecisionSkip, 0
	}
	return DecisionAccept, 0
}

// Advisor drives the paper's periodic validation workflow over one relation
// instance: detect violated FDs, rank them, propose repairs, and apply the
// designer's decisions. It owns a mutable FD set; the relation is read-only.
type Advisor struct {
	counter pli.Counter
	fds     []FD
	scope   ConflictScope
	opts    RepairOptions
}

// NewAdvisor builds an advisor over the given instance and initial FD set.
// Multi-attribute consequents are decomposed to single-consequent FDs up
// front (§1: "without loss of generality").
func NewAdvisor(counter pli.Counter, fds []FD, scope ConflictScope, opts RepairOptions) *Advisor {
	var decomposed []FD
	for _, fd := range fds {
		decomposed = append(decomposed, fd.Decompose()...)
	}
	return &Advisor{counter: counter, fds: decomposed, scope: scope, opts: opts}
}

// Relation returns the instance under review.
func (a *Advisor) Relation() *relation.Relation { return a.counter.Relation() }

// FDs returns a copy of the current constraint set.
func (a *Advisor) FDs() []FD {
	out := make([]FD, len(a.fds))
	copy(out, a.fds)
	return out
}

// AddFD registers an additional dependency ("they are allowed to add other
// FDs to the ones that are already defined", §6). Consequents are
// decomposed.
func (a *Advisor) AddFD(fd FD) {
	a.fds = append(a.fds, fd.Decompose()...)
}

// Review ranks the current FD set and returns the violated ones in repair
// order (§4.1).
func (a *Advisor) Review() []RankedFD {
	return Violated(OrderFDs(a.counter, a.fds, a.scope))
}

// Propose runs the repair search for one violated FD and returns the ranked
// repairs.
func (a *Advisor) Propose(fd FD) RepairResult {
	return FindRepairs(a.counter, fd, a.opts)
}

// SessionStep records what happened to one violated FD during a session.
type SessionStep struct {
	Violated RankedFD
	Proposed []Repair
	Decision Decision
	// Chosen is the accepted repair when Decision is DecisionAccept.
	Chosen *Repair
}

// RunSession performs one full validation round: review, propose repairs for
// every violated FD, apply decisions, and return the trace. After the
// session the advisor's FD set reflects all accepted and dropped
// constraints.
func (a *Advisor) RunSession(decide DecisionFunc) []SessionStep {
	if decide == nil {
		decide = AcceptFirst
	}
	violated := a.Review()
	steps := make([]SessionStep, 0, len(violated))
	for _, v := range violated {
		res := a.Propose(v.FD)
		decision, choice := decide(v, res.Repairs)
		step := SessionStep{Violated: v, Proposed: res.Repairs, Decision: decision}
		switch decision {
		case DecisionAccept:
			if choice < 0 || choice >= len(res.Repairs) {
				choice = 0
			}
			if len(res.Repairs) > 0 {
				chosen := res.Repairs[choice]
				step.Chosen = &chosen
				a.replaceFD(v.FD, chosen.FD)
			} else {
				step.Decision = DecisionSkip
			}
		case DecisionDrop:
			a.removeFD(v.FD)
		}
		steps = append(steps, step)
	}
	return steps
}

func (a *Advisor) replaceFD(old, new FD) {
	for i, fd := range a.fds {
		if fd.Equal(old) {
			new.Label = old.Label
			a.fds[i] = new
			return
		}
	}
}

func (a *Advisor) removeFD(old FD) {
	for i, fd := range a.fds {
		if fd.Equal(old) {
			a.fds = append(a.fds[:i], a.fds[i+1:]...)
			return
		}
	}
}

// Consistent reports whether every FD in the current set is exact on the
// instance — the fixed point the periodic process drives towards.
func (a *Advisor) Consistent() bool {
	for _, fd := range a.fds {
		if !Compute(a.counter, fd).Exact() {
			return false
		}
	}
	return true
}

// Summary renders the session trace for designers, using schema names.
func SessionSummary(schema *relation.Schema, steps []SessionStep) string {
	if len(steps) == 0 {
		return "all functional dependencies are satisfied\n"
	}
	out := ""
	for i, s := range steps {
		out += fmt.Sprintf("%d. %s  (%s, rank %.3f)\n", i+1,
			s.Violated.FD.FormatWith(schema), s.Violated.Measures, s.Violated.Rank)
		for _, r := range s.Proposed {
			out += fmt.Sprintf("     candidate +{%s} (%s)\n", schema.FormatSet(r.Added), r.Measures)
		}
		switch s.Decision {
		case DecisionAccept:
			out += fmt.Sprintf("   → accepted: %s\n", s.Chosen.FD.FormatWith(schema))
		case DecisionDrop:
			out += "   → dropped\n"
		default:
			out += "   → skipped\n"
		}
	}
	return out
}
