package core

import (
	"sync"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/pli"
)

// GenCounter is a Counter that can report when counts change: CountWithGen
// returns |π_X(r)| together with a stamp that advances only when that count
// actually changed. pli.IncrementalCounter implements it; the stamps are
// what lets a periodic re-check after an append batch skip every FD whose
// antecedent/consequent partitions were untouched by the new tuples.
//
// Epoch reports the storage epoch of the underlying relation. A compaction
// bumps the epoch and moves row ids, but preserves every count — and a
// remap-aware counter preserves the stamps with them — so a stamp match
// across an epoch boundary still proves the measures unchanged. The cache
// exploits that to carry its entries across compactions instead of
// recomputing, and counts the crossings (EpochSurvivals) as the observable.
type GenCounter interface {
	pli.Counter
	Generation() uint64
	CountWithGen(x bitset.Set) (int, uint64)
	Epoch() uint64
}

// measureEntry is one cached measure computation with the count stamps it
// was derived from and the storage epoch it last served in.
type measureEntry struct {
	m                 Measures
	genX, genXY, genY uint64
	epoch             uint64
}

// MeasureCache memoises FD measures across repeated Check calls. Bound to a
// GenCounter it is generation-aware: a cached entry is reused exactly when
// the stamps of |π_X|, |π_XY| and |π_Y| are all unchanged, i.e. when no
// appended tuple created a new cluster in any of the three projections.
// Bound to a plain Counter it degrades to computing every time (the counter
// itself may still memoise partitions).
//
// A MeasureCache is safe for concurrent use.
type MeasureCache struct {
	counter pli.Counter
	gen     GenCounter // nil when counter carries no generation stamps
	mu      sync.Mutex
	entries map[string]measureEntry
	hits    uint64
	misses  uint64
	// epochSurvivals counts cache hits whose entry was computed in an
	// earlier storage epoch — measures that crossed a compaction boundary
	// without being recomputed, because their count stamps were preserved by
	// the remap.
	epochSurvivals uint64
}

// NewMeasureCache builds a cache over counter, detecting generation support.
func NewMeasureCache(counter pli.Counter) *MeasureCache {
	mc := &MeasureCache{counter: counter, entries: make(map[string]measureEntry)}
	if g, ok := counter.(GenCounter); ok {
		mc.gen = g
	}
	return mc
}

// Counter returns the underlying counter (for repair searches, which probe
// far too many candidate sets to cache per-FD measures).
func (mc *MeasureCache) Counter() pli.Counter { return mc.counter }

// Compute returns the measures of fd, reusing the cached value when the
// generation stamps prove no underlying count changed.
func (mc *MeasureCache) Compute(fd FD) Measures {
	if mc.gen == nil {
		return Compute(mc.counter, fd)
	}
	numX, genX := mc.gen.CountWithGen(fd.X)
	numXY, genXY := mc.gen.CountWithGen(fd.Attrs())
	numY, genY := mc.gen.CountWithGen(fd.Y)
	epoch := mc.gen.Epoch()

	key := measureKey(fd)
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if e, ok := mc.entries[key]; ok && e.genX == genX && e.genXY == genXY && e.genY == genY {
		mc.hits++
		if e.epoch != epoch {
			// The entry was computed before a compaction; the preserved
			// stamps prove the counts survived the remap, so translate the
			// entry into the new epoch instead of recomputing.
			mc.epochSurvivals++
			e.epoch = epoch
			mc.entries[key] = e
		}
		return e.m
	}
	mc.misses++
	m := NewMeasures(numX, numXY, numY)
	mc.entries[key] = measureEntry{m: m, genX: genX, genXY: genXY, genY: genY, epoch: epoch}
	return m
}

// EpochSurvivals reports how many cache hits crossed a storage-epoch
// boundary: measures served after a compaction without recomputation. It is
// the cache-level proof that compaction preserves measure state.
func (mc *MeasureCache) EpochSurvivals() uint64 {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.epochSurvivals
}

// Stats reports how many Compute calls were served from cache versus
// recomputed — the observable that Check after an append only re-derives the
// FDs whose partitions actually changed.
func (mc *MeasureCache) Stats() (hits, misses uint64) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.hits, mc.misses
}

// measureKey identifies an FD's cache slot by its attribute sets (labels are
// presentation, not identity).
func measureKey(fd FD) string { return fd.X.Key() + "\x00" + fd.Y.Key() }

// Evict drops the cached measures of fd, if present. Long-lived sessions
// call it when an FD is dropped or replaced so the cache tracks the FDs
// actually defined instead of growing monotonically.
func (mc *MeasureCache) Evict(fd FD) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	delete(mc.entries, measureKey(fd))
}

// Size reports how many FD measure entries are cached.
func (mc *MeasureCache) Size() int {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return len(mc.entries)
}

// OrderFDsCached is OrderFDs computing measures through a MeasureCache, so a
// periodic re-validation only pays for the FDs the appended data disturbed.
func OrderFDsCached(mc *MeasureCache, fds []FD, scope ConflictScope) []RankedFD {
	return orderFDs(mc.Compute, fds, scope)
}
