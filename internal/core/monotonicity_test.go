package core

import (
	"math/rand"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// TestQuickExactnessIsMonotone: once an FD is exact, adding any attribute to
// the antecedent keeps it exact — the property that lets Algorithm 3 stop
// expanding exact nodes (their supersets are redundant repairs).
func TestQuickExactnessIsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	checked := 0
	for iter := 0; iter < 300; iter++ {
		r := randomMonotonicityRelation(rng)
		counter := pli.NewPLICounter(r)
		x, y := bitset.New(0), bitset.New(1)
		// Grow X until the FD becomes exact, then check all further
		// single-attribute extensions.
		cur := x.Clone()
		for c := 2; c < r.NumCols(); c++ {
			cur.Add(c)
			fd := FD{Label: "F", X: cur, Y: y}
			if !Compute(counter, fd).Exact() {
				continue
			}
			for d := 2; d < r.NumCols(); d++ {
				if cur.Contains(d) {
					continue
				}
				ext := fd.WithExtendedAntecedent(bitset.New(d))
				if !Compute(counter, ext).Exact() {
					t.Fatalf("iter %d: exact FD %v became inexact after adding %d", iter, fd, d)
				}
				checked++
			}
			break
		}
	}
	if checked < 50 {
		t.Fatalf("too few monotonicity checks: %d", checked)
	}
}

// TestConfidenceIsNotMonotone pins the counterexample family from DESIGN.md
// §2: adding an attribute to the antecedent can LOWER confidence. Take
// groups g1 = {(x1, y1)} (one row) and g2 = three rows (x2, y2) with an
// extra attribute A splitting g2 into two classes that both contain all the
// g2 Y-values:
//
//	without A: |π_X| = 2, |π_XY| = 4 → c = 1/2
//	with A:    |π_XA| = 3, |π_XAY| = 7 → c = 3/7 < 1/2
func TestConfidenceIsNotMonotone(t *testing.T) {
	r := buildRelation(t, []string{"x", "y", "a"}, [][]string{
		{"x1", "y1", "a0"},
		// x2 carries three y-values; attribute a splits it into a1/a2, and
		// each part still carries all three y-values.
		{"x2", "p", "a1"}, {"x2", "q", "a1"}, {"x2", "r", "a1"},
		{"x2", "p", "a2"}, {"x2", "q", "a2"}, {"x2", "r", "a2"},
	})
	counter := pli.NewPLICounter(r)
	fd := MustFD("F", bitset.New(0), bitset.New(1))
	base := Compute(counter, fd)
	ext := Compute(counter, fd.WithExtendedAntecedent(bitset.New(2)))
	if base.NumX != 2 || base.NumXY != 4 {
		t.Fatalf("base counts = %d/%d, want 2/4", base.NumX, base.NumXY)
	}
	if ext.NumX != 3 || ext.NumXY != 7 {
		t.Fatalf("extended counts = %d/%d, want 3/7", ext.NumX, ext.NumXY)
	}
	if ext.Confidence >= base.Confidence {
		t.Fatalf("expected confidence drop: %v → %v", base.Confidence, ext.Confidence)
	}
}

// TestQuickNumXMonotone: |π_XA| ≥ |π_X| always (partition refinement), the
// inequality goodness relies on.
func TestQuickNumXMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for iter := 0; iter < 200; iter++ {
		r := randomMonotonicityRelation(rng)
		counter := pli.NewPLICounter(r)
		var x bitset.Set
		for c := 0; c < r.NumCols(); c++ {
			if rng.Intn(2) == 0 {
				x.Add(c)
			}
		}
		if x.IsEmpty() {
			x.Add(0)
		}
		base := counter.Count(x)
		for c := 0; c < r.NumCols(); c++ {
			if x.Contains(c) {
				continue
			}
			if got := counter.Count(x.With(c)); got < base {
				t.Fatalf("iter %d: |π_XA| = %d < |π_X| = %d", iter, got, base)
			}
		}
	}
}

// TestQuickConfidenceBounds: c ∈ (0, 1] on non-empty instances, and
// Exact() ⟺ c = 1 exactly (integer comparison, no tolerance needed).
func TestQuickConfidenceBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for iter := 0; iter < 200; iter++ {
		r := randomMonotonicityRelation(rng)
		counter := pli.NewPLICounter(r)
		x, y := bitset.New(rng.Intn(2)), bitset.New(2+rng.Intn(r.NumCols()-2))
		fd := MustFD("F", x, y)
		m := Compute(counter, fd)
		if m.Confidence <= 0 || m.Confidence > 1 {
			t.Fatalf("iter %d: confidence %v out of (0,1]", iter, m.Confidence)
		}
		if m.Exact() != (m.Confidence == 1) {
			t.Fatalf("iter %d: Exact=%v but confidence=%v", iter, m.Exact(), m.Confidence)
		}
		if m.Inconsistency() != 1-m.Confidence {
			t.Fatalf("iter %d: inconsistency mismatch", iter)
		}
	}
}

func randomMonotonicityRelation(rng *rand.Rand) *relation.Relation {
	cols := 4 + rng.Intn(3)
	names := make([]string, cols)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	schema, err := relation.SchemaOf(names...)
	if err != nil {
		panic(err)
	}
	r := relation.New("rand", schema)
	rows := 2 + rng.Intn(25)
	row := make([]relation.Value, cols)
	for i := 0; i < rows; i++ {
		for c := range row {
			row[c] = relation.String(string(rune('A' + rng.Intn(3))))
		}
		r.MustAppend(row...)
	}
	return r
}
