package core

import (
	"math/rand"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/pli"
)

func TestCandidatePoolExcludesFDAndNullColumns(t *testing.T) {
	rows := [][]string{
		{"1", "x", "p", ""},
		{"2", "y", "q", "v"},
	}
	counter := pli.NewPLICounter(buildRelation(t, []string{"a", "b", "c", "n"}, rows))
	fd := MustFD("F", bitset.New(0), bitset.New(1))
	pool := CandidatePool(counter, fd, CandidateOptions{})
	if len(pool) != 1 || pool[0] != 2 {
		t.Fatalf("pool = %v, want [2] (c only: a,b are in the FD, n has NULLs)", pool)
	}
	// Allowed restricts further.
	allowed := bitset.New(3) // not even eligible
	pool = CandidatePool(counter, fd, CandidateOptions{Allowed: &allowed})
	if len(pool) != 0 {
		t.Fatalf("restricted pool = %v, want empty", pool)
	}
}

func TestExtendByOneParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cols := []string{"x", "y", "a", "b", "c", "d", "e", "f", "g", "h"}
	rows := make([][]string, 200)
	for i := range rows {
		row := make([]string, len(cols))
		for c := range row {
			row[c] = string(rune('A' + rng.Intn(5)))
		}
		rows[i] = row
	}
	counter := pli.NewPLICounter(buildRelation(t, cols, rows))
	fd := MustFD("F", bitset.New(0), bitset.New(1))

	serial := ExtendByOne(counter, fd, CandidateOptions{Parallelism: 1})
	parallel := ExtendByOne(counter, fd, CandidateOptions{Parallelism: 8})
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Attr != parallel[i].Attr ||
			serial[i].Measures != parallel[i].Measures {
			t.Fatalf("row %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}

func TestExtendByOneRankingOrder(t *testing.T) {
	counter := placesCounter(t)
	fd := placesFD(t, counter.Relation(), "F1", "District, Region -> AreaCode")
	cands := ExtendByOne(counter, fd, CandidateOptions{})
	for i := 1; i < len(cands); i++ {
		if CompareCandidates(cands[i-1], cands[i]) > 0 {
			t.Fatalf("candidates out of order at %d", i)
		}
	}
}

func TestCompareCandidatesTotalOrder(t *testing.T) {
	mk := func(attr int, conf float64, good int) Candidate {
		return Candidate{Attr: attr, Measures: Measures{Confidence: conf, Goodness: good}}
	}
	a := mk(1, 1.0, 0)
	b := mk(2, 1.0, 3)
	c := mk(3, 0.9, 0)
	d := mk(4, 0.9, 0)
	if CompareCandidates(a, b) >= 0 {
		t.Error("g=0 must beat g=3 at equal confidence")
	}
	if CompareCandidates(b, c) >= 0 {
		t.Error("higher confidence must win over better goodness")
	}
	if CompareCandidates(c, d) >= 0 || CompareCandidates(d, c) <= 0 {
		t.Error("attr index must break full ties")
	}
	// Negative goodness compares by magnitude: |−1| < |3|.
	e := mk(5, 1.0, -1)
	if CompareCandidates(e, b) >= 0 {
		t.Error("|g|=1 must beat |g|=3")
	}
}

func TestExtendByOneGoodnessThreshold(t *testing.T) {
	counter := placesCounter(t)
	fd := placesFD(t, counter.Relation(), "F1", "District, Region -> AreaCode")
	maxG := 0
	cands := ExtendByOne(counter, fd, CandidateOptions{MaxGoodness: &maxG})
	for _, c := range cands {
		if abs(c.Measures.Goodness) > 0 {
			t.Fatalf("candidate %d violates threshold: g=%d", c.Attr, c.Measures.Goodness)
		}
	}
	// Table 1: Municipal(0), Zip(0), City(0) survive a |g| ≤ 0 threshold.
	if len(cands) != 3 {
		t.Fatalf("thresholded candidates = %d, want 3", len(cands))
	}
}

func TestExtendByOneEmptyPool(t *testing.T) {
	// FD covers every column: nothing to extend with.
	counter := pli.NewPLICounter(buildRelation(t, []string{"a", "b"}, [][]string{{"1", "x"}, {"1", "y"}}))
	fd := MustFD("F", bitset.New(0), bitset.New(1))
	if got := ExtendByOne(counter, fd, CandidateOptions{}); len(got) != 0 {
		t.Fatalf("candidates = %d, want 0", len(got))
	}
}

func TestComputeOnEmptyRelation(t *testing.T) {
	schema, _ := placesSchema(t), 0
	_ = schema
	r := buildRelation(t, []string{"a", "b"}, nil)
	counter := pli.NewPLICounter(r)
	m := Compute(counter, MustFD("F", bitset.New(0), bitset.New(1)))
	if !m.Exact() {
		t.Fatal("every FD is vacuously exact on the empty instance")
	}
	if m.Confidence != 1 {
		t.Fatalf("confidence on empty = %v, want 1", m.Confidence)
	}
}

func TestMeasuresStringFormats(t *testing.T) {
	counter := placesCounter(t)
	fd := placesFD(t, counter.Relation(), "F1", "District, Region -> AreaCode")
	m := Compute(counter, fd)
	if got := m.ConfidenceRatio(); got != "2/4" {
		t.Fatalf("ratio = %q", got)
	}
	if got := m.String(); got != "c=0.500 (2/4), g=-2" {
		t.Fatalf("String = %q", got)
	}
}
