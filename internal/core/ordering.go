package core

import (
	"sort"

	"github.com/evolvefd/evolvefd/internal/pli"
)

// ConflictScope selects which attributes count towards the conflict score
// cf_F of §4.1.
//
// The paper's formula sums |F ∩ F′| / max(|F|, |F′|) over the other FDs and
// divides by |𝓕|. With full-FD attribute overlap (AllAttributes) the
// running example yields cf(F2) = cf(F3) = 1/9 ≠ 0, yet the ranks printed in
// §4.1 (0.25, 0.167, 0.056) equal ic/2, i.e. cf = 0 for all three — which is
// what consequent-only overlap produces (F1, F2, F3 share no consequent
// attribute). Both scopes are provided; both orderings agree on the running
// example. See DESIGN.md §2.
type ConflictScope int

const (
	// ScopeAllAttributes counts overlap over XY, the formula as printed.
	ScopeAllAttributes ConflictScope = iota
	// ScopeConsequentOnly counts overlap over Y only; reproduces the
	// example's printed rank values.
	ScopeConsequentOnly
)

// ConflictScore computes cf_F with respect to the other FDs. The FD itself
// is excluded from the sum (including it would add a constant 1/|𝓕| to every
// FD, contradicting the printed example values); the divisor |𝓕| counts the
// full set, as printed.
func ConflictScore(fd FD, all []FD, scope ConflictScope) float64 {
	if len(all) == 0 {
		return 0
	}
	sum := 0.0
	for _, other := range all {
		if other.Equal(fd) {
			continue
		}
		var overlap int
		switch scope {
		case ScopeConsequentOnly:
			overlap = fd.Y.Intersect(other.Y).Len()
		default:
			overlap = fd.Overlap(other)
		}
		max := fd.Size()
		if o := other.Size(); o > max {
			max = o
		}
		if max > 0 {
			sum += float64(overlap) / float64(max)
		}
	}
	return sum / float64(len(all))
}

// RankedFD is an FD with its repair-priority rank O_F = (ic + cf)/2 (§4.1).
type RankedFD struct {
	FD FD
	// Measures are the FD's instance measures (confidence, goodness, …).
	Measures Measures
	// Conflict is cf_F, the instance-independent conflict score.
	Conflict float64
	// Rank is O_F = (Inconsistency + Conflict) / 2; higher ranks are
	// repaired first.
	Rank float64
}

// OrderFDs computes ranks for every FD and returns them sorted by
// decreasing rank (the repair order of Algorithm 1). Ties break by label
// then by antecedent attribute order, so the output is deterministic.
func OrderFDs(counter pli.Counter, fds []FD, scope ConflictScope) []RankedFD {
	return orderFDs(func(fd FD) Measures { return Compute(counter, fd) }, fds, scope)
}

// orderFDs is the shared ranking loop behind OrderFDs and OrderFDsCached;
// compute supplies the measures of one FD.
func orderFDs(compute func(FD) Measures, fds []FD, scope ConflictScope) []RankedFD {
	out := make([]RankedFD, len(fds))
	for i, fd := range fds {
		m := compute(fd)
		cf := ConflictScore(fd, fds, scope)
		out[i] = RankedFD{
			FD:       fd,
			Measures: m,
			Conflict: cf,
			Rank:     (m.Inconsistency() + cf) / 2,
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Rank != out[b].Rank {
			return out[a].Rank > out[b].Rank
		}
		if out[a].FD.Label != out[b].FD.Label {
			return out[a].FD.Label < out[b].FD.Label
		}
		return out[a].FD.X.Min() < out[b].FD.X.Min()
	})
	return out
}

// Violated filters an ordered FD list down to the FDs that are not exact on
// the instance — the ones Algorithm 1 proceeds to repair.
func Violated(ranked []RankedFD) []RankedFD {
	var out []RankedFD
	for _, r := range ranked {
		if !r.Measures.Exact() {
			out = append(out, r)
		}
	}
	return out
}
