package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// uniqueVsPairRelation is §4.4's drawback scenario: the UNIQUE attribute u
// (column 2) is the only single-attribute repair; b and c (columns 3, 4)
// repair together with goodness 0.
func uniqueVsPairRelation(t *testing.T) *relation.Relation {
	return buildRelation(t, []string{"x", "y", "u", "b", "c"}, [][]string{
		{"1", "p", "k1", "b1", "c1"},
		{"1", "q", "k2", "b1", "c2"},
		{"1", "r", "k3", "b2", "c1"},
		{"1", "s", "k4", "b2", "c2"},
		{"1", "p", "k5", "b1", "c1"},
		{"1", "q", "k6", "b1", "c2"},
		{"1", "r", "k7", "b2", "c1"},
	})
}

func TestBalancedObjectivePrefersGoodRepair(t *testing.T) {
	counter := pli.NewPLICounter(uniqueVsPairRelation(t))
	fd := MustFD("F", bitset.New(0), bitset.New(1))

	// Minimal-first (the paper's default): the UNIQUE single-attribute
	// repair wins on size.
	rep, _, ok := FindFirstRepair(counter, fd, RepairOptions{})
	if !ok || !rep.Added.Equal(bitset.New(2)) {
		t.Fatalf("minimal-first repair = %v, want {u}", rep.Added)
	}

	// Balanced objective: score({u}) = 1 + 0 + 3 = 4;
	// score({b,c}) = 2 + 0 + 0 = 2 → the two-attribute repair wins without
	// any hard threshold.
	rep, _, ok = FindFirstRepair(counter, fd, RepairOptions{Objective: ObjectiveBalanced})
	if !ok {
		t.Fatal("balanced repair must exist")
	}
	if !rep.Added.Equal(bitset.New(3, 4)) {
		t.Fatalf("balanced repair = %v, want {b,c}", rep.Added)
	}
	if rep.Measures.Goodness != 0 {
		t.Fatalf("balanced repair goodness = %d, want 0", rep.Measures.Goodness)
	}
}

func TestBalancedObjectiveGoodnessWeightZeroish(t *testing.T) {
	counter := pli.NewPLICounter(uniqueVsPairRelation(t))
	fd := MustFD("F", bitset.New(0), bitset.New(1))
	// A tiny λ makes goodness nearly free: score({u}) ≈ 1 beats
	// score({b,c}) = 2, recovering minimal-first behaviour.
	rep, _, ok := FindFirstRepair(counter, fd, RepairOptions{
		Objective:      ObjectiveBalanced,
		GoodnessWeight: 0.01,
	})
	if !ok || !rep.Added.Equal(bitset.New(2)) {
		t.Fatalf("λ→0 balanced repair = %v, want {u}", rep.Added)
	}
}

func TestBalancedFindAllOrderedByScore(t *testing.T) {
	counter := pli.NewPLICounter(uniqueVsPairRelation(t))
	fd := MustFD("F", bitset.New(0), bitset.New(1))
	res := FindRepairs(counter, fd, RepairOptions{Objective: ObjectiveBalanced})
	if len(res.Repairs) < 2 {
		t.Fatalf("repairs = %d, want ≥ 2", len(res.Repairs))
	}
	scoreOf := func(r Repair) float64 {
		return float64(r.Added.Len()) + r.Measures.Inconsistency() +
			math.Abs(float64(r.Measures.Goodness))
	}
	for i := 1; i < len(res.Repairs); i++ {
		if scoreOf(res.Repairs[i]) < scoreOf(res.Repairs[i-1]) {
			t.Fatalf("find-all not in score order at %d", i)
		}
	}
	// {b,c} must rank first.
	if !res.Repairs[0].Added.Equal(bitset.New(3, 4)) {
		t.Fatalf("best balanced repair = %v, want {b,c}", res.Repairs[0].Added)
	}
}

// TestQuickBalancedFirstIsOptimal cross-validates the stopping rule: the
// repair returned by FirstOnly+balanced must achieve the minimum objective
// over ALL repairs, found by brute-force enumeration.
func TestQuickBalancedFirstIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	lambda := 1.0
	for iter := 0; iter < 60; iter++ {
		cols := []string{"x", "y", "a", "b", "c", "d"}
		rows := make([][]string, 4+rng.Intn(18))
		for i := range rows {
			rows[i] = []string{
				string(rune('A' + rng.Intn(2))),
				string(rune('A' + rng.Intn(3))),
				string(rune('A' + rng.Intn(4))),
				string(rune('A' + rng.Intn(3))),
				string(rune('A' + rng.Intn(len(rows)))), // near-key column
				string(rune('A' + rng.Intn(3))),
			}
		}
		r := buildRelation(t, cols, rows)
		counter := pli.NewPLICounter(r)
		fd := MustFD("F", bitset.New(0), bitset.New(1))
		if Compute(counter, fd).Exact() {
			continue
		}
		rep, _, ok := FindFirstRepair(counter, fd, RepairOptions{Objective: ObjectiveBalanced})
		bestScore, anyRepair := bruteForceBestScore(counter, r, fd, lambda)
		if ok != anyRepair {
			t.Fatalf("iter %d: found=%v bruteforce=%v", iter, ok, anyRepair)
		}
		if !ok {
			continue
		}
		got := float64(rep.Added.Len()) + rep.Measures.Inconsistency() +
			lambda*math.Abs(float64(rep.Measures.Goodness))
		if math.Abs(got-bestScore) > 1e-9 {
			t.Fatalf("iter %d: balanced first score %v, brute-force best %v (added %v)",
				iter, got, bestScore, rep.Added)
		}
	}
}

// bruteForceBestScore enumerates every subset of candidate attributes and
// returns the best balanced score among exact extensions.
func bruteForceBestScore(counter pli.Counter, r *relation.Relation, fd FD, lambda float64) (float64, bool) {
	var pool []int
	attrs := fd.Attrs()
	for c := 0; c < r.NumCols(); c++ {
		if !attrs.Contains(c) && !r.HasNulls(c) {
			pool = append(pool, c)
		}
	}
	best := math.Inf(1)
	found := false
	for mask := 1; mask < 1<<len(pool); mask++ {
		var u bitset.Set
		for i, c := range pool {
			if mask&(1<<i) != 0 {
				u.Add(c)
			}
		}
		m := Compute(counter, fd.WithExtendedAntecedent(u))
		if !m.Exact() {
			continue
		}
		found = true
		score := float64(u.Len()) + m.Inconsistency() + lambda*math.Abs(float64(m.Goodness))
		if score < best {
			best = score
		}
	}
	return best, found
}

func TestBalancedObjectiveUnrepairable(t *testing.T) {
	counter := placesCounter(t)
	fd := placesFD(t, counter.Relation(), "F3", "PhNo, Zip -> Street")
	rep, stats, ok := FindFirstRepair(counter, fd, RepairOptions{Objective: ObjectiveBalanced})
	if ok {
		t.Fatalf("F3 is unrepairable, got %v", rep.Added)
	}
	if !stats.Exhausted {
		t.Fatal("unrepairable balanced search should exhaust the space")
	}
}

func TestBalancedObjectiveRespectsBudget(t *testing.T) {
	counter := placesCounter(t)
	fd := placesFD(t, counter.Relation(), "F4", "District -> PhNo")
	res := FindRepairs(counter, fd, RepairOptions{
		Objective:    ObjectiveBalanced,
		FirstOnly:    true,
		MaxEvaluated: 8,
	})
	// The single-attribute seeding (7 candidates) always completes; the
	// budget stops the search right after.
	if res.Stats.Evaluated > 8 {
		t.Fatalf("budget exceeded: %d", res.Stats.Evaluated)
	}
	if res.Stats.Exhausted {
		t.Fatal("tripped budget must clear Exhausted")
	}
}
