package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/pli"
)

// Candidate is one attribute A evaluated as an extension of a violated FD
// X → Y, carrying the measures of the candidate FD F_A : XA → Y (§4.2).
type Candidate struct {
	// Attr is the schema position of the added attribute A.
	Attr int
	// FD is the extended dependency XA → Y.
	FD FD
	// Measures are the measures of the extended dependency.
	Measures Measures
}

// CandidateOptions controls candidate generation.
type CandidateOptions struct {
	// Parallelism bounds the number of goroutines evaluating candidates;
	// 0 means GOMAXPROCS, 1 disables concurrency.
	Parallelism int
	// MaxGoodness, when non-nil, discards candidates whose |goodness|
	// exceeds the threshold. This is the user-specified maximum goodness
	// threshold the paper proposes in §4.4 to keep UNIQUE-like attributes
	// out of repairs.
	MaxGoodness *int
	// Allowed, when non-nil, restricts the candidate pool to this attribute
	// set (already excluding NULL columns, for example). When nil all
	// NULL-free attributes outside XY are candidates.
	Allowed *bitset.Set
}

// CandidatePool returns the attribute positions eligible to extend fd on
// counter's relation: every attribute of R except XY, minus columns
// containing NULLs ("attributes involved in FDs do not contain NULL values",
// §3 footnote 1 and §6.2.1).
func CandidatePool(counter pli.Counter, fd FD, opts CandidateOptions) []int {
	r := counter.Relation()
	var pool []int
	attrs := fd.Attrs()
	for col := 0; col < r.NumCols(); col++ {
		if attrs.Contains(col) {
			continue
		}
		if r.HasNulls(col) {
			continue
		}
		if opts.Allowed != nil && !opts.Allowed.Contains(col) {
			continue
		}
		pool = append(pool, col)
	}
	return pool
}

// ExtendByOne evaluates every eligible attribute A as a one-step extension
// of fd and returns all candidates ranked best-first (Algorithm 2). The
// ranking is the paper's: primary key descending confidence, secondary key
// goodness closest to zero (the tie-break Table 1 exhibits: Municipal g=0
// precedes PhNo g=3), final deterministic tie-break on schema position.
//
// Candidate evaluation is read-only on the counter and fans out across
// goroutines; results are re-sorted, so the output is deterministic
// regardless of Parallelism.
func ExtendByOne(counter pli.Counter, fd FD, opts CandidateOptions) []Candidate {
	pool := CandidatePool(counter, fd, opts)
	cands := make([]Candidate, len(pool))
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	parallelFor(len(pool), workers, func(i int) {
		cands[i] = evalCandidate(counter, fd, pool[i])
	})
	if opts.MaxGoodness != nil {
		kept := cands[:0]
		for _, c := range cands {
			if abs(c.Measures.Goodness) <= *opts.MaxGoodness {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	SortCandidates(cands)
	return cands
}

func evalCandidate(counter pli.Counter, fd FD, attr int) Candidate {
	ext := fd.WithExtendedAntecedent(bitset.New(attr))
	return Candidate{Attr: attr, FD: ext, Measures: Compute(counter, ext)}
}

// parallelFor runs fn(0) … fn(n-1) across at most `workers` goroutines
// (inline when one suffices). Each index runs exactly once; fn must be safe
// for concurrent calls on distinct indices. The shared fan-out behind
// candidate evaluation, frontier-expansion waves, and concurrent FD repair.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// SortCandidates orders candidates best-first: confidence descending, then
// |goodness| ascending, then schema position ascending.
func SortCandidates(cands []Candidate) {
	sort.SliceStable(cands, func(a, b int) bool {
		return CompareCandidates(cands[a], cands[b]) < 0
	})
}

// CompareCandidates returns <0 when a ranks strictly better than b under the
// candidate ordering, >0 when worse, 0 never (the attribute position breaks
// all ties).
func CompareCandidates(a, b Candidate) int {
	switch {
	case a.Measures.Confidence > b.Measures.Confidence:
		return -1
	case a.Measures.Confidence < b.Measures.Confidence:
		return 1
	}
	ga, gb := abs(a.Measures.Goodness), abs(b.Measures.Goodness)
	switch {
	case ga < gb:
		return -1
	case ga > gb:
		return 1
	}
	switch {
	case a.Attr < b.Attr:
		return -1
	case a.Attr > b.Attr:
		return 1
	}
	return 0
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
