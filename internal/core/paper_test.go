package core

import (
	"math"
	"testing"

	"github.com/evolvefd/evolvefd/internal/datasets"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// This file pins every number the paper prints for the running example:
// the confidence/goodness of F1–F4 (§3, §4.2, §4.3), the FD repair order
// (§4.1), and Tables 1, 2 and 3. A change that breaks any of these breaks
// the reproduction.

func placesCounter(t testing.TB) pli.Counter {
	t.Helper()
	return pli.NewPLICounter(datasets.Places())
}

func placesFD(t testing.TB, r *relation.Relation, label, spec string) FD {
	t.Helper()
	fd, err := ParseFD(r.Schema(), label, spec)
	if err != nil {
		t.Fatal(err)
	}
	return fd
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPaperSection3Measures(t *testing.T) {
	counter := placesCounter(t)
	r := counter.Relation()

	cases := []struct {
		label, spec string
		numX, numXY int
		conf        float64
		good        int
	}{
		// §3: c_F1 = 0.5, g_F1 = −2; c_F2 = 0.667, g_F2 = −1;
		//     c_F3 = 0.889, g_F3 = 1.
		{"F1", "District, Region -> AreaCode", 2, 4, 0.5, -2},
		{"F2", "Zip -> City, State", 4, 6, 2.0 / 3.0, -1},
		{"F3", "PhNo, Zip -> Street", 8, 9, 8.0 / 9.0, 1},
		// §4.3: c_F4 = 2/7 ≈ 0.29, g_F4 = −4.
		{"F4", "District -> PhNo", 2, 7, 2.0 / 7.0, -4},
	}
	for _, c := range cases {
		fd := placesFD(t, r, c.label, c.spec)
		m := Compute(counter, fd)
		if m.NumX != c.numX || m.NumXY != c.numXY {
			t.Errorf("%s: |π_X|/|π_XY| = %d/%d, want %d/%d", c.label, m.NumX, m.NumXY, c.numX, c.numXY)
		}
		if !almostEqual(m.Confidence, c.conf) {
			t.Errorf("%s: confidence = %v, want %v", c.label, m.Confidence, c.conf)
		}
		if m.Goodness != c.good {
			t.Errorf("%s: goodness = %d, want %d", c.label, m.Goodness, c.good)
		}
		if m.Exact() {
			t.Errorf("%s must be approximate (Definition 4)", c.label)
		}
	}
}

func TestPaperSection41RepairOrder(t *testing.T) {
	counter := placesCounter(t)
	r := counter.Relation()
	fds := []FD{
		placesFD(t, r, "F1", "District, Region -> AreaCode"),
		placesFD(t, r, "F2", "Zip -> City, State"),
		placesFD(t, r, "F3", "PhNo, Zip -> Street"),
	}

	// With consequent-only conflict scope the printed ranks (0.25, 0.167,
	// 0.056) are reproduced exactly: no consequent attributes are shared,
	// so cf = 0 and O_F = ic/2.
	ranked := OrderFDs(counter, fds, ScopeConsequentOnly)
	wantOrder := []string{"F1", "F2", "F3"}
	wantRanks := []float64{0.25, (1 - 2.0/3.0) / 2, (1 - 8.0/9.0) / 2}
	for i, rf := range ranked {
		if rf.FD.Label != wantOrder[i] {
			t.Fatalf("order[%d] = %s, want %s", i, rf.FD.Label, wantOrder[i])
		}
		if !almostEqual(rf.Rank, wantRanks[i]) {
			t.Errorf("rank(%s) = %v, want %v", rf.FD.Label, rf.Rank, wantRanks[i])
		}
		if rf.Conflict != 0 {
			t.Errorf("cf(%s) = %v, want 0 under consequent scope", rf.FD.Label, rf.Conflict)
		}
	}

	// With the formula as printed (full attribute overlap) F2 and F3 share
	// Zip, so their conflict scores are 1/9 — the ordering is unchanged.
	rankedAll := OrderFDs(counter, fds, ScopeAllAttributes)
	for i, rf := range rankedAll {
		if rf.FD.Label != wantOrder[i] {
			t.Fatalf("full-overlap order[%d] = %s, want %s", i, rf.FD.Label, wantOrder[i])
		}
	}
	if !almostEqual(rankedAll[1].Conflict, 1.0/9.0) {
		t.Errorf("cf(F2) full overlap = %v, want 1/9", rankedAll[1].Conflict)
	}
	if !almostEqual(rankedAll[2].Conflict, 1.0/9.0) {
		t.Errorf("cf(F3) full overlap = %v, want 1/9", rankedAll[2].Conflict)
	}
	if rankedAll[0].Conflict != 0 {
		t.Errorf("cf(F1) = %v, want 0 (F1 shares no attribute)", rankedAll[0].Conflict)
	}
}

// expectTable asserts ExtendByOne's ranked output: attribute order,
// confidence ratios, and goodness values.
func expectTable(t *testing.T, counter pli.Counter, fd FD, want []struct {
	attr  string
	numX  int
	numXY int
	good  int
}) {
	t.Helper()
	r := counter.Relation()
	got := ExtendByOne(counter, fd, CandidateOptions{})
	if len(got) != len(want) {
		t.Fatalf("%s: %d candidates, want %d", fd.Label, len(got), len(want))
	}
	for i, w := range want {
		name := r.Schema().Column(got[i].Attr).Name
		if name != w.attr {
			t.Errorf("%s row %d: attr = %s, want %s", fd.Label, i, name, w.attr)
			continue
		}
		m := got[i].Measures
		if m.NumX != w.numX || m.NumXY != w.numXY {
			t.Errorf("%s row %s: c = %d/%d, want %d/%d", fd.Label, w.attr, m.NumX, m.NumXY, w.numX, w.numXY)
		}
		if m.Goodness != w.good {
			t.Errorf("%s row %s: g = %d, want %d", fd.Label, w.attr, m.Goodness, w.good)
		}
	}
}

func TestPaperTable1(t *testing.T) {
	counter := placesCounter(t)
	fd := placesFD(t, counter.Relation(), "F1", "District, Region -> AreaCode")
	// Table 1, all six rows in printed order.
	expectTable(t, counter, fd, []struct {
		attr  string
		numX  int
		numXY int
		good  int
	}{
		{"Municipal", 4, 4, 0},
		{"PhNo", 7, 7, 3},
		{"Street", 7, 8, 3},
		{"Zip", 4, 5, 0},
		{"City", 4, 5, 0},
		{"State", 3, 5, -1},
	})
}

func TestPaperTable2(t *testing.T) {
	counter := placesCounter(t)
	fd := placesFD(t, counter.Relation(), "F4", "District -> PhNo")
	// Table 2, all seven rows in printed order.
	expectTable(t, counter, fd, []struct {
		attr  string
		numX  int
		numXY int
		good  int
	}{
		{"Street", 7, 8, 1},
		{"Municipal", 4, 7, -2},
		{"AreaCode", 4, 7, -2},
		{"City", 4, 7, -2},
		{"Zip", 4, 8, -2},
		{"State", 3, 7, -3},
		{"Region", 2, 7, -4},
	})
}

func TestPaperTable3(t *testing.T) {
	counter := placesCounter(t)
	r := counter.Relation()
	fd := placesFD(t, r, "F4Street", "District, Street -> PhNo")
	// Table 3's confidence column is reproduced exactly. Two deviations
	// from the printed table, both documented in EXPERIMENTS.md:
	//
	//  1. the printed goodness column (4,4,4,4,3) does not follow
	//     Definition 3: it equals |π_{XA}| − |π_AreaCode| (the consequent
	//     of F1 — a slip carried over from Table 1) with one further
	//     misprint in the City row. Under Definition 3, g = |π_{XA}| −
	//     |π_PhNo| with |π_PhNo| = 6, giving the values asserted here;
	//  2. the paper omits the Region row although Region ∈ R \ XY. Region
	//     is a no-op extension (District ↔ Region is 1:1, so π_{XA} = π_X
	//     and the measures equal the parent's); we keep it, ranked within
	//     the 0.875 tie by schema position.
	expectTable(t, counter, fd, []struct {
		attr  string
		numX  int
		numXY int
		good  int
	}{
		{"Municipal", 8, 8, 2},
		{"AreaCode", 8, 8, 2},
		{"Zip", 8, 9, 2},
		{"Region", 7, 8, 1},
		{"City", 7, 8, 1},
		{"State", 7, 8, 1},
	})
}

func TestPaperSection43IterativeRepair(t *testing.T) {
	// §4.3: repairing F4 needs two attributes; the first step picks Street
	// (best rank in Table 2), the second finds Municipal and AreaCode as
	// exact completions. The two repairs {Street, Municipal} and
	// {Street, AreaCode} tie.
	counter := placesCounter(t)
	r := counter.Relation()
	fd := placesFD(t, r, "F4", "District -> PhNo")

	res := FindRepairs(counter, fd, RepairOptions{})
	if len(res.Repairs) == 0 {
		t.Fatal("F4 must be repairable")
	}
	// No single-attribute repair exists (Table 2 has no confidence-1 row).
	for _, rep := range res.Repairs {
		if rep.Added.Len() < 2 {
			t.Fatalf("unexpected single-attribute repair +{%s}", r.Schema().FormatSet(rep.Added))
		}
	}
	// The two §4.3 repairs must be found, as minimal (size 2), before any
	// larger repair.
	first, second := res.Repairs[0], res.Repairs[1]
	got := map[string]bool{
		r.Schema().FormatSet(first.Added):  true,
		r.Schema().FormatSet(second.Added): true,
	}
	if !got["Municipal,Street"] || !got["AreaCode,Street"] {
		t.Fatalf("top-2 repairs = %v, want {Street,Municipal} and {Street,AreaCode}", got)
	}
	if first.Added.Len() != 2 || second.Added.Len() != 2 {
		t.Fatal("both §4.3 repairs must have exactly 2 added attributes")
	}
	// Both tie on measures: c = 1 and equal goodness (§4.3: "They score the
	// same value also for the goodness thus they are actually equivalent").
	if !first.Measures.Exact() || !second.Measures.Exact() {
		t.Fatal("repairs must be exact")
	}
	if first.Measures.Goodness != second.Measures.Goodness {
		t.Fatal("the two §4.3 repairs must tie on goodness")
	}
}

func TestPaperSection42SingleRepairsForF1(t *testing.T) {
	// §4.2: Municipal and PhNo both give exact FDs for F1; Municipal ranks
	// first because its goodness (0) is closer to zero than PhNo's (3).
	counter := placesCounter(t)
	r := counter.Relation()
	fd := placesFD(t, r, "F1", "District, Region -> AreaCode")
	res := FindRepairs(counter, fd, RepairOptions{MaxAdded: 1})
	if len(res.Repairs) != 2 {
		t.Fatalf("single-attribute repairs = %d, want 2", len(res.Repairs))
	}
	if name := r.Schema().FormatSet(res.Repairs[0].Added); name != "Municipal" {
		t.Errorf("best repair = %s, want Municipal", name)
	}
	if name := r.Schema().FormatSet(res.Repairs[1].Added); name != "PhNo" {
		t.Errorf("second repair = %s, want PhNo", name)
	}
}

func TestEpsilonCBOnPlaces(t *testing.T) {
	// ε_CB = ic + |g| (§5). For F1: (1−0.5) + 2 = 2.5.
	counter := placesCounter(t)
	fd := placesFD(t, counter.Relation(), "F1", "District, Region -> AreaCode")
	m := Compute(counter, fd)
	if !almostEqual(m.EpsilonCB(), 2.5) {
		t.Fatalf("ε_CB(F1) = %v, want 2.5", m.EpsilonCB())
	}
	// For the repaired F1+Municipal: ic = 0, g = 0 → ε_CB = 0 (best case).
	repaired := fd.WithExtendedAntecedent(mustIndexSet(t, counter.Relation(), "Municipal"))
	mr := Compute(counter, repaired)
	if mr.EpsilonCB() != 0 {
		t.Fatalf("ε_CB(F1+Municipal) = %v, want 0", mr.EpsilonCB())
	}
}
