package core

import (
	"math/rand"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
)

func mustIndexSet(t testing.TB, r *relation.Relation, names ...string) bitset.Set {
	t.Helper()
	s, err := r.Schema().IndexSet(names...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildRelation(t testing.TB, cols []string, rows [][]string) *relation.Relation {
	t.Helper()
	schema, err := relation.SchemaOf(cols...)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New("t", schema)
	for _, row := range rows {
		if err := r.AppendStrings(row...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestFindRepairsExactFDNoWork(t *testing.T) {
	r := buildRelation(t, []string{"a", "b"}, [][]string{{"1", "x"}, {"2", "y"}})
	counter := pli.NewPLICounter(r)
	fd := MustFD("F", bitset.New(0), bitset.New(1))
	res := FindRepairs(counter, fd, RepairOptions{})
	if len(res.Repairs) != 0 {
		t.Fatal("exact FD needs no repairs")
	}
	if !res.Initial.Exact() || !res.Stats.Exhausted {
		t.Fatal("exact FD result flags wrong")
	}
	if res.Stats.Evaluated != 0 {
		t.Fatal("exact FD should not evaluate candidates")
	}
}

func TestFindRepairsNoRepairPossible(t *testing.T) {
	// Two identical rows except for b: a→b cannot be repaired by any
	// extension because the rows agree on every other attribute.
	r := buildRelation(t, []string{"a", "b", "c"}, [][]string{
		{"1", "x", "p"}, {"1", "y", "p"},
	})
	counter := pli.NewPLICounter(r)
	fd := MustFD("F", bitset.New(0), bitset.New(1))
	res := FindRepairs(counter, fd, RepairOptions{})
	if len(res.Repairs) != 0 {
		t.Fatal("no repair should exist")
	}
	if !res.Stats.Exhausted {
		t.Fatal("search space should be exhausted")
	}
	if _, _, ok := FindFirstRepair(counter, fd, RepairOptions{}); ok {
		t.Fatal("FindFirstRepair must report no repair")
	}
}

func TestFindFirstRepairIsMinimal(t *testing.T) {
	counter := pli.NewPLICounter(buildRelation(t,
		[]string{"a", "b", "u", "c", "d"},
		[][]string{
			// a→b violated; u is a key (repairs alone); c,d repair together.
			{"1", "x", "k1", "p", "q"},
			{"1", "y", "k2", "p", "r"},
			{"2", "x", "k3", "s", "q"},
		}))
	fd := MustFD("F", bitset.New(0), bitset.New(1))
	rep, stats, ok := FindFirstRepair(counter, fd, RepairOptions{})
	if !ok {
		t.Fatal("repair must exist")
	}
	if rep.Added.Len() != 1 {
		t.Fatalf("first repair size = %d, want 1 (minimal)", rep.Added.Len())
	}
	if stats.Evaluated == 0 || stats.Elapsed < 0 {
		t.Fatal("stats not recorded")
	}
}

func TestGoodnessThresholdPrefersNonUniqueRepair(t *testing.T) {
	// §4.4's drawback scenario: a UNIQUE attribute u is the only
	// single-attribute repair, so minimality alone picks it; b and c repair
	// together with goodness 0. With a goodness threshold the designer gets
	// the two-attribute repair instead.
	rows := [][]string{
		// x | y | u    | b   | c
		{"1", "p", "k1", "b1", "c1"},
		{"1", "q", "k2", "b1", "c2"},
		{"1", "r", "k3", "b2", "c1"},
		{"1", "s", "k4", "b2", "c2"},
		{"1", "p", "k5", "b1", "c1"},
		{"1", "q", "k6", "b1", "c2"},
		{"1", "r", "k7", "b2", "c1"},
	}
	counter := pli.NewPLICounter(buildRelation(t, []string{"x", "y", "u", "b", "c"}, rows))
	fd := MustFD("F", bitset.New(0), bitset.New(1))

	// Without threshold: u alone is the minimal repair (g = 7−4 = 3).
	rep, _, ok := FindFirstRepair(counter, fd, RepairOptions{})
	if !ok || !rep.Added.Equal(bitset.New(2)) {
		t.Fatalf("unthresholded first repair = %v, want {u}", rep.Added)
	}
	if rep.Measures.Goodness != 3 {
		t.Fatalf("goodness of UNIQUE repair = %d, want 3", rep.Measures.Goodness)
	}
	// Cap |g| at 2: u is filtered; {b,c} (g = 4−4 = 0) is found instead.
	maxG := 2
	opts := RepairOptions{Candidates: CandidateOptions{MaxGoodness: &maxG}}
	rep, _, ok = FindFirstRepair(counter, fd, opts)
	if !ok {
		t.Fatal("thresholded repair must exist")
	}
	if rep.Added.Contains(2) {
		t.Fatalf("thresholded repair %v must avoid the UNIQUE attribute", rep.Added)
	}
	if !rep.Added.Equal(bitset.New(3, 4)) {
		t.Fatalf("thresholded repair = %v, want {b,c}", rep.Added)
	}
	if !rep.Measures.Exact() || rep.Measures.Goodness != 0 {
		t.Fatalf("thresholded repair must be exact with g=0, got %v", rep.Measures)
	}
}

func TestPruneNonMinimal(t *testing.T) {
	// c repairs alone; {b,d} repairs too. A superset of {c} like {b,c} can
	// be discovered through the non-exact prefix {b}; pruning removes it.
	rows := [][]string{
		{"1", "x", "b1", "c1", "d1"},
		{"1", "y", "b1", "c2", "d2"},
		{"2", "x", "b2", "c3", "d1"},
	}
	counter := pli.NewPLICounter(buildRelation(t, []string{"a", "y", "b", "c", "d"}, rows))
	fd := MustFD("F", bitset.New(0), bitset.New(1))

	all := FindRepairs(counter, fd, RepairOptions{})
	pruned := FindRepairs(counter, fd, RepairOptions{PruneNonMinimal: true})
	if len(pruned.Repairs) >= len(all.Repairs) {
		t.Fatalf("pruning should reduce %d repairs, got %d", len(all.Repairs), len(pruned.Repairs))
	}
	for _, a := range pruned.Repairs {
		for _, b := range pruned.Repairs {
			if a.Added.ProperSubsetOf(b.Added) {
				t.Fatalf("pruned set still contains superset pair %v ⊂ %v", a.Added, b.Added)
			}
		}
	}
}

func TestMaxAddedBound(t *testing.T) {
	counter := placesCounter(t)
	fd := placesFD(t, counter.Relation(), "F4", "District -> PhNo")
	// F4 needs 2 attributes; with MaxAdded 1 nothing is found.
	res := FindRepairs(counter, fd, RepairOptions{MaxAdded: 1})
	if len(res.Repairs) != 0 {
		t.Fatalf("MaxAdded=1 should find nothing for F4, got %d", len(res.Repairs))
	}
	if !res.Stats.Exhausted {
		t.Fatal("bounded space should still be exhausted")
	}
}

func TestMaxEvaluatedBudget(t *testing.T) {
	counter := placesCounter(t)
	fd := placesFD(t, counter.Relation(), "F4", "District -> PhNo")
	res := FindRepairs(counter, fd, RepairOptions{MaxEvaluated: 8})
	if res.Stats.Evaluated > 8 {
		t.Fatalf("budget exceeded: %d > 8", res.Stats.Evaluated)
	}
	if res.Stats.Exhausted {
		t.Fatal("tripped budget must clear Exhausted")
	}
}

func TestRepairsRespectNullColumns(t *testing.T) {
	// Column n has NULLs and must never appear in a repair even though it
	// would fix the FD.
	rows := [][]string{
		{"1", "x", "n1", "c1"},
		{"1", "y", "", "c2"},
		{"2", "x", "n3", "c3"},
	}
	counter := pli.NewPLICounter(buildRelation(t, []string{"a", "b", "n", "c"}, rows))
	fd := MustFD("F", bitset.New(0), bitset.New(1))
	res := FindRepairs(counter, fd, RepairOptions{})
	for _, rep := range res.Repairs {
		if rep.Added.Contains(2) {
			t.Fatalf("repair %v uses NULL column", rep.Added)
		}
	}
	if len(res.Repairs) == 0 {
		t.Fatal("c should still repair")
	}
}

func TestFindAllEnumeratesEachSetOnce(t *testing.T) {
	counter := placesCounter(t)
	fd := placesFD(t, counter.Relation(), "F4", "District -> PhNo")
	res := FindRepairs(counter, fd, RepairOptions{})
	seen := map[string]bool{}
	for _, rep := range res.Repairs {
		k := rep.Added.Key()
		if seen[k] {
			t.Fatalf("duplicate repair %v", rep.Added)
		}
		seen[k] = true
	}
}

// TestQuickFirstRepairMatchesBruteForce cross-validates minimality: the
// first repair's size must equal the smallest subset size that makes the FD
// exact, found by brute-force enumeration.
func TestQuickFirstRepairMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 60; iter++ {
		cols := []string{"x", "y", "a", "b", "c", "d"}
		nRows := 4 + rng.Intn(20)
		rows := make([][]string, nRows)
		for i := range rows {
			rows[i] = []string{
				string(rune('A' + rng.Intn(3))),
				string(rune('A' + rng.Intn(3))),
				string(rune('A' + rng.Intn(4))),
				string(rune('A' + rng.Intn(4))),
				string(rune('A' + rng.Intn(3))),
				string(rune('A' + rng.Intn(nRows))), // high-cardinality column
			}
		}
		r := buildRelation(t, cols, rows)
		counter := pli.NewPLICounter(r)
		fd := MustFD("F", bitset.New(0), bitset.New(1))
		if Compute(counter, fd).Exact() {
			continue
		}

		rep, _, ok := FindFirstRepair(counter, fd, RepairOptions{})
		want, wantOK := bruteForceMinRepair(r, fd)
		if ok != wantOK {
			t.Fatalf("iter %d: found=%v bruteforce=%v", iter, ok, wantOK)
		}
		if ok && rep.Added.Len() != want {
			t.Fatalf("iter %d: first repair size %d, brute force min %d", iter, rep.Added.Len(), want)
		}
	}
}

// bruteForceMinRepair enumerates all subsets of candidate attributes and
// returns the smallest size that yields an exact FD.
func bruteForceMinRepair(r *relation.Relation, fd FD) (int, bool) {
	var pool []int
	attrs := fd.Attrs()
	for c := 0; c < r.NumCols(); c++ {
		if !attrs.Contains(c) && !r.HasNulls(c) {
			pool = append(pool, c)
		}
	}
	best := -1
	for mask := 1; mask < 1<<len(pool); mask++ {
		var u bitset.Set
		for i, c := range pool {
			if mask&(1<<i) != 0 {
				u.Add(c)
			}
		}
		if r.SatisfiesFD(fd.X.Union(u), fd.Y) {
			if best < 0 || u.Len() < best {
				best = u.Len()
			}
		}
	}
	return best, best >= 0
}

// TestQuickFindAllAreAllExact: every returned repair must be exact and
// verified by the pairwise Definition 2 checker.
func TestQuickFindAllAreAllExact(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 40; iter++ {
		rows := make([][]string, 3+rng.Intn(15))
		for i := range rows {
			rows[i] = []string{
				string(rune('A' + rng.Intn(2))),
				string(rune('A' + rng.Intn(3))),
				string(rune('A' + rng.Intn(3))),
				string(rune('A' + rng.Intn(3))),
			}
		}
		r := buildRelation(t, []string{"x", "y", "a", "b"}, rows)
		counter := pli.NewPLICounter(r)
		fd := MustFD("F", bitset.New(0), bitset.New(1))
		res := FindRepairs(counter, fd, RepairOptions{})
		for _, rep := range res.Repairs {
			if !rep.Measures.Exact() {
				t.Fatalf("iter %d: non-exact repair returned", iter)
			}
			if !r.SatisfiesFDPairwise(rep.FD.X, rep.FD.Y) {
				t.Fatalf("iter %d: repair fails pairwise Definition 2", iter)
			}
			if rep.Added.Intersects(fd.Attrs()) {
				t.Fatalf("iter %d: repair reuses FD attributes", iter)
			}
		}
	}
}

// TestQuickRepairsDiscoveredSizeAscending: discovery order must never
// present a larger repair before a smaller one (queue invariant).
func TestQuickRepairsDiscoveredSizeAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 40; iter++ {
		rows := make([][]string, 3+rng.Intn(12))
		for i := range rows {
			rows[i] = []string{
				string(rune('A' + rng.Intn(2))),
				string(rune('A' + rng.Intn(4))),
				string(rune('A' + rng.Intn(3))),
				string(rune('A' + rng.Intn(3))),
				string(rune('A' + rng.Intn(4))),
			}
		}
		counter := pli.NewPLICounter(buildRelation(t, []string{"x", "y", "a", "b", "c"}, rows))
		fd := MustFD("F", bitset.New(0), bitset.New(1))
		res := FindRepairs(counter, fd, RepairOptions{})
		for i := 1; i < len(res.Repairs); i++ {
			if res.Repairs[i].Added.Len() < res.Repairs[i-1].Added.Len() {
				t.Fatalf("iter %d: repair %d smaller than repair %d", iter, i, i-1)
			}
		}
	}
}

func TestEvolveDatabaseRepairsInRankOrder(t *testing.T) {
	counter := placesCounter(t)
	r := counter.Relation()
	fds := []FD{
		placesFD(t, r, "F2", "Zip -> City, State"),
		placesFD(t, r, "F1", "District, Region -> AreaCode"),
	}
	results := EvolveDatabase(counter, fds, ScopeConsequentOnly, RepairOptions{FirstOnly: true})
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// F1 (rank 0.25) outranks F2 (0.167) and must be processed first.
	if results[0].FD.Label != "F1" || results[1].FD.Label != "F2" {
		t.Fatalf("order = %s, %s; want F1, F2", results[0].FD.Label, results[1].FD.Label)
	}
	for _, res := range results {
		if len(res.Repairs) == 0 {
			t.Fatalf("%s should be repairable", res.FD.Label)
		}
	}
}

func TestPlacesF3IsUnrepairable(t *testing.T) {
	// Tuples t10 and t11 agree on every attribute except Street, so no
	// antecedent extension can separate them: F3 has no repair at all. This
	// is a genuine property of the running-example instance.
	counter := placesCounter(t)
	fd := placesFD(t, counter.Relation(), "F3", "PhNo, Zip -> Street")
	res := FindRepairs(counter, fd, RepairOptions{})
	if len(res.Repairs) != 0 {
		t.Fatalf("F3 should be unrepairable, got %d repairs", len(res.Repairs))
	}
	if !res.Stats.Exhausted {
		t.Fatal("the full search space should have been explored")
	}
}
