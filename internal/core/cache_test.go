package core

import (
	"testing"

	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// appendRelation builds a small relation with appendable rows for cache
// tests: a, b, c string columns.
func appendRelation(t *testing.T, rows [][]string) *relation.Relation {
	t.Helper()
	schema, err := relation.SchemaOf("a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New("t", schema)
	for _, row := range rows {
		if err := r.AppendStrings(row...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func cacheFDs(t *testing.T, r *relation.Relation) (ab, ac FD) {
	t.Helper()
	var err error
	if ab, err = ParseFD(r.Schema(), "Fab", "a -> b"); err != nil {
		t.Fatal(err)
	}
	if ac, err = ParseFD(r.Schema(), "Fac", "a -> c"); err != nil {
		t.Fatal(err)
	}
	return ab, ac
}

func TestMeasureCacheAgreesWithCompute(t *testing.T) {
	r := appendRelation(t, [][]string{
		{"x", "1", "p"}, {"x", "2", "p"}, {"y", "1", "q"},
	})
	fdAB, fdAC := cacheFDs(t, r)
	mc := NewMeasureCache(pli.NewIncrementalCounter(r))
	for _, fd := range []FD{fdAB, fdAC} {
		want := Compute(pli.NewPLICounter(r), fd)
		if got := mc.Compute(fd); got != want {
			t.Fatalf("%s: cached measures %+v, want %+v", fd.Label, got, want)
		}
	}
}

func TestMeasureCacheReusesUnchangedFDs(t *testing.T) {
	r := appendRelation(t, [][]string{
		{"x", "1", "p"}, {"x", "2", "p"}, {"y", "1", "q"},
	})
	fdAB, fdAC := cacheFDs(t, r)
	mc := NewMeasureCache(pli.NewIncrementalCounter(r))
	mc.Compute(fdAB)
	mc.Compute(fdAC)
	if hits, misses := mc.Stats(); hits != 0 || misses != 2 {
		t.Fatalf("cold stats = %d/%d, want 0 hits 2 misses", hits, misses)
	}
	// Same instance: both recomputations are hits.
	mc.Compute(fdAB)
	mc.Compute(fdAC)
	if hits, _ := mc.Stats(); hits != 2 {
		t.Fatalf("warm hits = %d, want 2", hits)
	}
	// Append a tuple that duplicates an existing (a,b) pair but introduces a
	// fresh c value: a→b's three projections are unchanged (hit), a→c's π_C
	// and π_AC grew (miss).
	if err := r.AppendStrings("x", "1", "r"); err != nil {
		t.Fatal(err)
	}
	mAB := mc.Compute(fdAB)
	mAC := mc.Compute(fdAC)
	hits, misses := mc.Stats()
	if hits != 3 || misses != 3 {
		t.Fatalf("post-append stats = %d hits %d misses, want 3/3", hits, misses)
	}
	// Both answers must still equal a from-scratch computation.
	if want := Compute(pli.NewPLICounter(r), fdAB); mAB != want {
		t.Fatalf("a→b after append = %+v, want %+v", mAB, want)
	}
	if want := Compute(pli.NewPLICounter(r), fdAC); mAC != want {
		t.Fatalf("a→c after append = %+v, want %+v", mAC, want)
	}
}

func TestMeasureCacheEvict(t *testing.T) {
	r := appendRelation(t, [][]string{
		{"x", "1", "p"}, {"x", "2", "p"}, {"y", "1", "q"},
	})
	fdAB, fdAC := cacheFDs(t, r)
	mc := NewMeasureCache(pli.NewIncrementalCounter(r))
	mc.Compute(fdAB)
	mc.Compute(fdAC)
	if got := mc.Size(); got != 2 {
		t.Fatalf("size = %d, want 2", got)
	}
	mc.Evict(fdAB)
	if got := mc.Size(); got != 1 {
		t.Fatalf("size after evict = %d, want 1", got)
	}
	// The evicted FD recomputes (a fresh miss); the survivor still hits.
	mc.Compute(fdAB)
	mc.Compute(fdAC)
	if hits, misses := mc.Stats(); hits != 1 || misses != 3 {
		t.Fatalf("post-evict stats = %d hits %d misses, want 1/3", hits, misses)
	}
	// Evicting an absent entry is a no-op.
	mc.Evict(fdAB)
	mc.Evict(fdAB)
	if got := mc.Size(); got != 1 {
		t.Fatalf("size after double evict = %d, want 1", got)
	}
}

func TestMeasureCacheEmptyRelationGenerations(t *testing.T) {
	// Regression for the empty-relation stamp bug: measures computed on an
	// empty instance (vacuously exact) must not be reused after the first
	// rows arrive.
	r := appendRelation(t, nil)
	fdAB, _ := cacheFDs(t, r)
	mc := NewMeasureCache(pli.NewIncrementalCounter(r))
	if m := mc.Compute(fdAB); !m.Exact() {
		t.Fatalf("empty instance must be vacuously exact, got %+v", m)
	}
	for _, row := range [][]string{{"x", "1", "p"}, {"x", "2", "p"}} {
		if err := r.AppendStrings(row...); err != nil {
			t.Fatal(err)
		}
	}
	m := mc.Compute(fdAB)
	if m.Exact() {
		t.Fatalf("a → b is violated by the appended rows, got stale %+v", m)
	}
	if want := Compute(pli.NewPLICounter(r), fdAB); m != want {
		t.Fatalf("post-append measures = %+v, want %+v", m, want)
	}
}

func TestMeasureCachePlainCounterFallback(t *testing.T) {
	r := appendRelation(t, [][]string{{"x", "1", "p"}, {"y", "2", "q"}})
	fdAB, _ := cacheFDs(t, r)
	mc := NewMeasureCache(pli.NewPLICounter(r))
	if mc.Counter() == nil {
		t.Fatal("Counter accessor lost the counter")
	}
	want := Compute(pli.NewPLICounter(r), fdAB)
	if got := mc.Compute(fdAB); got != want {
		t.Fatalf("plain-counter measures = %+v, want %+v", got, want)
	}
	if hits, misses := mc.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("plain counters must bypass the cache, stats = %d/%d", hits, misses)
	}
}

func TestOrderFDsCachedMatchesOrderFDs(t *testing.T) {
	r := appendRelation(t, [][]string{
		{"x", "1", "p"}, {"x", "2", "p"}, {"y", "1", "q"}, {"z", "3", "q"},
	})
	fdAB, fdAC := cacheFDs(t, r)
	fds := []FD{fdAB, fdAC}
	mc := NewMeasureCache(pli.NewIncrementalCounter(r))
	got := OrderFDsCached(mc, fds, ScopeAllAttributes)
	want := OrderFDs(pli.NewPLICounter(r), fds, ScopeAllAttributes)
	if len(got) != len(want) {
		t.Fatalf("len = %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].FD.Label != want[i].FD.Label || got[i].Rank != want[i].Rank ||
			got[i].Measures != want[i].Measures {
			t.Fatalf("rank %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestMeasureCacheSurvivesCompaction(t *testing.T) {
	r := appendRelation(t, [][]string{
		{"x", "1", "p"}, {"x", "1", "p"}, {"x", "2", "p"}, {"y", "1", "q"},
	})
	fdAB, fdAC := cacheFDs(t, r)
	counter := pli.NewIncrementalCounter(r)
	mc := NewMeasureCache(counter)
	m0, m1 := mc.Compute(fdAB), mc.Compute(fdAC)
	// Delete one half of the duplicated (x,1,p) pair: no projection count
	// changes, then squeeze the tombstone out. The remap preserves the count
	// stamps, so both measures must be served from cache across the epoch
	// boundary — and still agree with a from-scratch computation.
	if err := counter.Delete(1); err != nil {
		t.Fatal(err)
	}
	if counter.Compact() == nil {
		t.Fatal("Compact returned nil with a tombstone present")
	}
	if got := mc.Compute(fdAB); got != m0 {
		t.Fatalf("a→b changed across compaction: %+v vs %+v", got, m0)
	}
	if got := mc.Compute(fdAC); got != m1 {
		t.Fatalf("a→c changed across compaction: %+v vs %+v", got, m1)
	}
	if hits, misses := mc.Stats(); hits != 2 || misses != 2 {
		t.Fatalf("post-compaction stats = %d hits %d misses, want 2/2", hits, misses)
	}
	if got := mc.EpochSurvivals(); got != 2 {
		t.Fatalf("EpochSurvivals = %d, want 2", got)
	}
	for _, fd := range []FD{fdAB, fdAC} {
		if want, got := Compute(pli.NewPLICounter(r), fd), mc.Compute(fd); got != want {
			t.Fatalf("%s post-compaction = %+v, want %+v", fd.Label, got, want)
		}
	}
	// A second epoch: this time the compaction follows a delete that does
	// change a→b's projections (the only y row — id 2 in the new epoch —
	// leaves), so a→b recomputes while nothing is wrongly reused.
	if err := counter.Delete(2); err != nil {
		t.Fatal(err)
	}
	if counter.Compact() == nil {
		t.Fatal("second Compact returned nil")
	}
	for _, fd := range []FD{fdAB, fdAC} {
		if want, got := Compute(pli.NewPLICounter(r), fd), mc.Compute(fd); got != want {
			t.Fatalf("%s after epoch 2 = %+v, want %+v", fd.Label, got, want)
		}
	}
}
