package core

import (
	"container/heap"
	"math"
	"time"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/pli"
)

// Repair is one way to evolve a violated FD X → Y into an exact FD XU → Y.
type Repair struct {
	// Added is the attribute set U added to the antecedent.
	Added bitset.Set
	// FD is the repaired dependency XU → Y.
	FD FD
	// Measures are the measures of the repaired dependency; Exact() is true.
	Measures Measures
}

// SearchStats describes the work done by a repair search.
type SearchStats struct {
	// Evaluated counts candidate FDs whose measures were computed.
	Evaluated int
	// Expanded counts queue nodes whose children were generated.
	Expanded int
	// Enqueued counts nodes pushed onto the priority queue.
	Enqueued int
	// Exhausted is true when the bounded search space was fully explored
	// (as opposed to stopping at the first repair or on a budget).
	Exhausted bool
	// Elapsed is the wall-clock duration of the search.
	Elapsed time.Duration
}

// Objective selects the order in which the repair search explores and
// returns candidates.
type Objective int

const (
	// ObjectiveMinimalFirst is the paper's Algorithm 3 order: antecedent
	// cardinality ascending, then rank (confidence descending, |goodness|
	// ascending). The first repair found is minimal in size.
	ObjectiveMinimalFirst Objective = iota
	// ObjectiveBalanced implements the §4.4 proposal of "combining such a
	// threshold with our confidence and goodness measures … an objective
	// function that guides our repair strategy": nodes are ordered by
	//
	//	score(U) = |U| + ic(F_U) + λ·|goodness(F_U)|
	//
	// (λ = GoodnessWeight), i.e. |U| + λ-weighted ε_CB. A slightly longer
	// repair with near-bijective goodness can now beat a short repair built
	// on a UNIQUE attribute, without a hard threshold. With FirstOnly the
	// returned repair provably minimises the score: the search only stops
	// once no unexplored node can beat it (score ≥ |U| for every node).
	ObjectiveBalanced
)

// RepairOptions controls the Extend search (Algorithm 3).
type RepairOptions struct {
	// FirstOnly stops at the first (minimal) repair — the early-stop variant
	// the paper measures in Table 8. When false the whole bounded space is
	// explored (Table 7).
	FirstOnly bool
	// Objective selects the search order; the zero value is the paper's
	// minimal-first order.
	Objective Objective
	// GoodnessWeight is λ in the balanced objective; values ≤ 0 mean 1.
	// Ignored under ObjectiveMinimalFirst.
	GoodnessWeight float64
	// MaxAdded bounds |U|, the number of attributes added to the
	// antecedent; 0 means no bound (every NULL-free attribute outside XY
	// may be added).
	MaxAdded int
	// MaxEvaluated aborts the search after this many candidate evaluations;
	// 0 means unlimited. A tripped budget sets Stats.Exhausted = false.
	// The initial single-attribute seeding (ExtendByOne) always runs to
	// completion, so up to one full candidate pool may be evaluated even
	// under a smaller budget.
	MaxEvaluated int
	// PruneNonMinimal drops repairs that are supersets of other found
	// repairs from the result. The paper's Algorithm 3 keeps them (they are
	// reachable through paths whose prefixes are non-exact); pruning is an
	// extension for designers who want only minimal suggestions.
	PruneNonMinimal bool
	// Candidates configures per-step candidate generation.
	Candidates CandidateOptions
}

// RepairResult is the outcome of repairing one FD.
type RepairResult struct {
	// FD is the original, violated dependency.
	FD FD
	// Initial holds the original FD's measures.
	Initial Measures
	// Repairs lists the exact extensions found, in discovery order — which,
	// by the queue invariant, is (|U| ascending, rank descending). With
	// FirstOnly it has at most one element; it is empty when no repair
	// exists within the bounds.
	Repairs []Repair
	// Stats describes the search effort.
	Stats SearchStats
}

// node is a queue entry: the set of added attributes, the measures of the
// corresponding extended FD, and the balanced-objective score (0 under
// minimal-first).
type node struct {
	added    bitset.Set
	addedKey []int // sorted members, for deterministic comparison
	measures Measures
	score    float64
}

// nodeQueue is the priority queue of Algorithm 3. Under the minimal-first
// objective it orders by increasing cardinality of the added set (so the
// first repair popped is minimal), then by decreasing rank (confidence
// desc, |goodness| asc); under the balanced objective it orders by score.
// Added-attribute order breaks all remaining ties deterministically.
type nodeQueue struct {
	nodes    []*node
	balanced bool
}

func (q *nodeQueue) Len() int { return len(q.nodes) }

func (q *nodeQueue) Less(i, j int) bool {
	a, b := q.nodes[i], q.nodes[j]
	if q.balanced && a.score != b.score {
		return a.score < b.score
	}
	if len(a.addedKey) != len(b.addedKey) {
		return len(a.addedKey) < len(b.addedKey)
	}
	if a.measures.Confidence != b.measures.Confidence {
		return a.measures.Confidence > b.measures.Confidence
	}
	ga, gb := abs(a.measures.Goodness), abs(b.measures.Goodness)
	if ga != gb {
		return ga < gb
	}
	for k := range a.addedKey {
		if a.addedKey[k] != b.addedKey[k] {
			return a.addedKey[k] < b.addedKey[k]
		}
	}
	return false
}

func (q *nodeQueue) Swap(i, j int) { q.nodes[i], q.nodes[j] = q.nodes[j], q.nodes[i] }
func (q *nodeQueue) Push(x any)    { q.nodes = append(q.nodes, x.(*node)) }
func (q *nodeQueue) Pop() any {
	old := q.nodes
	n := old[len(old)-1]
	q.nodes = old[:len(old)-1]
	return n
}

// FindRepairs runs the Extend search (Algorithm 3) for one FD. If the FD is
// already exact the result carries no repairs and zero search stats.
//
// The search explores added-attribute sets in best-first order. Exact nodes
// are recorded and not expanded (an exact FD stays exact under further
// extension, so children would be redundant supersets); non-exact nodes are
// expanded by adding one attribute with a schema position greater than any
// already added, which enumerates every subset exactly once.
func FindRepairs(counter pli.Counter, fd FD, opts RepairOptions) RepairResult {
	start := time.Now()
	res := RepairResult{FD: fd, Initial: Compute(counter, fd)}
	if res.Initial.Exact() {
		res.Stats.Exhausted = true
		res.Stats.Elapsed = time.Since(start)
		return res
	}

	pool := CandidatePool(counter, fd, opts.Candidates)
	maxAdded := opts.MaxAdded
	if maxAdded <= 0 || maxAdded > len(pool) {
		maxAdded = len(pool)
	}
	balanced := opts.Objective == ObjectiveBalanced
	lambda := opts.GoodnessWeight
	if lambda <= 0 {
		lambda = 1
	}
	score := func(size int, m Measures) float64 {
		if !balanced {
			return 0
		}
		return float64(size) + m.Inconsistency() + lambda*math.Abs(float64(m.Goodness))
	}

	q := &nodeQueue{balanced: balanced}
	heap.Init(q)
	// sizeCounts tracks how many queued nodes exist per added-set size: the
	// balanced objective's stopping rule needs the smallest live size.
	sizeCounts := make(map[int]int)
	push := func(added bitset.Set, m Measures) {
		key := added.Members()
		heap.Push(q, &node{added: added, addedKey: key, measures: m, score: score(len(key), m)})
		sizeCounts[len(key)]++
		res.Stats.Enqueued++
	}
	minLiveSize := func() int {
		for size := 1; size <= maxAdded; size++ {
			if sizeCounts[size] > 0 {
				return size
			}
		}
		return maxAdded + 1
	}

	// Seed with all single-attribute extensions (ExtendByOne).
	for _, c := range ExtendByOne(counter, fd, opts.Candidates) {
		res.Stats.Evaluated++
		push(bitset.New(c.Attr), c.Measures)
	}

	// best tracks the lowest-score exact node under FirstOnly+balanced; the
	// search may stop only when no live or future node can beat it (every
	// node's score is at least its size).
	var best *node
	budgetTripped := false
	for q.Len() > 0 {
		n := heap.Pop(q).(*node)
		sizeCounts[len(n.addedKey)]--
		if n.measures.Exact() {
			if opts.FirstOnly && balanced {
				if best == nil || n.score < best.score {
					best = n
				}
				if float64(minLiveSize()) >= best.score {
					break
				}
				continue
			}
			res.Repairs = append(res.Repairs, Repair{
				Added:    n.added,
				FD:       fd.WithExtendedAntecedent(n.added),
				Measures: n.measures,
			})
			if opts.FirstOnly {
				break
			}
			continue
		}
		if len(n.addedKey) >= maxAdded {
			continue
		}
		if opts.MaxEvaluated > 0 && res.Stats.Evaluated >= opts.MaxEvaluated {
			budgetTripped = true
			break
		}
		// Under FirstOnly+balanced, expanding nodes whose children cannot
		// beat the incumbent is wasted work.
		if best != nil && float64(len(n.addedKey)+1) >= best.score {
			continue
		}
		res.Stats.Expanded++
		maxIdx := n.addedKey[len(n.addedKey)-1]
		extFD := fd.WithExtendedAntecedent(n.added)
		for _, attr := range pool {
			if attr <= maxIdx {
				continue
			}
			if opts.MaxEvaluated > 0 && res.Stats.Evaluated >= opts.MaxEvaluated {
				budgetTripped = true
				break
			}
			c := evalCandidate(counter, extFD, attr)
			res.Stats.Evaluated++
			if opts.Candidates.MaxGoodness != nil && abs(c.Measures.Goodness) > *opts.Candidates.MaxGoodness {
				continue
			}
			push(n.added.With(attr), c.Measures)
		}
	}
	if best != nil {
		res.Repairs = append(res.Repairs, Repair{
			Added:    best.added,
			FD:       fd.WithExtendedAntecedent(best.added),
			Measures: best.measures,
		})
	}

	if opts.PruneNonMinimal {
		res.Repairs = pruneNonMinimal(res.Repairs)
	}
	res.Stats.Exhausted = !budgetTripped && (!opts.FirstOnly || len(res.Repairs) == 0)
	res.Stats.Elapsed = time.Since(start)
	return res
}

// pruneNonMinimal removes repairs whose added set is a proper superset of
// another repair's added set. Discovery order (size-ascending) guarantees
// subsets appear before supersets, so one backward pass suffices.
func pruneNonMinimal(repairs []Repair) []Repair {
	var out []Repair
	for _, r := range repairs {
		minimal := true
		for _, kept := range out {
			if kept.Added.ProperSubsetOf(r.Added) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, r)
		}
	}
	return out
}

// FindFirstRepair is FindRepairs with FirstOnly set: it returns the minimal
// repair (smallest |U|, best rank among those) or ok=false when none exists
// within the bounds.
func FindFirstRepair(counter pli.Counter, fd FD, opts RepairOptions) (Repair, SearchStats, bool) {
	opts.FirstOnly = true
	res := FindRepairs(counter, fd, opts)
	if len(res.Repairs) == 0 {
		return Repair{}, res.Stats, false
	}
	return res.Repairs[0], res.Stats, true
}

// EvolveDatabase implements Algorithm 1 generalised to multi-attribute
// repairs: it ranks the FD set (§4.1), then repairs each violated FD in
// rank order. Exact FDs pass through with empty Repairs.
func EvolveDatabase(counter pli.Counter, fds []FD, scope ConflictScope, opts RepairOptions) []RepairResult {
	ranked := OrderFDs(counter, fds, scope)
	out := make([]RepairResult, 0, len(ranked))
	for _, rf := range ranked {
		out = append(out, FindRepairs(counter, rf.FD, opts))
	}
	return out
}
