package core

import (
	"container/heap"
	"math"
	"runtime"
	"time"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/pli"
)

// Repair is one way to evolve a violated FD X → Y into an exact FD XU → Y.
type Repair struct {
	// Added is the attribute set U added to the antecedent.
	Added bitset.Set
	// FD is the repaired dependency XU → Y.
	FD FD
	// Measures are the measures of the repaired dependency; Exact() is true.
	Measures Measures
}

// SearchStats describes the work done by a repair search.
type SearchStats struct {
	// Evaluated counts candidate FDs whose measures were computed.
	Evaluated int
	// Expanded counts queue nodes whose children were generated.
	Expanded int
	// Enqueued counts nodes pushed onto the priority queue.
	Enqueued int
	// Exhausted is true when the bounded search space was fully explored
	// (as opposed to stopping at the first repair or on a budget).
	Exhausted bool
	// Elapsed is the wall-clock duration of the search.
	Elapsed time.Duration
}

// Objective selects the order in which the repair search explores and
// returns candidates.
type Objective int

const (
	// ObjectiveMinimalFirst is the paper's Algorithm 3 order: antecedent
	// cardinality ascending, then rank (confidence descending, |goodness|
	// ascending). The first repair found is minimal in size.
	ObjectiveMinimalFirst Objective = iota
	// ObjectiveBalanced implements the §4.4 proposal of "combining such a
	// threshold with our confidence and goodness measures … an objective
	// function that guides our repair strategy": nodes are ordered by
	//
	//	score(U) = |U| + ic(F_U) + λ·|goodness(F_U)|
	//
	// (λ = GoodnessWeight), i.e. |U| + λ-weighted ε_CB. A slightly longer
	// repair with near-bijective goodness can now beat a short repair built
	// on a UNIQUE attribute, without a hard threshold. With FirstOnly the
	// returned repair provably minimises the score: the search only stops
	// once no unexplored node can beat it (score ≥ |U| for every node).
	ObjectiveBalanced
)

// RepairOptions controls the Extend search (Algorithm 3).
type RepairOptions struct {
	// FirstOnly stops at the first (minimal) repair — the early-stop variant
	// the paper measures in Table 8. When false the whole bounded space is
	// explored (Table 7).
	FirstOnly bool
	// Objective selects the search order; the zero value is the paper's
	// minimal-first order.
	Objective Objective
	// GoodnessWeight is λ in the balanced objective; values ≤ 0 mean 1.
	// Ignored under ObjectiveMinimalFirst.
	GoodnessWeight float64
	// MaxAdded bounds |U|, the number of attributes added to the
	// antecedent; 0 means no bound (every NULL-free attribute outside XY
	// may be added).
	MaxAdded int
	// MaxEvaluated aborts the search after this many candidate evaluations;
	// 0 means unlimited. A tripped budget sets Stats.Exhausted = false.
	// The initial single-attribute seeding (ExtendByOne) always runs to
	// completion, so up to one full candidate pool may be evaluated even
	// under a smaller budget.
	MaxEvaluated int
	// Parallelism bounds the worker goroutines that evaluate frontier
	// expansions (and, in EvolveDatabase, repair ranked FDs concurrently);
	// 0 means GOMAXPROCS, 1 disables concurrency. Results are bit-identical
	// at every setting: the frontier is expanded in deterministic batches
	// and children are re-sorted by the queue's total order.
	Parallelism int
	// NoPartitionReuse disables the search-aware fast path that derives each
	// child partition from its parent's materialised partition (one stripped
	// product). Candidate counts then go through the counter's generic cache
	// probes, as the seed implementation did. Results are identical either
	// way; the knob exists for ablations and baseline measurements.
	NoPartitionReuse bool
	// PruneNonMinimal drops repairs that are supersets of other found
	// repairs from the result. The paper's Algorithm 3 keeps them (they are
	// reachable through paths whose prefixes are non-exact); pruning is an
	// extension for designers who want only minimal suggestions.
	PruneNonMinimal bool
	// Candidates configures per-step candidate generation.
	Candidates CandidateOptions
}

// workerCount resolves the frontier-expansion parallelism.
func (o RepairOptions) workerCount() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// RepairResult is the outcome of repairing one FD.
type RepairResult struct {
	// FD is the original, violated dependency.
	FD FD
	// Initial holds the original FD's measures.
	Initial Measures
	// Repairs lists the exact extensions found, in discovery order — which,
	// by the queue invariant, is (|U| ascending, rank descending). With
	// FirstOnly it has at most one element; it is empty when no repair
	// exists within the bounds.
	Repairs []Repair
	// Stats describes the search effort.
	Stats SearchStats
}

// node is a queue entry: the set of added attributes, the measures of the
// corresponding extended FD, and the balanced-objective score (0 under
// minimal-first).
type node struct {
	added    bitset.Set
	addedKey []int // sorted members, for deterministic comparison
	measures Measures
	score    float64
}

// nodeQueue is the priority queue of Algorithm 3. Under the minimal-first
// objective it orders by increasing cardinality of the added set (so the
// first repair popped is minimal), then by decreasing rank (confidence
// desc, |goodness| asc); under the balanced objective it orders by score.
// Added-attribute order breaks all remaining ties deterministically, which
// makes the pop sequence a total order: parallel expansion may push children
// in any order and the queue still drains identically.
type nodeQueue struct {
	nodes    []*node
	balanced bool
}

func (q *nodeQueue) Len() int { return len(q.nodes) }

func (q *nodeQueue) Less(i, j int) bool {
	a, b := q.nodes[i], q.nodes[j]
	if q.balanced && a.score != b.score {
		return a.score < b.score
	}
	if len(a.addedKey) != len(b.addedKey) {
		return len(a.addedKey) < len(b.addedKey)
	}
	if a.measures.Confidence != b.measures.Confidence {
		return a.measures.Confidence > b.measures.Confidence
	}
	ga, gb := abs(a.measures.Goodness), abs(b.measures.Goodness)
	if ga != gb {
		return ga < gb
	}
	for k := range a.addedKey {
		if a.addedKey[k] != b.addedKey[k] {
			return a.addedKey[k] < b.addedKey[k]
		}
	}
	return false
}

func (q *nodeQueue) Swap(i, j int) { q.nodes[i], q.nodes[j] = q.nodes[j], q.nodes[i] }
func (q *nodeQueue) Push(x any)    { q.nodes = append(q.nodes, x.(*node)) }
func (q *nodeQueue) Pop() any {
	old := q.nodes
	n := old[len(old)-1]
	q.nodes = old[:len(old)-1]
	return n
}

// expandTask is one child evaluation: extend parent (whose extended FD has
// antecedent extX and attribute set extXY) by attr. Tasks of one wave are
// evaluated across the worker pool; m is filled in by the worker. Under
// partition reuse, pX and pXY carry the parent's materialised partitions,
// resolved once per parent node rather than once per child.
type expandTask struct {
	parent *node
	extX   bitset.Set // X ∪ U of the parent
	extXY  bitset.Set // X ∪ U ∪ Y of the parent
	extY   bitset.Set
	pX     *pli.Partition
	pXY    *pli.Partition
	attr   int
	m      Measures
}

// FindRepairs runs the Extend search (Algorithm 3) for one FD. If the FD is
// already exact the result carries no repairs and zero search stats.
//
// The search explores added-attribute sets in best-first order. Exact nodes
// are recorded and not expanded (an exact FD stays exact under further
// extension, so children would be redundant supersets); non-exact nodes are
// expanded by adding one attribute with a schema position greater than any
// already added, which enumerates every subset exactly once.
//
// The frontier is expanded in deterministic batches: under the minimal-first
// objective all queue nodes tied at the current added-set size are popped
// together (expansion only ever pushes strictly larger children, so the
// batch is exactly the serial pop sequence), their children are evaluated
// across opts.Parallelism workers, and the queue's total order re-sorts the
// pushes. Results are therefore bit-identical to a serial run at any
// parallelism. Budgeted and balanced searches process one node per batch,
// which preserves the serial stopping rules exactly; their child evaluations
// still fan out.
func FindRepairs(counter pli.Counter, fd FD, opts RepairOptions) RepairResult {
	start := time.Now()
	workers := opts.workerCount()
	var sc pli.SearchCounter
	if !opts.NoPartitionReuse {
		sc, _ = counter.(pli.SearchCounter)
	}

	res := RepairResult{FD: fd, Initial: computeInitial(counter, sc, fd, workers)}
	if res.Initial.Exact() {
		res.Stats.Exhausted = true
		res.Stats.Elapsed = time.Since(start)
		return res
	}

	pool := CandidatePool(counter, fd, opts.Candidates)
	maxAdded := opts.MaxAdded
	if maxAdded <= 0 || maxAdded > len(pool) {
		maxAdded = len(pool)
	}
	balanced := opts.Objective == ObjectiveBalanced
	lambda := opts.GoodnessWeight
	if lambda <= 0 {
		lambda = 1
	}
	score := func(size int, m Measures) float64 {
		if !balanced {
			return 0
		}
		return float64(size) + m.Inconsistency() + lambda*math.Abs(float64(m.Goodness))
	}
	q := &nodeQueue{balanced: balanced}
	q.nodes = make([]*node, 0, 2*len(pool))
	heap.Init(q)
	// sizeCounts[s] tracks how many queued nodes hold s added attributes: the
	// balanced objective's stopping rule needs the smallest live size. A
	// slice beats a map here — the hot loop decrements it on every pop.
	sizeCounts := make([]int, maxAdded+2)
	push := func(added bitset.Set, m Measures) {
		key := added.Members()
		heap.Push(q, &node{added: added, addedKey: key, measures: m, score: score(len(key), m)})
		sizeCounts[len(key)]++
		res.Stats.Enqueued++
	}
	minLiveSize := func() int {
		for size := 1; size <= maxAdded; size++ {
			if sizeCounts[size] > 0 {
				return size
			}
		}
		return maxAdded + 1
	}

	// Seed with all single-attribute extensions (ExtendByOne). With a
	// search-aware counter the candidates are scored through the count-only
	// product kernel off the root partitions — same integers, no child
	// partitions materialised; the queue's total order makes the push order
	// irrelevant, so ExtendByOne's sort is not needed here.
	if sc != nil {
		pX0, pXY0 := sc.PartitionPar(fd.X, workers), sc.PartitionPar(fd.Attrs(), workers)
		seed := make([]expandTask, len(pool))
		for i, attr := range pool {
			seed[i] = expandTask{
				extX: fd.X, extXY: fd.Attrs(), extY: fd.Y,
				pX: pX0, pXY: pXY0, attr: attr,
			}
		}
		evalTasks(counter, sc, res.Initial.NumY, seed, workers)
		for i := range seed {
			t := &seed[i]
			if opts.Candidates.MaxGoodness != nil && abs(t.m.Goodness) > *opts.Candidates.MaxGoodness {
				continue
			}
			// ExtendByOne filters before its caller counts, so only kept
			// candidates show up in Evaluated — mirror that for identical stats.
			res.Stats.Evaluated++
			push(bitset.New(t.attr), t.m)
		}
	} else {
		for _, c := range ExtendByOne(counter, fd, opts.Candidates) {
			res.Stats.Evaluated++
			push(bitset.New(c.Attr), c.Measures)
		}
	}

	// Nodes tied at the current priority level are popped and processed as
	// one batch. Batches are singletons when a budget or the balanced
	// objective demands the serial stopping rules verbatim.
	batchable := !balanced && opts.MaxEvaluated == 0

	// best tracks the lowest-score exact node under FirstOnly+balanced; the
	// search may stop only when no live or future node can beat it (every
	// node's score is at least its size).
	var best *node
	budgetTripped := false
	stopped := false
	var batch []*node
	var tasks []expandTask
	for q.Len() > 0 && !stopped {
		batch = batch[:0]
		n := heap.Pop(q).(*node)
		sizeCounts[len(n.addedKey)]--
		batch = append(batch, n)
		if batchable {
			for q.Len() > 0 && len(q.nodes[0].addedKey) == len(n.addedKey) {
				m := heap.Pop(q).(*node)
				sizeCounts[len(m.addedKey)]--
				batch = append(batch, m)
			}
		}

		// Walk the batch in pop order, replicating the serial per-node
		// decisions; expansions are collected as tasks and evaluated as one
		// wave after the walk.
		tasks = tasks[:0]
		for _, n := range batch {
			if n.measures.Exact() {
				if opts.FirstOnly && balanced {
					if best == nil || n.score < best.score {
						best = n
					}
					if float64(minLiveSize()) >= best.score {
						stopped = true
						break
					}
					continue
				}
				res.Repairs = append(res.Repairs, Repair{
					Added:    n.added,
					FD:       fd.WithExtendedAntecedent(n.added),
					Measures: n.measures,
				})
				if opts.FirstOnly {
					stopped = true
					break
				}
				continue
			}
			if len(n.addedKey) >= maxAdded {
				continue
			}
			if opts.MaxEvaluated > 0 && res.Stats.Evaluated+len(tasks) >= opts.MaxEvaluated {
				budgetTripped = true
				stopped = true
				break
			}
			// Under FirstOnly+balanced, expanding nodes whose children cannot
			// beat the incumbent is wasted work.
			if best != nil && float64(len(n.addedKey)+1) >= best.score {
				continue
			}
			res.Stats.Expanded++
			maxIdx := n.addedKey[len(n.addedKey)-1]
			extFD := fd.WithExtendedAntecedent(n.added)
			extXY := extFD.Attrs()
			// Resolve the parent's partitions once per node: every child of
			// this node products off the same two handles, and a tracked
			// IncrementalCounter set would otherwise re-materialise per task.
			var pX, pXY *pli.Partition
			if sc != nil {
				pX = sc.PartitionPar(extFD.X, workers)
				pXY = sc.PartitionPar(extXY, workers)
			}
			for _, attr := range pool {
				if attr <= maxIdx {
					continue
				}
				if opts.MaxEvaluated > 0 && res.Stats.Evaluated+len(tasks) >= opts.MaxEvaluated {
					budgetTripped = true
					break
				}
				tasks = append(tasks, expandTask{
					parent: n, extX: extFD.X, extXY: extXY, extY: extFD.Y,
					pX: pX, pXY: pXY, attr: attr,
				})
			}
		}

		evalTasks(counter, sc, res.Initial.NumY, tasks, workers)
		res.Stats.Evaluated += len(tasks)
		for i := range tasks {
			t := &tasks[i]
			if opts.Candidates.MaxGoodness != nil && abs(t.m.Goodness) > *opts.Candidates.MaxGoodness {
				continue
			}
			push(t.parent.added.With(t.attr), t.m)
		}
	}
	if best != nil {
		res.Repairs = append(res.Repairs, Repair{
			Added:    best.added,
			FD:       fd.WithExtendedAntecedent(best.added),
			Measures: best.measures,
		})
	}

	if opts.PruneNonMinimal {
		res.Repairs = pruneNonMinimal(res.Repairs)
	}
	res.Stats.Exhausted = !budgetTripped && (!opts.FirstOnly || len(res.Repairs) == 0)
	res.Stats.Elapsed = time.Since(start)
	return res
}

// evalTasks computes the measures of every task, fanning out across at most
// `workers` goroutines. Counters are safe for concurrent use, so workers
// share the partition cache; results land in each task's m field, keeping
// the caller's deterministic ordering intact.
func evalTasks(counter pli.Counter, sc pli.SearchCounter, numY int, tasks []expandTask, workers int) {
	if len(tasks) == 0 {
		return
	}
	parallelFor(len(tasks), workers, func(i int) {
		t := &tasks[i]
		if sc != nil {
			t.m = computeChild(sc, t, numY)
			return
		}
		child := FD{X: t.extX.With(t.attr), Y: t.extY}
		t.m = Compute(counter, child)
	})
}

// computeChild derives the child FD's measures from the parent's
// materialised partitions (threaded through the task): each of |π_X'| and
// |π_X'Y| is one count-only stripped product (parent · singleton) instead of
// a generic cache probe that rebuilds from single-column factors on a miss —
// no child arena is allocated or written unless the node is later expanded,
// at which point PartitionPar materialises it. |π_Y| is constant across the
// whole search and passed in. The counts are the same integers the generic
// path computes, so measures are bit-identical.
func computeChild(sc pli.SearchCounter, t *expandTask, numY int) Measures {
	numX := sc.ChildCount(t.extX, t.pX, t.attr)
	numXY := sc.ChildCount(t.extXY, t.pXY, t.attr)
	return NewMeasures(numX, numXY, numY)
}

// computeInitial scores the root FD. A search-aware counter builds the three
// root partitions with the sharded parallel product (they are reused by the
// seeding wave and cached for the whole search); the generic path is one
// Compute, exactly as before.
func computeInitial(counter pli.Counter, sc pli.SearchCounter, fd FD, workers int) Measures {
	if sc == nil {
		return Compute(counter, fd)
	}
	numX := sc.PartitionPar(fd.X, workers).NumClasses()
	numXY := sc.PartitionPar(fd.Attrs(), workers).NumClasses()
	numY := sc.PartitionPar(fd.Y, workers).NumClasses()
	return NewMeasures(numX, numXY, numY)
}

// pruneNonMinimal removes repairs whose added set is a proper superset of
// another repair's added set. Discovery order (size-ascending) guarantees
// subsets appear before supersets, so one backward pass suffices.
func pruneNonMinimal(repairs []Repair) []Repair {
	var out []Repair
	for _, r := range repairs {
		minimal := true
		for _, kept := range out {
			if kept.Added.ProperSubsetOf(r.Added) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, r)
		}
	}
	return out
}

// FindFirstRepair is FindRepairs with FirstOnly set: it returns the minimal
// repair (smallest |U|, best rank among those) or ok=false when none exists
// within the bounds.
func FindFirstRepair(counter pli.Counter, fd FD, opts RepairOptions) (Repair, SearchStats, bool) {
	opts.FirstOnly = true
	res := FindRepairs(counter, fd, opts)
	if len(res.Repairs) == 0 {
		return Repair{}, res.Stats, false
	}
	return res.Repairs[0], res.Stats, true
}

// EvolveDatabase implements Algorithm 1 generalised to multi-attribute
// repairs: it ranks the FD set (§4.1), then repairs each violated FD in
// rank order. Exact FDs pass through with empty Repairs.
//
// Each ranked FD's search is independent and read-only on the counter, so
// with opts.Parallelism ≠ 1 the FDs are repaired concurrently; results keep
// rank order and are identical to a serial run.
func EvolveDatabase(counter pli.Counter, fds []FD, scope ConflictScope, opts RepairOptions) []RepairResult {
	ranked := OrderFDs(counter, fds, scope)
	out := make([]RepairResult, len(ranked))
	budget := opts.workerCount()
	outer := budget
	if outer > len(ranked) {
		outer = len(ranked)
	}
	// Split the worker budget between the FD fan-out and each search's
	// expansion waves, so N concurrent searches at N inner workers each
	// don't oversubscribe the cores N×N. Ceiling division mildly over-
	// subscribes (e.g. 3 FDs on 4 cores → 3×2 workers) rather than idling
	// cores whenever the split is uneven.
	inner := opts
	if outer > 1 {
		inner.Parallelism = (budget + outer - 1) / outer
		inner.Candidates.Parallelism = inner.Parallelism
	}
	parallelFor(len(ranked), outer, func(i int) {
		out[i] = FindRepairs(counter, ranked[i].FD, inner)
	})
	return out
}
