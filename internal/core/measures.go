package core

import (
	"fmt"
	"math"

	"github.com/evolvefd/evolvefd/internal/pli"
)

// Measures bundles the paper's quantitative view of one FD on one instance:
// the raw projection cardinalities and the derived confidence and goodness
// (Definition 3).
type Measures struct {
	// NumX is |π_X(r)|.
	NumX int
	// NumXY is |π_XY(r)|.
	NumXY int
	// NumY is |π_Y(r)|.
	NumY int
	// Confidence is c_F,r = |π_X| / |π_XY| ∈ (0, 1] on non-empty instances.
	Confidence float64
	// Goodness is g_F,r = |π_X| − |π_Y|; 0 together with confidence 1 means
	// the FD induces a bijection between C_X and C_Y (§3).
	Goodness int
}

// Compute evaluates the measures of fd using the given counter.
func Compute(counter pli.Counter, fd FD) Measures {
	return NewMeasures(counter.Count(fd.X), counter.Count(fd.Attrs()), counter.Count(fd.Y))
}

// NewMeasures derives the measures from the three projection counts — the
// single definition of confidence and goodness shared by every evaluation
// path (generic, cached, and partition-reuse), so they stay bit-identical.
func NewMeasures(numX, numXY, numY int) Measures {
	m := Measures{NumX: numX, NumXY: numXY, NumY: numY, Goodness: numX - numY}
	if numXY > 0 {
		m.Confidence = float64(numX) / float64(numXY)
	} else {
		// Empty instance: every FD is vacuously exact.
		m.Confidence = 1
	}
	return m
}

// Exact reports whether the FD is exact on the instance (Definition 4:
// confidence = 1). Because C_XY refines C_X, |π_X| = |π_XY| is an integer
// equality — no floating-point tolerance is needed.
func (m Measures) Exact() bool { return m.NumX == m.NumXY }

// Inconsistency returns ic_F,r = 1 − c_F,r, the "degree of inconsistency"
// (§4.1).
func (m Measures) Inconsistency() float64 { return 1 - m.Confidence }

// EpsilonCB returns ε_CB = ic + |g| (§5): zero exactly when the FD induces a
// bijective function between the antecedent and consequent clusterings.
func (m Measures) EpsilonCB() float64 {
	return m.Inconsistency() + math.Abs(float64(m.Goodness))
}

// ConfidenceRatio renders confidence in the paper's tabular style "4/5".
func (m Measures) ConfidenceRatio() string {
	return fmt.Sprintf("%d/%d", m.NumX, m.NumXY)
}

// String renders the measures compactly, e.g.
// "c=0.500 (2/4), g=-2".
func (m Measures) String() string {
	return fmt.Sprintf("c=%.3f (%s), g=%d", m.Confidence, m.ConfidenceRatio(), m.Goodness)
}
