// Package core implements the paper's primary contribution: the
// confidence-based (CB) method for detecting violated functional
// dependencies and evolving them by extending their antecedents.
//
// The package provides:
//
//   - the FD type with parsing and formatting (Definition 1);
//   - the confidence and goodness measures (Definition 3) and the ε_CB
//     measure of §5;
//   - the FD ordering of §4.1 (inconsistency degree + conflict score);
//   - single-step candidate ranking, ExtendByOne (§4.2, Algorithm 2);
//   - the best-first multi-attribute repair search, Extend (§4.3,
//     Algorithm 3), in find-first (minimal repair) and find-all variants;
//   - the semi-automatic Advisor loop that presents ranked repairs to a
//     designer (§1, §6: "present them to the designer to be evaluated").
//
// All measure evaluation goes through pli.Counter, so the counting strategy
// (PLI products, hashing, sorting, or SQL via internal/query) is pluggable.
package core

import (
	"errors"
	"fmt"
	"strings"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// FD is a functional dependency X → Y over a relation schema (Definition 1).
// Attributes are identified by schema position; use ParseFD / FormatWith to
// cross the name boundary.
type FD struct {
	// Label is an optional designer-facing name such as "F1".
	Label string
	// X is the antecedent attribute set; never empty.
	X bitset.Set
	// Y is the consequent attribute set; never empty, disjoint from X.
	Y bitset.Set
}

// ErrBadFD is wrapped (with %w) by every FD validation and parse failure —
// a missing arrow, an empty or overlapping attribute list, an unknown
// attribute name — so callers can classify designer input errors with
// errors.Is instead of string matching.
var ErrBadFD = errors.New("invalid FD")

// NewFD validates and builds an FD. X and Y must be non-empty and disjoint:
// a trivial FD (Y ⊆ X) always holds and can never need repair.
func NewFD(label string, x, y bitset.Set) (FD, error) {
	if x.IsEmpty() {
		return FD{}, fmt.Errorf("core: %w: antecedent must not be empty", ErrBadFD)
	}
	if y.IsEmpty() {
		return FD{}, fmt.Errorf("core: %w: consequent must not be empty", ErrBadFD)
	}
	if x.Intersects(y) {
		return FD{}, fmt.Errorf("core: %w: antecedent and consequent must be disjoint", ErrBadFD)
	}
	return FD{Label: label, X: x.Clone(), Y: y.Clone()}, nil
}

// MustFD is NewFD that panics on error, for statically-known FDs.
func MustFD(label string, x, y bitset.Set) FD {
	fd, err := NewFD(label, x, y)
	if err != nil {
		panic(err)
	}
	return fd
}

// ParseFD parses "X1,X2 -> Y1" (also accepting the paper's bracketed form
// "[X1, X2] → [Y1]") against a schema. The arrow may be "->" or "→".
func ParseFD(schema *relation.Schema, label, text string) (FD, error) {
	normalized := strings.ReplaceAll(text, "→", "->")
	lhs, rhs, ok := strings.Cut(normalized, "->")
	if !ok {
		return FD{}, fmt.Errorf("core: %w: FD %q must contain '->'", ErrBadFD, text)
	}
	x, err := parseAttrList(schema, lhs)
	if err != nil {
		return FD{}, fmt.Errorf("core: %w: FD %q antecedent: %w", ErrBadFD, text, err)
	}
	y, err := parseAttrList(schema, rhs)
	if err != nil {
		return FD{}, fmt.Errorf("core: %w: FD %q consequent: %w", ErrBadFD, text, err)
	}
	return NewFD(label, x, y)
}

func parseAttrList(schema *relation.Schema, s string) (bitset.Set, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	var names []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		names = append(names, part)
	}
	if len(names) == 0 {
		return bitset.Set{}, errors.New("empty attribute list")
	}
	return schema.IndexSet(names...)
}

// Attrs returns XY, the union of antecedent and consequent.
func (f FD) Attrs() bitset.Set { return f.X.Union(f.Y) }

// Size returns |F| = |XY|, the number of attributes in the FD (§3).
func (f FD) Size() int { return f.Attrs().Len() }

// Overlap returns |F ∩ F′|: the number of attributes the two FDs share,
// used by the conflict score of §4.1.
func (f FD) Overlap(o FD) int { return f.Attrs().Intersect(o.Attrs()).Len() }

// WithExtendedAntecedent returns the FD XU → Y, i.e. f with the attributes
// of u added to the antecedent. u must be disjoint from XY.
func (f FD) WithExtendedAntecedent(u bitset.Set) FD {
	label := f.Label
	if label != "" {
		label += "+"
	}
	return FD{Label: label, X: f.X.Union(u), Y: f.Y.Clone()}
}

// Equal reports whether two FDs have the same antecedent and consequent
// (labels are ignored).
func (f FD) Equal(o FD) bool { return f.X.Equal(o.X) && f.Y.Equal(o.Y) }

// Decompose splits a multi-attribute consequent into one FD per consequent
// attribute ("without loss of generality we can assume that all FDs are
// decomposed so that their consequent contains a single attribute", §1).
// Single-consequent FDs decompose to themselves.
func (f FD) Decompose() []FD {
	ys := f.Y.Members()
	if len(ys) == 1 {
		return []FD{f}
	}
	out := make([]FD, len(ys))
	for i, y := range ys {
		label := f.Label
		if label != "" {
			label = fmt.Sprintf("%s.%d", f.Label, i+1)
		}
		out[i] = FD{Label: label, X: f.X.Clone(), Y: bitset.New(y)}
	}
	return out
}

// FormatWith renders the FD with attribute names in the paper's style:
// "F1: [District, Region] -> [AreaCode]".
func (f FD) FormatWith(schema *relation.Schema) string {
	body := fmt.Sprintf("[%s] -> [%s]",
		strings.Join(schema.NameSet(f.X), ", "),
		strings.Join(schema.NameSet(f.Y), ", "))
	if f.Label == "" {
		return body
	}
	return f.Label + ": " + body
}

// String renders the FD with raw attribute positions; prefer FormatWith when
// a schema is available.
func (f FD) String() string {
	if f.Label == "" {
		return fmt.Sprintf("%v -> %v", f.X, f.Y)
	}
	return fmt.Sprintf("%s: %v -> %v", f.Label, f.X, f.Y)
}
