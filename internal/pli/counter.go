package pli

import (
	"container/list"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// Counter computes distinct-projection cardinalities |π_X(r)| over the live
// rows of a relation instance. All FD measures in the paper are
// ratios/differences of these counts, so a Counter is the only capability
// the repair algorithms need from the storage layer. Implementations must be
// safe for concurrent use: candidate evaluation fans out across goroutines.
type Counter interface {
	// Count returns |π_X(r)| for the attribute set x. An empty x counts as
	// 1 on instances with live rows and 0 on (effectively) empty ones.
	Count(x bitset.Set) int
	// Relation returns the instance the counter is bound to.
	Relation() *relation.Relation
}

// SearchCounter is a Counter that additionally exposes its materialised
// partitions, so a repair search can thread a parent node's partition handle
// through expansion: each child X∪U∪{a} then costs one stripped product
// (parent · singleton) instead of a from-scratch fold over single columns —
// and, for scoring, one count-only product that materialises nothing at all.
// PLICounter and IncrementalCounter implement it.
type SearchCounter interface {
	Counter
	// Partition returns the (memoised) stripped partition of x.
	Partition(x bitset.Set) *Partition
	// PartitionPar is Partition with any uncached products fanned across
	// `workers` goroutines (ProductParallel). Intended for serial call sites
	// (a search's frontier walk); results are identical to Partition.
	PartitionPar(x bitset.Set, workers int) *Partition
	// ChildPartition returns the partition of x ∪ {attr}, built as a single
	// product off the already-materialised parent partition of x when it is
	// not cached yet. parent must be the partition of x.
	ChildPartition(x bitset.Set, parent *Partition, attr int) *Partition
	// ChildCount returns |π_{x∪{attr}}| — ChildPartition(...).NumClasses() —
	// via the count-only product kernel when the child partition is not
	// already cached. Nothing is materialised or memoised on a miss: child
	// scoring needs sizes, not members. parent must be the partition of x.
	ChildCount(x bitset.Set, parent *Partition, attr int) int
}

// Strategy names a Counter construction; used by CLI flags and the ablation
// benchmarks.
type Strategy string

const (
	// StrategyPLI counts via cached stripped-partition products (default).
	StrategyPLI Strategy = "pli"
	// StrategyHash counts by hashing encoded code-tuples.
	StrategyHash Strategy = "hash"
	// StrategySort counts by sorting row indices then counting boundaries —
	// the O(n log n) sort + O(n) count route the paper's complexity
	// discussion describes (§4.4).
	StrategySort Strategy = "sort"
)

// NewCounter builds a Counter of the given strategy over r.
func NewCounter(r *relation.Relation, s Strategy) Counter {
	switch s {
	case StrategyHash:
		return NewHashCounter(r)
	case StrategySort:
		return NewSortCounter(r)
	default:
		return NewPLICounter(r)
	}
}

// ---------------------------------------------------------------------------
// PLI strategy

// defaultCacheEntries bounds the number of memoised multi-column partitions.
// Single-column partitions are pinned (they are the product factors of every
// evaluation); multi-column entries are evicted LRU beyond the bound, which
// keeps memory proportional to the working set of the current search frontier
// instead of the whole explored space — a find-all sweep over a wide
// relation touches hundreds of thousands of attribute sets.
const defaultCacheEntries = 1024

// numShards is the number of independent lock domains of the multi-column
// cache. Workers asking for unrelated attribute sets almost never contend:
// keys spread by FNV-1a hash. A power of two keeps the modulo cheap.
const numShards = 16

// cacheEntry is one memoised partition. The entry is published before the
// partition is built: done is closed once p is valid, so duplicate requesters
// block on the first build instead of redoing O(n) work (singleflight).
type cacheEntry struct {
	p    *Partition
	done chan struct{}
	// elem is the entry's LRU position; nil for pinned entries and for
	// entries evicted while still building (waiters keep the pointer).
	elem *list.Element
}

// ready reports whether the partition has been published, without blocking.
func (e *cacheEntry) ready() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// cacheShard is one lock domain of the multi-column partition cache with its
// own LRU list (front = least recently used).
type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	lru     *list.List // of string keys
	max     int
}

// lookup returns the entry for key, inserting a fresh building entry when
// absent. The second result is true when the caller must build and publish
// the partition. Present entries are refreshed to most-recently-used.
func (s *cacheShard) lookup(key string) (*cacheEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		if e.elem != nil {
			s.lru.MoveToBack(e.elem)
		}
		return e, false
	}
	e := &cacheEntry{done: make(chan struct{})}
	s.entries[key] = e
	e.elem = s.lru.PushBack(key)
	for len(s.entries) > s.max {
		oldest := s.lru.Front()
		k := oldest.Value.(string)
		s.lru.Remove(oldest)
		if victim := s.entries[k]; victim != nil {
			victim.elem = nil
		}
		delete(s.entries, k)
	}
	return e, true
}

// peek returns the ready partition for key without inserting or building.
func (s *cacheShard) peek(key string) (*Partition, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok && e.elem != nil && e.ready() {
		s.lru.MoveToBack(e.elem)
		s.mu.Unlock()
		return e.p, true
	}
	s.mu.Unlock()
	return nil, false
}

// PLICounter counts classes of cached stripped partitions. Single-column
// partitions are built once and pinned; multi-column partitions are
// assembled by products and memoised in a sharded, bounded LRU cache with
// duplicate-build suppression, so concurrent search workers asking for the
// same partition build it once and never serialise on unrelated keys.
//
// Cached partitions carry row ids and are therefore only valid within one
// storage epoch: every query first compares the relation's epoch against the
// one the caches were built in, and a compaction-induced mismatch drops
// every cached partition (pinned singletons included) before serving. The
// relation must not be compacted concurrently with queries, like any other
// mutation.
type PLICounter struct {
	r *relation.Relation
	// pinned holds the empty-set and single-column partitions, never
	// evicted.
	pinnedMu sync.Mutex
	pinned   map[string]*cacheEntry
	shards   [numShards]cacheShard
	// builds counts actual multi-column partition constructions — the
	// observable that singleflight suppresses duplicate work.
	builds atomic.Uint64
	// epoch is the storage epoch the caches reflect; resetMu serialises the
	// epoch-mismatch cache reset.
	epoch   atomic.Uint64
	resetMu sync.Mutex
}

// NewPLICounter builds a PLI-based counter over r with the default cache
// bound.
func NewPLICounter(r *relation.Relation) *PLICounter {
	return NewPLICounterSize(r, defaultCacheEntries)
}

// NewPLICounterSize builds a PLI-based counter with an explicit bound on
// memoised multi-column partitions (minimum 16). The bound is split across
// the shards.
func NewPLICounterSize(r *relation.Relation, maxEntries int) *PLICounter {
	if maxEntries < 16 {
		maxEntries = 16
	}
	c := &PLICounter{r: r, pinned: make(map[string]*cacheEntry)}
	perShard := maxEntries / numShards
	if perShard < 1 {
		perShard = 1
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*cacheEntry)
		c.shards[i].lru = list.New()
		c.shards[i].max = perShard
	}
	c.epoch.Store(r.Epoch())
	return c
}

// syncEpoch drops every cached partition when the relation was compacted
// since the caches were filled: the partitions' row ids belong to the old
// epoch. The fast path is one atomic load; the reset itself is serialised so
// concurrent readers entering after a compaction reset exactly once.
func (c *PLICounter) syncEpoch() {
	e := c.r.Epoch()
	if c.epoch.Load() == e {
		return
	}
	c.resetMu.Lock()
	defer c.resetMu.Unlock()
	if c.epoch.Load() == e {
		return
	}
	c.pinnedMu.Lock()
	c.pinned = make(map[string]*cacheEntry)
	c.pinnedMu.Unlock()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[string]*cacheEntry)
		s.lru = list.New()
		s.mu.Unlock()
	}
	c.epoch.Store(e)
}

// Relation returns the bound instance.
func (c *PLICounter) Relation() *relation.Relation { return c.r }

// Count returns |π_X(r)| via partition products, over live rows only.
func (c *PLICounter) Count(x bitset.Set) int {
	if c.r.LiveRows() == 0 {
		return 0
	}
	return c.Partition(x).NumClasses()
}

// shard maps a cache key to its lock domain (FNV-1a).
func (c *PLICounter) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &c.shards[h%numShards]
}

// getScratch borrows product working tables from the package-wide pool
// (shared with FromSet and nil-scratch Products) instead of allocating O(n)
// probe slices on every product.
func (c *PLICounter) getScratch() *productScratch  { return getScratch(c.r.NumRows()) }
func (c *PLICounter) putScratch(s *productScratch) { putScratch(s) }

// Partition returns the (memoised) stripped partition for x. Concurrent
// requests for the same uncached set build it exactly once.
func (c *PLICounter) Partition(x bitset.Set) *Partition {
	return c.partition(x, 1)
}

// PartitionPar is Partition with uncached products fanned across `workers`
// goroutines. Meant for serial call sites; the memoised result is shared with
// Partition and identical to it.
func (c *PLICounter) PartitionPar(x bitset.Set, workers int) *Partition {
	return c.partition(x, workers)
}

func (c *PLICounter) partition(x bitset.Set, workers int) *Partition {
	c.syncEpoch()
	members := x.Members()
	key := x.Key()
	if len(members) <= 1 {
		return c.pinnedPartition(key, members)
	}
	e, build := c.shard(key).lookup(key)
	if !build {
		<-e.done
		return e.p
	}
	e.p = c.buildMulti(x, members, workers)
	close(e.done)
	return e.p
}

// ChildPartition returns the partition of x ∪ {attr}. On a cache miss it is
// built as one stripped product off the caller-supplied parent partition of
// x — the search-aware fast path — and memoised for the child's own later
// expansion.
func (c *PLICounter) ChildPartition(x bitset.Set, parent *Partition, attr int) *Partition {
	c.syncEpoch()
	child := x.With(attr)
	members := child.Members()
	key := child.Key()
	if len(members) <= 1 {
		return c.pinnedPartition(key, members)
	}
	e, build := c.shard(key).lookup(key)
	if !build {
		<-e.done
		return e.p
	}
	c.builds.Add(1)
	scratch := c.getScratch()
	e.p = parent.Product(c.Partition(bitset.New(attr)), scratch)
	c.putScratch(scratch)
	close(e.done)
	return e.p
}

// ChildCount returns |π_{x∪{attr}}| for child scoring: a cached child
// partition is counted directly; otherwise one count-only product off the
// parent partition — nothing is materialised, nothing enters the cache, and
// no singleflight entry is published (a count is too cheap to coordinate).
func (c *PLICounter) ChildCount(x bitset.Set, parent *Partition, attr int) int {
	c.syncEpoch()
	child := x.With(attr)
	members := child.Members()
	key := child.Key()
	if len(members) <= 1 {
		return c.pinnedPartition(key, members).NumClasses()
	}
	if p, ok := c.shard(key).peek(key); ok {
		return p.NumClasses()
	}
	return parent.ProductCount(c.Partition(bitset.New(attr)), nil)
}

// pinnedPartition serves the empty-set and single-column partitions, built
// once under singleflight and never evicted.
func (c *PLICounter) pinnedPartition(key string, members []int) *Partition {
	c.pinnedMu.Lock()
	if e, ok := c.pinned[key]; ok {
		c.pinnedMu.Unlock()
		<-e.done
		return e.p
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.pinned[key] = e
	c.pinnedMu.Unlock()
	if len(members) == 0 {
		e.p = universalOf(c.r)
	} else {
		e.p = FromColumn(c.r, members[0])
	}
	close(e.done)
	return e.p
}

// buildMulti constructs a multi-column partition: from the largest cached
// proper subset if one is ready (removing one attribute at a time),
// otherwise by folding single columns left to right. With workers > 1 each
// product is a sharded ProductParallel (bit-identical to serial).
func (c *PLICounter) buildMulti(x bitset.Set, members []int, workers int) *Partition {
	c.builds.Add(1)
	scratch := c.getScratch()
	defer c.putScratch(scratch)
	product := func(base, factor *Partition) *Partition {
		if workers > 1 {
			return base.ProductParallel(factor, workers)
		}
		return base.Product(factor, scratch)
	}
	for _, m := range members {
		sub := x.Without(m)
		if base, ok := c.shard(sub.Key()).peek(sub.Key()); ok {
			return product(base, c.Partition(bitset.New(m)))
		}
	}
	p := c.Partition(bitset.New(members[0]))
	for _, m := range members[1:] {
		p = product(p, c.Partition(bitset.New(m)))
	}
	return p
}

// CacheSize reports how many partitions are memoised, pinned singletons
// included (for tests and stats).
func (c *PLICounter) CacheSize() int {
	c.pinnedMu.Lock()
	n := len(c.pinned)
	c.pinnedMu.Unlock()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// MultiColumnBuilds reports how many multi-column partitions were actually
// constructed (cache hits and singleflight waiters excluded) — the
// regression observable for duplicate-build suppression.
func (c *PLICounter) MultiColumnBuilds() uint64 { return c.builds.Load() }

// ---------------------------------------------------------------------------
// Hash strategy

// HashCounter counts distinct code-tuples with a hash set, recomputing from
// scratch on every call (no state shared between calls beyond the relation).
type HashCounter struct {
	r *relation.Relation
}

// NewHashCounter builds a hash-based counter over r.
func NewHashCounter(r *relation.Relation) *HashCounter { return &HashCounter{r: r} }

// Relation returns the bound instance.
func (c *HashCounter) Relation() *relation.Relation { return c.r }

// Count returns |π_X(r)| by hashing the code tuple of every live row.
func (c *HashCounter) Count(x bitset.Set) int {
	n := c.r.NumRows()
	if c.r.LiveRows() == 0 {
		return 0
	}
	cols := x.Members()
	if len(cols) == 0 {
		return 1
	}
	if len(cols) == 1 && !c.r.Mutated() {
		// Dictionary shortcut: only sound while no value ever lost its last
		// occurrence (no deletes or in-place updates).
		d := c.r.DictLen(cols[0])
		if c.r.HasNulls(cols[0]) {
			d++
		}
		return d
	}
	columns := make([][]int32, len(cols))
	for i, col := range cols {
		columns[i] = c.r.ColumnCodes(col)
	}
	seen := make(map[string]struct{}, n)
	key := make([]byte, len(cols)*4)
	for row := 0; row < n; row++ {
		if c.r.IsDeleted(row) {
			continue
		}
		seen[string(appendCodeKey(key[:0], columns, row))] = struct{}{}
	}
	return len(seen)
}

// appendCodeKey appends the little-endian encoding of one row's code tuple
// over the projected columns — the canonical map key shared by the hash
// counter and the incremental counter's cluster maps, which must agree
// byte-for-byte on what identifies a cluster.
func appendCodeKey(k []byte, columns [][]int32, row int) []byte {
	for _, codes := range columns {
		v := codes[row]
		k = append(k, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return k
}

// ---------------------------------------------------------------------------
// Sort strategy

// SortCounter counts by lexicographically sorting row indices over the
// projected code columns and counting adjacent differences: the paper's
// "counting the distinct values corresponds to a sorting (O(n log n))
// followed by counting (O(n))".
type SortCounter struct {
	r *relation.Relation
}

// NewSortCounter builds a sort-based counter over r.
func NewSortCounter(r *relation.Relation) *SortCounter { return &SortCounter{r: r} }

// Relation returns the bound instance.
func (c *SortCounter) Relation() *relation.Relation { return c.r }

// Count returns |π_X(r)| by sort + boundary count over the live rows.
func (c *SortCounter) Count(x bitset.Set) int {
	n := c.r.NumRows()
	if c.r.LiveRows() == 0 {
		return 0
	}
	cols := x.Members()
	if len(cols) == 0 {
		return 1
	}
	columns := make([][]int32, len(cols))
	for i, col := range cols {
		columns[i] = c.r.ColumnCodes(col)
	}
	rows := make([]int32, 0, c.r.LiveRows())
	for i := 0; i < n; i++ {
		if !c.r.IsDeleted(i) {
			rows = append(rows, int32(i))
		}
	}
	sort.Slice(rows, func(a, b int) bool {
		ra, rb := rows[a], rows[b]
		for _, codes := range columns {
			va, vb := codes[ra], codes[rb]
			if va != vb {
				return va < vb
			}
		}
		return false
	})
	count := 1
	for i := 1; i < len(rows); i++ {
		prev, cur := rows[i-1], rows[i]
		for _, codes := range columns {
			if codes[prev] != codes[cur] {
				count++
				break
			}
		}
	}
	return count
}
