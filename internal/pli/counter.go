package pli

import (
	"sort"
	"sync"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// Counter computes distinct-projection cardinalities |π_X(r)| for a fixed
// relation instance. All FD measures in the paper are ratios/differences of
// these counts, so a Counter is the only capability the repair algorithms
// need from the storage layer. Implementations must be safe for concurrent
// use: candidate evaluation fans out across goroutines.
type Counter interface {
	// Count returns |π_X(r)| for the attribute set x. An empty x counts as
	// 1 on non-empty instances and 0 on empty ones.
	Count(x bitset.Set) int
	// Relation returns the instance the counter is bound to.
	Relation() *relation.Relation
}

// Strategy names a Counter construction; used by CLI flags and the ablation
// benchmarks.
type Strategy string

const (
	// StrategyPLI counts via cached stripped-partition products (default).
	StrategyPLI Strategy = "pli"
	// StrategyHash counts by hashing encoded code-tuples.
	StrategyHash Strategy = "hash"
	// StrategySort counts by sorting row indices then counting boundaries —
	// the O(n log n) sort + O(n) count route the paper's complexity
	// discussion describes (§4.4).
	StrategySort Strategy = "sort"
)

// NewCounter builds a Counter of the given strategy over r.
func NewCounter(r *relation.Relation, s Strategy) Counter {
	switch s {
	case StrategyHash:
		return NewHashCounter(r)
	case StrategySort:
		return NewSortCounter(r)
	default:
		return NewPLICounter(r)
	}
}

// ---------------------------------------------------------------------------
// PLI strategy

// defaultCacheEntries bounds the number of memoised multi-column partitions.
// Single-column partitions are pinned (they are the product factors of every
// evaluation); multi-column entries are evicted FIFO beyond the bound, which
// keeps memory proportional to the working set of the current search node
// instead of the whole explored space — a find-all sweep over a wide
// relation touches hundreds of thousands of attribute sets.
const defaultCacheEntries = 1024

// PLICounter counts classes of cached stripped partitions. Single-column
// partitions are built once and pinned; multi-column partitions are
// assembled by products and memoised in a bounded FIFO cache.
type PLICounter struct {
	r  *relation.Relation
	mu sync.Mutex
	// pinned holds the empty-set and single-column partitions, never
	// evicted.
	pinned map[string]*Partition
	// cache holds multi-column partitions, bounded by maxEntries.
	cache map[string]*Partition
	// order tracks cache insertion order for FIFO eviction.
	order      []string
	maxEntries int
}

// NewPLICounter builds a PLI-based counter over r with the default cache
// bound.
func NewPLICounter(r *relation.Relation) *PLICounter {
	return NewPLICounterSize(r, defaultCacheEntries)
}

// NewPLICounterSize builds a PLI-based counter with an explicit bound on
// memoised multi-column partitions (minimum 16).
func NewPLICounterSize(r *relation.Relation, maxEntries int) *PLICounter {
	if maxEntries < 16 {
		maxEntries = 16
	}
	return &PLICounter{
		r:          r,
		pinned:     make(map[string]*Partition),
		cache:      make(map[string]*Partition),
		maxEntries: maxEntries,
	}
}

// Relation returns the bound instance.
func (c *PLICounter) Relation() *relation.Relation { return c.r }

// Count returns |π_X(r)| via partition products.
func (c *PLICounter) Count(x bitset.Set) int {
	if c.r.NumRows() == 0 {
		return 0
	}
	return c.Partition(x).NumClasses()
}

// Partition returns the (memoised) stripped partition for x.
func (c *PLICounter) Partition(x bitset.Set) *Partition {
	key := x.Key()
	c.mu.Lock()
	if p, ok := c.pinned[key]; ok {
		c.mu.Unlock()
		return p
	}
	if p, ok := c.cache[key]; ok {
		c.mu.Unlock()
		return p
	}
	c.mu.Unlock()

	var p *Partition
	members := x.Members()
	switch len(members) {
	case 0:
		p = universal(c.r.NumRows())
	case 1:
		p = FromColumn(c.r, members[0])
	default:
		// Build from the largest cached proper subset if available: try
		// removing one attribute at a time. Otherwise fold columns.
		p = c.fromBestPrefix(x, members)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if len(members) <= 1 {
		c.pinned[key] = p
		return p
	}
	if _, dup := c.cache[key]; !dup {
		c.cache[key] = p
		c.order = append(c.order, key)
		for len(c.cache) > c.maxEntries {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.cache, oldest)
		}
	}
	return p
}

func (c *PLICounter) fromBestPrefix(x bitset.Set, members []int) *Partition {
	c.mu.Lock()
	var base *Partition
	rest := -1
	for _, m := range members {
		sub := x.Without(m)
		if p, ok := c.cache[sub.Key()]; ok {
			base, rest = p, m
			break
		}
	}
	c.mu.Unlock()
	if base != nil {
		return base.Product(c.Partition(bitset.New(rest)), nil)
	}
	p := c.Partition(bitset.New(members[0]))
	for _, m := range members[1:] {
		p = p.Product(c.Partition(bitset.New(m)), nil)
	}
	return p
}

// CacheSize reports how many partitions are memoised, pinned singletons
// included (for tests and stats).
func (c *PLICounter) CacheSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache) + len(c.pinned)
}

// ---------------------------------------------------------------------------
// Hash strategy

// HashCounter counts distinct code-tuples with a hash set, recomputing from
// scratch on every call (no state shared between calls beyond the relation).
type HashCounter struct {
	r *relation.Relation
}

// NewHashCounter builds a hash-based counter over r.
func NewHashCounter(r *relation.Relation) *HashCounter { return &HashCounter{r: r} }

// Relation returns the bound instance.
func (c *HashCounter) Relation() *relation.Relation { return c.r }

// Count returns |π_X(r)| by hashing the code tuple of every row.
func (c *HashCounter) Count(x bitset.Set) int {
	n := c.r.NumRows()
	if n == 0 {
		return 0
	}
	cols := x.Members()
	if len(cols) == 0 {
		return 1
	}
	if len(cols) == 1 {
		d := c.r.DictLen(cols[0])
		if c.r.HasNulls(cols[0]) {
			d++
		}
		return d
	}
	columns := make([][]int32, len(cols))
	for i, col := range cols {
		columns[i] = c.r.ColumnCodes(col)
	}
	seen := make(map[string]struct{}, n)
	key := make([]byte, len(cols)*4)
	for row := 0; row < n; row++ {
		seen[string(appendCodeKey(key[:0], columns, row))] = struct{}{}
	}
	return len(seen)
}

// appendCodeKey appends the little-endian encoding of one row's code tuple
// over the projected columns — the canonical map key shared by the hash
// counter and the incremental counter's cluster maps, which must agree
// byte-for-byte on what identifies a cluster.
func appendCodeKey(k []byte, columns [][]int32, row int) []byte {
	for _, codes := range columns {
		v := codes[row]
		k = append(k, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return k
}

// ---------------------------------------------------------------------------
// Sort strategy

// SortCounter counts by lexicographically sorting row indices over the
// projected code columns and counting adjacent differences: the paper's
// "counting the distinct values corresponds to a sorting (O(n log n))
// followed by counting (O(n))".
type SortCounter struct {
	r *relation.Relation
}

// NewSortCounter builds a sort-based counter over r.
func NewSortCounter(r *relation.Relation) *SortCounter { return &SortCounter{r: r} }

// Relation returns the bound instance.
func (c *SortCounter) Relation() *relation.Relation { return c.r }

// Count returns |π_X(r)| by sort + boundary count.
func (c *SortCounter) Count(x bitset.Set) int {
	n := c.r.NumRows()
	if n == 0 {
		return 0
	}
	cols := x.Members()
	if len(cols) == 0 {
		return 1
	}
	columns := make([][]int32, len(cols))
	for i, col := range cols {
		columns[i] = c.r.ColumnCodes(col)
	}
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	sort.Slice(rows, func(a, b int) bool {
		ra, rb := rows[a], rows[b]
		for _, codes := range columns {
			va, vb := codes[ra], codes[rb]
			if va != vb {
				return va < vb
			}
		}
		return false
	})
	count := 1
	for i := 1; i < n; i++ {
		prev, cur := rows[i-1], rows[i]
		for _, codes := range columns {
			if codes[prev] != codes[cur] {
				count++
				break
			}
		}
	}
	return count
}
