package pli

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// samePartitionBits requires p and q to be byte-for-byte the same layout —
// not merely the same clustering. The sharded builds promise bit-identical
// output, so the arena, offsets, bitmap words and bitmap lengths must all
// match the sequential build exactly.
func samePartitionBits(t *testing.T, label string, p, q *Partition) {
	t.Helper()
	if p.NumRows() != q.NumRows() || p.extent != q.extent || p.wpc != q.wpc {
		t.Fatalf("%s: shape mismatch: rows %d/%d extent %d/%d wpc %d/%d",
			label, p.NumRows(), q.NumRows(), p.extent, q.extent, p.wpc, q.wpc)
	}
	if !reflect.DeepEqual(p.arena, q.arena) || !reflect.DeepEqual(p.offs, q.offs) {
		t.Fatalf("%s: sparse layout diverged", label)
	}
	if !reflect.DeepEqual(p.bits, q.bits) || !reflect.DeepEqual(p.bitLens, q.bitLens) {
		t.Fatalf("%s: dense layout diverged", label)
	}
}

// shardedFixture builds a relation large enough for several shard units,
// with a low-cardinality column (routed row-sharded), a high-cardinality
// column (routed code-sharded), a NULL-bearing column, and a tombstone
// pattern that leaves some segments clean and punches holes in others.
func shardedFixture(t *testing.T, rows int) *relation.Relation {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	schema := relation.MustSchema(
		relation.Column{Name: "lo", Kind: relation.KindString},
		relation.Column{Name: "hi", Kind: relation.KindInt},
		relation.Column{Name: "nul", Kind: relation.KindString},
	)
	r := relation.New("sharded", schema)
	for i := 0; i < rows; i++ {
		lo := relation.String(string(rune('A' + rng.Intn(7))))
		hi := relation.Int(int64(rng.Intn(rows)))
		nul := relation.Value(relation.Null)
		if rng.Intn(3) > 0 {
			nul = relation.String(string(rune('a' + rng.Intn(5))))
		}
		r.MustAppend(lo, hi, nul)
	}
	var doomed []int
	for row := 0; row < rows; row++ {
		// Skip the second segment entirely so a clean segment survives, and
		// delete roughly one row in nine elsewhere.
		if row/r.SegmentRows() != 1 && rng.Intn(9) == 0 {
			doomed = append(doomed, row)
		}
	}
	if err := r.Delete(doomed...); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestShardedBuildsBitIdentical drives both sharded FromColumn passes
// directly — the dispatch gate never picks them on a single-core host —
// and requires their output to be byte-identical to the sequential
// counting build at several worker counts, across tombstones, NULL codes
// and both cardinality regimes.
func TestShardedBuildsBitIdentical(t *testing.T) {
	r := shardedFixture(t, 5*4096)
	for col := 0; col < r.NumCols(); col++ {
		codes := r.ColumnCodes(col)
		groups := r.DictLen(col) + 1
		seq := fromColumnSeq(r, codes, groups)
		if !LegacyFromColumn(r, col).EqualsFlat(seq) {
			t.Fatalf("col %d: sequential build diverged from legacy", col)
		}
		for _, workers := range []int{2, 3, 8, 64} {
			rs := fromColumnRowSharded(r, codes, groups, workers)
			samePartitionBits(t, "row-sharded", seq, rs)
			cs := fromColumnCodeSharded(r, codes, groups, workers)
			samePartitionBits(t, "code-sharded", seq, cs)
		}
	}
}

// TestFromColumnParallelDispatch forces a multi-worker GOMAXPROCS and a
// relation past the parallel gate, so FromColumn itself routes through the
// sharded builds: the low-cardinality column takes the row shards, the
// high-cardinality one the code shards, and both must match the sequential
// layout bit for bit.
func TestFromColumnParallelDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 68k-row relation")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	r := shardedFixture(t, parallelBuildMinRows+2048)
	for col := 0; col < r.NumCols(); col++ {
		codes := r.ColumnCodes(col)
		groups := r.DictLen(col) + 1
		samePartitionBits(t, "dispatch", fromColumnSeq(r, codes, groups), FromColumn(r, col))
	}
	// The universal partition (empty attribute set) has its own dense
	// fast path over the tombstone array.
	u := universalOf(r)
	if u.NumRows() != r.LiveRows() || u.NumClasses() != 1 {
		t.Fatalf("universal partition: %d rows in %d classes, want %d in 1",
			u.NumRows(), u.NumClasses(), r.LiveRows())
	}
	if u.NumDenseClasses() != 1 || u.MemBytes() <= 0 {
		t.Fatalf("universal partition of %d live rows should be one dense class", r.LiveRows())
	}
	leg := LegacyFromSet(r, bitset.Set{})
	if leg.NumRows() != u.NumRows() || leg.NumClasses() != u.NumClasses() {
		t.Fatal("legacy universal partition disagrees with flat")
	}
	if len(leg.Classes()) != 1 || leg.MemBytes() <= 0 {
		t.Fatal("legacy universal partition should store one class")
	}
}

// TestExportImportRoundTripInPackage round-trips tracked indexes through
// IndexDump on a mutated counter: the import must reproduce every tracked
// clustering on a fresh counter over the same instance, and the dump
// accessors must describe what was exported.
func TestExportImportRoundTripInPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	r := randomRelation(rng, 400, 3, 4)
	c := NewIncrementalCounter(r)
	sets := []bitset.Set{bitset.New(0), bitset.New(1, 2), bitset.New(0, 1, 2)}
	c.TrackBatch(sets)
	c.TrackBatch(sets) // re-tracking only refreshes recency
	if err := c.Delete(3, 7, 11); err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateStrings(0, "A", "B", "C"); err != nil {
		t.Fatal(err)
	}
	r.MustAppend(relation.String("D"), relation.String("D"), relation.String("D"))
	gen := c.Generation()

	dumps := c.ExportIndexes()
	if len(dumps) != len(sets) {
		t.Fatalf("exported %d dumps, want %d", len(dumps), len(sets))
	}
	for _, d := range dumps {
		total := 0
		for j := 0; j < d.NumClusters(); j++ {
			if len(d.Cluster(j)) == 0 {
				t.Fatal("export contains an empty cluster")
			}
			total += len(d.Cluster(j))
		}
		if total != c.Relation().LiveRows() {
			t.Fatalf("dump %v covers %d rows, want %d", d.Attrs, total, c.Relation().LiveRows())
		}
	}

	c2 := NewIncrementalCounter(r)
	c2.RestoreGeneration(gen)
	c2.RestoreGeneration(1) // backward jumps are ignored
	if got := c2.Generation(); got != gen {
		t.Fatalf("restored generation %d, want %d", got, gen)
	}
	if err := c2.ImportIndexes(dumps); err != nil {
		t.Fatal(err)
	}
	for _, x := range sets {
		if got, want := c2.Count(x), c.Count(x); got != want {
			t.Fatalf("imported Count(%v) = %d, want %d", x, got, want)
		}
		if !LegacyFromSet(r, x).EqualsFlat(c2.Partition(x)) {
			t.Fatalf("imported Partition(%v) diverged from legacy", x)
		}
	}

	// A dump from some other instance must be rejected, not half-applied.
	// (Its set must be untracked — imports skip already-tracked sets.)
	var bogus IndexDump
	bogus.Attrs = []int{1}
	bogus.AddCluster(0, 1)
	if err := c2.ImportIndexes([]IndexDump{bogus}); err == nil {
		t.Fatal("import of a partial-coverage dump succeeded")
	}
}
