package pli

import (
	"sort"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// LegacyPartition is the pre-columnar stripped-partition representation: one
// independently allocated Go slice per class. It is kept solely as the
// reference implementation — the differential/property tests prove the flat
// arena+bitmap Partition induces identical clusterings, and the
// lineitemscale benchmark uses it as the before side of the ablation. No
// production path constructs one.
type LegacyPartition struct {
	classes [][]int32
	numRows int
	extent  int
}

// LegacyFromColumn is the historical append-per-group single-column build.
func LegacyFromColumn(r *relation.Relation, col int) *LegacyPartition {
	codes := r.ColumnCodes(col)
	groups := make([][]int32, r.DictLen(col)+1)
	live := 0
	for row, code := range codes {
		if r.IsDeleted(row) {
			continue
		}
		live++
		g := code + 1 // NULL (−1) lands at 0
		groups[g] = append(groups[g], int32(row))
	}
	p := &LegacyPartition{numRows: live, extent: len(codes)}
	for _, g := range groups {
		if len(g) >= 2 {
			p.classes = append(p.classes, g)
		}
	}
	return p
}

// LegacyFromSet folds LegacyFromColumn partitions with LegacyProduct.
func LegacyFromSet(r *relation.Relation, x bitset.Set) *LegacyPartition {
	cols := x.Members()
	if len(cols) == 0 {
		live := r.LiveRows()
		p := &LegacyPartition{numRows: live, extent: r.NumRows()}
		if live >= 2 {
			all := make([]int32, 0, live)
			for row := 0; row < r.NumRows(); row++ {
				if !r.IsDeleted(row) {
					all = append(all, int32(row))
				}
			}
			p.classes = [][]int32{all}
		}
		return p
	}
	p := LegacyFromColumn(r, cols[0])
	for _, c := range cols[1:] {
		p = p.Product(LegacyFromColumn(r, c))
	}
	return p
}

// Product is the historical stripped product: per-call probe allocation, one
// fresh slice per output class.
func (p *LegacyPartition) Product(q *LegacyPartition) *LegacyPartition {
	n := p.extent
	if p.numRows > n {
		n = p.numRows
	}
	probe := make([]int32, n)
	for i := range probe {
		probe[i] = -1
	}
	for ci, c := range p.classes {
		for _, row := range c {
			probe[row] = int32(ci)
		}
	}
	out := &LegacyPartition{numRows: p.numRows, extent: p.extent}
	accum := make([][]int32, len(p.classes))
	var touched []int32
	for _, qc := range q.classes {
		for _, row := range qc {
			if ci := probe[row]; ci >= 0 {
				if len(accum[ci]) == 0 {
					touched = append(touched, ci)
				}
				accum[ci] = append(accum[ci], row)
			}
		}
		for _, ci := range touched {
			if len(accum[ci]) >= 2 {
				out.classes = append(out.classes, append([]int32(nil), accum[ci]...))
			}
			accum[ci] = accum[ci][:0]
		}
		touched = touched[:0]
	}
	return out
}

// NumRows returns the number of live tuples the partition covers.
func (p *LegacyPartition) NumRows() int { return p.numRows }

// NumClasses returns |π_X| counting implied singletons.
func (p *LegacyPartition) NumClasses() int {
	merged := 0
	for _, c := range p.classes {
		merged += len(c) - 1
	}
	return p.numRows - merged
}

// Classes returns the stored (size ≥ 2) classes.
func (p *LegacyPartition) Classes() [][]int32 { return p.classes }

// MemBytes returns the retained storage of the legacy form: member data plus
// the 24-byte slice header carried per class — the overhead the flat layout
// eliminates.
func (p *LegacyPartition) MemBytes() int64 {
	total := int64(len(p.classes)) * 24
	for _, c := range p.classes {
		total += int64(len(c)) * 4
	}
	return total
}

// EqualsFlat reports whether the legacy partition induces exactly the same
// clustering as the flat partition q.
func (p *LegacyPartition) EqualsFlat(q *Partition) bool {
	if p.numRows != q.NumRows() || len(p.classes) != q.NumStrippedClasses() {
		return false
	}
	a := make([][]int32, 0, len(p.classes))
	for _, c := range p.classes {
		cc := append([]int32(nil), c...)
		sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
		a = append(a, cc)
	}
	sort.Slice(a, func(i, j int) bool { return a[i][0] < a[j][0] })
	b := q.sortedClasses()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
