package pli

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// appendRandomRows appends n random rows (cardinality ≤ 4 per column, some
// NULLs) to r — the low cardinality makes appended batches keep hitting
// existing clusters and keep creating new ones.
func appendRandomRows(t testing.TB, rng *rand.Rand, r *relation.Relation, n int) {
	t.Helper()
	cells := make([]string, r.NumCols())
	for i := 0; i < n; i++ {
		for c := range cells {
			if rng.Intn(10) == 0 {
				cells[c] = "" // NULL
			} else {
				cells[c] = fmt.Sprintf("v%d", rng.Intn(4))
			}
		}
		if err := r.AppendStrings(cells...); err != nil {
			t.Fatal(err)
		}
	}
}

// randomSets enumerates some attribute sets of every size up to 3.
func randomSets(rng *rand.Rand, ncols, count int) []bitset.Set {
	out := []bitset.Set{{}}
	for i := 0; i < ncols; i++ {
		out = append(out, bitset.New(i))
	}
	for len(out) < count {
		var s bitset.Set
		for s.Len() < 2+rng.Intn(2) {
			s.Add(rng.Intn(ncols))
		}
		out = append(out, s)
	}
	return out
}

// TestIncrementalDifferential is the core correctness proof of the
// incremental counter: after every randomized append batch, every tracked
// and untracked count — and every tracked partition — must equal what a
// from-scratch computation over the grown relation produces.
func TestIncrementalDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const ncols = 5
	r := randomRelation(rng, 30, ncols, 4)
	inc := NewIncrementalCounter(r)
	sets := randomSets(rng, ncols, 12)

	// Track roughly half the sets; the rest exercise the delegate path.
	for i, s := range sets {
		if i%2 == 0 {
			inc.Track(s)
		}
	}
	for batch := 0; batch < 8; batch++ {
		appendRandomRows(t, rng, r, rng.Intn(25)) // occasionally empty batches
		fresh := NewPLICounter(r)
		for _, s := range sets {
			want := fresh.Count(s)
			if got := inc.Count(s); got != want {
				t.Fatalf("batch %d: Count(%v) = %d, want %d", batch, s, got, want)
			}
			got, _ := inc.CountWithGen(s)
			if got != want {
				t.Fatalf("batch %d: CountWithGen(%v) = %d, want %d", batch, s, got, want)
			}
			if s.IsEmpty() {
				continue
			}
			if p, q := inc.Partition(s), FromSet(r, s); !p.EqualPartition(q) {
				t.Fatalf("batch %d: Partition(%v) diverged from scratch", batch, s)
			}
		}
	}
}

func TestIncrementalGenerationStamps(t *testing.T) {
	r := buildRelation(t, []string{"a", "b"}, [][]string{
		{"x", "1"}, {"x", "2"}, {"y", "1"},
	})
	inc := NewIncrementalCounter(r)
	a := bitset.New(0)
	n0, g0 := inc.CountWithGen(a)
	if n0 != 2 {
		t.Fatalf("count(a) = %d, want 2", n0)
	}
	// Appending a duplicate 'a' value must not advance the count stamp.
	if err := r.AppendStrings("x", "3"); err != nil {
		t.Fatal(err)
	}
	n1, g1 := inc.CountWithGen(a)
	if n1 != 2 || g1 != g0 {
		t.Fatalf("after duplicate append: count %d gen %d, want count 2 gen %d", n1, g1, g0)
	}
	// A fresh 'a' value must advance it.
	if err := r.AppendStrings("z", "3"); err != nil {
		t.Fatal(err)
	}
	n2, g2 := inc.CountWithGen(a)
	if n2 != 3 || g2 <= g1 {
		t.Fatalf("after new value: count %d gen %d, want count 3 and gen > %d", n2, g2, g1)
	}
	if inc.Generation() < g2 {
		t.Fatal("counter generation must dominate index stamps")
	}
}

func TestIncrementalEmptyAndGrowingRelation(t *testing.T) {
	schema, err := relation.SchemaOf("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New("t", schema)
	inc := NewIncrementalCounter(r)
	ab := bitset.New(0, 1)
	if got := inc.Count(ab); got != 0 {
		t.Fatalf("empty-instance count = %d, want 0", got)
	}
	if got, _ := inc.CountWithGen(ab); got != 0 {
		t.Fatalf("empty-instance CountWithGen = %d, want 0", got)
	}
	if got, _ := inc.CountWithGen(bitset.Set{}); got != 0 {
		t.Fatalf("empty-set count on empty instance = %d, want 0", got)
	}
	if err := r.AppendStrings("x", "1"); err != nil {
		t.Fatal(err)
	}
	if got := inc.Count(ab); got != 1 {
		t.Fatalf("count after first row = %d, want 1", got)
	}
	if got := inc.Count(bitset.Set{}); got != 1 {
		t.Fatalf("empty-set count = %d, want 1", got)
	}
	if got, _ := inc.CountWithGen(bitset.Set{}); got != 1 {
		t.Fatalf("empty-set CountWithGen = %d, want 1", got)
	}
}

func TestIncrementalTrackedEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := randomRelation(rng, 40, 6, 4)
	inc := NewIncrementalCounterSize(r, 4)
	var sets []bitset.Set
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			sets = append(sets, bitset.New(i, j))
		}
	}
	for _, s := range sets {
		inc.Track(s)
	}
	if got := inc.TrackedSets(); got != 4 {
		t.Fatalf("tracked sets = %d, want eviction down to 4", got)
	}
	// Evicted sets must still answer correctly (via re-track or delegate).
	fresh := NewPLICounter(r)
	for _, s := range sets {
		if got, want := inc.Count(s), fresh.Count(s); got != want {
			t.Fatalf("Count(%v) after eviction = %d, want %d", s, got, want)
		}
	}
}

func TestIncrementalDelegateInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := randomRelation(rng, 25, 4, 4)
	inc := NewIncrementalCounter(r)
	s := bitset.New(0, 1, 2) // never tracked: exercises the inner PLICounter
	before := inc.Count(s)
	if want := NewPLICounter(r).Count(s); before != want {
		t.Fatalf("delegate count = %d, want %d", before, want)
	}
	appendRandomRows(t, rng, r, 30)
	after := inc.Count(s)
	if want := NewPLICounter(r).Count(s); after != want {
		t.Fatalf("delegate count after growth = %d, want %d (stale inner counter?)", after, want)
	}
}

func TestIncrementalPreexistingRows(t *testing.T) {
	// A counter built over a non-empty relation must fold the existing rows
	// exactly once.
	r := buildRelation(t, []string{"a"}, [][]string{{"x"}, {"y"}, {"x"}})
	inc := NewIncrementalCounter(r)
	if got, _ := inc.CountWithGen(bitset.New(0)); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if err := r.AppendStrings("z"); err != nil {
		t.Fatal(err)
	}
	if got := inc.Count(bitset.New(0)); got != 3 {
		t.Fatalf("count after append = %d, want 3", got)
	}
}
