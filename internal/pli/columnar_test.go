package pli

import (
	"math/rand"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// randomSet draws a non-deterministic attribute subset (possibly empty).
func randomSet(rng *rand.Rand, cols int) bitset.Set {
	var x bitset.Set
	for c := 0; c < cols; c++ {
		if rng.Intn(2) == 0 {
			x.Add(c)
		}
	}
	return x
}

// TestQuickFlatLegacyDMLDifferential drives random DML + Compact
// interleavings through an IncrementalCounter and checks, at every step
// boundary, that the flat arena+bitmap partitions (both the tracked-index
// path and the scratch FromColumn/FromSet builds) induce exactly the
// clusterings the legacy one-slice-per-class layout builds from the same
// relation state. This is the property pinning the columnar refactor: no
// mutation sequence, tombstone pattern, or epoch boundary may change any
// clustering.
func TestQuickFlatLegacyDMLDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 40; iter++ {
		cols := 2 + rng.Intn(4)
		domain := 2 + rng.Intn(4)
		r := randomRelation(rng, 10+rng.Intn(50), cols, domain)
		counter := NewIncrementalCounter(r)
		tracked := make([]bitset.Set, 0, 3)
		for len(tracked) < 3 {
			x := randomSet(rng, cols)
			if !x.IsEmpty() {
				tracked = append(tracked, x)
				counter.Track(x)
			}
		}
		row := make([]relation.Value, cols)
		for step := 0; step < 12; step++ {
			var live []int
			for id := 0; id < r.NumRows(); id++ {
				if !r.IsDeleted(id) {
					live = append(live, id)
				}
			}
			switch op := rng.Intn(10); {
			case op < 4: // append a fresh tuple
				for c := range row {
					row[c] = relation.String(string(rune('A' + rng.Intn(domain))))
				}
				r.MustAppend(row...)
			case op < 6 && len(live) > 0: // delete a live row
				if err := counter.Delete(live[rng.Intn(len(live))]); err != nil {
					t.Fatalf("iter %d step %d: delete: %v", iter, step, err)
				}
			case op < 8 && len(live) > 0: // rewrite a live row in place
				for c := range row {
					row[c] = relation.String(string(rune('A' + rng.Intn(domain))))
				}
				if err := counter.Update(live[rng.Intn(len(live))], row...); err != nil {
					t.Fatalf("iter %d step %d: update: %v", iter, step, err)
				}
			default: // squeeze tombstones out across an epoch boundary
				counter.Compact()
			}
			for _, x := range tracked {
				legacy := LegacyFromSet(r, x)
				if flat := counter.Partition(x); !legacy.EqualsFlat(flat) {
					t.Fatalf("iter %d step %d: tracked Partition(%v) diverged from legacy", iter, step, x)
				}
				if flat := FromSet(r, x); !legacy.EqualsFlat(flat) {
					t.Fatalf("iter %d step %d: FromSet(%v) diverged from legacy", iter, step, x)
				}
			}
			col := rng.Intn(cols)
			if !LegacyFromColumn(r, col).EqualsFlat(FromColumn(r, col)) {
				t.Fatalf("iter %d step %d: FromColumn(%d) diverged from legacy", iter, step, col)
			}
		}
	}
}

// TestProductPooledScratchAllocs pins the sync.Pool plumbing: a nil-scratch
// Product must borrow its probe and accumulator tables from the shared pool
// instead of allocating the O(rows) probe per call. The steady-state
// allocation count is the output partition's own storage (struct, arena,
// offsets) — a handful of allocations, not one per row.
func TestProductPooledScratchAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := randomRelation(rng, 20_000, 3, 4)
	p := FromColumn(r, 0)
	q := FromColumn(r, 1)
	p.Product(q, nil) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		p.Product(q, nil)
	})
	// The probe table alone would be one allocation of 80KB per call; the
	// pooled path's footprint is the output partition (≈ a dozen appends).
	if allocs > 24 {
		t.Fatalf("nil-scratch Product allocates %.0f objects/run; pool regressed", allocs)
	}
}
