package pli

import (
	"math/rand"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// relationOf builds a two-column string relation from literal rows.
func relationOf(t *testing.T, rows [][]string) *relation.Relation {
	t.Helper()
	schema, err := relation.SchemaOf("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New("t", schema)
	for _, cells := range rows {
		if err := r.AppendStrings(cells...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// TestIncrementalCompactDifferential interleaves compactions with randomized
// mixed DML and asserts after every batch that tracked and untracked counts,
// generation-stamped counts, and materialised partitions all agree with
// from-scratch counters over the same (possibly remapped) instance.
func TestIncrementalCompactDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	const ncols = 5
	r := randomRelation(rng, 60, ncols, 4)
	inc := NewIncrementalCounter(r)
	sets := randomSets(rng, ncols, 12)
	for i, s := range sets {
		if i%2 == 0 {
			inc.Track(s)
		}
	}
	tuple := make([]relation.Value, ncols)
	compactions := 0
	for batch := 0; batch < 12; batch++ {
		for op := 0; op < 12; op++ {
			live := liveRowIDs(r)
			switch roll := rng.Intn(3); {
			case roll == 0 || len(live) < 2:
				appendRandomRows(t, rng, r, 1)
			case roll == 1:
				if err := inc.Delete(live[rng.Intn(len(live))]); err != nil {
					t.Fatal(err)
				}
			default:
				for c := range tuple {
					tuple[c] = relation.String(string(rune('A' + rng.Intn(4))))
				}
				if err := inc.Update(live[rng.Intn(len(live))], tuple...); err != nil {
					t.Fatal(err)
				}
			}
		}
		if batch%3 == 2 {
			if m := inc.Compact(); m != nil {
				compactions++
				if r.HasTombstones() {
					t.Fatalf("batch %d: tombstones survived Compact", batch)
				}
			}
		}
		fresh, hash := NewPLICounter(r), NewHashCounter(r)
		for _, s := range sets {
			want := fresh.Count(s)
			if alt := hash.Count(s); alt != want {
				t.Fatalf("batch %d: scratch counters disagree on %v: pli %d, hash %d", batch, s, want, alt)
			}
			if got := inc.Count(s); got != want {
				t.Fatalf("batch %d: Count(%v) = %d, want %d", batch, s, got, want)
			}
			if got, _ := inc.CountWithGen(s); got != want {
				t.Fatalf("batch %d: CountWithGen(%v) = %d, want %d", batch, s, got, want)
			}
			if !inc.Partition(s).EqualPartition(fresh.Partition(s)) {
				t.Fatalf("batch %d: Partition(%v) diverged from scratch", batch, s)
			}
		}
	}
	if compactions == 0 {
		t.Fatal("stream never compacted; widen the mix")
	}
}

// TestCompactPreservesGenerationStamps is the heart of the remap design: a
// compaction moves row ids but no count, so every tracked set's generation
// stamp — and therefore every measure cached against it — must survive the
// epoch boundary unchanged.
func TestCompactPreservesGenerationStamps(t *testing.T) {
	r := relationOf(t, [][]string{
		{"a1", "b1"}, {"a1", "b1"}, {"a2", "b2"}, {"a2", "b2"}, {"a3", "b3"},
	})
	inc := NewIncrementalCounter(r)
	a, ab := bitset.New(0), bitset.New(0, 1)
	n0, g0 := inc.CountWithGen(a)
	n1, g1 := inc.CountWithGen(ab)
	// Delete one row of a 2-cluster: |π_A| and |π_AB| are unchanged, so the
	// stamps must hold through both the delete and the compaction.
	if err := inc.Delete(1); err != nil {
		t.Fatal(err)
	}
	gen := inc.Generation()
	m := inc.Compact()
	if m == nil || m.Reclaimed() != 1 {
		t.Fatalf("Compact = %v, want one reclaimed tombstone", m)
	}
	if inc.Generation() <= gen {
		t.Fatal("Compact must advance the generation (partition row ids moved)")
	}
	if inc.Epoch() != 1 {
		t.Fatalf("Epoch = %d, want 1", inc.Epoch())
	}
	if n, g := inc.CountWithGen(a); n != n0 || g != g0 {
		t.Fatalf("CountWithGen(a) = (%d,%d) after compaction, want unchanged (%d,%d)", n, g, n0, g0)
	}
	if n, g := inc.CountWithGen(ab); n != n1 || g != g1 {
		t.Fatalf("CountWithGen(ab) = (%d,%d) after compaction, want unchanged (%d,%d)", n, g, n1, g1)
	}
	// The remapped partition must match a from-scratch build over the
	// compacted instance.
	if !inc.Partition(a).EqualPartition(NewPLICounter(r).Partition(a)) {
		t.Fatal("remapped partition diverged from scratch after compaction")
	}
}

// TestCompactNoTombstonesIsNoop: a clean instance compacts to nil without
// advancing generation or epoch.
func TestCompactNoTombstonesIsNoop(t *testing.T) {
	r := relationOf(t, [][]string{{"a1", "b1"}, {"a2", "b2"}})
	inc := NewIncrementalCounter(r)
	gen := inc.Generation()
	if m := inc.Compact(); m != nil {
		t.Fatalf("Compact on clean instance = %v, want nil", m)
	}
	if inc.Generation() != gen || inc.Epoch() != 0 {
		t.Fatalf("no-op Compact moved generation/epoch: %d/%d", inc.Generation(), inc.Epoch())
	}
}

// TestOutOfBandCompactionRebuilds: a Compact applied directly to the
// relation loses the remap table, so the counter must detect the epoch
// change and rebuild its tracked state — correct counts, stamps advanced.
func TestOutOfBandCompactionRebuilds(t *testing.T) {
	r := relationOf(t, [][]string{
		{"a1", "b1"}, {"a1", "b2"}, {"a2", "b1"}, {"a2", "b2"},
	})
	inc := NewIncrementalCounter(r)
	a := bitset.New(0)
	if n, _ := inc.CountWithGen(a); n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
	if err := inc.Delete(0); err != nil {
		t.Fatal(err)
	}
	if r.Compact() == nil { // behind the counter's back
		t.Fatal("relation.Compact returned nil")
	}
	want := NewHashCounter(r).Count(a)
	if got := inc.Count(a); got != want {
		t.Fatalf("Count after out-of-band compaction = %d, want %d", got, want)
	}
	if !inc.Partition(a).EqualPartition(NewPLICounter(r).Partition(a)) {
		t.Fatal("partition diverged after out-of-band compaction")
	}
}

// TestPLICounterEpochInvalidation: a standalone PLICounter serves cached
// partitions only within one storage epoch; a compaction must flush pinned
// singletons and composite entries alike before the next query.
func TestPLICounterEpochInvalidation(t *testing.T) {
	r := relationOf(t, [][]string{
		{"a1", "b1"}, {"a1", "b2"}, {"a2", "b1"}, {"a2", "b2"}, {"a2", "b2"},
	})
	c := NewPLICounter(r)
	a, ab := bitset.New(0), bitset.New(0, 1)
	if got := c.Count(ab); got != 4 {
		t.Fatalf("Count(ab) = %d, want 4", got)
	}
	cached := c.CacheSize()
	if err := r.Delete(0, 4); err != nil {
		t.Fatal(err)
	}
	if r.Compact() == nil {
		t.Fatal("relation.Compact returned nil")
	}
	// Same counter, new epoch: every count and partition must describe the
	// compacted instance.
	if got := c.Count(a); got != 2 {
		t.Fatalf("post-compaction Count(a) = %d, want 2", got)
	}
	if got := c.Count(ab); got != 3 {
		t.Fatalf("post-compaction Count(ab) = %d, want 3", got)
	}
	if c.CacheSize() > cached+1 {
		t.Fatalf("stale entries survived the epoch flush: %d cached", c.CacheSize())
	}
	p := c.Partition(a)
	if p.NumRows() != 3 {
		t.Fatalf("partition covers %d rows, want 3", p.NumRows())
	}
	for _, cls := range p.Classes() {
		for _, row := range cls {
			if int(row) >= r.NumRows() {
				t.Fatalf("partition references old-epoch row %d (extent %d)", row, r.NumRows())
			}
		}
	}
}
