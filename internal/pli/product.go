package pli

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file implements the stripped-product kernels. Every product walks q's
// stored classes in one canonical order — arena classes first, then bitmap
// classes — and dispatches each against p's side by storage form:
//
//	q class | p side         | kernel
//	sparse  | any            | probe scatter (row → p-class table)
//	dense   | dense classes  | 64-bit word AND + OnesCount64
//	dense   | sparse classes | bitmap membership test over the member arena
//
// The probe table is only filled when q has sparse classes, so a product of
// two all-dense partitions touches no O(extent) scratch at all. Each kernel
// exists in a materialising and a count-only form; the count-only form never
// writes members, and for dense×dense it is pure popcount.

// wordKernelsOff disables the dense-class word kernels, forcing every class
// through the probe-scatter path (dense q classes decoded to members first).
// Ablation and differential testing only — results are identical either way.
var wordKernelsOff atomic.Bool

// SetWordKernels toggles the dense word kernels (AND/popcount and bitmap
// membership) and returns the previous setting. The probe-scatter fallback
// computes identical products; the knob exists so benchmarks can attribute
// time to the kernel dispatch. Not intended for concurrent toggling with
// in-flight products.
func SetWordKernels(enabled bool) (prev bool) {
	return !wordKernelsOff.Swap(!enabled)
}

// wordEligible reports whether the word kernels may run for p·q: kernels
// enabled and both partitions over the same physical row range (equal extents
// imply equal words-per-class, so bitmaps are word-aligned with each other).
func (p *Partition) wordEligible(q *Partition) bool {
	return !wordKernelsOff.Load() && p.extent == q.extent
}

// needsProbe reports whether the product p·q (word kernels as given) must
// fill the row → p-class probe table.
func (p *Partition) needsProbe(q *Partition, word bool) bool {
	return q.numSparse() > 0 || (!word && len(q.bitLens) > 0)
}

// Product computes the partition of X∪Q from the partitions of X and Q using
// the stripped-product algorithm (TANE) over the flat layout, dispatching
// each q class to the kernel table above. scratch may be nil, in which case
// pooled tables are borrowed for the call; passing a scratch from NewScratch
// reuses the caller's across calls.
func (p *Partition) Product(q *Partition, scratch *productScratch) *Partition {
	out := &Partition{numRows: p.numRows, extent: p.extent}
	nq := q.NumStrippedClasses()
	if nq == 0 || p.NumStrippedClasses() == 0 {
		return out
	}
	word := p.wordEligible(q)
	pooled := scratch == nil
	if pooled {
		scratch = scratchPool.Get().(*productScratch)
	}
	probe := p.needsProbe(q, word)
	if probe {
		scratch.ensure(p.probeExtent())
		p.fillProbe(scratch.probe)
		scratch.ensureAccum(p.NumStrippedClasses())
	}
	p.productRange(q, scratch, out, 0, nq, word)
	if probe {
		p.clearProbe(scratch.probe)
	}
	if pooled {
		putScratch(scratch)
	}
	return out
}

// productRange materialises the product classes arising from q's canonical
// classes [lo, hi) into out. Emission order is deterministic: q classes in
// canonical order; within a dense q class, dense p intersections first (p
// class order), then sparse p intersections (arena order); members ascending.
func (p *Partition) productRange(q *Partition, s *productScratch, out *Partition, lo, hi int, word bool) {
	ns := q.numSparse()
	for i := lo; i < hi; i++ {
		if i < ns {
			p.emitProbe(q.arena[q.offs[i]:q.offs[i+1]], s, out)
			continue
		}
		if !word {
			p.emitProbe(q.decodeDense(i-ns, s), s, out)
			continue
		}
		p.emitDense(q, i-ns, s, out)
	}
}

// decodeDense materialises dense class d's members into the scratch buffer.
func (q *Partition) decodeDense(d int, s *productScratch) []int32 {
	buf := s.buf[:0]
	for wi, w := range q.denseWords(d) {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			buf = append(buf, int32(wi<<6+b))
			w &^= 1 << b
		}
	}
	s.buf = buf
	return buf
}

// emitProbe is the probe-scatter kernel: split one q class by the p-class
// probe table, emitting every intersection of size ≥ 2.
func (p *Partition) emitProbe(members []int32, s *productScratch, out *Partition) {
	probe, accum := s.probe, s.accum
	touched := s.touched[:0]
	for _, row := range members {
		if ci := probe[row]; ci >= 0 {
			if len(accum[ci]) == 0 {
				touched = append(touched, ci)
			}
			accum[ci] = append(accum[ci], row)
		}
	}
	for _, ci := range touched {
		if len(accum[ci]) >= 2 {
			out.addClass(accum[ci])
		}
		accum[ci] = accum[ci][:0]
	}
	s.touched = touched[:0]
}

// emitDense intersects dense q class d with every p class using the word
// kernels: AND + popcount against p's bitmaps, membership tests against p's
// member arena. No probe table is read.
func (p *Partition) emitDense(q *Partition, d int, s *productScratch, out *Partition) {
	qw := q.denseWords(d)
	cut := int32(denseCutFor(p.extent))
	if len(p.bitLens) > 0 {
		s.ensureWords(p.wpc)
		words := s.words
		for pd := range p.bitLens {
			pw := p.denseWords(pd)
			n := int32(0)
			for wi, w := range pw {
				w &= qw[wi]
				words[wi] = w
				n += int32(bits.OnesCount64(w))
			}
			if n < 2 {
				continue
			}
			if n >= cut {
				out.addDenseWords(words, n)
				continue
			}
			buf := s.buf[:0]
			for wi, w := range words {
				for w != 0 {
					b := bits.TrailingZeros64(w)
					buf = append(buf, int32(wi<<6+b))
					w &^= 1 << b
				}
			}
			s.buf = buf
			out.addClass(buf)
		}
	}
	for i, nsp := 0, p.numSparse(); i < nsp; i++ {
		buf := s.buf[:0]
		for _, row := range p.arena[p.offs[i]:p.offs[i+1]] {
			if qw[row>>6]>>(uint(row)&63)&1 == 1 {
				buf = append(buf, row)
			}
		}
		s.buf = buf
		if len(buf) >= 2 {
			out.addClass(buf)
		}
	}
}

// ---------------------------------------------------------------------------
// Count-only products

// ProductCount returns |π_{X∪Q}| — NumClasses of p.Product(q) — without
// materialising the product: no arena, no offsets, no bitmaps are written.
// Candidate scoring (confidence, goodness, g₃) needs only this number, so the
// repair search materialises a child partition only when the node is actually
// expanded. For all-dense operands the count is pure AND + popcount and
// allocates nothing; scratch (nil for pooled) is only touched when q has
// sparse classes or the word kernels are off.
func (p *Partition) ProductCount(q *Partition, scratch *productScratch) int {
	return p.numRows - p.productMerged(q, scratch, nil)
}

// ProductStrippedSizes returns the sizes of the stored (≥ 2 row) classes of
// p.Product(q) in deterministic kernel-dispatch order, without materialising
// members. Entropy-style measures need exactly this size distribution; tests
// compare it (as a multiset) against the materialised product.
func (p *Partition) ProductStrippedSizes(q *Partition, scratch *productScratch) []int32 {
	var sizes []int32
	p.productMerged(q, scratch, func(n int32) { sizes = append(sizes, n) })
	return sizes
}

// productMerged runs the count-only kernels over all of q's classes and
// returns Σ(|c|−1) across product classes of size ≥ 2 (the stripped "merged
// rows" total NumClasses subtracts). sink, when non-nil, observes each stored
// class size.
func (p *Partition) productMerged(q *Partition, scratch *productScratch, sink func(int32)) int {
	nq := q.NumStrippedClasses()
	if nq == 0 || p.NumStrippedClasses() == 0 {
		return 0
	}
	word := p.wordEligible(q)
	probe := p.needsProbe(q, word)
	pooled := false
	if probe && scratch == nil {
		scratch = scratchPool.Get().(*productScratch)
		pooled = true
	}
	if probe {
		scratch.ensure(p.probeExtent())
		p.fillProbe(scratch.probe)
		scratch.ensureCounts(p.NumStrippedClasses())
	}
	merged := p.countRange(q, scratch, 0, nq, word, sink)
	if probe {
		p.clearProbe(scratch.probe)
	}
	if pooled {
		putScratch(scratch)
	}
	return merged
}

// countRange is productRange's count-only twin over q's canonical classes
// [lo, hi).
func (p *Partition) countRange(q *Partition, s *productScratch, lo, hi int, word bool, sink func(int32)) int {
	ns := q.numSparse()
	merged := 0
	for i := lo; i < hi; i++ {
		if i < ns {
			merged += p.countProbe(q.arena[q.offs[i]:q.offs[i+1]], s, sink)
			continue
		}
		if !word {
			merged += p.countProbe(q.decodeDense(i-ns, s), s, sink)
			continue
		}
		merged += p.countDense(q, i-ns, sink)
	}
	return merged
}

// countProbe tallies intersection sizes of one q class through the probe
// table, without recording members.
func (p *Partition) countProbe(members []int32, s *productScratch, sink func(int32)) int {
	probe, counts := s.probe, s.counts
	touched := s.touched[:0]
	for _, row := range members {
		if ci := probe[row]; ci >= 0 {
			if counts[ci] == 0 {
				touched = append(touched, ci)
			}
			counts[ci]++
		}
	}
	merged := 0
	for _, ci := range touched {
		if n := counts[ci]; n >= 2 {
			merged += int(n) - 1
			if sink != nil {
				sink(n)
			}
		}
		counts[ci] = 0
	}
	s.touched = touched[:0]
	return merged
}

// countDense intersects dense q class d with every p class word-parallel:
// popcount of ANDed bitmaps, membership tests over the member arena. Pure
// reads — no scratch, no writes, no allocation.
func (p *Partition) countDense(q *Partition, d int, sink func(int32)) int {
	qw := q.denseWords(d)
	merged := 0
	for pd := range p.bitLens {
		pw := p.denseWords(pd)
		n := int32(0)
		for wi, w := range pw {
			n += int32(bits.OnesCount64(w & qw[wi]))
		}
		if n >= 2 {
			merged += int(n) - 1
			if sink != nil {
				sink(n)
			}
		}
	}
	for i, nsp := 0, p.numSparse(); i < nsp; i++ {
		n := int32(0)
		for _, row := range p.arena[p.offs[i]:p.offs[i+1]] {
			n += int32(qw[row>>6] >> (uint(row) & 63) & 1)
		}
		if n >= 2 {
			merged += int(n) - 1
			if sink != nil {
				sink(n)
			}
		}
	}
	return merged
}

// ---------------------------------------------------------------------------
// Sharded parallel product

// parallelProductMinRows gates ProductParallel's fan-out: below it worker
// startup and the merge copy dominate the product itself.
const parallelProductMinRows = 1 << 16

// ProductParallel computes the same partition as Product by fanning q's
// canonical classes across at most `workers` goroutines. Each worker owns a
// contiguous, member-weighted range of q classes, shares the read-only probe
// table, runs the serial kernels into a private partial partition with pooled
// scratch, and the partials are concatenated in shard order — so the arena,
// offset table, bitmap words and bitmap lengths are bit-identical to the
// serial product at every worker count.
func (p *Partition) ProductParallel(q *Partition, workers int) *Partition {
	nq := q.NumStrippedClasses()
	if workers > nq {
		workers = nq
	}
	if workers < 2 || p.numRows < parallelProductMinRows {
		return p.Product(q, nil)
	}
	word := p.wordEligible(q)
	if p.NumStrippedClasses() == 0 {
		return &Partition{numRows: p.numRows, extent: p.extent}
	}
	var probe []int32
	var probeScratch *productScratch
	if p.needsProbe(q, word) {
		probeScratch = scratchPool.Get().(*productScratch)
		probeScratch.ensure(p.probeExtent())
		probe = probeScratch.probe
		p.fillProbePar(probe, workers)
	}
	bounds := q.classShards(workers)
	parts := make([]*Partition, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := &Partition{numRows: p.numRows, extent: p.extent}
			s := scratchPool.Get().(*productScratch)
			own := s.probe
			s.probe = probe
			if probe != nil {
				s.ensureAccum(p.NumStrippedClasses())
			}
			p.productRange(q, s, out, bounds[w], bounds[w+1], word)
			s.probe = own
			putScratch(s)
			parts[w] = out
		}(w)
	}
	wg.Wait()
	if probe != nil {
		p.clearProbePar(probe, workers)
		putScratch(probeScratch)
	}
	return mergeParts(parts, p.numRows, p.extent)
}

// classShards splits q's canonical class sequence into `workers` contiguous
// ranges of roughly equal member weight (arena lengths plus bitmap member
// counts), returning workers+1 monotone bounds.
func (q *Partition) classShards(workers int) []int {
	ns, nq := q.numSparse(), q.NumStrippedClasses()
	total := int64(len(q.arena))
	for _, n := range q.bitLens {
		total += int64(n)
	}
	weightOf := func(i int) int64 {
		if i < ns {
			return int64(q.offs[i+1] - q.offs[i])
		}
		return int64(q.bitLens[i-ns])
	}
	bounds := make([]int, workers+1)
	acc := int64(0)
	next := 1
	for i := 0; i < nq && next < workers; i++ {
		acc += weightOf(i)
		for next < workers && acc >= total*int64(next)/int64(workers) {
			bounds[next] = i + 1
			next++
		}
	}
	for ; next < workers; next++ {
		bounds[next] = nq
	}
	bounds[workers] = nq
	return bounds
}

// fillProbePar fills the probe table across workers, sharding p's classes;
// every row belongs to exactly one class, so writes are disjoint.
func (p *Partition) fillProbePar(probe []int32, workers int) {
	p.forEachClassShard(workers, func(lo, hi int) {
		ns := p.numSparse()
		for i := lo; i < hi; i++ {
			if i < ns {
				for _, row := range p.arena[p.offs[i]:p.offs[i+1]] {
					probe[row] = int32(i)
				}
				continue
			}
			for wi, w := range p.denseWords(i - ns) {
				for w != 0 {
					b := bits.TrailingZeros64(w)
					probe[wi<<6+b] = int32(i)
					w &^= 1 << b
				}
			}
		}
	})
}

// clearProbePar resets exactly the rows fillProbePar set, sharded the same
// way.
func (p *Partition) clearProbePar(probe []int32, workers int) {
	p.forEachClassShard(workers, func(lo, hi int) {
		ns := p.numSparse()
		for i := lo; i < hi; i++ {
			if i < ns {
				for _, row := range p.arena[p.offs[i]:p.offs[i+1]] {
					probe[row] = -1
				}
				continue
			}
			for wi, w := range p.denseWords(i - ns) {
				for w != 0 {
					b := bits.TrailingZeros64(w)
					probe[wi<<6+b] = -1
					w &^= 1 << b
				}
			}
		}
	})
}

// forEachClassShard runs fn over member-weighted contiguous shards of p's
// canonical classes, one goroutine per shard.
func (p *Partition) forEachClassShard(workers int, fn func(lo, hi int)) {
	if workers > p.NumStrippedClasses() {
		workers = p.NumStrippedClasses()
	}
	if workers < 2 {
		fn(0, p.NumStrippedClasses())
		return
	}
	bounds := p.classShards(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(bounds[w], bounds[w+1])
		}(w)
	}
	wg.Wait()
}

// mergeParts concatenates per-shard partial partitions in shard order into
// one flat partition — exactly the storage the serial kernels would have
// appended.
func mergeParts(parts []*Partition, numRows, extent int) *Partition {
	out := &Partition{numRows: numRows, extent: extent}
	arenaLen, offsLen, bitsLen, lensLen := 0, 0, 0, 0
	for _, part := range parts {
		arenaLen += len(part.arena)
		if n := part.numSparse(); n > 0 {
			offsLen += n
		}
		bitsLen += len(part.bits)
		lensLen += len(part.bitLens)
	}
	if offsLen > 0 {
		out.arena = make([]int32, 0, arenaLen)
		out.offs = make([]int32, 1, offsLen+1)
	}
	if lensLen > 0 {
		out.wpc = (extent + 63) / 64
		out.bits = make([]uint64, 0, bitsLen)
		out.bitLens = make([]int32, 0, lensLen)
	}
	for _, part := range parts {
		if len(part.arena) > 0 {
			base := int32(len(out.arena))
			out.arena = append(out.arena, part.arena...)
			for _, off := range part.offs[1:] {
				out.offs = append(out.offs, base+off)
			}
		}
		out.bits = append(out.bits, part.bits...)
		out.bitLens = append(out.bitLens, part.bitLens...)
	}
	return out
}
