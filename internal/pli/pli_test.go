package pli

import (
	"math/rand"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// buildRelation makes a relation with the given string columns.
func buildRelation(t testing.TB, cols []string, rows [][]string) *relation.Relation {
	t.Helper()
	schema, err := relation.SchemaOf(cols...)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New("t", schema)
	for _, row := range rows {
		if err := r.AppendStrings(row...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestFromColumn(t *testing.T) {
	r := buildRelation(t, []string{"a"}, [][]string{{"x"}, {"y"}, {"x"}, {"z"}, {"x"}})
	p := FromColumn(r, 0)
	if p.NumRows() != 5 {
		t.Fatalf("NumRows = %d", p.NumRows())
	}
	if p.NumClasses() != 3 { // x, y, z
		t.Fatalf("NumClasses = %d, want 3", p.NumClasses())
	}
	if p.NumStrippedClasses() != 1 { // only {0,2,4}
		t.Fatalf("stripped = %d, want 1", p.NumStrippedClasses())
	}
	if got := p.Classes()[0]; len(got) != 3 {
		t.Fatalf("class = %v", got)
	}
}

func TestFromColumnWithNulls(t *testing.T) {
	r := buildRelation(t, []string{"a"}, [][]string{{"x"}, {""}, {""}, {"x"}})
	p := FromColumn(r, 0)
	// Classes: {x rows}, {null rows} → 2 classes.
	if p.NumClasses() != 2 {
		t.Fatalf("NumClasses = %d, want 2 (NULLs group together)", p.NumClasses())
	}
}

func TestUniversalPartition(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5} {
		p := universal(n)
		want := 1
		if n == 0 {
			want = 0
		}
		if p.NumClasses() != want {
			t.Errorf("universal(%d).NumClasses = %d, want %d", n, p.NumClasses(), want)
		}
	}
}

func TestProductMatchesFromSet(t *testing.T) {
	r := buildRelation(t, []string{"a", "b", "c"}, [][]string{
		{"1", "x", "p"}, {"1", "y", "p"}, {"2", "x", "q"},
		{"1", "x", "q"}, {"2", "x", "p"}, {"1", "y", "q"},
	})
	pa, pb := FromColumn(r, 0), FromColumn(r, 1)
	prod := pa.Product(pb, nil)
	direct := FromSet(r, bitset.New(0, 1))
	if !prod.EqualPartition(direct) {
		t.Fatal("product ≠ direct partition for {a,b}")
	}
	if prod.NumClasses() != r.DistinctCount([]int{0, 1}) {
		t.Fatalf("product classes %d ≠ distinct %d", prod.NumClasses(), r.DistinctCount([]int{0, 1}))
	}
}

func TestProductWithScratchReuse(t *testing.T) {
	r := buildRelation(t, []string{"a", "b"}, [][]string{
		{"1", "x"}, {"1", "y"}, {"2", "x"}, {"1", "x"}, {"2", "x"},
	})
	pa, pb := FromColumn(r, 0), FromColumn(r, 1)
	scratch := NewScratch(r.NumRows())
	p1 := pa.Product(pb, scratch)
	p2 := pa.Product(pb, scratch) // reuse must give identical results
	if !p1.EqualPartition(p2) {
		t.Fatal("scratch reuse changed the product")
	}
	if p1.NumClasses() != r.DistinctCount([]int{0, 1}) {
		t.Fatal("scratch product wrong")
	}
}

func TestPartitionError(t *testing.T) {
	r := buildRelation(t, []string{"a"}, [][]string{{"x"}, {"x"}, {"y"}, {"z"}})
	p := FromColumn(r, 0)
	// 4 rows, 3 classes → error = (4-3)/4 = 0.25
	if got := p.Error(); got != 0.25 {
		t.Fatalf("Error = %v, want 0.25", got)
	}
	if universal(0).Error() != 0 {
		t.Fatal("empty partition error must be 0")
	}
}

func TestRefinesOrEquals(t *testing.T) {
	r := buildRelation(t, []string{"a", "b"}, [][]string{
		{"1", "x"}, {"1", "x"}, {"2", "x"}, {"3", "y"},
	})
	pa := FromColumn(r, 0) // {1,1},{2},{3}
	pb := FromColumn(r, 1) // {x,x,x},{y}
	pab := pa.Product(pb, nil)
	if !pa.RefinesOrEquals(pb) {
		t.Fatal("π_a refines π_b here (a→b holds)")
	}
	if pb.RefinesOrEquals(pa) {
		t.Fatal("π_b does not refine π_a")
	}
	if !pab.RefinesOrEquals(pa) || !pab.RefinesOrEquals(pb) {
		t.Fatal("π_ab refines both factors")
	}
}

func randomRelation(rng *rand.Rand, rows, cols, domain int) *relation.Relation {
	names := make([]string, cols)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	schema, _ := relation.SchemaOf(names...)
	r := relation.New("rand", schema)
	row := make([]relation.Value, cols)
	for i := 0; i < rows; i++ {
		for c := range row {
			row[c] = relation.String(string(rune('A' + rng.Intn(domain))))
		}
		r.MustAppend(row...)
	}
	return r
}

// TestQuickAllStrategiesAgree cross-checks pli, hash, and sort counters
// against the relation.DistinctCount oracle over random relations and
// attribute sets.
func TestQuickAllStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 120; iter++ {
		r := randomRelation(rng, 1+rng.Intn(60), 2+rng.Intn(5), 2+rng.Intn(5))
		counters := []Counter{NewPLICounter(r), NewHashCounter(r), NewSortCounter(r)}
		for trial := 0; trial < 8; trial++ {
			var x bitset.Set
			for c := 0; c < r.NumCols(); c++ {
				if rng.Intn(2) == 0 {
					x.Add(c)
				}
			}
			want := r.DistinctCountSet(x)
			for _, c := range counters {
				if got := c.Count(x); got != want {
					t.Fatalf("iter %d: %T.Count(%v) = %d, want %d", iter, c, x, got, want)
				}
			}
		}
	}
}

func TestCountEmptyRelationAndEmptySet(t *testing.T) {
	schema, _ := relation.SchemaOf("a", "b")
	empty := relation.New("e", schema)
	full := buildRelation(t, []string{"a", "b"}, [][]string{{"1", "2"}})
	for _, s := range []Strategy{StrategyPLI, StrategyHash, StrategySort} {
		if got := NewCounter(empty, s).Count(bitset.New(0)); got != 0 {
			t.Errorf("%s: count on empty relation = %d, want 0", s, got)
		}
		if got := NewCounter(empty, s).Count(bitset.Set{}); got != 0 {
			t.Errorf("%s: count(∅) on empty relation = %d, want 0", s, got)
		}
		if got := NewCounter(full, s).Count(bitset.Set{}); got != 1 {
			t.Errorf("%s: count(∅) on non-empty relation = %d, want 1", s, got)
		}
	}
}

func TestNewCounterStrategySelection(t *testing.T) {
	r := buildRelation(t, []string{"a"}, [][]string{{"1"}})
	if _, ok := NewCounter(r, StrategyPLI).(*PLICounter); !ok {
		t.Error("pli strategy should build PLICounter")
	}
	if _, ok := NewCounter(r, StrategyHash).(*HashCounter); !ok {
		t.Error("hash strategy should build HashCounter")
	}
	if _, ok := NewCounter(r, StrategySort).(*SortCounter); !ok {
		t.Error("sort strategy should build SortCounter")
	}
	if _, ok := NewCounter(r, Strategy("bogus")).(*PLICounter); !ok {
		t.Error("unknown strategy should default to PLI")
	}
	if NewCounter(r, StrategyPLI).Relation() != r {
		t.Error("Relation() must return the bound instance")
	}
}

func TestPLICacheGrowsAndHits(t *testing.T) {
	r := buildRelation(t, []string{"a", "b", "c"}, [][]string{
		{"1", "x", "p"}, {"1", "y", "q"}, {"2", "x", "p"},
	})
	c := NewPLICounter(r)
	x := bitset.New(0, 1)
	first := c.Count(x)
	sizeAfterFirst := c.CacheSize()
	second := c.Count(x)
	if first != second {
		t.Fatal("memoised count differs")
	}
	if c.CacheSize() != sizeAfterFirst {
		t.Fatal("second Count should hit the cache, not grow it")
	}
	// Superset reuses the cached subset partition.
	c.Count(x.With(2))
	if c.CacheSize() <= sizeAfterFirst {
		t.Fatal("superset count should add cache entries")
	}
}

// TestQuickProductCommutes: partition product must be commutative in class
// structure.
func TestQuickProductCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 80; iter++ {
		r := randomRelation(rng, 2+rng.Intn(40), 2, 2+rng.Intn(4))
		pa, pb := FromColumn(r, 0), FromColumn(r, 1)
		ab := pa.Product(pb, nil)
		ba := pb.Product(pa, nil)
		if !ab.EqualPartition(ba) {
			t.Fatalf("iter %d: product not commutative", iter)
		}
	}
}

// TestQuickProductRefines: |π_XA| ≥ max(|π_X|, |π_A|) — the refinement
// monotonicity the repair search relies on (§3: C_XY is finer than C_X).
func TestQuickProductRefines(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 80; iter++ {
		r := randomRelation(rng, 2+rng.Intn(50), 3, 2+rng.Intn(5))
		pa, pb := FromColumn(r, 0), FromColumn(r, 1)
		prod := pa.Product(pb, nil)
		if prod.NumClasses() < pa.NumClasses() || prod.NumClasses() < pb.NumClasses() {
			t.Fatalf("iter %d: refinement monotonicity violated", iter)
		}
	}
}

func BenchmarkProduct(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r := randomRelation(rng, 10000, 2, 50)
	pa, pb := FromColumn(r, 0), FromColumn(r, 1)
	scratch := NewScratch(r.NumRows())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pa.Product(pb, scratch)
	}
}

func BenchmarkCountStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	r := randomRelation(rng, 20000, 4, 40)
	x := bitset.New(0, 1, 2)
	for _, s := range []Strategy{StrategyPLI, StrategyHash, StrategySort} {
		b.Run(string(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := NewCounter(r, s) // fresh counter: no cross-iteration memoisation
				_ = c.Count(x)
			}
		})
	}
}

func TestPLICacheEvictionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r := randomRelation(rng, 50, 8, 3)
	c := NewPLICounterSize(r, 16)
	// Touch many distinct multi-column sets; the cache must stay bounded.
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			for d := b + 1; d < 8; d++ {
				c.Count(bitset.New(a, b, d))
			}
		}
	}
	// Pinned singletons (8) + empty + at most 16 multi-column entries.
	if got := c.CacheSize(); got > 16+9 {
		t.Fatalf("cache grew past bound: %d", got)
	}
	// Counts remain correct after eviction.
	x := bitset.New(0, 1, 2)
	if got, want := c.Count(x), r.DistinctCountSet(x); got != want {
		t.Fatalf("post-eviction count = %d, want %d", got, want)
	}
}
