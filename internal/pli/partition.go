// Package pli implements position list indices (stripped partitions) and the
// distinct-counting strategies used to evaluate functional-dependency
// measures.
//
// Every measure in the paper — confidence |π_X|/|π_XY|, goodness
// |π_X|−|π_Y|, and the entropy quantities of the EB baseline — reduces to
// counting the classes of the partition of tuples induced by an attribute
// set (Definition 5 of the paper). Partitions compose: the partition of XA
// is the product of the partitions of X and A, computable in O(n). This is
// the classic PLI representation of the FD-discovery literature (TANE,
// Metanome); the paper computes the same cardinalities with SQL
// COUNT(DISTINCT …) queries, which this package also offers (hash and sort
// strategies; the SQL text route lives in internal/query).
package pli

import (
	"sort"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// Partition is the X-clustering of a relation instance in stripped form:
// only classes with at least two rows are stored explicitly; singleton
// classes are implied. The number of classes |π_X| is recovered as
// numRows − Σ(|c|−1) over stored classes.
//
// On a relation with tombstones a partition covers the live rows only:
// numRows is the live tuple count, while extent is the physical row-id range
// (member row ids may reach up to extent−1, which is what probe tables must
// be sized by).
type Partition struct {
	classes [][]int32
	numRows int
	extent  int
}

// FromColumn builds the partition induced by a single column over the live
// rows. NULL cells (code −1) form their own class, consistent with
// COUNT(DISTINCT) treating NULL as one group in GROUP BY semantics.
func FromColumn(r *relation.Relation, col int) *Partition {
	codes := r.ColumnCodes(col)
	// groups indexed by code+1 so NULL (−1) lands at 0.
	groups := make([][]int32, r.DictLen(col)+1)
	live := len(codes)
	if !r.HasTombstones() {
		for row, code := range codes {
			groups[code+1] = append(groups[code+1], int32(row))
		}
	} else {
		live = 0
		for row, code := range codes {
			if r.IsDeleted(row) {
				continue
			}
			live++
			groups[code+1] = append(groups[code+1], int32(row))
		}
	}
	p := &Partition{numRows: live, extent: len(codes)}
	for _, g := range groups {
		if len(g) >= 2 {
			p.classes = append(p.classes, g)
		}
	}
	return p
}

// FromSet builds the partition induced by an attribute set by multiplying
// single-column partitions left to right. An empty set yields the single
// all-live-rows class.
func FromSet(r *relation.Relation, x bitset.Set) *Partition {
	cols := x.Members()
	if len(cols) == 0 {
		return universalOf(r)
	}
	p := FromColumn(r, cols[0])
	for _, c := range cols[1:] {
		p = p.Product(FromColumn(r, c), nil)
	}
	return p
}

// universal is the partition with one class holding rows 0..n−1 — the
// empty-set partition of a tombstone-free instance.
func universal(n int) *Partition {
	p := &Partition{numRows: n, extent: n}
	if n >= 2 {
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		p.classes = [][]int32{all}
	}
	return p
}

// universalOf is the empty-set partition of r: one class holding every live
// row.
func universalOf(r *relation.Relation) *Partition {
	if !r.HasTombstones() {
		return universal(r.NumRows())
	}
	p := &Partition{numRows: r.LiveRows(), extent: r.NumRows()}
	if p.numRows >= 2 {
		all := make([]int32, 0, p.numRows)
		for row := 0; row < r.NumRows(); row++ {
			if !r.IsDeleted(row) {
				all = append(all, int32(row))
			}
		}
		p.classes = [][]int32{all}
	}
	return p
}

// NumRows returns the number of (live) tuples the partition covers.
func (p *Partition) NumRows() int { return p.numRows }

// probeExtent returns the size a row-indexed probe table needs: the physical
// row-id range, which exceeds numRows when the source relation carries
// tombstones.
func (p *Partition) probeExtent() int {
	if p.extent > p.numRows {
		return p.extent
	}
	return p.numRows
}

// NumClasses returns |π_X|: the number of equivalence classes, counting the
// implied singletons.
func (p *Partition) NumClasses() int {
	merged := 0
	for _, c := range p.classes {
		merged += len(c) - 1
	}
	return p.numRows - merged
}

// NumStrippedClasses returns the number of explicitly stored (size ≥ 2)
// classes.
func (p *Partition) NumStrippedClasses() int { return len(p.classes) }

// Classes returns the stored (size ≥ 2) classes. The returned slices are
// owned by the partition and must not be modified.
func (p *Partition) Classes() [][]int32 { return p.classes }

// Error returns the g3-style error Σ(|c|−1)/n, the fraction of rows that
// would need removing to make the partition all-singletons. It is 0 when X
// is a candidate key.
func (p *Partition) Error() float64 {
	if p.numRows == 0 {
		return 0
	}
	return float64(p.numRows-p.NumClasses()) / float64(p.numRows)
}

// productScratch holds reusable buffers for Product so repeated products
// (the hot loop of candidate evaluation) avoid reallocating O(n) tables.
type productScratch struct {
	probe []int32 // row → class index in lhs, −1 if singleton there
	accum [][]int32
}

// NewScratch allocates product scratch space for relations with n rows.
func NewScratch(n int) *productScratch {
	probe := make([]int32, n)
	for i := range probe {
		probe[i] = -1
	}
	return &productScratch{probe: probe}
}

// Product computes the partition of X∪Q from the partitions of X and Q using
// the stripped-product algorithm (TANE). scratch may be nil, in which case
// temporary tables are allocated; passing a scratch from NewScratch reuses
// them across calls.
func (p *Partition) Product(q *Partition, scratch *productScratch) *Partition {
	if scratch == nil || len(scratch.probe) < p.probeExtent() {
		scratch = NewScratch(p.probeExtent())
	}
	probe := scratch.probe
	// Mark rows belonging to lhs stripped classes.
	for ci, class := range p.classes {
		for _, row := range class {
			probe[row] = int32(ci)
		}
	}
	if cap(scratch.accum) < len(p.classes) {
		scratch.accum = make([][]int32, len(p.classes))
	}
	accum := scratch.accum[:len(p.classes)]
	for i := range accum {
		accum[i] = accum[i][:0]
	}

	out := &Partition{numRows: p.numRows, extent: p.extent}
	touched := make([]int32, 0, 16)
	for _, class := range q.classes {
		touched = touched[:0]
		for _, row := range class {
			if ci := probe[row]; ci >= 0 {
				if len(accum[ci]) == 0 {
					touched = append(touched, ci)
				}
				accum[ci] = append(accum[ci], row)
			}
		}
		for _, ci := range touched {
			if len(accum[ci]) >= 2 {
				cls := make([]int32, len(accum[ci]))
				copy(cls, accum[ci])
				out.classes = append(out.classes, cls)
			}
			accum[ci] = accum[ci][:0]
		}
	}
	// Restore probe for reuse.
	for _, class := range p.classes {
		for _, row := range class {
			probe[row] = -1
		}
	}
	return out
}

// RefinesOrEquals reports whether p refines q (every class of p is contained
// in one class of q); since both partition the same row set this is
// equivalent to NumClasses(p·q) == NumClasses(p).
func (p *Partition) RefinesOrEquals(q *Partition) bool {
	return p.Product(q, nil).NumClasses() == p.NumClasses()
}

// sortedClasses returns the stripped classes with rows ascending and classes
// ordered by first row, for deterministic comparison in tests.
func (p *Partition) sortedClasses() [][]int32 {
	out := make([][]int32, len(p.classes))
	for i, c := range p.classes {
		cc := make([]int32, len(c))
		copy(cc, c)
		sort.Slice(cc, func(a, b int) bool { return cc[a] < cc[b] })
		out[i] = cc
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// EqualPartition reports whether p and q induce exactly the same clustering.
func (p *Partition) EqualPartition(q *Partition) bool {
	if p.numRows != q.numRows || len(p.classes) != len(q.classes) {
		return false
	}
	a, b := p.sortedClasses(), q.sortedClasses()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
