// Package pli implements position list indices (stripped partitions) and the
// distinct-counting strategies used to evaluate functional-dependency
// measures.
//
// Every measure in the paper — confidence |π_X|/|π_XY|, goodness
// |π_X|−|π_Y|, and the entropy quantities of the EB baseline — reduces to
// counting the classes of the partition of tuples induced by an attribute
// set (Definition 5 of the paper). Partitions compose: the partition of XA
// is the product of the partitions of X and A, computable in O(n). This is
// the classic PLI representation of the FD-discovery literature (TANE,
// Metanome); the paper computes the same cardinalities with SQL
// COUNT(DISTINCT …) queries, which this package also offers (hash and sort
// strategies; the SQL text route lives in internal/query).
package pli

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// Partition is the X-clustering of a relation instance in stripped form:
// only classes with at least two rows are stored explicitly; singleton
// classes are implied. The number of classes |π_X| is recovered as
// numRows − Σ(|c|−1) over stored classes.
//
// Storage is columnar, not pointer-per-class: the members of every sparse
// class live back to back in one flat int32 arena indexed by a class-offset
// table, and classes dense enough that a row-id bitmap is smaller than their
// member list (≥ extent/32 rows, see denseCutFor) are stored as flat bitmaps
// instead. A low-cardinality column over 10M rows then costs a handful of
// 1.25MB bitmaps instead of multi-megabyte member slices, and a
// high-cardinality column costs one arena allocation instead of millions of
// slice headers.
//
// On a relation with tombstones a partition covers the live rows only:
// numRows is the live tuple count, while extent is the physical row-id range
// (member row ids may reach up to extent−1, which is what probe tables must
// be sized by).
type Partition struct {
	numRows int
	extent  int
	// Sparse classes: class i holds arena[offs[i]:offs[i+1]]. offs is nil
	// when there are no sparse classes, else offs[0] == 0.
	arena []int32
	offs  []int32
	// Dense classes: class d owns words bits[d*wpc:(d+1)*wpc], a bitmap over
	// row ids [0, extent); bitLens[d] is its member count.
	bits    []uint64
	bitLens []int32
	wpc     int
}

// denseMinClass is the smallest class ever stored as a bitmap; below it the
// flat member list is always at most a few cache lines and the bitmap's
// fixed extent/8 bytes cannot pay for themselves.
const denseMinClass = 256

// denseCutFor returns the class size at which a row-id bitmap (extent/8
// bytes) becomes no larger than the flat member list (4 bytes per member):
// extent/32, floored at denseMinClass.
func denseCutFor(extent int) int {
	cut := extent / 32
	if cut < denseMinClass {
		cut = denseMinClass
	}
	return cut
}

// numSparse returns the number of arena-backed classes.
func (p *Partition) numSparse() int {
	if len(p.offs) == 0 {
		return 0
	}
	return len(p.offs) - 1
}

// denseWords returns the bitmap words of dense class d.
func (p *Partition) denseWords(d int) []uint64 {
	return p.bits[d*p.wpc : (d+1)*p.wpc]
}

// addClass appends one stripped class (|members| ≥ 2), routing it to the
// arena or to a fresh bitmap by size.
func (p *Partition) addClass(members []int32) {
	if len(members) >= denseCutFor(p.extent) {
		p.addDense(members)
		return
	}
	if p.offs == nil {
		p.offs = append(p.offs, 0)
	}
	p.arena = append(p.arena, members...)
	p.offs = append(p.offs, int32(len(p.arena)))
}

// addDense appends one class as a bitmap regardless of size.
func (p *Partition) addDense(members []int32) {
	if p.wpc == 0 {
		p.wpc = (p.extent + 63) / 64
	}
	start := len(p.bits)
	p.bits = append(p.bits, make([]uint64, p.wpc)...)
	w := p.bits[start:]
	for _, row := range members {
		w[row>>6] |= 1 << (uint(row) & 63)
	}
	p.bitLens = append(p.bitLens, int32(len(members)))
}

// addDenseWords appends one class from an already-computed bitmap (the AND
// kernel's output), copying the words instead of re-scattering members.
func (p *Partition) addDenseWords(words []uint64, count int32) {
	if p.wpc == 0 {
		p.wpc = (p.extent + 63) / 64
	}
	p.bits = append(p.bits, words...)
	p.bitLens = append(p.bitLens, count)
}

// AllDense reports whether every stored class is bitmap-backed (no arena
// classes). Products of two all-dense partitions run entirely on the word
// kernels — no probe table, no member scatter.
func (p *Partition) AllDense() bool { return p.numSparse() == 0 }

// NumRows returns the number of (live) tuples the partition covers.
func (p *Partition) NumRows() int { return p.numRows }

// probeExtent returns the size a row-indexed probe table needs: the physical
// row-id range, which exceeds numRows when the source relation carries
// tombstones.
func (p *Partition) probeExtent() int {
	if p.extent > p.numRows {
		return p.extent
	}
	return p.numRows
}

// NumClasses returns |π_X|: the number of equivalence classes, counting the
// implied singletons.
func (p *Partition) NumClasses() int {
	merged := 0
	for i, ns := 0, p.numSparse(); i < ns; i++ {
		merged += int(p.offs[i+1]-p.offs[i]) - 1
	}
	for _, n := range p.bitLens {
		merged += int(n) - 1
	}
	return p.numRows - merged
}

// NumStrippedClasses returns the number of explicitly stored (size ≥ 2)
// classes.
func (p *Partition) NumStrippedClasses() int { return p.numSparse() + len(p.bitLens) }

// NumDenseClasses returns how many stored classes are bitmap-backed.
func (p *Partition) NumDenseClasses() int { return len(p.bitLens) }

// MemBytes returns the partition's retained storage in bytes: member arena,
// offset table, bitmap words and bitmap lengths. Slice headers are excluded —
// there is a constant number of them, which is the point of the layout.
func (p *Partition) MemBytes() int64 {
	return int64(len(p.arena))*4 + int64(len(p.offs))*4 +
		int64(len(p.bits))*8 + int64(len(p.bitLens))*4
}

// ForEachClass calls fn for every stored class until fn returns false.
// Sparse classes are passed as arena views; dense classes are materialised
// into a buffer reused across calls within this invocation. fn must not
// retain or modify the slice.
func (p *Partition) ForEachClass(fn func(members []int32) bool) {
	for i, ns := 0, p.numSparse(); i < ns; i++ {
		if !fn(p.arena[p.offs[i]:p.offs[i+1]]) {
			return
		}
	}
	if len(p.bitLens) == 0 {
		return
	}
	maxLen := int32(0)
	for _, n := range p.bitLens {
		if n > maxLen {
			maxLen = n
		}
	}
	buf := make([]int32, 0, maxLen)
	for d := range p.bitLens {
		buf = buf[:0]
		for wi, w := range p.denseWords(d) {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				buf = append(buf, int32(wi<<6+b))
				w &^= 1 << b
			}
		}
		if !fn(buf) {
			return
		}
	}
}

// Classes materialises the stored (size ≥ 2) classes as one slice per class,
// dense bitmaps decoded. Sparse classes are views into the arena and must
// not be modified. Intended for tests and cold paths; hot paths iterate with
// ForEachClass.
func (p *Partition) Classes() [][]int32 {
	out := make([][]int32, 0, p.NumStrippedClasses())
	p.ForEachClass(func(members []int32) bool {
		if p.numSparse() > len(out) {
			out = append(out, members) // arena view
		} else {
			out = append(out, append([]int32(nil), members...))
		}
		return true
	})
	return out
}

// Error returns the g3-style error Σ(|c|−1)/n, the fraction of rows that
// would need removing to make the partition all-singletons. It is 0 when X
// is a candidate key.
func (p *Partition) Error() float64 {
	if p.numRows == 0 {
		return 0
	}
	return float64(p.numRows-p.NumClasses()) / float64(p.numRows)
}

// ---------------------------------------------------------------------------
// Construction

// parallelBuildMinRows gates the sharded FromColumn path: below it a single
// sequential counting pass wins (worker startup would dominate).
const parallelBuildMinRows = 1 << 16

// FromColumn builds the partition induced by a single column over the live
// rows. NULL cells (code −1) form their own class, consistent with
// COUNT(DISTINCT) treating NULL as one group in GROUP BY semantics.
//
// The build is a two-pass counting sort into the flat layout: count class
// sizes, lay out the arena/bitmap routing, then scatter rows. At
// parallelBuildMinRows and above the passes shard across
// runtime.GOMAXPROCS(0) workers — over segment-aligned row ranges for small
// dictionaries, over code ranges for large ones — with a deterministic
// merge: every path yields classes in code order with members ascending,
// bit-identical to the sequential build.
func FromColumn(r *relation.Relation, col int) *Partition {
	codes := r.ColumnCodes(col)
	groups := r.DictLen(col) + 1 // code+1 so NULL (−1) lands at 0
	workers := runtime.GOMAXPROCS(0)
	if len(codes) < parallelBuildMinRows || workers < 2 {
		return fromColumnSeq(r, codes, groups)
	}
	if groups > len(codes)/4 {
		return fromColumnCodeSharded(r, codes, groups, workers)
	}
	return fromColumnRowSharded(r, codes, groups, workers)
}

// fromColumnSeq is the sequential two-pass counting build.
func fromColumnSeq(r *relation.Relation, codes []int32, groups int) *Partition {
	counts := make([]int32, groups)
	dead := r.Tombstones()
	if dead == nil {
		for _, code := range codes {
			counts[code+1]++
		}
	} else {
		for row, code := range codes {
			if !dead[row] {
				counts[code+1]++
			}
		}
	}
	p, route := layoutColumn(counts, r.LiveRows(), len(codes))
	fillRange(p, route, codes, dead, 0, len(codes))
	return p
}

// layoutColumn sizes the partition for the given per-group live counts and
// returns the routing table: route[g] ≥ 0 is group g's next arena write
// position, −1 strips the group (size < 2), and values ≤ −2 encode dense
// class −2−route[g]. Classes appear in group (code) order.
func layoutColumn(counts []int32, live, extent int) (*Partition, []int32) {
	p := &Partition{numRows: live, extent: extent}
	cut := int32(denseCutFor(extent))
	nSparse, nDense, arenaLen := 0, 0, 0
	for _, c := range counts {
		switch {
		case c < 2:
		case c >= cut:
			nDense++
		default:
			nSparse++
			arenaLen += int(c)
		}
	}
	route := make([]int32, len(counts))
	if nSparse > 0 {
		p.arena = make([]int32, arenaLen)
		p.offs = make([]int32, 1, nSparse+1)
	}
	if nDense > 0 {
		p.wpc = (extent + 63) / 64
		p.bits = make([]uint64, nDense*p.wpc)
		p.bitLens = make([]int32, 0, nDense)
	}
	cursor, dense := int32(0), int32(0)
	for g, c := range counts {
		switch {
		case c < 2:
			route[g] = -1
		case c >= cut:
			route[g] = -2 - dense
			p.bitLens = append(p.bitLens, c)
			dense++
		default:
			route[g] = cursor
			cursor += c
			p.offs = append(p.offs, cursor)
		}
	}
	return p, route
}

// fillRange scatters the live rows of [lo, hi) into the laid-out partition
// through the routing table, advancing sparse cursors in place.
func fillRange(p *Partition, route []int32, codes []int32, dead []bool, lo, hi int) {
	for row := lo; row < hi; row++ {
		if dead != nil && dead[row] {
			continue
		}
		g := int(codes[row]) + 1
		rt := route[g]
		if rt == -1 {
			continue
		}
		if rt >= 0 {
			p.arena[rt] = int32(row)
			route[g] = rt + 1
			continue
		}
		d := int(-2 - rt)
		p.bits[d*p.wpc+row>>6] |= 1 << (uint(row) & 63)
	}
}

// shardUnit returns the row-range granularity of the row-sharded build:
// whole segments (so clean-segment liveness skipping stays valid) rounded to
// whole bitmap words (so workers touch disjoint words of a shared dense
// bitmap).
func shardUnit(segRows int) int {
	unit := segRows
	for unit%64 != 0 {
		unit += segRows
	}
	return unit
}

// fromColumnRowSharded shards the two counting passes across workers over
// segment-aligned row ranges, with per-worker count arrays merged into the
// global layout and per-worker write cursors derived from the prefix sums —
// rows of one class are written by ascending worker, each in ascending row
// order, so the result is bit-identical to the sequential build.
func fromColumnRowSharded(r *relation.Relation, codes []int32, groups, workers int) *Partition {
	n := len(codes)
	unit := shardUnit(r.SegmentRows())
	nUnits := (n + unit - 1) / unit
	if workers > nUnits {
		workers = nUnits
	}
	if workers < 2 {
		return fromColumnSeq(r, codes, groups)
	}
	bounds := make([]int, workers+1)
	per, extra := nUnits/workers, nUnits%workers
	for w := 0; w < workers; w++ {
		u := per
		if w < extra {
			u++
		}
		bounds[w+1] = min(bounds[w]+u*unit, n)
	}
	bounds[workers] = n

	dead := r.Tombstones()
	countsW := make([][]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			counts := make([]int32, groups)
			forEachLiveSeg(r, dead, bounds[w], bounds[w+1], func(lo, hi int, segDead bool) {
				if !segDead {
					for _, code := range codes[lo:hi] {
						counts[code+1]++
					}
					return
				}
				for row := lo; row < hi; row++ {
					if !dead[row] {
						counts[codes[row]+1]++
					}
				}
			})
			countsW[w] = counts
		}(w)
	}
	wg.Wait()

	total := make([]int32, groups)
	for _, counts := range countsW {
		for g, c := range counts {
			total[g] += c
		}
	}
	p, route := layoutColumn(total, r.LiveRows(), n)
	// Per-worker routing: worker w's cursor for a sparse group starts after
	// the members earlier workers will write.
	routeW := make([][]int32, workers)
	for w := 0; w < workers; w++ {
		rw := make([]int32, groups)
		copy(rw, route)
		routeW[w] = rw
		for g := range route {
			if route[g] >= 0 {
				route[g] += countsW[w][g]
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fillRange(p, routeW[w], codes, dead, bounds[w], bounds[w+1])
		}(w)
	}
	wg.Wait()
	return p
}

// forEachLiveSeg walks [lo, hi) in segment-sized chunks, telling the
// callback whether the chunk contains tombstones so clean chunks can skip
// the per-row liveness probe.
func forEachLiveSeg(r *relation.Relation, dead []bool, lo, hi int, fn func(lo, hi int, segDead bool)) {
	if dead == nil {
		fn(lo, hi, false)
		return
	}
	segRows := r.SegmentRows()
	for start := lo; start < hi; {
		seg := start / segRows
		end := min((seg+1)*segRows, hi)
		fn(start, end, r.SegmentDead(seg) > 0)
		start = end
	}
}

// fromColumnCodeSharded shards the build across workers by code range: each
// worker scans the whole column but owns a disjoint group slice, so count
// cells, arena regions and dense bitmaps are all single-writer. Used for
// high-cardinality columns, where per-worker count arrays of the row-sharded
// path would dwarf the column itself.
func fromColumnCodeSharded(r *relation.Relation, codes []int32, groups, workers int) *Partition {
	if workers > groups {
		workers = groups
	}
	gBounds := make([]int, workers+1)
	per, extra := groups/workers, groups%workers
	for w := 0; w < workers; w++ {
		u := per
		if w < extra {
			u++
		}
		gBounds[w+1] = gBounds[w] + u
	}
	dead := r.Tombstones()
	counts := make([]int32, groups)
	var wg sync.WaitGroup
	pass := func(run func(w int)) {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				run(w)
			}(w)
		}
		wg.Wait()
	}
	pass(func(w int) {
		glo, ghi := int32(gBounds[w]), int32(gBounds[w+1])
		for row, code := range codes {
			if g := code + 1; g >= glo && g < ghi && (dead == nil || !dead[row]) {
				counts[g]++
			}
		}
	})
	p, route := layoutColumn(counts, r.LiveRows(), len(codes))
	pass(func(w int) {
		glo, ghi := int32(gBounds[w]), int32(gBounds[w+1])
		for row, code := range codes {
			g := code + 1
			if g < glo || g >= ghi || (dead != nil && dead[row]) {
				continue
			}
			rt := route[g]
			if rt == -1 {
				continue
			}
			if rt >= 0 {
				p.arena[rt] = int32(row)
				route[g] = rt + 1
				continue
			}
			d := int(-2 - rt)
			p.bits[d*p.wpc+row>>6] |= 1 << (uint(row) & 63)
		}
	})
	return p
}

// FromSet builds the partition induced by an attribute set by multiplying
// single-column partitions left to right, with pooled product scratch. An
// empty set yields the single all-live-rows class.
func FromSet(r *relation.Relation, x bitset.Set) *Partition {
	cols := x.Members()
	if len(cols) == 0 {
		return universalOf(r)
	}
	p := FromColumn(r, cols[0])
	if len(cols) == 1 {
		return p
	}
	workers := runtime.GOMAXPROCS(0)
	for _, c := range cols[1:] {
		p = p.ProductParallel(FromColumn(r, c), workers)
	}
	return p
}

// universalOf is the empty-set partition of r: one class holding every live
// row (dense when the class is large enough to warrant a bitmap).
func universalOf(r *relation.Relation) *Partition {
	live := r.LiveRows()
	extent := r.NumRows()
	p := &Partition{numRows: live, extent: extent}
	if live < 2 {
		return p
	}
	dead := r.Tombstones()
	if live >= denseCutFor(extent) {
		p.wpc = (extent + 63) / 64
		p.bits = make([]uint64, p.wpc)
		if dead == nil {
			for i := 0; i < extent>>6; i++ {
				p.bits[i] = ^uint64(0)
			}
			if rem := uint(extent) & 63; rem > 0 {
				p.bits[extent>>6] = 1<<rem - 1
			}
		} else {
			for row := 0; row < extent; row++ {
				if !dead[row] {
					p.bits[row>>6] |= 1 << (uint(row) & 63)
				}
			}
		}
		p.bitLens = []int32{int32(live)}
		return p
	}
	all := make([]int32, 0, live)
	for row := 0; row < extent; row++ {
		if dead == nil || !dead[row] {
			all = append(all, int32(row))
		}
	}
	p.arena = all
	p.offs = []int32{0, int32(live)}
	return p
}

// universal is the empty-set partition of a tombstone-free instance with n
// rows (kept for tests).
func universal(n int) *Partition {
	p := &Partition{numRows: n, extent: n}
	if n < 2 {
		return p
	}
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	p.addClass(all)
	return p
}

// ---------------------------------------------------------------------------
// Products

// productScratch holds reusable buffers for Product so repeated products
// (the hot loop of candidate evaluation) avoid reallocating O(n) tables.
// Outside a Product call every probe entry is −1 and every counts entry is 0
// (both invariants restored by the kernels before returning).
type productScratch struct {
	probe   []int32 // row → class index in lhs, −1 if singleton there
	accum   [][]int32
	touched []int32
	// counts accumulates per-p-class intersection sizes for the count-only
	// kernels; zero outside a call, reset through touched.
	counts []int32
	// words is the AND kernel's output buffer (one bitmap of p.wpc words).
	words []uint64
	// buf is the member collection / dense-decode buffer.
	buf []int32
}

// NewScratch allocates product scratch space for relations with n rows.
func NewScratch(n int) *productScratch {
	s := &productScratch{}
	s.ensure(n)
	return s
}

// ensure widens the probe table to cover n rows, initialising fresh entries
// to −1.
func (s *productScratch) ensure(n int) {
	old := len(s.probe)
	if old >= n {
		return
	}
	if cap(s.probe) >= n {
		s.probe = s.probe[:n]
	} else {
		probe := make([]int32, n)
		copy(probe, s.probe)
		s.probe = probe
	}
	for i := old; i < n; i++ {
		s.probe[i] = -1
	}
}

// ensureAccum widens the accumulator to nc classes, resizing with copy so the
// previously grown per-class member slices stay warm across differently-sized
// products instead of being discarded with the old backing array.
func (s *productScratch) ensureAccum(nc int) {
	if cap(s.accum) < nc {
		grown := make([][]int32, nc)
		copy(grown, s.accum[:cap(s.accum)])
		s.accum = grown
	}
	s.accum = s.accum[:nc]
}

// ensureCounts widens the per-class counters to nc zeroed entries. Growth
// copies nothing: entries are zero outside a call by invariant.
func (s *productScratch) ensureCounts(nc int) {
	if cap(s.counts) < nc {
		s.counts = make([]int32, nc)
	}
	s.counts = s.counts[:nc]
}

// ensureWords sizes the AND output buffer to wpc words.
func (s *productScratch) ensureWords(wpc int) {
	if cap(s.words) < wpc {
		s.words = make([]uint64, wpc)
	}
	s.words = s.words[:wpc]
}

// scratchPool shares product scratch across every caller that does not
// thread its own — FromSet folds, nil-scratch Products, and the parallel
// repair-search workers going through PLICounter — so the O(n) probe tables
// are recycled instead of reallocated per call.
var scratchPool = sync.Pool{New: func() any { return &productScratch{} }}

func getScratch(n int) *productScratch {
	s := scratchPool.Get().(*productScratch)
	s.ensure(n)
	return s
}

func putScratch(s *productScratch) { scratchPool.Put(s) }

// fillProbe marks every member row of p's stored classes with its class
// index; clearProbe resets exactly those rows to −1.
func (p *Partition) fillProbe(probe []int32) {
	ci := int32(0)
	for i, ns := 0, p.numSparse(); i < ns; i++ {
		for _, row := range p.arena[p.offs[i]:p.offs[i+1]] {
			probe[row] = ci
		}
		ci++
	}
	for d := range p.bitLens {
		for wi, w := range p.denseWords(d) {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				probe[wi<<6+b] = ci
				w &^= 1 << b
			}
		}
		ci++
	}
}

func (p *Partition) clearProbe(probe []int32) {
	for i, ns := 0, p.numSparse(); i < ns; i++ {
		for _, row := range p.arena[p.offs[i]:p.offs[i+1]] {
			probe[row] = -1
		}
	}
	for d := range p.bitLens {
		for wi, w := range p.denseWords(d) {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				probe[wi<<6+b] = -1
				w &^= 1 << b
			}
		}
	}
}

// RefinesOrEquals reports whether p refines q (every class of p is contained
// in one class of q). Rather than building the full product and comparing
// class counts, it probes q's clustering directly and returns false at the
// first split it finds: the first member of a p-class that is a q-singleton,
// or two members landing in different q-classes.
func (p *Partition) RefinesOrEquals(q *Partition) bool {
	n := p.probeExtent()
	if qn := q.probeExtent(); qn > n {
		n = qn
	}
	scratch := getScratch(n)
	probe := scratch.probe
	q.fillProbe(probe)
	ok := true
	p.ForEachClass(func(members []int32) bool {
		qc := probe[members[0]]
		if qc < 0 {
			// A stored p-class has ≥ 2 rows; its first member being a
			// q-singleton already splits it.
			ok = false
			return false
		}
		for _, row := range members[1:] {
			if probe[row] != qc {
				ok = false
				return false
			}
		}
		return true
	})
	q.clearProbe(probe)
	putScratch(scratch)
	return ok
}

// sortedClasses returns the stored classes fully materialised with rows
// ascending and classes ordered by first row, for deterministic comparison
// in tests.
func (p *Partition) sortedClasses() [][]int32 {
	out := make([][]int32, 0, p.NumStrippedClasses())
	p.ForEachClass(func(members []int32) bool {
		cc := append([]int32(nil), members...)
		sort.Slice(cc, func(a, b int) bool { return cc[a] < cc[b] })
		out = append(out, cc)
		return true
	})
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// EqualPartition reports whether p and q induce exactly the same clustering,
// regardless of class order or storage form (arena vs bitmap).
func (p *Partition) EqualPartition(q *Partition) bool {
	if p.numRows != q.numRows || p.NumStrippedClasses() != q.NumStrippedClasses() {
		return false
	}
	a, b := p.sortedClasses(), q.sortedClasses()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
