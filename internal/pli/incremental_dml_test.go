package pli

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// liveRowIDs returns the non-tombstoned row ids of r.
func liveRowIDs(r *relation.Relation) []int {
	out := make([]int, 0, r.LiveRows())
	for row := 0; row < r.NumRows(); row++ {
		if !r.IsDeleted(row) {
			out = append(out, row)
		}
	}
	return out
}

// TestIncrementalDMLDifferential is the full-DML analogue of
// TestIncrementalDifferential: after every randomized batch of mixed
// appends, deletes and in-place updates, every tracked and untracked count —
// and every tracked partition — must equal what from-scratch PLI and hash
// computations over the mutated relation produce.
func TestIncrementalDMLDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const ncols = 5
	r := randomRelation(rng, 40, ncols, 4)
	inc := NewIncrementalCounter(r)
	sets := randomSets(rng, ncols, 12)
	for i, s := range sets {
		if i%2 == 0 {
			inc.Track(s)
		}
	}
	tuple := make([]relation.Value, ncols)
	for batch := 0; batch < 10; batch++ {
		for op := 0; op < 15; op++ {
			live := liveRowIDs(r)
			switch roll := rng.Intn(3); {
			case roll == 0 || len(live) < 2:
				appendRandomRows(t, rng, r, 1)
			case roll == 1:
				if err := inc.Delete(live[rng.Intn(len(live))]); err != nil {
					t.Fatal(err)
				}
			default:
				for c := range tuple {
					tuple[c] = relation.String(string(rune('A' + rng.Intn(4))))
				}
				if err := inc.Update(live[rng.Intn(len(live))], tuple...); err != nil {
					t.Fatal(err)
				}
			}
		}
		fresh, hash := NewPLICounter(r), NewHashCounter(r)
		for _, s := range sets {
			want := fresh.Count(s)
			if alt := hash.Count(s); alt != want {
				t.Fatalf("batch %d: scratch counters disagree on %v: pli %d, hash %d", batch, s, want, alt)
			}
			if got := inc.Count(s); got != want {
				t.Fatalf("batch %d: Count(%v) = %d, want %d", batch, s, got, want)
			}
			got, _ := inc.CountWithGen(s)
			if got != want {
				t.Fatalf("batch %d: CountWithGen(%v) = %d, want %d", batch, s, got, want)
			}
			if s.IsEmpty() {
				continue
			}
			if p, q := inc.Partition(s), FromSet(r, s); !p.EqualPartition(q) {
				t.Fatalf("batch %d: Partition(%v) diverged from scratch", batch, s)
			}
		}
	}
	if !r.Mutated() || !r.HasTombstones() {
		t.Fatal("stream never deleted; test exercised nothing")
	}
}

// TestIncrementalDeleteGenerationStamps pins the shrink-aware stamp
// semantics: a delete that only shrinks a cluster (k ≥ 2 → k−1) leaves the
// set's count and stamp alone, while one that empties a cluster advances
// both — which is what invalidates the measure cache for exactly the FDs the
// delete disturbed.
func TestIncrementalDeleteGenerationStamps(t *testing.T) {
	r := buildRelation(t, []string{"a", "b"}, [][]string{
		{"x", "1"}, {"x", "2"}, {"y", "1"},
	})
	inc := NewIncrementalCounter(r)
	a := bitset.New(0)
	n0, g0 := inc.CountWithGen(a)
	if n0 != 2 {
		t.Fatalf("count(a) = %d, want 2", n0)
	}
	// Rows 0 and 1 share a's cluster "x": deleting row 1 shrinks it to one
	// member but empties nothing.
	if err := inc.Delete(1); err != nil {
		t.Fatal(err)
	}
	n1, g1 := inc.CountWithGen(a)
	if n1 != 2 || g1 != g0 {
		t.Fatalf("after shrinking delete: count %d gen %d, want count 2 gen %d", n1, g1, g0)
	}
	// Deleting row 0 empties "x": the count drops and the stamp advances.
	if err := inc.Delete(0); err != nil {
		t.Fatal(err)
	}
	n2, g2 := inc.CountWithGen(a)
	if n2 != 1 || g2 <= g1 {
		t.Fatalf("after emptying delete: count %d gen %d, want count 1 and gen > %d", n2, g2, g1)
	}
	if inc.Generation() < g2 {
		t.Fatal("counter generation must dominate index stamps")
	}
}

// TestIncrementalUpdateGenerationStamps pins the update analogue: a row
// moving between two surviving clusters — or from a dying cluster straight
// into a fresh one — leaves |π_X| and the stamp alone, while a move that
// only empties or only opens a cluster changes both.
func TestIncrementalUpdateGenerationStamps(t *testing.T) {
	r := buildRelation(t, []string{"a", "b"}, [][]string{
		{"x", "1"}, {"x", "2"}, {"y", "1"}, {"y", "2"},
	})
	inc := NewIncrementalCounter(r)
	a := bitset.New(0)
	if n, _ := inc.CountWithGen(a); n != 2 {
		t.Fatalf("count(a) = %d, want 2", n)
	}
	// Row 0 moves from cluster "x" (which survives via row 1) to cluster "y":
	// both clusters live on, count unchanged, stamp unchanged.
	_, g0 := inc.CountWithGen(a)
	if err := inc.Update(0, relation.String("y"), relation.String("1")); err != nil {
		t.Fatal(err)
	}
	if n, g := inc.CountWithGen(a); n != 2 || g != g0 {
		t.Fatalf("after re-route between survivors: count %d gen %d, want 2/%d", n, g, g0)
	}
	// Row 1 moves from "x" (emptying it) to the fresh cluster "z": −1 and +1
	// cancel, so the count — and the stamp — still must not move.
	if err := inc.Update(1, relation.String("z"), relation.String("2")); err != nil {
		t.Fatal(err)
	}
	if n, g := inc.CountWithGen(a); n != 2 || g != g0 {
		t.Fatalf("after emptying+opening move: count %d gen %d, want 2/%d", n, g, g0)
	}
	// Row 0 moves from "y" (still backed by rows 2 and 3) to fresh "w": the
	// count grows to 3 and the stamp advances.
	if err := inc.Update(0, relation.String("w"), relation.String("1")); err != nil {
		t.Fatal(err)
	}
	if n, g := inc.CountWithGen(a); n != 3 || g <= g0 {
		t.Fatalf("after opening move: count %d gen %d, want 3 and gen > %d", n, g, g0)
	}
}

// TestEmptySetGenerationFlips is the regression test for the empty-set
// stamping bug: the 0↔1 flips of |π_∅| across an empty → populated → empty
// lifecycle must each carry a fresh generation, so "same generation ⇒ same
// count" holds for the empty set too.
func TestEmptySetGenerationFlips(t *testing.T) {
	schema, err := relation.SchemaOf("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New("t", schema)
	inc := NewIncrementalCounter(r)
	empty := bitset.Set{}
	n0, g0 := inc.CountWithGen(empty)
	if n0 != 0 {
		t.Fatalf("empty instance: count %d, want 0", n0)
	}
	// The first row flips the count to 1; the stamp must move with it.
	if err := r.AppendStrings("x", "1"); err != nil {
		t.Fatal(err)
	}
	n1, g1 := inc.CountWithGen(empty)
	if n1 != 1 {
		t.Fatalf("after first row: count %d, want 1", n1)
	}
	if g1 == g0 {
		t.Fatalf("0→1 flip kept generation %d: same generation would imply same count", g1)
	}
	// Further growth leaves the empty set's count — and stamp — alone.
	if err := r.AppendStrings("y", "2"); err != nil {
		t.Fatal(err)
	}
	if n, g := inc.CountWithGen(empty); n != 1 || g != g1 {
		t.Fatalf("after second row: count %d gen %d, want 1/%d", n, g, g1)
	}
	// Deleting everything flips back to 0 under a third, distinct stamp.
	if err := inc.Delete(0, 1); err != nil {
		t.Fatal(err)
	}
	n2, g2 := inc.CountWithGen(empty)
	if n2 != 0 || g2 == g1 || g2 == g0 {
		t.Fatalf("after emptying deletes: count %d gen %d, want 0 under a fresh generation (had %d, %d)",
			n2, g2, g0, g1)
	}
}

// TestTrackedLRUEviction is the regression test for FIFO eviction: a session
// whose live FDs keep touching their X/XY/Y indices must keep those indices
// resident while cold one-shot sets are evicted, even after maxTracked+1
// distinct sets have been seen.
func TestTrackedLRUEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := randomRelation(rng, 30, 6, 3)
	inc := NewIncrementalCounterSize(r, 4)
	hot := bitset.New(0, 1)
	cold := []bitset.Set{bitset.New(1, 2), bitset.New(2, 3), bitset.New(3, 4)}
	inc.Track(hot)
	for _, s := range cold {
		inc.Track(s)
	}
	// Four sets tracked, hot is the oldest by insertion. Touch it through the
	// read paths, then overflow the bound with a fifth set.
	inc.Count(hot)
	inc.CountWithGen(hot)
	inc.Track(bitset.New(4, 5))
	if got := inc.TrackedSets(); got != 4 {
		t.Fatalf("tracked sets = %d, want 4", got)
	}
	if !inc.isTracked(hot) {
		t.Fatal("most-recently-used set was evicted; eviction is FIFO, not LRU")
	}
	if inc.isTracked(cold[0]) {
		t.Fatal("least-recently-used set survived eviction")
	}
	// Correctness is unaffected either way.
	fresh := NewPLICounter(r)
	for _, s := range append(cold, hot) {
		if got, want := inc.Count(s), fresh.Count(s); got != want {
			t.Fatalf("Count(%v) = %d, want %d", s, got, want)
		}
	}
}

// TestTrackedIndexCompaction proves tracked-index memory is bounded under
// sustained churn: updating one row through a stream of thousands of
// distinct values must not accumulate an ids/rows slot per value ever seen,
// and compaction must not disturb counts or partitions.
func TestTrackedIndexCompaction(t *testing.T) {
	r := buildRelation(t, []string{"a"}, [][]string{{"v0"}, {"v0"}, {"w"}})
	inc := NewIncrementalCounter(r)
	a := bitset.New(0)
	inc.Track(a)
	for i := 1; i <= 2000; i++ {
		if err := inc.Update(0, relation.String(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	idx := inc.tracked[a.Key()]
	if idx == nil {
		t.Fatal("tracked index evicted")
	}
	if len(idx.ids) > 256 || len(idx.head) > 256 {
		t.Fatalf("index grew to %d ids / %d cluster slots after 2000 distinct updates; compaction not working",
			len(idx.ids), len(idx.head))
	}
	if got, want := inc.Count(a), NewHashCounter(r).Count(a); got != want {
		t.Fatalf("Count after churn = %d, want %d", got, want)
	}
	if p, q := inc.Partition(a), FromSet(r, a); !p.EqualPartition(q) {
		t.Fatal("Partition diverged after compaction")
	}
}

// TestIncrementalOutOfBandMutation proves the safety net: deleting or
// updating the relation directly (not through the counter) must be detected
// and answered with correct counts, at the cost of a rebuild.
func TestIncrementalOutOfBandMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	r := randomRelation(rng, 30, 4, 3)
	inc := NewIncrementalCounter(r)
	sets := randomSets(rng, 4, 8)
	for _, s := range sets {
		inc.Track(s)
	}
	gen := inc.Generation()
	if err := r.Delete(3, 7, 11); err != nil {
		t.Fatal(err)
	}
	if err := r.Update(0, relation.String("Z"), relation.String("Z"), relation.String("Z"), relation.String("Z")); err != nil {
		t.Fatal(err)
	}
	if g := inc.Generation(); g <= gen {
		t.Fatalf("generation %d did not advance past %d on out-of-band mutation", g, gen)
	}
	fresh := NewPLICounter(r)
	for _, s := range sets {
		if got, want := inc.Count(s), fresh.Count(s); got != want {
			t.Fatalf("Count(%v) after out-of-band mutation = %d, want %d", s, got, want)
		}
	}
}

// TestIncrementalDeleteErrors pins the atomic failure contract.
func TestIncrementalDeleteErrors(t *testing.T) {
	r := buildRelation(t, []string{"a"}, [][]string{{"x"}, {"y"}, {"z"}})
	inc := NewIncrementalCounter(r)
	if n := inc.Count(bitset.New(0)); n != 3 {
		t.Fatalf("count = %d, want 3", n)
	}
	// An empty batch is a no-op: it must not advance the generation (which
	// would needlessly invalidate the delegate and its partition cache).
	gen := inc.Generation()
	if err := inc.Delete(); err != nil {
		t.Fatal(err)
	}
	if g := inc.Generation(); g != gen {
		t.Fatalf("empty delete advanced generation %d → %d", gen, g)
	}
	if err := inc.Delete(1, 99); err == nil {
		t.Fatal("out-of-range delete must fail")
	}
	if r.IsDeleted(1) {
		t.Fatal("failed batch must not leave partial tombstones")
	}
	if err := inc.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := inc.Delete(1); err == nil {
		t.Fatal("double delete must fail")
	}
	if err := inc.Update(1, relation.String("q")); err == nil {
		t.Fatal("update of deleted row must fail")
	}
	if n := inc.Count(bitset.New(0)); n != 2 {
		t.Fatalf("count after delete = %d, want 2", n)
	}
}

// TestEnsureTrackedCapacity checks the capacity knob the incremental
// discoverer relies on: raising the bound keeps a working set larger than
// the construction-time maximum fully resident, and the bound never shrinks.
func TestEnsureTrackedCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := randomRelation(rng, 30, 8, 3)
	inc := NewIncrementalCounterSize(r, 4)
	inc.EnsureTrackedCapacity(8)
	var sets []bitset.Set
	for i := 0; i < 7; i++ {
		sets = append(sets, bitset.New(i, i+1))
	}
	for _, s := range sets {
		inc.Track(s)
	}
	if got := inc.TrackedSets(); got != 7 {
		t.Fatalf("tracked sets = %d, want all 7 under a capacity of 8", got)
	}
	for _, s := range sets {
		if !inc.isTracked(s) {
			t.Fatalf("set %v evicted despite raised capacity", s)
		}
	}
	// Lowering is a no-op: nothing gets evicted by the weaker request.
	inc.EnsureTrackedCapacity(2)
	inc.Track(bitset.New(0, 2))
	if got := inc.TrackedSets(); got != 8 {
		t.Fatalf("tracked sets = %d, want 8 (capacity must not shrink)", got)
	}
}
