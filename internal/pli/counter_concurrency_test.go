package pli

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
)

// TestPartitionSingleflightBuildsOnce is the regression test for the
// fromBestPrefix concurrency hole: before the sharded singleflight cache,
// two goroutines requesting the same uncached multi-column partition both
// paid the O(n) build. Now the first requester builds and everyone else
// waits on the published entry, so the build counter must read exactly 1.
func TestPartitionSingleflightBuildsOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := randomRelation(rng, 2000, 4, 6)
	c := NewPLICounter(r)
	x := bitset.New(0, 1, 2)
	want := r.DistinctCountSet(x)

	const goroutines = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	counts := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			counts[g] = c.Count(x)
		}(g)
	}
	close(start)
	wg.Wait()

	for g, got := range counts {
		if got != want {
			t.Fatalf("goroutine %d: count = %d, want %d", g, got, want)
		}
	}
	if builds := c.MultiColumnBuilds(); builds != 1 {
		t.Fatalf("%d goroutines triggered %d builds of the same partition, want 1", goroutines, builds)
	}
	// A later request must hit the cache, not rebuild.
	if c.Count(x) != want || c.MultiColumnBuilds() != 1 {
		t.Fatal("cached partition was rebuilt")
	}
}

// TestPartitionShardedConcurrentDistinctKeys hammers the cache with many
// goroutines across disjoint and overlapping attribute sets; every count
// must agree with the sequential oracle (run with -race in CI).
func TestPartitionShardedConcurrentDistinctKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := randomRelation(rng, 500, 8, 4)
	sets := make([]bitset.Set, 0, 40)
	want := make([]int, 0, 40)
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			x := bitset.New(a, b, (b+3)%8)
			sets = append(sets, x)
			want = append(want, r.DistinctCountSet(x))
		}
	}
	c := NewPLICounter(r)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range sets {
				j := (i + g) % len(sets)
				if got := c.Count(sets[j]); got != want[j] {
					select {
					case errs <- sets[j].String():
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if bad, ok := <-errs; ok {
		t.Fatalf("concurrent count wrong for %s", bad)
	}
}

// TestChildPartitionMatchesDirectBuild: the search-aware fast path (one
// product off the parent partition) must produce exactly the partition a
// from-scratch fold produces, and memoise it.
func TestChildPartitionMatchesDirectBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 40; iter++ {
		r := randomRelation(rng, 10+rng.Intn(200), 5, 2+rng.Intn(4))
		c := NewPLICounter(r)
		parentSet := bitset.New(0, 1)
		parent := c.Partition(parentSet)
		for attr := 2; attr < 5; attr++ {
			got := c.ChildPartition(parentSet, parent, attr)
			direct := FromSet(r, parentSet.With(attr))
			if !got.EqualPartition(direct) {
				t.Fatalf("iter %d: child partition for +%d differs from direct build", iter, attr)
			}
		}
		builds := c.MultiColumnBuilds()
		// Re-requesting through the generic path must hit the memoised
		// entries (no further builds).
		for attr := 2; attr < 5; attr++ {
			c.Count(parentSet.With(attr))
		}
		if c.MultiColumnBuilds() != builds {
			t.Fatalf("iter %d: ChildPartition results were not memoised", iter)
		}
	}
}

// TestChildPartitionOnIncrementalCounter: the session counter implements the
// same SearchCounter surface by delegating to its inner PLI cache, including
// after appends invalidate the previous generation.
func TestChildPartitionOnIncrementalCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := randomRelation(rng, 300, 4, 3)
	c := NewIncrementalCounter(r)
	var sc SearchCounter = c // compile-time interface check

	parentSet := bitset.New(0, 1)
	parent := sc.Partition(parentSet)
	child := sc.ChildPartition(parentSet, parent, 2)
	if !child.EqualPartition(FromSet(r, bitset.New(0, 1, 2))) {
		t.Fatal("incremental child partition wrong")
	}

	// Grow the relation; the next search must see the new rows.
	r.MustAppend(r.Row(0)...)
	r.MustAppend(r.Row(1)...)
	parent = sc.Partition(parentSet)
	child = sc.ChildPartition(parentSet, parent, 2)
	if !child.EqualPartition(FromSet(r, bitset.New(0, 1, 2))) {
		t.Fatal("incremental child partition stale after append")
	}
	if child.NumRows() != r.NumRows() {
		t.Fatalf("child rows = %d, want %d", child.NumRows(), r.NumRows())
	}
}

// TestPLICacheLRUKeepsHotEntries: a constantly re-touched entry must stay
// resident while a stream of cold entries overflows the bounded cache — the
// recency property FIFO eviction lacked (the hot key was inserted first, so
// FIFO would evict it at the first overflow of its shard).
func TestPLICacheLRUKeepsHotEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	r := randomRelation(rng, 60, 10, 3)
	c := NewPLICounterSize(r, 32) // two entries per shard
	hot := bitset.New(0, 1)
	c.Count(hot)
	// 84 cold keys (all pairs and triples over the other 8 columns) flood
	// every shard well past its bound; hot is refreshed after each one.
	for a := 2; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			c.Count(bitset.New(a, b))
			c.Count(hot)
			for d := b + 1; d < 10; d++ {
				c.Count(bitset.New(a, b, d))
				c.Count(hot)
			}
		}
	}
	builds := c.MultiColumnBuilds()
	c.Count(hot)
	if c.MultiColumnBuilds() != builds {
		t.Fatal("hot entry was evicted despite constant reuse")
	}
}
