package pli

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/evolvefd/evolvefd/internal/relation"
)

// storedSizes returns the sizes of the stored (≥ 2 row) classes, sorted, so
// size distributions compare as multisets.
func storedSizes(p *Partition) []int32 {
	var sizes []int32
	p.ForEachClass(func(members []int32) bool {
		sizes = append(sizes, int32(len(members)))
		return true
	})
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	return sizes
}

func sizesEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameStorage compares two partitions field by field — arena, offset table,
// bitmap words, bitmap lengths — the "bit-identical" contract ProductParallel
// makes against the serial product (EqualPartition would accept reordered or
// re-encoded classes; this does not).
func sameStorage(t *testing.T, label string, want, got *Partition) {
	t.Helper()
	if want.numRows != got.numRows || want.extent != got.extent {
		t.Fatalf("%s: shape (%d,%d) vs (%d,%d)", label, got.numRows, got.extent, want.numRows, want.extent)
	}
	if want.wpc != got.wpc {
		t.Fatalf("%s: wpc %d vs %d", label, got.wpc, want.wpc)
	}
	eq32 := func(a, b []int32) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !eq32(want.arena, got.arena) {
		t.Fatalf("%s: arena diverged (%d vs %d entries)", label, len(got.arena), len(want.arena))
	}
	if !eq32(want.offs, got.offs) {
		t.Fatalf("%s: offset table diverged", label)
	}
	if !eq32(want.bitLens, got.bitLens) {
		t.Fatalf("%s: bitmap lengths diverged", label)
	}
	if len(want.bits) != len(got.bits) {
		t.Fatalf("%s: bitmap words %d vs %d", label, len(got.bits), len(want.bits))
	}
	for i := range want.bits {
		if want.bits[i] != got.bits[i] {
			t.Fatalf("%s: bitmap word %d diverged", label, i)
		}
	}
}

// mutate applies one random DML step (append / delete / update / compact) so
// the differential runs over tombstoned and re-compacted instances, not just
// pristine appends.
func mutate(t *testing.T, rng *rand.Rand, r *relation.Relation, domain int) {
	t.Helper()
	cols := r.NumCols()
	row := make([]relation.Value, cols)
	var live []int
	for id := 0; id < r.NumRows(); id++ {
		if !r.IsDeleted(id) {
			live = append(live, id)
		}
	}
	switch op := rng.Intn(10); {
	case op < 4:
		for c := range row {
			row[c] = relation.String(string(rune('A' + rng.Intn(domain))))
		}
		r.MustAppend(row...)
	case op < 6 && len(live) > 0:
		if err := r.Delete(live[rng.Intn(len(live))]); err != nil {
			t.Fatalf("delete: %v", err)
		}
	case op < 8 && len(live) > 0:
		for c := range row {
			row[c] = relation.String(string(rune('A' + rng.Intn(domain))))
		}
		if err := r.Update(live[rng.Intn(len(live))], row...); err != nil {
			t.Fatalf("update: %v", err)
		}
	default:
		r.Compact()
	}
}

// TestQuickProductCountDifferential drives random DML + Compact interleavings
// and checks, at every step boundary, that the count-only kernels agree with
// the materialised product: ProductCount equals NumClasses of the built
// partition, ProductStrippedSizes matches its class-size multiset, and the
// probe-scatter fallback (word kernels ablated) builds the identical
// clustering and counts.
func TestQuickProductCountDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for iter := 0; iter < 30; iter++ {
		cols := 2 + rng.Intn(3)
		domain := 2 + rng.Intn(4)
		r := randomRelation(rng, 10+rng.Intn(60), cols, domain)
		for step := 0; step < 10; step++ {
			mutate(t, rng, r, domain)
			x, y := randomSet(rng, cols), randomSet(rng, cols)
			px, py := FromSet(r, x), FromSet(r, y)
			built := px.Product(py, nil)
			if got, want := px.ProductCount(py, nil), built.NumClasses(); got != want {
				t.Fatalf("iter %d step %d: ProductCount(%v·%v) = %d, product has %d classes",
					iter, step, x, y, got, want)
			}
			if got, want := px.ProductStrippedSizes(py, nil), storedSizes(built); !sizesEqual(sortedSizes(got), want) {
				t.Fatalf("iter %d step %d: stripped sizes %v, product has %v", iter, step, got, want)
			}
			// Ablated kernels must yield the same clustering and count.
			prev := SetWordKernels(false)
			probed := px.Product(py, nil)
			count := px.ProductCount(py, nil)
			SetWordKernels(prev)
			if !built.EqualPartition(probed) {
				t.Fatalf("iter %d step %d: probe-fallback product diverged from word-kernel product", iter, step)
			}
			if count != built.NumClasses() {
				t.Fatalf("iter %d step %d: probe-fallback count %d vs %d", iter, step, count, built.NumClasses())
			}
		}
	}
}

func sortedSizes(sizes []int32) []int32 {
	out := append([]int32(nil), sizes...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mixedRelation builds a relation whose columns induce dense bitmaps (tiny
// domains), pure arena classes (large domains), and a mix, over enough rows to
// clear the parallel-product gate.
func mixedRelation(t *testing.T, rng *rand.Rand, rows int, withTombstones bool) *relation.Relation {
	t.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "dense1", Kind: relation.KindInt},
		relation.Column{Name: "dense2", Kind: relation.KindInt},
		relation.Column{Name: "sparse1", Kind: relation.KindInt},
		relation.Column{Name: "sparse2", Kind: relation.KindInt},
		relation.Column{Name: "mixed", Kind: relation.KindInt},
	)
	r := relation.New("mixed", schema)
	val := func(domain int) relation.Value {
		return relation.Int(int64(rng.Intn(domain)))
	}
	for i := 0; i < rows; i++ {
		r.MustAppend(val(3), val(5), val(rows/3), val(rows/4), val(97))
	}
	if withTombstones {
		var dead []int
		for id := 0; id < r.NumRows(); id++ {
			if rng.Intn(10) == 0 {
				dead = append(dead, id)
			}
		}
		if err := r.Delete(dead...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// TestProductParallelBitIdentical pins ProductParallel's storage contract: at
// every worker count the arena, offset table, bitmap words and bitmap lengths
// are exactly the serial product's, across dense×dense, sparse×sparse and
// mixed operands, with and without tombstones.
func TestProductParallelBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("large-relation product matrix")
	}
	rng := rand.New(rand.NewSource(45))
	rows := parallelProductMinRows + 5000
	for _, tombstones := range []bool{false, true} {
		r := mixedRelation(t, rng, rows, tombstones)
		parts := make([]*Partition, r.NumCols())
		for c := range parts {
			parts[c] = FromColumn(r, c)
		}
		if !parts[0].AllDense() || parts[0].NumDenseClasses() == 0 {
			t.Fatalf("dense1 not bitmap-backed; cut tuning changed")
		}
		if parts[2].NumDenseClasses() != 0 {
			t.Fatalf("sparse1 produced dense classes; cut tuning changed")
		}
		cases := [][2]int{{0, 1}, {2, 3}, {0, 2}, {2, 0}, {4, 0}, {4, 2}}
		for _, pq := range cases {
			p, q := parts[pq[0]], parts[pq[1]]
			want := p.Product(q, nil)
			for _, workers := range []int{1, 2, 3, 5, 8} {
				got := p.ProductParallel(q, workers)
				sameStorage(t, r.Name()+" "+caseName(pq, workers, tombstones), want, got)
			}
			if got, wantN := p.ProductCount(q, nil), want.NumClasses(); got != wantN {
				t.Fatalf("%v: ProductCount %d vs %d", pq, got, wantN)
			}
		}
	}
}

func caseName(pq [2]int, workers int, tombstones bool) string {
	names := []string{"dense1", "dense2", "sparse1", "sparse2", "mixed"}
	s := names[pq[0]] + "×" + names[pq[1]]
	if tombstones {
		s += "+tombstones"
	}
	return s + " w=" + string(rune('0'+workers))
}

// TestProductCountDenseZeroAllocs pins the all-dense count path: AND +
// popcount over shared bitmaps, no probe table, no scratch, no output — zero
// allocations.
func TestProductCountDenseZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	r := randomRelation(rng, 100_000, 2, 3)
	p, q := FromColumn(r, 0), FromColumn(r, 1)
	if !p.AllDense() || !q.AllDense() || p.NumDenseClasses() == 0 {
		t.Fatalf("operands not all-dense (p: %d dense / %d stored)", p.NumDenseClasses(), p.NumStrippedClasses())
	}
	want := p.Product(q, nil).NumClasses()
	allocs := testing.AllocsPerRun(100, func() {
		if got := p.ProductCount(q, nil); got != want {
			t.Fatalf("count %d, want %d", got, want)
		}
	})
	if allocs != 0 {
		t.Fatalf("dense×dense ProductCount allocates %.0f objects/run, want 0", allocs)
	}
}
