package pli

import (
	"container/list"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// defaultMaxTracked bounds the number of attribute sets an IncrementalCounter
// maintains incrementally. Each tracked set costs O(numRows) memory (its
// hash-to-cluster map), so the bound keeps memory proportional to the FDs a
// session actually monitors, not to the sets a repair search sweeps through.
const defaultMaxTracked = 256

// trackedIndex is the live clustering of one attribute set: a map from the
// encoded code-tuple of the set's columns to a cluster id, plus the member
// rows of each cluster (singleton clusters included, unlike the stripped
// Partition). Keeping the map alive between mutations is what makes folding
// a batch O(batch) instead of O(numRows): each appended row hashes straight
// to its cluster, each deleted row is unlinked from the cluster its codes
// name, and an updated row moves between the two clusters its old and new
// codes name.
//
// Cluster membership is stored as intrusive doubly-linked lists over four
// flat arrays instead of one Go slice per cluster: head/size are indexed by
// cluster id, next/prev by row id. The layout is the arena counterpart of
// the columnar Partition — a tracked set costs exactly two int32 arrays over
// the extent plus two over the cluster ids, with zero per-cluster
// allocations, and every DML operation is O(1) pointer surgery:
//
//   - link     = push-front: next[row] = head[id], head[id] = row
//   - unlink   = splice: next[prev[row]] = next[row] (head[id] when first)
//
// Slots of dead rows are stale and never read (tombstoned rows are unlinked
// when they die and row ids are never reused within an epoch), and a storage
// compaction remaps all four arrays with pure array writes.
type trackedIndex struct {
	attrs bitset.Set
	cols  []int
	ids   map[string]int32 // encoded code tuple → cluster id
	// head is the first member row of each cluster (−1 when emptied); size is
	// its member count.
	head []int32
	size []int32
	// next and prev are the row-indexed chain links (−1 terminates; prev of
	// the head row is −1).
	next []int32
	prev []int32
	// live is the number of non-empty clusters, i.e. |π_X| over live rows.
	// It can shrink: deletes empty clusters, updates move rows between them.
	live int
	// dead counts the emptied clusters still occupying ids/rows slots (kept
	// for in-place revival); past a threshold the index is compacted so
	// sustained churn through high-cardinality values cannot grow it without
	// bound.
	dead int
	// lastChanged is the counter generation at which live last changed — in
	// either direction. Appends that only enlarge clusters, deletes that only
	// shrink them without emptying any, and updates that re-route rows
	// between surviving clusters all leave every distinct-projection count —
	// and therefore every FD measure built from this set — untouched, and the
	// stamp lets callers prove it.
	lastChanged uint64
	// elem is the index's position in the counter's LRU list of tracked sets.
	elem *list.Element
}

// IncrementalCounter is a Counter for an evolving relation: it answers
// |π_X(r)| like PLICounter but folds appended, deleted and updated tuples
// into kept-alive cluster maps instead of recomputing partitions from
// scratch. It is the engine behind Session.Append/Delete/Update — the
// paper's periodic-validation loop re-checks its FDs every time the data
// changes, and with this counter the re-check costs O(batch × tracked sets),
// not O(|r|).
//
// Two tiers of attribute sets exist:
//
//   - Tracked sets (registered via Track or CountWithGen — the facade tracks
//     the X, XY and Y of every defined FD) are maintained incrementally and
//     answer Count in O(1), with a generation stamp that only advances when
//     the count actually changed (growth or shrink). Beyond maxTracked sets
//     the least-recently-used index is evicted.
//   - Untracked sets (the thousands of candidate antecedents a repair search
//     probes once each) delegate to an internal PLICounter that is rebuilt
//     lazily whenever the relation has mutated — generation-stamped
//     invalidation of the cached composite partitions, tombstone shrinks
//     included.
//
// Appends may go straight to the relation (they are folded in on the next
// query); deletes and updates must go through Delete/Update/UpdateStrings so
// the tracked clusters shrink in O(ops), and compaction through Compact so
// the tracked row ids are remapped rather than rebuilt. A mutation or
// compaction applied to the relation behind the counter's back is detected
// via relation.Mutations / relation.Epoch and answered by rebuilding every
// tracked index — correct, just no longer incremental.
//
// Like every Counter, an IncrementalCounter is safe for concurrent use; the
// relation must not be mutated concurrently with queries.
type IncrementalCounter struct {
	r  *relation.Relation
	mu sync.Mutex
	// gen counts applied mutation batches (append folds, delete batches,
	// updates); it starts at 1 so a zero stamp never collides with a live one.
	gen          uint64
	appliedRows  int    // physical rows folded into every tracked index so far
	appliedMuts  uint64 // relation.Mutations() value the tracked state reflects
	appliedEpoch uint64 // relation.Epoch() the tracked row ids belong to
	tracked      map[string]*trackedIndex
	// lru orders tracked sets by recency of use (front = least recently
	// used); eviction beyond maxTracked drops the front so the hot X/XY/Y
	// indices of live FDs survive cold one-shot sets.
	lru        *list.List
	maxTracked int
	// emptyGen is the generation at which the relation last crossed between
	// zero and non-zero live rows — the stamp of the empty set's count, whose
	// only possible change is that 0↔1 flip.
	emptyGen uint64
	wasEmpty bool
	// inner serves untracked sets; rebuilt when stale (innerGen != gen).
	inner    *PLICounter
	innerGen uint64
	keyBuf   []byte
	colBuf   [][]int32
	oldCodes []int32
}

// NewIncrementalCounter builds an incremental counter over r with the
// default bound on tracked sets.
func NewIncrementalCounter(r *relation.Relation) *IncrementalCounter {
	return NewIncrementalCounterSize(r, defaultMaxTracked)
}

// NewIncrementalCounterSize builds an incremental counter with an explicit
// bound on tracked attribute sets (minimum 4).
func NewIncrementalCounterSize(r *relation.Relation, maxTracked int) *IncrementalCounter {
	if maxTracked < 4 {
		maxTracked = 4
	}
	return &IncrementalCounter{
		r:            r,
		gen:          1,
		appliedRows:  r.NumRows(),
		appliedMuts:  r.Mutations(),
		appliedEpoch: r.Epoch(),
		tracked:      make(map[string]*trackedIndex),
		lru:          list.New(),
		maxTracked:   maxTracked,
		emptyGen:     1,
		wasEmpty:     r.LiveRows() == 0,
	}
}

// Epoch reports the relation's storage epoch. Together with Generation it
// tells caches what kind of change occurred: a generation bump with an
// unchanged per-set stamp after a compaction means row ids moved but every
// count — and therefore every measure — is provably unchanged.
func (c *IncrementalCounter) Epoch() uint64 { return c.r.Epoch() }

// Relation returns the bound instance.
func (c *IncrementalCounter) Relation() *relation.Relation { return c.r }

// Generation reports how many mutation batches have been folded in (starting
// at 1). It advances exactly when the relation changed since the last query:
// an append batch, a delete batch, or an update.
func (c *IncrementalCounter) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sync()
	return c.gen
}

// RestoreGeneration fast-forwards the generation counter to gen, for crash
// recovery: a counter rebuilt over a restored instance starts at 1, but the
// session it resurrects had already folded many batches, and cached stamps
// only stay truthful ("same generation ⇒ same count") if the clock never
// runs backwards relative to the session's history. Only forward jumps are
// applied; the call must precede any mutation folding (evolvefd.OpenSession
// calls it right after constructing the counter).
func (c *IncrementalCounter) RestoreGeneration(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen > c.gen {
		c.gen = gen
	}
}

// Track registers x for incremental maintenance. Tracking an already-tracked
// set refreshes its recency; the empty set needs no index and is ignored.
func (c *IncrementalCounter) Track(x bitset.Set) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sync()
	c.track(x)
}

// TrackBatch registers every set in xs for incremental maintenance,
// building the missing indexes concurrently — each build is an independent
// read-only fold over the relation, so a caller that must register dozens
// of sets at once (recovery re-tracking a snapshot's whole discovery
// border) pays one parallel sweep of the instance instead of a serial fold
// per set. Empty sets need no index and are skipped; already-tracked sets
// just refresh their recency, and eviction beyond the tracked-set bound
// behaves as if the sets had been tracked one at a time in order.
func (c *IncrementalCounter) TrackBatch(xs []bitset.Set) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sync()
	var fresh []*trackedIndex
	queued := make(map[string]bool, len(xs))
	for _, x := range xs {
		key := x.Key()
		if x.IsEmpty() || queued[key] {
			continue
		}
		queued[key] = true
		if idx, ok := c.tracked[key]; ok {
			c.lru.MoveToBack(idx.elem)
			continue
		}
		fresh = append(fresh, &trackedIndex{
			attrs: x.Clone(),
			cols:  x.Members(),
			ids:   make(map[string]int32),
		})
	}
	if len(fresh) == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(fresh) {
		workers = len(fresh)
	}
	rows := c.r.NumRows()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []byte
			for {
				i := int(next.Add(1)) - 1
				if i >= len(fresh) {
					return
				}
				c.foldBuf(fresh[i], 0, rows, &buf)
			}
		}()
	}
	wg.Wait()
	for _, idx := range fresh {
		idx.lastChanged = c.gen
		key := idx.attrs.Key()
		c.tracked[key] = idx
		idx.elem = c.lru.PushBack(key)
	}
	for len(c.tracked) > c.maxTracked {
		front := c.lru.Front()
		c.lru.Remove(front)
		delete(c.tracked, front.Value.(string))
	}
}

// IndexDump is the durable form of one tracked attribute-set index: the
// sorted attribute columns plus the live clusters in flat columnar form —
// Members holds every cluster's member rows back to back, and cluster j
// spans Members[Offsets[j]:Offsets[j+1]] (Offsets carries one trailing
// entry, so it has NumClusters+1 elements; with no clusters it is either
// empty or the single entry 0). The cluster-key map, the chain links and
// the live count are all derivable from the members plus the relation's
// column codes, so a dump carries only what cannot be reconstructed in
// O(clusters + rows). Snapshot format v3 writes this layout to disk
// verbatim.
type IndexDump struct {
	Attrs   []int
	Offsets []int32
	Members []int32
}

// NumClusters returns how many clusters the dump describes.
func (d *IndexDump) NumClusters() int {
	if len(d.Offsets) == 0 {
		return 0
	}
	return len(d.Offsets) - 1
}

// Cluster returns the member rows of cluster j as a view into Members.
func (d *IndexDump) Cluster(j int) []int32 {
	return d.Members[d.Offsets[j]:d.Offsets[j+1]]
}

// AddCluster appends one cluster's member rows to the dump.
func (d *IndexDump) AddCluster(members ...int32) {
	if d.Offsets == nil {
		d.Offsets = append(d.Offsets, 0)
	}
	d.Members = append(d.Members, members...)
	d.Offsets = append(d.Offsets, int32(len(d.Members)))
}

// ExportIndexes dumps every tracked index in recency order (least recently
// used first), so importing the dumps in order reproduces the LRU. Emptied
// clusters are dropped — reviving and re-creating a cluster are equivalent
// going forward — which renumbers cluster ids without changing any count.
func (c *IncrementalCounter) ExportIndexes() []IndexDump {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sync()
	dumps := make([]IndexDump, 0, len(c.tracked))
	for e := c.lru.Front(); e != nil; e = e.Next() {
		idx := c.tracked[e.Value.(string)]
		total := 0
		for id := range idx.size {
			total += int(idx.size[id])
		}
		d := IndexDump{
			Attrs:   append([]int(nil), idx.cols...),
			Offsets: make([]int32, 1, idx.live+1),
			Members: make([]int32, 0, total),
		}
		for id, h := range idx.head {
			if idx.size[id] == 0 {
				continue
			}
			for row := h; row >= 0; row = idx.next[row] {
				d.Members = append(d.Members, row)
			}
			d.Offsets = append(d.Offsets, int32(len(d.Members)))
		}
		dumps = append(dumps, d)
	}
	return dumps
}

// ImportIndexes re-registers exported indexes against the relation the
// counter wraps, reconstructing each cluster map with one key probe per
// cluster instead of one per row — the difference between a recovery that
// decodes its partition state and one that refolds the whole instance per
// set. The dumps must describe the current relation: member rows are bounds-
// and liveness-checked and every index must cover the live rows exactly,
// so a dump from any other instance fails cleanly. Already-tracked sets are
// skipped; the tracked-set bound rises to hold the full import, matching
// the capacity the exporting counter had to have. The dumps themselves are
// not retained — the chain arrays are wired from them and the slices may be
// reused afterwards.
func (c *IncrementalCounter) ImportIndexes(dumps []IndexDump) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sync()
	if n := len(c.tracked) + len(dumps); n > c.maxTracked {
		c.maxTracked = n
	}
	for _, d := range dumps {
		x := bitset.New(d.Attrs...)
		cols := x.Members()
		if len(cols) != len(d.Attrs) {
			return fmt.Errorf("pli: import index %v repeats attributes", d.Attrs)
		}
		for _, col := range cols {
			if col < 0 || col >= c.r.NumCols() {
				return fmt.Errorf("pli: import index %v names column %d of %d", d.Attrs, col, c.r.NumCols())
			}
		}
		key := x.Key()
		if _, ok := c.tracked[key]; ok {
			continue
		}
		nclusters := d.NumClusters()
		if len(d.Offsets) > 0 {
			if d.Offsets[0] != 0 || int(d.Offsets[nclusters]) != len(d.Members) {
				return fmt.Errorf("pli: import index %v has inconsistent offsets", d.Attrs)
			}
			for j := 1; j <= nclusters; j++ {
				if d.Offsets[j] < d.Offsets[j-1] {
					return fmt.Errorf("pli: import index %v has inconsistent offsets", d.Attrs)
				}
			}
		} else if len(d.Members) > 0 {
			return fmt.Errorf("pli: import index %v has members but no offsets", d.Attrs)
		}
		idx := &trackedIndex{
			attrs: x,
			cols:  cols,
			ids:   make(map[string]int32, nclusters),
			head:  make([]int32, 0, nclusters),
			size:  make([]int32, 0, nclusters),
		}
		nrows := c.r.NumRows()
		// Checkpoints follow a Compact, so the instance usually has no
		// tombstones and the per-row liveness probe can be skipped; the
		// members-vs-live total below still catches a dump whose row count
		// does not match the instance.
		noDead := c.r.LiveRows() == nrows
		idx.next, idx.prev = growChain(idx.next, idx.prev, nrows)
		codes := make([][]int32, len(cols))
		for i, col := range cols {
			codes[i] = c.r.ColumnCodes(col)
		}
		// Code keys are fixed-width, so every cluster's key packs into one
		// shared string sliced per cluster below — one allocation for the
		// whole map's keys instead of one per cluster.
		keyLen := 4 * len(cols)
		arena := make([]byte, 0, keyLen*nclusters)
		// seen guards against a row appearing in two clusters, which would
		// cross-link the chains being wired below (the coverage total alone
		// cannot catch a duplicate paired with an omission).
		seen := make([]uint64, (nrows+63)/64)
		members := 0
		for j := 0; j < nclusters; j++ {
			cls := d.Cluster(j)
			if len(cls) == 0 {
				return fmt.Errorf("pli: import index %v has an empty cluster", d.Attrs)
			}
			for i, row := range cls {
				if uint(row) >= uint(nrows) {
					return fmt.Errorf("pli: import index %v cluster row %d out of range", d.Attrs, row)
				}
				if !noDead && c.r.IsDeleted(int(row)) {
					return fmt.Errorf("pli: import index %v cluster holds deleted row %d", d.Attrs, row)
				}
				if seen[row>>6]>>(uint(row)&63)&1 == 1 {
					return fmt.Errorf("pli: import index %v lists row %d twice", d.Attrs, row)
				}
				seen[row>>6] |= 1 << (uint(row) & 63)
				// Wire the chain in dump order.
				if i+1 < len(cls) {
					idx.next[row] = cls[i+1]
				} else {
					idx.next[row] = -1
				}
				if i > 0 {
					idx.prev[row] = cls[i-1]
				} else {
					idx.prev[row] = -1
				}
			}
			members += len(cls)
			arena = appendCodeKey(arena, codes, int(cls[0]))
			idx.head = append(idx.head, cls[0])
			idx.size = append(idx.size, int32(len(cls)))
			idx.live++
		}
		if members != c.r.LiveRows() {
			return fmt.Errorf("pli: import index %v covers %d rows, relation has %d live",
				d.Attrs, members, c.r.LiveRows())
		}
		keys := string(arena)
		for j := 0; j < nclusters; j++ {
			k := keys[j*keyLen : (j+1)*keyLen]
			if _, dup := idx.ids[k]; dup {
				return fmt.Errorf("pli: import index %v has two clusters with one key", d.Attrs)
			}
			idx.ids[k] = int32(j)
		}
		idx.lastChanged = c.gen
		c.tracked[key] = idx
		idx.elem = c.lru.PushBack(key)
	}
	return nil
}

// EnsureTrackedCapacity raises the bound on incrementally-maintained sets to
// at least n, so a caller that knows its working set — the incremental
// discoverer tracks the antecedent and attribute sets of every FD in its
// cover — can keep those indices from thrashing the LRU. The bound never
// shrinks: lowering it under live indices would evict state mid-use.
func (c *IncrementalCounter) EnsureTrackedCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n > c.maxTracked {
		c.maxTracked = n
	}
}

// TrackedSets reports how many attribute sets are maintained incrementally.
func (c *IncrementalCounter) TrackedSets() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tracked)
}

// isTracked reports whether x currently has a live index (for tests).
func (c *IncrementalCounter) isTracked(x bitset.Set) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.tracked[x.Key()]
	return ok
}

// Count returns |π_X(r)| over live rows. Tracked sets answer in O(1) and are
// refreshed to most-recently-used; untracked sets go through the internal
// PLICounter, which is invalidated and rebuilt whenever the relation has
// mutated.
func (c *IncrementalCounter) Count(x bitset.Set) int {
	c.mu.Lock()
	c.sync()
	if c.r.LiveRows() == 0 {
		c.mu.Unlock()
		return 0
	}
	if x.IsEmpty() {
		c.mu.Unlock()
		return 1
	}
	if idx, ok := c.tracked[x.Key()]; ok {
		c.lru.MoveToBack(idx.elem)
		n := idx.live
		c.mu.Unlock()
		return n
	}
	inner := c.delegate()
	c.mu.Unlock()
	return inner.Count(x)
}

// CountWithGen returns |π_X(r)| together with the generation at which that
// count last changed, tracking x if it was not tracked yet. Two calls
// returning the same generation are guaranteed to have returned the same
// count, which is what lets a measure cache skip FDs whose partitions did
// not change across a mutation batch — growth and shrink alike.
func (c *IncrementalCounter) CountWithGen(x bitset.Set) (int, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sync()
	if x.IsEmpty() {
		// The empty set's count flips between 0 and 1 exactly when the live
		// row count crosses zero; emptyGen is the generation of that flip, so
		// the "same generation ⇒ same count" invariant holds even across an
		// empty → populated → empty lifecycle.
		if c.r.LiveRows() == 0 {
			return 0, c.emptyGen
		}
		return 1, c.emptyGen
	}
	idx := c.track(x)
	return idx.live, idx.lastChanged
}

// Partition materialises the stripped partition of x over the live rows.
// Tracked sets build it from the live cluster map; untracked sets go through
// the internal PLICounter, so repair searches probing the same set repeatedly
// hit its sharded cache instead of refolding columns.
func (c *IncrementalCounter) Partition(x bitset.Set) *Partition {
	c.mu.Lock()
	c.sync()
	idx, ok := c.tracked[x.Key()]
	if !ok {
		inner := c.delegate()
		c.mu.Unlock()
		return inner.Partition(x)
	}
	c.lru.MoveToBack(idx.elem)
	p := &Partition{numRows: c.r.LiveRows(), extent: c.r.NumRows()}
	var buf []int32
	for id, h := range idx.head {
		n := idx.size[id]
		if n < 2 {
			continue
		}
		buf = buf[:0]
		for row := h; row >= 0; row = idx.next[row] {
			buf = append(buf, row)
		}
		p.addClass(buf)
	}
	c.mu.Unlock()
	return p
}

// Delete tombstones the given rows in the relation and unlinks them from
// every tracked cluster in O(rows × tracked sets). Cluster counts shrink
// exactly when a cluster empties, and only then does the set's generation
// stamp advance. The delete fails atomically on an out-of-range or
// already-deleted row.
func (c *IncrementalCounter) Delete(rows ...int) error {
	if len(rows) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sync()
	if err := c.r.Delete(rows...); err != nil {
		return err
	}
	c.gen++
	for _, idx := range c.tracked {
		c.unfold(idx, rows)
		maybeCompact(idx)
	}
	c.appliedMuts = c.r.Mutations()
	c.noteLiveness()
	return nil
}

// Update rewrites one live row in place and re-routes it between clusters:
// for each tracked set the row leaves the cluster its old codes name and
// joins the one its new codes name. A set's count — and hence its generation
// stamp — changes only when that move empties the old cluster or opens a new
// one (and not when both happen at once, which leaves |π_X| unchanged).
func (c *IncrementalCounter) Update(row int, tuple ...relation.Value) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sync()
	if row < 0 || row >= c.r.NumRows() || c.r.IsDeleted(row) {
		// Reuse the relation's error wording without touching tracked state.
		return c.r.Update(row, tuple...)
	}
	// Snapshot the row's codes before the cells change: they name the old
	// clusters, and diffing them against the updated codes tells which
	// tracked sets the update touches at all.
	ncols := c.r.NumCols()
	if cap(c.oldCodes) < ncols {
		c.oldCodes = make([]int32, ncols)
	}
	oldCodes := c.oldCodes[:ncols]
	for col := 0; col < ncols; col++ {
		oldCodes[col] = c.r.ColumnCodes(col)[row]
	}
	if err := c.r.Update(row, tuple...); err != nil {
		return err
	}
	c.gen++
	var changed bitset.Set
	for col := 0; col < ncols; col++ {
		if c.r.ColumnCodes(col)[row] != oldCodes[col] {
			changed.Add(col)
		}
	}
	if !changed.IsEmpty() {
		for _, idx := range c.tracked {
			// Sets disjoint from the changed columns keep the row in the same
			// cluster; only intersecting sets re-route (their keys necessarily
			// differ: the key encodes the changed code).
			if !idx.attrs.Intersects(changed) {
				continue
			}
			oldKey := string(c.oldRowKey(idx, oldCodes))
			newKey := string(c.rowKey(idx, row))
			before := idx.live
			c.unlink(idx, oldKey, int32(row))
			c.link(idx, newKey, int32(row))
			if idx.live != before {
				idx.lastChanged = c.gen
			}
			maybeCompact(idx)
		}
	}
	c.appliedMuts = c.r.Mutations()
	c.noteLiveness()
	return nil
}

// UpdateStrings parses each text cell with the column kind and updates the
// row; empty cells and "NULL" become NULL. See Update.
func (c *IncrementalCounter) UpdateStrings(row int, cells ...string) error {
	tuple, err := c.r.ParseTuple(cells...)
	if err != nil {
		return err
	}
	return c.Update(row, tuple...)
}

// Compact squeezes the tombstones out of the relation and carries every
// tracked index across the epoch boundary by remapping its row ids instead
// of rebuilding it: cluster membership, cluster counts and — crucially —
// every lastChanged stamp are untouched, because compaction preserves the
// tuple bag and therefore every |π_X|. A measure cache keyed on those stamps
// keeps serving its entries across the boundary for free. The cost is
// O(moved rows × tracked sets): rows below the remap's identity prefix are
// not visited at all.
//
// The generation still advances — the inner delegate's composite partitions
// and any materialised Partition carry old-epoch row ids — so partition
// consumers rebuild while count consumers don't, which is exactly the split
// the epoch design wants. Returns nil when the relation has no tombstones.
func (c *IncrementalCounter) Compact() *relation.Remap {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sync()
	m := c.r.Compact()
	if m == nil {
		return nil
	}
	c.gen++
	for _, idx := range c.tracked {
		c.remapIndex(idx, m)
	}
	c.appliedRows = c.r.NumRows()
	c.appliedEpoch = m.Epoch
	return m
}

// remapIndex rewrites the row ids of one tracked index through the remap
// table: cluster heads are translated in place, and every chain slot at or
// above the identity prefix moves to the row's new id with its link values
// translated. Cluster identity, the key map, live/dead counts and every
// generation stamp are untouched — compaction changes no count. Pure array
// reads and writes, no hashing: O(moved rows + clusters), and the chain
// arrays shrink to the new extent. The in-place slot moves are safe because
// sources are consumed in ascending order and NewID(old) ≤ old, so a write
// never lands on an unread source. Callers must hold c.mu.
func (c *IncrementalCounter) remapIndex(idx *trackedIndex, m *relation.Remap) {
	translate := func(v int32) int32 {
		if v < 0 || int(v) < m.FirstMoved {
			return v
		}
		return int32(m.NewID(int(v)))
	}
	for id, h := range idx.head {
		if idx.size[id] == 0 {
			continue
		}
		nh := translate(h)
		if nh < 0 {
			panic(fmt.Sprintf("pli: tracked index for %v holds tombstoned row %d at compaction", idx.cols, h))
		}
		idx.head[id] = nh
	}
	// Chains cross the FirstMoved boundary freely, so a slot inside the
	// identity prefix can still hold a pointer at a moved row. Every such
	// pointer's target is a moved row with at most two neighbors, so patching
	// prefix slots from the moved side keeps the whole pass O(moved): a
	// moved row's neighbor in the prefix gets its forward/back pointer
	// rewritten to the new id, while neighbors in the moved region are
	// translated in place (their own slots move in their own iteration).
	for old := m.FirstMoved; old < m.OldRows && old < len(idx.next); old++ {
		n := int32(m.NewID(old))
		if n < 0 {
			continue // tombstone: its links are stale and die with it
		}
		nx, pv := idx.next[old], idx.prev[old]
		if nx >= 0 {
			if int(nx) >= m.FirstMoved {
				nx = int32(m.NewID(int(nx)))
			} else {
				idx.prev[nx] = n
			}
		}
		if pv >= 0 {
			if int(pv) >= m.FirstMoved {
				pv = int32(m.NewID(int(pv)))
			} else {
				idx.next[pv] = n
			}
		}
		idx.next[n] = nx
		idx.prev[n] = pv
	}
	if m.NewRows < len(idx.next) {
		idx.next = idx.next[:m.NewRows]
		idx.prev = idx.prev[:m.NewRows]
	}
}

// sync folds rows appended since the last query into every tracked index and
// bumps the generation. If the relation was deleted from or updated without
// going through this counter, every tracked index is rebuilt from scratch
// instead — correct, just not incremental. An out-of-band compaction
// (relation.Compact called directly, so the remap table was lost) is
// detected via the storage epoch and likewise answered by a full rebuild;
// Compact on this counter remaps instead. Callers must hold c.mu.
func (c *IncrementalCounter) sync() {
	if c.r.Epoch() != c.appliedEpoch {
		c.gen++
		for _, idx := range c.tracked {
			c.rebuild(idx)
		}
		c.appliedRows = c.r.NumRows()
		c.appliedMuts = c.r.Mutations()
		c.appliedEpoch = c.r.Epoch()
		c.noteLiveness()
		return
	}
	if c.r.Mutations() != c.appliedMuts {
		c.gen++
		for _, idx := range c.tracked {
			c.rebuild(idx)
		}
		c.appliedRows = c.r.NumRows()
		c.appliedMuts = c.r.Mutations()
		c.noteLiveness()
		return
	}
	n := c.r.NumRows()
	if n == c.appliedRows {
		return
	}
	from := c.appliedRows
	c.gen++
	for _, idx := range c.tracked {
		c.fold(idx, from, n)
	}
	c.appliedRows = n
	c.noteLiveness()
}

// noteLiveness stamps emptyGen when the live-row count crossed zero in the
// batch that just bumped c.gen. Callers must hold c.mu.
func (c *IncrementalCounter) noteLiveness() {
	empty := c.r.LiveRows() == 0
	if empty != c.wasEmpty {
		c.emptyGen = c.gen
		c.wasEmpty = empty
	}
}

// track returns the index for x, building it (over all current live rows) on
// first use and refreshing its LRU position otherwise. Callers must hold
// c.mu and have synced.
func (c *IncrementalCounter) track(x bitset.Set) *trackedIndex {
	key := x.Key()
	if idx, ok := c.tracked[key]; ok {
		c.lru.MoveToBack(idx.elem)
		return idx
	}
	idx := &trackedIndex{
		attrs: x.Clone(),
		cols:  x.Members(),
		ids:   make(map[string]int32),
	}
	c.fold(idx, 0, c.r.NumRows())
	idx.lastChanged = c.gen
	c.tracked[key] = idx
	idx.elem = c.lru.PushBack(key)
	for len(c.tracked) > c.maxTracked {
		front := c.lru.Front()
		c.lru.Remove(front)
		delete(c.tracked, front.Value.(string))
	}
	return idx
}

// rebuild refolds idx from scratch over the current live rows — the fallback
// for mutations that bypassed the counter. Callers must hold c.mu and have
// bumped the generation.
func (c *IncrementalCounter) rebuild(idx *trackedIndex) {
	idx.ids = make(map[string]int32)
	idx.head = idx.head[:0]
	idx.size = idx.size[:0]
	idx.next = idx.next[:0]
	idx.prev = idx.prev[:0]
	idx.live = 0
	idx.dead = 0
	c.fold(idx, 0, c.r.NumRows())
	idx.lastChanged = c.gen
}

// fold routes live rows [from, to) of the relation into idx's clusters,
// stamping lastChanged if the cluster count changed (a fresh cluster
// appeared, or an emptied one came back to life).
func (c *IncrementalCounter) fold(idx *trackedIndex, from, to int) {
	c.foldBuf(idx, from, to, &c.keyBuf)
}

// foldBuf is fold with an explicit key buffer, so concurrent index builds
// (TrackBatch) can fold without sharing c.keyBuf. Apart from the buffer it
// only reads shared state (the relation's columns and c.gen), which is what
// makes parallel builds over disjoint indexes safe.
func (c *IncrementalCounter) foldBuf(idx *trackedIndex, from, to int, keyBuf *[]byte) {
	cols := make([][]int32, len(idx.cols))
	for i, col := range idx.cols {
		cols[i] = c.r.ColumnCodes(col)
	}
	if need := len(idx.cols) * 4; cap(*keyBuf) < need {
		*keyBuf = make([]byte, 0, need)
	}
	buf := *keyBuf
	idx.next, idx.prev = growChain(idx.next, idx.prev, to)
	changed := false
	for row := from; row < to; row++ {
		if c.r.IsDeleted(row) {
			continue
		}
		k := appendCodeKey(buf[:0], cols, row)
		id, ok := idx.ids[string(k)]
		if !ok {
			id = int32(len(idx.head))
			idx.ids[string(k)] = id
			idx.head = append(idx.head, -1)
			idx.size = append(idx.size, 0)
			idx.live++
			changed = true
		} else if idx.size[id] == 0 {
			idx.live++
			idx.dead--
			changed = true
		}
		r := int32(row)
		h := idx.head[id]
		idx.next[r] = h
		idx.prev[r] = -1
		if h >= 0 {
			idx.prev[h] = r
		}
		idx.head[id] = r
		idx.size[id]++
	}
	*keyBuf = buf[:0]
	if changed {
		idx.lastChanged = c.gen
	}
}

// unfold unlinks freshly-tombstoned rows from idx's clusters, stamping
// lastChanged if any cluster emptied (the only way a delete changes |π_X|:
// shrinking a cluster from k ≥ 2 rows to k−1 leaves the count alone).
// Callers must hold c.mu and have bumped the generation.
func (c *IncrementalCounter) unfold(idx *trackedIndex, rows []int) {
	changed := false
	for _, row := range rows {
		key := string(c.rowKey(idx, row))
		before := idx.live
		c.unlink(idx, key, int32(row))
		if idx.live != before {
			changed = true
		}
	}
	if changed {
		idx.lastChanged = c.gen
	}
}

// rowKey encodes the row's code tuple over idx's columns into the shared key
// buffer, via the same canonical appendCodeKey encoding fold uses — cluster
// lookups on delete/update must agree byte-for-byte with the keys the folds
// stored. The codes of tombstoned rows remain readable, which is what lets a
// delete locate the clusters the row leaves. Callers must hold c.mu.
func (c *IncrementalCounter) rowKey(idx *trackedIndex, row int) []byte {
	cols := c.colBuf[:0]
	for _, col := range idx.cols {
		cols = append(cols, c.r.ColumnCodes(col))
	}
	c.colBuf = cols
	if need := len(idx.cols) * 4; cap(c.keyBuf) < need {
		c.keyBuf = make([]byte, 0, need)
	}
	return appendCodeKey(c.keyBuf[:0], cols, row)
}

// oldRowKey is rowKey over a pre-update snapshot of the row's codes (one
// code per relation column), through the same canonical encoding.
func (c *IncrementalCounter) oldRowKey(idx *trackedIndex, oldCodes []int32) []byte {
	cols := c.colBuf[:0]
	for _, col := range idx.cols {
		cols = append(cols, oldCodes[col:col+1])
	}
	c.colBuf = cols
	if need := len(idx.cols) * 4; cap(c.keyBuf) < need {
		c.keyBuf = make([]byte, 0, need)
	}
	return appendCodeKey(c.keyBuf[:0], cols, 0)
}

// growChain widens the row-indexed chain arrays to cover row ids below n,
// doubling capacity so per-row append folds amortise to O(1); fresh slots
// are only ever read after a fold or link wrote them.
func growChain(next, prev []int32, n int) ([]int32, []int32) {
	if len(next) >= n {
		return next, prev
	}
	if cap(next) >= n && cap(prev) >= n {
		return next[:n], prev[:n]
	}
	c := max(n+n/8+64, 2*cap(next))
	nn := make([]int32, n, c)
	copy(nn, next)
	np := make([]int32, n, c)
	copy(np, prev)
	return nn, np
}

// unlink removes row from the cluster key names in O(1) chain surgery,
// decrementing live if the cluster empties (its head then reads −1, spliced
// from the dying last member). The empty cluster keeps its id so a later row
// with the same codes revives it in place; the dying row's chain slots go
// stale and are never read again.
func (c *IncrementalCounter) unlink(idx *trackedIndex, key string, row int32) {
	id, ok := idx.ids[key]
	if !ok {
		// The tracked state and the relation disagree; this cannot happen
		// while mutations flow through the counter.
		panic(fmt.Sprintf("pli: tracked index for %v lost cluster of row %d", idx.cols, row))
	}
	nx, pv := idx.next[row], idx.prev[row]
	if pv >= 0 {
		idx.next[pv] = nx
	} else {
		idx.head[id] = nx
	}
	if nx >= 0 {
		idx.prev[nx] = pv
	}
	idx.size[id]--
	if idx.size[id] == 0 {
		idx.live--
		idx.dead++
	}
}

// maybeCompact drops an index's emptied cluster slots once they outnumber
// the live ones (beyond a floor that lets revival churn stay cheap). Counts,
// row-level chain links and generation stamps are all unchanged — cluster
// ids just renumber; this is pure storage reclamation, invisible to every
// query.
func maybeCompact(idx *trackedIndex) {
	if idx.dead <= 64 || idx.dead <= idx.live {
		return
	}
	remap := make([]int32, len(idx.head))
	w := int32(0)
	for id, n := range idx.size {
		if n == 0 {
			remap[id] = -1
			continue
		}
		remap[id] = w
		idx.head[w] = idx.head[id]
		idx.size[w] = n
		w++
	}
	for key, id := range idx.ids {
		if remap[id] < 0 {
			delete(idx.ids, key)
		} else {
			idx.ids[key] = remap[id]
		}
	}
	idx.head = idx.head[:w]
	idx.size = idx.size[:w]
	idx.dead = 0
}

// link adds row to the cluster key names, creating or reviving the cluster
// (and incrementing live) as needed.
func (c *IncrementalCounter) link(idx *trackedIndex, key string, row int32) {
	id, ok := idx.ids[key]
	if !ok {
		id = int32(len(idx.head))
		idx.ids[key] = id
		idx.head = append(idx.head, -1)
		idx.size = append(idx.size, 0)
		idx.live++
	} else if idx.size[id] == 0 {
		idx.live++
		idx.dead--
	}
	idx.next, idx.prev = growChain(idx.next, idx.prev, int(row)+1)
	h := idx.head[id]
	idx.next[row] = h
	idx.prev[row] = -1
	if h >= 0 {
		idx.prev[h] = row
	}
	idx.head[id] = row
	idx.size[id]++
}

// ChildPartition returns the partition of x ∪ {attr}, delegating to the
// internal PLICounter's search-aware fast path (one product off the parent's
// partition on a miss). Together with Partition this makes the incremental
// counter a SearchCounter, so repair searches over a session reuse parent
// partitions exactly like the plain PLI strategy. The relation must not be
// mutated concurrently with an in-flight search.
func (c *IncrementalCounter) ChildPartition(x bitset.Set, parent *Partition, attr int) *Partition {
	c.mu.Lock()
	c.sync()
	inner := c.delegate()
	c.mu.Unlock()
	return inner.ChildPartition(x, parent, attr)
}

// ChildCount returns |π_{x∪{attr}}| through the inner PLICounter's count-only
// kernel (one popcount/probe pass off the parent partition, nothing
// materialised). The relation must not be mutated concurrently with an
// in-flight search.
func (c *IncrementalCounter) ChildCount(x bitset.Set, parent *Partition, attr int) int {
	c.mu.Lock()
	c.sync()
	inner := c.delegate()
	c.mu.Unlock()
	return inner.ChildCount(x, parent, attr)
}

// PartitionPar materialises the stripped partition of x with uncached
// products sharded across `workers` goroutines. Tracked sets already
// materialise in one pass from the live cluster map, so they take the
// Partition path unchanged.
func (c *IncrementalCounter) PartitionPar(x bitset.Set, workers int) *Partition {
	c.mu.Lock()
	c.sync()
	if _, ok := c.tracked[x.Key()]; ok {
		c.mu.Unlock()
		return c.Partition(x)
	}
	inner := c.delegate()
	c.mu.Unlock()
	return inner.PartitionPar(x, workers)
}

// delegate returns the inner PLICounter for untracked sets, rebuilding it if
// the relation mutated since it was cached — appends, deletes and updates
// all advance the generation, so a stale sharded LRU of composite partitions
// is never served. Callers must hold c.mu and have synced; the returned
// counter is safe to use after releasing the lock.
func (c *IncrementalCounter) delegate() *PLICounter {
	if c.inner == nil || c.innerGen != c.gen {
		c.inner = NewPLICounter(c.r)
		c.innerGen = c.gen
	}
	return c.inner
}
