package pli

import (
	"sync"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// defaultMaxTracked bounds the number of attribute sets an IncrementalCounter
// maintains incrementally. Each tracked set costs O(numRows) memory (its
// hash-to-cluster map), so the bound keeps memory proportional to the FDs a
// session actually monitors, not to the sets a repair search sweeps through.
const defaultMaxTracked = 256

// trackedIndex is the live clustering of one attribute set: a map from the
// encoded code-tuple of the set's columns to a cluster id, plus the member
// rows of each cluster (singleton clusters included, unlike the stripped
// Partition). Keeping the map alive between appends is what makes folding a
// batch O(batch) instead of O(numRows): each new row hashes straight to its
// cluster.
type trackedIndex struct {
	attrs bitset.Set
	cols  []int
	ids   map[string]int32 // encoded code tuple → position in rows
	rows  [][]int32        // cluster id → member rows
	// lastChanged is the counter generation at which the number of clusters
	// last changed. Appends that only enlarge existing clusters leave every
	// distinct-projection count — and therefore every FD measure built from
	// this set — untouched, and the stamp lets callers prove it.
	lastChanged uint64
}

// IncrementalCounter is a Counter for a growing relation: it answers
// |π_X(r)| like PLICounter but folds appended tuples into kept-alive cluster
// maps instead of recomputing partitions from scratch. It is the engine
// behind Session.Append — the paper's periodic-validation loop re-checks its
// FDs every time the data grows, and with this counter the re-check costs
// O(batch × tracked sets), not O(|r|).
//
// Two tiers of attribute sets exist:
//
//   - Tracked sets (registered via Track or CountWithGen — the facade tracks
//     the X, XY and Y of every defined FD) are maintained incrementally and
//     answer Count in O(1), with a generation stamp that only advances when
//     the count actually changed.
//   - Untracked sets (the thousands of candidate antecedents a repair search
//     probes once each) delegate to an internal PLICounter that is rebuilt
//     lazily whenever the relation has grown — generation-stamped
//     invalidation of the cached composite partitions.
//
// Like every Counter, an IncrementalCounter is safe for concurrent use; rows
// must not be appended to the relation concurrently with queries.
type IncrementalCounter struct {
	r  *relation.Relation
	mu sync.Mutex
	// gen counts applied append batches; it starts at 1 so a zero stamp never
	// collides with a live one.
	gen     uint64
	applied int // rows folded into every tracked index so far
	tracked map[string]*trackedIndex
	// order tracks insertion order of tracked sets for FIFO eviction.
	order      []string
	maxTracked int
	// inner serves untracked sets; rebuilt when stale (innerGen != gen).
	inner    *PLICounter
	innerGen uint64
	keyBuf   []byte
}

// NewIncrementalCounter builds an incremental counter over r with the
// default bound on tracked sets.
func NewIncrementalCounter(r *relation.Relation) *IncrementalCounter {
	return NewIncrementalCounterSize(r, defaultMaxTracked)
}

// NewIncrementalCounterSize builds an incremental counter with an explicit
// bound on tracked attribute sets (minimum 4).
func NewIncrementalCounterSize(r *relation.Relation, maxTracked int) *IncrementalCounter {
	if maxTracked < 4 {
		maxTracked = 4
	}
	return &IncrementalCounter{
		r:          r,
		gen:        1,
		applied:    r.NumRows(),
		tracked:    make(map[string]*trackedIndex),
		maxTracked: maxTracked,
	}
}

// Relation returns the bound instance.
func (c *IncrementalCounter) Relation() *relation.Relation { return c.r }

// Generation reports how many append batches have been folded in (starting
// at 1). It advances exactly when the relation grew since the last query.
func (c *IncrementalCounter) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sync()
	return c.gen
}

// Track registers x for incremental maintenance. Tracking an already-tracked
// set is a no-op; the empty set needs no index and is ignored.
func (c *IncrementalCounter) Track(x bitset.Set) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sync()
	c.track(x)
}

// TrackedSets reports how many attribute sets are maintained incrementally.
func (c *IncrementalCounter) TrackedSets() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tracked)
}

// Count returns |π_X(r)|. Tracked sets answer in O(1); untracked sets go
// through the internal PLICounter, which is invalidated and rebuilt whenever
// the relation has grown.
func (c *IncrementalCounter) Count(x bitset.Set) int {
	c.mu.Lock()
	c.sync()
	if c.r.NumRows() == 0 {
		c.mu.Unlock()
		return 0
	}
	if x.IsEmpty() {
		c.mu.Unlock()
		return 1
	}
	if idx, ok := c.tracked[x.Key()]; ok {
		n := len(idx.rows)
		c.mu.Unlock()
		return n
	}
	inner := c.delegate()
	c.mu.Unlock()
	return inner.Count(x)
}

// CountWithGen returns |π_X(r)| together with the generation at which that
// count last changed, tracking x if it was not tracked yet. Two calls
// returning the same generation are guaranteed to have returned the same
// count, which is what lets a measure cache skip FDs whose partitions did
// not change across an append.
func (c *IncrementalCounter) CountWithGen(x bitset.Set) (int, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sync()
	if x.IsEmpty() {
		// The count only flips between 0 and 1 when the first row arrives;
		// stamp it with the creation generation.
		if c.r.NumRows() == 0 {
			return 0, 1
		}
		return 1, 1
	}
	idx := c.track(x)
	if c.r.NumRows() == 0 {
		return 0, idx.lastChanged
	}
	return len(idx.rows), idx.lastChanged
}

// Partition materialises the stripped partition of x. Tracked sets build it
// from the live cluster map; untracked sets go through the internal
// PLICounter, so repair searches probing the same set repeatedly hit its
// sharded cache instead of refolding columns.
func (c *IncrementalCounter) Partition(x bitset.Set) *Partition {
	c.mu.Lock()
	c.sync()
	idx, ok := c.tracked[x.Key()]
	if !ok {
		inner := c.delegate()
		c.mu.Unlock()
		return inner.Partition(x)
	}
	p := &Partition{numRows: c.r.NumRows()}
	for _, rows := range idx.rows {
		if len(rows) >= 2 {
			cls := make([]int32, len(rows))
			copy(cls, rows)
			p.classes = append(p.classes, cls)
		}
	}
	c.mu.Unlock()
	return p
}

// sync folds rows appended since the last query into every tracked index and
// bumps the generation. Callers must hold c.mu.
func (c *IncrementalCounter) sync() {
	n := c.r.NumRows()
	if n == c.applied {
		return
	}
	from := c.applied
	c.gen++
	for _, idx := range c.tracked {
		c.fold(idx, from, n)
	}
	c.applied = n
}

// track returns the index for x, building it (over all current rows) on
// first use. Callers must hold c.mu and have synced.
func (c *IncrementalCounter) track(x bitset.Set) *trackedIndex {
	key := x.Key()
	if idx, ok := c.tracked[key]; ok {
		return idx
	}
	idx := &trackedIndex{
		attrs:       x.Clone(),
		cols:        x.Members(),
		ids:         make(map[string]int32),
		lastChanged: c.gen,
	}
	c.fold(idx, 0, c.r.NumRows())
	idx.lastChanged = c.gen
	c.tracked[key] = idx
	c.order = append(c.order, key)
	for len(c.tracked) > c.maxTracked {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.tracked, oldest)
	}
	return idx
}

// fold routes rows [from, to) of the relation into idx's clusters, stamping
// lastChanged if a new cluster appeared (the only way any count changes:
// rows are never deleted, so clusters only ever grow or split off fresh).
func (c *IncrementalCounter) fold(idx *trackedIndex, from, to int) {
	cols := make([][]int32, len(idx.cols))
	for i, col := range idx.cols {
		cols[i] = c.r.ColumnCodes(col)
	}
	if need := len(idx.cols) * 4; cap(c.keyBuf) < need {
		c.keyBuf = make([]byte, 0, need)
	}
	changed := false
	for row := from; row < to; row++ {
		k := appendCodeKey(c.keyBuf[:0], cols, row)
		id, ok := idx.ids[string(k)]
		if !ok {
			id = int32(len(idx.rows))
			idx.ids[string(k)] = id
			idx.rows = append(idx.rows, nil)
			changed = true
		}
		idx.rows[id] = append(idx.rows[id], int32(row))
	}
	c.keyBuf = c.keyBuf[:0]
	if changed {
		idx.lastChanged = c.gen
	}
}

// ChildPartition returns the partition of x ∪ {attr}, delegating to the
// internal PLICounter's search-aware fast path (one product off the parent's
// partition on a miss). Together with Partition this makes the incremental
// counter a SearchCounter, so repair searches over a session reuse parent
// partitions exactly like the plain PLI strategy. Rows must not be appended
// concurrently with an in-flight search.
func (c *IncrementalCounter) ChildPartition(x bitset.Set, parent *Partition, attr int) *Partition {
	c.mu.Lock()
	c.sync()
	inner := c.delegate()
	c.mu.Unlock()
	return inner.ChildPartition(x, parent, attr)
}

// delegate returns the inner PLICounter for untracked sets, rebuilding it if
// the relation grew since it was cached. Callers must hold c.mu and have
// synced; the returned counter is safe to use after releasing the lock.
func (c *IncrementalCounter) delegate() *PLICounter {
	if c.inner == nil || c.innerGen != c.gen {
		c.inner = NewPLICounter(c.r)
		c.innerGen = c.gen
	}
	return c.inner
}
