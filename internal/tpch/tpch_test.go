package tpch

import (
	"testing"

	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/pli"
)

// arities are Table 4's printed column counts.
var arities = map[string]int{
	"customer": 8, "lineitem": 16, "nation": 4, "orders": 9,
	"part": 9, "partsupp": 5, "region": 3, "supplier": 7,
}

func TestAritiesMatchTable4(t *testing.T) {
	db := Generate(0.001, 1)
	for table, want := range arities {
		r, err := db.Get(table)
		if err != nil {
			t.Fatal(err)
		}
		if r.NumCols() != want {
			t.Errorf("%s arity = %d, want %d", table, r.NumCols(), want)
		}
	}
}

func TestCardinalityScaling(t *testing.T) {
	// Fixed tables ignore SF.
	if Rows("region", 0.001) != 5 || Rows("nation", 2) != 25 {
		t.Fatal("region/nation must be SF-independent")
	}
	// Scaled tables follow base·sf: SF 0.1 reproduces Table 4's 100MB
	// column shape (customer 15 000, part 20 000, supplier 1 000, …).
	if got := Rows("customer", 0.1); got != 15_000 {
		t.Errorf("customer@0.1 = %d, want 15000", got)
	}
	if got := Rows("part", 0.1); got != 20_000 {
		t.Errorf("part@0.1 = %d, want 20000", got)
	}
	if got := Rows("supplier", 0.1); got != 1_000 {
		t.Errorf("supplier@0.1 = %d, want 1000", got)
	}
	if got := Rows("orders", 1); got != 1_500_000 {
		t.Errorf("orders@1 = %d, want 1.5M", got)
	}
	if Rows("customer", 0.0000001) != 1 {
		t.Error("scaled rows must clamp to 1")
	}
	if Rows("unknown", 1) != 0 {
		t.Error("unknown table must report 0 rows")
	}
}

func TestGenerateTableRowCounts(t *testing.T) {
	sf := 0.002
	for _, table := range TableNames {
		r := GenerateTable(table, sf, 7)
		if got, want := r.NumRows(), Rows(table, sf); got != want {
			t.Errorf("%s rows = %d, want %d", table, got, want)
		}
		if r.Name() != table {
			t.Errorf("table name = %q", r.Name())
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := GenerateTable("customer", 0.001, 42)
	b := GenerateTable("customer", 0.001, 42)
	if a.NumRows() != b.NumRows() {
		t.Fatal("row counts differ across runs")
	}
	for row := 0; row < a.NumRows(); row++ {
		for colIdx := 0; colIdx < a.NumCols(); colIdx++ {
			if a.Value(row, colIdx) != b.Value(row, colIdx) {
				t.Fatalf("cell (%d,%d) differs across identical seeds", row, colIdx)
			}
		}
	}
	c := GenerateTable("customer", 0.001, 43)
	same := true
	for row := 0; row < a.NumRows() && same; row++ {
		if a.Value(row, 1) != c.Value(row, 1) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should produce different data")
	}
}

func TestNoNullsAnywhere(t *testing.T) {
	// TPC-H data is NULL-free; FD candidate pools must cover every column.
	db := Generate(0.001, 3)
	for _, name := range db.Names() {
		r, _ := db.Get(name)
		for colIdx := 0; colIdx < r.NumCols(); colIdx++ {
			if r.HasNulls(colIdx) {
				t.Errorf("%s column %s has NULLs", name, r.Schema().Column(colIdx).Name)
			}
		}
	}
}

func TestTable5FDProperties(t *testing.T) {
	db := Generate(0.005, 11)
	fds := Table5FDs()
	if len(fds) != 8 {
		t.Fatalf("Table 5 FDs = %d, want 8", len(fds))
	}
	for table, spec := range fds {
		r, err := db.Get(table)
		if err != nil {
			t.Fatal(err)
		}
		fd, err := core.ParseFD(r.Schema(), table, spec)
		if err != nil {
			t.Fatalf("%s: %v", table, err)
		}
		m := core.Compute(pli.NewPLICounter(r), fd)
		switch table {
		case "nation":
			// n_name → n_regionkey is exact by construction (fixed map).
			if !m.Exact() {
				t.Errorf("nation FD should be exact, got %v", m)
			}
		case "lineitem":
			// l_partkey → l_suppkey must be clearly approximate: each part
			// ships from several suppliers.
			if m.Exact() || m.Confidence > 0.9 {
				t.Errorf("lineitem FD should be strongly violated, got %v", m)
			}
		case "customer", "supplier", "part", "orders", "partsupp":
			// Name pools collide at these cardinalities: approximate FDs.
			if m.Exact() {
				t.Errorf("%s FD should be approximate at SF 0.005, got %v", table, m)
			}
		}
		if m.Confidence <= 0 || m.Confidence > 1 {
			t.Errorf("%s confidence out of range: %v", table, m.Confidence)
		}
	}
}

func TestKeysAreUnique(t *testing.T) {
	db := Generate(0.002, 5)
	keys := map[string]string{
		"customer": "c_custkey", "orders": "o_orderkey",
		"part": "p_partkey", "supplier": "s_suppkey",
		"nation": "n_nationkey", "region": "r_regionkey",
	}
	for table, keyCol := range keys {
		r, _ := db.Get(table)
		idx := r.Schema().Index(keyCol)
		if idx < 0 {
			t.Fatalf("%s: no column %s", table, keyCol)
		}
		if got := r.DictLen(idx); got != r.NumRows() {
			t.Errorf("%s.%s: %d distinct over %d rows, want unique", table, keyCol, got, r.NumRows())
		}
	}
}

func TestLineitemForeignKeyRanges(t *testing.T) {
	sf := 0.002
	li := GenerateTable("lineitem", sf, 9)
	maxOrder := int64(Rows("orders", sf))
	maxPart := int64(Rows("part", sf))
	maxSupp := int64(Rows("supplier", sf))
	okIdx := li.Schema().Index("l_orderkey")
	pkIdx := li.Schema().Index("l_partkey")
	skIdx := li.Schema().Index("l_suppkey")
	for row := 0; row < li.NumRows(); row++ {
		if v := li.Value(row, okIdx).AsInt(); v < 1 || v > maxOrder {
			t.Fatalf("row %d: l_orderkey %d out of [1,%d]", row, v, maxOrder)
		}
		if v := li.Value(row, pkIdx).AsInt(); v < 1 || v > maxPart {
			t.Fatalf("row %d: l_partkey %d out of [1,%d]", row, v, maxPart)
		}
		if v := li.Value(row, skIdx).AsInt(); v < 1 || v > maxSupp {
			t.Fatalf("row %d: l_suppkey %d out of [1,%d]", row, v, maxSupp)
		}
	}
}

func TestGenerateUnknownTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown table must panic")
		}
	}()
	GenerateTable("ghost", 1, 1)
}

func BenchmarkGenerateCustomerSF001(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = GenerateTable("customer", 0.01, 1)
	}
}
