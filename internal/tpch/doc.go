// Package tpch is a deterministic, dependency-free stand-in for the TPC-H
// DBGEN tool the paper uses for its synthetic experiments (§6.1). It
// generates the eight TPC-H tables with the standard schemas — matching
// the arities reported in Table 4 of the paper — and cardinalities that
// scale with a scale factor SF (SF 1 ≈ the paper's "1GB" database, SF 0.1
// ≈ "100MB", SF 0.25 ≈ "250MB").
//
// Deliberate deviation from the real DBGEN: entity "names" are drawn from
// finite pools instead of being key-derived unique strings, so that the
// name-keyed FDs of Table 5 (customer [name]→[address], part [name]→[mfgr],
// …) are approximate rather than trivially exact — the paper's hour-scale
// repair times imply non-trivial searches, which requires violated FDs.
// Everything that the FD-repair experiments measure (arity, cardinality,
// value-frequency structure, violation rates) is preserved; the exact
// TPC-H text grammar is irrelevant to counting distinct projections. See
// DESIGN.md §3 for the substitution table.
package tpch
