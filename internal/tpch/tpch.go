package tpch

import (
	"fmt"
	"math/rand"

	"github.com/evolvefd/evolvefd/internal/relation"
)

// Scale factors matching the paper's three database sizes.
const (
	// SF100MB reproduces the "100MB" column of Table 4.
	SF100MB = 0.1
	// SF250MB reproduces the "250MB" column of Table 4.
	SF250MB = 0.25
	// SF1GB reproduces the "1GB" column of Table 4.
	SF1GB = 1.0
)

// TableNames lists the eight tables in the order Table 4 prints them.
var TableNames = []string{
	"customer", "lineitem", "nation", "orders",
	"part", "partsupp", "region", "supplier",
}

// Cardinalities returns the base (SF 1) row counts per table.
func Cardinalities() map[string]int {
	return map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": 10_000,
		"customer": 150_000,
		"part":     200_000,
		"partsupp": 800_000,
		"orders":   1_500_000,
		"lineitem": 6_000_000, // ≈4 lines per order on average
	}
}

// Rows returns the scaled row count of one table: fixed for region/nation,
// ⌈base·sf⌉ for the rest, with a minimum of 1.
func Rows(table string, sf float64) int {
	base, ok := Cardinalities()[table]
	if !ok {
		return 0
	}
	if table == "region" || table == "nation" {
		return base
	}
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

// Generate produces the full eight-table database at the given scale factor.
// The same (sf, seed) pair always yields identical data.
func Generate(sf float64, seed int64) *relation.Database {
	db := relation.NewDatabase(fmt.Sprintf("tpch-sf%g", sf))
	for _, name := range TableNames {
		db.Put(GenerateTable(name, sf, seed))
	}
	return db
}

// GenerateTable produces a single table at the given scale factor.
func GenerateTable(table string, sf float64, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed ^ int64(hashName(table))))
	n := Rows(table, sf)
	switch table {
	case "region":
		return genRegion(rng)
	case "nation":
		return genNation(rng)
	case "supplier":
		return genSupplier(rng, n)
	case "customer":
		return genCustomer(rng, n)
	case "part":
		return genPart(rng, n)
	case "partsupp":
		return genPartsupp(rng, n, Rows("part", sf), Rows("supplier", sf))
	case "orders":
		return genOrders(rng, n, Rows("customer", sf))
	case "lineitem":
		return genLineitem(rng, n, Rows("orders", sf), Rows("part", sf), Rows("supplier", sf))
	default:
		panic("tpch: unknown table " + table)
	}
}

func hashName(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Table5FDs returns the FD specs of Table 5, one per table, as text to be
// parsed against each table's schema.
func Table5FDs() map[string]string {
	return map[string]string{
		"customer": "c_name -> c_address",
		"lineitem": "l_partkey -> l_suppkey",
		"nation":   "n_name -> n_regionkey",
		"orders":   "o_custkey -> o_orderstatus",
		"part":     "p_name -> p_mfgr",
		"partsupp": "ps_suppkey -> ps_availqty",
		"region":   "r_name -> r_comment",
		"supplier": "s_name -> s_address",
	}
}
