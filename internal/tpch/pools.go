package tpch

import (
	"fmt"
	"math/rand"
)

// Finite text pools. Pool sizes govern FD violation rates: e.g. customer
// names collide (pool ≪ table size), so c_name → c_address is approximate.

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationNames = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
	"ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
	"IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
	"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
	"SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
}

// nationToRegion is the fixed TPC-H nation → region mapping, making
// n_name → n_regionkey exact (its Table 5 processing is milliseconds).
var nationToRegion = []int{
	0, 1, 1, 1, 4, 0, 3, 3, 2, 2,
	4, 4, 2, 4, 0, 0, 0, 1, 2, 3,
	4, 2, 3, 3, 1,
}

var firstNames = []string{
	"amber", "blue", "coral", "dark", "forest", "ghost", "honey",
	"ivory", "jade", "lace", "magenta", "navy", "olive", "pale",
	"rose", "sandy", "smoke", "spring", "steel", "turquoise",
}

var lastNames = []string{
	"almond", "bear", "cat", "deer", "eagle", "fox", "goose",
	"hare", "ibis", "jaguar", "koala", "lion", "mole", "newt",
	"otter", "panda", "quail", "raven", "seal", "wolf",
}

var streets = []string{
	"Boxwood", "Westlane", "Squire", "Napa", "Main", "Tower", "Bay",
	"Cedar", "Dogwood", "Elm", "Fir", "Grove", "Hazel", "Ivy",
	"Juniper", "Kirk", "Laurel", "Maple", "Oak", "Pine",
}

var cities = []string{
	"Alexandria", "Brookside", "Chester", "Dunmore", "Eastport",
	"Fairview", "Glendale", "Harborview", "Irvington", "Jamestown",
	"Kingsport", "Lakeside", "Midvale", "Northfield", "Oakmont",
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}

var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

var orderStatus = []string{"F", "O", "P"}

var mfgrs = []string{"Manufacturer#1", "Manufacturer#2", "Manufacturer#3", "Manufacturer#4", "Manufacturer#5"}

var brands = []string{
	"Brand#11", "Brand#12", "Brand#13", "Brand#21", "Brand#22",
	"Brand#23", "Brand#31", "Brand#32", "Brand#33", "Brand#41",
}

var partAdjectives = []string{
	"antique", "burnished", "chiffon", "dim", "economy", "floral",
	"frosted", "goldenrod", "hot", "ivory", "lavender", "metallic",
	"misty", "pale", "plum", "powder", "puff", "sky", "spring", "steel",
}

var partNouns = []string{
	"almond", "azure", "beige", "bisque", "blanched", "blush",
	"chartreuse", "cornsilk", "cream", "drab", "firebrick", "gainsboro",
	"honeydew", "khaki", "linen", "moccasin", "navajo", "peru", "rosy", "salmon",
}

var partTypes = []string{
	"ECONOMY ANODIZED", "ECONOMY BRUSHED", "LARGE BURNISHED", "LARGE PLATED",
	"MEDIUM POLISHED", "PROMO ANODIZED", "PROMO BURNISHED", "SMALL PLATED",
	"STANDARD BRUSHED", "STANDARD POLISHED",
}

var containers = []string{
	"JUMBO BAG", "JUMBO BOX", "LG CASE", "LG DRUM", "MED BAG",
	"MED BOX", "SM CASE", "SM PACK", "WRAP JAR", "WRAP PKG",
}

var shipInstructs = []string{"COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"}

var shipModes = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}

var returnFlags = []string{"A", "N", "R"}

var lineStatus = []string{"F", "O"}

var commentWords = []string{
	"carefully", "quickly", "furiously", "slyly", "blithely",
	"requests", "deposits", "packages", "accounts", "instructions",
	"sleep", "wake", "nag", "haggle", "integrate",
	"after", "among", "above", "beneath", "according",
	"the", "final", "ironic", "regular", "special",
}

// pick returns a pool element chosen by the rng.
func pick(rng *rand.Rand, pool []string) string {
	return pool[rng.Intn(len(pool))]
}

// personName composes a two-token name from finite pools (400 combinations):
// small enough to collide at customer/supplier cardinalities.
func personName(rng *rand.Rand) string {
	return pick(rng, firstNames) + " " + pick(rng, lastNames)
}

// address composes "<number> <street>, <city>".
func address(rng *rand.Rand) string {
	return fmt.Sprintf("%d %s, %s", 1+rng.Intn(999), pick(rng, streets), pick(rng, cities))
}

// phone composes a TPC-H style phone number.
func phone(rng *rand.Rand, nation int) string {
	return fmt.Sprintf("%d-%03d-%03d-%04d", 10+nation, rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))
}

// comment composes a short pseudo-sentence.
func comment(rng *rand.Rand) string {
	n := 3 + rng.Intn(4)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += pick(rng, commentWords)
	}
	return out
}

// date renders a pseudo-date in [1992, 1998], TPC-H's order window.
func date(rng *rand.Rand) string {
	return fmt.Sprintf("19%02d-%02d-%02d", 92+rng.Intn(7), 1+rng.Intn(12), 1+rng.Intn(28))
}

// money renders a price with two decimals as a float value.
func money(rng *rand.Rand, lo, hi int) float64 {
	cents := lo*100 + rng.Intn((hi-lo)*100)
	return float64(cents) / 100
}
