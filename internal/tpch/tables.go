package tpch

import (
	"fmt"
	"math/rand"

	"github.com/evolvefd/evolvefd/internal/relation"
)

func col(name string, kind relation.Kind) relation.Column {
	return relation.Column{Name: name, Kind: kind}
}

// genRegion: 3 attributes (Table 4: region arity 3, 5 rows).
func genRegion(rng *rand.Rand) *relation.Relation {
	schema := relation.MustSchema(
		col("r_regionkey", relation.KindInt),
		col("r_name", relation.KindString),
		col("r_comment", relation.KindString),
	)
	r := relation.New("region", schema)
	for i, name := range regionNames {
		r.MustAppend(relation.Int(int64(i)), relation.String(name), relation.String(comment(rng)))
	}
	return r
}

// genNation: 4 attributes (25 rows); n_name → n_regionkey is exact.
func genNation(rng *rand.Rand) *relation.Relation {
	schema := relation.MustSchema(
		col("n_nationkey", relation.KindInt),
		col("n_name", relation.KindString),
		col("n_regionkey", relation.KindInt),
		col("n_comment", relation.KindString),
	)
	r := relation.New("nation", schema)
	for i, name := range nationNames {
		r.MustAppend(
			relation.Int(int64(i)),
			relation.String(name),
			relation.Int(int64(nationToRegion[i])),
			relation.String(comment(rng)),
		)
	}
	return r
}

// genSupplier: 7 attributes.
func genSupplier(rng *rand.Rand, n int) *relation.Relation {
	schema := relation.MustSchema(
		col("s_suppkey", relation.KindInt),
		col("s_name", relation.KindString),
		col("s_address", relation.KindString),
		col("s_nationkey", relation.KindInt),
		col("s_phone", relation.KindString),
		col("s_acctbal", relation.KindFloat),
		col("s_comment", relation.KindString),
	)
	r := relation.New("supplier", schema)
	for i := 0; i < n; i++ {
		nation := rng.Intn(len(nationNames))
		r.MustAppend(
			relation.Int(int64(i+1)),
			relation.String(personName(rng)),
			relation.String(address(rng)),
			relation.Int(int64(nation)),
			relation.String(phone(rng, nation)),
			relation.Float(money(rng, -999, 9999)),
			relation.String(comment(rng)),
		)
	}
	return r
}

// genCustomer: 8 attributes.
func genCustomer(rng *rand.Rand, n int) *relation.Relation {
	schema := relation.MustSchema(
		col("c_custkey", relation.KindInt),
		col("c_name", relation.KindString),
		col("c_address", relation.KindString),
		col("c_nationkey", relation.KindInt),
		col("c_phone", relation.KindString),
		col("c_acctbal", relation.KindFloat),
		col("c_mktsegment", relation.KindString),
		col("c_comment", relation.KindString),
	)
	r := relation.New("customer", schema)
	for i := 0; i < n; i++ {
		nation := rng.Intn(len(nationNames))
		r.MustAppend(
			relation.Int(int64(i+1)),
			relation.String(personName(rng)),
			relation.String(address(rng)),
			relation.Int(int64(nation)),
			relation.String(phone(rng, nation)),
			relation.Float(money(rng, -999, 9999)),
			relation.String(pick(rng, segments)),
			relation.String(comment(rng)),
		)
	}
	return r
}

// genPart: 9 attributes.
func genPart(rng *rand.Rand, n int) *relation.Relation {
	schema := relation.MustSchema(
		col("p_partkey", relation.KindInt),
		col("p_name", relation.KindString),
		col("p_mfgr", relation.KindString),
		col("p_brand", relation.KindString),
		col("p_type", relation.KindString),
		col("p_size", relation.KindInt),
		col("p_container", relation.KindString),
		col("p_retailprice", relation.KindFloat),
		col("p_comment", relation.KindString),
	)
	r := relation.New("part", schema)
	for i := 0; i < n; i++ {
		r.MustAppend(
			relation.Int(int64(i+1)),
			relation.String(pick(rng, partAdjectives)+" "+pick(rng, partNouns)),
			relation.String(pick(rng, mfgrs)),
			relation.String(pick(rng, brands)),
			relation.String(pick(rng, partTypes)),
			relation.Int(int64(1+rng.Intn(50))),
			relation.String(pick(rng, containers)),
			relation.Float(money(rng, 900, 2100)),
			relation.String(comment(rng)),
		)
	}
	return r
}

// genPartsupp: 5 attributes; ps rows pair parts with suppliers.
func genPartsupp(rng *rand.Rand, n, parts, suppliers int) *relation.Relation {
	schema := relation.MustSchema(
		col("ps_partkey", relation.KindInt),
		col("ps_suppkey", relation.KindInt),
		col("ps_availqty", relation.KindInt),
		col("ps_supplycost", relation.KindFloat),
		col("ps_comment", relation.KindString),
	)
	r := relation.New("partsupp", schema)
	for i := 0; i < n; i++ {
		// Four suppliers per part, TPC-H style: partkey cycles, suppkey
		// derived with an offset so pairs are unique.
		part := i/4 + 1
		if part > parts {
			part = 1 + rng.Intn(parts)
		}
		supp := 1 + (part+(i%4)*(suppliers/4+1))%suppliers
		r.MustAppend(
			relation.Int(int64(part)),
			relation.Int(int64(supp)),
			relation.Int(int64(1+rng.Intn(9999))),
			relation.Float(money(rng, 1, 1000)),
			relation.String(comment(rng)),
		)
	}
	return r
}

// genOrders: 9 attributes.
func genOrders(rng *rand.Rand, n, customers int) *relation.Relation {
	schema := relation.MustSchema(
		col("o_orderkey", relation.KindInt),
		col("o_custkey", relation.KindInt),
		col("o_orderstatus", relation.KindString),
		col("o_totalprice", relation.KindFloat),
		col("o_orderdate", relation.KindString),
		col("o_orderpriority", relation.KindString),
		col("o_clerk", relation.KindString),
		col("o_shippriority", relation.KindInt),
		col("o_comment", relation.KindString),
	)
	r := relation.New("orders", schema)
	clerks := customers/10 + 1
	for i := 0; i < n; i++ {
		r.MustAppend(
			relation.Int(int64(i+1)),
			relation.Int(int64(1+rng.Intn(customers))),
			relation.String(pick(rng, orderStatus)),
			relation.Float(money(rng, 800, 500000)),
			relation.String(date(rng)),
			relation.String(pick(rng, priorities)),
			relation.String(fmt.Sprintf("Clerk#%09d", 1+rng.Intn(clerks))),
			relation.Int(0),
			relation.String(comment(rng)),
		)
	}
	return r
}

// genLineitem: 16 attributes — the widest and largest table, dominating the
// Table 5 runtimes exactly as in the paper.
func genLineitem(rng *rand.Rand, n, orders, parts, suppliers int) *relation.Relation {
	schema := relation.MustSchema(
		col("l_orderkey", relation.KindInt),
		col("l_partkey", relation.KindInt),
		col("l_suppkey", relation.KindInt),
		col("l_linenumber", relation.KindInt),
		col("l_quantity", relation.KindInt),
		col("l_extendedprice", relation.KindFloat),
		col("l_discount", relation.KindFloat),
		col("l_tax", relation.KindFloat),
		col("l_returnflag", relation.KindString),
		col("l_linestatus", relation.KindString),
		col("l_shipdate", relation.KindString),
		col("l_commitdate", relation.KindString),
		col("l_receiptdate", relation.KindString),
		col("l_shipinstruct", relation.KindString),
		col("l_shipmode", relation.KindString),
		col("l_comment", relation.KindString),
	)
	r := relation.New("lineitem", schema)
	order, line := 1, 1
	for i := 0; i < n; i++ {
		if line > 1+rng.Intn(7) || order > orders {
			order++
			line = 1
			if order > orders {
				order = 1 + rng.Intn(orders)
			}
		}
		part := 1 + rng.Intn(parts)
		// Each part ships from one of 4 suppliers → l_partkey → l_suppkey
		// is approximate with confidence ≈ 1/4·…, like the real TPC-H
		// relationship the paper's 2-hour lineitem row stems from.
		supp := 1 + (part+(rng.Intn(4))*(suppliers/4+1))%suppliers
		r.MustAppend(
			relation.Int(int64(order)),
			relation.Int(int64(part)),
			relation.Int(int64(supp)),
			relation.Int(int64(line)),
			relation.Int(int64(1+rng.Intn(50))),
			relation.Float(money(rng, 900, 100000)),
			relation.Float(float64(rng.Intn(11))/100),
			relation.Float(float64(rng.Intn(9))/100),
			relation.String(pick(rng, returnFlags)),
			relation.String(pick(rng, lineStatus)),
			relation.String(date(rng)),
			relation.String(date(rng)),
			relation.String(date(rng)),
			relation.String(pick(rng, shipInstructs)),
			relation.String(pick(rng, shipModes)),
			relation.String(comment(rng)),
		)
		line++
	}
	return r
}
