// Package query implements a small SQL engine over internal/relation: a
// lexer, a recursive-descent parser and an executor for the query shapes
// the paper's prototype issued against MySQL, most importantly
//
//	SELECT COUNT(DISTINCT a, b) FROM t
//
// (§4.4: "the computation of confidence and goodness can be implemented
// using SQL queries" — the section shows the exact query pair for F1's
// confidence) plus enough of SELECT/WHERE/GROUP BY/ORDER BY/LIMIT to
// inspect violating tuples interactively, the workflow §6 describes.
//
// The package also provides a pli.Counter implementation that routes every
// cardinality through SQL text — the ablation baseline closest to the
// paper's actual implementation, priced against the PLI, hash and sort
// strategies in internal/bench. Counting respects tombstones: deleted rows
// are invisible to every query, like in the rest of the system.
package query
