package query

import (
	"strings"
	"testing"

	"github.com/evolvefd/evolvefd/internal/relation"
)

// FuzzParse feeds arbitrary text through the lexer and parser: neither may
// panic, and any statement that parses must re-parse from its canonical
// String() form (idempotent round-trip). Run long with:
//
//	go test -fuzz=FuzzParse ./internal/query
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT COUNT(DISTINCT District, Region) FROM Places",
		"SELECT a, b FROM t WHERE x = 1 AND y <> 'z' ORDER BY a DESC LIMIT 3",
		"SELECT DISTINCT a FROM t WHERE n IS NOT NULL",
		"SELECT state, COUNT(*) AS n FROM places GROUP BY state",
		"SELECT COUNT(*) FROM t WHERE (a = 1 OR b = 2) AND NOT c = 3",
		"select `q col` from t where s = 'it''s'",
		"SELECT",
		") FROM (",
		"SELECT ; --",
		"SELECT a FROM t WHERE x >= -1.5",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		canonical := stmt.String()
		again, err := Parse(canonical)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canonical, input, err)
		}
		if again.String() != canonical {
			t.Fatalf("String() not a fixed point: %q → %q", canonical, again.String())
		}
	})
}

// FuzzExecute runs parsed statements against a small database: execution
// must never panic regardless of the statement shape.
func FuzzExecute(f *testing.F) {
	schema := relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindString},
		relation.Column{Name: "b", Kind: relation.KindInt},
	)
	rel := relation.New("t", schema)
	rel.MustAppend(relation.String("x"), relation.Int(1))
	rel.MustAppend(relation.Null, relation.Int(2))
	db := relation.NewDatabase("fuzz")
	db.Put(rel)

	seeds := []string{
		"SELECT a FROM t",
		"SELECT COUNT(DISTINCT a, b) FROM t",
		"SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a LIMIT 1",
		"SELECT b FROM t WHERE a IS NULL OR b > 0",
		"SELECT a FROM missing",
		"SELECT ghost FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if strings.Count(input, "(") > 50 {
			return // bound recursive descent depth on pathological input
		}
		res, err := Run(db, input)
		if err != nil {
			return
		}
		_ = res.Format() // rendering must not panic either
	})
}
