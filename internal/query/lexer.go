package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokComma
	tokLParen
	tokRParen
	tokStar
	tokOp // = <> != < <= > >=
)

// keywords recognised case-insensitively.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "COUNT": true, "FROM": true,
	"WHERE": true, "AND": true, "OR": true, "NOT": true, "GROUP": true,
	"BY": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"IS": true, "NULL": true, "AS": true,
}

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers verbatim
	pos  int    // byte offset in the input, for error messages
}

// lexer splits SQL text into tokens.
type lexer struct {
	input string
	pos   int
}

func newLexer(input string) *lexer { return &lexer{input: input} }

// lexAll tokenises the whole input.
func (l *lexer) lexAll() ([]token, error) {
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) && unicode.IsSpace(rune(l.input[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.input) && (l.input[l.pos] == '=' || l.input[l.pos] == '>') {
			l.pos++
			return token{kind: tokOp, text: l.input[start:l.pos], pos: start}, nil
		}
		return token{kind: tokOp, text: "<", pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.input) && l.input[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: ">=", pos: start}, nil
		}
		return token{kind: tokOp, text: ">", pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.input) && l.input[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{}, fmt.Errorf("query: stray '!' at offset %d", start)
	case c == '\'':
		return l.lexString()
	case c == '"' || c == '`':
		return l.lexQuotedIdent(c)
	case unicode.IsDigit(rune(c)) || (c == '-' && l.pos+1 < len(l.input) && unicode.IsDigit(rune(l.input[l.pos+1]))):
		return l.lexNumber()
	case unicode.IsLetter(rune(c)) || c == '_':
		return l.lexWord()
	default:
		return token{}, fmt.Errorf("query: unexpected character %q at offset %d", c, start)
	}
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == '\'' {
			// '' escapes a quote, SQL style.
			if l.pos+1 < len(l.input) && l.input[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, fmt.Errorf("query: unterminated string starting at offset %d", start)
}

func (l *lexer) lexQuotedIdent(quote byte) (token, error) {
	start := l.pos
	l.pos++
	from := l.pos
	for l.pos < len(l.input) && l.input[l.pos] != quote {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return token{}, fmt.Errorf("query: unterminated quoted identifier at offset %d", start)
	}
	text := l.input[from:l.pos]
	l.pos++
	return token{kind: tokIdent, text: text, pos: start}, nil
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	if l.input[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if !unicode.IsDigit(rune(c)) {
			break
		}
		l.pos++
	}
	return token{kind: tokNumber, text: l.input[start:l.pos], pos: start}, nil
}

func (l *lexer) lexWord() (token, error) {
	start := l.pos
	for l.pos < len(l.input) {
		c := rune(l.input[l.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.pos++
	}
	word := l.input[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		return token{kind: tokKeyword, text: upper, pos: start}, nil
	}
	return token{kind: tokIdent, text: word, pos: start}, nil
}
