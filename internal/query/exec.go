package query

import (
	"fmt"
	"sort"
	"strings"

	"github.com/evolvefd/evolvefd/internal/relation"
)

// Result is the output of executing a statement: named columns and rows of
// values.
type Result struct {
	Columns []string
	Rows    [][]relation.Value
}

// Run parses and executes SQL text against a database.
func Run(db *relation.Database, sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Execute(db, stmt)
}

// Execute runs a parsed statement against a database.
func Execute(db *relation.Database, stmt *SelectStmt) (*Result, error) {
	rel, err := db.Get(stmt.From)
	if err != nil {
		return nil, err
	}
	if err := resolveStmt(rel, stmt); err != nil {
		return nil, err
	}

	rows, err := filterRows(rel, stmt.Where)
	if err != nil {
		return nil, err
	}

	hasAggregate := false
	for _, item := range stmt.Items {
		if item.Count != nil {
			hasAggregate = true
		}
	}

	var res *Result
	switch {
	case hasAggregate && len(stmt.GroupBy) == 0:
		res, err = execGlobalAggregate(rel, stmt, rows)
	case len(stmt.GroupBy) > 0:
		res, err = execGroupBy(rel, stmt, rows)
	default:
		res, err = execPlainSelect(rel, stmt, rows)
	}
	if err != nil {
		return nil, err
	}

	if err := orderResult(res, stmt.OrderBy); err != nil {
		return nil, err
	}
	if stmt.Limit >= 0 && stmt.Limit < len(res.Rows) {
		res.Rows = res.Rows[:stmt.Limit]
	}
	return res, nil
}

// resolveStmt binds every column reference to its schema position.
func resolveStmt(rel *relation.Relation, stmt *SelectStmt) error {
	resolve := func(c *ColumnRef) error {
		idx := rel.Schema().Index(c.Name)
		if idx < 0 {
			return fmt.Errorf("query: unknown column %q in table %s", c.Name, rel.Name())
		}
		c.index = idx
		return nil
	}
	for _, item := range stmt.Items {
		if item.Column != nil {
			if err := resolve(item.Column); err != nil {
				return err
			}
		}
		if item.Count != nil {
			for _, c := range item.Count.Cols {
				if err := resolve(c); err != nil {
					return err
				}
			}
		}
	}
	for _, g := range stmt.GroupBy {
		if err := resolve(g); err != nil {
			return err
		}
	}
	if stmt.Where != nil {
		if err := resolveExpr(rel, stmt.Where); err != nil {
			return err
		}
	}
	// Plain columns must be grouped when GROUP BY is present.
	if len(stmt.GroupBy) > 0 {
		grouped := map[int]bool{}
		for _, g := range stmt.GroupBy {
			grouped[g.index] = true
		}
		for _, item := range stmt.Items {
			if item.Column != nil && !grouped[item.Column.index] {
				return fmt.Errorf("query: column %q must appear in GROUP BY", item.Column.Name)
			}
		}
	}
	return nil
}

func resolveExpr(rel *relation.Relation, e Expr) error {
	switch v := e.(type) {
	case *ColumnRef:
		idx := rel.Schema().Index(v.Name)
		if idx < 0 {
			return fmt.Errorf("query: unknown column %q in table %s", v.Name, rel.Name())
		}
		v.index = idx
	case *Binary:
		if err := resolveExpr(rel, v.Left); err != nil {
			return err
		}
		return resolveExpr(rel, v.Right)
	case *Not:
		return resolveExpr(rel, v.Inner)
	case *IsNull:
		return resolveExpr(rel, v.Inner)
	}
	return nil
}

// filterRows returns the live row indices passing the WHERE clause
// (tombstoned rows are invisible to SQL, like in any DBMS).
func filterRows(rel *relation.Relation, where Expr) ([]int, error) {
	rows := make([]int, 0, rel.LiveRows())
	for row := 0; row < rel.NumRows(); row++ {
		if rel.IsDeleted(row) {
			continue
		}
		if where == nil || truthy(where.eval(rel, row)) {
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func outputName(item *SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if item.Count != nil {
		return item.Count.String()
	}
	return item.Column.Name
}

// execGlobalAggregate handles SELECT COUNT(...) [, COUNT(...)] FROM t: one
// output row.
func execGlobalAggregate(rel *relation.Relation, stmt *SelectStmt, rows []int) (*Result, error) {
	res := &Result{}
	out := make([]relation.Value, len(stmt.Items))
	for i, item := range stmt.Items {
		if item.Count == nil {
			return nil, fmt.Errorf("query: mixing plain columns with aggregates requires GROUP BY")
		}
		res.Columns = append(res.Columns, outputName(item))
		out[i] = relation.Int(int64(countRows(rel, item.Count, rows)))
	}
	res.Rows = [][]relation.Value{out}
	return res, nil
}

// countRows evaluates one COUNT spec over the given rows.
func countRows(rel *relation.Relation, spec *CountSpec, rows []int) int {
	if spec.Star {
		return len(rows)
	}
	if !spec.Distinct {
		// COUNT(col): non-NULL values.
		n := 0
		for _, row := range rows {
			if !rel.Value(row, spec.Cols[0].index).IsNull() {
				n++
			}
		}
		return n
	}
	seen := make(map[string]struct{}, len(rows))
	var key []byte
	for _, row := range rows {
		key = key[:0]
		allNull := true
		for _, c := range spec.Cols {
			code := rel.ColumnCodes(c.index)[row]
			if code != rel.NullCode() {
				allNull = false
			}
			key = append(key, byte(code), byte(code>>8), byte(code>>16), byte(code>>24))
		}
		// COUNT(DISTINCT a) skips NULLs per SQL; for multi-column tuples we
		// skip only all-NULL tuples and let partial NULLs form groups (the
		// engine's documented deviation from MySQL, which drops a tuple on
		// any NULL — FD attributes are NULL-free so the difference never
		// reaches the measures; query.Counter compensates for the all-NULL
		// case).
		if allNull {
			continue
		}
		seen[string(key)] = struct{}{}
	}
	return len(seen)
}

// execGroupBy handles grouped aggregates and grouped plain columns.
func execGroupBy(rel *relation.Relation, stmt *SelectStmt, rows []int) (*Result, error) {
	res := &Result{}
	for _, item := range stmt.Items {
		res.Columns = append(res.Columns, outputName(item))
	}
	groups := make(map[string][]int)
	var order []string
	var key []byte
	for _, row := range rows {
		key = key[:0]
		for _, g := range stmt.GroupBy {
			code := rel.ColumnCodes(g.index)[row]
			key = append(key, byte(code), byte(code>>8), byte(code>>16), byte(code>>24))
		}
		k := string(key)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], row)
	}
	for _, k := range order {
		members := groups[k]
		out := make([]relation.Value, len(stmt.Items))
		for i, item := range stmt.Items {
			if item.Count != nil {
				out[i] = relation.Int(int64(countRows(rel, item.Count, members)))
			} else {
				out[i] = rel.Value(members[0], item.Column.index)
			}
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// execPlainSelect handles projection with optional DISTINCT.
func execPlainSelect(rel *relation.Relation, stmt *SelectStmt, rows []int) (*Result, error) {
	res := &Result{}
	for _, item := range stmt.Items {
		res.Columns = append(res.Columns, outputName(item))
	}
	seen := make(map[string]struct{})
	var key []byte
	for _, row := range rows {
		out := make([]relation.Value, len(stmt.Items))
		for i, item := range stmt.Items {
			out[i] = rel.Value(row, item.Column.index)
		}
		if stmt.Distinct {
			key = key[:0]
			for _, item := range stmt.Items {
				code := rel.ColumnCodes(item.Column.index)[row]
				key = append(key, byte(code), byte(code>>8), byte(code>>16), byte(code>>24))
			}
			if _, dup := seen[string(key)]; dup {
				continue
			}
			seen[string(key)] = struct{}{}
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// orderResult sorts rows by the ORDER BY keys, which reference output column
// names.
func orderResult(res *Result, keys []OrderKey) error {
	if len(keys) == 0 {
		return nil
	}
	idx := make([]int, len(keys))
	for i, k := range keys {
		found := -1
		for j, name := range res.Columns {
			if strings.EqualFold(name, k.Column) {
				found = j
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("query: ORDER BY column %q is not in the output", k.Column)
		}
		idx[i] = found
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for i, k := range keys {
			cmp := compareValues(res.Rows[a][idx[i]], res.Rows[b][idx[i]])
			if cmp != 0 {
				if k.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	return nil
}

// Format renders a result as an aligned text table for the REPL.
func (r *Result) Format() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			if v.IsNull() {
				s = "NULL"
			}
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
