package query

import (
	"strings"
	"testing"

	"github.com/evolvefd/evolvefd/internal/relation"
)

func testDB(t testing.TB) *relation.Database {
	t.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "city", Kind: relation.KindString},
		relation.Column{Name: "state", Kind: relation.KindString},
		relation.Column{Name: "pop", Kind: relation.KindInt},
		relation.Column{Name: "note", Kind: relation.KindString},
	)
	r := relation.New("places", schema)
	rows := []struct {
		city, state string
		pop         int64
		note        relation.Value
	}{
		{"NY", "NY", 8000, relation.String("big")},
		{"Boston", "MA", 700, relation.Null},
		{"Chicago", "IL", 2700, relation.String("windy")},
		{"Chester", "IL", 34, relation.Null},
		{"NY", "NY", 8000, relation.String("dup")},
	}
	for _, row := range rows {
		r.MustAppend(relation.String(row.city), relation.String(row.state),
			relation.Int(row.pop), row.note)
	}
	db := relation.NewDatabase("test")
	db.Put(r)
	return db
}

func mustRun(t *testing.T, db *relation.Database, sql string) *Result {
	t.Helper()
	res, err := Run(db, sql)
	if err != nil {
		t.Fatalf("Run(%q): %v", sql, err)
	}
	return res
}

func TestSelectAllColumns(t *testing.T) {
	db := testDB(t)
	res := mustRun(t, db, "SELECT city, state FROM places")
	if len(res.Rows) != 5 || len(res.Columns) != 2 {
		t.Fatalf("shape = %dx%d", len(res.Rows), len(res.Columns))
	}
	if res.Columns[0] != "city" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestSelectDistinct(t *testing.T) {
	db := testDB(t)
	res := mustRun(t, db, "SELECT DISTINCT city, state FROM places")
	if len(res.Rows) != 4 {
		t.Fatalf("distinct rows = %d, want 4", len(res.Rows))
	}
}

func TestWhereFilters(t *testing.T) {
	db := testDB(t)
	res := mustRun(t, db, "SELECT city FROM places WHERE state = 'IL'")
	if len(res.Rows) != 2 {
		t.Fatalf("IL rows = %d, want 2", len(res.Rows))
	}
	res = mustRun(t, db, "SELECT city FROM places WHERE pop > 1000 AND state <> 'IL'")
	if len(res.Rows) != 2 { // the two NY rows
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	res = mustRun(t, db, "SELECT city FROM places WHERE pop < 100 OR pop >= 8000")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	res = mustRun(t, db, "SELECT city FROM places WHERE NOT (state = 'IL')")
	if len(res.Rows) != 3 {
		t.Fatalf("NOT rows = %d, want 3", len(res.Rows))
	}
}

func TestWhereIsNull(t *testing.T) {
	db := testDB(t)
	res := mustRun(t, db, "SELECT city FROM places WHERE note IS NULL")
	if len(res.Rows) != 2 {
		t.Fatalf("IS NULL rows = %d, want 2", len(res.Rows))
	}
	res = mustRun(t, db, "SELECT city FROM places WHERE note IS NOT NULL")
	if len(res.Rows) != 3 {
		t.Fatalf("IS NOT NULL rows = %d, want 3", len(res.Rows))
	}
	// Comparisons against NULL are never true.
	res = mustRun(t, db, "SELECT city FROM places WHERE note = 'big' OR note <> 'big'")
	if len(res.Rows) != 3 {
		t.Fatalf("NULL comparison rows = %d, want 3 (NULLs excluded)", len(res.Rows))
	}
}

func TestCountStar(t *testing.T) {
	db := testDB(t)
	res := mustRun(t, db, "SELECT COUNT(*) FROM places")
	if got := res.Rows[0][0].AsInt(); got != 5 {
		t.Fatalf("COUNT(*) = %d", got)
	}
	res = mustRun(t, db, "SELECT COUNT(*) FROM places WHERE state = 'IL'")
	if got := res.Rows[0][0].AsInt(); got != 2 {
		t.Fatalf("filtered COUNT(*) = %d", got)
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	db := testDB(t)
	res := mustRun(t, db, "SELECT COUNT(note) FROM places")
	if got := res.Rows[0][0].AsInt(); got != 3 {
		t.Fatalf("COUNT(note) = %d, want 3 (NULLs skipped)", got)
	}
}

func TestCountDistinct(t *testing.T) {
	db := testDB(t)
	// The paper's exact query shape (§4.4, Q1/Q2).
	res := mustRun(t, db, "SELECT COUNT(DISTINCT city, state) FROM places")
	if got := res.Rows[0][0].AsInt(); got != 4 {
		t.Fatalf("COUNT(DISTINCT city,state) = %d, want 4", got)
	}
	res = mustRun(t, db, "SELECT COUNT(DISTINCT state) FROM places")
	if got := res.Rows[0][0].AsInt(); got != 3 {
		t.Fatalf("COUNT(DISTINCT state) = %d, want 3", got)
	}
	// Multiple aggregates in one statement.
	res = mustRun(t, db, "SELECT COUNT(DISTINCT city) AS c, COUNT(*) AS n FROM places")
	if res.Columns[0] != "c" || res.Columns[1] != "n" {
		t.Fatalf("aliases = %v", res.Columns)
	}
	if res.Rows[0][0].AsInt() != 4 || res.Rows[0][1].AsInt() != 5 {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestGroupBy(t *testing.T) {
	db := testDB(t)
	res := mustRun(t, db, "SELECT state, COUNT(*) AS n FROM places GROUP BY state ORDER BY n DESC, state")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Rows))
	}
	if res.Rows[0][0].AsString() != "IL" && res.Rows[0][1].AsInt() != 2 {
		t.Fatalf("first group = %v", res.Rows[0])
	}
	// Grouped COUNT DISTINCT — the violation-inspection query.
	res = mustRun(t, db, "SELECT state, COUNT(DISTINCT city) AS cities FROM places GROUP BY state ORDER BY cities DESC")
	if res.Rows[0][1].AsInt() != 2 { // IL has Chicago+Chester
		t.Fatalf("top group = %v", res.Rows[0])
	}
}

func TestGroupByRequiresGroupedColumns(t *testing.T) {
	db := testDB(t)
	if _, err := Run(db, "SELECT city, COUNT(*) FROM places GROUP BY state"); err == nil {
		t.Fatal("ungrouped projection must be rejected")
	}
}

func TestOrderByLimit(t *testing.T) {
	db := testDB(t)
	res := mustRun(t, db, "SELECT city, pop FROM places ORDER BY pop DESC LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].AsInt() != 8000 {
		t.Fatalf("top pop = %v", res.Rows[0][1])
	}
	res = mustRun(t, db, "SELECT city FROM places ORDER BY city LIMIT 0")
	if len(res.Rows) != 0 {
		t.Fatal("LIMIT 0 must return nothing")
	}
	if _, err := Run(db, "SELECT city FROM places ORDER BY pop"); err == nil {
		t.Fatal("ORDER BY on a column missing from output must error")
	}
}

func TestParseErrors(t *testing.T) {
	db := testDB(t)
	for _, bad := range []string{
		"",
		"SELEC city FROM places",
		"SELECT FROM places",
		"SELECT city places",
		"SELECT city FROM",
		"SELECT city FROM places WHERE",
		"SELECT city FROM places WHERE city =",
		"SELECT city FROM places LIMIT x",
		"SELECT city FROM places trailing",
		"SELECT COUNT(city, state) FROM places", // multi-col needs DISTINCT
		"SELECT city FROM places WHERE city = 'unterminated",
		"SELECT ghost FROM places",
		"SELECT city FROM ghost_table",
		"SELECT city FROM places WHERE ghost = 1",
		"SELECT city FROM places GROUP BY ghost",
	} {
		if _, err := Run(db, bad); err == nil {
			t.Errorf("Run(%q) should fail", bad)
		}
	}
}

func TestLexerCoverage(t *testing.T) {
	toks, err := newLexer("SELECT a, b FROM t WHERE x >= -1.5 AND y != 'it''s' OR `q col` <> 2").lexAll()
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Fatal("missing EOF")
	}
	// The escaped string must contain a single quote.
	found := false
	for _, tok := range toks {
		if tok.kind == tokString && tok.text == "it's" {
			found = true
		}
	}
	if !found {
		t.Fatal("string escape '' not handled")
	}
	if _, err := newLexer("SELECT ; FROM t").lexAll(); err == nil {
		t.Fatal("stray ';' must be a lex error")
	}
	if _, err := newLexer("a ! b").lexAll(); err == nil {
		t.Fatal("stray '!' must be a lex error")
	}
}

func TestStatementString(t *testing.T) {
	stmt, err := Parse("SELECT DISTINCT city, state FROM places WHERE pop > 10 AND note IS NOT NULL ORDER BY city DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	text := stmt.String()
	for _, want := range []string{"SELECT DISTINCT", "FROM places", "WHERE", "IS NOT NULL", "ORDER BY city DESC", "LIMIT 3"} {
		if !strings.Contains(text, want) {
			t.Fatalf("String() = %q missing %q", text, want)
		}
	}
	// Round-trip: the canonical text must re-parse.
	if _, err := Parse(text); err != nil {
		t.Fatalf("canonical text does not re-parse: %v", err)
	}
	stmt2, _ := Parse("SELECT COUNT(DISTINCT a, b) AS n FROM t GROUP BY a")
	if !strings.Contains(stmt2.String(), "COUNT(DISTINCT a, b) AS n") {
		t.Fatalf("count String() = %q", stmt2.String())
	}
}

func TestResultFormat(t *testing.T) {
	db := testDB(t)
	res := mustRun(t, db, "SELECT city, note FROM places ORDER BY city LIMIT 3")
	text := res.Format()
	if !strings.Contains(text, "NULL") {
		t.Fatalf("NULL rendering missing:\n%s", text)
	}
	if !strings.Contains(text, "city") || !strings.Contains(text, "---") {
		t.Fatalf("header/separator missing:\n%s", text)
	}
}
