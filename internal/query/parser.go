package query

import (
	"fmt"
	"strconv"

	"github.com/evolvefd/evolvefd/internal/relation"
)

// Parse parses one SELECT statement.
func Parse(input string) (*SelectStmt, error) {
	toks, err := newLexer(input).lexAll()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, fmt.Errorf("query: trailing input at offset %d: %q", p.peek().pos, p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) at(kind tokenKind) bool { return p.peek().kind == kind }

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return fmt.Errorf("query: expected %s at offset %d, got %q", kw, p.peek().pos, p.peek().text)
	}
	p.advance()
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if !p.at(kind) {
		return token{}, fmt.Errorf("query: expected %s at offset %d, got %q", what, p.peek().pos, p.peek().text)
	}
	return p.advance(), nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if p.atKeyword("DISTINCT") {
		p.advance()
		stmt.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.at(tokComma) {
			break
		}
		p.advance()
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.expect(tokIdent, "table name")
	if err != nil {
		return nil, err
	}
	stmt.From = from.text

	if p.atKeyword("WHERE") {
		p.advance()
		stmt.Where, err = p.parseOr()
		if err != nil {
			return nil, err
		}
	}
	if p.atKeyword("GROUP") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expect(tokIdent, "group-by column")
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, &ColumnRef{Name: col.text})
			if !p.at(tokComma) {
				break
			}
			p.advance()
		}
	}
	if p.atKeyword("ORDER") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expect(tokIdent, "order-by column")
			if err != nil {
				return nil, err
			}
			key := OrderKey{Column: col.text}
			if p.atKeyword("DESC") {
				p.advance()
				key.Desc = true
			} else if p.atKeyword("ASC") {
				p.advance()
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if !p.at(tokComma) {
				break
			}
			p.advance()
		}
	}
	if p.atKeyword("LIMIT") {
		p.advance()
		num, err := p.expect(tokNumber, "limit count")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(num.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("query: invalid LIMIT %q", num.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (*SelectItem, error) {
	var item *SelectItem
	if p.atKeyword("COUNT") {
		p.advance()
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		spec := &CountSpec{}
		if p.at(tokStar) {
			p.advance()
			spec.Star = true
		} else {
			if p.atKeyword("DISTINCT") {
				p.advance()
				spec.Distinct = true
			}
			for {
				col, err := p.expect(tokIdent, "column in COUNT")
				if err != nil {
					return nil, err
				}
				spec.Cols = append(spec.Cols, &ColumnRef{Name: col.text})
				if !p.at(tokComma) {
					break
				}
				p.advance()
			}
			if len(spec.Cols) > 1 && !spec.Distinct {
				return nil, fmt.Errorf("query: COUNT of multiple columns requires DISTINCT")
			}
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		item = &SelectItem{Count: spec}
	} else {
		col, err := p.expect(tokIdent, "column name")
		if err != nil {
			return nil, err
		}
		item = &SelectItem{Column: &ColumnRef{Name: col.text}}
	}
	if p.atKeyword("AS") {
		p.advance()
		alias, err := p.expect(tokIdent, "alias")
		if err != nil {
			return nil, err
		}
		item.Alias = alias.text
	}
	return item, nil
}

// parseOr handles: or := and (OR and)*
func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

// parseAnd handles: and := unary (AND unary)*
func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

// parseUnary handles NOT and parenthesised predicates.
func (p *parser) parseUnary() (Expr, error) {
	if p.atKeyword("NOT") {
		p.advance()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{Inner: inner}, nil
	}
	if p.at(tokLParen) {
		p.advance()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseComparison()
}

// parseComparison handles: operand (op operand | IS [NOT] NULL)
func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.atKeyword("IS") {
		p.advance()
		negate := false
		if p.atKeyword("NOT") {
			p.advance()
			negate = true
		}
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{Inner: left, Negate: negate}, nil
	}
	op, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return nil, err
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &Binary{Op: op.text, Left: left, Right: right}, nil
}

func (p *parser) parseOperand() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		p.advance()
		return &ColumnRef{Name: t.text}, nil
	case tokNumber:
		p.advance()
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return &Literal{Value: relation.Int(i)}, nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad number %q at offset %d", t.text, t.pos)
		}
		return &Literal{Value: relation.Float(f)}, nil
	case tokString:
		p.advance()
		return &Literal{Value: relation.String(t.text)}, nil
	case tokKeyword:
		if t.text == "NULL" {
			p.advance()
			return &Literal{Value: relation.Null}, nil
		}
	}
	return nil, fmt.Errorf("query: expected operand at offset %d, got %q", t.pos, t.text)
}
