package query

import (
	"math/rand"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// Counter must satisfy pli.Counter.
var _ pli.Counter = (*Counter)(nil)

func randomRelation(rng *rand.Rand, rows, cols, domain int, nullRate float64) *relation.Relation {
	names := make([]string, cols)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	schema, _ := relation.SchemaOf(names...)
	r := relation.New("rand", schema)
	row := make([]relation.Value, cols)
	for i := 0; i < rows; i++ {
		for c := range row {
			if rng.Float64() < nullRate {
				row[c] = relation.Null
			} else {
				row[c] = relation.String(string(rune('A' + rng.Intn(domain))))
			}
		}
		r.MustAppend(row...)
	}
	return r
}

// TestQuickSQLCounterMatchesPLI: the SQL text route must produce the same
// cardinalities as the PLI, hash and sort strategies for random relations
// and attribute sets, including columns with NULLs.
func TestQuickSQLCounterMatchesPLI(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 80; iter++ {
		r := randomRelation(rng, 1+rng.Intn(40), 2+rng.Intn(4), 2+rng.Intn(5), 0.15)
		sqlCounter := NewCounter(r)
		pliCounter := pli.NewPLICounter(r)
		for trial := 0; trial < 6; trial++ {
			var x bitset.Set
			for c := 0; c < r.NumCols(); c++ {
				if rng.Intn(2) == 0 {
					x.Add(c)
				}
			}
			want := pliCounter.Count(x)
			if got := sqlCounter.Count(x); got != want {
				t.Fatalf("iter %d: sql=%d pli=%d for %v", iter, got, want, x)
			}
		}
	}
}

func TestSQLCounterEdgeCases(t *testing.T) {
	schema, _ := relation.SchemaOf("a", "b")
	empty := relation.New("t", schema)
	c := NewCounter(empty)
	if got := c.Count(bitset.New(0)); got != 0 {
		t.Fatalf("count on empty = %d", got)
	}
	if got := c.Count(bitset.Set{}); got != 0 {
		t.Fatalf("count(∅) on empty = %d", got)
	}

	full := relation.New("t", schema)
	full.MustAppend(relation.String("x"), relation.Null)
	full.MustAppend(relation.Null, relation.Null)
	fc := NewCounter(full)
	if got := fc.Count(bitset.Set{}); got != 1 {
		t.Fatalf("count(∅) = %d, want 1", got)
	}
	// Column a: {x, NULL} → 2 groups.
	if got := fc.Count(bitset.New(0)); got != 2 {
		t.Fatalf("count(a) = %d, want 2", got)
	}
	// Column b: all NULL → 1 group.
	if got := fc.Count(bitset.New(1)); got != 1 {
		t.Fatalf("count(b) = %d, want 1", got)
	}
	// Pair: (x,NULL), (NULL,NULL) → 2 groups.
	if got := fc.Count(bitset.New(0, 1)); got != 2 {
		t.Fatalf("count(a,b) = %d, want 2", got)
	}
}

func TestSQLCounterMemoises(t *testing.T) {
	r := randomRelation(rand.New(rand.NewSource(3)), 20, 3, 3, 0)
	c := NewCounter(r)
	x := bitset.New(0, 1)
	first := c.Count(x)
	if len(c.memo) != 1 {
		t.Fatalf("memo size = %d", len(c.memo))
	}
	if second := c.Count(x); second != first {
		t.Fatal("memoised count differs")
	}
	if len(c.memo) != 1 {
		t.Fatal("second call should not grow the memo")
	}
}

func TestSQLCounterWithSpacedColumnNames(t *testing.T) {
	schema := relation.MustSchema(
		relation.Column{Name: "area code", Kind: relation.KindString},
		relation.Column{Name: "Ph No", Kind: relation.KindString},
	)
	r := relation.New("weird names", schema)
	r.MustAppend(relation.String("613"), relation.String("974"))
	r.MustAppend(relation.String("613"), relation.String("299"))
	c := NewCounter(r)
	if got := c.Count(bitset.New(0)); got != 1 {
		t.Fatalf("count(area code) = %d, want 1", got)
	}
	if got := c.Count(bitset.New(0, 1)); got != 2 {
		t.Fatalf("count pair = %d, want 2", got)
	}
}
