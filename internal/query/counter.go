package query

import (
	"fmt"
	"strings"
	"sync"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// Counter implements pli.Counter by issuing SQL COUNT(DISTINCT …) text
// through the full lexer → parser → executor path — the closest analogue of
// the paper's actual implementation, which sent such queries to MySQL (§4.4
// shows the exact query pair for F1's confidence). It exists so the ablation
// benchmarks can price the paper's route against the PLI/hash/sort
// strategies.
type Counter struct {
	rel *relation.Relation
	db  *relation.Database
	mu  sync.Mutex
	// memo caches counts per attribute set: the DBMS's query cache stands
	// in, without which the comparison against the memoising PLI counter
	// would be unfair in the other direction.
	memo map[string]int
}

// NewCounter builds an SQL-backed counter over r.
func NewCounter(r *relation.Relation) *Counter {
	db := relation.NewDatabase("adhoc")
	db.Put(r)
	return &Counter{rel: r, db: db, memo: make(map[string]int)}
}

// Relation returns the bound instance.
func (c *Counter) Relation() *relation.Relation { return c.rel }

// Count returns |π_X(r)| by running SELECT COUNT(DISTINCT …) FROM r.
func (c *Counter) Count(x bitset.Set) int {
	if c.rel.LiveRows() == 0 {
		return 0
	}
	cols := x.Members()
	if len(cols) == 0 {
		return 1
	}
	key := x.Key()
	c.mu.Lock()
	if n, ok := c.memo[key]; ok {
		c.mu.Unlock()
		return n
	}
	c.mu.Unlock()

	names := make([]string, len(cols))
	for i, col := range cols {
		names[i] = quoteIdent(c.rel.Schema().Column(col).Name)
	}
	sql := fmt.Sprintf("SELECT COUNT(DISTINCT %s) FROM %s",
		strings.Join(names, ", "), quoteIdent(c.rel.Name()))
	res, err := Run(c.db, sql)
	if err != nil || len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		// The statement is generated from a valid schema; failure is a
		// programming error, not an input error.
		panic(fmt.Sprintf("query: internal count query failed: %v (%s)", err, sql))
	}
	n := int(res.Rows[0][0].AsInt())
	// SQL COUNT(DISTINCT) skips NULL tuples; the FD measures count NULL as
	// one more group (pli semantics), so add it back when present.
	if anyColumnAllNullGroups(c.rel, cols) {
		n++
	}

	c.mu.Lock()
	c.memo[key] = n
	c.mu.Unlock()
	return n
}

// anyColumnAllNullGroups reports whether some row is NULL in every counted
// column (the tuple SQL drops from COUNT DISTINCT).
func anyColumnAllNullGroups(rel *relation.Relation, cols []int) bool {
	if len(cols) == 1 {
		return rel.HasNulls(cols[0])
	}
	for row := 0; row < rel.NumRows(); row++ {
		if rel.IsDeleted(row) {
			continue
		}
		allNull := true
		for _, c := range cols {
			if !rel.IsNull(row, c) {
				allNull = false
				break
			}
		}
		if allNull {
			return true
		}
	}
	return false
}

// quoteIdent wraps an identifier in backquotes so names with spaces or mixed
// case survive the round-trip through the parser.
func quoteIdent(name string) string { return "`" + name + "`" }
