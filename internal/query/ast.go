package query

import (
	"fmt"
	"strings"

	"github.com/evolvefd/evolvefd/internal/relation"
)

// Expr is a scalar expression evaluated against one row.
type Expr interface {
	fmt.Stringer
	// eval returns the expression value for the given row of r.
	eval(r *relation.Relation, row int) relation.Value
}

// ColumnRef names a column.
type ColumnRef struct {
	Name string
	// index is resolved against the FROM relation before execution.
	index int
}

func (c *ColumnRef) String() string { return formatIdent(c.Name) }

// formatIdent renders an identifier, backquoting it when it is not a plain
// word (or would collide with a keyword), so String() output re-parses.
func formatIdent(name string) string {
	plain := name != ""
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
		case r >= '0' && r <= '9' && i > 0:
		default:
			plain = false
		}
		if !plain {
			break
		}
	}
	if plain && !keywords[strings.ToUpper(name)] {
		return name
	}
	return "`" + name + "`"
}

// escapeString renders a string literal with SQL ” escaping.
func escapeString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

func (c *ColumnRef) eval(r *relation.Relation, row int) relation.Value {
	return r.Value(row, c.index)
}

// Literal is a constant value.
type Literal struct{ Value relation.Value }

func (l *Literal) String() string {
	if l.Value.Kind() == relation.KindString {
		return escapeString(l.Value.AsString())
	}
	if l.Value.IsNull() {
		return "NULL"
	}
	return l.Value.String()
}

func (l *Literal) eval(*relation.Relation, int) relation.Value { return l.Value }

// Binary is a binary operation: comparisons return Bool; AND/OR combine
// Bools. NULL comparisons yield false (SQL's UNKNOWN folded to false).
type Binary struct {
	Op          string // = <> != < <= > >= AND OR
	Left, Right Expr
}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Left, b.Op, b.Right)
}

func (b *Binary) eval(r *relation.Relation, row int) relation.Value {
	switch b.Op {
	case "AND":
		return relation.Bool(truthy(b.Left.eval(r, row)) && truthy(b.Right.eval(r, row)))
	case "OR":
		return relation.Bool(truthy(b.Left.eval(r, row)) || truthy(b.Right.eval(r, row)))
	}
	lv, rv := b.Left.eval(r, row), b.Right.eval(r, row)
	if lv.IsNull() || rv.IsNull() {
		return relation.Bool(false)
	}
	cmp := compareValues(lv, rv)
	switch b.Op {
	case "=":
		return relation.Bool(cmp == 0)
	case "<>", "!=":
		return relation.Bool(cmp != 0)
	case "<":
		return relation.Bool(cmp < 0)
	case "<=":
		return relation.Bool(cmp <= 0)
	case ">":
		return relation.Bool(cmp > 0)
	case ">=":
		return relation.Bool(cmp >= 0)
	default:
		return relation.Bool(false)
	}
}

// compareValues compares across numeric kinds (int vs float) numerically and
// otherwise uses the Value total order.
func compareValues(a, b relation.Value) int {
	na := a.Kind() == relation.KindInt || a.Kind() == relation.KindFloat
	nb := b.Kind() == relation.KindInt || b.Kind() == relation.KindFloat
	if na && nb {
		fa, fb := a.AsFloat(), b.AsFloat()
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return a.Compare(b)
}

func truthy(v relation.Value) bool {
	return v.Kind() == relation.KindBool && v.AsBool()
}

// Not negates a boolean expression.
type Not struct{ Inner Expr }

func (n *Not) String() string { return "(NOT " + n.Inner.String() + ")" }

func (n *Not) eval(r *relation.Relation, row int) relation.Value {
	return relation.Bool(!truthy(n.Inner.eval(r, row)))
}

// IsNull tests a column for NULL (IS NULL / IS NOT NULL).
type IsNull struct {
	Inner  Expr
	Negate bool
}

func (i *IsNull) String() string {
	if i.Negate {
		return "(" + i.Inner.String() + " IS NOT NULL)"
	}
	return "(" + i.Inner.String() + " IS NULL)"
}

func (i *IsNull) eval(r *relation.Relation, row int) relation.Value {
	isNull := i.Inner.eval(r, row).IsNull()
	if i.Negate {
		isNull = !isNull
	}
	return relation.Bool(isNull)
}

// CountSpec describes a COUNT aggregate projection.
type CountSpec struct {
	// Star is COUNT(*).
	Star bool
	// Distinct is COUNT(DISTINCT cols...).
	Distinct bool
	// Cols are the counted columns (empty for Star).
	Cols []*ColumnRef
}

func (c *CountSpec) String() string {
	if c.Star {
		return "COUNT(*)"
	}
	names := make([]string, len(c.Cols))
	for i, col := range c.Cols {
		names[i] = col.String()
	}
	inner := strings.Join(names, ", ")
	if c.Distinct {
		inner = "DISTINCT " + inner
	}
	return "COUNT(" + inner + ")"
}

// SelectItem is one projection: either a plain column or a COUNT aggregate.
type SelectItem struct {
	Column *ColumnRef
	Count  *CountSpec
	// Alias is the output column name when "AS alias" was given.
	Alias string
}

func (s *SelectItem) String() string {
	var base string
	if s.Count != nil {
		base = s.Count.String()
	} else {
		base = s.Column.String()
	}
	if s.Alias != "" {
		base += " AS " + formatIdent(s.Alias)
	}
	return base
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	// Column indexes the output columns (resolved by name or position).
	Column string
	Desc   bool
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Items    []*SelectItem
	Distinct bool // SELECT DISTINCT over plain columns
	From     string
	Where    Expr
	GroupBy  []*ColumnRef
	OrderBy  []OrderKey
	Limit    int // -1 when absent
}

// String reassembles a canonical SQL text for the statement.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	items := make([]string, len(s.Items))
	for i, it := range s.Items {
		items[i] = it.String()
	}
	b.WriteString(strings.Join(items, ", "))
	b.WriteString(" FROM " + formatIdent(s.From))
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		names := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			names[i] = g.String()
		}
		b.WriteString(" GROUP BY " + strings.Join(names, ", "))
	}
	for i, k := range s.OrderBy {
		if i == 0 {
			b.WriteString(" ORDER BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(formatIdent(k.Column))
		if k.Desc {
			b.WriteString(" DESC")
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}
