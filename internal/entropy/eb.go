package entropy

import (
	"sort"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/cluster"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// Candidate is one attribute A evaluated by the EB method as an extension of
// a violated FD X → Y.
type Candidate struct {
	// Attr is the schema position of the candidate attribute A.
	Attr int
	// Homogeneity is H(C_XY | C_XA): zero when C_XA is homogeneous w.r.t.
	// C_XY, i.e. when XA → Y is exact. This is the EB primary sort key.
	Homogeneity float64
	// Completeness is H(C_A | C_XY): zero when every ground-truth class is
	// contained in one C_A class. This is the EB tie-break key.
	Completeness float64
	// VI is the symmetric variation of information VI(C_XY, C_XA), the
	// "slight variation … based on the original definition" used for the
	// ε_VI measure.
	VI float64
}

// Exact reports whether adding the candidate attribute yields an exact FD
// (homogeneity entropy zero).
func (c Candidate) Exact() bool { return c.Homogeneity == 0 }

// ExtendByOne evaluates every attribute of r outside XY (and NULL-free,
// matching the CB method's candidate pool) with the EB ranking of §5: the
// ground truth is the clustering C_XY; candidates are ordered by ascending
// H(C_XY|C_XA), ties by ascending H(C_A|C_XY), final deterministic tie-break
// on schema position.
func ExtendByOne(r *relation.Relation, x, y bitset.Set) []Candidate {
	groundTruth := cluster.New(r, x.Union(y))
	attrs := x.Union(y)
	var out []Candidate
	for col := 0; col < r.NumCols(); col++ {
		if attrs.Contains(col) || r.HasNulls(col) {
			continue
		}
		cxa := cluster.New(r, x.With(col))
		ca := cluster.New(r, bitset.New(col))
		out = append(out, Candidate{
			Attr:         col,
			Homogeneity:  ConditionalEntropy(groundTruth, cxa),
			Completeness: ConditionalEntropy(ca, groundTruth),
			VI:           VariationOfInformation(groundTruth, cxa),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Homogeneity != b.Homogeneity {
			return a.Homogeneity < b.Homogeneity
		}
		if a.Completeness != b.Completeness {
			return a.Completeness < b.Completeness
		}
		return a.Attr < b.Attr
	})
	return out
}

// Repair is the result of the EB greedy repair loop.
type Repair struct {
	// Added lists the attributes appended to the antecedent, in order.
	Added []int
	// Exact is true when the final extended FD is exact.
	Exact bool
	// Steps counts candidate evaluations performed.
	Steps int
}

// GreedyRepair extends X one attribute at a time using the EB ranking until
// the FD becomes exact, no candidates remain, or maxAdded attributes have
// been added (0 means no bound). Chiang & Miller's model extends by a single
// attribute; the greedy loop is the natural iteration of it and mirrors the
// CB method's §4.3 process, which makes the two methods comparable on
// multi-attribute repairs.
func GreedyRepair(r *relation.Relation, x, y bitset.Set, maxAdded int) Repair {
	var rep Repair
	cur := x.Clone()
	for {
		if r.SatisfiesFD(cur, y) {
			rep.Exact = true
			return rep
		}
		if maxAdded > 0 && len(rep.Added) >= maxAdded {
			return rep
		}
		cands := ExtendByOne(r, cur, y)
		rep.Steps += len(cands)
		if len(cands) == 0 {
			return rep
		}
		best := cands[0]
		cur.Add(best.Attr)
		rep.Added = append(rep.Added, best.Attr)
		if best.Exact() {
			rep.Exact = true
			return rep
		}
	}
}

// EpsilonVI returns ε_VI for a dependency X → Y in its general form as
// printed in §5: VI(C_XY, C_Y).
//
// Reproduction finding (see EXPERIMENTS.md): Theorem 1 claims ε_VI and ε_CB
// are equivalent (same null sets). Only one direction holds: ε_CB = 0
// implies ε_VI = 0, but the converse fails whenever C_XY = C_Y while
// C_X ≠ C_XY — i.e. when Y → X is exact but X → Y is not. Concretely, rows
// {(a,y1), (a,y2), (b,y3)} give ε_VI = 0 (every y value determines its
// tuple group) yet confidence 2/3 < 1, so ε_CB > 0. The proof's step
// "∀y ∃!(x,z)" silently assumes the functional direction it is trying to
// establish. EpsilonVIEquivalent is the corrected form for which the
// theorem's statement does hold.
func EpsilonVI(r *relation.Relation, x, y bitset.Set) float64 {
	cxy := cluster.New(r, x.Union(y))
	cy := cluster.New(r, y)
	return VariationOfInformation(cxy, cy)
}

// EpsilonVIExtension returns ε_VI for an extension FZ : XZ → Y of F : X → Y
// as printed in Theorem 1: VI(C_XY, C_XZ). The same one-directional caveat
// as EpsilonVI applies: ε_CB(FZ) = 0 forces this to zero, but
// VI(C_XY, C_XZ) = 0 only forces exactness, not goodness 0 (the gap is
// g = |C_XY| − |C_Y|, which vanishes only when Y determines X).
func EpsilonVIExtension(r *relation.Relation, x, y, z bitset.Set) float64 {
	cxy := cluster.New(r, x.Union(y))
	cxz := cluster.New(r, x.Union(z))
	return VariationOfInformation(cxy, cxz)
}

// EpsilonVIEquivalent returns VI(C_XZ, C_Y), the corrected entropy measure
// that is genuinely equivalent to ε_CB(FZ) for FZ : XZ → Y (pass an empty z
// for F itself):
//
//	VI(C_XZ, C_Y) = 0 ⟺ C_XZ = C_Y ⟺ exact ∧ goodness = 0 ⟺ ε_CB = 0.
//
// Both directions are machine-checked in the property tests.
func EpsilonVIEquivalent(r *relation.Relation, x, y, z bitset.Set) float64 {
	cxz := cluster.New(r, x.Union(z))
	cy := cluster.New(r, y)
	return VariationOfInformation(cxz, cy)
}
