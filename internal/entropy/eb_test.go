package entropy

import (
	"math"
	"math/rand"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/datasets"
	"github.com/evolvefd/evolvefd/internal/pli"
)

func TestEBExtendByOneOnPlacesF1(t *testing.T) {
	// §5: the EB method must also identify Municipal as the best extension
	// of F1 — homogeneous (exact) and complete (VI = 0).
	r := datasets.Places()
	x, _ := r.Schema().IndexSet("District", "Region")
	y, _ := r.Schema().IndexSet("AreaCode")

	cands := ExtendByOne(r, x, y)
	if len(cands) != 6 {
		t.Fatalf("candidates = %d, want 6", len(cands))
	}
	best := cands[0]
	if name := r.Schema().Column(best.Attr).Name; name != "Municipal" {
		t.Fatalf("EB best = %s, want Municipal", name)
	}
	if !best.Exact() || best.VI != 0 {
		t.Fatalf("Municipal must be homogeneous and complete: %+v", best)
	}
	// PhNo is exact too (homogeneity 0) but not complete → ranked second.
	second := cands[1]
	if name := r.Schema().Column(second.Attr).Name; name != "PhNo" {
		t.Fatalf("EB second = %s, want PhNo", name)
	}
	if !second.Exact() || second.Completeness <= 0 {
		t.Fatalf("PhNo must be exact but incomplete: %+v", second)
	}
	// Candidates must be sorted by (homogeneity, completeness).
	for i := 1; i < len(cands); i++ {
		a, b := cands[i-1], cands[i]
		if a.Homogeneity > b.Homogeneity ||
			(a.Homogeneity == b.Homogeneity && a.Completeness > b.Completeness) {
			t.Fatalf("EB candidates out of order at %d", i)
		}
	}
}

func TestEBAgreesWithCBOnPlaces(t *testing.T) {
	// §5's thesis: CB and EB pick the same best candidates with far simpler
	// computations. Verify agreement of the top choice for F1 and F4.
	r := datasets.Places()
	counter := pli.NewPLICounter(r)
	for _, spec := range []struct{ lhs, rhs string }{
		{"District,Region", "AreaCode"},
		{"District", "PhNo"},
	} {
		fd, err := core.ParseFD(r.Schema(), "F", spec.lhs+" -> "+spec.rhs)
		if err != nil {
			t.Fatal(err)
		}
		cb := core.ExtendByOne(counter, fd, core.CandidateOptions{})
		eb := ExtendByOne(r, fd.X, fd.Y)
		if cb[0].Attr != eb[0].Attr {
			t.Fatalf("%s: CB best %d ≠ EB best %d", spec.lhs,
				cb[0].Attr, eb[0].Attr)
		}
		// Exactness must coincide across the whole candidate list.
		cbExact := map[int]bool{}
		for _, c := range cb {
			cbExact[c.Attr] = c.Measures.Exact()
		}
		for _, c := range eb {
			if cbExact[c.Attr] != c.Exact() {
				t.Fatalf("attr %d: CB exact=%v, EB exact=%v", c.Attr, cbExact[c.Attr], c.Exact())
			}
		}
	}
}

func TestGreedyRepairOnPlacesF4(t *testing.T) {
	// F4 needs two attributes; the EB greedy loop must reach an exact FD.
	r := datasets.Places()
	x, _ := r.Schema().IndexSet("District")
	y, _ := r.Schema().IndexSet("PhNo")
	rep := GreedyRepair(r, x, y, 0)
	if !rep.Exact {
		t.Fatal("EB greedy must repair F4")
	}
	if len(rep.Added) != 2 {
		t.Fatalf("EB greedy added %d attrs, want 2", len(rep.Added))
	}
	if rep.Steps == 0 {
		t.Fatal("steps not counted")
	}
}

func TestGreedyRepairAlreadyExact(t *testing.T) {
	r := datasets.Places()
	x, _ := r.Schema().IndexSet("District", "Region", "Municipal")
	y, _ := r.Schema().IndexSet("AreaCode")
	rep := GreedyRepair(r, x, y, 0)
	if !rep.Exact || len(rep.Added) != 0 || rep.Steps != 0 {
		t.Fatalf("exact FD should need no work: %+v", rep)
	}
}

func TestGreedyRepairRespectsMaxAdded(t *testing.T) {
	r := datasets.Places()
	x, _ := r.Schema().IndexSet("District")
	y, _ := r.Schema().IndexSet("PhNo")
	rep := GreedyRepair(r, x, y, 1)
	if rep.Exact {
		t.Fatal("one attribute cannot repair F4")
	}
	if len(rep.Added) != 1 {
		t.Fatalf("added = %d, want 1 (bound)", len(rep.Added))
	}
}

func TestGreedyRepairUnrepairable(t *testing.T) {
	// F3 on Places is unrepairable (t10/t11 differ only in Street).
	r := datasets.Places()
	x, _ := r.Schema().IndexSet("PhNo", "Zip")
	y, _ := r.Schema().IndexSet("Street")
	rep := GreedyRepair(r, x, y, 0)
	if rep.Exact {
		t.Fatal("F3 must be unrepairable")
	}
}

// TestQuickTheorem1OneDirection checks the direction of Theorem 1 that does
// hold: ε_CB = 0 implies ε_VI = 0, on random relations, for both the general
// and the extension form of ε_VI as printed in the paper.
func TestQuickTheorem1OneDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	zeros := 0
	for iter := 0; iter < 300; iter++ {
		r := randomRelation(rng, 1+rng.Intn(25), 4, 2+rng.Intn(3))
		counter := pli.NewPLICounter(r)
		x, y := bitset.New(rng.Intn(4)), bitset.New(rng.Intn(4))
		if x.Intersects(y) {
			continue
		}
		fd, err := core.NewFD("F", x, y)
		if err != nil {
			t.Fatal(err)
		}
		if core.Compute(counter, fd).EpsilonCB() == 0 {
			zeros++
			if eVI := EpsilonVI(r, x, y); eVI > 1e-12 {
				t.Fatalf("iter %d: ε_CB=0 but ε_VI=%v", iter, eVI)
			}
		}
		var z bitset.Set
		for c := 0; c < 4; c++ {
			if !x.Contains(c) && !y.Contains(c) && rng.Intn(2) == 0 {
				z.Add(c)
			}
		}
		if z.IsEmpty() {
			continue
		}
		fz := fd.WithExtendedAntecedent(z)
		if core.Compute(counter, fz).EpsilonCB() == 0 {
			zeros++
			if eVIz := EpsilonVIExtension(r, x, y, z); eVIz > 1e-12 {
				t.Fatalf("iter %d: extension: ε_CB=0 but ε_VI=%v", iter, eVIz)
			}
		}
	}
	if zeros < 10 {
		t.Fatalf("too few ε_CB=0 cases exercised: %d", zeros)
	}
}

// TestTheorem1ConverseCounterexample pins the reproduction finding that the
// converse direction of Theorem 1 is false as printed: a concrete instance
// where ε_VI = 0 (both forms) but ε_CB > 0. The instance makes Y → X exact
// while X → Y is violated, so C_XY = C_Y ≠ C_X.
func TestTheorem1ConverseCounterexample(t *testing.T) {
	r := buildRelation(t, []string{"x", "y"}, [][]string{
		{"a", "y1"}, {"a", "y2"}, {"b", "y3"},
	})
	x, y := bitset.New(0), bitset.New(1)
	counter := pli.NewPLICounter(r)
	fd, err := core.NewFD("F", x, y)
	if err != nil {
		t.Fatal(err)
	}
	m := core.Compute(counter, fd)
	if m.Exact() {
		t.Fatal("x→y must be violated (a maps to y1 and y2)")
	}
	if eCB := m.EpsilonCB(); eCB <= 0 {
		t.Fatalf("ε_CB = %v, want > 0", eCB)
	}
	if eVI := EpsilonVI(r, x, y); eVI != 0 {
		t.Fatalf("ε_VI = %v, want 0 (C_XY = C_Y here)", eVI)
	}
	// The corrected measure detects the violation.
	if eFix := EpsilonVIEquivalent(r, x, y, bitset.Set{}); eFix <= 0 {
		t.Fatalf("corrected ε_VI = %v, want > 0", eFix)
	}
}

// TestQuickTheorem1CorrectedEquivalence: the corrected measure
// VI(C_XZ, C_Y) has exactly the same null set as ε_CB, in both directions,
// on random relations — the statement Theorem 1 intended.
func TestQuickTheorem1CorrectedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	zeros, nonzeros := 0, 0
	for iter := 0; iter < 300; iter++ {
		r := randomRelation(rng, 1+rng.Intn(25), 4, 2+rng.Intn(3))
		counter := pli.NewPLICounter(r)
		x, y := bitset.New(rng.Intn(4)), bitset.New(rng.Intn(4))
		if x.Intersects(y) {
			continue
		}
		var z bitset.Set
		for c := 0; c < 4; c++ {
			if !x.Contains(c) && !y.Contains(c) && rng.Intn(3) == 0 {
				z.Add(c)
			}
		}
		fd, err := core.NewFD("F", x, y)
		if err != nil {
			t.Fatal(err)
		}
		fz := fd
		if !z.IsEmpty() {
			fz = fd.WithExtendedAntecedent(z)
		}
		eCB := core.Compute(counter, fz).EpsilonCB()
		eFix := EpsilonVIEquivalent(r, x, y, z)
		if (eCB == 0) != (eFix < 1e-12) {
			t.Fatalf("iter %d: ε_CB=%v but corrected ε_VI=%v (x=%v y=%v z=%v)",
				iter, eCB, eFix, x, y, z)
		}
		if eCB == 0 {
			zeros++
		} else {
			nonzeros++
		}
	}
	if zeros < 10 || nonzeros < 10 {
		t.Fatalf("coverage too thin: %d zeros, %d nonzeros", zeros, nonzeros)
	}
}

// TestQuickHomogeneityEntropyMatchesExactness: H(C_XY|C_XA) = 0 ⟺ XA→Y
// exact, the bridge §5 builds between the EB primary key and FD semantics.
func TestQuickHomogeneityEntropyMatchesExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for iter := 0; iter < 100; iter++ {
		r := randomRelation(rng, 2+rng.Intn(20), 3, 2+rng.Intn(3))
		x, y := bitset.New(0), bitset.New(1)
		cands := ExtendByOne(r, x, y)
		for _, c := range cands {
			exact := r.SatisfiesFD(x.With(c.Attr), y)
			if c.Exact() != exact {
				t.Fatalf("iter %d attr %d: entropy exact=%v, FD exact=%v",
					iter, c.Attr, c.Exact(), exact)
			}
		}
	}
}

// TestQuickEBAndCBAgreeOnExactCandidates: on random instances, the set of
// candidates each method declares exact must coincide (they are different
// measures with the same null sets — the practical content of Theorem 1).
func TestQuickEBAndCBAgreeOnExactCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 60; iter++ {
		r := randomRelation(rng, 2+rng.Intn(25), 4, 2+rng.Intn(3))
		counter := pli.NewPLICounter(r)
		fd, err := core.NewFD("F", bitset.New(0), bitset.New(1))
		if err != nil {
			t.Fatal(err)
		}
		cb := core.ExtendByOne(counter, fd, core.CandidateOptions{})
		eb := ExtendByOne(r, fd.X, fd.Y)
		cbExact := map[int]bool{}
		for _, c := range cb {
			cbExact[c.Attr] = c.Measures.Exact()
		}
		for _, c := range eb {
			if cbExact[c.Attr] != c.Exact() {
				t.Fatalf("iter %d: disagreement on attr %d", iter, c.Attr)
			}
		}
	}
}

func TestEpsilonVIZeroCases(t *testing.T) {
	// On Places, F1+Municipal is exact with goodness 0 → both epsilons 0.
	r := datasets.Places()
	x, _ := r.Schema().IndexSet("District", "Region", "Municipal")
	y, _ := r.Schema().IndexSet("AreaCode")
	if got := EpsilonVI(r, x, y); got != 0 {
		t.Fatalf("ε_VI(F1+Municipal) = %v, want 0", got)
	}
	// F1+PhNo is exact but goodness 3 → ε_VI > 0.
	x2, _ := r.Schema().IndexSet("District", "Region", "PhNo")
	if got := EpsilonVI(r, x2, y); got <= 0 {
		t.Fatalf("ε_VI(F1+PhNo) = %v, want > 0", got)
	}
	if math.IsNaN(EpsilonVI(r, x2, y)) {
		t.Fatal("ε_VI must not be NaN")
	}
}
