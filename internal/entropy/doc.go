// Package entropy implements the entropy-based (EB) constraint-repair
// baseline that §5 of the paper compares against: the variation of
// information between clusterings (Meilă 2007), the conditional-entropy
// candidate ranking of Chiang & Miller (ICDE 2011) as the paper describes
// it, and the ε_VI measure whose equivalence with the confidence-based
// ε_CB is Theorem 1.
//
// The original CONDOR tool was unavailable to the paper's authors ("an
// experimental comparison … was unfortunately impossible"), so this package
// is built strictly from the specification in §5; together with
// internal/core it enables the CB-vs-EB comparison the paper could only
// argue theoretically — internal/bench regenerates it as a measured
// experiment, including the Theorem 1 equality check.
package entropy
