package entropy

import (
	"math"

	"github.com/evolvefd/evolvefd/internal/cluster"
)

// Entropy returns H(C) = −Σ_k P(k)·log₂ P(k), the Shannon entropy of the
// clustering's class-size distribution in bits.
func Entropy(c *cluster.Clustering) float64 {
	n := float64(c.NumRows())
	if n == 0 {
		return 0
	}
	h := 0.0
	for _, class := range c.Classes() {
		p := float64(class.Size()) / n
		h -= p * math.Log2(p)
	}
	return h
}

// OfClassSizes returns H(C) from a stripped class-size list: sizes holds the
// cardinalities of the classes with ≥2 rows and numRows the total row count,
// so numRows − Σ sizes singleton classes are implied. This is the shape
// Partition.ProductStrippedSizes emits, letting measures over a product be
// scored without materialising its row sets. Singleton classes contribute
// identical terms, so they are folded into one multiplied term rather than
// summed individually.
func OfClassSizes(sizes []int32, numRows int) float64 {
	n := float64(numRows)
	if numRows == 0 {
		return 0
	}
	h := 0.0
	stripped := 0
	for _, s := range sizes {
		p := float64(s) / n
		h -= p * math.Log2(p)
		stripped += int(s)
	}
	if singletons := numRows - stripped; singletons > 0 {
		p := 1 / n
		h -= float64(singletons) * p * math.Log2(p)
	}
	return h
}

// ConditionalEntropy returns H(C|C′) = −Σ_{k,k′} P(k,k′)·log₂ P(k|k′):
// the remaining uncertainty about C's class once C′'s class is known. It is
// zero exactly when C′ refines C (every class of C′ inside one class of C).
func ConditionalEntropy(c, given *cluster.Clustering) float64 {
	n := float64(c.NumRows())
	if n == 0 {
		return 0
	}
	joint := c.JointCounts(given)
	marginal := make(map[int]float64, given.NumClasses())
	for key, cnt := range joint {
		marginal[key[1]] += float64(cnt)
	}
	h := 0.0
	for key, cnt := range joint {
		pJoint := float64(cnt) / n
		pCond := float64(cnt) / marginal[key[1]]
		h -= pJoint * math.Log2(pCond)
	}
	// Clamp the tiny negative residue floating-point summation can leave.
	if h < 0 && h > -1e-12 {
		h = 0
	}
	return h
}

// VariationOfInformation returns VI(C, C′) = H(C|C′) + H(C′|C), the
// clustering metric of [19]. It is symmetric, non-negative, satisfies the
// triangle inequality, and is zero exactly when the clusterings are equal.
func VariationOfInformation(a, b *cluster.Clustering) float64 {
	return ConditionalEntropy(a, b) + ConditionalEntropy(b, a)
}

// MutualInformation returns I(C; C′) = H(C) − H(C|C′) ≥ 0.
func MutualInformation(a, b *cluster.Clustering) float64 {
	mi := Entropy(a) - ConditionalEntropy(a, b)
	if mi < 0 && mi > -1e-12 {
		mi = 0
	}
	return mi
}
