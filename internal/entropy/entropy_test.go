package entropy

import (
	"math"
	"math/rand"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/cluster"
	"github.com/evolvefd/evolvefd/internal/relation"
)

func buildRelation(t testing.TB, cols []string, rows [][]string) *relation.Relation {
	t.Helper()
	schema, err := relation.SchemaOf(cols...)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New("t", schema)
	for _, row := range rows {
		if err := r.AppendStrings(row...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func randomRelation(rng *rand.Rand, rows, cols, domain int) *relation.Relation {
	names := make([]string, cols)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	schema, _ := relation.SchemaOf(names...)
	r := relation.New("rand", schema)
	row := make([]relation.Value, cols)
	for i := 0; i < rows; i++ {
		for c := range row {
			row[c] = relation.String(string(rune('A' + rng.Intn(domain))))
		}
		r.MustAppend(row...)
	}
	return r
}

func TestEntropyBasics(t *testing.T) {
	// Uniform 4-class clustering over 4 rows: H = log2(4) = 2 bits.
	r := buildRelation(t, []string{"a"}, [][]string{{"1"}, {"2"}, {"3"}, {"4"}})
	c := cluster.New(r, bitset.New(0))
	if got := Entropy(c); math.Abs(got-2) > 1e-12 {
		t.Fatalf("H = %v, want 2", got)
	}
	// Single class: H = 0.
	r1 := buildRelation(t, []string{"a"}, [][]string{{"x"}, {"x"}, {"x"}})
	if got := Entropy(cluster.New(r1, bitset.New(0))); got != 0 {
		t.Fatalf("H single class = %v, want 0", got)
	}
	// Empty relation: H = 0.
	schema, _ := relation.SchemaOf("a")
	if got := Entropy(cluster.New(relation.New("e", schema), bitset.New(0))); got != 0 {
		t.Fatalf("H empty = %v, want 0", got)
	}
}

func TestConditionalEntropyZeroOnRefinement(t *testing.T) {
	// b refines a (each b-value maps into one a-value): H(C_a | C_b) = 0,
	// but H(C_b | C_a) > 0.
	r := buildRelation(t, []string{"a", "b"}, [][]string{
		{"x", "1"}, {"x", "2"}, {"y", "3"}, {"y", "3"},
	})
	ca := cluster.New(r, bitset.New(0))
	cb := cluster.New(r, bitset.New(1))
	if got := ConditionalEntropy(ca, cb); got != 0 {
		t.Fatalf("H(a|b) = %v, want 0", got)
	}
	if got := ConditionalEntropy(cb, ca); got <= 0 {
		t.Fatalf("H(b|a) = %v, want > 0", got)
	}
}

func TestConditionalEntropySelfIsZero(t *testing.T) {
	r := buildRelation(t, []string{"a"}, [][]string{{"1"}, {"2"}, {"1"}})
	c := cluster.New(r, bitset.New(0))
	if got := ConditionalEntropy(c, c); got != 0 {
		t.Fatalf("H(C|C) = %v, want 0", got)
	}
	if got := VariationOfInformation(c, c); got != 0 {
		t.Fatalf("VI(C,C) = %v, want 0", got)
	}
}

func TestConditionalEntropyKnownValue(t *testing.T) {
	// 4 rows; C_a = {{0,1},{2,3}}, C_b = {{0,2},{1,3}} (independent fair
	// coins): H(a|b) = 1 bit.
	r := buildRelation(t, []string{"a", "b"}, [][]string{
		{"x", "p"}, {"x", "q"}, {"y", "p"}, {"y", "q"},
	})
	ca := cluster.New(r, bitset.New(0))
	cb := cluster.New(r, bitset.New(1))
	if got := ConditionalEntropy(ca, cb); math.Abs(got-1) > 1e-12 {
		t.Fatalf("H(a|b) = %v, want 1", got)
	}
	if got := VariationOfInformation(ca, cb); math.Abs(got-2) > 1e-12 {
		t.Fatalf("VI = %v, want 2", got)
	}
	if got := MutualInformation(ca, cb); got != 0 {
		t.Fatalf("I = %v, want 0 for independent clusterings", got)
	}
}

// TestQuickOfClassSizesMatchesEntropy: the stripped-size formulation agrees
// with the cluster-based entropy on random clusterings. Summation order
// differs (singletons folded into one term), so compare with a tolerance.
func TestQuickOfClassSizesMatchesEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for iter := 0; iter < 80; iter++ {
		r := randomRelation(rng, 1+rng.Intn(60), 2, 2+rng.Intn(8))
		c := cluster.New(r, bitset.New(rng.Intn(2)))
		var sizes []int32
		for _, class := range c.Classes() {
			if class.Size() >= 2 {
				sizes = append(sizes, int32(class.Size()))
			}
		}
		got, want := OfClassSizes(sizes, c.NumRows()), Entropy(c)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("iter %d: OfClassSizes = %v, Entropy = %v", iter, got, want)
		}
	}
	// Degenerate shapes.
	if got := OfClassSizes(nil, 0); got != 0 {
		t.Fatalf("empty: %v, want 0", got)
	}
	if got := OfClassSizes(nil, 4); math.Abs(got-2) > 1e-12 {
		t.Fatalf("all singletons: %v, want 2", got)
	}
	if got := OfClassSizes([]int32{3}, 3); got != 0 {
		t.Fatalf("single class: %v, want 0", got)
	}
}

// TestQuickVIIsAMetric checks symmetry, non-negativity, identity and the
// triangle inequality of VI on random clusterings ([19] proves VI is a true
// metric on partitions).
func TestQuickVIIsAMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 80; iter++ {
		r := randomRelation(rng, 2+rng.Intn(30), 3, 2+rng.Intn(4))
		ca := cluster.New(r, bitset.New(0))
		cb := cluster.New(r, bitset.New(1))
		cc := cluster.New(r, bitset.New(2))

		dab := VariationOfInformation(ca, cb)
		dba := VariationOfInformation(cb, ca)
		if math.Abs(dab-dba) > 1e-9 {
			t.Fatalf("iter %d: VI not symmetric: %v vs %v", iter, dab, dba)
		}
		if dab < 0 {
			t.Fatalf("iter %d: VI negative: %v", iter, dab)
		}
		if ca.Equal(cb) != (dab < 1e-9) {
			t.Fatalf("iter %d: VI zero ⟺ equal violated (VI=%v, equal=%v)", iter, dab, ca.Equal(cb))
		}
		dac := VariationOfInformation(ca, cc)
		dcb := VariationOfInformation(cc, cb)
		if dab > dac+dcb+1e-9 {
			t.Fatalf("iter %d: triangle inequality violated: %v > %v + %v", iter, dab, dac, dcb)
		}
	}
}

// TestQuickConditionalEntropyBounds: 0 ≤ H(C|C′) ≤ H(C).
func TestQuickConditionalEntropyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 80; iter++ {
		r := randomRelation(rng, 2+rng.Intn(40), 2, 2+rng.Intn(5))
		ca := cluster.New(r, bitset.New(0))
		cb := cluster.New(r, bitset.New(1))
		h := ConditionalEntropy(ca, cb)
		if h < 0 {
			t.Fatalf("iter %d: H(C|C') negative: %v", iter, h)
		}
		if h > Entropy(ca)+1e-9 {
			t.Fatalf("iter %d: H(C|C')=%v exceeds H(C)=%v", iter, h, Entropy(ca))
		}
	}
}

// TestQuickMutualInformationSymmetric: I(C;C') = I(C';C).
func TestQuickMutualInformationSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for iter := 0; iter < 60; iter++ {
		r := randomRelation(rng, 2+rng.Intn(30), 2, 2+rng.Intn(4))
		ca := cluster.New(r, bitset.New(0))
		cb := cluster.New(r, bitset.New(1))
		if math.Abs(MutualInformation(ca, cb)-MutualInformation(cb, ca)) > 1e-9 {
			t.Fatalf("iter %d: MI not symmetric", iter)
		}
	}
}
