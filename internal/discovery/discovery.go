// Package discovery implements levelwise discovery of minimal exact
// functional dependencies (TANE-style, over the PLI substrate).
//
// It exists as the baseline the paper's §2 argues against: to update stale
// constraints one could "first discover all the possible constraints from
// data, then relax the constraints … that do not hold on the current
// instance" (the approach of Chu, Ilyas & Papotti's denial-constraint
// discovery [16]). The paper deems this "rather impractical when the FDs,
// though obsolete, have been originally defined by a designer" — for
// efficiency, and because "the inferred constraints not always include
// extensions of the ones specified by the designer". With this package and
// internal/core in one repository, both claims become measurable (see the
// discover-vs-repair experiment in internal/bench).
package discovery

import (
	"sort"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/pli"
)

// Options bounds the discovery search.
type Options struct {
	// MaxLHS bounds antecedent size; 0 means 2. Discovery is exponential in
	// this bound (the levelwise lattice has C(|R|, k) nodes per level).
	MaxLHS int
	// MaxResults stops discovery after this many minimal FDs; 0 = no bound.
	MaxResults int
	// Consequents restricts the searched consequent attributes; nil means
	// every NULL-free attribute.
	Consequents []int
}

// Stats reports discovery effort.
type Stats struct {
	// Checked counts exactness tests performed.
	Checked int
	// Pruned counts lattice nodes skipped because a subset already
	// determined the consequent.
	Pruned int
}

// MinimalFDs finds every minimal exact FD X → A with |X| ≤ MaxLHS over the
// NULL-free attributes of the instance: X → A holds and no proper subset of
// X determines A. Results are sorted by consequent, then antecedent size,
// then attribute order, so output is deterministic.
func MinimalFDs(counter pli.Counter, opts Options) ([]core.FD, Stats) {
	r := counter.Relation()
	maxLHS := opts.MaxLHS
	if maxLHS <= 0 {
		maxLHS = 2
	}
	var stats Stats

	var pool []int
	for c := 0; c < r.NumCols(); c++ {
		if !r.HasNulls(c) {
			pool = append(pool, c)
		}
	}
	consequents := opts.Consequents
	if consequents == nil {
		consequents = pool
	}

	// A counter that hands out partitions answers validity by the refinement
	// probe — X → A holds iff π_X refines π_A — which exits at the first
	// split instead of building and counting the full X∪A product. When both
	// partitions are all-dense (bitmap-backed classes only) the word-parallel
	// count-only product answers the same question by pure AND/popcount with
	// zero allocation, which beats the per-row probe walk. Counters without
	// partition handles (hash, sort, SQL) keep the count equality.
	partitions, _ := counter.(interface {
		Partition(x bitset.Set) *pli.Partition
	})
	valid := func(x, ySet bitset.Set) bool {
		if partitions != nil {
			px, py := partitions.Partition(x), partitions.Partition(ySet)
			if px.AllDense() && py.AllDense() && px.NumStrippedClasses() > 0 {
				// X → A iff π_{XA} does not split π_X, i.e. the product count
				// equals |π_X|.
				return px.ProductCount(py, nil) == px.NumClasses()
			}
			return px.RefinesOrEquals(py)
		}
		return counter.Count(x) == counter.Count(x.Union(ySet))
	}

	var out []core.FD
	for _, y := range consequents {
		if y < 0 || y >= r.NumCols() || r.HasNulls(y) {
			continue
		}
		lhsPool := make([]int, 0, len(pool))
		for _, c := range pool {
			if c != y {
				lhsPool = append(lhsPool, c)
			}
		}
		// minimal holds the found minimal antecedents for y; any superset
		// of one is pruned.
		var minimal []bitset.Set
		ySet := bitset.New(y)
		for size := 1; size <= maxLHS; size++ {
			forEachSubset(lhsPool, size, func(attrs []int) bool {
				x := bitset.New(attrs...)
				for _, m := range minimal {
					if m.SubsetOf(x) {
						stats.Pruned++
						return true
					}
				}
				stats.Checked++
				if valid(x, ySet) {
					minimal = append(minimal, x)
					out = append(out, core.MustFD("", x, ySet))
				}
				return opts.MaxResults == 0 || len(out) < opts.MaxResults
			})
			if opts.MaxResults > 0 && len(out) >= opts.MaxResults {
				break
			}
		}
		if opts.MaxResults > 0 && len(out) >= opts.MaxResults {
			break
		}
	}
	sortFDs(out)
	return out, stats
}

// forEachSubset enumerates size-k subsets of pool in lexicographic order,
// calling fn with a reused slice; fn returning false stops the enumeration.
func forEachSubset(pool []int, k int, fn func(attrs []int) bool) {
	if k > len(pool) || k <= 0 {
		return
	}
	idx := make([]int, k)
	attrs := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		for i, p := range idx {
			attrs[i] = pool[p]
		}
		if !fn(attrs) {
			return
		}
		// Advance the combination.
		i := k - 1
		for i >= 0 && idx[i] == len(pool)-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

func sortFDs(fds []core.FD) {
	sort.Slice(fds, func(i, j int) bool {
		yi, yj := fds[i].Y.Min(), fds[j].Y.Min()
		if yi != yj {
			return yi < yj
		}
		if fds[i].X.Len() != fds[j].X.Len() {
			return fds[i].X.Len() < fds[j].X.Len()
		}
		a, b := fds[i].X.Members(), fds[j].X.Members()
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// ExtensionsOf filters discovered FDs down to those that evolve a designer
// FD: same consequent, antecedent a proper superset of the designer's. This
// is the "relax the obsolete constraint" step of the §2 alternative — and
// on many instances it comes back empty, the paper's second criticism.
func ExtensionsOf(discovered []core.FD, designer core.FD) []core.FD {
	var out []core.FD
	for _, fd := range discovered {
		if fd.Y.Equal(designer.Y) && designer.X.ProperSubsetOf(fd.X) {
			out = append(out, fd)
		}
	}
	return out
}
