package discovery

import (
	"fmt"
	"sort"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/pli"
)

// BorderSnapshot is the durable form of an IncrementalDiscoverer's maintained
// state: the positive border (minimal cover, attribute sets only — generation
// stamps are session-local and re-established on restore) and the negative
// border with its witness row pairs. It is plain data so the wal package can
// serialize it without importing discovery internals.
type BorderSnapshot struct {
	// MaxLHS is the normalized antecedent bound the borders were built under.
	MaxLHS int
	// Eligible lists the NULL-free columns at snapshot time, sorted; restore
	// fails if the relation disagrees, because the borders would then
	// describe a different lattice.
	Eligible []int
	// States holds one entry per maintained consequent, in state order.
	States []ConsequentSnapshot
}

// ConsequentSnapshot is the durable border state for one consequent.
type ConsequentSnapshot struct {
	// Y is the consequent column.
	Y int
	// Valid holds the antecedent sets of the minimal cover, each a sorted
	// column list.
	Valid [][]int
	// Invalid holds the witnessed negative border.
	Invalid []WitnessSnapshot
}

// WitnessSnapshot is one negative-border FD: an invalid antecedent set and
// the two live rows that prove the violation.
type WitnessSnapshot struct {
	// X is the antecedent set, a sorted column list.
	X []int
	// W1 and W2 are the witness rows: they agree on X and differ on Y.
	W1, W2 int
}

// ExportBorders captures the discoverer's maintained borders as plain data.
// The caller must have Sync()ed (evolvefd.Session snapshots right after a
// compaction, which syncs), so every witness refers to a live current-epoch
// row.
func (d *IncrementalDiscoverer) ExportBorders() *BorderSnapshot {
	snap := &BorderSnapshot{
		MaxLHS:   d.maxLHS,
		Eligible: append([]int(nil), d.eligible.Members()...),
	}
	for _, st := range d.states {
		cs := ConsequentSnapshot{Y: st.y}
		for _, f := range st.valid {
			cs.Valid = append(cs.Valid, f.x.Members())
		}
		for _, b := range st.invalid {
			cs.Invalid = append(cs.Invalid, WitnessSnapshot{X: b.x.Members(), W1: b.w1, W2: b.w2})
		}
		snap.States = append(snap.States, cs)
	}
	return snap
}

// RestoreDiscoverer rebuilds an IncrementalDiscoverer from a BorderSnapshot
// over a counter whose relation matches the instance the snapshot was taken
// against. Every imported fact is re-validated against the live instance —
// cover FDs by re-counting (which also mints fresh generation stamps),
// border FDs by checking their witness pair — so a snapshot that does not
// describe this instance is rejected with an error, never trusted. The cost
// is O(border size) count probes instead of the O(lattice) levelwise reseed
// NewIncrementalDiscoverer pays, which is the recovery speedup.
func RestoreDiscoverer(counter *pli.IncrementalCounter, opts Options, snap *BorderSnapshot) (*IncrementalDiscoverer, error) {
	d := &IncrementalDiscoverer{counter: counter, opts: opts, maxLHS: opts.MaxLHS}
	if d.maxLHS <= 0 {
		d.maxLHS = 2
	}
	if snap.MaxLHS != d.maxLHS {
		return nil, fmt.Errorf("discovery: snapshot built with MaxLHS %d, session wants %d", snap.MaxLHS, d.maxLHS)
	}
	r := counter.Relation()
	d.prevRows, d.prevMuts = r.NumRows(), r.Mutations()
	d.prevEpoch = r.Epoch()
	d.eligible = r.NullFreeColumns()
	if got := d.eligible.Members(); !equalInts(got, snap.Eligible) {
		return nil, fmt.Errorf("discovery: snapshot eligible columns %v, relation has %v", snap.Eligible, got)
	}

	var pool []int
	for c := 0; c < r.NumCols(); c++ {
		if !r.HasNulls(c) {
			pool = append(pool, c)
		}
	}
	checkAttrs := func(attrs []int) error {
		if len(attrs) == 0 || len(attrs) > d.maxLHS {
			return fmt.Errorf("discovery: snapshot antecedent %v outside size bound %d", attrs, d.maxLHS)
		}
		if !sort.IntsAreSorted(attrs) {
			return fmt.Errorf("discovery: snapshot antecedent %v not sorted", attrs)
		}
		for i, a := range attrs {
			if a < 0 || a >= r.NumCols() || r.HasNulls(a) {
				return fmt.Errorf("discovery: snapshot antecedent %v names ineligible column %d", attrs, a)
			}
			if i > 0 && attrs[i-1] == a {
				return fmt.Errorf("discovery: snapshot antecedent %v repeats column %d", attrs, a)
			}
		}
		return nil
	}
	// Re-register every cover antecedent (and its Y-extension) in one
	// parallel sweep before the validation loop: each is a full fold over
	// the instance, and folding them one CountWithGen at a time is what
	// would dominate recovery time. The loop below then validates against
	// the already-built indexes in O(1) per FD.
	// Malformed snapshot entries are skipped here — the validation loop
	// below reaches them and reports the error.
	var coverSets []bitset.Set
	for _, cs := range snap.States {
		if cs.Y < 0 || cs.Y >= r.NumCols() || r.HasNulls(cs.Y) {
			continue
		}
		for _, attrs := range cs.Valid {
			if checkAttrs(attrs) != nil {
				continue
			}
			x := bitset.New(attrs...)
			coverSets = append(coverSets, x, x.Union(bitset.New(cs.Y)))
		}
	}
	counter.TrackBatch(coverSets)

	seenY := make(map[int]bool)
	for _, cs := range snap.States {
		if cs.Y < 0 || cs.Y >= r.NumCols() || r.HasNulls(cs.Y) {
			return nil, fmt.Errorf("discovery: snapshot consequent %d ineligible", cs.Y)
		}
		if seenY[cs.Y] {
			return nil, fmt.Errorf("discovery: snapshot repeats consequent %d", cs.Y)
		}
		seenY[cs.Y] = true
		st := &consequentState{y: cs.Y, ySet: bitset.New(cs.Y)}
		for _, c := range pool {
			if c != cs.Y {
				st.pool = append(st.pool, c)
			}
		}
		d.states = append(d.states, st)
		for _, attrs := range cs.Valid {
			if err := checkAttrs(attrs); err != nil {
				return nil, err
			}
			x := bitset.New(attrs...)
			if x.Contains(cs.Y) {
				return nil, fmt.Errorf("discovery: snapshot cover FD %v -> %d is trivial", attrs, cs.Y)
			}
			xa := x.Union(st.ySet)
			cntX, genX := counter.CountWithGen(x)
			cntXA, genXA := counter.CountWithGen(xa)
			if cntX != cntXA {
				return nil, fmt.Errorf("discovery: snapshot cover FD %v -> %d does not hold on the instance", attrs, cs.Y)
			}
			st.valid = append(st.valid, &coverFD{x: x, xa: xa, genX: genX, genXA: genXA})
		}
		for _, w := range cs.Invalid {
			if err := checkAttrs(w.X); err != nil {
				return nil, err
			}
			x := bitset.New(w.X...)
			if x.Contains(cs.Y) {
				return nil, fmt.Errorf("discovery: snapshot border FD %v -> %d is trivial", w.X, cs.Y)
			}
			if w.W1 < 0 || w.W1 >= r.NumRows() || w.W2 < 0 || w.W2 >= r.NumRows() || w.W1 == w.W2 {
				return nil, fmt.Errorf("discovery: snapshot witness (%d,%d) of %v -> %d out of range", w.W1, w.W2, w.X, cs.Y)
			}
			b := &borderFD{x: x, cols: x.Members(), w1: w.W1, w2: w.W2}
			if !d.witnessIntact(st, b) {
				return nil, fmt.Errorf("discovery: snapshot witness (%d,%d) of %v -> %d does not violate on the instance", w.W1, w.W2, w.X, cs.Y)
			}
			st.invalid = append(st.invalid, b)
		}
	}
	d.ensureCapacity()
	return d, nil
}

// equalInts reports whether two int slices hold the same sequence.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
