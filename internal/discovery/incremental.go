package discovery

import (
	"fmt"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// IncStats reports the work an IncrementalDiscoverer performed across
// mutation batches — the observable that maintenance is O(affected lattice
// region), not O(lattice): on a batch that disturbs nothing, every counter
// except Batches and WitnessChecks stays put.
type IncStats struct {
	// Batches counts processed mutation batches (Sync calls that found the
	// relation changed).
	Batches int
	// Revalidated counts cover FDs whose generation stamps moved and whose
	// counts therefore had to be re-compared; cover FDs with unchanged
	// stamps are skipped for free.
	Revalidated int
	// WitnessChecks counts O(|X|) violating-pair inspections on the invalid
	// border; WitnessBroken counts how many of those pairs the batch
	// destroyed (forcing a full count probe).
	WitnessChecks, WitnessBroken int
	// Promoted counts FDs that entered the cover (newly minimal and valid);
	// Demoted counts cover FDs a batch broke; Superseded counts cover FDs
	// removed because a newly-valid generalization made them non-minimal.
	Promoted, Demoted, Superseded int
	// FrontierExpanded counts lattice nodes probed while searching the
	// specialization frontier above a demoted FD.
	FrontierExpanded int
	// Probes counts full |π_X| = |π_XA| comparisons (each O(n) on first
	// touch); the incremental claim is that Probes grows with the disturbed
	// region, not with the lattice.
	Probes int
	// Reseeds counts full from-scratch re-discoveries, triggered only when a
	// column's NULL-eligibility changed (a NULL appeared in, or the last
	// NULL left, a column's live rows — which redraws the whole lattice).
	Reseeds int
}

// coverFD is one member of the positive border: a minimal valid FD X → A
// with the generation stamps of |π_X| and |π_XA| at its last validation.
// While both stamps are unchanged the counts are provably unchanged, so the
// FD is still valid and revalidation is two map lookups.
type coverFD struct {
	x, xa       bitset.Set
	genX, genXA uint64
}

// borderFD is one member of the negative border: an invalid FD X → A
// carrying a witness — two live rows that agree on X and differ on A. The
// FD stays invalid exactly as long as some such pair exists, so checking
// the stored pair in O(|X|) per batch replaces an O(n) count probe; only a
// batch that destroys the pair (deletes a row, or updates a cell of one)
// forces a re-probe.
type borderFD struct {
	x      bitset.Set
	cols   []int
	w1, w2 int
}

// consequentState is the maintained lattice state for one consequent
// attribute: the positive border (minimal valid FDs, the cover) and the
// negative border (a set of invalid FDs whose downward closure covers every
// invalid antecedent within the size bound).
type consequentState struct {
	y       int
	ySet    bitset.Set
	pool    []int
	valid   []*coverFD
	invalid []*borderFD
}

// batchCtx memoises probe results and traversal marks within one mutation
// batch, so lattice nodes reachable from several demoted or flipped FDs are
// probed at most once per batch.
type batchCtx struct {
	memo      map[string]bool // set key → validity, for sets probed this batch
	descended map[string]bool // set key → searchDown already explored it
}

// IncrementalDiscoverer maintains the minimal exact-FD cover of an evolving
// relation across append, delete and update batches, instead of re-running
// the levelwise lattice search from scratch after every change (EAIFD-style
// maintenance over this repository's generation-stamped counting substrate).
//
// The invariants, per consequent A over the NULL-free attribute pool:
//
//   - cover: every minimal valid X → A with |X| ≤ MaxLHS, each revalidated
//     per batch by comparing the generation stamps of |π_X| and |π_XA|
//     (pli.IncrementalCounter.CountWithGen) — O(1) per FD, O(n) only when a
//     stamp moved and the count comparison must rerun;
//   - invalid border: a set of invalid FDs whose subsets cover every
//     invalid antecedent, each carrying a concrete violating row pair.
//     Appends cannot turn an invalid FD valid, so the border rests on
//     append-only batches; deletes and updates check each witness in
//     O(|X|) and re-probe only the FDs whose pair the batch destroyed.
//
// When an append breaks a cover FD, its specialization frontier is searched
// upward (levelwise, pruned by the surviving cover) for the new minimal
// FDs. When a delete or update flips a border FD valid, its generalization
// lattice is searched downward for the new minimal FDs, demoting cover
// members they supersede. Both searches touch only the disturbed region —
// IncStats proves it.
//
// Options.MaxResults is ignored: the maintained cover is always complete,
// because an incrementally-maintained truncation is order-dependent and
// could not agree with a fresh Discover pass. A change in a column's
// NULL-eligibility (the paper's §6.2.1 NULL-free requirement) redraws the
// lattice itself and triggers a full reseed, counted in IncStats.Reseeds.
//
// An IncrementalDiscoverer is not safe for concurrent use; callers must
// serialise Sync/Cover against relation mutations (evolvefd.Session does).
type IncrementalDiscoverer struct {
	counter   *pli.IncrementalCounter
	opts      Options
	maxLHS    int
	eligible  bitset.Set
	states    []*consequentState
	stats     IncStats
	prevRows  int
	prevMuts  uint64
	prevEpoch uint64
	// coverCache is the sorted cover of the current state; nil after a
	// batch or reseed. Back-to-back Cover calls without intervening
	// mutations (DiscoverIncremental followed by Suggestions) rebuild and
	// re-sort nothing.
	coverCache []core.FD
}

// NewIncrementalDiscoverer seeds a discoverer over the counter's current
// instance with a full levelwise pass (the one O(lattice) cost), capturing a
// witness pair for every invalid border FD. Stats start at zero; the seed's
// cost is the caller-visible construction time.
func NewIncrementalDiscoverer(counter *pli.IncrementalCounter, opts Options) *IncrementalDiscoverer {
	d := &IncrementalDiscoverer{counter: counter, opts: opts, maxLHS: opts.MaxLHS}
	if d.maxLHS <= 0 {
		d.maxLHS = 2
	}
	d.reseed()
	d.stats = IncStats{}
	return d
}

// Counter returns the underlying incremental counter.
func (d *IncrementalDiscoverer) Counter() *pli.IncrementalCounter { return d.counter }

// Stats returns cumulative maintenance effort since construction.
func (d *IncrementalDiscoverer) Stats() IncStats { return d.stats }

// CoverSize reports the number of FDs in the maintained minimal cover.
func (d *IncrementalDiscoverer) CoverSize() int {
	n := 0
	for _, st := range d.states {
		n += len(st.valid)
	}
	return n
}

// BorderSize reports the number of witnessed FDs on the invalid border.
func (d *IncrementalDiscoverer) BorderSize() int {
	n := 0
	for _, st := range d.states {
		n += len(st.invalid)
	}
	return n
}

// Cover syncs with any pending relation mutations and returns the minimal
// exact-FD cover, sorted exactly like MinimalFDs so the two are directly
// comparable: at every point in a DML stream, Cover equals a fresh
// MinimalFDs run over the same instance and options.
func (d *IncrementalDiscoverer) Cover() []core.FD {
	d.Sync()
	if d.coverCache == nil {
		out := make([]core.FD, 0, d.CoverSize())
		for _, st := range d.states {
			for _, f := range st.valid {
				out = append(out, core.MustFD("", f.x, st.ySet))
			}
		}
		sortFDs(out)
		d.coverCache = out
	}
	return append([]core.FD(nil), d.coverCache...)
}

// Sync folds every mutation applied to the relation since the last call
// into the maintained borders. It is idempotent and cheap when nothing
// changed; Cover calls it implicitly.
func (d *IncrementalDiscoverer) Sync() {
	r := d.counter.Relation()
	if r.Epoch() != d.prevEpoch {
		// The relation was compacted without OnCompact: the remap table is
		// gone and every stored witness row id is meaningless. Reseed — the
		// correct fallback, like the counter's own out-of-band rebuild.
		d.stats.Batches++
		d.stats.Reseeds++
		d.coverCache = nil
		d.reseed()
		return
	}
	rows, muts := r.NumRows(), r.Mutations()
	if rows == d.prevRows && muts == d.prevMuts {
		return
	}
	// Mutations advances on delete/update batches (including out-of-band
	// ones applied directly to the relation); a bare NumRows change is an
	// append-only batch, which cannot invalidate any witness.
	dml := muts != d.prevMuts
	d.prevRows, d.prevMuts = rows, muts
	d.stats.Batches++
	d.coverCache = nil
	if !r.NullFreeColumns().Equal(d.eligible) {
		d.stats.Reseeds++
		d.reseed()
		return
	}
	for _, st := range d.states {
		ctx := &batchCtx{memo: make(map[string]bool), descended: make(map[string]bool)}
		d.revalidateCover(st, ctx)
		if dml {
			d.checkWitnesses(st, ctx)
		}
	}
	d.ensureCapacity()
}

// OnCompact carries the maintained borders across a storage-epoch boundary
// by translating the row ids of every negative-border witness through the
// remap table — O(border size), no probe, no reseed. The positive border
// needs nothing at all: its revalidation runs on generation stamps, which a
// remap-aware compaction preserves.
//
// The caller must Sync() BEFORE compacting the relation (evolvefd.Session
// does), so every witness refers to a checked, live pre-compaction row: a
// live row always has a new id. A nil remap (the compaction was a no-op) is
// ignored.
func (d *IncrementalDiscoverer) OnCompact(m *relation.Remap) {
	if m == nil {
		return
	}
	r := d.counter.Relation()
	d.prevRows = r.NumRows()
	d.prevEpoch = r.Epoch()
	// prevMuts is untouched: compaction does not advance Mutations.
	for _, st := range d.states {
		for _, b := range st.invalid {
			w1, w2 := m.NewID(b.w1), m.NewID(b.w2)
			if w1 < 0 || w2 < 0 {
				panic(fmt.Sprintf("discovery: witness (%d,%d) of %v -> %d was a tombstone at compaction; Sync before Compact",
					b.w1, b.w2, b.x, st.y))
			}
			b.w1, b.w2 = w1, w2
		}
	}
	// coverCache holds attribute sets only — row-id free, still valid.
}

// reseed rebuilds every consequent's borders from scratch with a levelwise
// pass — construction, and the fallback when a column's NULL-eligibility
// changed. Callers account it in stats.
func (d *IncrementalDiscoverer) reseed() {
	r := d.counter.Relation()
	d.prevRows, d.prevMuts = r.NumRows(), r.Mutations()
	d.prevEpoch = r.Epoch()
	d.eligible = r.NullFreeColumns()
	d.states = nil
	d.coverCache = nil

	var pool []int
	for c := 0; c < r.NumCols(); c++ {
		if !r.HasNulls(c) {
			pool = append(pool, c)
		}
	}
	consequents := d.opts.Consequents
	if consequents == nil {
		consequents = pool
	}
	for _, y := range consequents {
		if y < 0 || y >= r.NumCols() || r.HasNulls(y) {
			continue
		}
		st := &consequentState{y: y, ySet: bitset.New(y)}
		for _, c := range pool {
			if c != y {
				st.pool = append(st.pool, c)
			}
		}
		// Registered before seeding so the capacity raises that promote
		// performs see this consequent's growing cover too.
		d.states = append(d.states, st)
		d.seedConsequent(st)
	}
	d.ensureCapacity()
}

// seedConsequent runs the levelwise search for one consequent, mirroring
// MinimalFDs' enumeration order and pruning, and additionally records every
// probed invalid set on the witnessed border (keeping only maximal members:
// every invalid set within the bound is probed here, because only valid
// regions are pruned).
func (d *IncrementalDiscoverer) seedConsequent(st *consequentState) {
	for size := 1; size <= d.maxLHS; size++ {
		forEachSubset(st.pool, size, func(attrs []int) bool {
			x := bitset.New(attrs...)
			if d.coverDominates(st, x) {
				return true
			}
			if d.probe(st, x) {
				d.promote(st, x)
			} else {
				d.addInvalid(st, x)
			}
			return true
		})
	}
}

// revalidateCover re-checks every cover FD against the new instance. FDs
// whose two generation stamps are unchanged are provably still valid and
// cost two map lookups; FDs whose stamps moved re-compare their counts
// (already materialised by the stamp query); the broken ones are demoted to
// the invalid border and their specialization frontier is searched for the
// minimal FDs that replace them.
func (d *IncrementalDiscoverer) revalidateCover(st *consequentState, ctx *batchCtx) {
	var broken []bitset.Set
	kept := st.valid[:0]
	for _, f := range st.valid {
		cntX, genX := d.counter.CountWithGen(f.x)
		cntXA, genXA := d.counter.CountWithGen(f.xa)
		if genX == f.genX && genXA == f.genXA {
			kept = append(kept, f)
			continue
		}
		d.stats.Revalidated++
		f.genX, f.genXA = genX, genXA
		if cntX == cntXA {
			kept = append(kept, f)
			continue
		}
		broken = append(broken, f.x)
	}
	st.valid = kept
	if len(broken) == 0 {
		return
	}
	for _, x := range broken {
		d.stats.Demoted++
		ctx.memo[x.Key()] = false
		d.addInvalid(st, x)
	}
	d.expandUp(st, broken, ctx)
}

// expandUp searches the specialization frontier above newly-invalid seeds,
// levelwise so that a minimal FD at size k is promoted before any superset
// at size k+1 is considered (which keeps the cover an antichain without a
// post-pass). Valid children are new minimal cover members; invalid
// children join the border and are expanded in turn — the walk covers
// exactly the invalidated up-region of the lattice.
func (d *IncrementalDiscoverer) expandUp(st *consequentState, seeds []bitset.Set, ctx *batchCtx) {
	levels := make(map[int][]bitset.Set)
	minSize := d.maxLHS + 1
	for _, x := range seeds {
		s := x.Len()
		levels[s] = append(levels[s], x)
		if s < minSize {
			minSize = s
		}
	}
	for size := minSize; size < d.maxLHS; size++ {
		for _, x := range levels[size] {
			for _, b := range st.pool {
				if x.Contains(b) {
					continue
				}
				child := x.With(b)
				key := child.Key()
				if _, done := ctx.memo[key]; done {
					continue
				}
				if d.coverDominates(st, child) {
					continue
				}
				d.stats.FrontierExpanded++
				valid := d.probe(st, child)
				ctx.memo[key] = valid
				if valid {
					d.promote(st, child)
				} else {
					d.addInvalid(st, child)
					levels[size+1] = append(levels[size+1], child)
				}
			}
		}
	}
}

// checkWitnesses re-establishes the invalid border after a delete/update
// batch. An FD whose witness pair survived is still invalid, for O(|X|);
// an FD whose pair the batch destroyed is re-probed — still invalid means a
// fresh witness, valid means the valid region grew downward and the new
// minimal FDs below it must be found.
func (d *IncrementalDiscoverer) checkWitnesses(st *consequentState, ctx *batchCtx) {
	var flipped []bitset.Set
	kept := st.invalid[:0]
	for _, b := range st.invalid {
		d.stats.WitnessChecks++
		if d.witnessIntact(st, b) {
			kept = append(kept, b)
			continue
		}
		d.stats.WitnessBroken++
		if d.probe(st, b.x) {
			ctx.memo[b.x.Key()] = true
			flipped = append(flipped, b.x)
			continue
		}
		ctx.memo[b.x.Key()] = false
		b.w1, b.w2 = d.mustWitness(st, b.x)
		kept = append(kept, b)
	}
	st.invalid = kept
	for _, x := range flipped {
		d.searchDown(st, x, ctx)
	}
}

// searchDown explores the valid region at and below the newly-valid w:
// every minimal valid set in it is promoted (superseding cover members it
// generalises), and every invalid set probed on the way joins the border —
// which is what keeps the border's downward closure covering the whole
// invalid region after it shrank.
func (d *IncrementalDiscoverer) searchDown(st *consequentState, w bitset.Set, ctx *batchCtx) {
	key := w.Key()
	if ctx.descended[key] {
		return
	}
	ctx.descended[key] = true
	if d.coverHasExact(st, w) {
		return
	}
	anyValid := false
	if w.Len() > 1 {
		for _, b := range w.Members() {
			g := w.Without(b)
			gKey := g.Key()
			valid, seen := ctx.memo[gKey]
			if !seen {
				if d.coverDominates(st, g) {
					valid = true
				} else {
					valid = d.probe(st, g)
				}
				ctx.memo[gKey] = valid
			}
			if valid {
				anyValid = true
				d.searchDown(st, g, ctx)
			} else {
				d.addInvalid(st, g)
			}
		}
	}
	if !anyValid {
		d.promote(st, w)
	}
}

// probe compares |π_X| with |π_XA| on the current instance — the one
// operation whose count IncStats.Probes bounds.
func (d *IncrementalDiscoverer) probe(st *consequentState, x bitset.Set) bool {
	d.stats.Probes++
	return d.counter.Count(x) == d.counter.Count(x.Union(st.ySet))
}

// promote installs x as a minimal cover FD (idempotently), recording the
// generation stamps of its two counts for O(1) future revalidation and
// removing any cover member it generalises. The counter's tracked-set bound
// is raised before the two stamp queries, so growing the cover never evicts
// the indices the growth is about to depend on.
func (d *IncrementalDiscoverer) promote(st *consequentState, x bitset.Set) {
	for _, f := range st.valid {
		if f.x.Equal(x) {
			return
		}
	}
	d.ensureCapacity()
	xa := x.Union(st.ySet)
	_, genX := d.counter.CountWithGen(x)
	_, genXA := d.counter.CountWithGen(xa)
	kept := st.valid[:0]
	for _, f := range st.valid {
		if x.ProperSubsetOf(f.x) {
			d.stats.Superseded++
			continue
		}
		kept = append(kept, f)
	}
	st.valid = append(kept, &coverFD{x: x, xa: xa, genX: genX, genXA: genXA})
	d.stats.Promoted++
}

// addInvalid records x on the witnessed border unless an existing member
// already covers it (x ⊆ member ⇒ member's witness shields x's whole
// down-set), dropping members x itself covers so the border stays an
// antichain of maximal invalid sets.
func (d *IncrementalDiscoverer) addInvalid(st *consequentState, x bitset.Set) {
	for _, b := range st.invalid {
		if x.SubsetOf(b.x) {
			return
		}
	}
	w1, w2 := d.mustWitness(st, x)
	kept := st.invalid[:0]
	for _, b := range st.invalid {
		if b.x.SubsetOf(x) {
			continue
		}
		kept = append(kept, b)
	}
	st.invalid = append(kept, &borderFD{x: x.Clone(), cols: x.Members(), w1: w1, w2: w2})
}

// witnessIntact reports whether the stored violating pair still violates
// X → A: both rows live, still agreeing on X, still differing on A. Codes
// are read from the live column stores, so an update that rewrote either
// row's cells is detected by value, not by bookkeeping.
func (d *IncrementalDiscoverer) witnessIntact(st *consequentState, b *borderFD) bool {
	r := d.counter.Relation()
	if r.IsDeleted(b.w1) || r.IsDeleted(b.w2) {
		return false
	}
	for _, col := range b.cols {
		codes := r.ColumnCodes(col)
		if codes[b.w1] != codes[b.w2] {
			return false
		}
	}
	codes := r.ColumnCodes(st.y)
	return codes[b.w1] != codes[b.w2]
}

// mustWitness extracts a violating pair for an FD the caller just proved
// invalid: two rows of one antecedent cluster with different consequent
// codes. Singleton clusters cannot violate, so scanning the stripped
// partition suffices; ForEachClass streams arena views and decoded bitmap
// classes without materialising a [][]int32.
func (d *IncrementalDiscoverer) mustWitness(st *consequentState, x bitset.Set) (int, int) {
	p := d.counter.Partition(x)
	codes := d.counter.Relation().ColumnCodes(st.y)
	w1, w2 := -1, -1
	p.ForEachClass(func(cls []int32) bool {
		c0 := codes[cls[0]]
		for _, row := range cls[1:] {
			if codes[row] != c0 {
				w1, w2 = int(cls[0]), int(row)
				return false
			}
		}
		return true
	})
	if w1 < 0 {
		panic(fmt.Sprintf("discovery: no witness for invalid FD %v -> %d", x, st.y))
	}
	return w1, w2
}

// coverDominates reports whether some cover member is a subset of x, i.e.
// x is valid but not minimal (the levelwise pruning rule).
func (d *IncrementalDiscoverer) coverDominates(st *consequentState, x bitset.Set) bool {
	for _, f := range st.valid {
		if f.x.SubsetOf(x) {
			return true
		}
	}
	return false
}

// coverHasExact reports whether x itself is a cover member.
func (d *IncrementalDiscoverer) coverHasExact(st *consequentState, x bitset.Set) bool {
	for _, f := range st.valid {
		if f.x.Equal(x) {
			return true
		}
	}
	return false
}

// ensureCapacity keeps the counter's tracked-set bound above the cover's
// working set (X and XA per cover FD), so stamp revalidation stays O(1)
// instead of thrashing the LRU into O(n) rebuilds.
func (d *IncrementalDiscoverer) ensureCapacity() {
	n := 64
	for _, st := range d.states {
		n += 2 * len(st.valid)
	}
	d.counter.EnsureTrackedCapacity(n)
}
