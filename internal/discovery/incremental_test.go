package discovery

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// assertCoversEqual fails unless the incrementally-maintained cover equals a
// fresh from-scratch discovery over the same instance and options.
func assertCoversEqual(t *testing.T, tag string, r *relation.Relation, d *IncrementalDiscoverer, opts Options) {
	t.Helper()
	got := d.Cover()
	want, _ := MinimalFDs(pli.NewPLICounter(r), opts)
	if len(got) != len(want) {
		t.Fatalf("%s: incremental cover has %d FDs, fresh discovery %d\n got: %v\nwant: %v",
			tag, len(got), len(want), got, want)
	}
	for i := range got {
		if !got[i].X.Equal(want[i].X) || !got[i].Y.Equal(want[i].Y) {
			t.Fatalf("%s: cover FD %d: incremental %v, fresh %v", tag, i, got[i], want[i])
		}
	}
}

// TestIncrementalDiscovererMixedDMLDifferential is the core correctness
// test: on small low-cardinality relations (so validity flips constantly),
// random append/delete/update streams must leave the maintained cover equal
// to a fresh levelwise discovery after every single batch.
func TestIncrementalDiscovererMixedDMLDifferential(t *testing.T) {
	cards := []int{3, 3, 2, 4}
	cols := []string{"a", "b", "c", "d"}
	opts := Options{MaxLHS: 3}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		randCells := func() []string {
			cells := make([]string, len(cols))
			for i, card := range cards {
				cells[i] = string(rune('A' + rng.Intn(card)))
			}
			return cells
		}
		r := buildRelation(t, cols, nil)
		for i := 0; i < 16; i++ {
			if err := r.AppendStrings(randCells()...); err != nil {
				t.Fatal(err)
			}
		}
		counter := pli.NewIncrementalCounter(r)
		d := NewIncrementalDiscoverer(counter, opts)
		assertCoversEqual(t, fmt.Sprintf("seed %d: seed cover", seed), r, d, opts)

		live := make([]int, r.NumRows())
		for i := range live {
			live[i] = i
		}
		for batch := 0; batch < 25; batch++ {
			ops := 1 + rng.Intn(4)
			for op := 0; op < ops; op++ {
				switch roll := rng.Intn(10); {
				case roll < 4 || len(live) == 0:
					if err := r.AppendStrings(randCells()...); err != nil {
						t.Fatal(err)
					}
					live = append(live, r.NumRows()-1)
				case roll < 7:
					i := rng.Intn(len(live))
					if err := counter.Delete(live[i]); err != nil {
						t.Fatal(err)
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				default:
					row := live[rng.Intn(len(live))]
					if err := counter.UpdateStrings(row, randCells()...); err != nil {
						t.Fatal(err)
					}
				}
			}
			assertCoversEqual(t, fmt.Sprintf("seed %d batch %d", seed, batch), r, d, opts)
		}
	}
}

// TestIncrementalDiscovererDeleteToEmpty drains the relation completely
// (every FD becomes vacuously valid, like a fresh discovery reports) and
// then refills it.
func TestIncrementalDiscovererDeleteToEmpty(t *testing.T) {
	opts := Options{MaxLHS: 2}
	r := buildRelation(t, []string{"a", "b", "c"}, [][]string{
		{"1", "x", "p"}, {"1", "y", "p"}, {"2", "x", "q"},
	})
	counter := pli.NewIncrementalCounter(r)
	d := NewIncrementalDiscoverer(counter, opts)
	for row := 0; row < 3; row++ {
		if err := counter.Delete(row); err != nil {
			t.Fatal(err)
		}
		assertCoversEqual(t, fmt.Sprintf("after delete %d", row), r, d, opts)
	}
	if err := r.AppendStrings("3", "z", "r"); err != nil {
		t.Fatal(err)
	}
	assertCoversEqual(t, "after refill", r, d, opts)
}

// TestIncrementalDiscovererNullTransitions exercises the reseed path: a
// NULL appearing in a column removes it from the discovery pool, and the
// last NULL leaving restores it — both must redraw the cover exactly like a
// fresh discovery does.
func TestIncrementalDiscovererNullTransitions(t *testing.T) {
	opts := Options{MaxLHS: 2}
	r := buildRelation(t, []string{"a", "b"}, [][]string{
		{"1", "x"}, {"2", "y"},
	})
	counter := pli.NewIncrementalCounter(r)
	d := NewIncrementalDiscoverer(counter, opts)

	if err := r.AppendStrings("3", ""); err != nil { // NULL: b leaves the pool
		t.Fatal(err)
	}
	assertCoversEqual(t, "after NULL append", r, d, opts)
	if got := d.Stats().Reseeds; got != 1 {
		t.Fatalf("NULL appearance should reseed once, got %d", got)
	}
	if err := counter.Delete(2); err != nil { // last NULL leaves: b returns
		t.Fatal(err)
	}
	assertCoversEqual(t, "after NULL delete", r, d, opts)
	if got := d.Stats().Reseeds; got != 2 {
		t.Fatalf("NULL disappearance should reseed again, got %d", got)
	}
}

// TestIncrementalDiscovererOutOfBandMutations applies deletes and updates
// directly to the relation, bypassing the incremental counter; the
// discoverer must detect them via relation.Mutations and stay correct.
func TestIncrementalDiscovererOutOfBandMutations(t *testing.T) {
	opts := Options{MaxLHS: 2}
	r := buildRelation(t, []string{"a", "b", "c"}, [][]string{
		{"1", "x", "p"}, {"1", "x", "q"}, {"2", "y", "p"}, {"3", "y", "q"},
	})
	counter := pli.NewIncrementalCounter(r)
	d := NewIncrementalDiscoverer(counter, opts)

	if err := r.Delete(1); err != nil { // not counter.Delete
		t.Fatal(err)
	}
	assertCoversEqual(t, "out-of-band delete", r, d, opts)
	if err := r.UpdateStrings(2, "1", "x", "r"); err != nil { // not counter.Update
		t.Fatal(err)
	}
	assertCoversEqual(t, "out-of-band update", r, d, opts)
}

// TestIncrementalDiscovererConsequentsOption restricts discovery to one
// consequent and checks parity with MinimalFDs under DML.
func TestIncrementalDiscovererConsequentsOption(t *testing.T) {
	opts := Options{MaxLHS: 2, Consequents: []int{1}}
	r := buildRelation(t, []string{"a", "b", "c"}, [][]string{
		{"1", "x", "p"}, {"2", "x", "q"}, {"3", "y", "p"},
	})
	counter := pli.NewIncrementalCounter(r)
	d := NewIncrementalDiscoverer(counter, opts)
	assertCoversEqual(t, "seed", r, d, opts)
	for _, fd := range d.Cover() {
		if fd.Y.Min() != 1 {
			t.Fatalf("consequent filter violated: %v", fd)
		}
	}
	if err := r.AppendStrings("1", "z", "p"); err != nil { // breaks a → b
		t.Fatal(err)
	}
	assertCoversEqual(t, "after break", r, d, opts)
	if err := counter.Delete(3); err != nil { // restores a → b
		t.Fatal(err)
	}
	assertCoversEqual(t, "after restore", r, d, opts)
}

// TestIncrementalDiscovererStats pins the O(affected region) observables: a
// batch that appends an exact duplicate tuple changes no projection count,
// so nothing is revalidated or probed; a batch that breaks a cover FD
// demotes it and expands only its frontier; a delete that restores the FD
// promotes it back via a witness break.
func TestIncrementalDiscovererStats(t *testing.T) {
	r := buildRelation(t, []string{"a", "b", "c"}, [][]string{
		{"1", "x", "p"}, {"2", "y", "q"},
	})
	counter := pli.NewIncrementalCounter(r)
	d := NewIncrementalDiscoverer(counter, Options{MaxLHS: 2})
	if got := d.Stats(); got != (IncStats{}) {
		t.Fatalf("stats must start at zero, got %+v", got)
	}

	// Duplicate tuple: every projection keeps its cluster count.
	if err := r.AppendStrings("1", "x", "p"); err != nil {
		t.Fatal(err)
	}
	d.Sync()
	got := d.Stats()
	if got.Batches != 1 {
		t.Fatalf("batches = %d, want 1", got.Batches)
	}
	if got.Revalidated != 0 || got.Probes != 0 || got.Demoted != 0 || got.Promoted != 0 {
		t.Fatalf("duplicate append must disturb nothing, got %+v", got)
	}

	// Break a → b: row 3 shares a=1 with rows 0 and 2 but has b=z.
	if err := r.AppendStrings("1", "z", "p"); err != nil {
		t.Fatal(err)
	}
	d.Sync()
	got = d.Stats()
	if got.Demoted == 0 || got.FrontierExpanded == 0 {
		t.Fatalf("breaking append must demote and expand the frontier, got %+v", got)
	}
	assertCoversEqual(t, "after break", r, d, Options{MaxLHS: 2})

	// Delete the violating tuple: its witnesses break, a → b is promoted back.
	prev := got
	if err := counter.Delete(3); err != nil {
		t.Fatal(err)
	}
	d.Sync()
	got = d.Stats()
	if got.WitnessChecks == prev.WitnessChecks || got.WitnessBroken == prev.WitnessBroken {
		t.Fatalf("delete must check and break witnesses, got %+v (was %+v)", got, prev)
	}
	if got.Promoted == prev.Promoted {
		t.Fatalf("restoring delete must promote, got %+v (was %+v)", got, prev)
	}
	assertCoversEqual(t, "after restore", r, d, Options{MaxLHS: 2})
}

// TestIncrementalDiscovererAppendStream mirrors the streaming-appends
// workload at unit scale: batches of random appends with differential
// agreement at every step, and MaxLHS 1 to cover the no-expansion edge.
func TestIncrementalDiscovererAppendStream(t *testing.T) {
	for _, maxLHS := range []int{1, 2} {
		opts := Options{MaxLHS: maxLHS}
		rng := rand.New(rand.NewSource(7))
		r := buildRelation(t, []string{"a", "b", "c"}, [][]string{{"A", "A", "A"}})
		counter := pli.NewIncrementalCounter(r)
		d := NewIncrementalDiscoverer(counter, opts)
		for batch := 0; batch < 20; batch++ {
			for i := 0; i <= rng.Intn(3); i++ {
				cells := []string{
					string(rune('A' + rng.Intn(2))),
					string(rune('A' + rng.Intn(3))),
					string(rune('A' + rng.Intn(2))),
				}
				if err := r.AppendStrings(cells...); err != nil {
					t.Fatal(err)
				}
			}
			assertCoversEqual(t, fmt.Sprintf("maxLHS %d batch %d", maxLHS, batch), r, d, opts)
		}
	}
}

// TestIncrementalDiscovererCoverSorted checks the public Cover contract:
// sorted identically to MinimalFDs (consequent, antecedent size, attribute
// order), so covers can be diffed positionally.
func TestIncrementalDiscovererCoverSorted(t *testing.T) {
	r := buildRelation(t, []string{"a", "b", "c", "d"}, [][]string{
		{"1", "x", "p", "m"}, {"2", "x", "q", "m"}, {"3", "y", "p", "n"},
	})
	d := NewIncrementalDiscoverer(pli.NewIncrementalCounter(r), Options{MaxLHS: 2})
	cover := d.Cover()
	sorted := append([]core.FD(nil), cover...)
	sortFDs(sorted)
	for i := range cover {
		if !cover[i].X.Equal(sorted[i].X) || !cover[i].Y.Equal(sorted[i].Y) {
			t.Fatalf("cover not sorted at %d: %v", i, cover)
		}
	}
	if d.CoverSize() != len(cover) {
		t.Fatalf("CoverSize %d != len(Cover) %d", d.CoverSize(), len(cover))
	}
	if d.BorderSize() == 0 {
		t.Fatal("expected a non-empty invalid border on this instance")
	}
}
