package discovery

import (
	"math/rand"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/datasets"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
)

func buildRelation(t testing.TB, cols []string, rows [][]string) *relation.Relation {
	t.Helper()
	schema, err := relation.SchemaOf(cols...)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New("t", schema)
	for _, row := range rows {
		if err := r.AppendStrings(row...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestMinimalFDsSimple(t *testing.T) {
	// a determines b (copy); nothing else holds at size 1.
	r := buildRelation(t, []string{"a", "b", "c"}, [][]string{
		{"1", "x", "p"}, {"1", "x", "q"}, {"2", "y", "p"}, {"3", "y", "q"},
	})
	fds, stats := MinimalFDs(pli.NewPLICounter(r), Options{MaxLHS: 1})
	if stats.Checked == 0 {
		t.Fatal("no checks performed")
	}
	found := map[string]bool{}
	for _, fd := range fds {
		found[fd.String()] = true
	}
	if !found[core.MustFD("", bitset.New(0), bitset.New(1)).String()] {
		t.Fatalf("a→b not discovered: %v", fds)
	}
	for _, fd := range fds {
		if fd.X.Equal(bitset.New(1)) && fd.Y.Equal(bitset.New(0)) {
			t.Fatal("b→a must not be discovered (b=y maps to a=2 and a=3)")
		}
	}
}

func TestMinimalFDsMinimality(t *testing.T) {
	// {a,b} → c exact by construction, no single attribute suffices, and no
	// superset should be reported.
	r := datasets.Synthesize("t", 300, 5, []datasets.ColumnSpec{
		{Name: "a", Card: 4, Salt: 1},
		{Name: "b", Card: 4, Salt: 2},
		{Name: "c", Card: 6, DerivedFrom: []int{0, 1}, Salt: 3},
		{Name: "d", Card: 3, Salt: 4},
	})
	counter := pli.NewPLICounter(r)
	fds, _ := MinimalFDs(counter, Options{MaxLHS: 3})
	sawAB := false
	for _, fd := range fds {
		if !fd.Y.Equal(bitset.New(2)) {
			continue
		}
		if fd.X.Equal(bitset.New(0, 1)) {
			sawAB = true
		}
		if bitset.New(0, 1).ProperSubsetOf(fd.X) {
			t.Fatalf("non-minimal FD reported: %v", fd)
		}
	}
	if !sawAB {
		t.Fatal("{a,b}→c not discovered")
	}
	// Every reported FD must actually hold, and removing any antecedent
	// attribute must break it (true minimality).
	for _, fd := range fds {
		if !r.SatisfiesFD(fd.X, fd.Y) {
			t.Fatalf("discovered FD does not hold: %v", fd)
		}
		fd.X.ForEach(func(a int) bool {
			if r.SatisfiesFD(fd.X.Without(a), fd.Y) {
				t.Fatalf("FD %v not minimal: dropping %d still holds", fd, a)
			}
			return true
		})
	}
}

func TestMinimalFDsSkipsNullColumns(t *testing.T) {
	r := buildRelation(t, []string{"a", "n"}, [][]string{
		{"1", "x"}, {"2", ""},
	})
	fds, _ := MinimalFDs(pli.NewPLICounter(r), Options{MaxLHS: 2})
	for _, fd := range fds {
		if fd.Attrs().Contains(1) {
			t.Fatalf("NULL column appeared in %v", fd)
		}
	}
}

func TestMinimalFDsConsequentFilterAndMaxResults(t *testing.T) {
	r := datasets.Places()
	counter := pli.NewPLICounter(r)
	area := r.Schema().Index("AreaCode")
	fds, _ := MinimalFDs(counter, Options{MaxLHS: 1, Consequents: []int{area}})
	for _, fd := range fds {
		if !fd.Y.Equal(bitset.New(area)) {
			t.Fatalf("consequent filter violated: %v", fd)
		}
	}
	// Municipal → AreaCode is exact on Places (Table 1).
	municipal := r.Schema().Index("Municipal")
	found := false
	for _, fd := range fds {
		if fd.X.Equal(bitset.New(municipal)) {
			found = true
		}
	}
	if !found {
		t.Fatal("Municipal→AreaCode not discovered")
	}

	capped, _ := MinimalFDs(counter, Options{MaxLHS: 2, MaxResults: 3})
	if len(capped) > 3 {
		t.Fatalf("MaxResults ignored: %d", len(capped))
	}
	// Out-of-range consequents are ignored silently.
	none, _ := MinimalFDs(counter, Options{Consequents: []int{-1, 99}})
	if len(none) != 0 {
		t.Fatalf("bogus consequents produced FDs: %v", none)
	}
}

// TestQuickDiscoveryMatchesBruteForce cross-checks discovery against
// exhaustive enumeration of minimal FDs on random relations.
func TestQuickDiscoveryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 40; iter++ {
		rows := make([][]string, 2+rng.Intn(15))
		for i := range rows {
			rows[i] = []string{
				string(rune('A' + rng.Intn(3))),
				string(rune('A' + rng.Intn(3))),
				string(rune('A' + rng.Intn(2))),
				string(rune('A' + rng.Intn(3))),
			}
		}
		r := buildRelation(t, []string{"a", "b", "c", "d"}, rows)
		got, _ := MinimalFDs(pli.NewPLICounter(r), Options{MaxLHS: 3})
		want := bruteForceMinimalFDs(r, 3)
		if len(got) != len(want) {
			t.Fatalf("iter %d: %d FDs, brute force %d\n got: %v\nwant: %v",
				iter, len(got), len(want), got, want)
		}
		for i := range got {
			if !got[i].X.Equal(want[i].X) || !got[i].Y.Equal(want[i].Y) {
				t.Fatalf("iter %d: FD %d: %v vs %v", iter, i, got[i], want[i])
			}
		}
	}
}

func bruteForceMinimalFDs(r *relation.Relation, maxLHS int) []core.FD {
	var out []core.FD
	n := r.NumCols()
	for y := 0; y < n; y++ {
		ySet := bitset.New(y)
		var minimal []bitset.Set
		for size := 1; size <= maxLHS; size++ {
			for mask := 0; mask < 1<<n; mask++ {
				var x bitset.Set
				for c := 0; c < n; c++ {
					if mask&(1<<c) != 0 {
						x.Add(c)
					}
				}
				if x.Len() != size || x.Contains(y) {
					continue
				}
				dominated := false
				for _, m := range minimal {
					if m.SubsetOf(x) {
						dominated = true
						break
					}
				}
				if dominated || !r.SatisfiesFD(x, ySet) {
					continue
				}
				minimal = append(minimal, x)
				out = append(out, core.MustFD("", x, ySet))
			}
		}
	}
	sortFDs(out)
	return out
}

func TestExtensionsOf(t *testing.T) {
	r := datasets.Places()
	counter := pli.NewPLICounter(r)
	designer, err := core.ParseFD(r.Schema(), "F1", "District, Region -> AreaCode")
	if err != nil {
		t.Fatal(err)
	}
	area := r.Schema().Index("AreaCode")
	discovered, _ := MinimalFDs(counter, Options{MaxLHS: 3, Consequents: []int{area}})
	ext := ExtensionsOf(discovered, designer)
	// §2's criticism holds on Places: the minimal FDs determining AreaCode
	// (e.g. Municipal→AreaCode, PhNo→AreaCode) are NOT extensions of
	// F1's antecedent {District, Region} — discovery alone would not hand
	// the designer an evolution of F1.
	if len(ext) != 0 {
		t.Fatalf("expected no discovered extension of F1, got %v", ext)
	}
	// Sanity: the filter does accept genuine extensions.
	fake := []core.FD{designer.WithExtendedAntecedent(bitset.New(r.Schema().Index("Municipal")))}
	if got := ExtensionsOf(fake, designer); len(got) != 1 {
		t.Fatalf("genuine extension not recognised: %v", got)
	}
}

func TestForEachSubsetEdges(t *testing.T) {
	var seen [][]int
	forEachSubset([]int{1, 2, 3}, 2, func(attrs []int) bool {
		cp := append([]int(nil), attrs...)
		seen = append(seen, cp)
		return true
	})
	if len(seen) != 3 {
		t.Fatalf("2-subsets of 3 = %d, want 3", len(seen))
	}
	forEachSubset([]int{1}, 2, func([]int) bool {
		t.Fatal("k > n must enumerate nothing")
		return true
	})
	forEachSubset([]int{1, 2}, 0, func([]int) bool {
		t.Fatal("k = 0 must enumerate nothing")
		return true
	})
	// Early stop.
	count := 0
	forEachSubset([]int{1, 2, 3, 4}, 1, func([]int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop failed: %d", count)
	}
}
