package discovery

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/evolvefd/evolvefd/internal/pli"
)

// TestDiscovererOnCompactRemapsWitnesses proves the remap path: after a
// Sync + Compact + OnCompact round trip the maintained cover still equals a
// fresh discovery, no reseed happened, and the stamp-preserving compaction
// kept revalidation free (no new probes beyond the witness bookkeeping).
func TestDiscovererOnCompactRemapsWitnesses(t *testing.T) {
	cols := []string{"a", "b", "c"}
	opts := Options{MaxLHS: 2}
	r := buildRelation(t, cols, [][]string{
		{"A", "1", "x"}, {"A", "1", "x"}, {"A", "2", "x"},
		{"B", "1", "y"}, {"B", "2", "y"}, {"C", "3", "z"},
	})
	counter := pli.NewIncrementalCounter(r)
	d := NewIncrementalDiscoverer(counter, opts)
	assertCoversEqual(t, "seed", r, d, opts)
	if d.BorderSize() == 0 {
		t.Fatal("test instance must leave a non-empty invalid border")
	}

	// Delete a duplicate row (no count changes) and compact through the
	// counter, then remap the witnesses.
	if err := counter.Delete(1); err != nil {
		t.Fatal(err)
	}
	d.Sync()
	probes := d.Stats().Probes
	m := counter.Compact()
	if m == nil {
		t.Fatal("Compact returned nil with a tombstone present")
	}
	d.OnCompact(m)
	assertCoversEqual(t, "after compaction", r, d, opts)
	st := d.Stats()
	if st.Reseeds != 0 {
		t.Fatalf("remap path reseeded %d times, want 0", st.Reseeds)
	}
	// Cover revalidation after the compaction is stamp-based: the Cover call
	// inside the differential may probe only around witness churn from the
	// delete itself, not re-enumerate the lattice (seeding probed every node
	// once; a reseed would at least double it).
	if st.Probes > probes+d.BorderSize() {
		t.Fatalf("compaction triggered %d fresh probes, want ≤ border size %d",
			st.Probes-probes, d.BorderSize())
	}

	// Witnesses must now carry new-epoch row ids: every further batch relies
	// on them, so stream more DML and re-compare.
	if err := r.AppendStrings("C", "3", "w"); err != nil {
		t.Fatal(err)
	}
	assertCoversEqual(t, "append after compaction", r, d, opts)
	if err := counter.Delete(0); err != nil {
		t.Fatal(err)
	}
	assertCoversEqual(t, "delete after compaction", r, d, opts)
}

// TestDiscovererOutOfBandCompactionReseeds: compacting the relation without
// OnCompact invalidates every stored witness row id; the discoverer must
// detect the epoch change and fall back to a full reseed instead of reading
// remapped rows through stale ids.
func TestDiscovererOutOfBandCompactionReseeds(t *testing.T) {
	cols := []string{"a", "b", "c"}
	opts := Options{MaxLHS: 2}
	r := buildRelation(t, cols, [][]string{
		{"A", "1", "x"}, {"A", "1", "x"}, {"A", "2", "x"},
		{"B", "1", "y"}, {"B", "2", "y"},
	})
	counter := pli.NewIncrementalCounter(r)
	d := NewIncrementalDiscoverer(counter, opts)
	if err := counter.Delete(2); err != nil {
		t.Fatal(err)
	}
	if r.Compact() == nil { // bypasses both counter and discoverer
		t.Fatal("relation.Compact returned nil")
	}
	assertCoversEqual(t, "after out-of-band compaction", r, d, opts)
	if got := d.Stats().Reseeds; got != 1 {
		t.Fatalf("Reseeds = %d, want 1", got)
	}
}

// TestDiscovererCompactionStreamDifferential fuzzes the full loop: random
// mixed DML with periodic Sync+Compact+OnCompact crossings, cover checked
// against fresh discovery after every batch, reseeds forbidden.
func TestDiscovererCompactionStreamDifferential(t *testing.T) {
	cards := []int{3, 3, 2, 4}
	cols := []string{"a", "b", "c", "d"}
	opts := Options{MaxLHS: 3}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		randCells := func() []string {
			cells := make([]string, len(cols))
			for i, card := range cards {
				cells[i] = string(rune('A' + rng.Intn(card)))
			}
			return cells
		}
		r := buildRelation(t, cols, nil)
		for i := 0; i < 16; i++ {
			if err := r.AppendStrings(randCells()...); err != nil {
				t.Fatal(err)
			}
		}
		counter := pli.NewIncrementalCounter(r)
		d := NewIncrementalDiscoverer(counter, opts)

		liveRows := func() []int {
			var out []int
			for row := 0; row < r.NumRows(); row++ {
				if !r.IsDeleted(row) {
					out = append(out, row)
				}
			}
			return out
		}
		compactions := 0
		for batch := 0; batch < 15; batch++ {
			for op := 0; op < 5; op++ {
				live := liveRows()
				switch roll := rng.Intn(3); {
				case roll == 0 || len(live) < 3:
					if err := r.AppendStrings(randCells()...); err != nil {
						t.Fatal(err)
					}
				case roll == 1:
					if err := counter.Delete(live[rng.Intn(len(live))]); err != nil {
						t.Fatal(err)
					}
				default:
					if err := counter.UpdateStrings(live[rng.Intn(len(live))], randCells()...); err != nil {
						t.Fatal(err)
					}
				}
			}
			if batch%4 == 3 {
				d.Sync()
				if m := counter.Compact(); m != nil {
					d.OnCompact(m)
					compactions++
				}
			}
			assertCoversEqual(t, fmt.Sprintf("seed %d batch %d", seed, batch), r, d, opts)
		}
		if compactions == 0 {
			t.Fatalf("seed %d: stream never compacted", seed)
		}
		if got := d.Stats().Reseeds; got != 0 {
			t.Fatalf("seed %d: %d reseeds on the remap path, want 0", seed, got)
		}
	}
}
