package discovery_test

import (
	"fmt"

	"github.com/evolvefd/evolvefd/internal/datasets"
	"github.com/evolvefd/evolvefd/internal/discovery"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// ExampleOptions bounds the levelwise search on the paper's running
// example: restricted to single-attribute antecedents and the AreaCode
// consequent, the only minimal exact FD is Municipal → AreaCode — the same
// dependency Table 1 scores with goodness 0.
func ExampleOptions() {
	r := datasets.Places()
	fds, stats := discovery.MinimalFDs(pli.NewPLICounter(r), discovery.Options{
		MaxLHS:      1,
		Consequents: []int{r.Schema().Index("AreaCode")},
	})
	for _, fd := range fds {
		fmt.Println(fd.FormatWith(r.Schema()))
	}
	fmt.Println("exactness checks:", stats.Checked)
	// Output:
	// [Municipal] -> [AreaCode]
	// exactness checks: 8
}

// ExampleIncrementalDiscoverer maintains a minimal cover across DML: the
// appended tuple breaks a → b (demoting it from the cover), and deleting it
// again flips the witnessed border entry back — all without re-running the
// levelwise search.
func ExampleIncrementalDiscoverer() {
	schema, _ := relation.SchemaOf("a", "b")
	r := relation.New("t", schema)
	r.MustAppend(relation.String("1"), relation.String("x"))
	r.MustAppend(relation.String("2"), relation.String("y"))

	counter := pli.NewIncrementalCounter(r)
	d := discovery.NewIncrementalDiscoverer(counter, discovery.Options{MaxLHS: 1})
	fmt.Println("seed cover:", d.Cover())

	r.MustAppend(relation.String("1"), relation.String("z")) // breaks a → b
	fmt.Println("after append:", d.Cover())

	counter.Delete(2) // a → b holds again
	fmt.Println("after delete:", d.Cover())

	stats := d.Stats()
	fmt.Printf("demoted %d, promoted %d, witness checks %d\n",
		stats.Demoted, stats.Promoted, stats.WitnessChecks)
	// Output:
	// seed cover: [{1} -> {0} {0} -> {1}]
	// after append: [{1} -> {0}]
	// after delete: [{1} -> {0} {0} -> {1}]
	// demoted 1, promoted 1, witness checks 1
}
