// Package datasets provides the relation instances used by the paper's
// examples and experiments: the exact Places running example of Figure 1
// (§1, reconstructed so that every measure the paper prints — Table 1,
// Table 2, Figure 2 — holds exactly; see places.go for the derivation) and
// deterministic synthetic stand-ins for the six real-life relations of
// §6.2 (Country, Rental, Image, PageLinks, Veterans), whose original files
// (MySQL sample databases, Wikimedia dumps, KDD Cup 98) are not
// redistributable here.
//
// Synthesize builds schemas from ColumnSpec lists with planted exact and
// approximate FDs (DerivedFrom columns are functions of other columns), so
// experiments know ground truth: the incremental, churn and discoverchurn
// experiments in internal/bench all stream mutations drawn from these
// distributions. TPC-H generation (§6.1) lives in internal/tpch.
package datasets
