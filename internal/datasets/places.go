package datasets

import (
	"github.com/evolvefd/evolvefd/internal/relation"
)

// placesRows is the Places instance of Figure 1.
//
// Reconstruction note: the machine-extracted text of Figure 1 scrambles the
// row order of the District, Region and Municipal columns. The rows below
// are reconstructed so that every measure printed in the paper holds
// exactly, which pins the data uniquely:
//
//   - c_F1 = 2/4, g_F1 = −2 for F1: [District,Region] → [AreaCode] requires
//     t1–t5 = Brookside/Granville and t6–t11 = Alexandria/Moore Park
//     (matching Figure 2a's two antecedent clusters);
//   - Table 1's Municipal row (c = 4/4, g = 0) and Figure 2b's clusters
//     {t1,t2,t3},{t4,t5},{t6,t7,t8},{t9,t10,t11} force Municipal =
//     3×Glendale, 2×Guildwood, 3×NapaHill, 3×QueenAnne in that order (the
//     same multiset the figure text carries);
//   - every other cell is as printed; all remaining rows of Tables 1 and 2
//     and the measures of F2, F3 and F4 then match exactly (verified in
//     internal/core tests).
var placesRows = [][]string{
	//  District      Region        Municipal    Area  PhNo        Street      Zip      City       State
	{"Brookside", "Granville", "Glendale", "613", "974-2345", "Boxwood", "10211", "NY", "NY"},
	{"Brookside", "Granville", "Glendale", "613", "974-2345", "Boxwood", "10211", "NY", "NY"},
	{"Brookside", "Granville", "Glendale", "613", "299-1010", "Westlane", "10211", "NY", "MA"},
	{"Brookside", "Granville", "Guildwood", "515", "220-1200", "Squire", "02215", "Boston", "MA"},
	{"Brookside", "Granville", "Guildwood", "515", "220-1200", "Squire", "02215", "Boston", "MA"},
	{"Alexandria", "Moore Park", "NapaHill", "415", "220-1200", "Napa", "60415", "Chicago", "IL"},
	{"Alexandria", "Moore Park", "NapaHill", "415", "930-2525", "Main", "60415", "Chicago", "IL"},
	{"Alexandria", "Moore Park", "NapaHill", "415", "555-1234", "Tower", "60415", "Chester", "IL"},
	{"Alexandria", "Moore Park", "QueenAnne", "517", "888-5152", "Main", "60415", "Chicago", "IL"},
	{"Alexandria", "Moore Park", "QueenAnne", "517", "888-5152", "Main", "60601", "Chicago", "IL"},
	{"Alexandria", "Moore Park", "QueenAnne", "517", "888-5152", "Bay", "60601", "Chicago", "IL"},
}

// Places builds the running-example relation of Figure 1: 9 attributes,
// 11 tuples. All columns are strings (AreaCode and Zip carry leading zeros
// and are identifiers, not numbers).
func Places() *relation.Relation {
	schema := relation.MustSchema(
		relation.Column{Name: "District", Kind: relation.KindString},
		relation.Column{Name: "Region", Kind: relation.KindString},
		relation.Column{Name: "Municipal", Kind: relation.KindString},
		relation.Column{Name: "AreaCode", Kind: relation.KindString},
		relation.Column{Name: "PhNo", Kind: relation.KindString},
		relation.Column{Name: "Street", Kind: relation.KindString},
		relation.Column{Name: "Zip", Kind: relation.KindString},
		relation.Column{Name: "City", Kind: relation.KindString},
		relation.Column{Name: "State", Kind: relation.KindString},
	)
	r := relation.New("places", schema)
	for _, row := range placesRows {
		if err := r.AppendStrings(row...); err != nil {
			panic("datasets: places data invalid: " + err.Error())
		}
	}
	return r
}

// PlacesFDs returns the three dependencies defined on Places in §1:
//
//	F1: [District, Region] → [AreaCode]
//	F2: [Zip]              → [City, State]
//	F3: [PhNo, Zip]        → [Street]
//
// as FD text specs to be parsed against the Places schema (kept as text so
// this package does not depend on internal/core).
func PlacesFDs() map[string]string {
	return map[string]string{
		"F1": "District, Region -> AreaCode",
		"F2": "Zip -> City, State",
		"F3": "PhNo, Zip -> Street",
	}
}

// PlacesF4 returns the §4.3 example dependency F4: [District] → [PhNo] used
// to demonstrate multi-attribute repairs (Tables 2 and 3).
func PlacesF4() string { return "District -> PhNo" }
