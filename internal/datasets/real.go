package datasets

import (
	"github.com/evolvefd/evolvefd/internal/relation"
)

// The six relations of Table 6. The paper used: Places (Figure 1), the
// MySQL sample databases world.Country and sakila.Rental, the Wikimedia
// image and pagelinks dumps, and the KDD Cup 98 Veterans table. None of
// those files can ship here, so each has a synthetic stand-in matching the
// arity, cardinality, NULL structure and — crucially — the repair length
// §6.2 reports (Places 2 added attributes, Country 1, Image 2, PageLinks 1),
// which is what drives the observed runtimes. Cardinalities are scalable;
// passing rows ≤ 0 selects the paper's size.

// RealDataset describes one Table 6 experiment: the instance plus the FD
// defined on it ("an FD containing one attribute in the antecedent and one
// in the consequent") and the repair length the construction plants.
type RealDataset struct {
	Relation *relation.Relation
	// FDSpec is the dependency to repair, in ParseFD syntax.
	FDSpec string
	// RepairLen is the minimal number of attributes a repair adds; 0 means
	// no repair exists.
	RepairLen int
	// PaperRows and PaperTime record Table 6's printed cardinality and
	// find-first processing time, for EXPERIMENTS.md comparisons.
	PaperRows int
	PaperTime string
}

// CountryRows is the cardinality of the MySQL world.Country table.
const CountryRows = 239

// Country mimics world.Country: 15 attributes, 239 rows, no NULLs on the FD
// path. The planted dependency Continent = f(Region) makes
// GovernmentForm → Continent repairable by adding exactly {Region}.
func Country(rows int) RealDataset {
	if rows <= 0 {
		rows = CountryRows
	}
	specs := []ColumnSpec{
		{Name: "Code", Card: 0},
		{Name: "Name", Card: 0},
		{Name: "Region", Card: 25},
		{Name: "Continent", Card: 7, DerivedFrom: []int{2}, Salt: 101},
		{Name: "SurfaceArea", Card: 200, Salt: 1},
		{Name: "IndepYear", Card: 120, NullRate: 0.2, Salt: 2},
		{Name: "Population", Card: 230, Salt: 3},
		{Name: "LifeExpectancy", Card: 70, NullRate: 0.1, Salt: 4},
		{Name: "GNP", Card: 220, Salt: 5},
		{Name: "GNPOld", Card: 200, NullRate: 0.3, Salt: 6},
		{Name: "LocalName", Card: 0},
		{Name: "GovernmentForm", Card: 30, Salt: 7},
		{Name: "HeadOfState", Card: 180, Salt: 8},
		{Name: "Capital", Card: 232, NullRate: 0.03, Salt: 9},
		{Name: "Code2", Card: 0},
	}
	return RealDataset{
		Relation:  Synthesize("country", rows, 1002, specs),
		FDSpec:    "GovernmentForm -> Continent",
		RepairLen: 1,
		PaperRows: CountryRows,
		PaperTime: "32ms",
	}
}

// RentalRows is the cardinality of sakila.Rental.
const RentalRows = 16044

// Rental mimics sakila.Rental: 7 attributes, 16044 rows. StaffID =
// f(InventoryID, CustomerID) plants a 1-attribute repair for
// InventoryID → StaffID.
func Rental(rows int) RealDataset {
	if rows <= 0 {
		rows = RentalRows
	}
	specs := []ColumnSpec{
		{Name: "RentalID", Card: 0},
		{Name: "RentalDate", Card: 1500, Salt: 11},
		{Name: "InventoryID", Card: 4580, Salt: 12},
		{Name: "CustomerID", Card: 599, Salt: 13},
		{Name: "ReturnDate", Card: 1500, NullRate: 0.01, Salt: 14},
		{Name: "StaffID", Card: 2, DerivedFrom: []int{2, 3}, Salt: 102},
		{Name: "LastUpdate", Card: 3, Salt: 15},
	}
	return RealDataset{
		Relation:  Synthesize("rental", rows, 1003, specs),
		FDSpec:    "InventoryID -> StaffID",
		RepairLen: 1,
		PaperRows: RentalRows,
		PaperTime: "588ms",
	}
}

// ImageRows is the cardinality of the Wikimedia image table the paper used.
const ImageRows = 124768

// Image mimics the Wikimedia image table: 14 attributes, 124768 rows.
// MediaType = f(MajorMime, MinorMime, Bits) plants a 2-attribute repair
// ({MinorMime, Bits}) for MajorMime → MediaType, matching §6.2: "in the
// Image table, the algorithm had to add 2 attributes".
func Image(rows int) RealDataset {
	if rows <= 0 {
		rows = ImageRows
	}
	// No column is a true key: a UNIQUE attribute would repair any FD alone
	// (§3's degenerate case), contradicting the 2-attribute repair §6.2
	// reports for Image. Name/Description/SHA1 get near-key cardinalities
	// instead (duplicate uploads share names and hashes in real dumps).
	specs := []ColumnSpec{
		{Name: "Name", Card: rows, Salt: 20},
		{Name: "Size", Card: 5000, Salt: 21},
		{Name: "Width", Card: 1200, Salt: 22},
		{Name: "Height", Card: 900, Salt: 23},
		{Name: "Metadata", Card: 4000, NullRate: 0.2, Salt: 24},
		{Name: "Bits", Card: 4, Salt: 25},
		{Name: "MajorMime", Card: 6, Salt: 26},
		{Name: "MinorMime", Card: 25, Salt: 27},
		{Name: "MediaType", Card: 8, DerivedFrom: []int{6, 7, 5}, Salt: 103},
		{Name: "Description", Card: rows, Salt: 33},
		{Name: "User", Card: 3000, Salt: 28},
		{Name: "UserText", Card: 3000, Salt: 29},
		{Name: "Timestamp", Card: 90000, Salt: 30},
		{Name: "SHA1", Card: rows/2 + 1, Salt: 34},
	}
	return RealDataset{
		Relation:  Synthesize("image", rows, 1004, specs),
		FDSpec:    "MajorMime -> MediaType",
		RepairLen: 2,
		PaperRows: ImageRows,
		PaperTime: "2m52s",
	}
}

// PageLinksRows is the cardinality of the Wikimedia pagelinks slice used.
const PageLinksRows = 842159

// PageLinks mimics the Wikimedia pagelinks table: 3 attributes. The FD
// From → Namespace leaves exactly one candidate attribute (Title), which
// repairs it — §6.2: "the algorithm had to consider only the third one".
func PageLinks(rows int) RealDataset {
	if rows <= 0 {
		rows = PageLinksRows
	}
	specs := []ColumnSpec{
		{Name: "From", Card: 60000, Salt: 31},
		{Name: "Title", Card: 90000, Salt: 32},
		{Name: "Namespace", Card: 12, DerivedFrom: []int{0, 1}, Salt: 104},
	}
	return RealDataset{
		Relation:  Synthesize("pagelinks", rows, 1005, specs),
		FDSpec:    "From -> Namespace",
		RepairLen: 1,
		PaperRows: PageLinksRows,
		PaperTime: "4s678ms",
	}
}

// PlacesDataset wraps the running example as a Table 6 row. Table 6 prints
// cardinality 10 although Figure 1 shows 11 tuples; we keep the 11-tuple
// instance that reproduces every other number in the paper. The FD is F4
// (District → PhNo), whose repair adds 2 attributes (§4.3, §6.2).
func PlacesDataset() RealDataset {
	return RealDataset{
		Relation:  Places(),
		FDSpec:    PlacesF4(),
		RepairLen: 2,
		PaperRows: 10,
		PaperTime: "257ms",
	}
}

// Veterans cardinalities from §6.2.1.
const (
	// VeteransRows is the full KDD Cup 98 cardinality.
	VeteransRows = 95412
	// VeteransAttrs is the full attribute count.
	VeteransAttrs = 481
	// VeteransNullFreeAttrs is the number of NULL-free attributes ("323 of
	// which do not have null values").
	VeteransNullFreeAttrs = 323
)

// veteransProfileCol is the fictional position of the hidden profile: a
// virtual source shared by the first twelve columns. Rows with the same
// profile value ("profile twins") agree on columns 0–11 and differ, with
// high probability, in repair_b (column 12) and hence in outcome — so no
// subset of the first 12 columns can ever repair the FD, making the
// 10-attribute grid slices structurally unrepairable. §6.2.1 observes
// exactly this regime: "the algorithm is not able to find a repair" on the
// 10-attribute instances.
const veteransProfileCol = 1000

// veteransSpecs builds the column specs for the first attrs columns of the
// Veterans stand-in at a given row count (the hidden-profile cardinality
// scales with rows to keep several twins per profile). Layout:
//
//	col 0   "target"   — FD antecedent, profile-bound, card 50
//	col 1   "outcome"  — FD consequent = f(target, repair_a, repair_b)
//	col 2–11           — profile-bound fillers (cards 2–10)
//	col 5   "repair_a" — first planted repair attribute, profile-bound
//	col 12  "repair_b" — second repair attribute, independent, card 30
//	col 13+            — independent fillers, cards cycling
//	                     {2, 5, 10, 50, 100, 500}; the high-cardinality
//	                     ones keep the find-all frontier small (most
//	                     3-attribute sets are exact), mirroring the
//	                     donation-amount/date columns of the real KDD data
//	col 30+            — NULL-bearing columns until exactly 481−323 = 158
//	                     of the full 481 columns contain NULLs
func veteransSpecs(rows, attrs int) []ColumnSpec {
	if attrs <= 0 || attrs > VeteransAttrs {
		attrs = VeteransAttrs
	}
	if attrs < 13 {
		// The FD needs target(0), outcome(1) and repair_a(5) materialised;
		// 10-attribute slices are the smallest the grid uses.
		if attrs < 10 {
			attrs = 10
		}
	}
	profileCard := rows / 5
	if profileCard < 40 {
		profileCard = 40
	}
	profile := VirtualSource{Col: veteransProfileCol, Card: profileCard, Salt: 777}
	smallCards := []int{2, 5, 10}
	cards := []int{2, 5, 10, 50, 100, 500}
	specs := make([]ColumnSpec, attrs)
	nullable := 0
	for i := 0; i < attrs; i++ {
		name := veteransColName(i)
		switch {
		case i == 0:
			specs[i] = ColumnSpec{Name: name, Card: 50, Salt: uint64(i),
				VirtualFrom: []VirtualSource{profile}}
		case i == 1:
			// repair_b enters as a virtual source so outcome values stay
			// identical on 10-attribute slices where column 12 is not
			// materialised.
			specs[i] = ColumnSpec{Name: name, Card: 40, DerivedFrom: []int{0, 5}, Salt: 105,
				VirtualFrom: []VirtualSource{{Col: 12, Card: 30, Salt: 12}}}
		case i == 5:
			specs[i] = ColumnSpec{Name: name, Card: 30, Salt: uint64(i),
				VirtualFrom: []VirtualSource{profile}}
		case i == 12:
			specs[i] = ColumnSpec{Name: name, Card: 30, Salt: uint64(i)}
		case i < 12:
			specs[i] = ColumnSpec{Name: name, Card: smallCards[i%len(smallCards)], Salt: uint64(i),
				VirtualFrom: []VirtualSource{profile}}
		default:
			spec := ColumnSpec{Name: name, Card: cards[i%len(cards)], Salt: uint64(i)}
			// Columns 30+ carry NULLs until the 158 nullable columns of
			// the full layout are placed.
			if i >= 30 && nullable < VeteransAttrs-VeteransNullFreeAttrs {
				spec.NullRate = 0.05 + float64(i%10)/50
				nullable++
			}
			specs[i] = spec
		}
	}
	return specs
}

func veteransColName(i int) string {
	switch i {
	case 0:
		return "target"
	case 1:
		return "outcome"
	case 5:
		return "repair_a"
	case 12:
		return "repair_b"
	default:
		return "v" + itoa(i)
	}
}

// itoa avoids pulling strconv into the hot loop signature; columns are
// named once.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// Veterans builds the KDD Cup 98 stand-in with the given number of rows and
// attributes (≤ 0 selects the paper's 95412 × 481). The column-prefix
// property of Synthesize guarantees that Veterans(n, 10) is exactly the
// first 10 columns of Veterans(n, 481), so the Tables 7–8 grid sweeps
// attribute counts on consistent data. The FD is target → outcome; its
// planted repair is {repair_a, repair_b}, available only when attrs > 12 —
// reproducing the paper's observation that the 10-attribute instances may
// have no repair at all.
func Veterans(rows, attrs int) RealDataset {
	if rows <= 0 {
		rows = VeteransRows
	}
	ds := RealDataset{
		Relation:  Synthesize("veterans", rows, 1006, veteransSpecs(rows, attrs)),
		FDSpec:    "target -> outcome",
		RepairLen: 2,
		PaperRows: VeteransRows,
		PaperTime: "29m45s",
	}
	if attrs > 0 && attrs <= 12 {
		ds.RepairLen = 0
	}
	return ds
}

// RealDatasets returns all Table 6 rows at the given scale in the paper's
// print order. scale ≤ 0 or ≥ 1 selects the paper's cardinalities; smaller
// values shrink each dataset proportionally (Veterans attribute count stays
// 481 but rows shrink, and its default rows are further capped at 20 000 at
// full scale to keep laptop runs feasible — see EXPERIMENTS.md).
func RealDatasets(scale float64) []RealDataset {
	rows := func(full int) int {
		if scale <= 0 || scale >= 1 {
			return full
		}
		n := int(float64(full) * scale)
		if n < 50 {
			n = 50
		}
		return n
	}
	veteransRows := rows(VeteransRows)
	if scale <= 0 || scale >= 1 {
		veteransRows = 20000
	}
	return []RealDataset{
		PlacesDataset(),
		Country(rows(CountryRows)),
		Rental(rows(RentalRows)),
		Image(rows(ImageRows)),
		PageLinks(rows(PageLinksRows)),
		Veterans(veteransRows, VeteransAttrs),
	}
}
