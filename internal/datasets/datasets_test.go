package datasets

import (
	"testing"

	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
)

func TestPlacesShape(t *testing.T) {
	r := Places()
	if r.NumCols() != 9 {
		t.Fatalf("arity = %d, want 9", r.NumCols())
	}
	if r.NumRows() != 11 {
		t.Fatalf("cardinality = %d, want 11 (Figure 1)", r.NumRows())
	}
	for col := 0; col < r.NumCols(); col++ {
		if r.HasNulls(col) {
			t.Errorf("column %s must be NULL-free", r.Schema().Column(col).Name)
		}
	}
	// Spot checks against Figure 1.
	if r.Value(0, 0) != relation.String("Brookside") {
		t.Error("t1 District wrong")
	}
	if r.Value(10, 5) != relation.String("Bay") {
		t.Error("t11 Street wrong")
	}
	if got := r.DistinctCount([]int{3}); got != 4 {
		t.Errorf("|π_AreaCode| = %d, want 4", got)
	}
	if got := r.DistinctCount([]int{4}); got != 6 {
		t.Errorf("|π_PhNo| = %d, want 6", got)
	}
}

func TestPlacesFDSpecsParse(t *testing.T) {
	r := Places()
	for label, spec := range PlacesFDs() {
		if _, err := core.ParseFD(r.Schema(), label, spec); err != nil {
			t.Errorf("%s: %v", label, err)
		}
	}
	if _, err := core.ParseFD(r.Schema(), "F4", PlacesF4()); err != nil {
		t.Error(err)
	}
}

func TestSynthesizeDeterminismAndPrefix(t *testing.T) {
	specs := []ColumnSpec{
		{Name: "a", Card: 5},
		{Name: "b", Card: 3, DerivedFrom: []int{0}, Salt: 9},
		{Name: "c", Card: 4, NullRate: 0.3, Salt: 1},
		{Name: "d", Card: 0},
	}
	r1 := Synthesize("s", 200, 42, specs)
	r2 := Synthesize("s", 200, 42, specs)
	for row := 0; row < 200; row++ {
		for col := 0; col < 4; col++ {
			if r1.Value(row, col) != r2.Value(row, col) {
				t.Fatalf("cell (%d,%d) differs across identical seeds", row, col)
			}
		}
	}
	// Column-prefix property: truncating the spec list reproduces the
	// leading columns exactly.
	r3 := Synthesize("s", 200, 42, specs[:2])
	for row := 0; row < 200; row++ {
		for col := 0; col < 2; col++ {
			if r1.Value(row, col) != r3.Value(row, col) {
				t.Fatalf("prefix cell (%d,%d) differs after truncation", row, col)
			}
		}
	}
	// A different seed changes the data.
	r4 := Synthesize("s", 200, 43, specs)
	same := true
	for row := 0; row < 200 && same; row++ {
		if r1.Value(row, 0) != r4.Value(row, 0) {
			same = false
		}
	}
	if same {
		t.Fatal("different seed produced identical data")
	}
}

func TestSynthesizeDerivedFDExact(t *testing.T) {
	specs := []ColumnSpec{
		{Name: "a", Card: 6},
		{Name: "r", Card: 4, Salt: 3},
		{Name: "b", Card: 5, DerivedFrom: []int{0, 1}, Salt: 7},
	}
	r := Synthesize("s", 500, 7, specs)
	x, _ := r.Schema().IndexSet("a", "r")
	y, _ := r.Schema().IndexSet("b")
	if !r.SatisfiesFD(x, y) {
		t.Fatal("derived column must make sources → derived exact")
	}
	// The planted FD a → b must be approximate at this size.
	a, _ := r.Schema().IndexSet("a")
	if r.SatisfiesFD(a, y) {
		t.Fatal("a → b should be approximate (derived also from r)")
	}
}

func TestSynthesizeKeyColumnsUnique(t *testing.T) {
	r := Synthesize("s", 100, 1, []ColumnSpec{{Name: "k", Card: 0}})
	if r.DictLen(0) != 100 {
		t.Fatalf("key column distinct = %d, want 100", r.DictLen(0))
	}
}

func TestSynthesizeForwardDerivation(t *testing.T) {
	// Derived columns may reference independent columns at any position —
	// the Veterans layout puts the consequent at column 1 with sources at
	// columns 5 and 12.
	r := Synthesize("s", 300, 1, []ColumnSpec{
		{Name: "b", Card: 4, DerivedFrom: []int{1}, Salt: 3},
		{Name: "a", Card: 6, Salt: 4},
	})
	x, _ := r.Schema().IndexSet("a")
	y, _ := r.Schema().IndexSet("b")
	if !r.SatisfiesFD(x, y) {
		t.Fatal("forward-derived FD must be exact")
	}
}

func TestSynthesizeBadSpecPanics(t *testing.T) {
	t.Run("out of range", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range derivation must panic")
			}
		}()
		Synthesize("s", 10, 1, []ColumnSpec{
			{Name: "a", Card: 2, DerivedFrom: []int{5}},
			{Name: "b", Card: 2},
		})
	})
	t.Run("cycle", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("derivation cycles must panic")
			}
		}()
		Synthesize("s", 10, 1, []ColumnSpec{
			{Name: "a", Card: 2, DerivedFrom: []int{1}},
			{Name: "b", Card: 2, DerivedFrom: []int{0}},
		})
	})
	t.Run("bad virtual card", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("non-positive virtual card must panic")
			}
		}()
		Synthesize("s", 10, 1, []ColumnSpec{
			{Name: "a", Card: 2, VirtualFrom: []VirtualSource{{Col: 7, Card: 0}}},
		})
	})
}

func TestSynthesizeDerivationChain(t *testing.T) {
	// a → b → c chains must work: {a} → c exact through the chain.
	r := Synthesize("s", 300, 2, []ColumnSpec{
		{Name: "a", Card: 6, Salt: 1},
		{Name: "b", Card: 5, DerivedFrom: []int{0}, Salt: 2},
		{Name: "c", Card: 4, DerivedFrom: []int{1}, Salt: 3},
	})
	x, _ := r.Schema().IndexSet("a")
	y, _ := r.Schema().IndexSet("c")
	if !r.SatisfiesFD(x, y) {
		t.Fatal("chained derivation must keep a → c exact")
	}
}

func TestInjectDrift(t *testing.T) {
	specs := []ColumnSpec{
		{Name: "a", Card: 5},
		{Name: "b", Card: 5, DerivedFrom: []int{0}, Salt: 2},
	}
	r := Synthesize("s", 400, 9, specs)
	x, _ := r.Schema().IndexSet("a")
	y, _ := r.Schema().IndexSet("b")
	if !r.SatisfiesFD(x, y) {
		t.Fatal("baseline FD must be exact")
	}
	drifted := InjectDrift(r, 1, 0.1, 5)
	if drifted.NumRows() != r.NumRows() {
		t.Fatal("drift must preserve cardinality")
	}
	if drifted.SatisfiesFD(x, y) {
		t.Fatal("drift must break the FD")
	}
	// Rate 0 must be a no-op.
	same := InjectDrift(r, 1, 0, 5)
	for row := 0; row < r.NumRows(); row++ {
		if same.Value(row, 1) != r.Value(row, 1) {
			t.Fatal("rate-0 drift changed data")
		}
	}
}

// checkRealDataset verifies shape, FD parseability and planted repair
// length of one Table 6 stand-in.
func checkRealDataset(t *testing.T, ds RealDataset, wantCols int, wantName string) {
	t.Helper()
	r := ds.Relation
	if r.Name() != wantName {
		t.Errorf("name = %q, want %q", r.Name(), wantName)
	}
	if r.NumCols() != wantCols {
		t.Errorf("%s arity = %d, want %d", wantName, r.NumCols(), wantCols)
	}
	fd, err := core.ParseFD(r.Schema(), "F", ds.FDSpec)
	if err != nil {
		t.Fatalf("%s: %v", wantName, err)
	}
	counter := pli.NewPLICounter(r)
	m := core.Compute(counter, fd)
	if m.Exact() {
		t.Fatalf("%s: FD %s must be violated", wantName, ds.FDSpec)
	}
	rep, _, ok := core.FindFirstRepair(counter, fd, core.RepairOptions{})
	if ds.RepairLen == 0 {
		if ok {
			t.Fatalf("%s: expected no repair, found +%d attrs", wantName, rep.Added.Len())
		}
		return
	}
	if !ok {
		t.Fatalf("%s: expected a repair of length %d, found none", wantName, ds.RepairLen)
	}
	if rep.Added.Len() != ds.RepairLen {
		t.Fatalf("%s: first repair adds %d attrs (%s), want %d", wantName,
			rep.Added.Len(), r.Schema().FormatSet(rep.Added), ds.RepairLen)
	}
}

func TestCountryDataset(t *testing.T) {
	ds := Country(0)
	if ds.Relation.NumRows() != CountryRows {
		t.Fatalf("rows = %d, want %d", ds.Relation.NumRows(), CountryRows)
	}
	checkRealDataset(t, ds, 15, "country")
}

func TestRentalDataset(t *testing.T) {
	checkRealDataset(t, Rental(4000), 7, "rental")
}

func TestImageDataset(t *testing.T) {
	checkRealDataset(t, Image(8000), 14, "image")
}

func TestPageLinksDataset(t *testing.T) {
	ds := PageLinks(20000)
	checkRealDataset(t, ds, 3, "pagelinks")
	// Only one candidate attribute exists; the repair must be exactly it.
	r := ds.Relation
	fd, _ := core.ParseFD(r.Schema(), "F", ds.FDSpec)
	pool := core.CandidatePool(pli.NewPLICounter(r), fd, core.CandidateOptions{})
	if len(pool) != 1 {
		t.Fatalf("candidate pool = %d, want 1", len(pool))
	}
}

func TestPlacesAsTable6Row(t *testing.T) {
	ds := PlacesDataset()
	checkRealDataset(t, ds, 9, "places")
}

func TestVeteransShapeAndGridProperties(t *testing.T) {
	full := Veterans(300, 0)
	if full.Relation.NumCols() != VeteransAttrs {
		t.Fatalf("attrs = %d, want %d", full.Relation.NumCols(), VeteransAttrs)
	}
	// Exactly 481−323 columns carry NULLs at full width (NULL rates are per
	// cell, so count columns with a non-zero configured rate via HasNulls —
	// at 300 rows and ≥5%% rate every nullable column should have hit at
	// least one NULL).
	nullCols := 0
	for c := 0; c < full.Relation.NumCols(); c++ {
		if full.Relation.HasNulls(c) {
			nullCols++
		}
	}
	if nullCols != VeteransAttrs-VeteransNullFreeAttrs {
		t.Errorf("columns with NULLs = %d, want %d", nullCols, VeteransAttrs-VeteransNullFreeAttrs)
	}

	// Grid slices: 30-attr instance repairable with exactly {repair_a,
	// repair_b}; 10-attr instance unrepairable (repair_b out of range).
	wide := Veterans(2000, 30)
	if wide.Relation.NumCols() != 30 {
		t.Fatalf("slice attrs = %d", wide.Relation.NumCols())
	}
	checkRealDataset(t, wide, 30, "veterans")

	narrow := Veterans(2000, 10)
	if narrow.RepairLen != 0 {
		t.Fatal("10-attr Veterans must advertise no repair")
	}
	checkRealDataset(t, narrow, 10, "veterans")

	// Prefix property across widths.
	for row := 0; row < 50; row++ {
		for col := 0; col < 10; col++ {
			if wide.Relation.Value(row, col) != narrow.Relation.Value(row, col) {
				t.Fatalf("grid prefix mismatch at (%d,%d)", row, col)
			}
		}
	}
}

func TestRealDatasetsScaling(t *testing.T) {
	small := RealDatasets(0.001)
	if len(small) != 6 {
		t.Fatalf("datasets = %d, want 6", len(small))
	}
	names := []string{"places", "country", "rental", "image", "pagelinks", "veterans"}
	for i, ds := range small {
		if ds.Relation.Name() != names[i] {
			t.Errorf("dataset %d = %s, want %s", i, ds.Relation.Name(), names[i])
		}
	}
	// Places is never scaled; the rest shrink but keep a floor.
	if small[0].Relation.NumRows() != 11 {
		t.Error("places must keep its 11 tuples")
	}
	if small[4].Relation.NumRows() >= PageLinksRows {
		t.Error("pagelinks must shrink at scale 0.001")
	}
	if small[4].Relation.NumRows() < 50 {
		t.Error("scaling floor of 50 rows violated")
	}
}
