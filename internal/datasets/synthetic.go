package datasets

import (
	"fmt"
	"math/rand"

	"github.com/evolvefd/evolvefd/internal/relation"
)

// ColumnSpec describes one synthetic column.
type ColumnSpec struct {
	// Name is the attribute name.
	Name string
	// Card is the number of distinct values for independent categorical
	// columns, and the output cardinality for derived columns. Card 0 makes
	// the column a unique key.
	Card int
	// NullRate is the probability of a NULL cell (independent columns
	// only).
	NullRate float64
	// DerivedFrom lists source column indices. When non-empty, the value is
	// a deterministic function of the sources' values (a salted hash folded
	// into Card buckets), so the FD sources → this column is exact by
	// construction. Together with noise-free sources this plants known
	// repairs: if B is derived from {A, R1, R2}, then A → B is approximate
	// and {R1, R2} repairs it. Sources may appear at any position and may
	// themselves be derived, as long as the dependency graph is acyclic.
	DerivedFrom []int
	// VirtualFrom adds derivation sources that need not be materialised in
	// the relation: each describes the (position, card, salt) of an
	// independent NULL-free column, and contributes exactly the value that
	// column would have. A truncated spec list can therefore keep derived
	// values identical to the full layout's — how the Veterans grid keeps
	// its consequent stable across attribute widths while the second repair
	// attribute (column 12) falls outside the 10-attribute slices.
	VirtualFrom []VirtualSource
	// Salt differentiates derived columns with identical sources.
	Salt uint64
}

// VirtualSource identifies a conceptual independent column for VirtualFrom.
// When a real column with the same position, Card and Salt is materialised,
// its values coincide with the virtual contribution.
type VirtualSource struct {
	Col  int
	Card int
	Salt uint64
}

// Synthesize builds a relation from column specs. Cell values are pure
// hash functions of (seed, column, row), so the same inputs always produce
// identical data AND truncating the spec list yields a column-prefix of the
// wider relation — the property the Veterans grid experiments (Tables 7–8)
// rely on when sweeping attribute counts.
func Synthesize(name string, rows int, seed int64, specs []ColumnSpec) *relation.Relation {
	cols := make([]relation.Column, len(specs))
	for i, s := range specs {
		cols[i] = relation.Column{Name: s.Name, Kind: relation.KindString}
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		panic("datasets: bad synthetic spec: " + err.Error())
	}
	for i, s := range specs {
		for _, src := range s.DerivedFrom {
			if src < 0 || src >= len(specs) {
				panic(fmt.Sprintf("datasets: column %d derives from out-of-range column %d", i, src))
			}
		}
		for _, v := range s.VirtualFrom {
			if v.Card <= 0 {
				panic(fmt.Sprintf("datasets: column %d has virtual source with card %d", i, v.Card))
			}
		}
	}
	derivedOrder := topoOrder(specs)
	r := relation.New(name, schema)
	tuple := make([]relation.Value, len(specs))
	raw := make([]uint64, len(specs)) // numeric value per column, pre-render
	for row := 0; row < rows; row++ {
		// First pass: independent columns (keys and categoricals).
		for i, s := range specs {
			if len(s.DerivedFrom) > 0 || len(s.VirtualFrom) > 0 {
				continue
			}
			if s.Card == 0 {
				raw[i] = uint64(row)
				tuple[i] = relation.String(fmt.Sprintf("%s_%d", s.Name, row))
				continue
			}
			h := cellHash(seed, i, row, s.Salt)
			if s.NullRate > 0 && float64(h>>11)/float64(1<<53) < s.NullRate {
				raw[i] = 0
				tuple[i] = relation.Null
				continue
			}
			v := fnvMix(h) % uint64(s.Card)
			raw[i] = v
			tuple[i] = relation.String(fmt.Sprintf("%s_%d", s.Name, v))
		}
		// Second pass: derived columns in dependency order; sources may sit
		// at any position and may themselves be derived or virtual.
		for _, i := range derivedOrder {
			s := specs[i]
			h := fnvMix(s.Salt)
			for _, src := range s.DerivedFrom {
				h = fnvMix(h ^ raw[src])
			}
			for _, v := range s.VirtualFrom {
				vraw := fnvMix(cellHash(seed, v.Col, row, v.Salt)) % uint64(v.Card)
				h = fnvMix(h ^ vraw)
			}
			card := s.Card
			if card <= 0 {
				card = 1
			}
			raw[i] = h % uint64(card)
			tuple[i] = relation.String(fmt.Sprintf("%s_%d", s.Name, raw[i]))
		}
		r.MustAppend(tuple...)
	}
	return r
}

// cellHash derives the independent randomness of one cell.
func cellHash(seed int64, col, row int, salt uint64) uint64 {
	return fnvMix(fnvMix(uint64(seed)^salt^uint64(col)*0x9e3779b97f4a7c15) ^ uint64(row))
}

// topoOrder returns the derived column indices in dependency order, or
// panics on a cycle.
func topoOrder(specs []ColumnSpec) []int {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]int, len(specs))
	var order []int
	var visit func(i int)
	visit = func(i int) {
		switch state[i] {
		case done:
			return
		case visiting:
			panic(fmt.Sprintf("datasets: derivation cycle through column %d", i))
		}
		state[i] = visiting
		for _, src := range specs[i].DerivedFrom {
			visit(src)
		}
		state[i] = done
		if len(specs[i].DerivedFrom) > 0 || len(specs[i].VirtualFrom) > 0 {
			order = append(order, i)
		}
	}
	for i := range specs {
		visit(i)
	}
	return order
}

// fnvMix is a 64-bit avalanche mix (splitmix64 finaliser) used to derive
// column values deterministically.
func fnvMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// InjectDrift returns a copy of r in which each value of column col is
// remapped to a fresh value with probability rate — the "reality changed"
// perturbation used by the evolution example: it turns exact FDs with col in
// their consequent into approximate ones, simulating a semantic change such
// as an area-code split.
func InjectDrift(r *relation.Relation, col int, rate float64, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	out := relation.New(r.Name(), r.Schema())
	for row := 0; row < r.NumRows(); row++ {
		if r.IsDeleted(row) {
			continue
		}
		tuple := r.Row(row)
		if !tuple[col].IsNull() && rng.Float64() < rate {
			tuple[col] = relation.String(fmt.Sprintf("%s*drift%d",
				tuple[col].String(), rng.Intn(4)))
		}
		out.MustAppend(tuple...)
	}
	return out
}
