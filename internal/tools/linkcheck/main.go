// linkcheck verifies the repository-local links of markdown files: every
// [text](target) whose target is not an external URL or a pure anchor must
// name an existing file or directory relative to the markdown file. It
// exits non-zero listing every broken link.
//
// Usage: go run ./internal/tools/linkcheck README.md ARCHITECTURE.md ...
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkPattern matches inline markdown links — image links and links with a
// quoted title included; reference-style definitions (unused in this
// repository) are not.
var linkPattern = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file.md> ...")
		os.Exit(2)
	}
	broken := 0
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(1)
		}
		for _, m := range linkPattern.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if !localTarget(target) {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "%s: broken link %s\n", path, m[1])
				broken++
			}
		}
	}
	if broken > 0 {
		os.Exit(1)
	}
	fmt.Println("linkcheck: all local links resolve")
}

// localTarget reports whether a link target should exist in the repository
// (as opposed to external URLs, mail addresses and in-page anchors).
func localTarget(target string) bool {
	for _, prefix := range []string{"http://", "https://", "mailto:", "#"} {
		if strings.HasPrefix(target, prefix) {
			return false
		}
	}
	return true
}
