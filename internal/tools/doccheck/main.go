// doccheck verifies that the root package and every package under cmd/ and
// internal/ carries a package comment, so `go doc` tells the same story as
// ARCHITECTURE.md. It exits non-zero listing every undocumented package.
//
// Usage: go run ./internal/tools/doccheck [root-dir]
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	undocumented, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
	if len(undocumented) > 0 {
		fmt.Fprintln(os.Stderr, "packages without a package comment:")
		for _, dir := range undocumented {
			fmt.Fprintln(os.Stderr, "  "+dir)
		}
		os.Exit(1)
	}
	fmt.Println("doccheck: every package has a package comment")
}

// check walks the in-scope directories and returns those that contain Go
// files but no package comment in any non-test file.
func check(root string) ([]string, error) {
	dirs := map[string]bool{}
	collect := func(dir string) error {
		return filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				dirs[filepath.Dir(path)] = true
			}
			return nil
		})
	}
	dirs[root] = true // the root package itself
	for _, sub := range []string{"cmd", "internal"} {
		dir := filepath.Join(root, sub)
		if _, err := os.Stat(dir); err != nil {
			continue
		}
		if err := collect(dir); err != nil {
			return nil, err
		}
	}

	var undocumented []string
	for dir := range dirs {
		ok, err := hasPackageComment(dir)
		if err != nil {
			return nil, err
		}
		if !ok {
			undocumented = append(undocumented, dir)
		}
	}
	sort.Strings(undocumented)
	return undocumented, nil
}

// hasPackageComment reports whether some non-test Go file in dir carries a
// doc comment on its package clause.
func hasPackageComment(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	sawGo := false
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		sawGo = true
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return false, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, nil
		}
	}
	// A directory without non-test Go files has nothing to document.
	return !sawGo, nil
}
