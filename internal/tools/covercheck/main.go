// covercheck enforces the committed per-package coverage floors in
// floors.txt against the output of `go test -cover ./...`. Every package
// with a floor must appear in the test output with at least its floor's
// statement coverage; a floored package that reports no coverage at all
// (skipped, build-failed, or stripped of its tests) fails the check too,
// so a floor cannot be dodged by deleting the tests it guards. Packages
// without a floor are listed as advisory so new packages get noticed.
//
// Usage: go test -cover ./... | go run ./internal/tools/covercheck
// or:    go run ./internal/tools/covercheck cover.out
package main

import (
	"bufio"
	"bytes"
	_ "embed"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

//go:embed floors.txt
var floorsFile string

// coverLine matches `go test -cover` package result lines, e.g.
// `ok  	example.com/pkg	0.42s	coverage: 81.1% of statements`.
var coverLine = regexp.MustCompile(`^ok\s+(\S+)\s+.*coverage:\s+([0-9.]+)% of statements`)

func main() {
	in := io.Reader(os.Stdin)
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "covercheck:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	failures, err := check(in, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}
	if len(failures) > 0 {
		fmt.Fprintln(os.Stderr, "coverage floors violated:")
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Println("covercheck: every floored package meets its coverage floor")
}

// parseFloors reads the committed floors table.
func parseFloors() (map[string]float64, error) {
	floors := map[string]float64{}
	sc := bufio.NewScanner(bytes.NewReader([]byte(floorsFile)))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("malformed floors line %q", line)
		}
		min, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed floor in %q: %v", line, err)
		}
		floors[fields[0]] = min
	}
	return floors, sc.Err()
}

// check compares the coverage report read from in against the floors and
// returns the violations.
func check(in io.Reader, out io.Writer) ([]string, error) {
	floors, err := parseFloors()
	if err != nil {
		return nil, err
	}
	got := map[string]float64{}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		if m := coverLine.FindStringSubmatch(sc.Text()); m != nil {
			pct, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, fmt.Errorf("malformed coverage in %q", sc.Text())
			}
			got[m[1]] = pct
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(got) == 0 {
		return nil, fmt.Errorf("no coverage lines found — pipe `go test -cover ./...` output in")
	}

	var failures, advisory []string
	for pkg, min := range floors {
		pct, ok := got[pkg]
		switch {
		case !ok:
			failures = append(failures, fmt.Sprintf("%s: floor %.0f%% but no coverage reported", pkg, min))
		case pct < min:
			failures = append(failures, fmt.Sprintf("%s: %.1f%% < floor %.0f%%", pkg, pct, min))
		}
	}
	for pkg, pct := range got {
		if _, ok := floors[pkg]; !ok {
			advisory = append(advisory, fmt.Sprintf("%s: %.1f%% (no floor committed)", pkg, pct))
		}
	}
	sort.Strings(failures)
	sort.Strings(advisory)
	for _, a := range advisory {
		fmt.Fprintln(out, "advisory:", a)
	}
	fmt.Fprintf(out, "covercheck: %d packages reported, %d floors enforced\n", len(got), len(floors))
	return failures, nil
}
