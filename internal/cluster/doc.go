// Package cluster implements the clustering view of functional dependencies
// (Definitions 5 and 6 of the paper): the X-clustering of an instance, the
// proper-association test between two clusterings, and the homogeneity /
// completeness properties that connect the paper's confidence-based
// measures (§3) to the entropy-based baseline (§5, Theorem 1).
//
// An FD X → Y holds exactly when the X-clustering properly associates to
// the Y-clustering — every X-class maps into a single Y-class. The package
// also renders two clusterings side by side with their association
// (RenderAssociation), reproducing the content of Figure 2 in text form;
// the quantitative counting over clusterings lives in internal/pli, which
// represents the same objects as position list indices.
package cluster
