package cluster

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

func buildRelation(t testing.TB, cols []string, rows [][]string) *relation.Relation {
	t.Helper()
	schema, err := relation.SchemaOf(cols...)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New("t", schema)
	for _, row := range rows {
		if err := r.AppendStrings(row...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestNewClustering(t *testing.T) {
	r := buildRelation(t, []string{"a", "b"}, [][]string{
		{"1", "x"}, {"2", "y"}, {"1", "z"}, {"2", "y"},
	})
	c := New(r, bitset.New(0))
	if c.NumClasses() != 2 {
		t.Fatalf("NumClasses = %d, want 2", c.NumClasses())
	}
	if c.NumRows() != 4 {
		t.Fatalf("NumRows = %d", c.NumRows())
	}
	// First-occurrence order: class 0 = a=1 rows {0,2}, class 1 = a=2 {1,3}.
	if got := c.Classes()[0].Rows; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("class 0 rows = %v", got)
	}
	if c.Classes()[0].Label != "a=1" {
		t.Fatalf("label = %q", c.Classes()[0].Label)
	}
	if c.ClassOf(3) != 1 {
		t.Fatalf("ClassOf(3) = %d", c.ClassOf(3))
	}
	if c.Classes()[0].Size() != 2 {
		t.Fatal("Size wrong")
	}
}

func TestEmptyAttrsClustering(t *testing.T) {
	r := buildRelation(t, []string{"a"}, [][]string{{"1"}, {"2"}})
	c := New(r, bitset.Set{})
	if c.NumClasses() != 1 {
		t.Fatalf("∅-clustering should have 1 class, got %d", c.NumClasses())
	}
	if c.Classes()[0].Label != "⊤" {
		t.Fatalf("label = %q", c.Classes()[0].Label)
	}
}

func TestNullsGroupTogether(t *testing.T) {
	r := buildRelation(t, []string{"a"}, [][]string{{""}, {"x"}, {""}})
	c := New(r, bitset.New(0))
	if c.NumClasses() != 2 {
		t.Fatalf("NumClasses = %d, want 2", c.NumClasses())
	}
	if c.ClassOf(0) != c.ClassOf(2) {
		t.Fatal("NULL rows must share a class")
	}
	if !strings.Contains(c.Classes()[0].Label, "NULL") {
		t.Fatalf("NULL class label = %q", c.Classes()[0].Label)
	}
}

// paperF1Relation reproduces the District/Region/Municipal/AreaCode/PhNo
// columns of the running example (Figure 1, as reconstructed from the
// paper's measures — see internal/datasets for the full relation and the
// reconstruction notes) to validate the clusterings of Figure 2.
func paperF1Relation(t *testing.T) *relation.Relation {
	return buildRelation(t,
		[]string{"District", "Region", "Municipal", "AreaCode", "PhNo"},
		[][]string{
			{"Brookside", "Granville", "Glendale", "613", "974-2345"},
			{"Brookside", "Granville", "Glendale", "613", "974-2345"},
			{"Brookside", "Granville", "Glendale", "613", "299-1010"},
			{"Brookside", "Granville", "Guildwood", "515", "220-1200"},
			{"Brookside", "Granville", "Guildwood", "515", "220-1200"},
			{"Alexandria", "Moore Park", "NapaHill", "415", "220-1200"},
			{"Alexandria", "Moore Park", "NapaHill", "415", "930-2525"},
			{"Alexandria", "Moore Park", "NapaHill", "415", "555-1234"},
			{"Alexandria", "Moore Park", "QueenAnne", "517", "888-5152"},
			{"Alexandria", "Moore Park", "QueenAnne", "517", "888-5152"},
			{"Alexandria", "Moore Park", "QueenAnne", "517", "888-5152"},
		})
}

func TestFigure2aNoFunction(t *testing.T) {
	r := paperF1Relation(t)
	cx := New(r, bitset.New(0, 1)) // District, Region
	cy := New(r, bitset.New(3))    // AreaCode
	if cx.NumClasses() != 2 {
		t.Fatalf("|C_{D,R}| = %d, want 2", cx.NumClasses())
	}
	if cy.NumClasses() != 4 {
		t.Fatalf("|C_A| = %d, want 4", cy.NumClasses())
	}
	if cx.HomogeneousWith(cy) {
		t.Fatal("Figure 2a: no function exists, F1 is violated")
	}
	if _, ok := cx.FunctionTo(cy); ok {
		t.Fatal("FunctionTo must fail for Figure 2a")
	}
}

func TestFigure2bWellDefinedFunction(t *testing.T) {
	// F′: [District, Region, Municipal] → [AreaCode] is exact and bijective
	// (Figure 2b): C_{D,R,M} = {t1,t2,t3},{t4,t5},{t6,t7,t8},{t9,t10,t11}
	// maps one-to-one onto the four AreaCode clusters.
	r := paperF1Relation(t)
	cx := New(r, bitset.New(0, 1, 2))
	cy := New(r, bitset.New(3))
	if cx.NumClasses() != 4 || cy.NumClasses() != 4 {
		t.Fatalf("|C_DRM| = %d, |C_A| = %d, want 4 and 4", cx.NumClasses(), cy.NumClasses())
	}
	if !cx.WellDefinedFunctionTo(cy) {
		t.Fatal("Figure 2b: F′ must induce a well-defined bijective function")
	}
	fn, ok := cx.FunctionTo(cy)
	if !ok || len(fn) != cx.NumClasses() {
		t.Fatal("FunctionTo should produce a total mapping")
	}
}

func TestFigure2cFunctionNotBijective(t *testing.T) {
	// F″: [District, Region, PhNo] → [AreaCode] is exact (a function) but
	// not bijective: C_{D,R,PhNo} has 7 classes vs 4 AreaCode clusters
	// (Figure 2c); the phone number over-fragments the antecedent.
	r := paperF1Relation(t)
	cx := New(r, bitset.New(0, 1, 4))
	cy := New(r, bitset.New(3))
	if cx.NumClasses() != 7 {
		t.Fatalf("|C_DRP| = %d, want 7", cx.NumClasses())
	}
	if !cx.HomogeneousWith(cy) {
		t.Fatal("Figure 2c: F″ must induce a function")
	}
	if cx.CompleteWith(cy) || cx.WellDefinedFunctionTo(cy) {
		t.Fatal("Figure 2c: the function must not be bijective")
	}
}

func TestHomogeneityCompletenessBijectivity(t *testing.T) {
	// a → b is exact and bijective: c=1, g=0.
	bij := buildRelation(t, []string{"a", "b"}, [][]string{
		{"1", "x"}, {"2", "y"}, {"1", "x"}, {"3", "z"},
	})
	ca, cb := New(bij, bitset.New(0)), New(bij, bitset.New(1))
	if !ca.HomogeneousWith(cb) || !ca.CompleteWith(cb) || !ca.WellDefinedFunctionTo(cb) {
		t.Fatal("bijective case must be homogeneous and complete")
	}

	// a → b exact but NOT bijective (two a-values share one b-value).
	fn := buildRelation(t, []string{"a", "b"}, [][]string{
		{"1", "x"}, {"2", "x"}, {"3", "y"},
	})
	ca, cb = New(fn, bitset.New(0)), New(fn, bitset.New(1))
	if !ca.HomogeneousWith(cb) {
		t.Fatal("exact FD must be homogeneous")
	}
	if ca.CompleteWith(cb) || ca.WellDefinedFunctionTo(cb) {
		t.Fatal("non-injective function must not be complete")
	}

	// a → b violated.
	viol := buildRelation(t, []string{"a", "b"}, [][]string{
		{"1", "x"}, {"1", "y"},
	})
	ca, cb = New(viol, bitset.New(0)), New(viol, bitset.New(1))
	if ca.HomogeneousWith(cb) {
		t.Fatal("violated FD must not be homogeneous")
	}
}

func TestProperAssociation(t *testing.T) {
	r := buildRelation(t, []string{"a", "b"}, [][]string{
		{"1", "x"}, {"1", "y"}, {"2", "y"},
	})
	ca, cb := New(r, bitset.New(0)), New(r, bitset.New(1))
	if _, ok := ca.ProperlyAssociated(0, cb); ok {
		t.Fatal("class a=1 spans x and y: not properly associated")
	}
	if target, ok := ca.ProperlyAssociated(1, cb); !ok || cb.Classes()[target].Label != "b=y" {
		t.Fatal("class a=2 must associate with b=y")
	}
}

func TestJointCounts(t *testing.T) {
	r := buildRelation(t, []string{"a", "b"}, [][]string{
		{"1", "x"}, {"1", "y"}, {"2", "y"}, {"1", "x"},
	})
	ca, cb := New(r, bitset.New(0)), New(r, bitset.New(1))
	joint := ca.JointCounts(cb)
	// a=1 ∩ b=x: rows 0,3 → 2; a=1 ∩ b=y: row 1 → 1; a=2 ∩ b=y: row 2 → 1.
	total := 0
	for _, n := range joint {
		total += n
	}
	if total != r.NumRows() {
		t.Fatalf("joint counts sum %d, want %d", total, r.NumRows())
	}
	if joint[[2]int{0, 0}] != 2 || joint[[2]int{0, 1}] != 1 || joint[[2]int{1, 1}] != 1 {
		t.Fatalf("joint table wrong: %v", joint)
	}
}

func TestClusteringEqual(t *testing.T) {
	r := buildRelation(t, []string{"a", "b", "c"}, [][]string{
		{"1", "p", "x"}, {"2", "q", "x"}, {"1", "p", "y"},
	})
	// a and b induce the same partition here.
	if !New(r, bitset.New(0)).Equal(New(r, bitset.New(1))) {
		t.Fatal("identical partitions must be Equal")
	}
	if New(r, bitset.New(0)).Equal(New(r, bitset.New(2))) {
		t.Fatal("different partitions must not be Equal")
	}
}

// TestQuickClusteringCountsMatchRelation cross-checks NumClasses against
// DistinctCount on random relations.
func TestQuickClusteringCountsMatchRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		cols := []string{"a", "b", "c"}
		rows := make([][]string, 1+rng.Intn(40))
		for i := range rows {
			rows[i] = []string{
				string(rune('A' + rng.Intn(3))),
				string(rune('A' + rng.Intn(4))),
				string(rune('A' + rng.Intn(2))),
			}
		}
		r := buildRelation(t, cols, rows)
		for trial := 0; trial < 4; trial++ {
			var x bitset.Set
			for c := 0; c < 3; c++ {
				if rng.Intn(2) == 0 {
					x.Add(c)
				}
			}
			if got, want := New(r, x).NumClasses(), r.DistinctCountSet(x); got != want {
				t.Fatalf("iter %d: clusters %d ≠ distinct %d for %v", iter, got, want, x)
			}
		}
	}
}

// TestQuickHomogeneityMatchesFD: C_X homogeneous w.r.t. C_Y ⟺ r ⊨ X→Y.
func TestQuickHomogeneityMatchesFD(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 100; iter++ {
		rows := make([][]string, 1+rng.Intn(30))
		for i := range rows {
			rows[i] = []string{
				string(rune('A' + rng.Intn(3))),
				string(rune('A' + rng.Intn(3))),
			}
		}
		r := buildRelation(t, []string{"x", "y"}, rows)
		x, y := bitset.New(0), bitset.New(1)
		hom := New(r, x).HomogeneousWith(New(r, y))
		sat := r.SatisfiesFD(x, y)
		if hom != sat {
			t.Fatalf("iter %d: homogeneous=%v but satisfies=%v", iter, hom, sat)
		}
	}
}

func TestRenderAssociation(t *testing.T) {
	r := paperF1Relation(t)
	cx := New(r, bitset.New(0, 1))
	cy := New(r, bitset.New(3))
	out := RenderAssociation("F1: [District,Region] -> [AreaCode]", cx, cy)
	if !strings.Contains(out, "✗ splits over") {
		t.Fatalf("violated FD should render splits:\n%s", out)
	}
	if !strings.Contains(out, "no function between clusterings") {
		t.Fatalf("verdict line missing:\n%s", out)
	}
	if !strings.Contains(out, "t1") || !strings.Contains(out, "District=Brookside") {
		t.Fatalf("labels missing:\n%s", out)
	}

	// Exact bijective FD renders the bijective verdict.
	bij := buildRelation(t, []string{"a", "b"}, [][]string{{"1", "x"}, {"2", "y"}})
	out = RenderAssociation("a->b", New(bij, bitset.New(0)), New(bij, bitset.New(1)))
	if !strings.Contains(out, "well-defined (bijective)") {
		t.Fatalf("bijective verdict missing:\n%s", out)
	}

	// Exact non-bijective FD renders the non-complete verdict.
	fn := buildRelation(t, []string{"a", "b"}, [][]string{{"1", "x"}, {"2", "x"}})
	out = RenderAssociation("a->b", New(fn, bitset.New(0)), New(fn, bitset.New(1)))
	if !strings.Contains(out, "not bijective") {
		t.Fatalf("non-complete verdict missing:\n%s", out)
	}
}
