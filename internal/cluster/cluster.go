package cluster

import (
	"fmt"
	"strings"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// Class is one cluster of an X-clustering: the tuples sharing a value for
// every attribute of X.
type Class struct {
	// Label renders the shared attribute values, e.g.
	// "District=Brookside, Region=Granville".
	Label string
	// Rows are the indices of the tuples in the class, ascending.
	Rows []int
}

// Size returns the number of tuples in the class.
func (c *Class) Size() int { return len(c.Rows) }

// Clustering is the partition C_X of an instance into classes of tuples that
// agree on every attribute of X (Definition 5). Unlike pli.Partition it
// stores every class (including singletons) with a human-readable label,
// because it backs explanations shown to the designer (Figure 2) and the
// entropy computations that need class intersections.
type Clustering struct {
	attrs      bitset.Set
	classes    []Class
	rowToClass []int
	numRows    int
}

// New builds the X-clustering of r for the attribute set x. Classes are
// ordered by first occurrence, so the result is deterministic. NULL cells
// group together, mirroring pli.
func New(r *relation.Relation, x bitset.Set) *Clustering {
	cols := x.Members()
	n := r.NumRows()
	c := &Clustering{
		attrs:      x.Clone(),
		rowToClass: make([]int, n),
		numRows:    n,
	}
	columns := make([][]int32, len(cols))
	for i, col := range cols {
		columns[i] = r.ColumnCodes(col)
	}
	index := make(map[string]int, n)
	key := make([]byte, len(cols)*4)
	for row := 0; row < n; row++ {
		if r.IsDeleted(row) {
			// Tombstoned rows belong to no class.
			c.rowToClass[row] = -1
			c.numRows--
			continue
		}
		k := key[:0]
		for _, codes := range columns {
			v := codes[row]
			k = append(k, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		ci, ok := index[string(k)]
		if !ok {
			ci = len(c.classes)
			index[string(k)] = ci
			c.classes = append(c.classes, Class{Label: classLabel(r, cols, row)})
		}
		c.classes[ci].Rows = append(c.classes[ci].Rows, row)
		c.rowToClass[row] = ci
	}
	return c
}

func classLabel(r *relation.Relation, cols []int, row int) string {
	if len(cols) == 0 {
		return "⊤"
	}
	parts := make([]string, len(cols))
	for i, col := range cols {
		v := r.Value(row, col)
		text := v.String()
		if v.IsNull() {
			text = "NULL"
		}
		parts[i] = fmt.Sprintf("%s=%s", r.Schema().Column(col).Name, text)
	}
	return strings.Join(parts, ", ")
}

// Attrs returns the attribute set X that induced the clustering.
func (c *Clustering) Attrs() bitset.Set { return c.attrs }

// NumRows returns the number of tuples covered.
func (c *Clustering) NumRows() int { return c.numRows }

// NumClasses returns |C_X| = |π_X(r)|.
func (c *Clustering) NumClasses() int { return len(c.classes) }

// Classes returns all classes. The slice is owned by the clustering.
func (c *Clustering) Classes() []Class { return c.classes }

// ClassOf returns the index of the class containing the given row.
func (c *Clustering) ClassOf(row int) int { return c.rowToClass[row] }

// ProperlyAssociated reports whether class index ci of c is properly
// associated with some class of other (Definition 6): there is a unique
// class of other containing every row of ci; it returns that class index and
// true, or -1 and false.
func (c *Clustering) ProperlyAssociated(ci int, other *Clustering) (int, bool) {
	rows := c.classes[ci].Rows
	if len(rows) == 0 {
		return -1, false
	}
	target := other.rowToClass[rows[0]]
	for _, row := range rows[1:] {
		if other.rowToClass[row] != target {
			return -1, false
		}
	}
	return target, true
}

// HomogeneousWith reports whether c is homogeneous with respect to other:
// every class of c is properly associated with (contained in) a class of
// other. When C_X is homogeneous w.r.t. C_Y, the correspondence X→Y is a
// well-defined function on classes.
func (c *Clustering) HomogeneousWith(other *Clustering) bool {
	for ci := range c.classes {
		if _, ok := c.ProperlyAssociated(ci, other); !ok {
			return false
		}
	}
	return true
}

// CompleteWith reports the completeness property of c versus other (§5):
// every class of other is contained in a single class of c. It is exactly
// homogeneity with the roles swapped.
func (c *Clustering) CompleteWith(other *Clustering) bool {
	return other.HomogeneousWith(c)
}

// WellDefinedFunctionTo reports whether classes of c map to classes of other
// by a well-defined bijective function: homogeneity in both directions. For
// an FD X→Y this happens exactly when confidence is 1 and goodness is 0
// (§3 of the paper; machine-checked by property tests in internal/core).
func (c *Clustering) WellDefinedFunctionTo(other *Clustering) bool {
	return c.HomogeneousWith(other) && c.CompleteWith(other)
}

// FunctionTo returns, when c is homogeneous w.r.t. other, the class-level
// function as a slice mapping class index of c to class index of other. The
// boolean is false when the correspondence is not a function.
func (c *Clustering) FunctionTo(other *Clustering) ([]int, bool) {
	out := make([]int, len(c.classes))
	for ci := range c.classes {
		target, ok := c.ProperlyAssociated(ci, other)
		if !ok {
			return nil, false
		}
		out[ci] = target
	}
	return out, true
}

// JointCounts returns the contingency table between c and other as a sparse
// map from (class of c, class of other) to the number of shared rows. It is
// the joint distribution P(k,k′)·n used by the Variation of Information
// (§5). Both clusterings must be built over the same relation snapshot (same
// physical row extent and tombstones).
func (c *Clustering) JointCounts(other *Clustering) map[[2]int]int {
	out := make(map[[2]int]int)
	for row := range c.rowToClass {
		if c.rowToClass[row] < 0 {
			continue // tombstoned
		}
		out[[2]int{c.rowToClass[row], other.rowToClass[row]}]++
	}
	return out
}

// Equal reports whether two clusterings partition the rows identically
// (labels are ignored).
func (c *Clustering) Equal(other *Clustering) bool {
	// numRows counts live rows; rowToClass spans the physical extent. Both
	// must match before indexing other by this clustering's row ids.
	if c.numRows != other.numRows || len(c.rowToClass) != len(other.rowToClass) ||
		len(c.classes) != len(other.classes) {
		return false
	}
	// Same partition iff the joint table is diagonal-like: every pair maps
	// one class to exactly one class in both directions.
	seen := make(map[int]int)
	for row := range c.rowToClass {
		a, b := c.rowToClass[row], other.rowToClass[row]
		if a < 0 {
			continue // tombstoned
		}
		if prev, ok := seen[a]; ok {
			if prev != b {
				return false
			}
		} else {
			seen[a] = b
		}
	}
	return len(seen) == len(other.classes)
}
