package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// RenderAssociation renders two clusterings side by side with the
// association between their classes, reproducing the content of Figure 2 of
// the paper in text form. Rows are labelled t1, t2, … (1-based, like the
// running example). For each class of lhs the properly-associated class of
// rhs is shown, or "⇒ ✗ (splits)" when the class spreads over several rhs
// classes — i.e. the correspondence is not a function there.
func RenderAssociation(title string, lhs, rhs *Clustering) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	width := 0
	for _, c := range lhs.classes {
		if l := len(c.Label) + len(rowsLabel(c.Rows)); l > width {
			width = l
		}
	}
	for ci, c := range lhs.classes {
		target, ok := lhs.ProperlyAssociated(ci, rhs)
		left := fmt.Sprintf("%s %s", c.Label, rowsLabel(c.Rows))
		if ok {
			rc := rhs.classes[target]
			fmt.Fprintf(&b, "  %-*s  ⇒  %s %s\n", width+1, left, rc.Label, rowsLabel(rc.Rows))
		} else {
			targets := rhsTargets(c.Rows, rhs)
			fmt.Fprintf(&b, "  %-*s  ⇒  ✗ splits over %s\n", width+1, left, targets)
		}
	}
	funcOK := lhs.HomogeneousWith(rhs)
	complete := lhs.CompleteWith(rhs)
	switch {
	case funcOK && complete:
		b.WriteString("  ⇒ well-defined (bijective) function between clusterings\n")
	case funcOK:
		b.WriteString("  ⇒ function exists but is not bijective (not complete)\n")
	default:
		b.WriteString("  ⇒ no function between clusterings: FD violated\n")
	}
	return b.String()
}

func rowsLabel(rows []int) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = fmt.Sprintf("t%d", r+1)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func rhsTargets(rows []int, rhs *Clustering) string {
	set := make(map[int]bool)
	for _, r := range rows {
		set[rhs.rowToClass[r]] = true
	}
	idx := make([]int, 0, len(set))
	for k := range set {
		idx = append(idx, k)
	}
	sort.Ints(idx)
	parts := make([]string, len(idx))
	for i, k := range idx {
		parts[i] = rhs.classes[k].Label
	}
	return strings.Join(parts, " | ")
}
