package texttable

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	tab := New("Title", "name", "value").AlignRight(1)
	tab.Add("alpha", "1")
	tab.Add("b", "20000")
	out := tab.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatalf("header = %q", lines[1])
	}
	// Right-aligned numeric column: "1" ends at the same offset as "20000".
	if !strings.HasSuffix(lines[3], "    1") {
		t.Fatalf("right alignment broken: %q", lines[3])
	}
	if !strings.HasSuffix(lines[4], "20000") {
		t.Fatalf("row = %q", lines[4])
	}
}

func TestRenderNoTitle(t *testing.T) {
	tab := New("", "a")
	tab.Add("x")
	out := tab.Render()
	if strings.HasPrefix(out, "\n") {
		t.Fatal("empty title must not emit a blank line")
	}
	if !strings.HasPrefix(out, "a") {
		t.Fatalf("out = %q", out)
	}
}

func TestAddPadsAndTruncates(t *testing.T) {
	tab := New("", "a", "b")
	tab.Add("only")
	tab.Add("x", "y", "overflow")
	if tab.NumRows() != 2 {
		t.Fatal("rows lost")
	}
	out := tab.Render()
	if strings.Contains(out, "overflow") {
		t.Fatal("extra cells must be dropped")
	}
}

func TestAddf(t *testing.T) {
	tab := New("", "n", "f")
	tab.Addf(42, 1.5)
	out := tab.Render()
	if !strings.Contains(out, "42") || !strings.Contains(out, "1.5") {
		t.Fatalf("Addf rendering wrong:\n%s", out)
	}
}

func TestUnicodeWidths(t *testing.T) {
	tab := New("", "col")
	tab.Add("ε_CB")
	tab.Add("x")
	out := tab.Render()
	// The separator must be as wide as the rune count of ε_CB (4), not its
	// byte count (6).
	lines := strings.Split(out, "\n")
	if lines[1] != "----" {
		t.Fatalf("separator = %q, want ----", lines[1])
	}
}

func TestAlignRightOutOfRangeIgnored(t *testing.T) {
	tab := New("", "a").AlignRight(-1, 5, 0)
	tab.Add("x")
	_ = tab.Render() // must not panic
}
