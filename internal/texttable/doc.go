// Package texttable renders small aligned text tables. It is the output
// format of the experiment harness — every table of the paper's evaluation
// (§6, Tables 1–8) is regenerated as one of these so measured columns line
// up beside the paper's printed values — and of the CLI tools (fdrepair's
// violation, repair and discovery listings; fdsql result sets).
//
// Tables hold cells as strings; columns are sized to the widest cell and
// aligned left by default, with AlignRight for numeric columns. No paper
// section corresponds to this package: it exists so reports stay readable
// in a terminal and diffable in tests.
package texttable
