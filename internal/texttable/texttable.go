package texttable

import (
	"fmt"
	"strings"
)

// Align selects the horizontal alignment of a column.
type Align int

const (
	// Left aligns cells to the left (default).
	Left Align = iota
	// Right aligns cells to the right; use it for numeric columns.
	Right
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	aligns  []Align
	rows    [][]string
}

// New creates a table with the given column headers.
func New(title string, headers ...string) *Table {
	return &Table{
		title:   title,
		headers: headers,
		aligns:  make([]Align, len(headers)),
	}
}

// AlignRight marks the given column indices as right-aligned.
func (t *Table) AlignRight(cols ...int) *Table {
	for _, c := range cols {
		if c >= 0 && c < len(t.aligns) {
			t.aligns[c] = Right
		}
	}
	return t
}

// Add appends a row. Rows shorter than the header are padded with empty
// cells; longer rows are truncated.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Addf appends a row of formatted cells: each argument is rendered with %v.
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Add(row...)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Render returns the formatted table.
func (t *Table) Render() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = displayWidth(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if w := displayWidth(cell); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - displayWidth(cell)
			if t.aligns[i] == Right {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			} else {
				b.WriteString(cell)
				if i < len(cells)-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// displayWidth approximates the rendered width as the rune count, which is
// exact for the ASCII plus occasional arrows/Greek the harness emits.
func displayWidth(s string) int { return len([]rune(s)) }
