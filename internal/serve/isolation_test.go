package serve

import (
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	evolvefd "github.com/evolvefd/evolvefd"
)

// TestTenantIsolationProperty is the isolation property test: random DML
// against three tenants interleaved in one request stream (a master RNG
// picks the tenant at every step), with a single-tenant library twin per
// tenant replaying only that tenant's ops. If any tenant's state leaked
// into another's, the final Suggestions, MemStats and Generation could not
// all equal the twins'.
func TestTenantIsolationProperty(t *testing.T) {
	ts, _ := newTestServer(t, RegistryOptions{})
	client := ts.Client()
	const (
		tenants     = 3
		initialRows = 10
		steps       = 150
	)

	type tenantState struct {
		name string
		base string
		twin *evolvefd.Session
		rt   *rowTracker
		rng  *rand.Rand
	}
	states := make([]*tenantState, tenants)
	for i := range states {
		name := fmt.Sprintf("iso%d", i)
		seed := int64(4000 + 17*i)
		csvRng := rand.New(rand.NewSource(seed))
		create := CreateRequest{CSV: workloadCSV(csvRng, initialRows), FDs: workloadFDs}
		base := ts.URL + "/v1/" + name
		mustReq(t, client, "POST", base, jsonBody(t, create), http.StatusCreated)
		states[i] = &tenantState{
			name: name,
			base: base,
			twin: libraryTwin(t, name, seed, initialRows),
			rt:   newRowTracker(initialRows),
			rng:  rand.New(rand.NewSource(seed * 31)),
		}
		defer states[i].twin.Close()
	}

	master := rand.New(rand.NewSource(99))
	for step := 0; step < steps; step++ {
		st := states[master.Intn(tenants)]
		applyRandomOp(t, client, st.base, st.twin, st.rt, st.rng)
	}

	// Final-state property: per tenant, Suggestions diff, Generation and the
	// full MemStats must equal the single-tenant twin's, byte for byte.
	for _, st := range states {
		body := mustReq(t, client, "GET", st.base+"/suggestions", "", http.StatusOK)
		suggestions, err := st.twin.Suggestions()
		if err != nil {
			t.Fatalf("twin %s suggestions: %v", st.name, err)
		}
		assertSameBody(t, st.name+" suggestions", body, buildSuggestions(suggestions))

		body = mustReq(t, client, "GET", st.base, "", http.StatusOK)
		assertSameBody(t, st.name+" stats", body, buildStats(st.name, false, st.twin))
	}
}
