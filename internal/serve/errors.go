package serve

import (
	"errors"
	"net/http"

	evolvefd "github.com/evolvefd/evolvefd"
)

// errBadRequest wraps request-shape failures (malformed JSON, missing
// fields, bad query parameters) that have no library sentinel of their own.
var errBadRequest = errors.New("serve: bad request")

// classify maps an error to its stable status code and machine-readable
// code string via errors.Is against the facade sentinels — never by
// matching message text. Unrecognised errors are internal: surfacing them
// as 500 rather than mislabelling them keeps the mapping honest.
func classify(err error) (status int, code string) {
	switch {
	case errors.Is(err, ErrUnknownTenant):
		return http.StatusNotFound, "unknown_tenant"
	case errors.Is(err, evolvefd.ErrUnknownFD):
		return http.StatusNotFound, "unknown_fd"
	case errors.Is(err, evolvefd.ErrUnknownRow):
		return http.StatusNotFound, "unknown_row"
	case errors.Is(err, ErrTenantExists):
		return http.StatusConflict, "tenant_exists"
	case errors.Is(err, evolvefd.ErrDuplicateFD):
		return http.StatusConflict, "duplicate_fd"
	case errors.Is(err, evolvefd.ErrSessionClosed):
		return http.StatusConflict, "session_closed"
	case errors.Is(err, ErrRegistryClosed):
		return http.StatusServiceUnavailable, "shutting_down"
	case errors.Is(err, ErrBadTenantName):
		return http.StatusBadRequest, "bad_tenant_name"
	case errors.Is(err, evolvefd.ErrBadFD):
		return http.StatusBadRequest, "bad_fd"
	case errors.Is(err, evolvefd.ErrArity):
		return http.StatusBadRequest, "arity_mismatch"
	case errors.Is(err, evolvefd.ErrBadValue):
		return http.StatusBadRequest, "bad_value"
	case errors.Is(err, evolvefd.ErrUnknownAttribute):
		return http.StatusBadRequest, "unknown_attribute"
	case errors.Is(err, errBadRequest):
		return http.StatusBadRequest, "bad_request"
	default:
		return http.StatusInternalServerError, "internal"
	}
}
