package serve

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	evolvefd "github.com/evolvefd/evolvefd"
)

// newTestServer mounts a fresh Server over a registry with the given
// options; the httptest server and every tenant session are torn down with
// the test.
func newTestServer(t *testing.T, opts RegistryOptions) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry(opts)
	ts := httptest.NewServer(New(reg))
	t.Cleanup(func() {
		ts.Close()
		reg.CloseAll()
	})
	return ts, reg
}

// doReq issues one request and returns status and body.
func doReq(t *testing.T, client *http.Client, method, url, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("NewRequest(%s %s): %v", method, url, err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: read body: %v", method, url, err)
	}
	return resp.StatusCode, data
}

// mustReq issues one request and fails the test unless it answers
// wantStatus.
func mustReq(t *testing.T, client *http.Client, method, url, body string, wantStatus int) []byte {
	t.Helper()
	status, data := doReq(t, client, method, url, body)
	if status != wantStatus {
		t.Fatalf("%s %s = %d, want %d\nbody: %s", method, url, status, wantStatus, data)
	}
	return data
}

// jsonBody marshals a request body the same canonical way the server
// marshals responses.
func jsonBody(t *testing.T, v any) string {
	t.Helper()
	data, err := marshalCanonical(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(data)
}

// wantBody renders the expected canonical response bytes for a wire value
// (trailing newline included, exactly as writeJSON emits them).
func wantBody(t *testing.T, v any) []byte {
	t.Helper()
	data, err := marshalCanonical(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return append(data, '\n')
}

// assertSameBody fails unless got is bit-identical to the canonical
// rendering of want.
func assertSameBody(t *testing.T, context string, got []byte, want any) {
	t.Helper()
	if expected := wantBody(t, want); !bytes.Equal(got, expected) {
		t.Fatalf("%s: HTTP response diverged from library twin\nhttp: %s\ntwin: %s", context, got, expected)
	}
}

// --- deterministic workload machinery (differential + isolation tests) ---

// workloadCSV builds a deterministic initial instance over schema
// A,B:int,C,D with small value domains, so defined FDs break and minimal
// FDs emerge under DML.
func workloadCSV(rng *rand.Rand, rows int) string {
	var sb strings.Builder
	sb.WriteString("A,B:int,C,D\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%s\n", strings.Join(randomCells(rng), ","))
	}
	return sb.String()
}

func randomCells(rng *rand.Rand) []string {
	return []string{
		fmt.Sprintf("a%d", rng.Intn(6)),
		fmt.Sprintf("%d", rng.Intn(4)),
		fmt.Sprintf("c%d", rng.Intn(3)),
		fmt.Sprintf("d%d", rng.Intn(5)),
	}
}

var workloadFDs = []FDDef{
	{Label: "F1", Spec: "A -> C"},
	{Label: "F2", Spec: "A, B -> D"},
}

// rowTracker mirrors the session's row-id space client-side: appends take
// the next physical id, deletes tombstone without shifting, compaction
// renumbers the live rows densely in order.
type rowTracker struct {
	live []int
	phys int
}

func newRowTracker(initial int) *rowTracker {
	rt := &rowTracker{phys: initial}
	for i := 0; i < initial; i++ {
		rt.live = append(rt.live, i)
	}
	return rt
}

func (rt *rowTracker) append(n int) {
	for i := 0; i < n; i++ {
		rt.live = append(rt.live, rt.phys)
		rt.phys++
	}
}

func (rt *rowTracker) pick(rng *rand.Rand) (idx, row int) {
	idx = rng.Intn(len(rt.live))
	return idx, rt.live[idx]
}

func (rt *rowTracker) delete(idx int) {
	rt.live = append(rt.live[:idx], rt.live[idx+1:]...)
}

func (rt *rowTracker) compacted() {
	for i := range rt.live {
		rt.live[i] = i
	}
	rt.phys = len(rt.live)
}

// libraryTwin builds the library-side session for a workload seed — same
// CSV, same FDs, driven by direct calls.
func libraryTwin(t *testing.T, name string, seed int64, rows int) *evolvefd.Session {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rel, err := evolvefd.OpenCSVReader(name, strings.NewReader(workloadCSV(rng, rows)), evolvefd.CSVOptions{InferKinds: true})
	if err != nil {
		t.Fatalf("twin %s: parse CSV: %v", name, err)
	}
	s := evolvefd.NewSession(rel)
	for _, fd := range workloadFDs {
		if err := s.Define(fd.Label, fd.Spec); err != nil {
			t.Fatalf("twin %s: define %s: %v", name, fd.Label, err)
		}
	}
	return s
}
