package serve

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden response files")

// goldenCSV is a fixed instance where F1 (A -> C) holds and F2 (A -> D) is
// violated, so every handler has deterministic, interesting output.
const goldenCSV = "A,B:int,C,D\nx,1,p,u\nx,2,p,v\ny,3,q,u\ny,4,q,v\nz,5,r,u\n"

// TestGoldenResponses replays a scripted request sequence covering every
// handler — happy paths and each error class — and compares the full
// status+body transcript against testdata/handlers.golden. Regenerate with
// go test ./internal/serve -run TestGolden -update.
func TestGoldenResponses(t *testing.T) {
	ts, _ := newTestServer(t, RegistryOptions{})
	client := ts.Client()
	url := func(path string) string { return ts.URL + path }

	createBody := jsonBody(t, CreateRequest{
		CSV: goldenCSV,
		FDs: []FDDef{{Label: "F1", Spec: "A -> C"}, {Label: "F2", Spec: "A -> D"}},
	})

	steps := []struct {
		name   string
		method string
		path   string
		body   string
	}{
		{"healthz-empty", "GET", "/healthz", ""},
		{"create", "POST", "/v1/g1", createBody},
		{"healthz", "GET", "/healthz", ""},
		{"tenants", "GET", "/v1/tenants", ""},
		{"stats", "GET", "/v1/g1", ""},
		{"check", "GET", "/v1/g1/check", ""},
		{"measures", "GET", "/v1/g1/measures?fd=F2", ""},
		{"repair", "POST", "/v1/g1/repair", jsonBody(t, RepairRequest{FD: "F2"})},
		{"accept", "POST", "/v1/g1/accept", jsonBody(t, AcceptRequest{FD: "F2", Added: []string{"B"}})},
		{"check-after-accept", "GET", "/v1/g1/check", ""},
		{"discover", "GET", "/v1/g1/discover?max_lhs=2", ""},
		{"discover-restricted", "GET", "/v1/g1/discover?max_lhs=1&consequents=C,D", ""},
		{"suggestions", "GET", "/v1/g1/suggestions", ""},
		{"append", "POST", "/v1/g1/append", jsonBody(t, AppendRequest{Rows: [][]string{{"w", "6", "s", "u"}}})},
		{"suggestions-after-append", "GET", "/v1/g1/suggestions", ""},
		{"update", "POST", "/v1/g1/update", jsonBody(t, UpdateRequest{Updates: []RowUpdate{{Row: 5, Cells: []string{"w", "6", "s", "w"}}}})},
		{"delete", "POST", "/v1/g1/delete", jsonBody(t, DeleteRequest{Rows: []int{5}})},
		{"compact", "POST", "/v1/g1/compact", ""},
		{"define", "POST", "/v1/g1/define", jsonBody(t, DefineRequest{Label: "F3", Spec: "C -> A"})},
		{"drop", "POST", "/v1/g1/drop", jsonBody(t, DropRequest{Label: "F3"})},
		{"flush", "POST", "/v1/g1/flush", ""},

		// Error classes, one per stable code.
		{"err-unknown-tenant", "GET", "/v1/nobody/check", ""},
		{"err-bad-tenant-name", "POST", "/v1/bad.name", createBody},
		{"err-tenant-exists", "POST", "/v1/g1", createBody},
		{"err-unknown-fd", "GET", "/v1/g1/measures?fd=NOPE", ""},
		{"err-missing-fd-param", "GET", "/v1/g1/measures", ""},
		{"err-duplicate-fd", "POST", "/v1/g1/define", jsonBody(t, DefineRequest{Label: "F1", Spec: "A -> C"})},
		{"err-bad-fd", "POST", "/v1/g1/define", jsonBody(t, DefineRequest{Label: "F9", Spec: "A -> Z"})},
		{"err-arity", "POST", "/v1/g1/append", jsonBody(t, AppendRequest{Rows: [][]string{{"only", "two"}}})},
		{"err-bad-value", "POST", "/v1/g1/append", jsonBody(t, AppendRequest{Rows: [][]string{{"x", "not-an-int", "p", "u"}}})},
		{"err-unknown-row", "POST", "/v1/g1/delete", jsonBody(t, DeleteRequest{Rows: []int{999}})},
		{"err-unknown-attribute", "POST", "/v1/g1/accept", jsonBody(t, AcceptRequest{FD: "F1", Added: []string{"Zap"}})},
		{"err-bad-json", "POST", "/v1/g1/append", `{"rows": [`},
		{"err-unknown-field", "POST", "/v1/g1/append", `{"tuples": [["x","1","p","u"]]}`},
		{"err-bad-query", "GET", "/v1/g1/discover?max_lhs=banana", ""},

		{"close", "DELETE", "/v1/g1", ""},
		{"err-after-close", "GET", "/v1/g1/check", ""},
	}

	var transcript bytes.Buffer
	for _, step := range steps {
		status, body := doReq(t, client, step.method, url(step.path), step.body)
		fmt.Fprintf(&transcript, "### %s\n%s %s\n%d\n%s\n", step.name, step.method, step.path, status, body)
	}

	goldenPath := filepath.Join("testdata", "handlers.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, transcript.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(transcript.Bytes(), want) {
		t.Fatalf("handler transcript diverged from golden file\n--- got ---\n%s\n--- want ---\n%s", transcript.Bytes(), want)
	}
}
