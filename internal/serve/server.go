package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	evolvefd "github.com/evolvefd/evolvefd"
)

// Server mounts the /v1 advisor API over a Registry. It is an http.Handler;
// serve it with an http.Server of the caller's choosing and drain it with
// Shutdown.
type Server struct {
	reg *Registry
	mux *http.ServeMux
	// done closes when shutdown begins: long-lived SSE handlers return on
	// it, so http.Server.Shutdown's drain is not held hostage by designers
	// with open feeds.
	done chan struct{}
	once sync.Once
}

// New builds a Server over a registry.
func New(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), done: make(chan struct{})}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	s.mux.HandleFunc("POST /v1/{tenant}", s.handleCreate)
	s.mux.HandleFunc("GET /v1/{tenant}", s.handleStats)
	s.mux.HandleFunc("DELETE /v1/{tenant}", s.handleClose)
	s.mux.HandleFunc("POST /v1/{tenant}/append", s.handleAppend)
	s.mux.HandleFunc("POST /v1/{tenant}/delete", s.handleDelete)
	s.mux.HandleFunc("POST /v1/{tenant}/update", s.handleUpdate)
	s.mux.HandleFunc("POST /v1/{tenant}/define", s.handleDefine)
	s.mux.HandleFunc("POST /v1/{tenant}/drop", s.handleDrop)
	s.mux.HandleFunc("POST /v1/{tenant}/repair", s.handleRepair)
	s.mux.HandleFunc("POST /v1/{tenant}/accept", s.handleAccept)
	s.mux.HandleFunc("POST /v1/{tenant}/compact", s.handleCompact)
	s.mux.HandleFunc("POST /v1/{tenant}/flush", s.handleFlush)
	s.mux.HandleFunc("GET /v1/{tenant}/check", s.handleCheck)
	s.mux.HandleFunc("GET /v1/{tenant}/measures", s.handleMeasures)
	s.mux.HandleFunc("GET /v1/{tenant}/discover", s.handleDiscover)
	s.mux.HandleFunc("GET /v1/{tenant}/suggestions", s.handleSuggestions)
	s.mux.HandleFunc("GET /v1/{tenant}/feed", s.handleFeed)
	return s
}

// ServeHTTP dispatches to the mounted routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains the server: SSE feeds are released, in-flight handlers
// finish under hs.Shutdown's deadline, and every tenant session is flushed
// and closed. A non-nil return means either the drain timed out or some
// tenant's log tail may not have reached disk. hs may be nil when the
// Server is mounted in a test harness that owns the listener.
func (s *Server) Shutdown(ctx context.Context, hs *http.Server) error {
	s.once.Do(func() { close(s.done) })
	var firstErr error
	if hs != nil {
		if err := hs.Shutdown(ctx); err != nil {
			firstErr = err
		}
	}
	if err := s.reg.CloseAll(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// marshalCanonical renders v as one-line JSON without HTML escaping, so FD
// arrows survive as "->" and response bytes are stable for golden and
// differential comparison.
func marshalCanonical(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := marshalCanonical(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, code := classify(err)
	writeJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: err.Error()}})
}

// decode parses a JSON request body strictly: unknown fields are bad
// requests, not silent typos.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: body: %v", errBadRequest, err)
	}
	return nil
}

// tenant resolves the {tenant} path segment, writing the error response on
// failure.
func (s *Server) tenant(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	t, err := s.reg.Get(r.PathValue("tenant"))
	if err != nil {
		s.writeError(w, err)
		return nil, false
	}
	return t, true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{OK: true, Tenants: s.reg.Len()})
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, TenantsResponse{Tenants: s.reg.List()})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	name := r.PathValue("tenant")
	t, err := s.reg.Create(name, req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, CreateResponse{
		Tenant:  name,
		Rows:    t.s.LiveRows(),
		FDs:     len(req.FDs),
		Durable: t.durable,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, buildStats(t.name, t.durable, t.s))
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Close(r.PathValue("tenant")); err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, OKResponse{OK: true})
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	var req AppendRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	for i, cells := range req.Rows {
		if err := t.s.AppendStrings(cells...); err != nil {
			s.writeError(w, fmt.Errorf("row %d: %w", i, err))
			return
		}
	}
	t.publish()
	writeJSON(w, http.StatusOK, AppendResponse{Appended: len(req.Rows), LiveRows: t.s.LiveRows()})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	var req DeleteRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := t.s.Delete(req.Rows...); err != nil {
		s.writeError(w, err)
		return
	}
	t.publish()
	writeJSON(w, http.StatusOK, DeleteResponse{Deleted: len(req.Rows), LiveRows: t.s.LiveRows()})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	var req UpdateRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	for i, u := range req.Updates {
		if err := t.s.UpdateStrings(u.Row, u.Cells...); err != nil {
			s.writeError(w, fmt.Errorf("update %d: %w", i, err))
			return
		}
	}
	t.publish()
	writeJSON(w, http.StatusOK, UpdateResponse{Updated: len(req.Updates)})
}

func (s *Server) handleDefine(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	var req DefineRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := t.s.Define(req.Label, req.Spec); err != nil {
		s.writeError(w, err)
		return
	}
	t.publish()
	writeJSON(w, http.StatusOK, OKResponse{OK: true})
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	var req DropRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := t.s.Drop(req.Label); err != nil {
		s.writeError(w, err)
		return
	}
	t.publish()
	writeJSON(w, http.StatusOK, OKResponse{OK: true})
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, buildCheck(t.s.Check()))
}

func (s *Server) handleMeasures(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	label := r.URL.Query().Get("fd")
	if label == "" {
		s.writeError(w, fmt.Errorf("%w: missing ?fd= label", errBadRequest))
		return
	}
	m, err := t.s.Measures(label)
	if err != nil {
		s.writeError(w, err)
		return
	}
	text, err := t.s.FDText(label)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MeasuresResponse{Label: label, FD: text, Measures: toMeasuresBody(m)})
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	var req RepairRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	opts := evolvefd.Options{
		FirstOnly:      req.FirstOnly,
		MaxAdded:       req.MaxAdded,
		MaxGoodness:    req.MaxGoodness,
		MinimalOnly:    req.MinimalOnly,
		Balanced:       req.Balanced,
		GoodnessWeight: req.GoodnessWeight,
		Parallelism:    req.Parallelism,
	}
	suggestions, err := t.s.Repair(req.FD, opts)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, buildRepair(req.FD, suggestions))
}

func (s *Server) handleAccept(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	var req AcceptRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := t.s.Accept(req.FD, evolvefd.Suggestion{Added: req.Added}); err != nil {
		s.writeError(w, err)
		return
	}
	text, err := t.s.FDText(req.FD)
	if err != nil {
		s.writeError(w, err)
		return
	}
	t.publish()
	writeJSON(w, http.StatusOK, AcceptResponse{Label: req.FD, FD: text})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	st := t.s.Compact()
	t.publish()
	writeJSON(w, http.StatusOK, buildCompact(st))
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	if err := t.s.Flush(); err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, OKResponse{OK: true})
}

// parseDiscoverQuery maps ?max_lhs=&max_results=&consequents=A,B to
// DiscoveryOptions; ?incremental=true selects the maintained cover.
func parseDiscoverQuery(r *http.Request) (opts evolvefd.DiscoveryOptions, incremental bool, err error) {
	q := r.URL.Query()
	if v := q.Get("max_lhs"); v != "" {
		if opts.MaxLHS, err = strconv.Atoi(v); err != nil {
			return opts, false, fmt.Errorf("%w: max_lhs: %v", errBadRequest, err)
		}
	}
	if v := q.Get("max_results"); v != "" {
		if opts.MaxResults, err = strconv.Atoi(v); err != nil {
			return opts, false, fmt.Errorf("%w: max_results: %v", errBadRequest, err)
		}
	}
	if q.Has("consequents") {
		opts.Consequents = []string{}
		for _, name := range strings.Split(q.Get("consequents"), ",") {
			if name = strings.TrimSpace(name); name != "" {
				opts.Consequents = append(opts.Consequents, name)
			}
		}
	}
	if v := q.Get("incremental"); v != "" {
		if incremental, err = strconv.ParseBool(v); err != nil {
			return opts, false, fmt.Errorf("%w: incremental: %v", errBadRequest, err)
		}
	}
	return opts, incremental, nil
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	opts, incremental, err := parseDiscoverQuery(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var found []evolvefd.DiscoveredFD
	if incremental {
		found, err = t.s.DiscoverIncremental(opts)
	} else {
		found, err = t.s.Discover(opts)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, buildDiscover(found))
}

func (s *Server) handleSuggestions(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	suggestions, err := t.s.Suggestions()
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, buildSuggestions(suggestions))
}

// handleFeed streams the tenant's advisor suggestions as Server-Sent
// Events: a hello event carrying the current generation, then one
// "suggestion" event per emerged/broken FD, pushed after each mutation
// batch in checkpoint order. The stream ends when the client disconnects,
// the tenant closes, or the server drains.
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		s.writeError(w, fmt.Errorf("%w: connection does not support streaming", errBadRequest))
		return
	}
	ch, cancel := t.hub.subscribe()
	defer cancel()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "event: hello\ndata: {\"tenant\":%q,\"generation\":%d}\n\n", t.name, t.s.Generation())
	fl.Flush()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			data, err := marshalCanonical(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: suggestion\nid: %d\ndata: %s\n\n", ev.Checkpoint, data)
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		}
	}
}
