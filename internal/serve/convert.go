package serve

import (
	evolvefd "github.com/evolvefd/evolvefd"
)

// Builders from facade results to wire bodies. The handlers and the
// HTTP-vs-library differential suite share these, so a comparison failure
// always means the two sessions' states diverged — never that the test
// re-implemented the conversion differently.

func toMeasuresBody(m evolvefd.Measures) MeasuresBody {
	return MeasuresBody{
		Confidence:      m.Confidence,
		ConfidenceRatio: m.ConfidenceRatio,
		Goodness:        m.Goodness,
		Exact:           m.Exact,
	}
}

func buildCheck(violations []evolvefd.Violation) CheckResponse {
	resp := CheckResponse{Consistent: len(violations) == 0, Violations: []ViolationBody{}}
	for _, v := range violations {
		resp.Violations = append(resp.Violations, ViolationBody{
			Label: v.Label, FD: v.FD, Measures: toMeasuresBody(v.Measures), Rank: v.Rank,
		})
	}
	return resp
}

func buildRepair(label string, suggestions []evolvefd.Suggestion) RepairResponse {
	resp := RepairResponse{Label: label, Suggestions: []SuggestionBody{}}
	for _, g := range suggestions {
		resp.Suggestions = append(resp.Suggestions, SuggestionBody{
			Added: g.Added, FD: g.FD, Measures: toMeasuresBody(g.Measures),
		})
	}
	return resp
}

func buildDiscover(found []evolvefd.DiscoveredFD) DiscoverResponse {
	resp := DiscoverResponse{Cover: []DiscoveredBody{}}
	for _, d := range found {
		resp.Cover = append(resp.Cover, DiscoveredBody{
			FD: d.FD, Spec: d.Spec, Antecedent: d.Antecedent, Consequent: d.Consequent,
		})
	}
	return resp
}

func buildSuggestions(suggestions []evolvefd.AdvisorSuggestion) SuggestionsResponse {
	resp := SuggestionsResponse{Suggestions: []AdvisorBody{}}
	for _, g := range suggestions {
		resp.Suggestions = append(resp.Suggestions, AdvisorBody{
			Kind: string(g.Kind), Label: g.Label, FD: g.FD, Spec: g.Spec,
		})
	}
	return resp
}

func buildStats(name string, durable bool, s *evolvefd.Session) StatsResponse {
	m := s.MemStats()
	return StatsResponse{
		Tenant:     name,
		Durable:    durable,
		Generation: s.Generation(),
		Epoch:      m.Epoch,
		LiveRows:   m.LiveRows,
		FDs:        s.Labels(),
		Mem: MemBody{
			PhysicalRows:     m.PhysicalRows,
			LiveRows:         m.LiveRows,
			Tombstones:       m.Tombstones,
			TombstoneRatio:   m.TombstoneRatio,
			Segments:         m.Segments,
			DirtySegments:    m.DirtySegments,
			SegmentRows:      m.SegmentRows,
			Epoch:            m.Epoch,
			Compactions:      m.Compactions,
			StorageBytes:     m.StorageBytes,
			ReclaimableBytes: m.ReclaimableBytes,
			DictEntries:      m.DictEntries,
			TrackedSets:      m.TrackedSets,
			CachedMeasures:   m.CachedMeasures,
		},
	}
}

func buildCompact(st evolvefd.CompactionStats) CompactResponse {
	return CompactResponse{
		Reclaimed: st.Reclaimed,
		OldRows:   st.OldRows,
		NewRows:   st.NewRows,
		Moved:     st.Moved,
		Epoch:     st.Epoch,
	}
}
