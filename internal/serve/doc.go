// Package serve is the network face of the FD advisor: a multi-tenant
// HTTP/JSON service (fdserved) that hosts one Session per tenant dataset
// and makes the paper's human-in-the-loop workflow callable — and
// streamable — over the wire.
//
// A Registry owns the tenants. Each tenant is one evolvefd.Session —
// durable (write-ahead logged under <data-dir>/<tenant>) when the registry
// has a data directory, ephemeral otherwise — created by uploading a CSV
// instance plus the FDs the designer believes in, and recovered from its
// WAL+snapshot state when the server restarts. The Server mounts the
// advisor surface under /v1/{tenant}: batched DML ingest (append, delete,
// update), measure and violation queries (check, measures), the repair
// search (repair, accept), incremental discovery (discover, suggestions),
// session lifecycle (create, compact, flush, close) and a Server-Sent
// Events feed (feed) that pushes emerged/broken FD suggestions to
// subscribed designers in checkpoint order.
//
// Handlers ride the Session's own concurrency discipline: reads (check,
// measures, repair, discover) run in parallel with each other across and
// within tenants, mutations serialise per tenant behind the session's
// RWMutex, and nothing in this package adds locking around the hot paths —
// only tenant lookup and the SSE fan-out carry their own small mutexes.
// Every Session error is classified with errors.Is against the facade's
// sentinel errors and mapped to a typed JSON error body with a stable
// status code; no handler matches error strings.
package serve
