package serve

// Wire types of the /v1 API. Responses marshal with stable field order and
// no HTML escaping, so a response body is canonical: the golden-response
// tests and the HTTP-vs-library differential suite compare raw bytes.

// ErrorBody is the typed error envelope every non-2xx response carries.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail names the failure class (stable, machine-matchable) and the
// human-readable cause.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// FDDef is one labelled FD spec in Define syntax, e.g. {"F1", "A, B -> C"}.
type FDDef struct {
	Label string `json:"label"`
	Spec  string `json:"spec"`
}

// CreateRequest uploads a tenant's instance (CSV text, header row included,
// optionally with ":kind" type annotations) and its initial FDs.
type CreateRequest struct {
	CSV string  `json:"csv"`
	FDs []FDDef `json:"fds,omitempty"`
}

// CreateResponse acknowledges a created tenant.
type CreateResponse struct {
	Tenant  string `json:"tenant"`
	Rows    int    `json:"rows"`
	FDs     int    `json:"fds"`
	Durable bool   `json:"durable"`
}

// AppendRequest ingests a batch of tuples, one cell list per row, parsed
// with the column kinds ("" and "NULL" become NULL). The batch is applied
// in order and is not atomic: a rejected row fails the request but keeps
// the rows before it.
type AppendRequest struct {
	Rows [][]string `json:"rows"`
}

// AppendResponse acknowledges an applied append batch.
type AppendResponse struct {
	Appended int `json:"appended"`
	LiveRows int `json:"live_rows"`
}

// DeleteRequest tombstones the given row ids. Each listed batch entry is
// one Delete call; ids are stable within a storage epoch.
type DeleteRequest struct {
	Rows []int `json:"rows"`
}

// DeleteResponse acknowledges applied deletes.
type DeleteResponse struct {
	Deleted  int `json:"deleted"`
	LiveRows int `json:"live_rows"`
}

// RowUpdate replaces the cells of one live row in place.
type RowUpdate struct {
	Row   int      `json:"row"`
	Cells []string `json:"cells"`
}

// UpdateRequest applies a batch of in-place row corrections, in order,
// non-atomically (like AppendRequest).
type UpdateRequest struct {
	Updates []RowUpdate `json:"updates"`
}

// UpdateResponse acknowledges applied updates.
type UpdateResponse struct {
	Updated int `json:"updated"`
}

// MeasuresBody mirrors evolvefd.Measures on the wire.
type MeasuresBody struct {
	Confidence      float64 `json:"confidence"`
	ConfidenceRatio string  `json:"confidence_ratio"`
	Goodness        int     `json:"goodness"`
	Exact           bool    `json:"exact"`
}

// MeasuresResponse answers GET measures?fd=LABEL.
type MeasuresResponse struct {
	Label    string       `json:"label"`
	FD       string       `json:"fd"`
	Measures MeasuresBody `json:"measures"`
}

// ViolationBody is one violated FD in repair-priority order.
type ViolationBody struct {
	Label    string       `json:"label"`
	FD       string       `json:"fd"`
	Measures MeasuresBody `json:"measures"`
	Rank     float64      `json:"rank"`
}

// CheckResponse answers GET check: the violated FDs, repair-first.
type CheckResponse struct {
	Consistent bool            `json:"consistent"`
	Violations []ViolationBody `json:"violations"`
}

// RepairRequest runs the repair search for one violated FD. The option
// fields mirror evolvefd.Options.
type RepairRequest struct {
	FD             string  `json:"fd"`
	FirstOnly      bool    `json:"first_only,omitempty"`
	MaxAdded       int     `json:"max_added,omitempty"`
	MaxGoodness    *int    `json:"max_goodness,omitempty"`
	MinimalOnly    bool    `json:"minimal_only,omitempty"`
	Balanced       bool    `json:"balanced,omitempty"`
	GoodnessWeight float64 `json:"goodness_weight,omitempty"`
	Parallelism    int     `json:"parallelism,omitempty"`
}

// SuggestionBody is one proposed antecedent extension.
type SuggestionBody struct {
	Added    []string     `json:"added"`
	FD       string       `json:"fd"`
	Measures MeasuresBody `json:"measures"`
}

// RepairResponse lists the ranked repairs of one FD, best first.
type RepairResponse struct {
	Label       string           `json:"label"`
	Suggestions []SuggestionBody `json:"suggestions"`
}

// AcceptRequest adopts a repair: the named attributes join the FD's
// antecedent (the designer saying yes).
type AcceptRequest struct {
	FD    string   `json:"fd"`
	Added []string `json:"added"`
}

// AcceptResponse echoes the evolved dependency.
type AcceptResponse struct {
	Label string `json:"label"`
	FD    string `json:"fd"`
}

// DefineRequest declares one more FD on a live tenant.
type DefineRequest struct {
	Label string `json:"label"`
	Spec  string `json:"spec"`
}

// DropRequest removes a defined FD.
type DropRequest struct {
	Label string `json:"label"`
}

// OKResponse acknowledges an operation with no further payload (define,
// drop, flush, close).
type OKResponse struct {
	OK bool `json:"ok"`
}

// DiscoveredBody is one minimal exact FD found on the instance.
type DiscoveredBody struct {
	FD         string   `json:"fd"`
	Spec       string   `json:"spec"`
	Antecedent []string `json:"antecedent"`
	Consequent string   `json:"consequent"`
}

// DiscoverResponse answers GET discover: the minimal exact-FD cover.
type DiscoverResponse struct {
	Cover []DiscoveredBody `json:"cover"`
}

// AdvisorBody is one advisor feed item: an emerged FD to adopt or a broken
// defined FD to repair.
type AdvisorBody struct {
	Kind  string `json:"kind"`
	Label string `json:"label,omitempty"`
	FD    string `json:"fd"`
	Spec  string `json:"spec,omitempty"`
}

// SuggestionsResponse answers GET suggestions: the advisor diff since the
// previous checkpoint.
type SuggestionsResponse struct {
	Suggestions []AdvisorBody `json:"suggestions"`
}

// FeedEvent is one SSE "suggestion" event. Checkpoint numbers are assigned
// per tenant in publish order; every subscriber observes checkpoints
// monotonically increasing.
type FeedEvent struct {
	Checkpoint uint64 `json:"checkpoint"`
	Kind       string `json:"kind"`
	Label      string `json:"label,omitempty"`
	FD         string `json:"fd"`
	Spec       string `json:"spec,omitempty"`
}

// CompactResponse reports one storage compaction (durations omitted: the
// body is canonical).
type CompactResponse struct {
	Reclaimed int    `json:"reclaimed"`
	OldRows   int    `json:"old_rows"`
	NewRows   int    `json:"new_rows"`
	Moved     int    `json:"moved"`
	Epoch     uint64 `json:"epoch"`
}

// MemBody mirrors evolvefd.MemStats on the wire.
type MemBody struct {
	PhysicalRows     int     `json:"physical_rows"`
	LiveRows         int     `json:"live_rows"`
	Tombstones       int     `json:"tombstones"`
	TombstoneRatio   float64 `json:"tombstone_ratio"`
	Segments         int     `json:"segments"`
	DirtySegments    int     `json:"dirty_segments"`
	SegmentRows      int     `json:"segment_rows"`
	Epoch            uint64  `json:"epoch"`
	Compactions      uint64  `json:"compactions"`
	StorageBytes     int64   `json:"storage_bytes"`
	ReclaimableBytes int64   `json:"reclaimable_bytes"`
	DictEntries      int     `json:"dict_entries"`
	TrackedSets      int     `json:"tracked_sets"`
	CachedMeasures   int     `json:"cached_measures"`
}

// StatsResponse answers GET /v1/{tenant}: the tenant's observable state.
type StatsResponse struct {
	Tenant     string   `json:"tenant"`
	Durable    bool     `json:"durable"`
	Generation uint64   `json:"generation"`
	Epoch      uint64   `json:"epoch"`
	LiveRows   int      `json:"live_rows"`
	FDs        []string `json:"fds"`
	Mem        MemBody  `json:"mem"`
}

// TenantsResponse answers GET /v1/tenants.
type TenantsResponse struct {
	Tenants []string `json:"tenants"`
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	OK      bool `json:"ok"`
	Tenants int  `json:"tenants"`
}
