package serve

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	evolvefd "github.com/evolvefd/evolvefd"
)

// TestDifferentialHTTPvsLibrary is the end-to-end differential suite: the
// same deterministic workload replayed through the HTTP API and through
// direct library calls on a twin session, with every read endpoint's
// response bytes asserted bit-identical to the twin's state. Four tenants
// run concurrently against one server (t.Parallel subtests), so under
// -race this also exercises the per-session RWMutex through the full HTTP
// stack.
func TestDifferentialHTTPvsLibrary(t *testing.T) {
	ts, _ := newTestServer(t, RegistryOptions{})
	for i := 0; i < 4; i++ {
		name, seed := fmt.Sprintf("tenant%d", i), int64(1000+i)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runDifferentialWorkload(t, ts, name, seed, false)
		})
	}
}

// TestDifferentialDurable replays one differential workload against a
// durable registry: the HTTP session write-ahead logs every mutation while
// the in-memory twin does not, and the observable state must still match
// byte for byte.
func TestDifferentialDurable(t *testing.T) {
	ts, _ := newTestServer(t, RegistryOptions{
		DataDir:    t.TempDir(),
		Durability: evolvefd.DurabilityOptions{NoFsync: true},
	})
	runDifferentialWorkload(t, ts, "walled", 7, true)
}

func runDifferentialWorkload(t *testing.T, ts *httptest.Server, name string, seed int64, durable bool) {
	t.Helper()
	const initialRows = 12
	client := ts.Client()
	base := ts.URL + "/v1/" + name

	csvRng := rand.New(rand.NewSource(seed))
	create := CreateRequest{CSV: workloadCSV(csvRng, initialRows), FDs: workloadFDs}
	body := mustReq(t, client, "POST", base, jsonBody(t, create), http.StatusCreated)
	assertSameBody(t, "create", body, CreateResponse{
		Tenant: name, Rows: initialRows, FDs: len(workloadFDs), Durable: durable,
	})

	twin := libraryTwin(t, name, seed, initialRows)
	defer twin.Close()
	rt := newRowTracker(initialRows)
	rng := rand.New(rand.NewSource(seed * 31))

	for step := 0; step < 60; step++ {
		applyRandomOp(t, client, base, twin, rt, rng)
		if step%10 == 9 {
			compareAll(t, client, base, name, durable, twin)
		}
	}

	// Evolve the dependency set the designer way: repair the top-ranked
	// violation and accept its best suggestion on both sides.
	if violations := twin.Check(); len(violations) > 0 {
		label := violations[0].Label
		body := mustReq(t, client, "POST", base+"/repair", jsonBody(t, RepairRequest{FD: label}), http.StatusOK)
		suggestions, err := twin.Repair(label, evolvefd.Options{})
		if err != nil {
			t.Fatalf("twin repair %s: %v", label, err)
		}
		assertSameBody(t, "repair", body, buildRepair(label, suggestions))
		if len(suggestions) > 0 {
			accept := AcceptRequest{FD: label, Added: suggestions[0].Added}
			body = mustReq(t, client, "POST", base+"/accept", jsonBody(t, accept), http.StatusOK)
			if err := twin.Accept(label, suggestions[0]); err != nil {
				t.Fatalf("twin accept %s: %v", label, err)
			}
			text, err := twin.FDText(label)
			if err != nil {
				t.Fatalf("twin FDText %s: %v", label, err)
			}
			assertSameBody(t, "accept", body, AcceptResponse{Label: label, FD: text})
		}
	}
	compareAll(t, client, base, name, durable, twin)
}

// applyRandomOp draws one DML op and applies it through both stacks,
// asserting the HTTP acknowledgement against twin state.
func applyRandomOp(t *testing.T, client *http.Client, base string, twin *evolvefd.Session, rt *rowTracker, rng *rand.Rand) {
	t.Helper()
	switch p := rng.Intn(100); {
	case p < 45: // append a batch
		n := 1 + rng.Intn(4)
		rows := make([][]string, n)
		for i := range rows {
			rows[i] = randomCells(rng)
		}
		body := mustReq(t, client, "POST", base+"/append", jsonBody(t, AppendRequest{Rows: rows}), http.StatusOK)
		for _, cells := range rows {
			if err := twin.AppendStrings(cells...); err != nil {
				t.Fatalf("twin append: %v", err)
			}
		}
		rt.append(n)
		assertSameBody(t, "append", body, AppendResponse{Appended: n, LiveRows: twin.LiveRows()})
	case p < 60: // delete one live row
		if len(rt.live) < 6 {
			return
		}
		idx, row := rt.pick(rng)
		body := mustReq(t, client, "POST", base+"/delete", jsonBody(t, DeleteRequest{Rows: []int{row}}), http.StatusOK)
		if err := twin.Delete(row); err != nil {
			t.Fatalf("twin delete %d: %v", row, err)
		}
		rt.delete(idx)
		assertSameBody(t, "delete", body, DeleteResponse{Deleted: 1, LiveRows: twin.LiveRows()})
	case p < 80: // correct one live row in place
		if len(rt.live) == 0 {
			return
		}
		_, row := rt.pick(rng)
		cells := randomCells(rng)
		update := UpdateRequest{Updates: []RowUpdate{{Row: row, Cells: cells}}}
		body := mustReq(t, client, "POST", base+"/update", jsonBody(t, update), http.StatusOK)
		if err := twin.UpdateStrings(row, cells...); err != nil {
			t.Fatalf("twin update %d: %v", row, err)
		}
		assertSameBody(t, "update", body, UpdateResponse{Updated: 1})
	case p < 92: // point read: measures of a defined FD
		label := workloadFDs[rng.Intn(len(workloadFDs))].Label
		m, err := twin.Measures(label)
		if err != nil {
			t.Fatalf("twin measures %s: %v", label, err)
		}
		text, err := twin.FDText(label)
		if err != nil {
			t.Fatalf("twin FDText %s: %v", label, err)
		}
		body := mustReq(t, client, "GET", base+"/measures?fd="+label, "", http.StatusOK)
		assertSameBody(t, "measures", body, MeasuresResponse{Label: label, FD: text, Measures: toMeasuresBody(m)})
	default: // compact
		body := mustReq(t, client, "POST", base+"/compact", "", http.StatusOK)
		st := twin.Compact()
		rt.compacted()
		assertSameBody(t, "compact", body, buildCompact(st))
	}
}

// compareAll asserts every read endpoint against the twin, byte for byte.
func compareAll(t *testing.T, client *http.Client, base, name string, durable bool, twin *evolvefd.Session) {
	t.Helper()
	body := mustReq(t, client, "GET", base+"/check", "", http.StatusOK)
	assertSameBody(t, "check", body, buildCheck(twin.Check()))

	for _, label := range twin.Labels() {
		m, err := twin.Measures(label)
		if err != nil {
			t.Fatalf("twin measures %s: %v", label, err)
		}
		text, err := twin.FDText(label)
		if err != nil {
			t.Fatalf("twin FDText %s: %v", label, err)
		}
		body = mustReq(t, client, "GET", base+"/measures?fd="+label, "", http.StatusOK)
		assertSameBody(t, "measures "+label, body, MeasuresResponse{Label: label, FD: text, Measures: toMeasuresBody(m)})
	}

	body = mustReq(t, client, "GET", base+"/discover?max_lhs=2", "", http.StatusOK)
	found, err := twin.Discover(evolvefd.DiscoveryOptions{MaxLHS: 2})
	if err != nil {
		t.Fatalf("twin discover: %v", err)
	}
	assertSameBody(t, "discover", body, buildDiscover(found))

	body = mustReq(t, client, "GET", base+"/suggestions", "", http.StatusOK)
	suggestions, err := twin.Suggestions()
	if err != nil {
		t.Fatalf("twin suggestions: %v", err)
	}
	assertSameBody(t, "suggestions", body, buildSuggestions(suggestions))

	body = mustReq(t, client, "GET", base, "", http.StatusOK)
	assertSameBody(t, "stats", body, buildStats(name, durable, twin))
}
