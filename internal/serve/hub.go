package serve

import "sync"

// subBuffer bounds each SSE subscriber's in-flight event queue. A
// subscriber that falls this far behind the publish stream is dropped
// (its channel closed) rather than allowed to stall every other designer's
// feed — the client reconnects and resumes from live state.
const subBuffer = 256

// hub fans advisor events out to one tenant's SSE subscribers. Checkpoint
// numbers are assigned under the hub lock in broadcast order, and events
// are enqueued to every subscriber under the same lock, so each subscriber
// observes checkpoints monotonically and events within a checkpoint in
// Suggestions order.
type hub struct {
	mu         sync.Mutex
	subs       map[chan FeedEvent]struct{}
	checkpoint uint64
	closed     bool
}

func newHub() *hub {
	return &hub{subs: make(map[chan FeedEvent]struct{})}
}

// subscribe registers a listener. The returned cancel is idempotent and
// safe to call after the hub dropped or closed the subscription.
func (h *hub) subscribe() (<-chan FeedEvent, func()) {
	ch := make(chan FeedEvent, subBuffer)
	h.mu.Lock()
	if h.closed {
		close(ch)
		h.mu.Unlock()
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// subscribers counts live listeners; publishers skip the Suggestions
// computation entirely when it is zero.
func (h *hub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// broadcast stamps the events with the next checkpoint number and enqueues
// them to every subscriber. A subscriber whose buffer is full is dropped.
func (h *hub) broadcast(events []FeedEvent) {
	if len(events) == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.checkpoint++
	for i := range events {
		events[i].Checkpoint = h.checkpoint
	}
	for ch := range h.subs {
		ok := true
		for _, ev := range events {
			select {
			case ch <- ev:
			default:
				ok = false
			}
			if !ok {
				break
			}
		}
		if !ok {
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// close drops every subscriber; later subscribes get an already-closed
// channel. Part of tenant close and server shutdown.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}
