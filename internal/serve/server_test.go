package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	evolvefd "github.com/evolvefd/evolvefd"
)

func TestHubBroadcastOrderAndDrop(t *testing.T) {
	h := newHub()
	fast, cancelFast := h.subscribe()
	defer cancelFast()
	slow, _ := h.subscribe()

	// Overflow the slow subscriber: it never drains, so once its buffer
	// fills the hub must drop it rather than stall the fast one.
	for i := 0; i < subBuffer+8; i++ {
		h.broadcast([]FeedEvent{{Kind: "emerged", FD: fmt.Sprintf("fd%d", i)}})
		// Keep the fast subscriber drained.
		ev := <-fast
		if ev.Checkpoint != uint64(i+1) {
			t.Fatalf("checkpoint = %d, want %d", ev.Checkpoint, i+1)
		}
	}
	if h.subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1 (slow one dropped)", h.subscribers())
	}
	// The dropped subscriber's channel must be closed after its buffered
	// prefix drains.
	n := 0
	for range slow {
		n++
	}
	if n != subBuffer {
		t.Fatalf("slow subscriber drained %d events, want %d", n, subBuffer)
	}
}

func TestHubClose(t *testing.T) {
	h := newHub()
	ch, cancel := h.subscribe()
	h.close()
	if _, open := <-ch; open {
		t.Fatal("subscriber channel still open after hub close")
	}
	cancel() // idempotent after the hub already dropped the subscription
	h.close()
	if ch2, _ := h.subscribe(); func() bool { _, open := <-ch2; return open }() {
		t.Fatal("subscribe after close returned an open channel")
	}
	h.broadcast([]FeedEvent{{Kind: "emerged"}}) // no-op, must not panic
}

func TestRegistryRecover(t *testing.T) {
	dataDir := t.TempDir()
	opts := RegistryOptions{DataDir: dataDir, Durability: evolvefd.DurabilityOptions{NoFsync: true}}

	reg := NewRegistry(opts)
	for _, name := range []string{"alpha", "beta"} {
		if _, err := reg.Create(name, CreateRequest{CSV: goldenCSV, FDs: []FDDef{{Label: "F1", Spec: "A -> C"}}}); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
	}
	alpha, err := reg.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if err := alpha.Session().AppendStrings("q", "9", "t", "u"); err != nil {
		t.Fatal(err)
	}
	if err := reg.CloseAll(); err != nil {
		t.Fatalf("CloseAll: %v", err)
	}
	if _, err := reg.Get("alpha"); !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("Get after CloseAll = %v, want ErrRegistryClosed", err)
	}

	reg2 := NewRegistry(opts)
	names, err := reg2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("recovered %v, want [alpha beta]", names)
	}
	defer reg2.CloseAll()
	alpha2, err := reg2.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := alpha2.Session().LiveRows(); got != 6 {
		t.Fatalf("recovered alpha LiveRows = %d, want 6", got)
	}
	if !alpha2.Session().Consistent() {
		// F1 (A -> C) still holds on the recovered instance.
		t.Fatal("recovered alpha inconsistent")
	}

	// Creating over on-disk durable state is a conflict, not an overwrite.
	if _, err := reg2.Create("alpha", CreateRequest{CSV: goldenCSV}); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("create over durable state = %v, want ErrTenantExists", err)
	}

	// Tenant close keeps state on disk: a later recovery still sees it.
	if err := reg2.Close("beta"); err != nil {
		t.Fatalf("close beta: %v", err)
	}
	if !evolvefd.HasSessionState(filepath.Join(dataDir, "beta")) {
		t.Fatal("beta durable state removed by tenant close")
	}
}

func TestRegistryRecoverCorrupt(t *testing.T) {
	dataDir := t.TempDir()
	opts := RegistryOptions{DataDir: dataDir, Durability: evolvefd.DurabilityOptions{NoFsync: true}}
	reg := NewRegistry(opts)
	if _, err := reg.Create("frail", CreateRequest{CSV: goldenCSV}); err != nil {
		t.Fatal(err)
	}
	if err := reg.CloseAll(); err != nil {
		t.Fatal(err)
	}
	// Truncate every durable file: recovery must fail loudly rather than
	// serve a partial fleet.
	entries, err := os.ReadDir(filepath.Join(dataDir, "frail"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.Truncate(filepath.Join(dataDir, "frail", e.Name()), 3); err != nil {
			t.Fatal(err)
		}
	}
	reg2 := NewRegistry(opts)
	if _, err := reg2.Recover(); err == nil {
		t.Fatal("Recover over truncated state succeeded, want loud failure")
	}
}

func TestCreateDefineFailureCleansUp(t *testing.T) {
	dataDir := t.TempDir()
	reg := NewRegistry(RegistryOptions{DataDir: dataDir, Durability: evolvefd.DurabilityOptions{NoFsync: true}})
	defer reg.CloseAll()
	_, err := reg.Create("half", CreateRequest{CSV: goldenCSV, FDs: []FDDef{{Label: "F1", Spec: "A -> Nope"}}})
	if !errors.Is(err, evolvefd.ErrBadFD) {
		t.Fatalf("create with bad FD = %v, want ErrBadFD", err)
	}
	if _, err := reg.Get("half"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatal("failed create left the tenant registered")
	}
	if evolvefd.HasSessionState(filepath.Join(dataDir, "half")) {
		t.Fatal("failed create left durable state on disk")
	}
	// The name is reusable after the failed create.
	if _, err := reg.Create("half", CreateRequest{CSV: goldenCSV, FDs: []FDDef{{Label: "F1", Spec: "A -> C"}}}); err != nil {
		t.Fatalf("re-create after failed create: %v", err)
	}
}

// TestGracefulShutdown drains the server with an SSE feed open: Shutdown
// must release the streaming handler, flush+close every durable session,
// and answer later requests with 503 shutting_down.
func TestGracefulShutdown(t *testing.T) {
	dataDir := t.TempDir()
	ts, reg := newTestServer(t, RegistryOptions{DataDir: dataDir, Durability: evolvefd.DurabilityOptions{NoFsync: true}})
	client := ts.Client()
	base := ts.URL + "/v1/drainme"
	mustReq(t, client, "POST", base, jsonBody(t, CreateRequest{CSV: goldenCSV, FDs: workloadFDs}), http.StatusCreated)
	mustReq(t, client, "POST", base+"/append", jsonBody(t, AppendRequest{Rows: [][]string{{"q", "9", "t", "u"}}}), http.StatusOK)

	// Open a feed and wait for the hello event, so the streaming handler is
	// provably in its select loop when Shutdown fires.
	req, err := http.NewRequest("GET", base+"/feed", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no hello event")
	}
	feedDone := make(chan struct{})
	go func() {
		defer close(feedDone)
		for sc.Scan() {
		}
	}()

	srv := ts.Config.Handler.(*Server)
	ctx, cancel := context.WithTimeout(context.Background(), 10e9)
	defer cancel()
	if err := srv.Shutdown(ctx, nil); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	<-feedDone

	status, body := doReq(t, client, "GET", base+"/check", "")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("request after shutdown = %d (%s), want 503", status, body)
	}

	// The session was flushed and closed: its durable state recovers with
	// the appended row.
	reg2 := NewRegistry(RegistryOptions{DataDir: dataDir, Durability: evolvefd.DurabilityOptions{NoFsync: true}})
	if _, err := reg2.Recover(); err != nil {
		t.Fatalf("recover after shutdown: %v", err)
	}
	defer reg2.CloseAll()
	tn, err := reg2.Get("drainme")
	if err != nil {
		t.Fatal(err)
	}
	if got := tn.Session().LiveRows(); got != 6 {
		t.Fatalf("recovered LiveRows = %d, want 6", got)
	}
	_ = reg
}

func TestClassifyInternal(t *testing.T) {
	status, code := classify(errors.New("novel failure"))
	if status != http.StatusInternalServerError || code != "internal" {
		t.Fatalf("classify(novel) = %d %q, want 500 internal", status, code)
	}
}
