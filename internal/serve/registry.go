package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	evolvefd "github.com/evolvefd/evolvefd"
)

// Registry-level sentinel errors, mapped to status codes by the handlers.
var (
	// ErrUnknownTenant flags a request against a tenant the registry does
	// not host.
	ErrUnknownTenant = errors.New("serve: unknown tenant")
	// ErrTenantExists flags a create under a name already in use.
	ErrTenantExists = errors.New("serve: tenant already exists")
	// ErrRegistryClosed flags any operation after shutdown began.
	ErrRegistryClosed = errors.New("serve: registry is closed")
	// ErrBadTenantName flags a tenant name outside [A-Za-z0-9_-]{1,64} —
	// names double as data subdirectory names, so they must be path-safe.
	ErrBadTenantName = errors.New("serve: bad tenant name")
)

// tenantName is the path-safe tenant grammar.
var tenantName = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

// RegistryOptions configures tenant hosting.
type RegistryOptions struct {
	// DataDir, when non-empty, makes every tenant durable: its session is
	// write-ahead logged under DataDir/<tenant> and recovered from there on
	// restart. Empty hosts ephemeral in-memory tenants.
	DataDir string
	// Durability tunes the write-ahead logging of durable tenants (group
	// commit, fsync, log rotation); ignored when DataDir is empty.
	Durability evolvefd.DurabilityOptions
}

// Registry multiplexes tenant sessions behind one server: each tenant
// dataset is one evolvefd.Session, created by CSV/FD upload or recovered
// from its durable directory, and looked up per request. The registry
// serialises only membership changes; per-tenant request concurrency is the
// session's own.
type Registry struct {
	opts    RegistryOptions
	mu      sync.RWMutex
	tenants map[string]*Tenant
	closed  bool
}

// Tenant is one hosted dataset: the session plus the tenant's SSE hub.
type Tenant struct {
	name    string
	s       *evolvefd.Session
	durable bool
	hub     *hub
	// pubMu serialises advisor-feed publishes, so checkpoint numbers are
	// assigned in the order the Suggestions diffs were computed.
	pubMu sync.Mutex
}

// Name returns the tenant's registry name.
func (t *Tenant) Name() string { return t.name }

// Session exposes the tenant's session (tests and the differential harness
// reach the library twin surface through it).
func (t *Tenant) Session() *evolvefd.Session { return t.s }

// publish computes the advisor diff and broadcasts it to the tenant's SSE
// subscribers — called after every successful mutation batch, skipped
// entirely (no Suggestions call, so the one-shot endpoint's baseline is
// untouched) while nobody subscribes.
func (t *Tenant) publish() {
	if t.hub.subscribers() == 0 {
		return
	}
	t.pubMu.Lock()
	defer t.pubMu.Unlock()
	suggestions, err := t.s.Suggestions()
	if err != nil || len(suggestions) == 0 {
		return
	}
	events := make([]FeedEvent, 0, len(suggestions))
	for _, g := range suggestions {
		events = append(events, FeedEvent{
			Kind: string(g.Kind), Label: g.Label, FD: g.FD, Spec: g.Spec,
		})
	}
	t.hub.broadcast(events)
}

// NewRegistry builds an empty registry. With a DataDir, call Recover to
// reopen the tenants a previous process left on disk.
func NewRegistry(opts RegistryOptions) *Registry {
	return &Registry{opts: opts, tenants: make(map[string]*Tenant)}
}

// Durable reports whether tenants are write-ahead logged.
func (r *Registry) Durable() bool { return r.opts.DataDir != "" }

// Recover scans the data directory and reopens every tenant with durable
// session state, returning the recovered names. A subdirectory without
// session state is skipped (it may be mid-create debris); a corrupt tenant
// fails recovery loudly rather than serving a partial fleet.
func (r *Registry) Recover() ([]string, error) {
	if r.opts.DataDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(r.opts.DataDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() || !tenantName.MatchString(e.Name()) {
			continue
		}
		dir := filepath.Join(r.opts.DataDir, e.Name())
		if !evolvefd.HasSessionState(dir) {
			continue
		}
		s, err := evolvefd.OpenSessionOptions(dir, r.opts.Durability)
		if err != nil {
			return names, fmt.Errorf("serve: recover tenant %q: %w", e.Name(), err)
		}
		r.mu.Lock()
		r.tenants[e.Name()] = &Tenant{name: e.Name(), s: s, durable: true, hub: newHub()}
		r.mu.Unlock()
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Create hosts a new tenant over an uploaded instance: parse the CSV,
// define the FDs in order, and — under a data directory — open the durable
// session (snapshot 1 is written before Create returns, so the tenant is
// recoverable from its first mutation on).
func (r *Registry) Create(name string, req CreateRequest) (*Tenant, error) {
	if !tenantName.MatchString(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadTenantName, name)
	}
	rel, err := evolvefd.OpenCSVReader(name, strings.NewReader(req.CSV), evolvefd.CSVOptions{InferKinds: true})
	if err != nil {
		return nil, fmt.Errorf("%w: csv: %w", errBadRequest, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrRegistryClosed
	}
	if _, dup := r.tenants[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrTenantExists, name)
	}
	var s *evolvefd.Session
	if r.opts.DataDir != "" {
		dir := filepath.Join(r.opts.DataDir, name)
		if evolvefd.HasSessionState(dir) {
			return nil, fmt.Errorf("%w: %q has durable state on disk (restart the server to recover it)", ErrTenantExists, name)
		}
		s, err = evolvefd.NewDurableSession(rel, dir, r.opts.Durability)
		if err != nil {
			return nil, err
		}
	} else {
		s = evolvefd.NewSession(rel)
	}
	for _, fd := range req.FDs {
		if err := s.Define(fd.Label, fd.Spec); err != nil {
			s.Close()
			if r.opts.DataDir != "" {
				os.RemoveAll(filepath.Join(r.opts.DataDir, name))
			}
			return nil, err
		}
	}
	t := &Tenant{name: name, s: s, durable: r.opts.DataDir != "", hub: newHub()}
	r.tenants[name] = t
	return t, nil
}

// Get looks a tenant up.
func (r *Registry) Get(name string) (*Tenant, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, ErrRegistryClosed
	}
	t, ok := r.tenants[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return t, nil
}

// List returns the hosted tenant names, sorted.
func (r *Registry) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len counts hosted tenants.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tenants)
}

// Close flushes and closes one tenant's session, drops its SSE subscribers
// and removes it from the registry. Durable state stays on disk: a server
// restart recovers the tenant.
func (r *Registry) Close(name string) error {
	r.mu.Lock()
	t, ok := r.tenants[name]
	if ok {
		delete(r.tenants, name)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	t.hub.close()
	return t.s.Close()
}

// CloseAll is the shutdown path: refuse new lookups, drop every SSE
// subscriber, and flush+close every session — the same discipline as
// fdrepair's SIGINT handler, applied fleet-wide. The first close error is
// returned (a non-nil return means some tenant's tail may not have reached
// disk); every session is closed regardless.
func (r *Registry) CloseAll() error {
	r.mu.Lock()
	r.closed = true
	tenants := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tenants = append(tenants, t)
	}
	r.tenants = map[string]*Tenant{}
	r.mu.Unlock()
	var firstErr error
	for _, t := range tenants {
		t.hub.close()
		if err := t.s.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("serve: close tenant %q: %w", t.name, err)
		}
	}
	return firstErr
}
