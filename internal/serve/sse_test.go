package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	evolvefd "github.com/evolvefd/evolvefd"
)

// sseEvent is one parsed Server-Sent-Events block.
type sseEvent struct {
	event string
	id    string
	data  string
}

// readSSE parses event blocks off the stream and pushes them into a
// channel, so the test can apply deadlines per event.
func readSSE(body *bufio.Scanner, out chan<- sseEvent) {
	var ev sseEvent
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			if ev.event != "" || ev.data != "" {
				out <- ev
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, "event: "):
			ev.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			ev.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		}
	}
	close(out)
}

func nextEvent(t *testing.T, events <-chan sseEvent) sseEvent {
	t.Helper()
	select {
	case ev, ok := <-events:
		if !ok {
			t.Fatalf("SSE stream closed early")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for SSE event")
		return sseEvent{}
	}
}

// TestFeedSSE subscribes to a tenant's advisor feed and replays a mutation
// sequence whose expected events a library twin computes: every batch that
// produces a non-empty Suggestions diff must arrive as SSE "suggestion"
// events, in checkpoint order, with the checkpoints strictly increasing.
func TestFeedSSE(t *testing.T) {
	ts, _ := newTestServer(t, RegistryOptions{})
	client := ts.Client()
	base := ts.URL + "/v1/feedy"

	const csv = "A,B:int,C,D\nx,1,p,u\ny,2,q,v\n"
	fds := []FDDef{{Label: "F1", Spec: "A -> C"}}
	mustReq(t, client, "POST", base, jsonBody(t, CreateRequest{CSV: csv, FDs: fds}), http.StatusCreated)

	rel, err := evolvefd.OpenCSVReader("feedy", strings.NewReader(csv), evolvefd.CSVOptions{InferKinds: true})
	if err != nil {
		t.Fatalf("twin CSV: %v", err)
	}
	twin := evolvefd.NewSession(rel)
	defer twin.Close()
	twin.MustDefine("F1", "A -> C")

	// Seed both advisors' baselines while F1 still holds: the first
	// Suggestions call reports nothing, so without this the feed would see
	// F1 as broken-at-seed rather than newly broken.
	mustReq(t, client, "GET", base+"/suggestions", "", http.StatusOK)
	if _, err := twin.Suggestions(); err != nil {
		t.Fatalf("twin seed suggestions: %v", err)
	}

	// Subscribe before mutating; the hello event acknowledges the
	// registered subscription (publish is synchronous in the mutation
	// handler, so an acked mutation's events are already enqueued).
	req, err := http.NewRequest("GET", base+"/feed", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("feed Content-Type = %q, want text/event-stream", ct)
	}
	events := make(chan sseEvent, 64)
	go readSSE(bufio.NewScanner(resp.Body), events)

	hello := nextEvent(t, events)
	if hello.event != "hello" {
		t.Fatalf("first event = %q, want hello", hello.event)
	}
	var helloBody struct {
		Tenant     string `json:"tenant"`
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal([]byte(hello.data), &helloBody); err != nil {
		t.Fatalf("hello data %q: %v", hello.data, err)
	}
	if helloBody.Tenant != "feedy" || helloBody.Generation != twin.Generation() {
		t.Fatalf("hello = %+v, want tenant feedy generation %d", helloBody, twin.Generation())
	}

	// Mutation batches; the twin computes the expected per-batch diff.
	batches := [][][]string{
		{{"x", "3", "r", "w"}}, // breaks F1: A=x now maps to both p and r
		{{"z", "4", "s", "w"}}, // new A value, F1 stays broken (no new diff for it)
		{{"y", "2", "q", "v"}}, // duplicate row
		{{"x", "5", "p", "u"}}, // another x→p witness
	}
	type expected struct {
		checkpoint uint64
		events     []FeedEvent
	}
	var want []expected
	var checkpoint uint64
	for _, rows := range batches {
		mustReq(t, client, "POST", base+"/append", jsonBody(t, AppendRequest{Rows: rows}), http.StatusOK)
		for _, cells := range rows {
			if err := twin.AppendStrings(cells...); err != nil {
				t.Fatalf("twin append: %v", err)
			}
		}
		suggestions, err := twin.Suggestions()
		if err != nil {
			t.Fatalf("twin suggestions: %v", err)
		}
		if len(suggestions) == 0 {
			continue
		}
		checkpoint++
		exp := expected{checkpoint: checkpoint}
		for _, g := range suggestions {
			exp.events = append(exp.events, FeedEvent{
				Checkpoint: checkpoint, Kind: string(g.Kind), Label: g.Label, FD: g.FD, Spec: g.Spec,
			})
		}
		want = append(want, exp)
	}
	if len(want) == 0 {
		t.Fatalf("workload produced no advisor diffs; the test scenario is broken")
	}

	sawBroken := false
	var last uint64
	for _, exp := range want {
		for _, wantEv := range exp.events {
			ev := nextEvent(t, events)
			if ev.event != "suggestion" {
				t.Fatalf("event type = %q, want suggestion", ev.event)
			}
			var got FeedEvent
			if err := json.Unmarshal([]byte(ev.data), &got); err != nil {
				t.Fatalf("event data %q: %v", ev.data, err)
			}
			if got != wantEv {
				t.Fatalf("feed event = %+v, want %+v", got, wantEv)
			}
			if got.Checkpoint < last {
				t.Fatalf("checkpoint went backwards: %d after %d", got.Checkpoint, last)
			}
			last = got.Checkpoint
			if got.Kind == "broken" {
				sawBroken = true
			}
		}
	}
	if !sawBroken {
		t.Fatalf("no broken-FD event arrived; scenario should break F1")
	}
}
