// Package bitset provides compact, growable sets of small non-negative
// integers. It is used throughout evolvefd to represent sets of attribute
// positions — the X and Y of every functional dependency (Definition 1 of
// the paper), the candidate antecedents a repair search sweeps (§4.2–4.3),
// and the lattice nodes FD discovery enumerates. Relations such as the
// Veterans case study of §6.2 have hundreds of attributes, so a fixed
// 64-bit word is not enough.
//
// A Set is a value type backed by a []uint64; the zero value is an empty
// set. All operations that return a Set allocate a fresh backing slice, so
// Sets can be shared freely between goroutines as long as callers do not
// mutate them concurrently with readers. Key returns a canonical string
// form used as a map key by the partition caches and the measure cache.
package bitset
