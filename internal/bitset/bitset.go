package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a set of small non-negative integers ("members"). The zero value is
// an empty set ready to use.
type Set struct {
	words []uint64
}

// New returns a set containing the given members.
func New(members ...int) Set {
	var s Set
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// FromRange returns the set {lo, lo+1, ..., hi-1}.
func FromRange(lo, hi int) Set {
	var s Set
	for i := lo; i < hi; i++ {
		s.Add(i)
	}
	return s
}

// Add inserts m into the set, growing the backing storage if needed.
// Add panics if m is negative.
func (s *Set) Add(m int) {
	if m < 0 {
		panic("bitset: negative member " + strconv.Itoa(m))
	}
	w := m / wordBits
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (m % wordBits)
}

// Remove deletes m from the set. Removing an absent member is a no-op.
func (s *Set) Remove(m int) {
	if m < 0 {
		return
	}
	w := m / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << (m % wordBits)
	}
}

// Contains reports whether m is a member of the set.
func (s Set) Contains(m int) bool {
	if m < 0 {
		return false
	}
	w := m / wordBits
	return w < len(s.words) && s.words[w]&(1<<(m%wordBits)) != 0
}

// Len returns the number of members.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no members.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	if len(s.words) == 0 {
		return Set{}
	}
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w}
}

// Union returns s ∪ t as a new set.
func (s Set) Union(t Set) Set {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	w := make([]uint64, n)
	copy(w, s.words)
	for i, tw := range t.words {
		w[i] |= tw
	}
	return Set{words: w}
}

// Intersect returns s ∩ t as a new set.
func (s Set) Intersect(t Set) Set {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	w := make([]uint64, n)
	for i := 0; i < n; i++ {
		w[i] = s.words[i] & t.words[i]
	}
	return Set{words: w}
}

// Diff returns s \ t as a new set.
func (s Set) Diff(t Set) Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	for i := 0; i < len(w) && i < len(t.words); i++ {
		w[i] &^= t.words[i]
	}
	return Set{words: w}
}

// With returns s ∪ {m} as a new set, leaving s unchanged.
func (s Set) With(m int) Set {
	c := s.Clone()
	c.Add(m)
	return c
}

// Without returns s \ {m} as a new set, leaving s unchanged.
func (s Set) Without(m int) Set {
	c := s.Clone()
	c.Remove(m)
	return c
}

// SubsetOf reports whether every member of s is also in t.
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊂ t (subset and not equal).
func (s Set) ProperSubsetOf(t Set) bool {
	return s.SubsetOf(t) && !s.Equal(t)
}

// Intersects reports whether s ∩ t is non-empty.
func (s Set) Intersects(t Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain exactly the same members.
func (s Set) Equal(t Set) bool {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i := range short {
		if long[i] != short[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Members returns the members in increasing order.
func (s Set) Members() []int {
	out := make([]int, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &^= 1 << b
		}
	}
	return out
}

// Min returns the smallest member, or -1 if the set is empty.
func (s Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest member, or -1 if the set is empty.
func (s Set) Max() int {
	for wi := len(s.words) - 1; wi >= 0; wi-- {
		if w := s.words[wi]; w != 0 {
			return wi*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// ForEach calls fn for every member in increasing order. Iteration stops if
// fn returns false.
func (s Set) ForEach(fn func(m int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &^= 1 << b
		}
	}
}

// Key returns a string usable as a map key that uniquely identifies the set's
// contents (trailing zero words are ignored, so equal sets produce equal keys).
func (s Set) Key() string {
	end := len(s.words)
	for end > 0 && s.words[end-1] == 0 {
		end--
	}
	if end == 0 {
		return ""
	}
	var b strings.Builder
	b.Grow(end * 8)
	for _, w := range s.words[:end] {
		for i := 0; i < 8; i++ {
			b.WriteByte(byte(w >> (8 * i)))
		}
	}
	return b.String()
}

// String renders the set as "{1,4,7}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(m int) bool {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(m))
		return true
	})
	b.WriteByte('}')
	return b.String()
}
