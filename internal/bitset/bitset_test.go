package bitset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var s Set
	if !s.IsEmpty() {
		t.Fatal("zero Set should be empty")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if s.Contains(0) || s.Contains(100) {
		t.Fatal("zero Set should contain nothing")
	}
	if s.Min() != -1 || s.Max() != -1 {
		t.Fatalf("Min/Max on empty = %d/%d, want -1/-1", s.Min(), s.Max())
	}
	if got := s.String(); got != "{}" {
		t.Fatalf("String = %q, want {}", got)
	}
}

func TestAddContainsRemove(t *testing.T) {
	s := New(3, 64, 481) // crosses word boundaries, like Veterans' 481 attrs
	for _, m := range []int{3, 64, 481} {
		if !s.Contains(m) {
			t.Errorf("Contains(%d) = false, want true", m)
		}
	}
	for _, m := range []int{0, 63, 65, 480, 482, 1000} {
		if s.Contains(m) {
			t.Errorf("Contains(%d) = true, want false", m)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	s.Remove(64)
	if s.Contains(64) || s.Len() != 2 {
		t.Fatal("Remove(64) failed")
	}
	s.Remove(64) // removing again is a no-op
	if s.Len() != 2 {
		t.Fatal("double Remove changed the set")
	}
	s.Remove(-1) // negative is a no-op
	if s.Len() != 2 {
		t.Fatal("Remove(-1) changed the set")
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) should panic")
		}
	}()
	var s Set
	s.Add(-1)
}

func TestMembersSorted(t *testing.T) {
	s := New(70, 2, 400, 3, 129)
	want := []int{2, 3, 70, 129, 400}
	if got := s.Members(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 400 {
		t.Fatalf("Min/Max = %d/%d, want 2/400", s.Min(), s.Max())
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(1, 2, 3, 100)
	b := New(3, 4, 100, 200)

	if got := a.Union(b).Members(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 100, 200}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b).Members(); !reflect.DeepEqual(got, []int{3, 100}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b).Members(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Diff = %v", got)
	}
	if got := b.Diff(a).Members(); !reflect.DeepEqual(got, []int{4, 200}) {
		t.Errorf("Diff reverse = %v", got)
	}
}

func TestWithWithoutDoNotMutate(t *testing.T) {
	a := New(1, 2)
	b := a.With(3)
	c := a.Without(2)
	if a.Len() != 2 || !a.Contains(1) || !a.Contains(2) {
		t.Fatal("With/Without mutated the receiver")
	}
	if !b.Contains(3) || b.Len() != 3 {
		t.Fatal("With result wrong")
	}
	if c.Contains(2) || c.Len() != 1 {
		t.Fatal("Without result wrong")
	}
}

func TestSubsetEqual(t *testing.T) {
	a := New(1, 2)
	b := New(1, 2, 3)
	empty := Set{}

	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Fatal("SubsetOf wrong")
	}
	if !a.ProperSubsetOf(b) {
		t.Fatal("ProperSubsetOf(a,b) should hold")
	}
	if a.ProperSubsetOf(a) {
		t.Fatal("a is not a proper subset of itself")
	}
	if !empty.SubsetOf(a) || !empty.SubsetOf(empty) {
		t.Fatal("empty set must be subset of everything")
	}
	if !a.Equal(New(2, 1)) {
		t.Fatal("Equal should ignore insertion order")
	}
	// Equal must tolerate different backing lengths.
	big := New(500)
	big.Remove(500)
	if !big.Equal(empty) || !empty.Equal(big) {
		t.Fatal("Equal must ignore trailing zero words")
	}
}

func TestIntersects(t *testing.T) {
	if New(1, 2).Intersects(New(3, 4)) {
		t.Fatal("disjoint sets should not intersect")
	}
	if !New(1, 200).Intersects(New(200)) {
		t.Fatal("sets sharing 200 should intersect")
	}
	if (Set{}).Intersects(New(1)) {
		t.Fatal("empty set intersects nothing")
	}
}

func TestKeyEquality(t *testing.T) {
	a := New(1, 65)
	b := New(65, 1)
	if a.Key() != b.Key() {
		t.Fatal("equal sets must have equal keys")
	}
	// Trailing zero words must not affect the key.
	c := New(1, 65, 500)
	c.Remove(500)
	if a.Key() != c.Key() {
		t.Fatal("key must ignore trailing zero words")
	}
	if a.Key() == New(1, 66).Key() {
		t.Fatal("different sets must have different keys")
	}
	if (Set{}).Key() != "" {
		t.Fatal("empty set key should be empty string")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New(1, 2, 3, 4, 5)
	var seen []int
	s.ForEach(func(m int) bool {
		seen = append(seen, m)
		return m < 3
	})
	if !reflect.DeepEqual(seen, []int{1, 2, 3}) {
		t.Fatalf("seen = %v, want [1 2 3]", seen)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(1, 2)
	b := a.Clone()
	b.Add(3)
	if a.Contains(3) {
		t.Fatal("Clone shares storage with original")
	}
}

// randomSet builds a set plus a reference map representation from rng.
func randomSet(rng *rand.Rand, maxMember int) (Set, map[int]bool) {
	var s Set
	ref := make(map[int]bool)
	n := rng.Intn(40)
	for i := 0; i < n; i++ {
		m := rng.Intn(maxMember)
		s.Add(m)
		ref[m] = true
	}
	return s, ref
}

func refMembers(ref map[int]bool) []int {
	out := make([]int, 0, len(ref))
	for m := range ref {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// TestQuickAgainstMapModel cross-checks Set against a map[int]bool model.
func TestQuickAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		s, ref := randomSet(rng, 600)
		if s.Len() != len(ref) {
			t.Fatalf("iter %d: Len = %d, want %d", iter, s.Len(), len(ref))
		}
		got := s.Members()
		want := refMembers(ref)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: Members = %v, want %v", iter, got, want)
		}
	}
}

// TestQuickAlgebraLaws verifies set-algebra identities on random sets.
func TestQuickAlgebraLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		a, _ := randomSet(rng, 300)
		b, _ := randomSet(rng, 300)
		c, _ := randomSet(rng, 300)

		if !a.Union(b).Equal(b.Union(a)) {
			t.Fatal("union not commutative")
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			t.Fatal("intersection not commutative")
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			t.Fatal("union not associative")
		}
		// A \ B ⊆ A and disjoint from B.
		d := a.Diff(b)
		if !d.SubsetOf(a) {
			t.Fatal("diff not subset of lhs")
		}
		if d.Intersects(b) {
			t.Fatal("diff intersects rhs")
		}
		// |A ∪ B| = |A| + |B| − |A ∩ B|
		if a.Union(b).Len() != a.Len()+b.Len()-a.Intersect(b).Len() {
			t.Fatal("inclusion-exclusion violated")
		}
		// De Morgan within the union universe: (A∪B) \ (A∩B) == (A\B) ∪ (B\A)
		sym := a.Diff(b).Union(b.Diff(a))
		if !a.Union(b).Diff(a.Intersect(b)).Equal(sym) {
			t.Fatal("symmetric difference identity violated")
		}
	}
}

// TestQuickKeyInjective uses testing/quick to confirm Key() is injective over
// the member lists actually representable.
func TestQuickKeyInjective(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		var a, b Set
		for _, x := range xs {
			a.Add(int(x) % 1024)
		}
		for _, y := range ys {
			b.Add(int(y) % 1024)
		}
		if a.Equal(b) {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddContains(b *testing.B) {
	var s Set
	for i := 0; i < 500; i++ {
		s.Add(i * 3 % 481)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Contains(i % 481)
	}
}

func BenchmarkUnion481(b *testing.B) {
	a := FromRange(0, 240)
	c := FromRange(200, 481)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Union(c)
	}
}

func TestFromRange(t *testing.T) {
	s := FromRange(3, 7)
	if got := s.Members(); !reflect.DeepEqual(got, []int{3, 4, 5, 6}) {
		t.Fatalf("FromRange(3,7) = %v", got)
	}
	if !FromRange(5, 5).IsEmpty() || !FromRange(5, 3).IsEmpty() {
		t.Fatal("empty/inverted ranges must produce the empty set")
	}
	// Ranges crossing word boundaries.
	wide := FromRange(60, 70)
	if wide.Len() != 10 || !wide.Contains(63) || !wide.Contains(64) {
		t.Fatalf("cross-word range wrong: %v", wide)
	}
}

func TestStringRendering(t *testing.T) {
	if got := New(1, 65, 3).String(); got != "{1,3,65}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(0).String(); got != "{0}" {
		t.Fatalf("String = %q", got)
	}
}

func TestIsEmptyWithZeroWords(t *testing.T) {
	s := New(100)
	s.Remove(100)
	if !s.IsEmpty() {
		t.Fatal("set with only zero words must be empty")
	}
	if s.Contains(-5) {
		t.Fatal("negative members are never contained")
	}
}
