package relation

import (
	"encoding/binary"
	"fmt"
	"math"
)

// relMagic opens every serialized relation blob; relVersion names the layout
// so future format changes can keep reading old snapshots.
const (
	relMagic   = "EVFDREL1"
	relVersion = 1
)

// AppendValue appends the binary encoding of one value: a kind byte followed
// by the kind's payload (strings length-prefixed, ints zigzag-varint, floats
// as raw IEEE bits, bools as one byte, NULL as the bare kind byte). The
// encoding is self-delimiting, so values concatenate into tuples without
// separators.
func AppendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindString:
		buf = appendString(buf, v.s)
	case KindInt:
		buf = binary.AppendVarint(buf, v.i)
	case KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.f))
	case KindBool:
		if v.b {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// DecodeValue decodes one value from the front of data, returning the value
// and the number of bytes consumed. Unknown kinds, NaN floats (which would
// break Value's comparability) and short buffers are errors, never panics —
// the decoder fronts crash recovery and fuzzed inputs.
func DecodeValue(data []byte) (Value, int, error) {
	if len(data) == 0 {
		return Null, 0, fmt.Errorf("relation: truncated value")
	}
	kind := Kind(data[0])
	rest := data[1:]
	switch kind {
	case KindNull:
		return Null, 1, nil
	case KindString:
		s, n, err := decodeString(rest)
		if err != nil {
			return Null, 0, err
		}
		return String(s), 1 + n, nil
	case KindInt:
		i, n := binary.Varint(rest)
		if n <= 0 {
			return Null, 0, fmt.Errorf("relation: truncated int value")
		}
		return Int(i), 1 + n, nil
	case KindFloat:
		if len(rest) < 8 {
			return Null, 0, fmt.Errorf("relation: truncated float value")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(rest))
		if math.IsNaN(f) {
			return Null, 0, fmt.Errorf("relation: NaN float value")
		}
		return Float(f), 9, nil
	case KindBool:
		if len(rest) < 1 {
			return Null, 0, fmt.Errorf("relation: truncated bool value")
		}
		if rest[0] > 1 {
			return Null, 0, fmt.Errorf("relation: bool value byte %d", rest[0])
		}
		return Bool(rest[0] == 1), 2, nil
	default:
		return Null, 0, fmt.Errorf("relation: unknown value kind %d", kind)
	}
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeString(data []byte) (string, int, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 {
		return "", 0, fmt.Errorf("relation: truncated string length")
	}
	if l > uint64(len(data)-n) {
		return "", 0, fmt.Errorf("relation: string length %d exceeds buffer", l)
	}
	return string(data[n : n+int(l)]), n + int(l), nil
}

// AppendBinary appends the full binary serialization of the instance: schema,
// segment layout, epoch and mutation counters, the tombstone bitmap, and per
// column the dictionary (values in code order, so codes keep their exact
// meaning) followed by the dense code array. The format round-trips the
// physical storage bit-for-bit — row ids, dictionary codes, tombstones and
// the storage epoch all survive, which is what lets WAL replay and remapped
// incremental state resume on a decoded instance as if the process never
// died.
func (r *Relation) AppendBinary(buf []byte) []byte {
	buf = append(buf, relMagic...)
	buf = append(buf, relVersion)
	buf = appendString(buf, r.name)
	buf = binary.AppendUvarint(buf, uint64(r.segRows))
	buf = binary.AppendUvarint(buf, uint64(r.schema.Len()))
	for _, c := range r.schema.Columns() {
		buf = appendString(buf, c.Name)
		buf = append(buf, byte(c.Kind))
	}
	buf = binary.AppendUvarint(buf, uint64(r.rows))
	buf = binary.AppendUvarint(buf, r.epoch)
	buf = binary.AppendUvarint(buf, r.mutations)
	buf = binary.AppendUvarint(buf, uint64(r.deleted))
	if r.deleted > 0 {
		bits := make([]byte, (r.rows+7)/8)
		for row, dead := range r.dead {
			if dead {
				bits[row/8] |= 1 << (row % 8)
			}
		}
		buf = append(buf, bits...)
	}
	for col := range r.cols {
		d := r.dicts[col]
		buf = binary.AppendUvarint(buf, uint64(len(d.values)))
		for _, v := range d.values {
			buf = AppendValue(buf, v)
		}
		for _, code := range r.cols[col] {
			// code+1 keeps the NULL sentinel (-1) inside uvarint range.
			buf = binary.AppendUvarint(buf, uint64(code+1))
		}
	}
	return buf
}

// binReader decodes the AppendBinary layout with a sticky error, bounding
// every length it reads by the bytes actually remaining so corrupt or fuzzed
// input cannot trigger outsized allocations.
type binReader struct {
	data []byte
	off  int
	err  error
}

func (b *binReader) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("relation: "+format, args...)
	}
}

func (b *binReader) uvarint() uint64 {
	if b.err != nil {
		return 0
	}
	v, n := binary.Uvarint(b.data[b.off:])
	if n <= 0 {
		b.fail("truncated varint at offset %d", b.off)
		return 0
	}
	b.off += n
	return v
}

// length reads a count whose decoded form costs at least min bytes per entry,
// rejecting counts the remaining input cannot possibly hold.
func (b *binReader) length(what string, min int) int {
	v := b.uvarint()
	if b.err != nil {
		return 0
	}
	if v > uint64(len(b.data)-b.off)/uint64(min)+1 {
		b.fail("%s count %d exceeds remaining input", what, v)
		return 0
	}
	return int(v)
}

func (b *binReader) str() string {
	if b.err != nil {
		return ""
	}
	s, n, err := decodeString(b.data[b.off:])
	if err != nil {
		b.err = err
		return ""
	}
	b.off += n
	return s
}

func (b *binReader) value() Value {
	if b.err != nil {
		return Null
	}
	v, n, err := DecodeValue(b.data[b.off:])
	if err != nil {
		b.err = err
		return Null
	}
	b.off += n
	return v
}

func (b *binReader) byte() byte {
	if b.err != nil {
		return 0
	}
	if b.off >= len(b.data) {
		b.fail("truncated byte at offset %d", b.off)
		return 0
	}
	v := b.data[b.off]
	b.off++
	return v
}

func (b *binReader) bytes(n int) []byte {
	if b.err != nil {
		return nil
	}
	if n > len(b.data)-b.off {
		b.fail("truncated %d-byte field at offset %d", n, b.off)
		return nil
	}
	out := b.data[b.off : b.off+n]
	b.off += n
	return out
}

// DecodeBinary decodes a relation serialized by AppendBinary from the front
// of data, returning the instance and the number of bytes consumed. Every
// structural invariant is re-validated — schema names, dictionary value
// kinds and uniqueness, code ranges, the tombstone count — so a corrupted or
// adversarial blob yields an error, never a panic or an inconsistent
// instance. Derived state (NULL counts, per-segment tombstone counts, the
// dictionary index) is rebuilt rather than trusted from the wire.
func DecodeBinary(data []byte) (*Relation, int, error) {
	b := &binReader{data: data}
	if string(b.bytes(len(relMagic))) != relMagic {
		return nil, 0, fmt.Errorf("relation: bad magic (not a serialized relation)")
	}
	if v := b.byte(); b.err == nil && v != relVersion {
		return nil, 0, fmt.Errorf("relation: unsupported format version %d", v)
	}
	name := b.str()
	segRows := b.uvarint()
	if b.err == nil && (segRows < 1 || segRows > 1<<30) {
		b.fail("segment capacity %d out of range", segRows)
	}
	ncols := b.length("column", 2)
	cols := make([]Column, 0, ncols)
	for i := 0; i < ncols && b.err == nil; i++ {
		cname := b.str()
		kind := Kind(b.byte())
		if b.err == nil && (kind < KindString || kind > KindBool) {
			b.fail("column %q has invalid kind %d", cname, kind)
		}
		cols = append(cols, Column{Name: cname, Kind: kind})
	}
	if b.err != nil {
		return nil, 0, b.err
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, 0, err
	}
	r := NewWithSegmentRows(name, schema, int(segRows))
	rows := b.length("row", 1)
	if b.err == nil && ncols == 0 && rows > 0 {
		// Rows in a zero-column relation occupy no bytes, so the row count
		// is unfalsifiable against the input; no real instance looks like
		// this, so refuse it rather than trust it.
		b.fail("%d rows with no columns", rows)
	}
	r.epoch = b.uvarint()
	r.mutations = b.uvarint()
	deleted := b.uvarint()
	if b.err == nil && deleted > uint64(rows) {
		b.fail("tombstone count %d exceeds %d rows", deleted, rows)
	}
	r.rows = rows
	r.deleted = int(deleted)
	if deleted > 0 {
		bits := b.bytes((rows + 7) / 8)
		if b.err != nil {
			return nil, 0, b.err
		}
		r.dead = make([]bool, rows)
		n := 0
		for row := range r.dead {
			if bits[row/8]&(1<<(row%8)) != 0 {
				r.dead[row] = true
				n++
			}
		}
		if n != int(deleted) {
			return nil, 0, fmt.Errorf("relation: tombstone bitmap holds %d rows, header says %d", n, deleted)
		}
	}
	for col := 0; col < ncols && b.err == nil; col++ {
		dictLen := b.length("dictionary", 1)
		d := r.dicts[col]
		want := schema.Column(col).Kind
		for i := 0; i < dictLen && b.err == nil; i++ {
			v := b.value()
			if b.err != nil {
				break
			}
			if v.Kind() != want {
				b.fail("column %q dictionary entry %d has kind %v, want %v",
					schema.Column(col).Name, i, v.Kind(), want)
				break
			}
			if _, dup := d.index[v]; dup {
				b.fail("column %q dictionary has duplicate value %q", schema.Column(col).Name, v.String())
				break
			}
			d.index[v] = int32(len(d.values))
			d.values = append(d.values, v)
		}
		codes := make([]int32, rows)
		for row := 0; row < rows && b.err == nil; row++ {
			c := b.uvarint()
			if b.err != nil {
				break
			}
			if c > uint64(dictLen) {
				b.fail("column %q row %d code %d out of range [0,%d]",
					schema.Column(col).Name, row, int64(c)-1, dictLen)
				break
			}
			codes[row] = int32(c) - 1
		}
		r.cols[col] = codes
	}
	if b.err != nil {
		return nil, 0, b.err
	}
	// Rebuild the derived accounting from the decoded storage.
	for col := range r.cols {
		n := 0
		for row, code := range r.cols[col] {
			if code == nullCode && (r.dead == nil || !r.dead[row]) {
				n++
			}
		}
		r.nulls[col] = n
	}
	if r.deleted > 0 {
		r.segDead = make([]int, r.NumSegments())
		for row, dead := range r.dead {
			if dead {
				r.segDead[row/r.segRows]++
			}
		}
	}
	return r, b.off, nil
}
