package relation

import "errors"

// Sentinel errors for the relation's input-validation failures. Every
// rejection of caller-supplied data wraps one of these with %w, so callers —
// in particular the HTTP service layer — can classify failures with
// errors.Is instead of string matching: arity and value errors are bad
// requests, row errors name state the caller does not have.
var (
	// ErrArity flags a tuple whose cell count does not match the schema.
	ErrArity = errors.New("arity mismatch")
	// ErrBadValue flags a cell that cannot be parsed into, or does not fit,
	// its column's kind.
	ErrBadValue = errors.New("bad value")
	// ErrUnknownRow flags a row id that is out of range, already deleted, or
	// otherwise not live.
	ErrUnknownRow = errors.New("unknown row")
	// ErrUnknownAttribute flags an attribute name the schema does not have.
	ErrUnknownAttribute = errors.New("unknown attribute")
)
