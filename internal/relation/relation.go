package relation

import (
	"fmt"

	"github.com/evolvefd/evolvefd/internal/bitset"
)

// nullCode is the column code reserved for NULL; it never indexes a
// dictionary.
const nullCode int32 = -1

// dict interns the distinct non-NULL values of one column. Codes are dense,
// starting at 0, in first-seen order.
type dict struct {
	values []Value
	index  map[Value]int32
}

func newDict() *dict {
	return &dict{index: make(map[Value]int32)}
}

func (d *dict) code(v Value) int32 {
	if c, ok := d.index[v]; ok {
		return c
	}
	c := int32(len(d.values))
	d.values = append(d.values, v)
	d.index[v] = c
	return c
}

func (d *dict) lookup(v Value) (int32, bool) {
	c, ok := d.index[v]
	return c, ok
}

// Relation is an instance r of a relation schema R: a bag of tuples stored
// column-wise with per-column dictionary encoding. The paper treats instances
// as sets of tuples; duplicates do not affect any of the distinct-projection
// measures, and Relation preserves physical duplicates like a SQL table does.
//
// Relation is append-only: rows are added with Append and never modified,
// which lets PLIs and caches reference its code slices without copying.
type Relation struct {
	name   string
	schema *Schema
	cols   [][]int32
	dicts  []*dict
	nulls  []int // per-column count of NULL cells
	rows   int
}

// New creates an empty relation instance with the given name and schema.
func New(name string, schema *Schema) *Relation {
	r := &Relation{
		name:   name,
		schema: schema,
		cols:   make([][]int32, schema.Len()),
		dicts:  make([]*dict, schema.Len()),
		nulls:  make([]int, schema.Len()),
	}
	for i := range r.dicts {
		r.dicts[i] = newDict()
	}
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// NumRows returns |r|, the number of tuples.
func (r *Relation) NumRows() int { return r.rows }

// NumCols returns |R|, the number of attributes.
func (r *Relation) NumCols() int { return r.schema.Len() }

// Append adds one tuple. The number of values must match the schema arity;
// non-NULL values must match the column kind. Integer values are accepted in
// float columns and widened.
func (r *Relation) Append(tuple ...Value) error {
	if len(tuple) != r.schema.Len() {
		return fmt.Errorf("relation %s: tuple arity %d != schema arity %d",
			r.name, len(tuple), r.schema.Len())
	}
	for i, v := range tuple {
		if v.IsNull() {
			continue
		}
		want := r.schema.Column(i).Kind
		if v.Kind() == want {
			continue
		}
		if want == KindFloat && v.Kind() == KindInt {
			tuple[i] = Float(v.AsFloat())
			continue
		}
		return fmt.Errorf("relation %s: column %s expects %v, got %v (%q)",
			r.name, r.schema.Column(i).Name, want, v.Kind(), v.String())
	}
	for i, v := range tuple {
		if v.IsNull() {
			r.cols[i] = append(r.cols[i], nullCode)
			r.nulls[i]++
		} else {
			r.cols[i] = append(r.cols[i], r.dicts[i].code(v))
		}
	}
	r.rows++
	return nil
}

// MustAppend is Append that panics on error; for statically-known data.
func (r *Relation) MustAppend(tuple ...Value) {
	if err := r.Append(tuple...); err != nil {
		panic(err)
	}
}

// AppendStrings parses each text cell with the column kind and appends the
// tuple. Cells equal to the empty string or "NULL" become NULL.
func (r *Relation) AppendStrings(cells ...string) error {
	if len(cells) != r.schema.Len() {
		return fmt.Errorf("relation %s: row arity %d != schema arity %d",
			r.name, len(cells), r.schema.Len())
	}
	tuple := make([]Value, len(cells))
	for i, c := range cells {
		if c == "" || c == "NULL" {
			tuple[i] = Null
			continue
		}
		v, err := ParseValue(c, r.schema.Column(i).Kind)
		if err != nil {
			return err
		}
		tuple[i] = v
	}
	return r.Append(tuple...)
}

// Value returns the cell at (row, col).
func (r *Relation) Value(row, col int) Value {
	c := r.cols[col][row]
	if c == nullCode {
		return Null
	}
	return r.dicts[col].values[c]
}

// IsNull reports whether the cell at (row, col) is NULL.
func (r *Relation) IsNull(row, col int) bool {
	return r.cols[col][row] == nullCode
}

// Row materialises one tuple.
func (r *Relation) Row(row int) []Value {
	out := make([]Value, r.schema.Len())
	for c := range out {
		out[c] = r.Value(row, c)
	}
	return out
}

// ColumnCodes exposes the dictionary codes of one column. The returned slice
// is owned by the relation; callers must treat it as read-only. NULL cells
// carry the code -1.
func (r *Relation) ColumnCodes(col int) []int32 { return r.cols[col] }

// NullCode is the sentinel code used for NULL cells in ColumnCodes.
func (r *Relation) NullCode() int32 { return nullCode }

// DictLen returns the number of distinct non-NULL values in a column, i.e.
// |π_A(r)| ignoring NULLs.
func (r *Relation) DictLen(col int) int { return len(r.dicts[col].values) }

// DictValue returns the value interned at the given dictionary code of a
// column.
func (r *Relation) DictValue(col int, code int32) Value {
	return r.dicts[col].values[code]
}

// LookupCode returns the dictionary code of v in col, if v occurs there.
func (r *Relation) LookupCode(col int, v Value) (int32, bool) {
	return r.dicts[col].lookup(v)
}

// NullCount returns the number of NULL cells in a column.
func (r *Relation) NullCount(col int) int { return r.nulls[col] }

// HasNulls reports whether a column contains at least one NULL. Attributes
// occurring in FDs must be NULL-free (§6.2.1 of the paper), so repair
// candidate generation consults this.
func (r *Relation) HasNulls(col int) bool { return r.nulls[col] > 0 }

// NullFreeColumns returns the set of column positions without NULLs.
func (r *Relation) NullFreeColumns() bitset.Set {
	var s bitset.Set
	for i := 0; i < r.NumCols(); i++ {
		if !r.HasNulls(i) {
			s.Add(i)
		}
	}
	return s
}

// Project builds a new relation with only the columns at the given positions
// (in the given order), preserving all rows. Dictionaries are rebuilt so the
// result is independent of the source.
func (r *Relation) Project(name string, idx []int) (*Relation, error) {
	ps, err := r.schema.Project(idx)
	if err != nil {
		return nil, err
	}
	out := New(name, ps)
	tuple := make([]Value, len(idx))
	for row := 0; row < r.rows; row++ {
		for i, p := range idx {
			tuple[i] = r.Value(row, p)
		}
		if err := out.Append(tuple...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Head builds a new relation containing the first n rows (or all rows if
// n >= NumRows) and all columns. Used by the Veterans-style grid experiments
// that sweep tuple counts.
func (r *Relation) Head(name string, n int) (*Relation, error) {
	if n > r.rows {
		n = r.rows
	}
	out := New(name, r.schema)
	for row := 0; row < n; row++ {
		if err := out.Append(r.Row(row)...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Filter builds a new relation containing the rows for which keep returns
// true.
func (r *Relation) Filter(name string, keep func(row int) bool) (*Relation, error) {
	out := New(name, r.schema)
	for row := 0; row < r.rows; row++ {
		if keep(row) {
			if err := out.Append(r.Row(row)...); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Clone returns a deep copy of the relation under a new name.
func (r *Relation) Clone(name string) *Relation {
	out := New(name, r.schema)
	for row := 0; row < r.rows; row++ {
		out.MustAppend(r.Row(row)...)
	}
	return out
}

// String renders a compact description like "places(9 cols, 11 rows)".
func (r *Relation) String() string {
	return fmt.Sprintf("%s(%d cols, %d rows)", r.name, r.NumCols(), r.NumRows())
}
