package relation

import (
	"fmt"

	"github.com/evolvefd/evolvefd/internal/bitset"
)

// nullCode is the column code reserved for NULL; it never indexes a
// dictionary.
const nullCode int32 = -1

// dict interns the distinct non-NULL values of one column. Codes are dense,
// starting at 0, in first-seen order.
type dict struct {
	values []Value
	index  map[Value]int32
}

func newDict() *dict {
	return &dict{index: make(map[Value]int32)}
}

func (d *dict) code(v Value) int32 {
	if c, ok := d.index[v]; ok {
		return c
	}
	c := int32(len(d.values))
	d.values = append(d.values, v)
	d.index[v] = c
	return c
}

func (d *dict) lookup(v Value) (int32, bool) {
	c, ok := d.index[v]
	return c, ok
}

// Relation is an instance r of a relation schema R: a bag of tuples stored
// column-wise with per-column dictionary encoding. The paper treats instances
// as sets of tuples; duplicates do not affect any of the distinct-projection
// measures, and Relation preserves physical duplicates like a SQL table does.
//
// Storage is epoch-versioned and segmented: rows are added with Append and
// removed with Delete, which only marks the row dead — within one storage
// epoch the column stores are never reindexed, so PLIs and caches can
// reference code slices without copying and row ids stay stable. Update
// rewrites the cells of one live row in place. Compact squeezes accumulated
// tombstones out segment by segment, shifts later live rows down, and bumps
// the epoch, handing callers a Remap so incremental state can translate its
// row ids instead of rebuilding. Row-count accessors distinguish the
// physical extent (NumRows, the valid row-id range) from the live tuple count
// (LiveRows); all distinct-projection counts are over live tuples only.
type Relation struct {
	name   string
	schema *Schema
	cols   [][]int32
	dicts  []*dict
	nulls  []int // per-column count of NULL cells in live rows
	rows   int
	// dead marks tombstoned rows; nil until the first Delete. Its length, when
	// non-nil, always equals rows.
	dead    []bool
	deleted int
	// mutations counts Delete/Update calls. Counters that maintain
	// incremental state compare it against the value they have applied to
	// detect out-of-band mutations (appends are detected by row growth).
	mutations uint64
	// segRows is the segment capacity; segDead counts tombstones per segment
	// (nil while no row is dead), so Compact can skip clean segments. epoch
	// is bumped by every Compact that moved rows — row ids are only stable
	// within one epoch.
	segRows int
	segDead []int
	epoch   uint64
}

// New creates an empty relation instance with the given name and schema.
func New(name string, schema *Schema) *Relation {
	r := &Relation{
		name:    name,
		schema:  schema,
		cols:    make([][]int32, schema.Len()),
		dicts:   make([]*dict, schema.Len()),
		nulls:   make([]int, schema.Len()),
		segRows: DefaultSegmentRows,
	}
	for i := range r.dicts {
		r.dicts[i] = newDict()
	}
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// NumRows returns the physical row extent: the number of tuples ever
// appended, tombstoned rows included. Valid row ids are [0, NumRows).
func (r *Relation) NumRows() int { return r.rows }

// LiveRows returns |r|, the number of live (non-tombstoned) tuples — the
// cardinality every projection count and FD measure is defined over.
func (r *Relation) LiveRows() int { return r.rows - r.deleted }

// NumDeleted returns how many rows are tombstoned.
func (r *Relation) NumDeleted() int { return r.deleted }

// HasTombstones reports whether any row has been deleted.
func (r *Relation) HasTombstones() bool { return r.deleted > 0 }

// IsDeleted reports whether the row is tombstoned.
func (r *Relation) IsDeleted(row int) bool { return r.dead != nil && r.dead[row] }

// Mutations counts the Delete and Update calls applied to the instance.
// Incremental counters use it to detect mutations that did not go through
// them (appends are detected by NumRows growth instead).
func (r *Relation) Mutations() uint64 { return r.mutations }

// Mutated reports whether the instance was ever deleted from or updated.
// Dictionary-based shortcuts (DictLen as |π_A|) are only valid when false.
func (r *Relation) Mutated() bool { return r.mutations > 0 }

// NumCols returns |R|, the number of attributes.
func (r *Relation) NumCols() int { return r.schema.Len() }

// validateTuple checks a tuple against the schema, widening int values in
// float columns in place — the shared typed front end of Append and Update.
func (r *Relation) validateTuple(tuple []Value) error {
	if len(tuple) != r.schema.Len() {
		return fmt.Errorf("relation %s: tuple arity %d != schema arity %d: %w",
			r.name, len(tuple), r.schema.Len(), ErrArity)
	}
	for i, v := range tuple {
		if v.IsNull() {
			continue
		}
		want := r.schema.Column(i).Kind
		if v.Kind() == want {
			continue
		}
		if want == KindFloat && v.Kind() == KindInt {
			tuple[i] = Float(v.AsFloat())
			continue
		}
		return fmt.Errorf("relation %s: column %s expects %v, got %v (%q): %w",
			r.name, r.schema.Column(i).Name, want, v.Kind(), v.String(), ErrBadValue)
	}
	return nil
}

// Append adds one tuple. The number of values must match the schema arity;
// non-NULL values must match the column kind. Integer values are accepted in
// float columns and widened.
func (r *Relation) Append(tuple ...Value) error {
	if err := r.validateTuple(tuple); err != nil {
		return err
	}
	for i, v := range tuple {
		if v.IsNull() {
			r.cols[i] = append(r.cols[i], nullCode)
			r.nulls[i]++
		} else {
			r.cols[i] = append(r.cols[i], r.dicts[i].code(v))
		}
	}
	if r.dead != nil {
		r.dead = append(r.dead, false)
	}
	r.rows++
	return nil
}

// Delete tombstones the given rows. The column stores are not reindexed: row
// ids stay stable, the cells keep their codes (so incremental indexes can
// locate the clusters the rows leave), and the rows simply stop counting
// toward LiveRows and every projection. Deleting an out-of-range or
// already-deleted row fails without applying any of the batch.
func (r *Relation) Delete(rows ...int) error {
	if len(rows) == 0 {
		return nil
	}
	if r.dead == nil {
		r.dead = make([]bool, r.rows)
	}
	for i, row := range rows {
		if row < 0 || row >= r.rows {
			r.undelete(rows[:i])
			return fmt.Errorf("relation %s: delete of row %d out of range [0,%d): %w", r.name, row, r.rows, ErrUnknownRow)
		}
		if r.dead[row] {
			r.undelete(rows[:i])
			return fmt.Errorf("relation %s: row %d already deleted: %w", r.name, row, ErrUnknownRow)
		}
		r.dead[row] = true
	}
	if need := r.NumSegments(); len(r.segDead) < need {
		r.segDead = append(r.segDead, make([]int, need-len(r.segDead))...)
	}
	for _, row := range rows {
		r.deleted++
		r.segDead[row/r.segRows]++
		for col := range r.cols {
			if r.cols[col][row] == nullCode {
				r.nulls[col]--
			}
		}
	}
	r.mutations++
	return nil
}

// undelete rolls back tombstones set by a partially-validated Delete batch.
func (r *Relation) undelete(rows []int) {
	for _, row := range rows {
		r.dead[row] = false
	}
}

// Update replaces the cells of one live row in place. The tuple is validated
// like Append (arity, kinds, int→float widening); dictionaries grow as
// needed, so DictLen may overcount live distinct values afterwards (see
// Mutated). Updating a deleted or out-of-range row is an error.
func (r *Relation) Update(row int, tuple ...Value) error {
	if row < 0 || row >= r.rows {
		return fmt.Errorf("relation %s: update of row %d out of range [0,%d): %w", r.name, row, r.rows, ErrUnknownRow)
	}
	if r.IsDeleted(row) {
		return fmt.Errorf("relation %s: update of deleted row %d: %w", r.name, row, ErrUnknownRow)
	}
	if err := r.validateTuple(tuple); err != nil {
		return err
	}
	for i, v := range tuple {
		if r.cols[i][row] == nullCode {
			r.nulls[i]--
		}
		if v.IsNull() {
			r.cols[i][row] = nullCode
			r.nulls[i]++
		} else {
			r.cols[i][row] = r.dicts[i].code(v)
		}
	}
	r.mutations++
	return nil
}

// UpdateStrings parses each text cell with the column kind and updates the
// row in place; empty cells and "NULL" become NULL. See Update.
func (r *Relation) UpdateStrings(row int, cells ...string) error {
	tuple, err := r.ParseTuple(cells...)
	if err != nil {
		return err
	}
	return r.Update(row, tuple...)
}

// MustAppend is Append that panics on error; for statically-known data.
func (r *Relation) MustAppend(tuple ...Value) {
	if err := r.Append(tuple...); err != nil {
		panic(err)
	}
}

// AppendStrings parses each text cell with the column kind and appends the
// tuple. Cells equal to the empty string or "NULL" become NULL.
func (r *Relation) AppendStrings(cells ...string) error {
	tuple, err := r.ParseTuple(cells...)
	if err != nil {
		return err
	}
	return r.Append(tuple...)
}

// ParseTuple parses one text cell per schema column into a typed tuple —
// the shared text front end of AppendStrings and UpdateStrings. Cells equal
// to the empty string or "NULL" become NULL.
func (r *Relation) ParseTuple(cells ...string) ([]Value, error) {
	if len(cells) != r.schema.Len() {
		return nil, fmt.Errorf("relation %s: row arity %d != schema arity %d: %w",
			r.name, len(cells), r.schema.Len(), ErrArity)
	}
	tuple := make([]Value, len(cells))
	for i, c := range cells {
		if c == "" || c == "NULL" {
			tuple[i] = Null
			continue
		}
		v, err := ParseValue(c, r.schema.Column(i).Kind)
		if err != nil {
			return nil, err
		}
		tuple[i] = v
	}
	return tuple, nil
}

// Value returns the cell at (row, col).
func (r *Relation) Value(row, col int) Value {
	c := r.cols[col][row]
	if c == nullCode {
		return Null
	}
	return r.dicts[col].values[c]
}

// IsNull reports whether the cell at (row, col) is NULL.
func (r *Relation) IsNull(row, col int) bool {
	return r.cols[col][row] == nullCode
}

// Row materialises one tuple.
func (r *Relation) Row(row int) []Value {
	out := make([]Value, r.schema.Len())
	for c := range out {
		out[c] = r.Value(row, c)
	}
	return out
}

// ColumnCodes exposes the dictionary codes of one column. The returned slice
// is owned by the relation; callers must treat it as read-only. NULL cells
// carry the code -1.
func (r *Relation) ColumnCodes(col int) []int32 { return r.cols[col] }

// NullCode is the sentinel code used for NULL cells in ColumnCodes.
func (r *Relation) NullCode() int32 { return nullCode }

// DictLen returns the number of distinct non-NULL values ever interned in a
// column. On a never-mutated relation this equals |π_A(r)| ignoring NULLs;
// after a Delete or Update it is only an upper bound (a value's last live
// occurrence may be gone while its dictionary slot remains), so counting
// shortcuts must check Mutated first.
func (r *Relation) DictLen(col int) int { return len(r.dicts[col].values) }

// DictValue returns the value interned at the given dictionary code of a
// column.
func (r *Relation) DictValue(col int, code int32) Value {
	return r.dicts[col].values[code]
}

// LookupCode returns the dictionary code of v in col, if v occurs there.
func (r *Relation) LookupCode(col int, v Value) (int32, bool) {
	return r.dicts[col].lookup(v)
}

// NullCount returns the number of NULL cells in a column over live rows.
func (r *Relation) NullCount(col int) int { return r.nulls[col] }

// HasNulls reports whether a column contains at least one NULL in a live
// row. Attributes occurring in FDs must be NULL-free (§6.2.1 of the paper),
// so repair candidate generation consults this; deleting or correcting the
// offending tuples can make a column eligible again.
func (r *Relation) HasNulls(col int) bool { return r.nulls[col] > 0 }

// NullFreeColumns returns the set of column positions without NULLs.
func (r *Relation) NullFreeColumns() bitset.Set {
	var s bitset.Set
	for i := 0; i < r.NumCols(); i++ {
		if !r.HasNulls(i) {
			s.Add(i)
		}
	}
	return s
}

// Project builds a new relation with only the columns at the given positions
// (in the given order), preserving all live rows. Dictionaries are rebuilt so
// the result is independent of the source.
func (r *Relation) Project(name string, idx []int) (*Relation, error) {
	ps, err := r.schema.Project(idx)
	if err != nil {
		return nil, err
	}
	out := New(name, ps)
	tuple := make([]Value, len(idx))
	for row := 0; row < r.rows; row++ {
		if r.IsDeleted(row) {
			continue
		}
		for i, p := range idx {
			tuple[i] = r.Value(row, p)
		}
		if err := out.Append(tuple...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Head builds a new relation containing the first n live rows (or all live
// rows if n >= LiveRows) and all columns. Used by the Veterans-style grid
// experiments that sweep tuple counts.
func (r *Relation) Head(name string, n int) (*Relation, error) {
	out := New(name, r.schema)
	for row := 0; row < r.rows && out.rows < n; row++ {
		if r.IsDeleted(row) {
			continue
		}
		if err := out.Append(r.Row(row)...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Filter builds a new relation containing the live rows for which keep
// returns true.
func (r *Relation) Filter(name string, keep func(row int) bool) (*Relation, error) {
	out := New(name, r.schema)
	for row := 0; row < r.rows; row++ {
		if r.IsDeleted(row) {
			continue
		}
		if keep(row) {
			if err := out.Append(r.Row(row)...); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Clone returns a deep copy of the live rows under a new name. Tombstones are
// compacted away: the clone's row ids are dense, so it also serves as the
// physically-clean reference instance in differential tests.
func (r *Relation) Clone(name string) *Relation {
	out := New(name, r.schema)
	for row := 0; row < r.rows; row++ {
		if r.IsDeleted(row) {
			continue
		}
		out.MustAppend(r.Row(row)...)
	}
	return out
}

// String renders a compact description like "places(9 cols, 11 rows)"; with
// tombstones present the deleted count is shown alongside the live one.
func (r *Relation) String() string {
	if r.deleted > 0 {
		return fmt.Sprintf("%s(%d cols, %d rows +%d deleted)",
			r.name, r.NumCols(), r.LiveRows(), r.deleted)
	}
	return fmt.Sprintf("%s(%d cols, %d rows)", r.name, r.NumCols(), r.NumRows())
}
