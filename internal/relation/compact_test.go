package relation

import (
	"fmt"
	"math/rand"
	"testing"
)

func compactSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "a", Kind: KindString},
		Column{Name: "b", Kind: KindInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fillRows appends n tuples ("v<i mod mod>", i) so cell values are easy to
// predict per row id.
func fillRows(t *testing.T, r *Relation, n, mod int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := r.Append(String(fmt.Sprintf("v%d", i%mod)), Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompactNoTombstonesIsNoop(t *testing.T) {
	r := New("t", compactSchema(t))
	fillRows(t, r, 10, 3)
	if m := r.Compact(); m != nil {
		t.Fatalf("Compact on clean instance returned %v, want nil", m)
	}
	if r.Epoch() != 0 {
		t.Fatalf("no-op Compact bumped epoch to %d", r.Epoch())
	}
}

func TestCompactSqueezesTombstones(t *testing.T) {
	r := NewWithSegmentRows("t", compactSchema(t), 4)
	fillRows(t, r, 10, 3)
	if err := r.Delete(1, 4, 9); err != nil {
		t.Fatal(err)
	}
	muts := r.Mutations()

	// Snapshot live tuples in order before compacting.
	var want [][]Value
	for row := 0; row < r.NumRows(); row++ {
		if !r.IsDeleted(row) {
			want = append(want, r.Row(row))
		}
	}

	m := r.Compact()
	if m == nil {
		t.Fatal("Compact returned nil with tombstones present")
	}
	if m.OldRows != 10 || m.NewRows != 7 || m.Reclaimed() != 3 {
		t.Fatalf("remap extents wrong: %v", m)
	}
	if m.FirstMoved != 1 {
		t.Fatalf("FirstMoved = %d, want 1 (first tombstone)", m.FirstMoved)
	}
	if m.Moved() != 6 {
		t.Fatalf("Moved = %d, want 6 live rows shifted", m.Moved())
	}
	if m.Epoch != 1 || r.Epoch() != 1 {
		t.Fatalf("epoch not bumped: remap %d, relation %d", m.Epoch, r.Epoch())
	}
	if r.NumRows() != 7 || r.LiveRows() != 7 || r.HasTombstones() {
		t.Fatalf("post-compaction extents wrong: %s", r.String())
	}
	if r.Mutations() != muts {
		t.Fatalf("Compact advanced Mutations %d→%d; epoch is the compaction signal", muts, r.Mutations())
	}
	for row, tuple := range want {
		for col := range tuple {
			if got := r.Value(row, col); got != tuple[col] {
				t.Fatalf("row %d col %d = %v, want %v", row, col, got, tuple[col])
			}
		}
	}
}

func TestCompactRemapTranslation(t *testing.T) {
	r := New("t", compactSchema(t))
	fillRows(t, r, 8, 8)
	if err := r.Delete(0, 3, 7); err != nil {
		t.Fatal(err)
	}
	m := r.Compact()
	wantIDs := map[int]int{0: -1, 1: 0, 2: 1, 3: -1, 4: 2, 5: 3, 6: 4, 7: -1}
	for old, want := range wantIDs {
		if got := m.NewID(old); got != want {
			t.Fatalf("NewID(%d) = %d, want %d", old, got, want)
		}
	}
	if m.FirstMoved != 0 {
		t.Fatalf("FirstMoved = %d, want 0", m.FirstMoved)
	}
}

func TestCompactIdentityPrefixSkipsCleanSegments(t *testing.T) {
	r := NewWithSegmentRows("t", compactSchema(t), 4)
	fillRows(t, r, 16, 5)
	// Tombstones only in the third segment (rows 8..11).
	if err := r.Delete(9, 10); err != nil {
		t.Fatal(err)
	}
	if got := r.DirtySegments(); got != 1 {
		t.Fatalf("DirtySegments = %d, want 1", got)
	}
	m := r.Compact()
	if m.FirstMoved != 9 {
		t.Fatalf("FirstMoved = %d, want 9: the clean prefix must keep its ids", m.FirstMoved)
	}
	for old := 0; old < 9; old++ {
		if m.NewID(old) != old {
			t.Fatalf("prefix row %d moved to %d", old, m.NewID(old))
		}
	}
	if m.NewID(11) != 9 || m.NewID(15) != 13 {
		t.Fatalf("tail rows misremapped: 11→%d, 15→%d", m.NewID(11), m.NewID(15))
	}
}

func TestCompactThenMutateAndCompactAgain(t *testing.T) {
	r := NewWithSegmentRows("t", compactSchema(t), 4)
	fillRows(t, r, 12, 4)
	if err := r.Delete(0, 5); err != nil {
		t.Fatal(err)
	}
	if m := r.Compact(); m.Epoch != 1 {
		t.Fatalf("first compaction epoch %d", m.Epoch)
	}
	// Keep evolving in the new epoch: append, update, delete, re-compact.
	fillRows(t, r, 3, 2)
	if err := r.Update(2, String("vX"), Int(99)); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(1, 11); err != nil {
		t.Fatal(err)
	}
	var want [][]Value
	for row := 0; row < r.NumRows(); row++ {
		if !r.IsDeleted(row) {
			want = append(want, r.Row(row))
		}
	}
	m := r.Compact()
	if m.Epoch != 2 || r.Epoch() != 2 {
		t.Fatalf("second compaction epoch %d / %d, want 2", m.Epoch, r.Epoch())
	}
	if r.NumRows() != len(want) {
		t.Fatalf("NumRows = %d, want %d", r.NumRows(), len(want))
	}
	for row, tuple := range want {
		for col := range tuple {
			if got := r.Value(row, col); got != tuple[col] {
				t.Fatalf("row %d col %d = %v, want %v", row, col, got, tuple[col])
			}
		}
	}
}

func TestCompactPreservesNullCounts(t *testing.T) {
	r := New("t", compactSchema(t))
	r.MustAppend(String("x"), Int(1))
	r.MustAppend(Null, Int(2))
	r.MustAppend(String("y"), Null)
	r.MustAppend(Null, Int(4))
	if err := r.Delete(1); err != nil {
		t.Fatal(err)
	}
	if r.NullCount(0) != 1 || r.NullCount(1) != 1 {
		t.Fatalf("pre-compaction null counts %d/%d", r.NullCount(0), r.NullCount(1))
	}
	r.Compact()
	if r.NullCount(0) != 1 || r.NullCount(1) != 1 {
		t.Fatalf("post-compaction null counts %d/%d, want 1/1", r.NullCount(0), r.NullCount(1))
	}
	if !r.IsNull(2, 0) || !r.IsNull(1, 1) {
		t.Fatal("NULL cells lost their positions across compaction")
	}
}

// TestCompactMatchesCloneRandomized fuzzes mixed DML + compaction against
// Clone, the reference dense copy: after any mutation history, Compact must
// leave exactly the tuple sequence a Clone of the live rows has.
func TestCompactMatchesCloneRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		r := NewWithSegmentRows("t", compactSchema(t), 8)
		fillRows(t, r, 50, 7)
		for op := 0; op < 60; op++ {
			switch rng.Intn(4) {
			case 0:
				r.MustAppend(String(fmt.Sprintf("n%d", rng.Intn(9))), Int(int64(rng.Intn(100))))
			case 1:
				if row := rng.Intn(r.NumRows()); !r.IsDeleted(row) {
					if err := r.Delete(row); err != nil {
						t.Fatal(err)
					}
				}
			case 2:
				if row := rng.Intn(r.NumRows()); !r.IsDeleted(row) {
					if err := r.Update(row, String("u"), Int(int64(rng.Intn(10)))); err != nil {
						t.Fatal(err)
					}
				}
			case 3:
				if rng.Intn(3) == 0 {
					r.Compact()
				}
			}
		}
		clone := r.Clone("ref")
		r.Compact()
		if r.NumRows() != clone.NumRows() {
			t.Fatalf("trial %d: %d rows vs clone %d", trial, r.NumRows(), clone.NumRows())
		}
		for row := 0; row < r.NumRows(); row++ {
			for col := 0; col < r.NumCols(); col++ {
				if r.Value(row, col) != clone.Value(row, col) {
					t.Fatalf("trial %d row %d col %d: %v vs clone %v",
						trial, row, col, r.Value(row, col), clone.Value(row, col))
				}
			}
		}
		if r.NullCount(0) != clone.NullCount(0) || r.NullCount(1) != clone.NullCount(1) {
			t.Fatalf("trial %d: null counts diverged from clone", trial)
		}
	}
}

func TestMemStats(t *testing.T) {
	r := NewWithSegmentRows("t", compactSchema(t), 4)
	fillRows(t, r, 10, 3)
	if err := r.Delete(2, 6); err != nil {
		t.Fatal(err)
	}
	st := r.MemStats()
	if st.PhysicalRows != 10 || st.LiveRows != 8 || st.Tombstones != 2 {
		t.Fatalf("row accounting wrong: %+v", st)
	}
	if st.Segments != 3 || st.DirtySegments != 2 || st.SegmentRows != 4 {
		t.Fatalf("segment accounting wrong: %+v", st)
	}
	if st.TombstoneRatio != 0.2 {
		t.Fatalf("TombstoneRatio = %v, want 0.2", st.TombstoneRatio)
	}
	// 10 rows × 2 cols × 4 bytes + 10 tombstone flags.
	if st.StorageBytes != 90 || st.ReclaimableBytes != 2*2*4+2 {
		t.Fatalf("byte accounting wrong: %+v", st)
	}
	r.Compact()
	st = r.MemStats()
	if st.Tombstones != 0 || st.ReclaimableBytes != 0 || st.Epoch != 1 {
		t.Fatalf("post-compaction stats wrong: %+v", st)
	}
}
