package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// CSVOptions controls CSV reading.
type CSVOptions struct {
	// Comma is the field delimiter; 0 means ','.
	Comma rune
	// NullTokens are cell spellings read as NULL. Defaults to "" and "NULL".
	NullTokens []string
	// InferKinds samples the data rows to pick column kinds when the header
	// carries no ":kind" annotations. When false, unannotated columns are
	// strings.
	InferKinds bool
	// SampleRows bounds how many rows kind inference examines; 0 means all.
	SampleRows int
}

func (o CSVOptions) nullSet() map[string]bool {
	toks := o.NullTokens
	if toks == nil {
		toks = []string{"", "NULL"}
	}
	m := make(map[string]bool, len(toks))
	for _, t := range toks {
		m[t] = true
	}
	return m
}

// ReadCSV loads a relation from CSV data. The first record is the header;
// each header cell is either a bare attribute name (kind inferred or string)
// or "name:kind" with kind in {string,int,float,bool}.
func ReadCSV(name string, r io.Reader, opts CSVOptions) (*Relation, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = 0 // require rectangular input
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: reading csv %s: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: csv %s has no header", name)
	}
	header := records[0]
	body := records[1:]
	nulls := opts.nullSet()

	cols := make([]Column, len(header))
	annotated := make([]bool, len(header))
	for i, h := range header {
		name, kindName, hasKind := strings.Cut(h, ":")
		cols[i] = Column{Name: strings.TrimSpace(name), Kind: KindString}
		if hasKind {
			k, err := ParseKind(kindName)
			if err != nil {
				return nil, err
			}
			cols[i].Kind = k
			annotated[i] = true
		}
	}
	if opts.InferKinds {
		for i := range cols {
			if annotated[i] {
				continue
			}
			cols[i].Kind = inferColumnKind(body, i, nulls, opts.SampleRows)
		}
	}

	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	rel := New(name, schema)
	tuple := make([]Value, len(cols))
	for rowIdx, rec := range body {
		for i, cell := range rec {
			if nulls[cell] {
				tuple[i] = Null
				continue
			}
			v, err := ParseValue(cell, cols[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("relation: csv %s row %d: %w", name, rowIdx+2, err)
			}
			tuple[i] = v
		}
		if err := rel.Append(tuple...); err != nil {
			return nil, fmt.Errorf("relation: csv %s row %d: %w", name, rowIdx+2, err)
		}
	}
	return rel, nil
}

// inferColumnKind picks the narrowest kind that parses every sampled non-NULL
// cell of column i; ties fall back towards string.
func inferColumnKind(body [][]string, i int, nulls map[string]bool, sample int) Kind {
	canInt, canFloat, canBool := true, true, true
	seen := false
	for rowIdx, rec := range body {
		if sample > 0 && rowIdx >= sample {
			break
		}
		cell := rec[i]
		if nulls[cell] {
			continue
		}
		seen = true
		if canInt {
			if _, err := ParseValue(cell, KindInt); err != nil {
				canInt = false
			}
		}
		if canFloat {
			if _, err := ParseValue(cell, KindFloat); err != nil {
				canFloat = false
			}
		}
		if canBool {
			if _, err := ParseValue(cell, KindBool); err != nil {
				canBool = false
			}
		}
		if !canInt && !canFloat && !canBool {
			break
		}
	}
	switch {
	case !seen:
		return KindString
	case canInt:
		return KindInt
	case canFloat:
		return KindFloat
	case canBool:
		return KindBool
	default:
		return KindString
	}
}

// ReadCSVFile loads a relation from a CSV file; the relation name is the file
// base name without extension.
func ReadCSVFile(path string, opts CSVOptions) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := filepath.Base(path)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	return ReadCSV(name, f, opts)
}

// WriteCSV serialises the relation with a typed header ("name:kind"). NULLs
// are written as empty cells, so WriteCSV → ReadCSV round-trips.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, r.NumCols())
	for i := 0; i < r.NumCols(); i++ {
		c := r.schema.Column(i)
		header[i] = c.Name + ":" + c.Kind.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, r.NumCols())
	for row := 0; row < r.rows; row++ {
		if r.IsDeleted(row) {
			continue
		}
		for i := range rec {
			rec[i] = r.Value(row, i).String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile serialises the relation to a file path, creating parent
// directories as needed.
func (r *Relation) WriteCSVFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
