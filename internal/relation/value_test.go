package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null, KindNull, ""},
		{String("abc"), KindString, "abc"},
		{Int(-42), KindInt, "-42"},
		{Float(2.5), KindFloat, "2.5"},
		{Bool(true), KindBool, "true"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: Kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("Kind %v: String = %q, want %q", c.kind, c.v.String(), c.str)
		}
	}
	if !Null.IsNull() || String("").IsNull() {
		t.Fatal("IsNull wrong")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Fatal("Int.AsFloat should widen")
	}
}

func TestFloatNaNStaysComparable(t *testing.T) {
	v := Float(math.NaN())
	if v.Kind() != KindString || v.AsString() != "NaN" {
		t.Fatalf("NaN should degrade to String(\"NaN\"), got %v %q", v.Kind(), v.String())
	}
	// Must be usable as a map key equal to itself.
	m := map[Value]int{v: 1}
	if m[Float(math.NaN())] != 1 {
		t.Fatal("NaN values must intern consistently")
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	ordered := []Value{
		Null,
		String("a"), String("b"),
		Int(-1), Int(0), Int(5),
		Float(-2.5), Float(0.0), Float(9.75),
		Bool(false), Bool(true),
	}
	for i, a := range ordered {
		for j, b := range ordered {
			got := a.Compare(b)
			switch {
			case i == j && got != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", a, b, got)
			case i < j && got >= 0:
				t.Errorf("Compare(%v,%v) = %d, want <0", a, b, got)
			case i > j && got <= 0:
				t.Errorf("Compare(%v,%v) = %d, want >0", a, b, got)
			}
		}
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue("42", KindInt)
	if err != nil || v.AsInt() != 42 {
		t.Fatalf("ParseValue int: %v %v", v, err)
	}
	v, err = ParseValue(" 2.5 ", KindFloat)
	if err != nil || v.AsFloat() != 2.5 {
		t.Fatalf("ParseValue float: %v %v", v, err)
	}
	v, err = ParseValue("true", KindBool)
	if err != nil || !v.AsBool() {
		t.Fatalf("ParseValue bool: %v %v", v, err)
	}
	v, err = ParseValue("  keep spaces  ", KindString)
	if err != nil || v.AsString() != "  keep spaces  " {
		t.Fatalf("ParseValue string must be verbatim: %q %v", v.AsString(), err)
	}
	if _, err = ParseValue("xyz", KindInt); err == nil {
		t.Fatal("ParseValue should reject bad int")
	}
	if _, err = ParseValue("xyz", KindFloat); err == nil {
		t.Fatal("ParseValue should reject bad float")
	}
	if _, err = ParseValue("xyz", KindBool); err == nil {
		t.Fatal("ParseValue should reject bad bool")
	}
}

func TestInferValue(t *testing.T) {
	if InferValue("12").Kind() != KindInt {
		t.Error("12 should infer int")
	}
	if InferValue("1.5").Kind() != KindFloat {
		t.Error("1.5 should infer float")
	}
	if InferValue("true").Kind() != KindBool {
		t.Error("true should infer bool")
	}
	if InferValue("hello").Kind() != KindString {
		t.Error("hello should infer string")
	}
	// "1" parses as int before bool: documented narrowing order.
	if InferValue("1").Kind() != KindInt {
		t.Error("1 should infer int, not bool")
	}
}

func TestParseKind(t *testing.T) {
	for name, want := range map[string]Kind{
		"int": KindInt, "INTEGER": KindInt, "float": KindFloat, "double": KindFloat,
		"string": KindString, "varchar": KindString, "bool": KindBool, "null": KindNull,
	} {
		got, err := ParseKind(name)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind should reject unknown kinds")
	}
}

// Compare must be antisymmetric and consistent with Equal for random values.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64, sa, sb string, pickInt bool) bool {
		var va, vb Value
		if pickInt {
			va, vb = Int(a), Int(b)
		} else {
			va, vb = String(sa), String(sb)
		}
		if va.Compare(vb) != -vb.Compare(va) {
			return false
		}
		return (va.Compare(vb) == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
