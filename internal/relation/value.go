package relation

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the value types supported by relations.
type Kind uint8

const (
	// KindNull marks the SQL NULL value; it has no dictionary entry.
	KindNull Kind = iota
	// KindString is a UTF-8 string.
	KindString
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit float. NaN is rejected at construction time so
	// Value stays comparable (map-key safe).
	KindFloat
	// KindBool is a boolean.
	KindBool
)

// String returns the lowercase name of the kind ("null", "string", ...).
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind converts a kind name as used in typed CSV headers ("name:int")
// back to a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "string", "str", "text", "varchar":
		return KindString, nil
	case "int", "integer", "bigint":
		return KindInt, nil
	case "float", "double", "real", "decimal":
		return KindFloat, nil
	case "bool", "boolean":
		return KindBool, nil
	case "null":
		return KindNull, nil
	default:
		return KindString, fmt.Errorf("relation: unknown kind %q", s)
	}
}

// Value is a single typed cell value. The zero Value is NULL. Value is a
// comparable struct so it can be used directly as a map key when building
// dictionaries.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
}

// Null is the NULL value.
var Null = Value{}

// String wraps s as a string Value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int wraps i as an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float wraps f as a float Value. NaN inputs are converted to the string
// value "NaN" to keep Value comparable.
func Float(f float64) Value {
	if math.IsNaN(f) {
		return String("NaN")
	}
	return Value{kind: KindFloat, f: f}
}

// Bool wraps b as a boolean Value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsString returns the string payload; it is only meaningful for KindString.
func (v Value) AsString() string { return v.s }

// AsInt returns the integer payload; it is only meaningful for KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the float payload for KindFloat, or a widened integer for
// KindInt.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsBool returns the boolean payload; it is only meaningful for KindBool.
func (v Value) AsBool() bool { return v.b }

// String renders the value the way WriteCSV serialises it. NULL renders as
// the empty string.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return fmt.Sprintf("<invalid kind %d>", v.kind)
	}
}

// Compare orders values: NULL first, then by kind, then by payload. It
// provides the total order used by ORDER BY and the sort-based distinct
// counter.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindString:
		return strings.Compare(v.s, o.s)
	case KindInt:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case v.f < o.f:
			return -1
		case v.f > o.f:
			return 1
		}
		return 0
	case KindBool:
		switch {
		case !v.b && o.b:
			return -1
		case v.b && !o.b:
			return 1
		}
		return 0
	}
	return 0
}

// Equal reports whether two values are identical (same kind and payload).
// NULL equals NULL under this predicate; FD semantics over NULLs are handled
// at a higher level (attributes used in FDs must be NULL-free, per §6.2.1 of
// the paper).
func (v Value) Equal(o Value) bool { return v == o }

// ParseValue converts raw text into a Value of the requested kind. For
// KindString the text is taken verbatim. An error is returned when the text
// does not parse as the kind.
func ParseValue(text string, kind Kind) (Value, error) {
	switch kind {
	case KindNull:
		return Null, nil
	case KindString:
		return String(text), nil
	case KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return Null, fmt.Errorf("relation: %q is not an int (%w): %w", text, ErrBadValue, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
		if err != nil {
			return Null, fmt.Errorf("relation: %q is not a float (%w): %w", text, ErrBadValue, err)
		}
		return Float(f), nil
	case KindBool:
		b, err := strconv.ParseBool(strings.TrimSpace(text))
		if err != nil {
			return Null, fmt.Errorf("relation: %q is not a bool (%w): %w", text, ErrBadValue, err)
		}
		return Bool(b), nil
	default:
		return Null, fmt.Errorf("relation: cannot parse into kind %v: %w", kind, ErrBadValue)
	}
}

// InferValue guesses the narrowest kind for raw text: int, then float, then
// bool, then string. It never fails.
func InferValue(text string) Value {
	trimmed := strings.TrimSpace(text)
	if i, err := strconv.ParseInt(trimmed, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(trimmed, 64); err == nil && !math.IsNaN(f) {
		return Float(f)
	}
	if b, err := strconv.ParseBool(trimmed); err == nil {
		return Bool(b)
	}
	return String(text)
}
