// Package relation implements the in-memory relational substrate of
// evolvefd: schemas, dictionary-encoded columnar relation instances, CSV
// input/output and projection/selection utilities — the "relation instance
// r over schema R" of the paper's §2 data model.
//
// The paper's prototype sat on MySQL; Go has no comparably rich relational
// library, so this package substitutes one. It is deliberately
// column-oriented: every FD measure in the paper reduces to counting
// distinct projections |π_X(r)| (Definition 3), which is fastest over
// dense per-column dictionary codes. NULL tracking is per live row,
// because §6.2.1 requires FD attributes to be NULL-free and DML can move a
// column in and out of eligibility.
//
// The evolution model is full DML with epoch-stable row ids: Append grows
// the column stores, Delete tombstones rows without reindexing (codes of
// dead rows stay readable, which is what lets incremental indexes find the
// clusters a row leaves), and Update rewrites cells in place. Storage is
// organised as fixed-capacity segments with per-segment tombstone counts;
// Compact squeezes tombstones out segment by segment, bumps the storage
// Epoch, and returns the old→new row-id Remap consumers translate their
// state through. Mutations counts delete/update batches so counters
// layered above can detect changes that bypassed them; Epoch plays the
// same role for compactions.
package relation
