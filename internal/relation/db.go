package relation

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Database is a named collection of relations, the unit the paper's tool
// connects to ("users connect to a MySQL database and visualize its
// relations"). Here a database is a directory of CSV files or an in-memory
// set of generated relations.
type Database struct {
	name string
	rels map[string]*Relation
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{name: name, rels: make(map[string]*Relation)}
}

// Name returns the database name.
func (db *Database) Name() string { return db.name }

// Put registers a relation, replacing any previous one with the same name.
func (db *Database) Put(r *Relation) { db.rels[strings.ToLower(r.Name())] = r }

// Get returns the named relation (case-insensitive) or an error listing the
// available names.
func (db *Database) Get(name string) (*Relation, error) {
	if r, ok := db.rels[strings.ToLower(name)]; ok {
		return r, nil
	}
	return nil, fmt.Errorf("relation: no table %q in database %s (have: %s)",
		name, db.name, strings.Join(db.Names(), ", "))
}

// Names lists the registered relation names in sorted order.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.rels))
	for _, r := range db.rels {
		out = append(out, r.Name())
	}
	sort.Strings(out)
	return out
}

// Len returns the number of relations.
func (db *Database) Len() int { return len(db.rels) }

// LoadDirectory builds a database from every *.csv file in dir. The database
// name is the directory base name.
func LoadDirectory(dir string, opts CSVOptions) (*Database, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	db := NewDatabase(filepath.Base(dir))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(strings.ToLower(e.Name()), ".csv") {
			continue
		}
		rel, err := ReadCSVFile(filepath.Join(dir, e.Name()), opts)
		if err != nil {
			return nil, err
		}
		db.Put(rel)
	}
	if db.Len() == 0 {
		return nil, fmt.Errorf("relation: no .csv files in %s", dir)
	}
	return db, nil
}

// SaveDirectory writes every relation as dir/<name>.csv.
func (db *Database) SaveDirectory(dir string) error {
	for _, name := range db.Names() {
		r, _ := db.Get(name)
		if err := r.WriteCSVFile(filepath.Join(dir, r.Name()+".csv")); err != nil {
			return err
		}
	}
	return nil
}
