package relation

import "fmt"

// DefaultSegmentRows is the default segment capacity: the column stores are
// organised as a sequence of fixed-capacity row ranges ("segments", the unit
// of tombstone accounting and compaction, like row groups inside a columnar
// file). 4096 rows keeps a segment's codes for one column inside a few cache
// pages while giving Compact enough granularity to skip clean prefixes.
const DefaultSegmentRows = 4096

// NewWithSegmentRows is New with an explicit segment capacity (minimum 1).
// Production code uses New and DefaultSegmentRows; tests shrink segments to
// exercise multi-segment compaction on small instances.
func NewWithSegmentRows(name string, schema *Schema, segRows int) *Relation {
	r := New(name, schema)
	if segRows < 1 {
		segRows = 1
	}
	r.segRows = segRows
	return r
}

// SegmentRows returns the segment capacity in rows.
func (r *Relation) SegmentRows() int { return r.segRows }

// NumSegments returns how many segments the physical extent spans.
func (r *Relation) NumSegments() int {
	if r.rows == 0 {
		return 0
	}
	return (r.rows + r.segRows - 1) / r.segRows
}

// SegmentDead returns the number of tombstoned rows inside segment seg.
// Sharded scans (the parallel partition build) use it to skip the per-row
// liveness probe wholesale on clean segments.
func (r *Relation) SegmentDead(seg int) int {
	if seg < 0 || seg >= len(r.segDead) {
		return 0
	}
	return r.segDead[seg]
}

// Tombstones exposes the per-row tombstone flags, nil while no row has ever
// been deleted. The returned slice is owned by the relation and must be
// treated as read-only; it exists so row-range scans (partition builds) can
// test liveness with one indexed load instead of a method call per row.
func (r *Relation) Tombstones() []bool { return r.dead }

// DirtySegments returns how many segments contain at least one tombstone —
// the segments a Compact would rewrite.
func (r *Relation) DirtySegments() int {
	n := 0
	for _, d := range r.segDead {
		if d > 0 {
			n++
		}
	}
	return n
}

// Epoch returns the storage epoch: 0 at creation, bumped by every Compact
// that reclaimed tombstones (a pure tail truncation bumps it too, even
// though Moved is then 0 — the physical extent still changed). Row ids are
// stable within an epoch; any state that stores row ids (partitions,
// cluster maps, witnesses) is valid only for the epoch it was built in and
// must be remapped or rebuilt when the epoch changes.
func (r *Relation) Epoch() uint64 { return r.epoch }

// Remap is the row-id translation table produced by one Compact: for every
// row id of the previous epoch it names the row's id in the new epoch, or −1
// for a squeezed-out tombstone. Rows below FirstMoved kept their ids, so
// remapping loops can skip the clean prefix wholesale.
type Remap struct {
	// Epoch is the storage epoch the compaction established.
	Epoch uint64
	// OldRows and NewRows are the physical extents before and after.
	OldRows, NewRows int
	// FirstMoved is the first old row id whose mapping is not the identity —
	// the position of the first tombstone. Every live row below it kept its
	// id; every live row at or above it shifted down.
	FirstMoved int
	// old2new covers only [FirstMoved, OldRows), indexed by old−FirstMoved;
	// the identity prefix is implicit, so a tail-heavy compaction carries a
	// table proportional to the rewritten region, not the extent.
	old2new []int32
}

// NewID translates an old-epoch row id: the row's id in the new epoch, or −1
// if the row was a tombstone and no longer exists.
func (m *Remap) NewID(old int) int {
	if old < m.FirstMoved {
		return old
	}
	return int(m.old2new[old-m.FirstMoved])
}

// Moved returns how many live rows changed id — the work factor of every
// remap-instead-of-rebuild consumer (tracked cluster maps, witnesses).
func (m *Remap) Moved() int { return m.NewRows - m.FirstMoved }

// Reclaimed returns how many tombstones the compaction squeezed out.
func (m *Remap) Reclaimed() int { return m.OldRows - m.NewRows }

// String renders a compact summary like "remap(epoch 3: 50000→30000 rows,
// 20000 reclaimed, 29873 moved)".
func (m *Remap) String() string {
	return fmt.Sprintf("remap(epoch %d: %d→%d rows, %d reclaimed, %d moved)",
		m.Epoch, m.OldRows, m.NewRows, m.Reclaimed(), m.Moved())
}

// Compact squeezes the tombstones out of the column stores segment by
// segment and bumps the storage epoch. Live rows keep their relative order;
// rows before the first tombstone keep their ids, every later live row
// shifts down into the space the dead rows held. Clean segments in the
// prefix are untouched; within the rewritten region, runs of consecutive
// live rows are moved with single bulk copies. Dictionaries are NOT rebuilt
// — codes keep their meaning, which is what lets incremental indexes remap
// their row ids without re-hashing any value — so DictLen remains an upper
// bound after past updates (see Mutated).
//
// Returns nil (and changes nothing, not even the epoch) when the instance
// has no tombstones. Otherwise returns the old→new Remap every row-id-
// carrying consumer needs; Mutations is NOT advanced — compaction preserves
// the tuple bag, and counters detect it via Epoch instead.
func (r *Relation) Compact() *Remap {
	if r.deleted == 0 {
		return nil
	}
	oldRows := r.rows
	// Locate the first tombstone, skipping clean segments via the per-segment
	// dead counts.
	firstDead := -1
	for seg := 0; seg < len(r.segDead) && firstDead < 0; seg++ {
		if r.segDead[seg] == 0 {
			continue
		}
		end := min((seg+1)*r.segRows, oldRows)
		for row := seg * r.segRows; row < end; row++ {
			if r.dead[row] {
				firstDead = row
				break
			}
		}
	}
	if firstDead < 0 {
		// deleted > 0 guarantees a tombstone; reaching here means the
		// per-segment accounting is corrupt.
		panic(fmt.Sprintf("relation %s: %d tombstones recorded but none found", r.name, r.deleted))
	}

	// Build the remap table (rewritten region only; the identity prefix is
	// implicit) and the live spans (maximal runs of consecutive live rows)
	// in one pass.
	old2new := make([]int32, oldRows-firstDead)
	type span struct{ start, end int }
	var spans []span
	next := firstDead
	for row := firstDead; row < oldRows; {
		if r.dead[row] {
			old2new[row-firstDead] = -1
			row++
			continue
		}
		start := row
		for row < oldRows && !r.dead[row] {
			old2new[row-firstDead] = int32(next)
			next++
			row++
		}
		spans = append(spans, span{start, row})
	}

	// Rewrite each column: bulk-copy the live spans down over the dead rows.
	// Sources never precede destinations, so the in-place copies are safe;
	// when at least half the extent was dead the codes move to a fresh,
	// right-sized allocation so the memory is actually released.
	for col := range r.cols {
		codes := r.cols[col]
		if next <= cap(codes)/2 {
			fresh := make([]int32, next)
			copy(fresh, codes[:firstDead])
			w := firstDead
			for _, sp := range spans {
				w += copy(fresh[w:], codes[sp.start:sp.end])
			}
			r.cols[col] = fresh
			continue
		}
		w := firstDead
		for _, sp := range spans {
			w += copy(codes[w:], codes[sp.start:sp.end])
		}
		r.cols[col] = codes[:next]
	}
	r.rows = next
	r.deleted = 0
	r.dead = nil
	r.segDead = nil
	r.epoch++
	return &Remap{
		Epoch:      r.epoch,
		OldRows:    oldRows,
		NewRows:    next,
		FirstMoved: firstDead,
		old2new:    old2new,
	}
}

// MemStats describes the instance's physical storage: extent versus live
// rows, segment occupancy, and how many bytes a Compact would reclaim.
type MemStats struct {
	// PhysicalRows is the row extent (tombstones included); LiveRows the
	// tuple count; Tombstones the difference.
	PhysicalRows, LiveRows, Tombstones int
	// Segments is the number of storage segments; DirtySegments how many
	// contain tombstones; SegmentRows the per-segment capacity.
	Segments, DirtySegments, SegmentRows int
	// Epoch is the current storage epoch.
	Epoch uint64
	// StorageBytes estimates the column-store footprint (4 bytes per cell
	// plus tombstone flags); ReclaimableBytes the share held by tombstoned
	// rows, i.e. what a Compact would return.
	StorageBytes, ReclaimableBytes int64
	// DictEntries counts interned dictionary values across all columns.
	DictEntries int
	// TombstoneRatio is Tombstones / PhysicalRows (0 on an empty instance).
	TombstoneRatio float64
}

// MemStats reports the instance's storage statistics.
func (r *Relation) MemStats() MemStats {
	st := MemStats{
		PhysicalRows:  r.rows,
		LiveRows:      r.LiveRows(),
		Tombstones:    r.deleted,
		Segments:      r.NumSegments(),
		DirtySegments: r.DirtySegments(),
		SegmentRows:   r.segRows,
		Epoch:         r.epoch,
	}
	cells := int64(r.rows) * int64(len(r.cols))
	st.StorageBytes = cells * 4
	st.ReclaimableBytes = int64(r.deleted) * int64(len(r.cols)) * 4
	if r.dead != nil {
		st.StorageBytes += int64(len(r.dead))
		st.ReclaimableBytes += int64(r.deleted)
	}
	for _, d := range r.dicts {
		st.DictEntries += len(d.values)
	}
	if r.rows > 0 {
		st.TombstoneRatio = float64(r.deleted) / float64(r.rows)
	}
	return st
}
