package relation

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCSV = `city:string,pop:int,area:float,capital:bool
milan,1352000,181.8,false
rome,2873000,1285.0,true
,260000,,false
`

func TestReadCSVTypedHeader(t *testing.T) {
	r, err := ReadCSV("cities", strings.NewReader(sampleCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 3 || r.NumCols() != 4 {
		t.Fatalf("shape = %dx%d", r.NumRows(), r.NumCols())
	}
	if r.Schema().Column(1).Kind != KindInt || r.Schema().Column(3).Kind != KindBool {
		t.Fatalf("kinds wrong: %v", r.Schema())
	}
	if !r.IsNull(2, 0) || !r.IsNull(2, 2) {
		t.Fatal("empty cells must be NULL")
	}
	if r.Value(1, 3) != Bool(true) {
		t.Fatal("bool parse wrong")
	}
}

func TestReadCSVInference(t *testing.T) {
	data := "a,b,c\n1,2.5,x\n3,7,y\n"
	r, err := ReadCSV("t", strings.NewReader(data), CSVOptions{InferKinds: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema().Column(0).Kind != KindInt {
		t.Errorf("a should infer int, got %v", r.Schema().Column(0).Kind)
	}
	if r.Schema().Column(1).Kind != KindFloat {
		t.Errorf("b should infer float (2.5 breaks int), got %v", r.Schema().Column(1).Kind)
	}
	if r.Schema().Column(2).Kind != KindString {
		t.Errorf("c should stay string, got %v", r.Schema().Column(2).Kind)
	}
}

func TestReadCSVWithoutInferenceIsAllStrings(t *testing.T) {
	data := "a,b\n1,2\n"
	r, err := ReadCSV("t", strings.NewReader(data), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema().Column(0).Kind != KindString {
		t.Fatal("without inference unannotated columns must be strings")
	}
	if r.Value(0, 0) != String("1") {
		t.Fatal("values must stay textual")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader(""), CSVOptions{}); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := ReadCSV("t", strings.NewReader("a:int\nnot-int\n"), CSVOptions{}); err == nil {
		t.Fatal("non-int cell in int column must error")
	}
	if _, err := ReadCSV("t", strings.NewReader("a:blob\n1\n"), CSVOptions{}); err == nil {
		t.Fatal("unknown kind annotation must error")
	}
	if _, err := ReadCSV("t", strings.NewReader("a,b\n1\n"), CSVOptions{}); err == nil {
		t.Fatal("ragged rows must error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r, err := ReadCSV("cities", strings.NewReader(sampleCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("cities", bytes.NewReader(buf.Bytes()), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !back.Schema().Equal(r.Schema()) {
		t.Fatalf("schema did not round-trip: %v vs %v", back.Schema(), r.Schema())
	}
	if back.NumRows() != r.NumRows() {
		t.Fatalf("rows did not round-trip: %d vs %d", back.NumRows(), r.NumRows())
	}
	for row := 0; row < r.NumRows(); row++ {
		for col := 0; col < r.NumCols(); col++ {
			if back.Value(row, col) != r.Value(row, col) {
				t.Fatalf("cell (%d,%d): %v vs %v", row, col, back.Value(row, col), r.Value(row, col))
			}
		}
	}
}

func TestCSVFileAndDatabaseDirectory(t *testing.T) {
	dir := t.TempDir()
	r, err := ReadCSV("cities", strings.NewReader(sampleCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "cities.csv")
	if err := r.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "cities" {
		t.Fatalf("file relation name = %q", back.Name())
	}

	db, err := LoadDirectory(dir, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Fatalf("db.Len = %d", db.Len())
	}
	got, err := db.Get("CITIES") // case-insensitive
	if err != nil || got.NumRows() != 3 {
		t.Fatalf("db.Get: %v %v", got, err)
	}
	if _, err := db.Get("missing"); err == nil {
		t.Fatal("Get of missing table must error")
	}

	out := t.TempDir()
	if err := db.SaveDirectory(out); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSVFile(filepath.Join(out, "cities.csv"), CSVOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDirectoryEmpty(t *testing.T) {
	if _, err := LoadDirectory(t.TempDir(), CSVOptions{}); err == nil {
		t.Fatal("directory without csv files must error")
	}
}

func TestDatabaseBasics(t *testing.T) {
	db := NewDatabase("test")
	if db.Name() != "test" {
		t.Fatal("Name wrong")
	}
	r := New("t1", MustSchema(Column{Name: "a", Kind: KindString}))
	db.Put(r)
	db.Put(r) // idempotent replace
	if db.Len() != 1 {
		t.Fatal("Put should replace, not duplicate")
	}
	if names := db.Names(); len(names) != 1 || names[0] != "t1" {
		t.Fatalf("Names = %v", names)
	}
}

func TestReadCSVCustomDelimiterAndSample(t *testing.T) {
	data := "a;b\n1;x\n2.5;y\n"
	// With SampleRows 1 only "1" is sampled → int inferred; the unsampled
	// 2.5 row then fails to parse as int, surfacing as a load error — the
	// documented trade-off of bounded sampling.
	if _, err := ReadCSV("t", strings.NewReader(data),
		CSVOptions{Comma: ';', InferKinds: true, SampleRows: 1}); err == nil {
		t.Fatal("bounded sampling should mis-infer and surface an error here")
	}
	// Full sampling handles it.
	r, err := ReadCSV("t", strings.NewReader(data), CSVOptions{Comma: ';', InferKinds: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema().Column(0).Kind != KindFloat {
		t.Fatalf("kind = %v, want float", r.Schema().Column(0).Kind)
	}
}

func TestReadCSVCustomNullTokens(t *testing.T) {
	data := "a\nN/A\nx\n"
	r, err := ReadCSV("t", strings.NewReader(data), CSVOptions{NullTokens: []string{"N/A"}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsNull(0, 0) || r.IsNull(1, 0) {
		t.Fatal("custom NULL token not honoured")
	}
}

func TestWriteCSVFileCreatesParents(t *testing.T) {
	r, _ := ReadCSV("t", strings.NewReader("a\n1\n"), CSVOptions{})
	nested := filepath.Join(t.TempDir(), "deep", "dir", "t.csv")
	if err := r.WriteCSVFile(nested); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSVFile(nested, CSVOptions{}); err != nil {
		t.Fatal(err)
	}
}
