package relation

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "city", Kind: KindString},
		Column{Name: "pop", Kind: KindInt},
		Column{Name: "area", Kind: KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Index("pop") != 1 {
		t.Fatalf("Index(pop) = %d", s.Index("pop"))
	}
	if s.Index("POP") != 1 {
		t.Fatal("Index should fall back to case-insensitive match")
	}
	if s.Index("nope") != -1 {
		t.Fatal("Index of unknown must be -1")
	}
	if got := s.Names(); !reflect.DeepEqual(got, []string{"city", "pop", "area"}) {
		t.Fatalf("Names = %v", got)
	}
	set, err := s.IndexSet("area", "city")
	if err != nil {
		t.Fatal(err)
	}
	if !set.Equal(bitset.New(0, 2)) {
		t.Fatalf("IndexSet = %v", set)
	}
	if got := s.FormatSet(set); got != "city,area" {
		t.Fatalf("FormatSet = %q", got)
	}
	if _, err := s.IndexSet("ghost"); err == nil {
		t.Fatal("IndexSet should reject unknown attribute")
	}
}

func TestSchemaRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := NewSchema(Column{Name: "a"}, Column{Name: "a"}); err == nil {
		t.Fatal("duplicate names must be rejected")
	}
	if _, err := NewSchema(Column{Name: ""}); err == nil {
		t.Fatal("empty name must be rejected")
	}
}

func TestAppendAndAccess(t *testing.T) {
	r := New("cities", testSchema(t))
	r.MustAppend(String("milan"), Int(1352000), Float(181.8))
	r.MustAppend(String("bordeaux"), Int(260000), Float(49.4))
	r.MustAppend(String("milan"), Int(1352000), Null)

	if r.NumRows() != 3 || r.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", r.NumRows(), r.NumCols())
	}
	if got := r.Value(0, 0); got != String("milan") {
		t.Fatalf("Value(0,0) = %v", got)
	}
	if !r.IsNull(2, 2) {
		t.Fatal("cell (2,2) should be NULL")
	}
	if r.DictLen(0) != 2 { // milan, bordeaux
		t.Fatalf("DictLen(city) = %d", r.DictLen(0))
	}
	if r.NullCount(2) != 1 || !r.HasNulls(2) || r.HasNulls(0) {
		t.Fatal("null bookkeeping wrong")
	}
	if !r.NullFreeColumns().Equal(bitset.New(0, 1)) {
		t.Fatalf("NullFreeColumns = %v", r.NullFreeColumns())
	}
	row := r.Row(1)
	if row[0] != String("bordeaux") || row[1] != Int(260000) {
		t.Fatalf("Row(1) = %v", row)
	}
}

func TestAppendTypeChecks(t *testing.T) {
	r := New("t", testSchema(t))
	if err := r.Append(String("x"), String("oops"), Float(1)); err == nil {
		t.Fatal("kind mismatch must be rejected")
	}
	if err := r.Append(String("x"), Int(1)); err == nil {
		t.Fatal("arity mismatch must be rejected")
	}
	// Int is accepted into float columns and widened.
	if err := r.Append(String("x"), Int(1), Int(7)); err != nil {
		t.Fatalf("int→float widening failed: %v", err)
	}
	if got := r.Value(0, 2); got != Float(7) {
		t.Fatalf("widened value = %v", got)
	}
	// A failed Append must not leave a partial row behind.
	before := r.NumRows()
	_ = r.Append(String("y"), String("bad"), Float(0))
	if r.NumRows() != before {
		t.Fatal("failed Append must not change row count")
	}
}

func TestAppendStrings(t *testing.T) {
	r := New("t", testSchema(t))
	if err := r.AppendStrings("rome", "2873000", "1285.0"); err != nil {
		t.Fatal(err)
	}
	if err := r.AppendStrings("", "NULL", "3.5"); err != nil {
		t.Fatal(err)
	}
	if !r.IsNull(1, 0) || !r.IsNull(1, 1) || r.IsNull(1, 2) {
		t.Fatal("empty and NULL cells should parse as NULL")
	}
	if err := r.AppendStrings("x", "not-a-number", "1"); err == nil {
		t.Fatal("bad int cell must error")
	}
}

func TestDictCodesAreDense(t *testing.T) {
	r := New("t", MustSchema(Column{Name: "a", Kind: KindString}))
	for _, s := range []string{"x", "y", "x", "z", "y"} {
		r.MustAppend(String(s))
	}
	codes := r.ColumnCodes(0)
	want := []int32{0, 1, 0, 2, 1}
	if !reflect.DeepEqual(codes, want) {
		t.Fatalf("codes = %v, want %v", codes, want)
	}
	if r.DictValue(0, 2) != String("z") {
		t.Fatal("DictValue(0,2) should be z")
	}
	if c, ok := r.LookupCode(0, String("y")); !ok || c != 1 {
		t.Fatalf("LookupCode(y) = %d,%v", c, ok)
	}
	if _, ok := r.LookupCode(0, String("missing")); ok {
		t.Fatal("LookupCode should miss for absent value")
	}
}

func TestDistinctCount(t *testing.T) {
	r := New("t", MustSchema(
		Column{Name: "a", Kind: KindString},
		Column{Name: "b", Kind: KindString},
	))
	rows := [][2]string{{"1", "x"}, {"1", "y"}, {"2", "x"}, {"1", "x"}}
	for _, row := range rows {
		r.MustAppend(String(row[0]), String(row[1]))
	}
	if got := r.DistinctCount([]int{0}); got != 2 {
		t.Fatalf("|π_a| = %d, want 2", got)
	}
	if got := r.DistinctCount([]int{1}); got != 2 {
		t.Fatalf("|π_b| = %d, want 2", got)
	}
	if got := r.DistinctCount([]int{0, 1}); got != 3 {
		t.Fatalf("|π_ab| = %d, want 3", got)
	}
	if got := r.DistinctCount(nil); got != 1 {
		t.Fatalf("|π_∅| over non-empty r = %d, want 1", got)
	}
	empty := New("e", r.Schema())
	if got := empty.DistinctCount(nil); got != 0 {
		t.Fatalf("|π_∅| over empty r = %d, want 0", got)
	}
}

func TestDistinctCountNullIsAValue(t *testing.T) {
	r := New("t", MustSchema(Column{Name: "a", Kind: KindString}))
	r.MustAppend(Null)
	r.MustAppend(String("x"))
	r.MustAppend(Null)
	if got := r.DistinctCount([]int{0}); got != 2 {
		t.Fatalf("|π_a| with NULLs = %d, want 2 (NULL counted once)", got)
	}
}

func TestSatisfiesFDAgainstPairwise(t *testing.T) {
	// X→Y holds: a determines b.
	r := New("t", MustSchema(
		Column{Name: "a", Kind: KindString},
		Column{Name: "b", Kind: KindString},
		Column{Name: "c", Kind: KindString},
	))
	for _, row := range [][3]string{
		{"1", "x", "p"}, {"1", "x", "q"}, {"2", "y", "p"}, {"3", "x", "r"},
	} {
		r.MustAppend(String(row[0]), String(row[1]), String(row[2]))
	}
	a, b, c := bitset.New(0), bitset.New(1), bitset.New(2)
	if !r.SatisfiesFD(a, b) || !r.SatisfiesFDPairwise(a, b) {
		t.Fatal("a→b should hold")
	}
	if r.SatisfiesFD(a, c) || r.SatisfiesFDPairwise(a, c) {
		t.Fatal("a→c should not hold")
	}
}

// TestQuickSatisfiesFDEquivalence cross-validates the counting shortcut
// against the literal pairwise Definition 2 on random relations.
func TestQuickSatisfiesFDEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	schema := MustSchema(
		Column{Name: "a", Kind: KindInt},
		Column{Name: "b", Kind: KindInt},
		Column{Name: "c", Kind: KindInt},
		Column{Name: "d", Kind: KindInt},
	)
	for iter := 0; iter < 200; iter++ {
		r := New("t", schema)
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			r.MustAppend(
				Int(int64(rng.Intn(4))), Int(int64(rng.Intn(4))),
				Int(int64(rng.Intn(4))), Int(int64(rng.Intn(4))))
		}
		for trial := 0; trial < 6; trial++ {
			var x, y bitset.Set
			for c := 0; c < 4; c++ {
				switch rng.Intn(3) {
				case 0:
					x.Add(c)
				case 1:
					y.Add(c)
				}
			}
			if x.IsEmpty() || y.IsEmpty() {
				continue
			}
			if got, want := r.SatisfiesFD(x, y), r.SatisfiesFDPairwise(x, y); got != want {
				t.Fatalf("iter %d: counting=%v pairwise=%v for X=%v Y=%v", iter, got, want, x, y)
			}
		}
	}
}

func TestProjectHeadFilterClone(t *testing.T) {
	r := New("t", testSchema(t))
	r.MustAppend(String("a"), Int(1), Float(1.5))
	r.MustAppend(String("b"), Int(2), Float(2.5))
	r.MustAppend(String("c"), Int(3), Float(3.5))

	p, err := r.Project("p", []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 2 || p.Schema().Column(0).Name != "area" {
		t.Fatalf("Project schema wrong: %v", p.Schema())
	}
	if p.Value(1, 1) != String("b") {
		t.Fatalf("Project data wrong: %v", p.Value(1, 1))
	}
	if _, err := r.Project("bad", []int{9}); err == nil {
		t.Fatal("Project with bad index must error")
	}

	h, err := r.Head("h", 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumRows() != 2 || h.Value(1, 0) != String("b") {
		t.Fatalf("Head wrong: %v", h)
	}
	if h2, _ := r.Head("h2", 99); h2.NumRows() != 3 {
		t.Fatal("Head must clamp to NumRows")
	}

	f, err := r.Filter("f", func(row int) bool { return r.Value(row, 1).AsInt() >= 2 })
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 2 || f.Value(0, 0) != String("b") {
		t.Fatalf("Filter wrong: %v rows", f.NumRows())
	}

	c := r.Clone("c2")
	c.MustAppend(String("d"), Int(4), Float(4.5))
	if r.NumRows() != 3 || c.NumRows() != 4 {
		t.Fatal("Clone must be independent")
	}
}

func TestSchemaConvenienceAccessors(t *testing.T) {
	s := testSchema(t)
	if got := s.String(); got != "(city:string, pop:int, area:float)" {
		t.Fatalf("Schema.String = %q", got)
	}
	cols := s.Columns()
	if len(cols) != 3 || cols[1].Name != "pop" {
		t.Fatalf("Columns = %v", cols)
	}
	// Columns returns a copy: mutating it must not affect the schema.
	cols[0].Name = "hacked"
	if s.Column(0).Name != "city" {
		t.Fatal("Columns leaked internal storage")
	}
	other, err := SchemaOf("city", "pop", "area")
	if err != nil {
		t.Fatal(err)
	}
	if s.Equal(other) {
		t.Fatal("schemas with different kinds must not be Equal")
	}
	if !s.Equal(s) {
		t.Fatal("schema must equal itself")
	}
	short, _ := SchemaOf("city")
	if s.Equal(short) {
		t.Fatal("different arities must not be Equal")
	}
	if _, err := SchemaOf("a", "a"); err == nil {
		t.Fatal("SchemaOf must reject duplicates")
	}
}

func TestRelationStringAndNullCode(t *testing.T) {
	r := New("cities", testSchema(t))
	r.MustAppend(String("x"), Int(1), Null)
	if got := r.String(); got != "cities(3 cols, 1 rows)" {
		t.Fatalf("Relation.String = %q", got)
	}
	if r.NullCode() != -1 {
		t.Fatalf("NullCode = %d", r.NullCode())
	}
	if r.ColumnCodes(2)[0] != r.NullCode() {
		t.Fatal("NULL cell must carry the null code")
	}
}

func TestMustAppendPanicsOnBadTuple(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAppend with bad arity should panic")
		}
	}()
	r := New("t", testSchema(t))
	r.MustAppend(String("only-one"))
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema with duplicates should panic")
		}
	}()
	MustSchema(Column{Name: "a"}, Column{Name: "a"})
}
