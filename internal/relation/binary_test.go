package relation

import (
	"bytes"
	"testing"
)

// binaryFixture builds a small instance exercising every serialization
// feature: all four value kinds, NULLs, tombstones across multiple segments,
// in-place updates (mutations counter, stale dictionary entries) and a past
// compaction (non-zero epoch).
func binaryFixture(t *testing.T) *Relation {
	t.Helper()
	schema, err := NewSchema(
		Column{Name: "name", Kind: KindString},
		Column{Name: "n", Kind: KindInt},
		Column{Name: "score", Kind: KindFloat},
		Column{Name: "ok", Kind: KindBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := NewWithSegmentRows("fixture", schema, 4)
	for i := 0; i < 23; i++ {
		name := Value(String("row"))
		if i%5 == 0 {
			name = Null
		}
		if err := r.Append(name, Int(int64(i%7-3)), Float(float64(i)*1.5), Bool(i%2 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Delete(1, 6, 7, 8); err != nil {
		t.Fatal(err)
	}
	if r.Compact() == nil {
		t.Fatal("fixture compaction was a no-op")
	}
	for i := 0; i < 8; i++ {
		if err := r.Append(String("tail"), Int(int64(i)), Float(-2.25), Bool(false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Delete(0, 3, 20); err != nil {
		t.Fatal(err)
	}
	if err := r.Update(5, String("edited"), Int(99), Float(0), Bool(true)); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBinaryRoundTrip(t *testing.T) {
	r := binaryFixture(t)
	blob := r.AppendBinary(nil)
	got, n, err := DecodeBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(blob) {
		t.Fatalf("consumed %d of %d bytes", n, len(blob))
	}
	if got.Name() != r.Name() || got.NumRows() != r.NumRows() || got.LiveRows() != r.LiveRows() {
		t.Fatalf("shape: got %s/%d/%d want %s/%d/%d",
			got.Name(), got.NumRows(), got.LiveRows(), r.Name(), r.NumRows(), r.LiveRows())
	}
	if got.Epoch() != r.Epoch() || got.Mutations() != r.Mutations() || got.SegmentRows() != r.SegmentRows() {
		t.Fatalf("counters: epoch %d/%d mutations %d/%d segRows %d/%d",
			got.Epoch(), r.Epoch(), got.Mutations(), r.Mutations(), got.SegmentRows(), r.SegmentRows())
	}
	for row := 0; row < r.NumRows(); row++ {
		if got.IsDeleted(row) != r.IsDeleted(row) {
			t.Fatalf("row %d tombstone mismatch", row)
		}
		for col := 0; col < r.NumCols(); col++ {
			if got.Value(row, col) != r.Value(row, col) {
				t.Fatalf("cell (%d,%d): got %v want %v", row, col, got.Value(row, col), r.Value(row, col))
			}
		}
	}
	// Derived accounting must be rebuilt, not trusted: compare the full
	// MemStats, then the strongest check — a re-encode is bit-identical,
	// dictionary code assignment included.
	if got.MemStats() != r.MemStats() {
		t.Fatalf("MemStats: got %+v want %+v", got.MemStats(), r.MemStats())
	}
	if !bytes.Equal(got.AppendBinary(nil), blob) {
		t.Fatal("re-encode is not bit-identical")
	}
}

func TestBinaryRoundTripSelfDelimiting(t *testing.T) {
	r := binaryFixture(t)
	blob := r.AppendBinary(nil)
	// A decoder must stop exactly at the blob boundary even with trailing
	// bytes, so blobs can be embedded in larger snapshot files.
	got, n, err := DecodeBinary(append(append([]byte{}, blob...), 0xde, 0xad))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(blob) {
		t.Fatalf("consumed %d, want %d", n, len(blob))
	}
	if got.LiveRows() != r.LiveRows() {
		t.Fatalf("live rows %d, want %d", got.LiveRows(), r.LiveRows())
	}
}

// TestDecodeBinaryTruncations feeds every proper prefix of a valid blob to
// the decoder: each must fail with an error, never panic and never succeed.
func TestDecodeBinaryTruncations(t *testing.T) {
	blob := binaryFixture(t).AppendBinary(nil)
	for n := 0; n < len(blob); n++ {
		if _, _, err := DecodeBinary(blob[:n]); err == nil {
			t.Fatalf("truncation at %d of %d decoded successfully", n, len(blob))
		}
	}
}

// TestDecodeBinaryCorruptions flips one bit at every byte offset: the
// decoder must either fail cleanly or produce an instance that re-encodes
// without panicking — silent structural damage is what the per-field
// validation exists to rule out.
func TestDecodeBinaryCorruptions(t *testing.T) {
	blob := binaryFixture(t).AppendBinary(nil)
	for off := 0; off < len(blob); off++ {
		mut := append([]byte{}, blob...)
		mut[off] ^= 0x41
		r, _, err := DecodeBinary(mut)
		if err != nil {
			continue
		}
		// The corruption landed in a value or name: the instance is still
		// structurally sound, so derived invariants must hold.
		if r.LiveRows() < 0 || r.LiveRows() > r.NumRows() {
			t.Fatalf("offset %d: inconsistent instance survived decode", off)
		}
		r.AppendBinary(nil)
	}
}

func TestDecodeValueRejects(t *testing.T) {
	cases := [][]byte{
		{},                               // empty
		{99},                             // unknown kind
		{byte(KindString), 0x05, 'a'},    // string length beyond buffer
		{byte(KindInt)},                  // missing varint
		{byte(KindFloat), 1, 2, 3},       // short float
		{byte(KindBool)},                 // missing bool byte
		{byte(KindBool), 2},              // invalid bool byte
		AppendValue(nil, Float(0))[:0:0], // exercise the append path too
	}
	for i, c := range cases {
		if _, _, err := DecodeValue(c); err == nil && len(c) > 0 {
			t.Fatalf("case %d (% x) decoded successfully", i, c)
		}
	}
	// NaN bits must be rejected: a NaN Value would break comparability.
	nan := append([]byte{byte(KindFloat)}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xf8, 0x7f)
	if _, _, err := DecodeValue(nan); err == nil {
		t.Fatal("NaN float decoded successfully")
	}
}

// FuzzRelationSnapshot is the fuzz target over relation deserialization: no
// input may panic or over-allocate, and any input that decodes must
// re-encode into a blob that decodes to the same instance (a fixed point
// after one round).
func FuzzRelationSnapshot(f *testing.F) {
	schema, _ := NewSchema(Column{Name: "a", Kind: KindString}, Column{Name: "b", Kind: KindInt})
	tiny := New("t", schema)
	tiny.MustAppend(String("x"), Int(1))
	tiny.MustAppend(Null, Int(2))
	f.Add(tiny.AppendBinary(nil))
	withDead := NewWithSegmentRows("d", schema, 2)
	for i := 0; i < 6; i++ {
		withDead.MustAppend(String("v"), Int(int64(i)))
	}
	withDead.Delete(1, 4)
	f.Add(withDead.AppendBinary(nil))
	f.Add([]byte(relMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeBinary(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		blob := r.AppendBinary(nil)
		again, m, err := DecodeBinary(blob)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m != len(blob) {
			t.Fatalf("re-decode consumed %d of %d", m, len(blob))
		}
		if !bytes.Equal(again.AppendBinary(nil), blob) {
			t.Fatal("encoding is not a fixed point")
		}
	})
}
