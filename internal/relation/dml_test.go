package relation

import (
	"bytes"
	"strings"
	"testing"

	"github.com/evolvefd/evolvefd/internal/bitset"
)

// dmlRelation builds the cities fixture with a NULL area on the last row.
func dmlRelation(t *testing.T) *Relation {
	t.Helper()
	r := New("cities", testSchema(t))
	r.MustAppend(String("milan"), Int(1352000), Float(181.8))
	r.MustAppend(String("bordeaux"), Int(260000), Float(49.4))
	r.MustAppend(String("milan"), Int(1352000), Null)
	return r
}

func TestDeleteTombstones(t *testing.T) {
	r := dmlRelation(t)
	if err := r.Delete(1); err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 3 || r.LiveRows() != 2 || r.NumDeleted() != 1 {
		t.Fatalf("counts after delete: physical %d live %d deleted %d",
			r.NumRows(), r.LiveRows(), r.NumDeleted())
	}
	if !r.IsDeleted(1) || r.IsDeleted(0) || r.IsDeleted(2) {
		t.Fatal("tombstone marks wrong rows")
	}
	// Row ids are stable: the surviving cells read exactly as before.
	if r.Value(2, 0) != String("milan") || !r.IsNull(2, 2) {
		t.Fatal("delete shifted surviving rows")
	}
	if !r.Mutated() || !r.HasTombstones() {
		t.Fatal("mutation flags not set")
	}
	// Appending after a delete keeps the tombstone bookkeeping aligned.
	r.MustAppend(String("lyon"), Int(513000), Float(47.9))
	if r.NumRows() != 4 || r.LiveRows() != 3 || r.IsDeleted(3) {
		t.Fatalf("append after delete: physical %d live %d", r.NumRows(), r.LiveRows())
	}
}

func TestDeleteValidationIsAtomic(t *testing.T) {
	r := dmlRelation(t)
	if err := r.Delete(0, 99); err == nil {
		t.Fatal("out-of-range delete must fail")
	}
	if r.NumDeleted() != 0 || r.IsDeleted(0) {
		t.Fatal("failed batch left partial tombstones")
	}
	if err := r.Delete(0, 0); err == nil {
		t.Fatal("duplicate row in one batch must fail")
	}
	if r.NumDeleted() != 0 {
		t.Fatal("failed duplicate batch left tombstones")
	}
	if err := r.Delete(2); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(2); err == nil {
		t.Fatal("double delete must fail")
	}
	if err := r.Delete(); err != nil {
		t.Fatal("empty batch must be a no-op")
	}
}

func TestDeleteMaintainsLiveNullCounts(t *testing.T) {
	r := dmlRelation(t)
	if r.NullCount(2) != 1 || !r.HasNulls(2) {
		t.Fatalf("fixture: area nulls = %d", r.NullCount(2))
	}
	// Deleting the only NULL-bearing row makes the column NULL-free — which
	// is what lets repair candidate generation consider it again.
	if err := r.Delete(2); err != nil {
		t.Fatal(err)
	}
	if r.NullCount(2) != 0 || r.HasNulls(2) {
		t.Fatalf("after delete: area nulls = %d", r.NullCount(2))
	}
	if !r.NullFreeColumns().Contains(2) {
		t.Fatal("area must be NULL-free after the delete")
	}
}

func TestUpdateInPlace(t *testing.T) {
	r := dmlRelation(t)
	if err := r.Update(2, String("lyon"), Int(513000), Float(47.9)); err != nil {
		t.Fatal(err)
	}
	if got := r.Row(2); got[0] != String("lyon") || got[1] != Int(513000) || got[2] != Float(47.9) {
		t.Fatalf("updated row = %v", got)
	}
	// The NULL the update overwrote is gone from the live counts.
	if r.HasNulls(2) {
		t.Fatal("overwritten NULL still counted")
	}
	// Updating a value to NULL counts it back in.
	if err := r.Update(0, String("milan"), Int(1352000), Null); err != nil {
		t.Fatal(err)
	}
	if r.NullCount(2) != 1 {
		t.Fatalf("area nulls = %d, want 1", r.NullCount(2))
	}
	if r.LiveRows() != 3 {
		t.Fatal("update must not change the live count")
	}
	// Int→float widening applies like in Append.
	if err := r.Update(1, String("bordeaux"), Int(260000), Int(49)); err != nil {
		t.Fatal(err)
	}
	if r.Value(1, 2) != Float(49) {
		t.Fatalf("widened cell = %v", r.Value(1, 2))
	}
}

func TestUpdateValidation(t *testing.T) {
	r := dmlRelation(t)
	if err := r.Update(99, String("x"), Int(0), Null); err == nil {
		t.Fatal("out-of-range update must fail")
	}
	if err := r.Update(0, String("x")); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if err := r.Update(0, String("x"), String("nan"), Null); err == nil {
		t.Fatal("kind mismatch must fail")
	}
	if err := r.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := r.Update(0, String("x"), Int(0), Null); err == nil {
		t.Fatal("update of deleted row must fail")
	}
	if err := r.UpdateStrings(1, "bordeaux", "260001", "49.4"); err != nil {
		t.Fatal(err)
	}
	if r.Value(1, 1) != Int(260001) {
		t.Fatalf("UpdateStrings cell = %v", r.Value(1, 1))
	}
	if err := r.UpdateStrings(1, "a", "b", "c"); err == nil {
		t.Fatal("unparsable cells must fail")
	}
}

func TestDistinctCountSkipsTombstones(t *testing.T) {
	r := dmlRelation(t)
	if got := r.DistinctCount([]int{0}); got != 2 {
		t.Fatalf("distinct cities = %d, want 2", got)
	}
	// Deleting the second milan leaves the count intact; deleting the first
	// as well drops it — and the dictionary shortcut must not resurrect it.
	if err := r.Delete(2); err != nil {
		t.Fatal(err)
	}
	if got := r.DistinctCount([]int{0}); got != 2 {
		t.Fatalf("distinct cities after first delete = %d, want 2", got)
	}
	if err := r.Delete(0); err != nil {
		t.Fatal(err)
	}
	if got := r.DistinctCount([]int{0}); got != 1 {
		t.Fatalf("distinct cities after both deletes = %d, want 1", got)
	}
	if got := r.DistinctCount([]int{0, 1}); got != 1 {
		t.Fatalf("distinct (city,pop) = %d, want 1", got)
	}
	if got := r.DistinctCount(nil); got != 1 {
		t.Fatalf("empty projection = %d, want 1", got)
	}
	if err := r.Delete(1); err != nil {
		t.Fatal(err)
	}
	if got := r.DistinctCount(nil); got != 0 {
		t.Fatalf("empty projection over empty instance = %d, want 0", got)
	}
}

func TestDerivedRelationsSkipTombstones(t *testing.T) {
	r := dmlRelation(t)
	if err := r.Delete(0); err != nil {
		t.Fatal(err)
	}
	clone := r.Clone("compact")
	if clone.NumRows() != 2 || clone.HasTombstones() {
		t.Fatalf("clone = %v", clone)
	}
	if clone.Value(0, 0) != String("bordeaux") {
		t.Fatal("clone must compact live rows in order")
	}
	head, err := r.Head("head", 1)
	if err != nil || head.NumRows() != 1 || head.Value(0, 0) != String("bordeaux") {
		t.Fatalf("head = %v (%v)", head, err)
	}
	filtered, err := r.Filter("f", func(row int) bool { return true })
	if err != nil || filtered.NumRows() != 2 {
		t.Fatalf("filter = %v (%v)", filtered, err)
	}
	proj, err := r.Project("p", []int{0})
	if err != nil || proj.NumRows() != 2 {
		t.Fatalf("project = %v (%v)", proj, err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "181.8") {
		t.Fatalf("deleted row leaked into CSV:\n%s", buf.String())
	}
	if got := strings.Count(strings.TrimSpace(buf.String()), "\n"); got != 2 {
		t.Fatalf("CSV lines = %d, want header + 2 rows", got+1)
	}
}

func TestStringShowsTombstones(t *testing.T) {
	r := dmlRelation(t)
	if got := r.String(); got != "cities(3 cols, 3 rows)" {
		t.Fatalf("String = %q", got)
	}
	if err := r.Delete(1); err != nil {
		t.Fatal(err)
	}
	if got := r.String(); got != "cities(3 cols, 2 rows +1 deleted)" {
		t.Fatalf("String = %q", got)
	}
}

func TestSatisfiesFDOverLiveRows(t *testing.T) {
	schema, err := SchemaOf("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	r := New("t", schema)
	r.MustAppend(String("x"), String("1"))
	r.MustAppend(String("x"), String("2")) // violates a → b
	x, y := bitset.New(0), bitset.New(1)
	if r.SatisfiesFD(x, y) || r.SatisfiesFDPairwise(x, y) {
		t.Fatal("fixture must violate a → b")
	}
	// Deleting the conflicting tuple restores the FD on the live instance —
	// the data-side repair the relative-trust literature motivates.
	if err := r.Delete(1); err != nil {
		t.Fatal(err)
	}
	if !r.SatisfiesFD(x, y) || !r.SatisfiesFDPairwise(x, y) {
		t.Fatal("a → b must hold after deleting the conflict")
	}
}
