package relation

import "github.com/evolvefd/evolvefd/internal/bitset"

// DistinctCount returns |π_X(r)|: the number of distinct tuples over the
// columns in cols. It is the reference implementation used as the oracle in
// tests; the pli package provides the optimised strategies used by the
// repair algorithms.
//
// NULL is treated as an ordinary (distinct) value, so π over a column with
// NULLs counts NULL once. FD semantics sidestep the question because
// attributes occurring in FDs must be NULL-free (§6.2.1).
func (r *Relation) DistinctCount(cols []int) int {
	if len(cols) == 0 {
		if r.LiveRows() == 0 {
			return 0
		}
		return 1
	}
	if len(cols) == 1 && !r.Mutated() {
		// Dictionary shortcut: only sound while every interned value still
		// occurs (no deletes or in-place updates ever happened).
		n := r.DictLen(cols[0])
		if r.HasNulls(cols[0]) {
			n++
		}
		return n
	}
	seen := make(map[string]struct{}, r.rows)
	key := make([]byte, 0, len(cols)*4)
	for row := 0; row < r.rows; row++ {
		if r.IsDeleted(row) {
			continue
		}
		key = key[:0]
		for _, c := range cols {
			code := r.cols[c][row]
			key = append(key, byte(code), byte(code>>8), byte(code>>16), byte(code>>24))
		}
		seen[string(key)] = struct{}{}
	}
	return len(seen)
}

// DistinctCountSet is DistinctCount over a bitset of columns (members are
// visited in increasing position order, which does not affect the count).
func (r *Relation) DistinctCountSet(set bitset.Set) int {
	return r.DistinctCount(set.Members())
}

// SatisfiesFD reports whether the instance satisfies X → Y under Definition 2
// of the paper, checked pairwise-equivalently via distinct counts:
// r ⊨ X→Y  ⟺  |π_X(r)| = |π_XY(r)|.
func (r *Relation) SatisfiesFD(x, y bitset.Set) bool {
	return r.DistinctCountSet(x) == r.DistinctCountSet(x.Union(y))
}

// SatisfiesFDPairwise checks Definition 2 literally: for every pair of tuples
// t1, t2, t1[X] = t2[X] implies t1[Y] = t2[Y]. It is O(n·|groups|) with a
// hash map and exists to cross-validate the counting shortcut in tests.
func (r *Relation) SatisfiesFDPairwise(x, y bitset.Set) bool {
	xs, ys := x.Members(), y.Members()
	firstY := make(map[string][]int32, r.rows)
	key := make([]byte, 0, len(xs)*4)
	for row := 0; row < r.rows; row++ {
		if r.IsDeleted(row) {
			continue
		}
		key = key[:0]
		for _, c := range xs {
			code := r.cols[c][row]
			key = append(key, byte(code), byte(code>>8), byte(code>>16), byte(code>>24))
		}
		yCodes := make([]int32, len(ys))
		for i, c := range ys {
			yCodes[i] = r.cols[c][row]
		}
		if prev, ok := firstY[string(key)]; ok {
			for i := range prev {
				if prev[i] != yCodes[i] {
					return false
				}
			}
		} else {
			firstY[string(key)] = yCodes
		}
	}
	return true
}
