package relation

import (
	"fmt"
	"strings"

	"github.com/evolvefd/evolvefd/internal/bitset"
)

// Column describes one attribute of a relation schema.
type Column struct {
	// Name is the attribute name; unique within a schema.
	Name string
	// Kind is the declared type of the column's non-NULL values.
	Kind Kind
}

// Schema is an ordered list of columns. Attribute positions (indices into the
// schema) are the canonical attribute identity used across evolvefd; names
// are resolved once at the boundary.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from columns. Duplicate or empty names are
// rejected.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{
		cols:   make([]Column, len(cols)),
		byName: make(map[string]int, len(cols)),
	}
	copy(s.cols, cols)
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relation: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate column name %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for tests and
// statically-known schemas such as the built-in datasets.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// SchemaOf builds an all-string schema from bare column names.
func SchemaOf(names ...string) (*Schema, error) {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = Column{Name: n, Kind: KindString}
	}
	return NewSchema(cols...)
}

// Len returns the number of attributes |R|.
func (s *Schema) Len() int { return len(s.cols) }

// Column returns the i-th column descriptor.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of all column descriptors.
func (s *Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// Names returns all attribute names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// Index returns the position of the named attribute, or -1 if absent.
// Lookup is exact first, then case-insensitive as a convenience for the CLI.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	for i, c := range s.cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// IndexSet resolves a list of attribute names to a bitset of positions.
func (s *Schema) IndexSet(names ...string) (bitset.Set, error) {
	var set bitset.Set
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return bitset.Set{}, fmt.Errorf("relation: %w %q (have %s)",
				ErrUnknownAttribute, n, strings.Join(s.Names(), ", "))
		}
		set.Add(i)
	}
	return set, nil
}

// NameSet renders a bitset of positions back to attribute names in schema
// order.
func (s *Schema) NameSet(set bitset.Set) []string {
	var out []string
	set.ForEach(func(i int) bool {
		if i < len(s.cols) {
			out = append(out, s.cols[i].Name)
		}
		return true
	})
	return out
}

// FormatSet renders a bitset as "A,B,C" using attribute names.
func (s *Schema) FormatSet(set bitset.Set) string {
	return strings.Join(s.NameSet(set), ",")
}

// Project returns a new schema containing only the columns at the given
// positions, in the given order.
func (s *Schema) Project(idx []int) (*Schema, error) {
	cols := make([]Column, len(idx))
	for i, p := range idx {
		if p < 0 || p >= len(s.cols) {
			return nil, fmt.Errorf("relation: column index %d out of range [0,%d)", p, len(s.cols))
		}
		cols[i] = s.cols[p]
	}
	return NewSchema(cols...)
}

// Equal reports whether two schemas have identical column lists.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "R(a:string, b:int)".
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		parts[i] = fmt.Sprintf("%s:%s", c.Name, c.Kind)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
