package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/evolvefd/evolvefd/internal/discovery"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// sampleOps covers every op kind and every value kind.
func sampleOps() []Op {
	return []Op{
		{Kind: OpDefine, Label: "F1", Spec: "a, b -> c"},
		{Kind: OpAppend, Tuple: []relation.Value{relation.String("x"), relation.Int(-7), relation.Float(2.5), relation.Bool(true), relation.Null}},
		{Kind: OpAppendStrings, Cells: []string{"y", "3", "", "NULL"}},
		{Kind: OpDelete, Rows: []int{4, 0, 17}},
		{Kind: OpUpdate, Row: 2, Tuple: []relation.Value{relation.Null, relation.Int(0)}},
		{Kind: OpUpdateStrings, Row: 9, Cells: []string{"z"}},
		{Kind: OpAccept, Label: "F1", Names: []string{"region", "district"}},
		{Kind: OpDrop, Label: "F1"},
		{Kind: OpCompact},
	}
}

func TestOpRoundTrip(t *testing.T) {
	for _, op := range sampleOps() {
		payload := EncodeOp(nil, op)
		got, err := DecodeOp(payload)
		if err != nil {
			t.Fatalf("op %d: %v", op.Kind, err)
		}
		if !reflect.DeepEqual(got, op) {
			t.Fatalf("op %d: got %+v want %+v", op.Kind, got, op)
		}
	}
}

func TestDecodeOpRejects(t *testing.T) {
	if _, err := DecodeOp(nil); err == nil {
		t.Fatal("empty payload decoded")
	}
	if _, err := DecodeOp([]byte{77}); err == nil {
		t.Fatal("unknown kind decoded")
	}
	if _, err := DecodeOp(append(EncodeOp(nil, Op{Kind: OpCompact}), 0)); err == nil {
		t.Fatal("trailing garbage decoded")
	}
	for _, op := range sampleOps() {
		payload := EncodeOp(nil, op)
		for n := 0; n < len(payload); n++ {
			if _, err := DecodeOp(payload[:n]); err == nil && n > 0 {
				// Some prefixes are legitimately complete ops (OpCompact is one
				// byte); those must round-trip instead.
				if trunc, err2 := DecodeOp(payload[:n]); err2 != nil || !bytes.Equal(EncodeOp(nil, trunc), payload[:n]) {
					t.Fatalf("op %d truncated at %d: inconsistent decode", op.Kind, n)
				}
			}
		}
	}
}

// TestRecordFramingMatrix is the byte-level crash matrix: a log of framed
// records, truncated at every byte offset and corrupted at every byte
// offset, must always scan to a prefix of complete records — and at offsets
// on record boundaries, to exactly the records before the cut.
func TestRecordFramingMatrix(t *testing.T) {
	var log []byte
	var bounds []int // byte offset after each record
	payloads := make([][]byte, 0, len(sampleOps()))
	for _, op := range sampleOps() {
		p := EncodeOp(nil, op)
		payloads = append(payloads, p)
		log = AppendRecord(log, p)
		bounds = append(bounds, len(log))
	}
	recordsBefore := func(off int) int {
		n := 0
		for n < len(bounds) && bounds[n] <= off {
			n++
		}
		return n
	}
	for cut := 0; cut <= len(log); cut++ {
		got, valid := ScanRecords(log[:cut])
		want := recordsBefore(cut)
		if len(got) != want {
			t.Fatalf("truncate@%d: %d records, want %d", cut, len(got), want)
		}
		if want > 0 && valid != bounds[want-1] {
			t.Fatalf("truncate@%d: valid=%d, want %d", cut, valid, bounds[want-1])
		}
		for i, p := range got {
			if !bytes.Equal(p, payloads[i]) {
				t.Fatalf("truncate@%d: record %d corrupted", cut, i)
			}
		}
	}
	for off := 0; off < len(log); off++ {
		mut := append([]byte{}, log...)
		mut[off] ^= 0x01
		got, _ := ScanRecords(mut)
		// The record containing the flipped byte must not survive; all
		// records before it must.
		limit := recordsBefore(off)
		if len(got) < limit {
			t.Fatalf("corrupt@%d: lost %d intact records", off, limit-len(got))
		}
		for i := 0; i < limit; i++ {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("corrupt@%d: intact record %d changed", off, i)
			}
		}
		if len(got) > limit && bytes.Equal(got[limit], payloads[limit]) {
			t.Fatalf("corrupt@%d: damaged record %d scanned as valid original", off, limit)
		}
	}
}

func TestLogGroupCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-test.log")
	l, err := Create(path, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	rec := func(i int) []byte { return EncodeOp(nil, Op{Kind: OpDelete, Rows: []int{i}}) }
	for i := 0; i < 7; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// 7 records at group 3: two full groups hit the file, one buffers.
	got, _, _, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("before flush: %d records on disk, want 6", len(got))
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	got, valid, size, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 || valid != size {
		t.Fatalf("after flush: %d records, valid %d of %d", len(got), valid, size)
	}
	for i, p := range got {
		if !bytes.Equal(p, rec(i)) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateTornAndAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-torn.log")
	l, err := Create(path, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(EncodeOp(nil, Op{Kind: OpCompact}))
	l.Append(EncodeOp(nil, Op{Kind: OpDrop, Label: "F9"}))
	l.Close()
	// Tear the final record in half, recover, and append a fresh one.
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-3], 0o644)
	_, valid, size, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if valid >= size {
		t.Fatalf("tear not detected: valid %d size %d", valid, size)
	}
	if err := TruncateTorn(path, valid); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenAppend(path, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	l2.Append(EncodeOp(nil, Op{Kind: OpDelete, Rows: []int{1}}))
	l2.Close()
	payloads, valid, size, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 2 || valid != size {
		t.Fatalf("after recovery append: %d records, valid %d of %d", len(payloads), valid, size)
	}
	if op, err := DecodeOp(payloads[1]); err != nil || op.Kind != OpDelete {
		t.Fatalf("appended record = %+v, %v", op, err)
	}
}

func TestLogCreateRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-x.log")
	l, err := Create(path, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := Create(path, 1, true); err == nil {
		t.Fatal("Create reused an existing log file")
	}
}

// snapshotFixture builds a Snapshot with every optional part populated.
func snapshotFixture(t *testing.T) *Snapshot {
	t.Helper()
	schema, err := relation.NewSchema(
		relation.Column{Name: "a", Kind: relation.KindString},
		relation.Column{Name: "b", Kind: relation.KindInt},
		relation.Column{Name: "c", Kind: relation.KindInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	rel := relation.New("snap", schema)
	rel.MustAppend(relation.String("x"), relation.Int(1), relation.Int(1))
	rel.MustAppend(relation.String("x"), relation.Int(1), relation.Int(2))
	rel.MustAppend(relation.String("y"), relation.Int(2), relation.Int(3))
	return &Snapshot{
		Seq:         7,
		Generation:  42,
		Compactions: 3,
		Rel:         rel,
		FDs: []DefinedFD{
			{Label: "F1", Spec: "[a] -> [b]"},
			{Label: "F2", Spec: "[a, b] -> [c]"},
		},
		Disc: &DiscState{
			MaxLHS:         2,
			HasConsequents: true,
			Consequents:    []int{1, 2},
			Borders: discovery.BorderSnapshot{
				MaxLHS:   2,
				Eligible: []int{0, 1, 2},
				States: []discovery.ConsequentSnapshot{
					{Y: 1, Valid: [][]int{{0}}, Invalid: []discovery.WitnessSnapshot{{X: []int{2}, W1: 0, W2: 1}}},
					{Y: 2, Valid: nil, Invalid: []discovery.WitnessSnapshot{{X: []int{0, 1}, W1: 0, W2: 1}}},
				},
			},
			LastCover: []string{"k1", "k2\x00sub"},
			LastExact: []LabelExact{{Label: "F1", Exact: true}, {Label: "F2", Exact: false}},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := snapshotFixture(t)
	blob := EncodeSnapshot(snap)
	got, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != snap.Seq || got.Generation != snap.Generation || got.Compactions != snap.Compactions {
		t.Fatalf("header: got %d/%d/%d", got.Seq, got.Generation, got.Compactions)
	}
	if !bytes.Equal(got.Rel.AppendBinary(nil), snap.Rel.AppendBinary(nil)) {
		t.Fatal("relation did not round-trip")
	}
	if !reflect.DeepEqual(got.FDs, snap.FDs) {
		t.Fatalf("FDs: got %+v", got.FDs)
	}
	if !reflect.DeepEqual(got.Disc, snap.Disc) {
		t.Fatalf("Disc: got %+v want %+v", got.Disc, snap.Disc)
	}
	// Without discovery state the optional section must vanish cleanly.
	snap.Disc = nil
	got, err = DecodeSnapshot(EncodeSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if got.Disc != nil {
		t.Fatal("nil Disc did not round-trip")
	}
}

// TestSnapshotCorruptionMatrix flips one bit at every byte offset of an
// encoded snapshot: the trailing CRC must reject every single one — a
// snapshot is trusted state, so unlike the log there is no "valid prefix".
func TestSnapshotCorruptionMatrix(t *testing.T) {
	blob := EncodeSnapshot(snapshotFixture(t))
	for off := 0; off < len(blob); off++ {
		mut := append([]byte{}, blob...)
		mut[off] ^= 0x10
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("corruption at offset %d decoded successfully", off)
		}
	}
	for n := 0; n < len(blob); n++ {
		if _, err := DecodeSnapshot(blob[:n]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", n)
		}
	}
}

func TestWriteSnapshotAtomic(t *testing.T) {
	dir := t.TempDir()
	snap := snapshotFixture(t)
	if err := WriteSnapshot(dir, snap, true); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(dir, snap.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != snap.Generation {
		t.Fatalf("generation %d, want %d", got.Generation, snap.Generation)
	}
	// Overwrite with new content; no temp files may linger.
	snap.Generation = 99
	if err := WriteSnapshot(dir, snap, true); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("dir holds %d entries after overwrite", len(entries))
	}
	got, err = ReadSnapshot(dir, snap.Seq)
	if err != nil || got.Generation != 99 {
		t.Fatalf("after overwrite: gen %d, %v", got.Generation, err)
	}
}

func TestListStatesAndPrune(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{1, 2, 3} {
		if err := WriteFileAtomic(SnapshotPath(dir, seq), []byte("s"), false); err != nil {
			t.Fatal(err)
		}
		if err := WriteFileAtomic(LogPath(dir, seq), []byte("l"), false); err != nil {
			t.Fatal(err)
		}
	}
	os.WriteFile(filepath.Join(dir, "unrelated.txt"), []byte("x"), 0o644)
	snaps, logs, err := ListStates(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snaps, []uint64{1, 2, 3}) || !reflect.DeepEqual(logs, []uint64{1, 2, 3}) {
		t.Fatalf("ListStates = %v, %v", snaps, logs)
	}
	Prune(dir, 2)
	snaps, logs, _ = ListStates(dir)
	if !reflect.DeepEqual(snaps, []uint64{2, 3}) || !reflect.DeepEqual(logs, []uint64{2, 3}) {
		t.Fatalf("after prune: %v, %v", snaps, logs)
	}
	if _, err := os.Stat(filepath.Join(dir, "unrelated.txt")); err != nil {
		t.Fatal("prune touched an unrelated file")
	}
}

// FuzzWALReplay is the fuzz target over log replay: arbitrary bytes are
// scanned into records and each record decoded as an op — no panic, no
// over-allocation — and every op that decodes must survive an
// encode/decode round (fixed point after one decode).
func FuzzWALReplay(f *testing.F) {
	var seed []byte
	for _, op := range sampleOps() {
		seed = AppendRecord(seed, EncodeOp(nil, op))
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-5])
	f.Add(EncodeSnapshot(&Snapshot{Seq: 1, Rel: func() *relation.Relation {
		schema, _ := relation.NewSchema(relation.Column{Name: "a", Kind: relation.KindInt})
		r := relation.New("f", schema)
		r.MustAppend(relation.Int(5))
		return r
	}()}))
	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, valid := ScanRecords(data)
		if valid > len(data) {
			t.Fatalf("valid %d beyond input %d", valid, len(data))
		}
		for _, p := range payloads {
			op, err := DecodeOp(p)
			if err != nil {
				continue
			}
			re := EncodeOp(nil, op)
			again, err := DecodeOp(re)
			if err != nil {
				t.Fatalf("re-decode of op %d failed: %v", op.Kind, err)
			}
			if !reflect.DeepEqual(again, op) {
				t.Fatalf("op %d is not a decode fixed point", op.Kind)
			}
		}
		// The same bytes might be a snapshot; decoding must never panic, and
		// a successful decode must re-encode decodably.
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if _, err := DecodeSnapshot(EncodeSnapshot(snap)); err != nil {
			t.Fatalf("snapshot re-decode failed: %v", err)
		}
	})
}
