package wal

import (
	"errors"
	"path/filepath"
	"syscall"
	"testing"
)

// TestStickyFailedFsync is the satellite regression: after a failed fsync
// the writer must return the original error from every later Append and
// Flush — the kernel may have dropped the dirty pages, so a silent retry
// would report durability the disk never provided.
func TestStickyFailedFsync(t *testing.T) {
	dir := t.TempDir()
	efs := NewErrFS(nil)
	boom := errors.New("simulated fsync failure")
	l, err := CreateFS(efs, LogPath(dir, 1), 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(EncodeOp(nil, Op{Kind: OpDrop, Label: "F1"})); err != nil {
		t.Fatalf("healthy append: %v", err)
	}
	efs.FailFsyncAfter(0, boom)
	if err := l.Append([]byte("doomed")); !errors.Is(err, boom) {
		t.Fatalf("append after fsync failure: %v, want %v", err, boom)
	}
	// The disk is healthy again, but the writer must not care: the dropped
	// pages are gone and only a rotation makes durability whole.
	efs.ClearFaults()
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte("still doomed")); !errors.Is(err, boom) {
			t.Fatalf("append %d after recovery: %v, want sticky %v", i, err, boom)
		}
	}
	if err := l.Flush(); !errors.Is(err, boom) {
		t.Fatalf("flush: %v, want sticky %v", err, boom)
	}
	if err := l.Close(); !errors.Is(err, boom) {
		t.Fatalf("close: %v, want sticky %v", err, boom)
	}
	// On disk: the pre-failure record, plus at most the record whose fsync
	// failed (its bytes were written; only their durability is unknown).
	// Nothing appended after the failure may ever reach the file.
	payloads, _, _, err := ReadLog(LogPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) > 2 {
		t.Fatalf("log holds %d records; the sticky-failed writer kept writing", len(payloads))
	}
	for _, p := range payloads {
		if string(p) == "still doomed" {
			t.Fatal("a post-failure append reached the log")
		}
	}
}

// TestStickyFailedWrite: a torn write (short write + error) leaves a
// complete-record prefix on disk and wedges the writer.
func TestStickyFailedWrite(t *testing.T) {
	dir := t.TempDir()
	efs := NewErrFS(nil)
	boom := errors.New("simulated torn write")
	l, err := CreateFS(efs, LogPath(dir, 1), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	first := EncodeOp(nil, Op{Kind: OpDefine, Label: "F1", Spec: "[a] -> [b]"})
	if err := l.Append(first); err != nil {
		t.Fatal(err)
	}
	// Tear the next flush mid-record: only 5 bytes of the framed record land.
	efs.TornWriteAfter(0, 5, boom)
	if err := l.Append(EncodeOp(nil, Op{Kind: OpDrop, Label: "F1"})); !errors.Is(err, boom) {
		t.Fatalf("torn append: %v, want %v", err, boom)
	}
	if err := l.Append(first); !errors.Is(err, boom) {
		t.Fatalf("append after tear: %v, want sticky %v", err, boom)
	}
	l.Close()
	payloads, valid, size, err := ReadLog(LogPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 1 || string(payloads[0]) != string(first) {
		t.Fatalf("recovered %d records; want exactly the pre-tear record", len(payloads))
	}
	if valid >= size {
		t.Fatalf("valid %d, size %d: the torn tail should be visible", valid, size)
	}
	if err := TruncateTorn(LogPath(dir, 1), valid); err != nil {
		t.Fatal(err)
	}
	if _, _, size, _ := ReadLog(LogPath(dir, 1)); size != valid {
		t.Fatalf("truncate left %d bytes, want %d", size, valid)
	}
}

// TestDiskFull: writes past the byte budget fail with ENOSPC, persist only
// the budgeted prefix, and wedge the writer like any other write failure.
func TestDiskFull(t *testing.T) {
	dir := t.TempDir()
	efs := NewErrFS(nil)
	l, err := CreateFS(efs, LogPath(dir, 1), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	rec := EncodeOp(nil, Op{Kind: OpDefine, Label: "F1", Spec: "[a] -> [b]"})
	framed := AppendRecord(nil, rec)
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	efs.LimitBytes(int64(len(framed) / 2))
	if err := l.Append(rec); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append on full disk: %v, want ENOSPC", err)
	}
	if err := l.Append(rec); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append after full disk: %v, want sticky ENOSPC", err)
	}
	l.Close()
	payloads, valid, size, err := ReadLog(LogPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 1 {
		t.Fatalf("recovered %d records, want 1", len(payloads))
	}
	if valid >= size {
		t.Fatal("the half-written record should be a visible torn tail")
	}
}

// TestFlipBitOnRead: a bit flip injected on the read path ends the valid
// record prefix at the damaged record without touching the file.
func TestFlipBitOnRead(t *testing.T) {
	dir := t.TempDir()
	efs := NewErrFS(nil)
	path := LogPath(dir, 1)
	l, err := Create(path, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for i := 0; i < 3; i++ {
		rec := EncodeOp(nil, Op{Kind: OpDrop, Label: "F1"})
		l.Append(rec)
		n += int64(len(AppendRecord(nil, rec)))
	}
	l.Close()
	// Flip one payload bit in the second record.
	recLen := n / 3
	efs.FlipBit(filepath.Base(path), recLen+recordHeader, 0x04)
	payloads, valid, _, err := ReadLogFS(efs, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 1 || valid != recLen {
		t.Fatalf("flipped read: %d records, valid %d; want 1 record, valid %d", len(payloads), valid, recLen)
	}
	// The tail is complete-but-invalid — corruption, not a torn write.
	data, _ := efs.ReadFile(path)
	if !CorruptTail(data[valid:]) {
		t.Fatal("CorruptTail did not classify a bit-flipped record as corrupt")
	}
	// The file underneath is untouched.
	if payloads, _, _, _ := ReadLog(path); len(payloads) != 3 {
		t.Fatalf("underlying file damaged: %d records", len(payloads))
	}
}

// TestTransientReads: FailReads injects n read failures, then the file
// reads normally — the retry scenario a tailing follower must survive.
func TestTransientReads(t *testing.T) {
	dir := t.TempDir()
	efs := NewErrFS(nil)
	path := LogPath(dir, 3)
	if err := WriteFileAtomicFS(efs, path, AppendRecord(nil, []byte("x")), false); err != nil {
		t.Fatal(err)
	}
	flaky := errors.New("simulated transient read error")
	efs.FailReads(filepath.Base(path), 2, flaky)
	for i := 0; i < 2; i++ {
		if _, err := efs.ReadFile(path); !errors.Is(err, flaky) {
			t.Fatalf("read %d: %v, want %v", i, err, flaky)
		}
	}
	if _, err := efs.ReadFile(path); err != nil {
		t.Fatalf("read after faults drained: %v", err)
	}
	if _, _, reads := efs.Counts(); reads != 3 {
		t.Fatalf("injector counted %d reads, want 3", reads)
	}
}

// TestCorruptTailClassification pins the boundary between "wait" and
// "quarantine" for a live tailer.
func TestCorruptTailClassification(t *testing.T) {
	rec := AppendRecord(nil, []byte("payload"))
	if CorruptTail(nil) || CorruptTail(rec[:3]) || CorruptTail(rec[:recordHeader]) || CorruptTail(rec[:len(rec)-1]) {
		t.Fatal("short tails misclassified as corrupt")
	}
	flipped := append([]byte{}, rec...)
	flipped[recordHeader] ^= 0x01
	if !CorruptTail(flipped) {
		t.Fatal("complete record with bad payload not classified as corrupt")
	}
	huge := append([]byte{0xff, 0xff, 0xff, 0xff}, rec[4:]...)
	if !CorruptTail(huge) {
		t.Fatal("impossible length not classified as corrupt")
	}
}

// TestPins: pin files lower the retention floor, move with the follower,
// and vanish on removal, without ever appearing as session state.
func TestPins(t *testing.T) {
	dir := t.TempDir()
	if _, ok := MinPinned(nil, dir); ok {
		t.Fatal("empty dir reports a pin")
	}
	if err := WritePin(nil, dir, "f1", 7); err != nil {
		t.Fatal(err)
	}
	if err := WritePin(nil, dir, "f2", 4); err != nil {
		t.Fatal(err)
	}
	if min, ok := MinPinned(nil, dir); !ok || min != 4 {
		t.Fatalf("MinPinned = %d, %v; want 4, true", min, ok)
	}
	if err := WritePin(nil, dir, "f2", 9); err != nil {
		t.Fatal(err)
	}
	if min, _ := MinPinned(nil, dir); min != 7 {
		t.Fatalf("after f2 advanced: MinPinned = %d, want 7", min)
	}
	snaps, logs, err := ListStates(dir)
	if err != nil || len(snaps) != 0 || len(logs) != 0 {
		t.Fatalf("pins leaked into ListStates: %v %v %v", snaps, logs, err)
	}
	if err := RemovePin(nil, dir, "f1"); err != nil {
		t.Fatal(err)
	}
	if err := RemovePin(nil, dir, "f1"); err != nil {
		t.Fatalf("removing a missing pin: %v", err)
	}
	if min, ok := MinPinned(nil, dir); !ok || min != 9 {
		t.Fatalf("after removal: MinPinned = %d, %v; want 9, true", min, ok)
	}
}

// TestVerifySnapshot: the cheap retention gate accepts a clean snapshot and
// rejects damage, absence and truncation.
func TestVerifySnapshot(t *testing.T) {
	dir := t.TempDir()
	snap := snapshotFixture(t)
	if err := WriteSnapshot(dir, snap, true); err != nil {
		t.Fatal(err)
	}
	if !VerifySnapshot(nil, dir, snap.Seq) {
		t.Fatal("clean snapshot rejected")
	}
	if VerifySnapshot(nil, dir, snap.Seq+1) {
		t.Fatal("missing snapshot verified")
	}
	efs := NewErrFS(nil)
	efs.FlipBit(filepath.Base(SnapshotPath(dir, snap.Seq)), 20, 0x80)
	if VerifySnapshot(efs, dir, snap.Seq) {
		t.Fatal("bit-flipped snapshot verified")
	}
	if err := WriteFileAtomic(SnapshotPath(dir, 99), []byte("EVFDSN"), false); err != nil {
		t.Fatal(err)
	}
	if VerifySnapshot(nil, dir, 99) {
		t.Fatal("truncated snapshot verified")
	}
}
