package wal

import (
	"path/filepath"
	"sync"
	"syscall"
)

// ErrFS wraps an FS and injects the I/O faults the durability and
// replication layers claim to survive: fsync failures, short (torn) writes,
// disk-full, bit flips visible on read, and transient read errors. Rules
// match on the file's base name, so tests need not thread temp-dir prefixes
// into their fault programs; an empty name matches every file.
//
// ErrFS is safe for concurrent use. It is not test-only scaffolding: the
// engine's robustness claims (leader fails sticky, follower quarantines and
// resyncs) are only claims until an injected fault exercises them, which is
// why the injector ships with the package it attacks.
type ErrFS struct {
	inner FS

	mu sync.Mutex
	// syncsLeft counts fsyncs that still succeed; once it reaches zero every
	// Sync fails with syncErr. -1 disables the rule.
	syncsLeft int
	syncErr   error
	// writesLeft counts writes that still succeed; the next write after that
	// persists only tornKeep bytes and fails with tornErr. -1 disables.
	writesLeft int
	tornKeep   int
	tornErr    error
	// budget is the bytes the disk will still accept; writes past it persist
	// the budgeted prefix and fail with ENOSPC. -1 means unlimited.
	budget int64
	// readFaults maps base name -> transient ReadFile failures remaining.
	readFaults map[string]*readFault
	// flips maps base name -> bit flips applied to ReadFile results.
	flips map[string][]bitFlip

	writes, syncs, reads int
}

type readFault struct {
	left int
	err  error
}

type bitFlip struct {
	off  int64
	mask byte
}

// NewErrFS wraps inner (nil means the real filesystem) with no faults armed.
func NewErrFS(inner FS) *ErrFS {
	return &ErrFS{
		inner:      orFS(inner),
		syncsLeft:  -1,
		writesLeft: -1,
		budget:     -1,
		readFaults: make(map[string]*readFault),
		flips:      make(map[string][]bitFlip),
	}
}

// FailFsyncAfter lets n more fsyncs succeed, then fails every later one with
// err — the page-cache-dropped-my-data scenario a writer must treat as fatal.
func (e *ErrFS) FailFsyncAfter(n int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.syncsLeft, e.syncErr = n, err
}

// TornWriteAfter lets n more writes succeed, then tears the next one: only
// keep bytes reach the file and the write reports err.
func (e *ErrFS) TornWriteAfter(n, keep int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.writesLeft, e.tornKeep, e.tornErr = n, keep, err
}

// LimitBytes arms the disk-full fault: writes consume the budget and the
// first byte past it fails with ENOSPC (persisting the budgeted prefix, as a
// real full disk does).
func (e *ErrFS) LimitBytes(n int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.budget = n
}

// FailReads makes the next n ReadFile calls on base name fail with err —
// the transient I/O error a tailing follower must retry through.
func (e *ErrFS) FailReads(name string, n int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.readFaults[name] = &readFault{left: n, err: err}
}

// FlipBit makes every later ReadFile of base name return its content with
// the bit mask at byte off flipped — bit rot as the reader observes it,
// without mutating the file underneath other readers.
func (e *ErrFS) FlipBit(name string, off int64, mask byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.flips[name] = append(e.flips[name], bitFlip{off: off, mask: mask})
}

// ClearFaults disarms every rule; counters keep counting.
func (e *ErrFS) ClearFaults() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.syncsLeft, e.writesLeft, e.budget = -1, -1, -1
	e.readFaults = make(map[string]*readFault)
	e.flips = make(map[string][]bitFlip)
}

// Counts reports how many writes, fsyncs and whole-file reads passed through
// the injector, for tests asserting retry and backoff behaviour.
func (e *ErrFS) Counts() (writes, syncs, reads int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writes, e.syncs, e.reads
}

// admitWrite decides the fate of an n-byte write: how many bytes to persist
// and which error (if any) to report after persisting them.
func (e *ErrFS) admitWrite(n int) (keep int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.writes++
	if e.writesLeft == 0 {
		e.writesLeft = -1 // the torn write fires once
		keep = e.tornKeep
		if keep > n {
			keep = n
		}
		return keep, e.tornErr
	}
	if e.writesLeft > 0 {
		e.writesLeft--
	}
	if e.budget >= 0 {
		if int64(n) > e.budget {
			keep = int(e.budget)
			e.budget = 0
			return keep, syscall.ENOSPC
		}
		e.budget -= int64(n)
	}
	return n, nil
}

func (e *ErrFS) admitSync() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.syncs++
	if e.syncsLeft < 0 {
		return nil
	}
	if e.syncsLeft == 0 {
		return e.syncErr
	}
	e.syncsLeft--
	return nil
}

func (e *ErrFS) admitRead(path string, data []byte, readErr error) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reads++
	name := filepath.Base(path)
	for _, key := range []string{name, ""} {
		if f, ok := e.readFaults[key]; ok && f.left > 0 {
			f.left--
			return nil, f.err
		}
	}
	if readErr != nil {
		return nil, readErr
	}
	if flips := e.flips[name]; len(flips) > 0 {
		data = append([]byte(nil), data...)
		for _, fl := range flips {
			if fl.off >= 0 && fl.off < int64(len(data)) {
				data[fl.off] ^= fl.mask
			}
		}
	}
	return data, nil
}

type errFile struct {
	fs    *ErrFS
	inner File
}

func (f *errFile) Write(p []byte) (int, error) {
	keep, err := f.fs.admitWrite(len(p))
	if keep > 0 {
		if n, werr := f.inner.Write(p[:keep]); werr != nil {
			return n, werr
		}
	}
	if err != nil {
		return keep, err
	}
	return len(p), nil
}

func (f *errFile) Sync() error {
	if err := f.fs.admitSync(); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *errFile) Close() error { return f.inner.Close() }

func (e *ErrFS) Create(path string) (File, error) {
	f, err := e.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &errFile{fs: e, inner: f}, nil
}

func (e *ErrFS) OpenAppend(path string) (File, error) {
	f, err := e.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &errFile{fs: e, inner: f}, nil
}

func (e *ErrFS) CreateTemp(dir, pattern string) (File, string, error) {
	f, name, err := e.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, "", err
	}
	return &errFile{fs: e, inner: f}, name, nil
}

func (e *ErrFS) ReadFile(path string) ([]byte, error) {
	data, err := e.inner.ReadFile(path)
	return e.admitRead(path, data, err)
}

func (e *ErrFS) ReadDir(dir string) ([]string, error) { return e.inner.ReadDir(dir) }

func (e *ErrFS) Size(path string) (int64, error) { return e.inner.Size(path) }

func (e *ErrFS) Truncate(path string, size int64) error { return e.inner.Truncate(path, size) }

func (e *ErrFS) Rename(oldPath, newPath string) error { return e.inner.Rename(oldPath, newPath) }

func (e *ErrFS) Remove(path string) error { return e.inner.Remove(path) }

func (e *ErrFS) MkdirAll(dir string) error { return e.inner.MkdirAll(dir) }

func (e *ErrFS) SyncDir(dir string) error { return e.inner.SyncDir(dir) }
