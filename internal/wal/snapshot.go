package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/evolvefd/evolvefd/internal/discovery"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// snapMagic opens every snapshot file; snapVersion names the layout written
// today. Version 2 added the tracked-index dumps as interleaved
// size/member cluster lists; version 3 stores each index columnar — a size
// table followed by one flat member arena, matching pli.IndexDump's layout
// so the encoder dumps the arenas directly and the decoder fills one
// allocation with a single fixed-width sweep. Decoding accepts both.
const (
	snapMagic     = "EVFDSNP1"
	snapVersion   = 3
	snapVersionV2 = 2
)

// Snapshot is the full durable state of a session at one epoch boundary:
// the compacted relation, the designer's defined FDs, and — when discovery
// has been seeded — the maintained borders with the advisor's diff
// baselines. Everything else a session holds (tracked cluster maps, cached
// measures) is derived state that recovery rebuilds lazily.
type Snapshot struct {
	// Seq is the snapshot's sequence number; log Seq holds the records
	// after it.
	Seq uint64
	// Generation is the counter generation at snapshot time, restored via
	// pli.IncrementalCounter.RestoreGeneration so cached stamps stay
	// truthful across the restart.
	Generation uint64
	// Compactions is the session's lifetime compaction count.
	Compactions uint64
	// Rel is the relation instance.
	Rel *relation.Relation
	// FDs are the defined dependencies in definition order, each as the
	// label plus its Define-syntax text (re-parsed on restore).
	FDs []DefinedFD
	// Disc is the incremental-discovery state, nil when the session never
	// seeded a discoverer.
	Disc *DiscState
	// Indexes are the counter's tracked cluster indexes, exported so
	// recovery decodes its partition state in O(clusters) per set instead
	// of refolding the whole instance per set. They are an optimization,
	// not ground truth: a session restored without them is merely slower.
	Indexes []pli.IndexDump
}

// DefinedFD is one defined dependency in durable form.
type DefinedFD struct {
	// Label is the FD's session-unique name; Spec its attribute-name text.
	Label, Spec string
}

// DiscState is the durable form of a session's discovery layer.
type DiscState struct {
	// MaxLHS is the normalized antecedent bound the discoverer runs under.
	MaxLHS int
	// HasConsequents distinguishes a nil consequent restriction (discover
	// everywhere) from an explicit list; Consequents holds the sorted column
	// indexes when HasConsequents.
	HasConsequents bool
	Consequents    []int
	// Borders is the exported positive/negative border state.
	Borders discovery.BorderSnapshot
	// LastCover holds the advisor baseline: the opaque keys of the cover FDs
	// already reported, sorted for determinism.
	LastCover []string
	// LastExact holds the advisor's per-label exactness baseline, in
	// definition order.
	LastExact []LabelExact
}

// LabelExact is one advisor exactness baseline entry.
type LabelExact struct {
	// Label names the defined FD; Exact is whether it held at the baseline.
	Label string
	Exact bool
}

// EncodeSnapshot serializes snap: a magic+version header, the fields in
// declaration order, and a trailing CRC32 over everything before it. The
// rename-based writer makes torn snapshots impossible; the checksum catches
// the remaining failure mode — bit rot or an overwritten file — so recovery
// can fall back to the previous generation instead of loading garbage.
func EncodeSnapshot(snap *Snapshot) []byte {
	buf := []byte(snapMagic)
	buf = append(buf, snapVersion)
	buf = binary.AppendUvarint(buf, snap.Seq)
	buf = binary.AppendUvarint(buf, snap.Generation)
	buf = binary.AppendUvarint(buf, snap.Compactions)
	buf = snap.Rel.AppendBinary(buf)
	buf = binary.AppendUvarint(buf, uint64(len(snap.FDs)))
	for _, fd := range snap.FDs {
		buf = appendString(buf, fd.Label)
		buf = appendString(buf, fd.Spec)
	}
	if snap.Disc == nil {
		buf = append(buf, 0)
	} else {
		d := snap.Disc
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(d.MaxLHS))
		if d.HasConsequents {
			buf = append(buf, 1)
			buf = appendInts(buf, d.Consequents)
		} else {
			buf = append(buf, 0)
		}
		buf = appendInts(buf, d.Borders.Eligible)
		buf = binary.AppendUvarint(buf, uint64(len(d.Borders.States)))
		for _, st := range d.Borders.States {
			buf = binary.AppendUvarint(buf, uint64(st.Y))
			buf = binary.AppendUvarint(buf, uint64(len(st.Valid)))
			for _, attrs := range st.Valid {
				buf = appendInts(buf, attrs)
			}
			buf = binary.AppendUvarint(buf, uint64(len(st.Invalid)))
			for _, w := range st.Invalid {
				buf = appendInts(buf, w.X)
				buf = binary.AppendUvarint(buf, uint64(w.W1))
				buf = binary.AppendUvarint(buf, uint64(w.W2))
			}
		}
		buf = binary.AppendUvarint(buf, uint64(len(d.LastCover)))
		for _, key := range d.LastCover {
			buf = appendString(buf, key)
		}
		buf = binary.AppendUvarint(buf, uint64(len(d.LastExact)))
		for _, le := range d.LastExact {
			buf = appendString(buf, le.Label)
			if le.Exact {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	// Cluster members are fixed-width little-endian int32s, not varints:
	// the dumps hold one entry per live row per index, and decoding them is
	// on recovery's critical path — a fixed-width loop decodes several
	// times faster than per-row varint parsing, for ~2 bytes more per row.
	// v3 layout per index: attrs, cluster count, member total, all cluster
	// sizes as uvarints, then the flat member arena in one block.
	buf = binary.AppendUvarint(buf, uint64(len(snap.Indexes)))
	for _, d := range snap.Indexes {
		buf = appendInts(buf, d.Attrs)
		nclusters := d.NumClusters()
		buf = binary.AppendUvarint(buf, uint64(nclusters))
		buf = binary.AppendUvarint(buf, uint64(len(d.Members)))
		for j := 0; j < nclusters; j++ {
			buf = binary.AppendUvarint(buf, uint64(d.Offsets[j+1]-d.Offsets[j]))
		}
		for _, row := range d.Members {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(row))
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func appendInts(buf []byte, vals []int) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	for _, v := range vals {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return buf
}

// DecodeSnapshot decodes an EncodeSnapshot blob, verifying the checksum
// first and every structural bound after it. Like the relation decoder it
// returns errors, never panics: recovery probes snapshots newest-first and a
// bad one must fail cleanly so the previous generation gets its turn.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapMagic)+1+4 {
		return nil, fmt.Errorf("wal: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("wal: bad snapshot magic")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("wal: snapshot checksum mismatch")
	}
	r := &reader{data: body, off: len(snapMagic)}
	v := r.byte()
	if r.err == nil && v != snapVersion && v != snapVersionV2 {
		return nil, fmt.Errorf("wal: unsupported snapshot version %d", v)
	}
	snap := &Snapshot{}
	snap.Seq = r.uvarint()
	snap.Generation = r.uvarint()
	snap.Compactions = r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	rel, n, err := relation.DecodeBinary(body[r.off:])
	if err != nil {
		return nil, err
	}
	snap.Rel = rel
	r.off += n
	nfds := r.count("FD count", uint64(len(body)))
	for i := 0; i < nfds && r.err == nil; i++ {
		snap.FDs = append(snap.FDs, DefinedFD{Label: r.str(), Spec: r.str()})
	}
	switch hasDisc := r.byte(); {
	case r.err != nil:
	case hasDisc == 0:
	case hasDisc != 1:
		r.fail("discovery flag byte %d", hasDisc)
	default:
		d := &DiscState{}
		d.MaxLHS = r.count("MaxLHS", 1<<20)
		switch hasCons := r.byte(); {
		case r.err != nil:
		case hasCons == 1:
			d.HasConsequents = true
			d.Consequents = r.ints("consequent")
		case hasCons != 0:
			r.fail("consequent flag byte %d", hasCons)
		}
		d.Borders.MaxLHS = d.MaxLHS
		d.Borders.Eligible = r.ints("eligible column")
		nstates := r.count("state count", uint64(len(body)))
		for i := 0; i < nstates && r.err == nil; i++ {
			st := discovery.ConsequentSnapshot{Y: r.count("consequent", 1<<20)}
			nvalid := r.count("cover size", uint64(len(body)))
			for j := 0; j < nvalid && r.err == nil; j++ {
				st.Valid = append(st.Valid, r.ints("cover attribute"))
			}
			ninvalid := r.count("border size", uint64(len(body)))
			for j := 0; j < ninvalid && r.err == nil; j++ {
				w := discovery.WitnessSnapshot{X: r.ints("border attribute")}
				w.W1 = r.count("witness row", 1<<40)
				w.W2 = r.count("witness row", 1<<40)
				st.Invalid = append(st.Invalid, w)
			}
			d.Borders.States = append(d.Borders.States, st)
		}
		ncover := r.count("baseline cover size", uint64(len(body)))
		for i := 0; i < ncover && r.err == nil; i++ {
			d.LastCover = append(d.LastCover, r.str())
		}
		nexact := r.count("baseline label count", uint64(len(body)))
		for i := 0; i < nexact && r.err == nil; i++ {
			le := LabelExact{Label: r.str()}
			switch b := r.byte(); {
			case r.err != nil:
			case b == 1:
				le.Exact = true
			case b != 0:
				r.fail("exactness byte %d", b)
			}
			d.LastExact = append(d.LastExact, le)
		}
		snap.Disc = d
	}
	nidx := r.count("index count", uint64(len(body)))
	for i := 0; i < nidx && r.err == nil; i++ {
		d := pli.IndexDump{Attrs: r.ints("index attribute")}
		nclusters := r.count("cluster count", uint64(len(body)))
		total := r.count("cluster member total", uint64(len(body)/4+1))
		if r.err != nil {
			break
		}
		d.Offsets = make([]int32, 1, nclusters+1)
		if v == snapVersionV2 {
			// v2 interleaves each cluster's size with its members; reassemble
			// the flat arena cluster by cluster.
			d.Members = make([]int32, 0, total)
			for j := 0; j < nclusters && r.err == nil; j++ {
				n := r.count("cluster size", uint64(total-len(d.Members)))
				if r.err == nil && len(body)-r.off < 4*n {
					r.fail("cluster of %d rows overruns the snapshot", n)
				}
				if r.err != nil {
					break
				}
				off := r.off
				for k := 0; k < n; k++ {
					d.Members = append(d.Members, int32(binary.LittleEndian.Uint32(body[off+4*k:])))
				}
				r.off += 4 * n
				d.Offsets = append(d.Offsets, int32(len(d.Members)))
			}
			if r.err == nil && len(d.Members) != total {
				r.fail("index member total overshoots its clusters by %d", total-len(d.Members))
			}
			snap.Indexes = append(snap.Indexes, d)
			continue
		}
		// v3: the size table first, then the member arena in one block —
		// decoded with a single fixed-width sweep into one allocation.
		sum := 0
		for j := 0; j < nclusters && r.err == nil; j++ {
			n := r.count("cluster size", uint64(total-sum))
			sum += n
			d.Offsets = append(d.Offsets, int32(sum))
		}
		if r.err == nil && sum != total {
			r.fail("cluster sizes total %d of %d arena members", sum, total)
		}
		if r.err == nil && len(body)-r.off < 4*total {
			r.fail("member arena of %d rows overruns the snapshot", total)
		}
		if r.err != nil {
			break
		}
		d.Members = make([]int32, total)
		off := r.off
		for k := range d.Members {
			d.Members[k] = int32(binary.LittleEndian.Uint32(body[off+4*k:]))
		}
		r.off += 4 * total
		snap.Indexes = append(snap.Indexes, d)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("wal: %d trailing bytes in snapshot", len(body)-r.off)
	}
	return snap, nil
}

// ints reads a count-prefixed int list, bounding the count by the remaining
// input.
func (r *reader) ints(what string) []int {
	n := r.count(what+" count", uint64(len(r.data)-r.off))
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]int, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.count(what, 1<<40))
	}
	return out
}

// WriteSnapshot encodes snap and writes it to its sequence-numbered path
// under dir, atomically and (unless noFsync) durably.
func WriteSnapshot(dir string, snap *Snapshot, noFsync bool) error {
	return WriteSnapshotFS(nil, dir, snap, noFsync)
}

// WriteSnapshotFS is WriteSnapshot over an injectable filesystem.
func WriteSnapshotFS(fsys FS, dir string, snap *Snapshot, noFsync bool) error {
	return WriteFileAtomicFS(fsys, SnapshotPath(dir, snap.Seq), EncodeSnapshot(snap), !noFsync)
}

// ReadSnapshot loads and decodes snapshot seq from dir.
func ReadSnapshot(dir string, seq uint64) (*Snapshot, error) {
	return ReadSnapshotFS(nil, dir, seq)
}

// ReadSnapshotFS is ReadSnapshot over an injectable filesystem.
func ReadSnapshotFS(fsys FS, dir string, seq uint64) (*Snapshot, error) {
	data, err := orFS(fsys).ReadFile(SnapshotPath(dir, seq))
	if err != nil {
		return nil, err
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	if snap.Seq != seq {
		return nil, fmt.Errorf("wal: snapshot file %d holds seq %d", seq, snap.Seq)
	}
	return snap, nil
}

// VerifySnapshot is the cheap integrity check — magic plus trailing CRC,
// no structural decode — that gates retention: a snapshot the leader cannot
// read back clean must not become the newest generation older state is
// pruned against.
func VerifySnapshot(fsys FS, dir string, seq uint64) bool {
	data, err := orFS(fsys).ReadFile(SnapshotPath(dir, seq))
	if err != nil || len(data) < len(snapMagic)+1+4 {
		return false
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return false
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	return crc32.ChecksumIEEE(body) == binary.LittleEndian.Uint32(tail)
}
