package wal

import (
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"

	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
)

// encodeV2Snapshot hand-assembles a version-2 snapshot — the interleaved
// size/members index layout shipped before the columnar arena — around the
// given relation and index dumps. The encoder only writes v3 now, so the
// upgrade path can only be exercised against a byte-level reconstruction.
func encodeV2Snapshot(rel *relation.Relation, dumps []pli.IndexDump) []byte {
	buf := []byte(snapMagic)
	buf = append(buf, snapVersionV2)
	buf = binary.AppendUvarint(buf, 7)  // seq
	buf = binary.AppendUvarint(buf, 42) // generation
	buf = binary.AppendUvarint(buf, 3)  // compactions
	buf = rel.AppendBinary(buf)
	buf = binary.AppendUvarint(buf, 0) // no FDs
	buf = append(buf, 0)               // no discovery state
	buf = binary.AppendUvarint(buf, uint64(len(dumps)))
	for _, d := range dumps {
		buf = appendInts(buf, d.Attrs)
		buf = binary.AppendUvarint(buf, uint64(d.NumClusters()))
		buf = binary.AppendUvarint(buf, uint64(len(d.Members)))
		for j := 0; j < d.NumClusters(); j++ {
			cls := d.Cluster(j)
			buf = binary.AppendUvarint(buf, uint64(len(cls)))
			for _, row := range cls {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(row))
			}
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func upgradeFixtureRel(t *testing.T) *relation.Relation {
	t.Helper()
	schema, err := relation.SchemaOf("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	rel := relation.New("up", schema)
	for _, cells := range [][]string{{"x", "1"}, {"x", "1"}, {"y", "1"}, {"y", "2"}, {"x", "2"}} {
		if err := rel.AppendStrings(cells...); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

// TestSnapshotV2Upgrade proves a pre-columnar snapshot still restores: a
// hand-encoded v2 blob must decode into the flat IndexDump form, feed the
// counter's ImportIndexes, and re-encode as a valid v3 snapshot with the
// same clusters.
func TestSnapshotV2Upgrade(t *testing.T) {
	rel := upgradeFixtureRel(t)
	var d0, d1 pli.IndexDump
	d0.Attrs = []int{0}
	d0.AddCluster(0, 1, 4) // the "x" rows
	d0.AddCluster(2, 3)    // the "y" rows
	d1.Attrs = []int{0, 1}
	d1.AddCluster(0, 1) // ("x","1")
	d1.AddCluster(2)    // tracked indexes keep singleton clusters too
	d1.AddCluster(3)
	d1.AddCluster(4)
	dumps := []pli.IndexDump{d0, d1}

	blob := encodeV2Snapshot(rel, dumps)
	snap, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("v2 decode: %v", err)
	}
	if !reflect.DeepEqual(snap.Indexes, dumps) {
		t.Fatalf("v2 indexes decoded as %+v, want %+v", snap.Indexes, dumps)
	}

	counter := pli.NewIncrementalCounter(snap.Rel)
	if err := counter.ImportIndexes(snap.Indexes); err != nil {
		t.Fatalf("import of upgraded dumps: %v", err)
	}
	if got := counter.ExportIndexes(); len(got) != len(dumps) {
		t.Fatalf("re-export holds %d indexes, want %d", len(got), len(dumps))
	}

	// Re-encoding writes v3; the clusters must survive the format change.
	again, err := DecodeSnapshot(EncodeSnapshot(snap))
	if err != nil {
		t.Fatalf("v3 re-encode: %v", err)
	}
	if !reflect.DeepEqual(again.Indexes, dumps) {
		t.Fatalf("v3 round-trip lost clusters: %+v", again.Indexes)
	}
}

// FuzzSnapshotIndexes drives the snapshot decoder with structurally mutated
// bodies. The harness re-checksums each input so mutations reach the
// structural layer instead of dying at the CRC; the properties are that the
// decoder never panics, that anything it accepts satisfies the IndexDump
// invariants (monotone offsets covering the arena), and that an accepted
// snapshot round-trips through the v3 encoder unchanged.
func FuzzSnapshotIndexes(f *testing.F) {
	schema, _ := relation.SchemaOf("a", "b")
	rel := relation.New("fz", schema)
	for _, cells := range [][]string{{"x", "1"}, {"x", "2"}, {"y", "1"}} {
		if err := rel.AppendStrings(cells...); err != nil {
			f.Fatal(err)
		}
	}
	var d pli.IndexDump
	d.Attrs = []int{0}
	d.AddCluster(0, 1)
	v3 := EncodeSnapshot(&Snapshot{Seq: 1, Rel: rel, Indexes: []pli.IndexDump{d}})
	f.Add(v3[:len(v3)-4])
	v2 := encodeV2Snapshot(rel, []pli.IndexDump{d})
	f.Add(v2[:len(v2)-4])
	empty := EncodeSnapshot(&Snapshot{Seq: 2, Rel: rel})
	f.Add(empty[:len(empty)-4])

	f.Fuzz(func(t *testing.T, body []byte) {
		blob := binary.LittleEndian.AppendUint32(append([]byte{}, body...), crc32.ChecksumIEEE(body))
		snap, err := DecodeSnapshot(blob)
		if err != nil {
			return
		}
		for i, d := range snap.Indexes {
			if len(d.Offsets) == 0 || d.Offsets[0] != 0 {
				t.Fatalf("index %d: offsets %v lack the leading 0", i, d.Offsets)
			}
			for j := 1; j < len(d.Offsets); j++ {
				if d.Offsets[j] < d.Offsets[j-1] {
					t.Fatalf("index %d: offsets %v not monotone", i, d.Offsets)
				}
			}
			if int(d.Offsets[len(d.Offsets)-1]) != len(d.Members) {
				t.Fatalf("index %d: offsets end at %d, arena holds %d", i, d.Offsets[len(d.Offsets)-1], len(d.Members))
			}
		}
		again, err := DecodeSnapshot(EncodeSnapshot(snap))
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		if !reflect.DeepEqual(again.Indexes, snap.Indexes) {
			t.Fatalf("indexes changed across re-encode: %+v vs %+v", again.Indexes, snap.Indexes)
		}
	})
}
