package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// File naming: snapshot seq S lives in snap-<S>.snap, and the records after
// it in wal-<S>.log. Sequence numbers are zero-padded so lexical order is
// numeric order.
const (
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	logPrefix  = "wal-"
	logSuffix  = ".log"
)

// SnapshotPath returns the path of snapshot seq under dir.
func SnapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix))
}

// LogPath returns the path of log seq under dir.
func LogPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", logPrefix, seq, logSuffix))
}

// ListStates scans dir and returns the snapshot and log sequence numbers
// present, each sorted ascending. Unrelated files are ignored.
func ListStates(dir string) (snaps, logs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok {
			snaps = append(snaps, seq)
		} else if seq, ok := parseSeq(e.Name(), logPrefix, logSuffix); ok {
			logs = append(logs, seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })
	return snaps, logs, nil
}

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Prune removes every snapshot and log file whose sequence is below keep.
// Removal failures are ignored — stale generations are garbage, not state.
func Prune(dir string, keep uint64) {
	snaps, logs, err := ListStates(dir)
	if err != nil {
		return
	}
	for _, seq := range snaps {
		if seq < keep {
			os.Remove(SnapshotPath(dir, seq))
		}
	}
	for _, seq := range logs {
		if seq < keep {
			os.Remove(LogPath(dir, seq))
		}
	}
}

// WriteFileAtomic writes data to path via a temp file in the same directory
// and an os.Rename, so path either holds the old content or all of the new
// one — never a prefix. With fsync, the file is synced before the rename and
// the directory after it, making the swap durable, not just atomic.
func WriteFileAtomic(path string, data []byte, fsync bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if fsync {
		if err := tmp.Sync(); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if fsync {
		if d, err := os.Open(dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}
