package wal

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// File naming: snapshot seq S lives in snap-<S>.snap, and the records after
// it in wal-<S>.log. Sequence numbers are zero-padded so lexical order is
// numeric order. Followers register the oldest sequence they still need in
// pin-<id>.pin files, which retention honours and ListStates ignores.
const (
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	logPrefix  = "wal-"
	logSuffix  = ".log"
	pinPrefix  = "pin-"
	pinSuffix  = ".pin"
)

// SnapshotPath returns the path of snapshot seq under dir.
func SnapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix))
}

// LogPath returns the path of log seq under dir.
func LogPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", logPrefix, seq, logSuffix))
}

// PinPath returns the path of follower id's pin file under dir.
func PinPath(dir, id string) string {
	return filepath.Join(dir, pinPrefix+id+pinSuffix)
}

// ListStates scans dir and returns the snapshot and log sequence numbers
// present, each sorted ascending. Unrelated files (pins included) are
// ignored.
func ListStates(dir string) (snaps, logs []uint64, err error) {
	return ListStatesFS(nil, dir)
}

// ListStatesFS is ListStates over an injectable filesystem.
func ListStatesFS(fsys FS, dir string) (snaps, logs []uint64, err error) {
	names, err := orFS(fsys).ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, name := range names {
		if seq, ok := parseSeq(name, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, seq)
		} else if seq, ok := parseSeq(name, logPrefix, logSuffix); ok {
			logs = append(logs, seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })
	return snaps, logs, nil
}

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// WritePin records that follower id still needs snapshot/log sequences ≥ seq,
// lowering the leader's retention floor until the pin moves or disappears. A
// pin is advisory liveness state, not durable state — it is rewritten on
// every follower sync — so it skips the fsync a snapshot would pay.
func WritePin(fsys FS, dir, id string, seq uint64) error {
	return WriteFileAtomicFS(fsys, PinPath(dir, id), []byte(strconv.FormatUint(seq, 10)), false)
}

// RemovePin drops follower id's pin. Missing pins are not an error.
func RemovePin(fsys FS, dir, id string) error {
	if err := orFS(fsys).Remove(PinPath(dir, id)); err != nil && !IsNotExist(err) {
		return err
	}
	return nil
}

// MinPinned returns the lowest sequence any pin file in dir still needs, and
// whether one exists. Unparsable pins are ignored rather than wedging
// retention forever.
func MinPinned(fsys FS, dir string) (uint64, bool) {
	f := orFS(fsys)
	names, err := f.ReadDir(dir)
	if err != nil {
		return 0, false
	}
	min, found := uint64(0), false
	for _, name := range names {
		if !strings.HasPrefix(name, pinPrefix) || !strings.HasSuffix(name, pinSuffix) {
			continue
		}
		data, err := f.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
		if err != nil {
			continue
		}
		if !found || seq < min {
			min, found = seq, true
		}
	}
	return min, found
}

// Prune removes every snapshot and log file whose sequence is below keep.
// Removal failures are ignored — stale generations are garbage, not state.
func Prune(dir string, keep uint64) {
	PruneFS(nil, dir, keep)
}

// PruneFS is Prune over an injectable filesystem.
func PruneFS(fsys FS, dir string, keep uint64) {
	f := orFS(fsys)
	snaps, logs, err := ListStatesFS(f, dir)
	if err != nil {
		return
	}
	for _, seq := range snaps {
		if seq < keep {
			f.Remove(SnapshotPath(dir, seq))
		}
	}
	for _, seq := range logs {
		if seq < keep {
			f.Remove(LogPath(dir, seq))
		}
	}
}

// WriteFileAtomic writes data to path via a temp file in the same directory
// and a rename, so path either holds the old content or all of the new one —
// never a prefix. With fsync, the file is synced before the rename and the
// directory after it, making the swap durable, not just atomic.
func WriteFileAtomic(path string, data []byte, fsync bool) error {
	return WriteFileAtomicFS(nil, path, data, fsync)
}

// WriteFileAtomicFS is WriteFileAtomic over an injectable filesystem.
func WriteFileAtomicFS(fsys FS, path string, data []byte, fsync bool) error {
	f := orFS(fsys)
	dir := filepath.Dir(path)
	tmp, tmpName, err := f.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		f.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if fsync {
		if err := tmp.Sync(); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := f.Rename(tmpName, path); err != nil {
		f.Remove(tmpName)
		return err
	}
	if fsync {
		f.SyncDir(dir)
	}
	return nil
}
