// Package wal is the durability substrate of an evolvefd session: a
// write-ahead log of every mutating session operation plus epoch-aligned
// snapshots of the full incremental state.
//
// The log is a sequence of length-prefixed records, each protected by a
// CRC32 over its payload:
//
//	┌────────────┬────────────┬─────────────────────┐
//	│ len  (u32) │ crc  (u32) │ payload (len bytes) │   little-endian
//	└────────────┴────────────┴─────────────────────┘
//
// One session mutation (an Append, a whole Delete batch, an Update, a
// Define/Accept/Drop, a Compact) is one record, so a record is the atomic
// unit of recovery: replay applies complete records and stops at the first
// torn or corrupt one. Records are buffered in process and written+fsynced
// in groups (group commit); a crash loses at most the un-synced suffix,
// never tears a record into a half-applied mutation.
//
// Snapshots are written at Compact boundaries via temp-file-and-rename, so
// a reader never observes a partial snapshot. Every snapshot seq owns a log
// file of the same seq holding the records after it; Compact records are
// logical (the compaction re-runs on replay), which keeps replay continuous
// across snapshot generations when recovery falls back to an older
// snapshot. Recovery cost is O(snapshot + tail), not O(history).
package wal
