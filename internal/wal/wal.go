package wal

import (
	"fmt"
)

// Log is an append-only record log with group commit: records accumulate in
// an in-process buffer and are written and fsynced together every
// groupCommit records (or on an explicit Flush). A crash loses at most the
// unflushed suffix; it never exposes a half-written record to recovery,
// because recovery stops at the first record whose checksum fails.
//
// A failed write or fsync makes the log sticky-failed: the pages the kernel
// dropped (or never accepted) are unknowable, so retrying over them could
// silently reorder or lose records. Every later Append and Flush returns the
// original error; the owning session rotates to a fresh log generation (via
// a checkpoint) to make durability whole again.
//
// A Log is not safe for concurrent use; the owning session serialises
// mutations already.
type Log struct {
	f       File
	path    string
	buf     []byte
	pending int
	group   int
	noFsync bool
	written int64
	err     error
}

// Create creates a fresh log file at path (which must not exist — log
// sequence numbers are never reused). groupCommit ≤ 1 means every record is
// flushed synchronously; noFsync skips the fsync for tests and benchmarks
// that measure everything but the disk.
func Create(path string, groupCommit int, noFsync bool) (*Log, error) {
	return CreateFS(nil, path, groupCommit, noFsync)
}

// CreateFS is Create over an injectable filesystem (nil means the real one).
func CreateFS(fsys FS, path string, groupCommit int, noFsync bool) (*Log, error) {
	f, err := orFS(fsys).Create(path)
	if err != nil {
		return nil, err
	}
	return newLog(f, path, groupCommit, noFsync), nil
}

// OpenAppend opens an existing log file (creating it if absent, for the
// crash-between-snapshot-and-rotation window) for appending. The caller must
// have truncated any torn tail first (TruncateTorn), or the appended records
// would hide behind it forever.
func OpenAppend(path string, groupCommit int, noFsync bool) (*Log, error) {
	return OpenAppendFS(nil, path, groupCommit, noFsync)
}

// OpenAppendFS is OpenAppend over an injectable filesystem.
func OpenAppendFS(fsys FS, path string, groupCommit int, noFsync bool) (*Log, error) {
	f, err := orFS(fsys).OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return newLog(f, path, groupCommit, noFsync), nil
}

func newLog(f File, path string, groupCommit int, noFsync bool) *Log {
	if groupCommit < 1 {
		groupCommit = 1
	}
	return &Log{f: f, path: path, group: groupCommit, noFsync: noFsync}
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Written returns the bytes appended to this log generation, buffered
// records included — the size the file will have once flushed, used by the
// owning session's size-based rotation policy.
func (l *Log) Written() int64 { return l.written }

// Err returns the sticky failure, if any.
func (l *Log) Err() error { return l.err }

// Append frames payload as one record and buffers it, flushing when the
// group-commit quota is reached. An error means the record's durability is
// unknown and the log is sticky-failed from here on.
func (l *Log) Append(payload []byte) error {
	if l.err != nil {
		return l.err
	}
	before := len(l.buf)
	l.buf = AppendRecord(l.buf, payload)
	l.written += int64(len(l.buf) - before)
	l.pending++
	if l.pending >= l.group {
		return l.Flush()
	}
	return nil
}

// Flush writes and fsyncs every buffered record. A no-op when nothing is
// pending; returns the sticky failure once one occurred, so a crash-window
// Close after a failed group commit cannot masquerade as success.
func (l *Log) Flush() error {
	if l.err != nil {
		return l.err
	}
	if l.pending == 0 {
		return nil
	}
	if _, err := l.f.Write(l.buf); err != nil {
		l.err = fmt.Errorf("wal: write %s: %w", l.path, err)
		return l.err
	}
	l.buf = l.buf[:0]
	l.pending = 0
	if l.noFsync {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		// The kernel may have dropped the dirty pages it failed to sync; a
		// silent retry would report durability the disk never provided.
		l.err = fmt.Errorf("wal: fsync %s: %w", l.path, err)
		return l.err
	}
	return nil
}

// Close flushes pending records and closes the file.
func (l *Log) Close() error {
	flushErr := l.Flush()
	closeErr := l.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// ReadLog reads a log file and splits it into its valid record prefix,
// returning the payloads and the byte length of that prefix. A torn or
// corrupt tail is not an error — valid simply stops short of the file size;
// only I/O failures are.
func ReadLog(path string) (payloads [][]byte, valid int64, size int64, err error) {
	return ReadLogFS(nil, path)
}

// ReadLogFS is ReadLog over an injectable filesystem.
func ReadLogFS(fsys FS, path string) (payloads [][]byte, valid int64, size int64, err error) {
	data, err := orFS(fsys).ReadFile(path)
	if err != nil {
		return nil, 0, 0, err
	}
	p, v := ScanRecords(data)
	return p, int64(v), int64(len(data)), nil
}

// TruncateTorn truncates the log file at path to valid bytes, discarding a
// torn tail so appended records follow the last complete one.
func TruncateTorn(path string, valid int64) error {
	return TruncateTornFS(nil, path, valid)
}

// TruncateTornFS is TruncateTorn over an injectable filesystem.
func TruncateTornFS(fsys FS, path string, valid int64) error {
	return orFS(fsys).Truncate(path, valid)
}
