package wal

import (
	"fmt"
	"os"
)

// Log is an append-only record log with group commit: records accumulate in
// an in-process buffer and are written and fsynced together every
// groupCommit records (or on an explicit Flush). A crash loses at most the
// unflushed suffix; it never exposes a half-written record to recovery,
// because recovery stops at the first record whose checksum fails.
//
// A Log is not safe for concurrent use; the owning session serialises
// mutations already.
type Log struct {
	f       *os.File
	path    string
	buf     []byte
	pending int
	group   int
	noFsync bool
}

// Create creates a fresh log file at path (which must not exist — log
// sequence numbers are never reused). groupCommit ≤ 1 means every record is
// flushed synchronously; noFsync skips the fsync for tests and benchmarks
// that measure everything but the disk.
func Create(path string, groupCommit int, noFsync bool) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return newLog(f, path, groupCommit, noFsync), nil
}

// OpenAppend opens an existing log file (creating it if absent, for the
// crash-between-snapshot-and-rotation window) for appending. The caller must
// have truncated any torn tail first (TruncateTorn), or the appended records
// would hide behind it forever.
func OpenAppend(path string, groupCommit int, noFsync bool) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return newLog(f, path, groupCommit, noFsync), nil
}

func newLog(f *os.File, path string, groupCommit int, noFsync bool) *Log {
	if groupCommit < 1 {
		groupCommit = 1
	}
	return &Log{f: f, path: path, group: groupCommit, noFsync: noFsync}
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Append frames payload as one record and buffers it, flushing when the
// group-commit quota is reached. An error means the record's durability is
// unknown; the owning session must stop logging (a gap would corrupt replay)
// and surface the error.
func (l *Log) Append(payload []byte) error {
	l.buf = AppendRecord(l.buf, payload)
	l.pending++
	if l.pending >= l.group {
		return l.Flush()
	}
	return nil
}

// Flush writes and fsyncs every buffered record. A no-op when nothing is
// pending.
func (l *Log) Flush() error {
	if l.pending == 0 {
		return nil
	}
	if _, err := l.f.Write(l.buf); err != nil {
		return fmt.Errorf("wal: write %s: %w", l.path, err)
	}
	l.buf = l.buf[:0]
	l.pending = 0
	if l.noFsync {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", l.path, err)
	}
	return nil
}

// Close flushes pending records and closes the file.
func (l *Log) Close() error {
	flushErr := l.Flush()
	closeErr := l.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// ReadLog reads a log file and splits it into its valid record prefix,
// returning the payloads and the byte length of that prefix. A torn or
// corrupt tail is not an error — valid simply stops short of the file size;
// only I/O failures are.
func ReadLog(path string) (payloads [][]byte, valid int64, size int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, err
	}
	p, v := ScanRecords(data)
	return p, int64(v), int64(len(data)), nil
}

// TruncateTorn truncates the log file at path to valid bytes, discarding a
// torn tail so appended records follow the last complete one.
func TruncateTorn(path string, valid int64) error {
	return os.Truncate(path, valid)
}
