package wal

import (
	"errors"
	"io/fs"
	"os"
)

// FS abstracts the filesystem operations the durability and replication
// layers perform, so fault-injection tests (see ErrFS) can interpose on
// every write, fsync and read the write-ahead log, the snapshots and a
// follower's tail reads issue. The production implementation is OS.
//
// The surface is deliberately the WAL's needs, not a general VFS: append
// writers, whole-file reads, atomic rename, directory listing. Anything the
// engine cannot survive failing is behind this interface.
type FS interface {
	// Create opens a fresh file for writing; it fails if path exists (log
	// sequence numbers are never reused).
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// CreateTemp creates a temp file in dir for WriteFileAtomic, returning
	// the handle and its name.
	CreateTemp(dir, pattern string) (File, string, error)
	// ReadFile reads the whole file.
	ReadFile(path string) ([]byte, error)
	// ReadDir lists the file names in dir (subdirectories excluded).
	ReadDir(dir string) ([]string, error)
	// Size returns the byte size of path.
	Size(path string) (int64, error)
	// Truncate cuts path to size bytes.
	Truncate(path string, size int64) error
	// Rename atomically replaces newPath with oldPath.
	Rename(oldPath, newPath string) error
	// Remove deletes path.
	Remove(path string) error
	// MkdirAll creates dir and its missing parents.
	MkdirAll(dir string) error
	// SyncDir fsyncs the directory itself, making renames durable.
	SyncDir(dir string) error
}

// File is the writable-handle half of FS.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
}

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) CreateTemp(dir, pattern string) (File, string, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, "", err
	}
	return f, f.Name(), nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) Size(path string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// orFS resolves a possibly-nil FS to the real filesystem, so every entry
// point accepts "nil means OS" without each caller spelling it out.
func orFS(f FS) FS {
	if f == nil {
		return OS
	}
	return f
}

// OrOS is orFS for callers outside the package that hold a possibly-nil FS.
func OrOS(f FS) FS { return orFS(f) }

// IsNotExist reports whether err means the file is absent, for callers that
// treat a missing log or snapshot as state rather than failure.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
