package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/evolvefd/evolvefd/internal/relation"
)

// recordHeader is the fixed framing cost per record: u32 payload length plus
// u32 CRC32-IEEE of the payload, both little-endian.
const recordHeader = 8

// maxRecordLen bounds a single record's payload; anything larger in a length
// field is corruption, not data.
const maxRecordLen = 1 << 30

// AppendRecord frames one payload and appends it to buf.
func AppendRecord(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// NextRecord decodes the record at the front of data. ok is false when the
// bytes do not hold one complete, checksum-valid record — a torn tail and
// bit corruption are indistinguishable by design; both end the log.
func NextRecord(data []byte) (payload []byte, n int, ok bool) {
	if len(data) < recordHeader {
		return nil, 0, false
	}
	l := binary.LittleEndian.Uint32(data)
	if l > maxRecordLen || int(l) > len(data)-recordHeader {
		return nil, 0, false
	}
	crc := binary.LittleEndian.Uint32(data[4:])
	payload = data[recordHeader : recordHeader+int(l)]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, false
	}
	return payload, recordHeader + int(l), true
}

// ScanRecords splits data into its complete, checksum-valid record prefix,
// returning the payloads and the byte length of that prefix. It never fails:
// the first invalid record simply ends the scan, which is exactly the
// recovery rule for a torn log tail.
func ScanRecords(data []byte) (payloads [][]byte, valid int) {
	for {
		p, n, ok := NextRecord(data[valid:])
		if !ok {
			return payloads, valid
		}
		payloads = append(payloads, p)
		valid += n
	}
}

// Op kinds, one per mutating session operation. The typed and string-typed
// DML flavours are distinct ops so replay re-runs exactly the code path the
// live session ran (including cell parsing).
const (
	// OpAppend appends one tuple of typed values.
	OpAppend byte = 1
	// OpAppendStrings appends one tuple of unparsed text cells.
	OpAppendStrings byte = 2
	// OpDelete tombstones a batch of rows.
	OpDelete byte = 3
	// OpUpdate replaces one row with typed values.
	OpUpdate byte = 4
	// OpUpdateStrings replaces one row with unparsed text cells.
	OpUpdateStrings byte = 5
	// OpDefine declares an FD under a label.
	OpDefine byte = 6
	// OpAccept extends a defined FD's antecedent with named attributes.
	OpAccept byte = 7
	// OpDrop removes a defined FD.
	OpDrop byte = 8
	// OpCompact marks a storage compaction. The record is logical — replay
	// re-runs the compaction — which is what keeps replay continuous across
	// snapshot generations.
	OpCompact byte = 9
	// OpCheckpoint seals a log generation without a compaction: the session
	// rotated because the log grew past its size bound, not because storage
	// changed. Replay treats it as a no-op; a tailing follower treats it (like
	// OpCompact) as the seal marker that licenses advancing to the next
	// segment.
	OpCheckpoint byte = 10
)

// SealOp reports whether payload encodes a segment seal marker (OpCompact or
// OpCheckpoint) — the last record of every finished log generation. Callers
// peek this without a full decode while deciding whether a segment is sealed.
func SealOp(payload []byte) bool {
	return len(payload) > 0 && (payload[0] == OpCompact || payload[0] == OpCheckpoint)
}

// CorruptTail classifies the invalid bytes that end a record scan: true
// means a complete-but-invalid record is present (an impossible length or a
// failed checksum over fully-present payload bytes — bit corruption), false
// means the record is merely short (a torn tail, or a write still in
// flight). Recovery treats both the same — the log ends — but a live tailer
// must not: a short tail may still complete, a corrupt one never will.
func CorruptTail(data []byte) bool {
	if len(data) < recordHeader {
		return false
	}
	l := binary.LittleEndian.Uint32(data)
	if l > maxRecordLen {
		return true
	}
	return int(l) <= len(data)-recordHeader
}

// Op is one logged session mutation. Kind selects which of the remaining
// fields carry the operation's arguments.
type Op struct {
	// Kind is one of the Op* constants.
	Kind byte
	// Row is the target row of OpUpdate/OpUpdateStrings.
	Row int
	// Rows is the target batch of OpDelete.
	Rows []int
	// Tuple holds the typed values of OpAppend/OpUpdate.
	Tuple []relation.Value
	// Cells holds the text cells of OpAppendStrings/OpUpdateStrings.
	Cells []string
	// Label names the FD of OpDefine/OpAccept/OpDrop; Spec is OpDefine's
	// dependency text.
	Label, Spec string
	// Names lists the attribute names OpAccept adds to the antecedent.
	Names []string
}

// EncodeOp appends the payload encoding of op to buf. The result is what
// one WAL record carries.
func EncodeOp(buf []byte, op Op) []byte {
	buf = append(buf, op.Kind)
	switch op.Kind {
	case OpAppend, OpUpdate:
		if op.Kind == OpUpdate {
			buf = binary.AppendUvarint(buf, uint64(op.Row))
		}
		buf = binary.AppendUvarint(buf, uint64(len(op.Tuple)))
		for _, v := range op.Tuple {
			buf = relation.AppendValue(buf, v)
		}
	case OpAppendStrings, OpUpdateStrings:
		if op.Kind == OpUpdateStrings {
			buf = binary.AppendUvarint(buf, uint64(op.Row))
		}
		buf = binary.AppendUvarint(buf, uint64(len(op.Cells)))
		for _, c := range op.Cells {
			buf = appendString(buf, c)
		}
	case OpDelete:
		buf = binary.AppendUvarint(buf, uint64(len(op.Rows)))
		for _, row := range op.Rows {
			buf = binary.AppendUvarint(buf, uint64(row))
		}
	case OpDefine:
		buf = appendString(buf, op.Label)
		buf = appendString(buf, op.Spec)
	case OpAccept:
		buf = appendString(buf, op.Label)
		buf = binary.AppendUvarint(buf, uint64(len(op.Names)))
		for _, n := range op.Names {
			buf = appendString(buf, n)
		}
	case OpDrop:
		buf = appendString(buf, op.Label)
	case OpCompact, OpCheckpoint:
	}
	return buf
}

// DecodeOp decodes one record payload. It is strict: unknown kinds,
// truncated fields, outsized counts and trailing garbage are all errors —
// a record that passed its CRC but fails here is corruption the caller must
// surface, not skip.
func DecodeOp(payload []byte) (Op, error) {
	r := &reader{data: payload}
	op := Op{Kind: r.byte()}
	switch op.Kind {
	case OpAppend, OpUpdate:
		if op.Kind == OpUpdate {
			op.Row = r.count("row", 1<<40)
		}
		n := r.count("tuple length", uint64(len(payload)))
		for i := 0; i < n && r.err == nil; i++ {
			op.Tuple = append(op.Tuple, r.value())
		}
	case OpAppendStrings, OpUpdateStrings:
		if op.Kind == OpUpdateStrings {
			op.Row = r.count("row", 1<<40)
		}
		n := r.count("cell count", uint64(len(payload)))
		for i := 0; i < n && r.err == nil; i++ {
			op.Cells = append(op.Cells, r.str())
		}
	case OpDelete:
		n := r.count("delete batch", uint64(len(payload)))
		for i := 0; i < n && r.err == nil; i++ {
			op.Rows = append(op.Rows, r.count("row", 1<<40))
		}
	case OpDefine:
		op.Label = r.str()
		op.Spec = r.str()
	case OpAccept:
		op.Label = r.str()
		n := r.count("name count", uint64(len(payload)))
		for i := 0; i < n && r.err == nil; i++ {
			op.Names = append(op.Names, r.str())
		}
	case OpDrop:
		op.Label = r.str()
	case OpCompact, OpCheckpoint:
	default:
		return Op{}, fmt.Errorf("wal: unknown op kind %d", op.Kind)
	}
	if r.err != nil {
		return Op{}, r.err
	}
	if r.off != len(payload) {
		return Op{}, fmt.Errorf("wal: %d trailing bytes after op %d", len(payload)-r.off, op.Kind)
	}
	return op, nil
}

// reader decodes the wal payload primitives with a sticky error, mirroring
// the relation package's binary reader.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wal: "+format, args...)
	}
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.fail("truncated byte at offset %d", r.off)
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads a non-negative integer bounded by limit — for element counts,
// pass the remaining payload length so no count can demand more elements
// than the bytes that are supposed to encode them.
func (r *reader) count(what string, limit uint64) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > limit {
		r.fail("%s %d exceeds bound %d", what, v, limit)
		return 0
	}
	return int(v)
}

func (r *reader) str() string {
	if r.err != nil {
		return ""
	}
	l := r.uvarint()
	if r.err != nil {
		return ""
	}
	if l > uint64(len(r.data)-r.off) {
		r.fail("string length %d exceeds remaining input", l)
		return ""
	}
	s := string(r.data[r.off : r.off+int(l)])
	r.off += int(l)
	return s
}

func (r *reader) value() relation.Value {
	if r.err != nil {
		return relation.Null
	}
	v, n, err := relation.DecodeValue(r.data[r.off:])
	if err != nil {
		r.err = err
		return relation.Null
	}
	r.off += n
	return v
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}
