// Package replica is the read-replication substrate of evolvefd: the
// machinery a follower session uses to consume a leader's write-ahead log
// directory and stay convergent with it.
//
// The leader's directory (see internal/wal) is a chain of generations: each
// snapshot seq pairs with log seq holding the records after it, and every
// finished log ends in a seal marker (OpCompact when a compaction rotated
// the generation, OpCheckpoint when the log merely grew past its size
// bound). The Tailer walks that chain — decode records in order, cross a
// generation boundary only after consuming its seal marker — which is what
// makes replay deterministic: the follower applies exactly the op sequence
// the leader applied, including the logical compactions, so row ids, epochs
// and discovery borders line up bit for bit.
//
// The tailer's contract with its owner is a three-way classification of why
// progress can stall, because a follower must react differently to each:
//
//   - a short record at the tail with no newer state on disk is an append
//     still in flight — wait and poll again;
//   - a complete-but-invalid record (impossible length, failed checksum,
//     undecodable payload) is corruption — it will never heal, so the owner
//     quarantines the segment and resyncs from a snapshot past it;
//   - a missing or abandoned segment with newer state on disk means the
//     follower fell behind retention — resync from the newest valid
//     snapshot.
//
// Everything here is read-only with respect to the leader's files; the only
// thing a follower writes into the leader's directory is its pin file (see
// wal.WritePin), which retention honours so a live follower's tail is not
// pruned from under it. The facade that owns a Tailer — OpenFollower in the
// root package — adds bootstrap-from-snapshot, bounded retry with backoff
// for transient read errors, and the quarantine/resync/degrade policy.
package replica
