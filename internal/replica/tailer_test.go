package replica

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/evolvefd/evolvefd/internal/wal"
)

// writeLog materialises one log segment from framed ops, optionally sealed
// with an OpCompact marker.
func writeLog(t *testing.T, dir string, seq uint64, seal bool, ops ...wal.Op) {
	t.Helper()
	var buf []byte
	for _, op := range ops {
		buf = wal.AppendRecord(buf, wal.EncodeOp(nil, op))
	}
	if seal {
		buf = wal.AppendRecord(buf, wal.EncodeOp(nil, wal.Op{Kind: wal.OpCompact}))
	}
	if err := os.WriteFile(wal.LogPath(dir, seq), buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func dropOp(label string) wal.Op { return wal.Op{Kind: wal.OpDrop, Label: label} }

func collect(t *testing.T, tl *Tailer) []wal.Op {
	t.Helper()
	var all []wal.Op
	for {
		ops, err := tl.Poll(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(ops) == 0 {
			return all
		}
		all = append(all, ops...)
	}
}

// TestTailerCrossesSealedSegments: the tailer consumes two sealed
// generations and the open head in order, advancing only through seal
// markers.
func TestTailerCrossesSealedSegments(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 1, true, dropOp("a"), dropOp("b"))
	writeLog(t, dir, 2, true, dropOp("c"))
	writeLog(t, dir, 3, false, dropOp("d"))
	tl := NewTailer(nil, dir, 1)
	ops := collect(t, tl)
	var labels []string
	seals := 0
	for _, op := range ops {
		if op.Kind == wal.OpCompact {
			seals++
			continue
		}
		labels = append(labels, op.Label)
	}
	if seals != 2 || len(labels) != 4 {
		t.Fatalf("consumed %d seals, %d ops; want 2 seals, 4 ops", seals, len(labels))
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if labels[i] != want {
			t.Fatalf("op %d = %q, want %q (order broken)", i, labels[i], want)
		}
	}
	if seq, off := tl.Pos(); seq != 3 || off == 0 {
		t.Fatalf("pos %d/%d, want inside segment 3", seq, off)
	}
	records, bytes := tl.Consumed()
	if records != 6 || bytes == 0 {
		t.Fatalf("consumed %d records / %d bytes", records, bytes)
	}
}

// TestTailerWaitsOnShortTail: a half-written record at the head is an
// append in flight — no ops, no error; once the bytes complete, the record
// flows.
func TestTailerWaitsOnShortTail(t *testing.T) {
	dir := t.TempDir()
	full := wal.AppendRecord(nil, wal.EncodeOp(nil, dropOp("a")))
	rec2 := wal.AppendRecord(nil, wal.EncodeOp(nil, dropOp("b")))
	path := wal.LogPath(dir, 1)
	if err := os.WriteFile(path, append(append([]byte{}, full...), rec2[:len(rec2)-3]...), 0o644); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(nil, dir, 1)
	ops, err := tl.Poll(0)
	if err != nil || len(ops) != 1 {
		t.Fatalf("first poll: %d ops, %v; want 1, nil", len(ops), err)
	}
	if ops, err := tl.Poll(0); err != nil || len(ops) != 0 {
		t.Fatalf("short tail: %d ops, %v; want wait", len(ops), err)
	}
	// The in-flight append completes.
	if err := os.WriteFile(path, append(append([]byte{}, full...), rec2...), 0o644); err != nil {
		t.Fatal(err)
	}
	ops, err = tl.Poll(0)
	if err != nil || len(ops) != 1 || ops[0].Label != "b" {
		t.Fatalf("after completion: %+v, %v", ops, err)
	}
}

// TestTailerMissingSegment: a missing segment with nothing newer means the
// leader hasn't created it yet (wait); with newer state on disk it was
// pruned (resync).
func TestTailerMissingSegment(t *testing.T) {
	dir := t.TempDir()
	tl := NewTailer(nil, dir, 1)
	if ops, err := tl.Poll(0); err != nil || len(ops) != 0 {
		t.Fatalf("empty dir: %d ops, %v; want wait", len(ops), err)
	}
	// Newer state appears without our segment: we fell behind retention.
	writeLog(t, dir, 5, false, dropOp("z"))
	if _, err := tl.Poll(0); !errors.Is(err, ErrFellBehind) {
		t.Fatalf("pruned segment: %v, want ErrFellBehind", err)
	}
}

// TestTailerAbandonedSegment: a segment whose seal marker never completed,
// with the leader already on a newer generation, can never be finished —
// the complete records flow, then ErrFellBehind.
func TestTailerAbandonedSegment(t *testing.T) {
	dir := t.TempDir()
	rec := wal.AppendRecord(nil, wal.EncodeOp(nil, dropOp("a")))
	torn := wal.AppendRecord(nil, wal.EncodeOp(nil, wal.Op{Kind: wal.OpCompact}))
	if err := os.WriteFile(wal.LogPath(dir, 1), append(append([]byte{}, rec...), torn[:len(torn)-2]...), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal.SnapshotPath(dir, 2), []byte("placeholder"), 0o644); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(nil, dir, 1)
	ops, err := tl.Poll(0)
	if !errors.Is(err, ErrFellBehind) {
		t.Fatalf("abandoned segment: %v, want ErrFellBehind", err)
	}
	if len(ops) != 1 || ops[0].Label != "a" {
		t.Fatalf("complete prefix not delivered: %+v", ops)
	}
}

// TestTailerCorruption: framing damage and undecodable payloads both
// surface as *CorruptError with the damage position.
func TestTailerCorruption(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 1, false, dropOp("a"), dropOp("b"))
	data, err := os.ReadFile(wal.LogPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	boundary := len(data) / 2
	data[boundary+9] ^= 0x40 // payload bit of the second record
	if err := os.WriteFile(wal.LogPath(dir, 1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(nil, dir, 1)
	ops, err := tl.Poll(0)
	var cerr *CorruptError
	if !errors.As(err, &cerr) {
		t.Fatalf("bit flip: %v, want *CorruptError", err)
	}
	if cerr.Seq != 1 || cerr.Offset != int64(boundary) {
		t.Fatalf("damage located at %d/%d, want 1/%d", cerr.Seq, cerr.Offset, boundary)
	}
	if len(ops) != 1 || ops[0].Label != "a" {
		t.Fatalf("prefix before damage: %+v", ops)
	}

	// A checksum-valid record whose payload is garbage is equally corrupt.
	dir2 := t.TempDir()
	buf := wal.AppendRecord(nil, wal.EncodeOp(nil, dropOp("a")))
	buf = wal.AppendRecord(buf, []byte{0xEE, 0x01, 0x02}) // unknown op kind, valid CRC
	if err := os.WriteFile(wal.LogPath(dir2, 1), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	tl2 := NewTailer(nil, dir2, 1)
	_, err = tl2.Poll(0)
	if !errors.As(err, &cerr) || cerr.Err == nil {
		t.Fatalf("undecodable payload: %v, want *CorruptError carrying the decode failure", err)
	}
}

// TestTailerShrunkSegment: a segment that shrank below a consumed boundary
// was rewritten under us — resync, don't guess.
func TestTailerShrunkSegment(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 1, false, dropOp("a"), dropOp("b"))
	tl := NewTailer(nil, dir, 1)
	if ops, err := tl.Poll(0); err != nil || len(ops) != 2 {
		t.Fatalf("initial consume: %d ops, %v", len(ops), err)
	}
	writeLog(t, dir, 1, false, dropOp("a"))
	if _, err := tl.Poll(0); !errors.Is(err, ErrFellBehind) {
		t.Fatalf("shrunk segment: %v, want ErrFellBehind", err)
	}
}

// TestTailerMaxOps: the batch bound caps one poll without losing position.
func TestTailerMaxOps(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 1, false, dropOp("a"), dropOp("b"), dropOp("c"))
	tl := NewTailer(nil, dir, 1)
	ops, err := tl.Poll(2)
	if err != nil || len(ops) != 2 {
		t.Fatalf("bounded poll: %d ops, %v", len(ops), err)
	}
	ops, err = tl.Poll(2)
	if err != nil || len(ops) != 1 || ops[0].Label != "c" {
		t.Fatalf("continuation: %+v, %v", ops, err)
	}
}

// TestTailerLagAndReset: lag counts the generations and bytes between the
// tail position and the leader's head; Reset repositions for a resync.
func TestTailerLagAndReset(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 1, true, dropOp("a"))
	writeLog(t, dir, 2, true, dropOp("b"))
	writeLog(t, dir, 3, false, dropOp("c"))
	tl := NewTailer(nil, dir, 1)
	segs, bytes, err := tl.Lag()
	if err != nil || segs != 2 || bytes == 0 {
		t.Fatalf("cold lag: %d segments, %d bytes, %v", segs, bytes, err)
	}
	collect(t, tl)
	segs, bytes, err = tl.Lag()
	if err != nil || segs != 0 || bytes != 0 {
		t.Fatalf("caught-up lag: %d segments, %d bytes, %v", segs, bytes, err)
	}
	tl.Reset(3)
	if seq, off := tl.Pos(); seq != 3 || off != 0 {
		t.Fatalf("reset landed at %d/%d", seq, off)
	}
	if ops, err := tl.Poll(0); err != nil || len(ops) != 1 {
		t.Fatalf("poll after reset: %d ops, %v", len(ops), err)
	}
}

// TestTailerRetryableReadError: plain I/O errors pass through unclassified,
// and the same poll succeeds once the fault clears.
func TestTailerRetryableReadError(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 1, false, dropOp("a"))
	efs := wal.NewErrFS(nil)
	flaky := errors.New("simulated transient read error")
	efs.FailReads(filepath.Base(wal.LogPath(dir, 1)), 1, flaky)
	tl := NewTailer(efs, dir, 1)
	if _, err := tl.Poll(0); !errors.Is(err, flaky) {
		t.Fatalf("transient error: %v, want %v", err, flaky)
	}
	if ops, err := tl.Poll(0); err != nil || len(ops) != 1 {
		t.Fatalf("after fault cleared: %d ops, %v", len(ops), err)
	}
}
