package replica

import (
	"errors"
	"fmt"

	"github.com/evolvefd/evolvefd/internal/wal"
)

// ErrFellBehind means the segment the tailer needs is gone or abandoned:
// retention pruned it, or the leader moved to a newer generation without the
// tailed segment's seal marker ever completing. Either way the op stream has
// a hole the tailer cannot cross — the caller must resync from the newest
// valid snapshot instead of waiting.
var ErrFellBehind = errors.New("replica: fell behind the leader's retained log")

// CorruptError means the tailed segment holds a complete record that cannot
// be right: an impossible length, a failed checksum over fully-present
// bytes, or a checksum-valid payload that does not decode. Unlike a short
// tail it will never heal by waiting; the caller should quarantine the
// segment and resync past it.
type CorruptError struct {
	// Seq is the corrupt segment; Offset the byte where the damage starts.
	Seq    uint64
	Offset int64
	// Err carries the decode failure when the record's checksum passed but
	// its payload did not parse; nil for framing-level corruption.
	Err error
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("replica: corrupt record in segment %d at offset %d: %v", e.Seq, e.Offset, e.Err)
	}
	return fmt.Sprintf("replica: corrupt record in segment %d at offset %d", e.Seq, e.Offset)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// Tailer consumes a leader's write-ahead log segments in order, decoding
// each record exactly once and advancing across generation boundaries only
// when it has consumed the seal marker (OpCompact or OpCheckpoint) that
// finishes a segment. It distinguishes the three ways a segment can refuse
// to yield a record — still being written (wait), corrupt (quarantine),
// pruned or abandoned (resync) — because a follower must react differently
// to each.
//
// A Tailer never writes to the leader's directory. It is not safe for
// concurrent use; the owning follower serialises access.
type Tailer struct {
	fs  wal.FS
	dir string
	// seq is the segment being tailed; off the bytes of it consumed so far
	// (always a record boundary).
	seq uint64
	off int64

	records uint64
	bytes   int64
}

// NewTailer positions a tailer at the start of segment seq under the
// leader's dir. fsys nil means the real filesystem.
func NewTailer(fsys wal.FS, dir string, seq uint64) *Tailer {
	return &Tailer{fs: wal.OrOS(fsys), dir: dir, seq: seq}
}

// Pos returns the segment being tailed and the bytes of it consumed.
func (t *Tailer) Pos() (seq uint64, off int64) { return t.seq, t.off }

// Consumed returns the lifetime records and bytes this tailer has decoded,
// across resyncs.
func (t *Tailer) Consumed() (records uint64, bytes int64) { return t.records, t.bytes }

// Reset repositions the tailer at the start of segment seq — the resync
// entry point after ErrFellBehind or a quarantine. Lifetime counters keep
// counting.
func (t *Tailer) Reset(seq uint64) {
	t.seq, t.off = seq, 0
}

// Poll consumes up to max decoded ops (max ≤ 0 means no limit) from the
// tail position. A short return with a nil error means the tailer is caught
// up to the leader's flushed head, or stopped at a generation boundary —
// call Poll again to continue. Errors classify the ways forward progress
// can stall: ErrFellBehind and *CorruptError demand a resync, anything else
// is an I/O error worth retrying.
func (t *Tailer) Poll(max int) ([]wal.Op, error) {
	data, err := t.fs.ReadFile(wal.LogPath(t.dir, t.seq))
	if err != nil {
		if !wal.IsNotExist(err) {
			return nil, err
		}
		// No such segment. If newer state exists the segment was pruned from
		// under us (or we resynced onto a snapshot whose log is gone);
		// otherwise the leader crashed between snapshot and log creation and
		// the segment will appear — wait.
		newer, lerr := t.newerState()
		if lerr != nil {
			return nil, lerr
		}
		if newer {
			return nil, ErrFellBehind
		}
		return nil, nil
	}
	if int64(len(data)) < t.off {
		// The segment shrank below a boundary we already consumed: it was
		// rewritten under us, and what we replayed from it may be fiction.
		return nil, ErrFellBehind
	}
	var ops []wal.Op
	for max <= 0 || len(ops) < max {
		rest := data[t.off:]
		payload, n, ok := wal.NextRecord(rest)
		if !ok {
			if len(rest) == 0 {
				return ops, nil // caught up, segment still open
			}
			if wal.CorruptTail(rest) {
				return ops, &CorruptError{Seq: t.seq, Offset: t.off}
			}
			// A short record: an append still in flight, unless the leader
			// already moved on — then this segment's seal marker never made it
			// and the tail will never complete.
			newer, lerr := t.newerState()
			if lerr != nil {
				return ops, lerr
			}
			if newer {
				return ops, ErrFellBehind
			}
			return ops, nil
		}
		op, derr := wal.DecodeOp(payload)
		if derr != nil {
			// The checksum passed but the payload is not a valid op: the
			// record was corrupt before it was framed. Same remedy as framing
			// corruption.
			return ops, &CorruptError{Seq: t.seq, Offset: t.off, Err: derr}
		}
		t.off += int64(n)
		t.records++
		t.bytes += int64(n)
		ops = append(ops, op)
		if op.Kind == wal.OpCompact || op.Kind == wal.OpCheckpoint {
			// Seal marker: the generation is finished and the next segment
			// carries on. Stop here so the caller replays the marker (a
			// logical compaction) before any ops from the next generation.
			t.seq++
			t.off = 0
			return ops, nil
		}
	}
	return ops, nil
}

// Lag measures the distance to the leader's durable head: how many
// generations ahead the newest on-disk state is, and roughly how many log
// bytes remain unconsumed. It is a read of leader-owned files, so it can
// race a rotation; the numbers are telemetry, not invariants.
func (t *Tailer) Lag() (segments uint64, bytes int64, err error) {
	snaps, logs, err := wal.ListStatesFS(t.fs, t.dir)
	if err != nil {
		return 0, 0, err
	}
	head := t.seq
	if n := len(snaps); n > 0 && snaps[n-1] > head {
		head = snaps[n-1]
	}
	if n := len(logs); n > 0 && logs[n-1] > head {
		head = logs[n-1]
	}
	for seq := t.seq; seq <= head; seq++ {
		size, serr := t.fs.Size(wal.LogPath(t.dir, seq))
		if serr != nil {
			continue
		}
		if seq == t.seq {
			size -= t.off
		}
		if size > 0 {
			bytes += size
		}
	}
	return head - t.seq, bytes, nil
}

// newerState reports whether any snapshot or log newer than the tailed
// segment exists on disk.
func (t *Tailer) newerState() (bool, error) {
	snaps, logs, err := wal.ListStatesFS(t.fs, t.dir)
	if err != nil {
		return false, err
	}
	if n := len(snaps); n > 0 && snaps[n-1] > t.seq {
		return true, nil
	}
	if n := len(logs); n > 0 && logs[n-1] > t.seq {
		return true, nil
	}
	return false, nil
}
