package bench

import (
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"time"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/datasets"
	"github.com/evolvefd/evolvefd/internal/discovery"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
	"github.com/evolvefd/evolvefd/internal/texttable"
)

func init() {
	register(Experiment{
		ID:    "compaction",
		Title: "online compaction: remap-based state carry-over vs rebuild-from-clone",
		Run:   runCompaction,
		RunJSON: func(cfg Config) (any, error) {
			rows, frac := compactionParams(cfg)
			return RunCompaction(cfg, rows, frac)
		},
		Render: func(v any, w io.Writer) error {
			res, ok := v.(CompactionResult)
			if !ok {
				return fmt.Errorf("bench: compaction render got %T", v)
			}
			return renderCompaction(res, w)
		},
	})
}

// CompactionResult measures one compaction run: a relation loses a fraction
// of its rows to deletes, and the accumulated tombstones are reclaimed two
// ways — once by Compact + remap (tracked cluster maps translated, measure
// stamps preserved, discovery witnesses remapped) and once by the
// rebuild-from-clone route (Clone the live rows, fresh incremental counter,
// recomputed measures, full rediscovery), with a differential asserting the
// two land on identical state.
type CompactionResult struct {
	Dataset string
	// Rows is the initial instance size; Deleted the tombstones accumulated
	// before compaction; FinalLive the live rows either route keeps.
	Rows, Deleted, FinalLive int
	// TombstoneRatio is Deleted / Rows at compaction time.
	TombstoneRatio float64
	// NumFDs counts the checked dependencies; CoverSize the discovered
	// minimal cover carried across the boundary.
	NumFDs, CoverSize int
	// Moved counts the live rows whose ids the remap rewrote; Reclaimed the
	// tombstones squeezed out; ReclaimedBytes the storage returned.
	Moved, Reclaimed int
	ReclaimedBytes   int64
	// TombstonedScan and CompactedScan time an identical count sweep (fresh
	// partition folds over every column and the FD attribute sets) before
	// and after compaction; ScanSpeedup is their ratio — the steady-state
	// return on squeezing the dead rows out.
	TombstonedScan, CompactedScan time.Duration
	ScanSpeedup                   float64
	// Remap is Compact + tracked-index remap + witness remap + re-serving
	// every measure; Rebuild is Clone + fresh counter + recomputed measures
	// + full rediscovery. Speedup is Rebuild / Remap.
	Remap, Rebuild time.Duration
	Speedup        float64
	// EpochSurvivals counts measures served from cache across the epoch
	// boundary (want NumFDs: compaction preserves every stamp);
	// RecomputedAfter counts measures the compaction forced to recompute
	// (want 0).
	EpochSurvivals  uint64
	RecomputedAfter uint64
	// Mismatches lists any state divergence across the boundary or against
	// the rebuilt clone — measures, repair suggestions, or the minimal
	// cover; must stay empty.
	Mismatches []string
}

// compactionParams scales the experiment: 50k initial rows at default scale,
// 40% of them deleted before the compaction.
func compactionParams(cfg Config) (rows int, frac float64) {
	rows = int(50000 * cfg.scale() / DefaultScale)
	if rows < 1500 {
		rows = 1500
	}
	return rows, 0.4
}

// compactionScanSets are the attribute sets of the steady-state count sweep:
// every single column plus the planted FDs' antecedent and joint sets.
func compactionScanSets(r *relation.Relation, fds []core.FD) []bitset.Set {
	var sets []bitset.Set
	for c := 0; c < r.NumCols(); c++ {
		sets = append(sets, bitset.New(c))
	}
	for _, fd := range fds {
		sets = append(sets, fd.X, fd.Attrs())
	}
	return sets
}

// timeCompactionScans folds every scan set from scratch (a fresh PLICounter
// per repetition, so no memoised partition hides the storage layout) and
// returns the fastest of reps sweeps — the steady-state throughput, robust
// to scheduler noise and cold-allocation jitter. With tombstones present
// every fold walks the full physical extent and branches per row; compacted
// storage walks exactly the live rows over 40%-smaller arrays.
func timeCompactionScans(r *relation.Relation, sets []bitset.Set, reps int) time.Duration {
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		fresh := pli.NewPLICounter(r)
		for _, s := range sets {
			fresh.Count(s)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// firstRepair finds the best-first repair of fd over counter (bounded to two
// added attributes), returning the added attribute sets and repaired
// measures — row-id-free state that must be identical across the boundary.
func firstRepair(counter pli.SearchCounter, fd core.FD) ([]bitset.Set, []core.Measures) {
	res := core.FindRepairs(counter, fd, core.RepairOptions{FirstOnly: true, MaxAdded: 2})
	var added []bitset.Set
	var ms []core.Measures
	for _, rep := range res.Repairs {
		added = append(added, rep.Added)
		ms = append(ms, rep.Measures)
	}
	return added, ms
}

// RunCompaction deletes frac·rows random tuples from an initially rows-row
// synthetic instance, then reclaims the tombstones via remap-based
// compaction and via rebuild-from-clone, timing both and checking that
// measures, repair suggestions and the minimal FD cover are identical before
// the compaction, after it, and on the rebuilt clone.
func RunCompaction(cfg Config, rows int, frac float64) (CompactionResult, error) {
	const (
		maxLHS   = 2
		scanReps = 5
	)
	res := CompactionResult{Dataset: "synthetic", Rows: rows}
	rel := datasets.Synthesize("compaction", rows, cfg.seed(), incrementalSpecs())
	fdSpecs := incrementalFDSpecs()
	res.NumFDs = len(fdSpecs)
	fds := make([]core.FD, len(fdSpecs))
	var err error
	for i, spec := range fdSpecs {
		if fds[i], err = core.ParseFD(rel.Schema(), fmt.Sprintf("F%d", i+1), spec); err != nil {
			return res, err
		}
	}
	counter := pli.NewIncrementalCounter(rel)
	mc := core.NewMeasureCache(counter)
	opts := discovery.Options{MaxLHS: maxLHS}
	disc := discovery.NewIncrementalDiscoverer(counter, opts)
	for _, fd := range fds {
		mc.Compute(fd)
	}

	// Accumulate tombstones: delete frac·rows random tuples in batches
	// through the counter, so the tracked state shrinks incrementally like a
	// live session's would.
	rng := rand.New(rand.NewSource(cfg.seed() + 1))
	doomed := rng.Perm(rows)[:int(frac*float64(rows))]
	for len(doomed) > 0 {
		batch := min(1000, len(doomed))
		if err := counter.Delete(doomed[:batch]...); err != nil {
			return res, err
		}
		doomed = doomed[batch:]
	}
	res.Deleted = rel.NumDeleted()
	res.TombstoneRatio = rel.MemStats().TombstoneRatio
	res.ReclaimedBytes = rel.MemStats().ReclaimableBytes

	// Tombstoned checkpoint: the state every route must preserve.
	tombMeasures := make([]core.Measures, len(fds))
	for i, fd := range fds {
		tombMeasures[i] = mc.Compute(fd)
	}
	tombCover := disc.Cover()
	res.CoverSize = len(tombCover)
	tombAdded, tombRepairMs := firstRepair(counter, fds[1]) // district → area, violated
	res.TombstonedScan = timeCompactionScans(rel, compactionScanSets(rel, fds), scanReps)

	// Route 1 — rebuild from a clone: what reclaiming storage costs when the
	// incremental state cannot cross the boundary. Clone compacts the live
	// rows into a dense instance; every counter, measure and the discovered
	// cover are rebuilt from scratch on top of it.
	start := time.Now()
	clone := rel.Clone("compaction-rebuild")
	cloneCounter := pli.NewIncrementalCounter(clone)
	cloneCache := core.NewMeasureCache(cloneCounter)
	cloneMeasures := make([]core.Measures, len(fds))
	for i, fd := range fds {
		cloneMeasures[i] = cloneCache.Compute(fd)
	}
	cloneDisc := discovery.NewIncrementalDiscoverer(cloneCounter, opts)
	cloneCover := cloneDisc.Cover()
	res.Rebuild = time.Since(start)

	// Route 2 — compact and remap: tombstones squeezed out in place, tracked
	// cluster maps translated through the remap table, witnesses remapped,
	// measures re-served from their preserved stamps.
	_, recomputed0 := mc.Stats()
	start = time.Now()
	m := counter.Compact()
	if m == nil {
		return res, fmt.Errorf("compaction: Compact returned nil with %d tombstones", res.Deleted)
	}
	disc.OnCompact(m)
	afterMeasures := make([]core.Measures, len(fds))
	for i, fd := range fds {
		afterMeasures[i] = mc.Compute(fd)
	}
	afterCover := disc.Cover()
	res.Remap = time.Since(start)
	res.Moved = m.Moved()
	res.Reclaimed = m.Reclaimed()
	res.FinalLive = rel.LiveRows()
	if res.Remap > 0 {
		res.Speedup = float64(res.Rebuild) / float64(res.Remap)
	}
	res.EpochSurvivals = mc.EpochSurvivals()
	_, recomputed1 := mc.Stats()
	res.RecomputedAfter = recomputed1 - recomputed0

	// Differential: tombstoned state == post-compaction state == rebuilt
	// clone state, for measures, the minimal cover, and repair suggestions.
	for i, fd := range fds {
		if afterMeasures[i] != tombMeasures[i] {
			res.Mismatches = append(res.Mismatches, fmt.Sprintf(
				"%s: measures %v before compaction, %v after", fd.Label, tombMeasures[i], afterMeasures[i]))
		}
		if cloneMeasures[i] != tombMeasures[i] {
			res.Mismatches = append(res.Mismatches, fmt.Sprintf(
				"%s: measures %v before compaction, %v on rebuilt clone", fd.Label, tombMeasures[i], cloneMeasures[i]))
		}
	}
	if d := diffCovers(tombCover, afterCover); d != "" {
		res.Mismatches = append(res.Mismatches, "cover across compaction: "+d)
	}
	if d := diffCovers(tombCover, cloneCover); d != "" {
		res.Mismatches = append(res.Mismatches, "cover on rebuilt clone: "+d)
	}
	if res.RecomputedAfter != 0 {
		res.Mismatches = append(res.Mismatches, fmt.Sprintf(
			"compaction forced %d measure recomputations; stamps not preserved", res.RecomputedAfter))
	}
	afterAdded, afterRepairMs := firstRepair(counter, fds[1])
	if !reflect.DeepEqual(tombAdded, afterAdded) || !reflect.DeepEqual(tombRepairMs, afterRepairMs) {
		res.Mismatches = append(res.Mismatches, fmt.Sprintf(
			"repair of %s diverged across compaction: %v/%v vs %v/%v",
			fds[1].Label, tombAdded, tombRepairMs, afterAdded, afterRepairMs))
	}
	cloneAdded, cloneRepairMs := firstRepair(cloneCounter, fds[1])
	if !reflect.DeepEqual(tombAdded, cloneAdded) || !reflect.DeepEqual(tombRepairMs, cloneRepairMs) {
		res.Mismatches = append(res.Mismatches, fmt.Sprintf(
			"repair of %s diverged on rebuilt clone: %v/%v vs %v/%v",
			fds[1].Label, tombAdded, tombRepairMs, cloneAdded, cloneRepairMs))
	}

	// Steady-state: the same count sweep over the compacted storage.
	res.CompactedScan = timeCompactionScans(rel, compactionScanSets(rel, fds), scanReps)
	if res.CompactedScan > 0 {
		res.ScanSpeedup = float64(res.TombstonedScan) / float64(res.CompactedScan)
	}
	return res, nil
}

// renderCompaction writes the experiment's report table and shape notes.
func renderCompaction(res CompactionResult, w io.Writer) error {
	tab := texttable.New(
		"remap-based compaction vs rebuild-from-clone",
		"dataset", "rows", "deleted", "final live", "cover",
		"remap", "rebuild", "speedup", "scan before", "scan after", "scan speedup",
	).AlignRight(1, 2, 3, 7, 10)
	tab.Add(res.Dataset,
		fmt.Sprintf("%d", res.Rows),
		fmt.Sprintf("%d (%.0f%%)", res.Deleted, 100*res.TombstoneRatio),
		fmt.Sprintf("%d", res.FinalLive),
		fmt.Sprintf("%d FDs", res.CoverSize),
		fmtDuration(res.Remap),
		fmtDuration(res.Rebuild),
		fmt.Sprintf("%.1f×", res.Speedup),
		fmtDuration(res.TombstonedScan),
		fmtDuration(res.CompactedScan),
		fmt.Sprintf("%.2f×", res.ScanSpeedup))
	if _, err := io.WriteString(w, tab.Render()); err != nil {
		return err
	}
	fmt.Fprintf(w, "state carry-over: %d row ids remapped, %d/%d measures crossed the epoch in cache, %d recomputed\n",
		res.Moved, res.EpochSurvivals, res.NumFDs, res.RecomputedAfter)
	for _, m := range res.Mismatches {
		fmt.Fprintln(w, "STATE MISMATCH:", m)
	}
	_, err := fmt.Fprintln(w, `shape check: the remap side pays one bulk column rewrite plus O(moved rows)
per tracked set; the rebuild side re-interns every live value, refolds every
tracked set and re-searches the discovery lattice. The differential lines
must list no mismatches, and the post-compaction scan must beat the
tombstoned one.`)
	return err
}

// runCompaction renders the experiment at the configured scale.
func runCompaction(cfg Config, w io.Writer) error {
	rows, frac := compactionParams(cfg)
	res, err := RunCompaction(cfg, rows, frac)
	if err != nil {
		return err
	}
	return renderCompaction(res, w)
}
