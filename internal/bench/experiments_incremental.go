package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/datasets"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
	"github.com/evolvefd/evolvefd/internal/texttable"
	"github.com/evolvefd/evolvefd/internal/tpch"
)

func init() {
	register(Experiment{
		ID:    "incremental",
		Title: "streaming appends: incremental re-check vs full PLI rebuild",
		Run:   runIncremental,
	})
}

// IncrementalResult measures one streaming-appends run: a relation grows by
// `Batches` batches of `Batch` tuples, and after every batch all FDs are
// re-checked twice — once through the incremental session state (fold the
// batch into kept-alive cluster maps, reuse generation-stamped measures) and
// once from scratch (fresh PLICounter, rebuild every partition).
type IncrementalResult struct {
	Dataset string
	// Rows is the initial instance size; Appended is the total number of
	// streamed tuples (Batch × Batches, bounded by the generated data).
	Rows, Appended, Batch, Batches int
	// NumFDs counts the checked dependencies.
	NumFDs int
	// Cold is the initial incremental check (builds the tracked indexes).
	Cold time.Duration
	// Incremental is the total re-check time across batches via the
	// incremental path; Rebuild is the same re-checks from scratch.
	Incremental, Rebuild time.Duration
	// Speedup is Rebuild / Incremental.
	Speedup float64
	// Reused and Recomputed are the measure-cache stats over the whole run.
	Reused, Recomputed uint64
	// Mismatches lists any FD whose incremental measures diverged from the
	// from-scratch measures — the differential check; must stay empty.
	Mismatches []string
}

// incrementalSpecs plants a synthetic schema with known exact and violated
// FDs: area is a function of (region, district), phone of city, street of
// (zip, city). Low-cardinality independent columns keep appended batches
// realistic: most appended tuples land in existing clusters, some open new
// ones.
func incrementalSpecs() []datasets.ColumnSpec {
	return []datasets.ColumnSpec{
		{Name: "region", Card: 20},
		{Name: "district", Card: 300},
		{Name: "area", Card: 250, DerivedFrom: []int{0, 1}},
		{Name: "city", Card: 50},
		{Name: "phone", Card: 40, DerivedFrom: []int{3}},
		{Name: "zip", Card: 500},
		{Name: "street", Card: 400, DerivedFrom: []int{5, 3}},
	}
}

// incrementalFDSpecs are the checked dependencies: a mix of exact FDs
// (which stay exact as the data grows) and violated ones, so the re-check
// exercises both cache reuse and recomputation.
func incrementalFDSpecs() []string {
	return []string{
		"region, district -> area", // exact by construction
		"district -> area",         // violated (area also depends on region)
		"city -> phone",            // exact; saturates quickly → pure cache hits
		"zip -> street",            // violated (street also depends on city)
		"zip, city -> street",      // exact by construction
	}
}

// RunIncrementalSynthetic streams `batches` batches of `batch` rows into an
// initially `rows`-row synthetic relation and measures incremental re-check
// against full rebuild.
func RunIncrementalSynthetic(cfg Config, rows, batch, batches int) (IncrementalResult, error) {
	full := datasets.Synthesize("stream", rows+batch*batches, cfg.seed(), incrementalSpecs())
	return runIncrementalStream("synthetic", full, rows, batch, batches, incrementalFDSpecs())
}

// RunIncrementalTPCH streams the tail of one TPC-H table into a head-built
// instance, re-checking the table's Table 5 FD after each batch.
func RunIncrementalTPCH(cfg Config, table string, batches int) (IncrementalResult, error) {
	full := tpch.GenerateTable(table, cfg.sf(), cfg.seed())
	// Stream the last ~10% of the table in `batches` batches.
	appended := full.NumRows() / 10
	if appended < batches {
		appended = batches
	}
	batch := appended / batches
	initial := full.NumRows() - batch*batches
	if initial < 1 {
		return IncrementalResult{}, fmt.Errorf("bench: table %s too small to stream", table)
	}
	return runIncrementalStream("tpch."+table, full, initial, batch, batches,
		[]string{tpch.Table5FDs()[table]})
}

// runIncrementalStream is the shared engine: build the initial instance from
// the first initialRows rows of full, then append the rest batch by batch,
// timing incremental re-checks against from-scratch rebuilds and comparing
// their measures.
func runIncrementalStream(name string, full *relation.Relation, initialRows, batch, batches int,
	fdSpecs []string) (IncrementalResult, error) {
	res := IncrementalResult{
		Dataset: name, Rows: initialRows, Batch: batch, Batches: batches, NumFDs: len(fdSpecs),
	}
	initial, err := full.Head(name, initialRows)
	if err != nil {
		return res, err
	}
	fds := make([]core.FD, len(fdSpecs))
	for i, spec := range fdSpecs {
		if fds[i], err = core.ParseFD(full.Schema(), fmt.Sprintf("F%d", i+1), spec); err != nil {
			return res, err
		}
	}

	counter := pli.NewIncrementalCounter(initial)
	mc := core.NewMeasureCache(counter)
	start := time.Now()
	for _, fd := range fds {
		mc.Compute(fd)
	}
	res.Cold = time.Since(start)

	inc := make([]core.Measures, len(fds))
	row := initialRows
	for b := 0; b < batches; b++ {
		for i := 0; i < batch && row < full.NumRows(); i++ {
			if err := initial.Append(full.Row(row)...); err != nil {
				return res, err
			}
			row++
		}

		start = time.Now()
		for i, fd := range fds {
			inc[i] = mc.Compute(fd)
		}
		res.Incremental += time.Since(start)

		start = time.Now()
		fresh := pli.NewPLICounter(initial)
		for i, fd := range fds {
			if m := core.Compute(fresh, fd); m != inc[i] {
				res.Mismatches = append(res.Mismatches, fmt.Sprintf(
					"batch %d %s: incremental %v, scratch %v", b, fds[i].Label, inc[i], m))
			}
		}
		res.Rebuild += time.Since(start)
	}
	res.Appended = row - initialRows
	res.Reused, res.Recomputed = mc.Stats()
	if res.Incremental > 0 {
		res.Speedup = float64(res.Rebuild) / float64(res.Incremental)
	}
	return res, nil
}

// runIncremental renders the streaming experiment: the synthetic relation at
// the configured scale plus two TPC-H tables, reporting per-dataset totals
// and speedups. This is the workload class the paper's periodic-validation
// story implies: the designer re-checks the same FDs every time the data
// grows, and only the delta should cost.
func runIncremental(cfg Config, w io.Writer) error {
	rows := int(50000 * cfg.scale() / DefaultScale)
	if rows < 1000 {
		rows = 1000
	}
	batch := rows / 500
	if batch < 10 {
		batch = 10
	}
	results := make([]IncrementalResult, 0, 3)
	syn, err := RunIncrementalSynthetic(cfg, rows, batch, 5)
	if err != nil {
		return err
	}
	results = append(results, syn)
	for _, table := range []string{"customer", "orders"} {
		r, err := RunIncrementalTPCH(cfg, table, 5)
		if err != nil {
			return err
		}
		results = append(results, r)
	}

	tab := texttable.New(
		fmt.Sprintf("incremental re-check vs full PLI rebuild (%d append batches per dataset)", 5),
		"dataset", "rows", "appended", "FDs", "cold check", "incremental", "full rebuild",
		"speedup", "reused/recomputed",
	).AlignRight(1, 2, 3, 7)
	for _, r := range results {
		tab.Add(r.Dataset,
			fmt.Sprintf("%d", r.Rows),
			fmt.Sprintf("%d", r.Appended),
			fmt.Sprintf("%d", r.NumFDs),
			fmtDuration(r.Cold),
			fmtDuration(r.Incremental),
			fmtDuration(r.Rebuild),
			fmt.Sprintf("%.1f×", r.Speedup),
			fmt.Sprintf("%d/%d", r.Reused, r.Recomputed))
	}
	if _, err := io.WriteString(w, tab.Render()); err != nil {
		return err
	}
	for _, r := range results {
		for _, m := range r.Mismatches {
			fmt.Fprintln(w, "MEASURE MISMATCH:", m)
		}
	}
	_, err = fmt.Fprintln(w, `shape check: incremental re-check scales with the batch, full rebuild with
the relation; the gap widens with instance size (the differential column
must list no mismatches — incremental and scratch measures agree exactly).`)
	return err
}
