package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/texttable"
	"github.com/evolvefd/evolvefd/internal/tpch"
)

func init() {
	register(Experiment{
		ID:    "table4",
		Title: "Table 4: TPC-H databases overview (arity, cardinality)",
		Run:   runTable4,
	})
	register(Experiment{
		ID:    "table5",
		Title: "Table 5: FindFDRepairs processing times on TPC-H (find all repairs)",
		Run:   runTable5,
	})
	register(Experiment{
		ID:    "figure3",
		Title: "Figure 3: processing time vs attributes / tuples / size (TPC-H)",
		Run:   runFigure3,
	})
}

// paperTable4 holds the printed cardinalities for the measured-vs-paper
// columns.
var paperTable4 = map[string][3]int{
	"customer": {15000, 30043, 150249},
	"lineitem": {601045, 1196929, 6005428},
	"nation":   {25, 25, 25},
	"orders":   {149622, 301174, 1493724},
	"part":     {20000, 40098, 199756},
	"partsupp": {80533, 160611, 779546},
	"region":   {5, 5, 5},
	"supplier": {1000, 2000, 10000},
}

// paperTable5 holds the printed processing times for the 100MB/250MB/1GB
// runs.
var paperTable5 = map[string][3]string{
	"customer": {"1s 276ms", "2s 873ms", "20s 657ms"},
	"lineitem": {"9m 42s 708ms", "21m 20s 599ms", "1h 59m 19s 884ms"},
	"nation":   {"5ms", "5ms", "6ms"},
	"orders":   {"8s 621ms", "19s 726ms", "1m 57s 103ms"},
	"part":     {"1s 3ms", "1s 983ms", "18s 561ms"},
	"partsupp": {"4s 450ms", "10s 570ms", "1m 3s 909ms"},
	"region":   {"3ms", "3ms", "3ms"},
	"supplier": {"74ms", "141ms", "717ms"},
}

func runTable4(cfg Config, w io.Writer) error {
	sfs := []float64{tpch.SF100MB * cfg.sf() * 10, tpch.SF250MB * cfg.sf() * 10, tpch.SF1GB * cfg.sf() * 10}
	// cfg.sf() defaults to 0.01, so the three columns default to SF
	// {0.01, 0.025, 0.1} — the same 1:2.5:10 ratios as the paper's
	// 100MB:250MB:1GB. At cfg.SF = 0.1 they are exactly the paper's sizes.
	tab := texttable.New(
		fmt.Sprintf("TPC-H overview at SF ratios 1 : 2.5 : 10 (base SF %g; paper column = 100MB/250MB/1GB cardinality)", sfs[0]),
		"Table", "arity", "card A", "card B", "card C", "paper 100MB", "paper 250MB", "paper 1GB",
	).AlignRight(1, 2, 3, 4, 5, 6, 7)
	for _, name := range tpch.TableNames {
		r := tpch.GenerateTable(name, sfs[0], cfg.seed())
		p := paperTable4[name]
		tab.Add(name,
			fmt.Sprintf("%d", r.NumCols()),
			fmt.Sprintf("%d", tpch.Rows(name, sfs[0])),
			fmt.Sprintf("%d", tpch.Rows(name, sfs[1])),
			fmt.Sprintf("%d", tpch.Rows(name, sfs[2])),
			fmt.Sprintf("%d", p[0]), fmt.Sprintf("%d", p[1]), fmt.Sprintf("%d", p[2]))
	}
	_, err := io.WriteString(w, tab.Render())
	return err
}

// Table5Row is one measured row of the Table 5 reproduction, shared with
// Figure 3 which re-plots the same runs.
type Table5Row struct {
	Table   string
	Arity   int
	Rows    int
	Repairs int
	Elapsed time.Duration
}

// RunTable5Measurements generates each TPC-H table at the configured SF and
// finds all repairs of its Table 5 FD, exactly as the paper describes ("by
// processing time we mean the time it took for the algorithm to find all
// possible repairs for the given FD").
func RunTable5Measurements(cfg Config) ([]Table5Row, error) {
	maxAdded := cfg.MaxAdded
	if maxAdded <= 0 {
		maxAdded = 3 // bounds the find-all frontier; see EXPERIMENTS.md
	}
	var out []Table5Row
	for _, name := range tpch.TableNames {
		r := tpch.GenerateTable(name, cfg.sf(), cfg.seed())
		fd, err := core.ParseFD(r.Schema(), name, tpch.Table5FDs()[name])
		if err != nil {
			return nil, err
		}
		counter := pli.NewPLICounter(r)
		start := time.Now()
		res := core.FindRepairs(counter, fd, core.RepairOptions{
			MaxAdded:   maxAdded,
			Candidates: core.CandidateOptions{Parallelism: cfg.Parallelism},
		})
		out = append(out, Table5Row{
			Table:   name,
			Arity:   r.NumCols(),
			Rows:    r.NumRows(),
			Repairs: len(res.Repairs),
			Elapsed: time.Since(start),
		})
	}
	return out, nil
}

func runTable5(cfg Config, w io.Writer) error {
	rows, err := RunTable5Measurements(cfg)
	if err != nil {
		return err
	}
	tab := texttable.New(
		fmt.Sprintf("FindFDRepairs (find all) at SF %g — paper columns are its 100MB/250MB/1GB times", cfg.sf()),
		"Table", "FD", "rows", "repairs", "time (measured)", "paper 100MB", "paper 250MB", "paper 1GB",
	).AlignRight(2, 3, 4)
	for _, row := range rows {
		p := paperTable5[row.Table]
		tab.Add(row.Table, tpch.Table5FDs()[row.Table],
			fmt.Sprintf("%d", row.Rows),
			fmt.Sprintf("%d", row.Repairs),
			fmtDuration(row.Elapsed),
			p[0], p[1], p[2])
	}
	if _, err := io.WriteString(w, tab.Render()); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, `shape check: lineitem (16 attrs, largest) dominates; region/nation are
milliseconds; orders/partsupp sit between — the same ordering as the paper.`)
	return err
}

func runFigure3(cfg Config, w io.Writer) error {
	rows, err := RunTable5Measurements(cfg)
	if err != nil {
		return err
	}
	// (a) time vs number of attributes.
	byAttrs := append([]Table5Row(nil), rows...)
	sort.Slice(byAttrs, func(i, j int) bool { return byAttrs[i].Arity < byAttrs[j].Arity })
	a := texttable.New("(a) processing time by number of attributes",
		"attributes", "table", "time").AlignRight(0)
	for _, r := range byAttrs {
		a.Add(fmt.Sprintf("%d", r.Arity), r.Table, fmtDuration(r.Elapsed))
	}
	// (b) time vs number of tuples.
	byRows := append([]Table5Row(nil), rows...)
	sort.Slice(byRows, func(i, j int) bool { return byRows[i].Rows < byRows[j].Rows })
	b := texttable.New("\n(b) processing time by number of tuples",
		"tuples", "table", "time").AlignRight(0)
	for _, r := range byRows {
		b.Add(fmt.Sprintf("%d", r.Rows), r.Table, fmtDuration(r.Elapsed))
	}
	// (c) time vs overall dimension (cells = rows × attributes).
	byCells := append([]Table5Row(nil), rows...)
	sort.Slice(byCells, func(i, j int) bool {
		return byCells[i].Rows*byCells[i].Arity < byCells[j].Rows*byCells[j].Arity
	})
	c := texttable.New("\n(c) processing time by table dimension (rows × attributes)",
		"cells", "table", "time").AlignRight(0)
	for _, r := range byCells {
		c.Add(fmt.Sprintf("%d", r.Rows*r.Arity), r.Table, fmtDuration(r.Elapsed))
	}
	for _, tab := range []*texttable.Table{a, b, c} {
		if _, err := io.WriteString(w, tab.Render()); err != nil {
			return err
		}
	}
	return nil
}
