package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/datasets"
	"github.com/evolvefd/evolvefd/internal/discovery"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/texttable"
)

func init() {
	register(Experiment{
		ID:    "discoverchurn",
		Title: "mixed DML stream: incremental FD-cover maintenance vs per-batch full rediscovery",
		Run:   runDiscoverChurn,
		RunJSON: func(cfg Config) (any, error) {
			rows, batchOps, batches := churnParams(cfg)
			return RunDiscoverChurn(cfg, rows, batchOps, batches)
		},
		Render: func(v any, w io.Writer) error {
			res, ok := v.(DiscoverChurnResult)
			if !ok {
				return fmt.Errorf("bench: discoverchurn render got %T", v)
			}
			return renderDiscoverChurn(res, w)
		},
	})
}

// DiscoverChurnResult measures one mixed-DML discovery run: a relation takes
// `Batches` batches of `BatchOps` operations drawn from the churn mix
// (≈40% appends, 30% deletes, 30% updates), and after every batch the
// minimal exact-FD cover is produced twice — once by the incremental
// discoverer (stamp-revalidated cover, witness-checked invalid border) and
// once by a full levelwise rediscovery over a fresh tombstone-aware counter.
type DiscoverChurnResult struct {
	Dataset string
	// Rows is the initial instance size; Appends/Deletes/Updates count the
	// streamed operations by kind.
	Rows, Appends, Deletes, Updates, BatchOps, Batches int
	// MaxLHS bounds discovered antecedents.
	MaxLHS int
	// FinalLive is the live tuple count after the whole stream; CoverSize is
	// the final minimal cover's size.
	FinalLive, CoverSize int
	// Seed is the one-off cost of the initial levelwise pass plus witness
	// capture.
	Seed time.Duration
	// Incremental is the total per-batch cover refresh time (DML application
	// included); Rediscover is a full MinimalFDs pass per batch.
	Incremental, Rediscover time.Duration
	// Speedup is Rediscover / Incremental.
	Speedup float64
	// Stats is the discoverer's cumulative maintenance effort — the evidence
	// that per-batch work tracked the disturbed lattice region.
	Stats discovery.IncStats
	// Mismatches lists any divergence between the maintained cover and a
	// fresh rediscovery at a checkpoint, or against a compacted clone of the
	// live rows at the end — the differential check; must stay empty.
	Mismatches []string
}

// diffCovers reports the first disagreement between two sorted FD covers,
// or "" when they are identical.
func diffCovers(inc, full []core.FD) string {
	if len(inc) != len(full) {
		return fmt.Sprintf("cover sizes differ: incremental %d, rediscovery %d", len(inc), len(full))
	}
	for i := range inc {
		if !inc[i].X.Equal(full[i].X) || !inc[i].Y.Equal(full[i].Y) {
			return fmt.Sprintf("cover FD %d differs: incremental %v, rediscovery %v", i, inc[i], full[i])
		}
	}
	return ""
}

// RunDiscoverChurn streams `batches` batches of `batchOps` mixed operations
// into an initially `rows`-row synthetic relation (the churn experiment's
// schema, so planted FDs survive while coincidental ones flip) and measures
// incremental cover maintenance against full per-batch rediscovery, with a
// differential cover comparison at every checkpoint.
func RunDiscoverChurn(cfg Config, rows, batchOps, batches int) (DiscoverChurnResult, error) {
	const maxLHS = 2
	res := DiscoverChurnResult{
		Dataset: "synthetic", Rows: rows, BatchOps: batchOps, Batches: batches, MaxLHS: maxLHS,
	}
	poolSize := rows + 2*batchOps*batches
	full := datasets.Synthesize("discoverchurn", poolSize, cfg.seed(), incrementalSpecs())
	initial, err := full.Head("discoverchurn", rows)
	if err != nil {
		return res, err
	}
	opts := discovery.Options{MaxLHS: maxLHS}

	counter := pli.NewIncrementalCounter(initial)
	start := time.Now()
	disc := discovery.NewIncrementalDiscoverer(counter, opts)
	res.Seed = time.Since(start)

	rng := rand.New(rand.NewSource(cfg.seed() + 1))
	live := make([]int, rows)
	for i := range live {
		live[i] = i
	}
	pool := rows // next unused row of full

	var inc []core.FD
	for b := 0; b < batches; b++ {
		start = time.Now()
		for op := 0; op < batchOps && pool < full.NumRows(); op++ {
			roll := rng.Intn(10)
			switch {
			case roll < 4 || len(live) < 2:
				if err := initial.Append(full.Row(pool)...); err != nil {
					return res, err
				}
				pool++
				live = append(live, initial.NumRows()-1)
				res.Appends++
			case roll < 7:
				i := rng.Intn(len(live))
				if err := counter.Delete(live[i]); err != nil {
					return res, err
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				res.Deletes++
			default:
				row := live[rng.Intn(len(live))]
				if err := counter.Update(row, full.Row(pool)...); err != nil {
					return res, err
				}
				pool++
				res.Updates++
			}
		}
		inc = disc.Cover()
		res.Incremental += time.Since(start)

		start = time.Now()
		fresh, _ := discovery.MinimalFDs(pli.NewPLICounter(initial), opts)
		res.Rediscover += time.Since(start)
		if d := diffCovers(inc, fresh); d != "" {
			res.Mismatches = append(res.Mismatches, fmt.Sprintf("batch %d: %s", b, d))
		}
	}
	res.FinalLive = initial.LiveRows()
	res.CoverSize = len(inc)
	res.Stats = disc.Stats()
	if res.Incremental > 0 {
		res.Speedup = float64(res.Rediscover) / float64(res.Incremental)
	}

	// Full-independence differential: compact the live rows into a fresh
	// relation (dense row ids, rebuilt dictionaries, no tombstones) and
	// rediscover once more — any disagreement between the tombstone-aware
	// maintenance and a physically clean instance shows up here.
	compact := initial.Clone("discoverchurn-compact")
	clean, _ := discovery.MinimalFDs(pli.NewPLICounter(compact), opts)
	if d := diffCovers(inc, clean); d != "" {
		res.Mismatches = append(res.Mismatches, "compacted clone: "+d)
	}
	return res, nil
}

// runDiscoverChurn renders the experiment at the configured scale. The
// rediscovery side pays the whole levelwise lattice per batch; the
// incremental side pays stamp lookups for the cover, O(|X|) witness checks
// for the invalid border, and count probes only around actual demotions and
// revivals — the stats columns expose exactly how much of the lattice each
// batch really touched.
func runDiscoverChurn(cfg Config, w io.Writer) error {
	rows, batchOps, batches := churnParams(cfg)
	res, err := RunDiscoverChurn(cfg, rows, batchOps, batches)
	if err != nil {
		return err
	}
	return renderDiscoverChurn(res, w)
}

// renderDiscoverChurn writes the experiment's report table and shape notes
// (also the Render half of fdbench -json, so the printed numbers and the
// persisted BENCH_discoverchurn.json describe the same run).
func renderDiscoverChurn(res DiscoverChurnResult, w io.Writer) error {
	tab := texttable.New(
		fmt.Sprintf("incremental FD-cover maintenance vs full rediscovery (%d mixed batches)", res.Batches),
		"dataset", "rows", "+/-/~ ops", "final live", "cover", "seed pass",
		"incremental", "rediscovery", "speedup",
	).AlignRight(1, 2, 3, 4, 8)
	tab.Add(res.Dataset,
		fmt.Sprintf("%d", res.Rows),
		fmt.Sprintf("%d/%d/%d", res.Appends, res.Deletes, res.Updates),
		fmt.Sprintf("%d", res.FinalLive),
		fmt.Sprintf("%d FDs", res.CoverSize),
		fmtDuration(res.Seed),
		fmtDuration(res.Incremental),
		fmtDuration(res.Rediscover),
		fmt.Sprintf("%.1f×", res.Speedup))
	if _, err := io.WriteString(w, tab.Render()); err != nil {
		return err
	}
	st := res.Stats
	fmt.Fprintf(w, "maintenance effort: %d revalidated, %d witness checks (%d broken), %d probes, "+
		"%d frontier nodes, +%d/-%d cover FDs, %d reseeds\n",
		st.Revalidated, st.WitnessChecks, st.WitnessBroken, st.Probes,
		st.FrontierExpanded, st.Promoted, st.Demoted, st.Reseeds)
	for _, m := range res.Mismatches {
		fmt.Fprintln(w, "COVER MISMATCH:", m)
	}
	_, err := fmt.Fprintln(w, `shape check: rediscovery probes the whole bounded lattice per batch; the
incremental side probes only around demoted and revived FDs, and the
differential column must list no mismatches — including against a compacted
clone of the final live rows.`)
	return err
}
