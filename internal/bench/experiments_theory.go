package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/datasets"
	"github.com/evolvefd/evolvefd/internal/discovery"
	"github.com/evolvefd/evolvefd/internal/entropy"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
	"github.com/evolvefd/evolvefd/internal/texttable"
)

func init() {
	register(Experiment{
		ID:    "theorem1",
		Title: "§5 Theorem 1: ε_CB vs ε_VI null sets (CB vs EB comparison)",
		Run:   runTheorem1,
	})
	register(Experiment{
		ID:    "cb-vs-eb",
		Title: "§5 empirical CB vs EB: agreement and cost of candidate ranking",
		Run:   runCBvsEB,
	})
	register(Experiment{
		ID:    "discover-vs-repair",
		Title: "§2: targeted repair vs discover-all-then-relax ([16]-style baseline)",
		Run:   runDiscoverVsRepair,
	})
}

// runDiscoverVsRepair quantifies §2's argument against the alternative of
// discovering all constraints and relaxing the stale ones: on the same
// violated FD, it times (a) the paper's targeted repair and (b) full
// minimal-FD discovery up to the matching antecedent size, then checks
// whether discovery even produced an extension of the designer's FD.
func runDiscoverVsRepair(cfg Config, w io.Writer) error {
	rows := int(8000 * cfg.scale() / DefaultScale)
	if rows < 300 {
		rows = 300
	}
	ds := datasets.Image(rows)
	r := ds.Relation
	fd, err := core.ParseFD(r.Schema(), "F", ds.FDSpec)
	if err != nil {
		return err
	}

	// (a) Targeted repair.
	repairCounter := pli.NewPLICounter(r)
	repairStart := time.Now()
	rep, stats, ok := core.FindFirstRepair(repairCounter, fd, core.RepairOptions{
		Candidates: core.CandidateOptions{Parallelism: cfg.Parallelism},
	})
	repairTime := time.Since(repairStart)
	if !ok {
		return fmt.Errorf("image FD should be repairable")
	}

	// (b) Discover everything with antecedents up to the repaired size,
	// then look for extensions of the designer FD.
	maxLHS := fd.X.Len() + rep.Added.Len()
	discCounter := pli.NewPLICounter(r)
	discStart := time.Now()
	discovered, discStats := discovery.MinimalFDs(discCounter, discovery.Options{MaxLHS: maxLHS})
	discTime := time.Since(discStart)
	extensions := discovery.ExtensionsOf(discovered, fd)

	tab := texttable.New(
		fmt.Sprintf("evolving %s on image (%d rows, %d attrs)", ds.FDSpec, rows, r.NumCols()),
		"approach", "time", "work", "outcome").AlignRight(1)
	tab.Add("targeted repair (this paper)", fmtDuration(repairTime),
		fmt.Sprintf("%d candidates", stats.Evaluated),
		fmt.Sprintf("repair +{%s}", r.Schema().FormatSet(rep.Added)))
	tab.Add(fmt.Sprintf("discover all ≤%d-LHS minimal FDs, then relax", maxLHS),
		fmtDuration(discTime),
		fmt.Sprintf("%d checks", discStats.Checked),
		fmt.Sprintf("%d FDs, %d extend the designer's", len(discovered), len(extensions)))
	if _, err := io.WriteString(w, tab.Render()); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, `shape check (§2): discovery costs orders of magnitude more than the
targeted search, and its minimal FDs need not include any extension of the
designer's dependency — both of the paper's objections, measured.`)
	return err
}

// runTheorem1 samples random relations and classifies each (FD, extension)
// case by the zero-ness of ε_CB and ε_VI, empirically demonstrating the
// reproduction finding: ε_CB = 0 forces ε_VI = 0 (the paper's claim holds in
// that direction), the converse fails on a measurable fraction of cases, and
// the corrected measure VI(C_XZ, C_Y) agrees with ε_CB in both directions.
func runTheorem1(cfg Config, w io.Writer) error {
	rng := rand.New(rand.NewSource(cfg.seed()))
	samples := int(2000 * cfg.scale() / DefaultScale)
	if samples < 200 {
		samples = 200
	}
	var bothZero, bothPos, cbPosViZero, cbZeroViPos int
	var fixDisagree int
	for i := 0; i < samples; i++ {
		r := randomBenchRelation(rng, 2+rng.Intn(20), 4, 2+rng.Intn(3))
		counter := pli.NewPLICounter(r)
		x, y := bitset.New(rng.Intn(4)), bitset.New(rng.Intn(4))
		if x.Intersects(y) {
			continue
		}
		var z bitset.Set
		for c := 0; c < 4; c++ {
			if !x.Contains(c) && !y.Contains(c) && rng.Intn(3) == 0 {
				z.Add(c)
			}
		}
		fd, err := core.NewFD("F", x, y)
		if err != nil {
			return err
		}
		fz := fd
		if !z.IsEmpty() {
			fz = fd.WithExtendedAntecedent(z)
		}
		cbZero := core.Compute(counter, fz).EpsilonCB() == 0
		viZero := entropy.EpsilonVIExtension(r, x, y, z) < 1e-12
		if z.IsEmpty() {
			viZero = entropy.EpsilonVI(r, x, y) < 1e-12
		}
		fixZero := entropy.EpsilonVIEquivalent(r, x, y, z) < 1e-12
		switch {
		case cbZero && viZero:
			bothZero++
		case !cbZero && !viZero:
			bothPos++
		case !cbZero && viZero:
			cbPosViZero++
		default:
			cbZeroViPos++
		}
		if cbZero != fixZero {
			fixDisagree++
		}
	}
	tab := texttable.New(
		fmt.Sprintf("null-set agreement over %d random (FD, extension) samples", samples),
		"case", "count").AlignRight(1)
	tab.Addf("ε_CB = 0 ∧ ε_VI = 0 (agree)", bothZero)
	tab.Addf("ε_CB > 0 ∧ ε_VI > 0 (agree)", bothPos)
	tab.Addf("ε_CB > 0 ∧ ε_VI = 0 (converse of Theorem 1 FAILS)", cbPosViZero)
	tab.Addf("ε_CB = 0 ∧ ε_VI > 0 (would falsify the forward direction)", cbZeroViPos)
	tab.Addf("corrected VI(C_XZ, C_Y) disagreeing with ε_CB", fixDisagree)
	if _, err := io.WriteString(w, tab.Render()); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, `reading: row 4 and row 5 must be zero (forward direction and corrected
equivalence hold); row 3 being non-zero exhibits the counterexamples to the
printed Theorem 1 converse (ε_VI = 0 requires only Y→X-style degeneracy, not
goodness 0). See EXPERIMENTS.md for the 3-tuple counterexample.`)
	return err
}

// runCBvsEB reruns the Places candidate rankings under both methods and
// reports agreement plus the measured cost gap — the practical claim of §5
// ("fully comparable results … with much simpler computations").
func runCBvsEB(cfg Config, w io.Writer) error {
	r := datasets.Places()
	counter := pli.NewPLICounter(r)
	specs := []struct{ label, spec string }{
		{"F1", "District, Region -> AreaCode"},
		{"F4", "District -> PhNo"},
	}
	tab := texttable.New("top-ranked repair attribute per method (Places)",
		"FD", "CB best", "EB best", "agree")
	for _, s := range specs {
		fd, err := core.ParseFD(r.Schema(), s.label, s.spec)
		if err != nil {
			return err
		}
		cb := core.ExtendByOne(counter, fd, core.CandidateOptions{})
		eb := entropy.ExtendByOne(r, fd.X, fd.Y)
		cbBest := r.Schema().Column(cb[0].Attr).Name
		ebBest := r.Schema().Column(eb[0].Attr).Name
		tab.Add(s.label, cbBest, ebBest, fmt.Sprintf("%v", cbBest == ebBest))
	}
	if _, err := io.WriteString(w, tab.Render()); err != nil {
		return err
	}

	// Cost comparison on a larger instance: candidate ranking via counting
	// (CB) vs via clustering intersections (EB).
	rows := int(20000 * cfg.scale() / DefaultScale)
	if rows < 500 {
		rows = 500
	}
	img := datasets.Image(rows)
	fd, err := core.ParseFD(img.Relation.Schema(), "F", img.FDSpec)
	if err != nil {
		return err
	}
	cbStart := time.Now()
	_ = core.ExtendByOne(pli.NewPLICounter(img.Relation), fd, core.CandidateOptions{Parallelism: 1})
	cbTime := time.Since(cbStart)
	ebStart := time.Now()
	_ = entropy.ExtendByOne(img.Relation, fd.X, fd.Y)
	ebTime := time.Since(ebStart)
	cost := texttable.New(
		fmt.Sprintf("\ncandidate-ranking cost on image (%d rows, serial)", rows),
		"method", "time").AlignRight(1)
	cost.Add("CB (confidence+goodness counting)", fmtDuration(cbTime))
	cost.Add("EB (conditional entropies over clusterings)", fmtDuration(ebTime))
	if _, err := io.WriteString(w, cost.Render()); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, `shape check: both methods pick the same exact candidates (Theorem 1's
practical content); CB needs only cardinality counting and is the cheaper
ranking, the paper's core argument.`)
	return err
}

func randomBenchRelation(rng *rand.Rand, rows, cols, domain int) *relation.Relation {
	names := make([]string, cols)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	schema, err := relation.SchemaOf(names...)
	if err != nil {
		panic(err)
	}
	r := relation.New("rand", schema)
	row := make([]relation.Value, cols)
	for i := 0; i < rows; i++ {
		for c := range row {
			row[c] = relation.String(string(rune('A' + rng.Intn(domain))))
		}
		r.MustAppend(row...)
	}
	return r
}
