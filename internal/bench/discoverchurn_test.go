package bench

import (
	"strings"
	"testing"
)

// TestDiscoverChurnDifferential proves at test scale that the incremental
// discoverer and a from-scratch levelwise discovery agree on the minimal
// exact-FD cover after every randomized mixed append/delete/update batch,
// and that the final cover also agrees with a rediscovery over a compacted
// clone of the live rows.
func TestDiscoverChurnDifferential(t *testing.T) {
	res, err := RunDiscoverChurn(tinyConfig(), 800, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mismatches) != 0 {
		t.Fatalf("incremental cover diverged from rediscovery:\n%s",
			strings.Join(res.Mismatches, "\n"))
	}
	if res.Appends == 0 || res.Deletes == 0 || res.Updates == 0 {
		t.Fatalf("stream did not mix operations: %+v", res)
	}
	if res.CoverSize == 0 {
		t.Fatal("planted FDs must keep the cover non-empty")
	}
	st := res.Stats
	if st.Batches != 4 {
		t.Fatalf("batches = %d, want 4", st.Batches)
	}
	if st.WitnessChecks == 0 {
		t.Error("delete/update batches must check border witnesses")
	}
	if st.Reseeds != 0 {
		t.Errorf("the NULL-free synthetic stream must never reseed, got %d", st.Reseeds)
	}
}

// TestDiscoverChurnSpeedupAcceptance is the PR's acceptance bar: on a
// 50k-row relation taking mixed append/delete/update batches, refreshing
// the minimal exact-FD cover through the incrementally-maintained borders
// must be at least 5× faster than a full levelwise rediscovery per batch —
// and agree with it exactly at every checkpoint (and with a compacted clone
// at the end). The measured gap is typically orders of magnitude; 5× leaves
// room for noisy CI machines.
func TestDiscoverChurnSpeedupAcceptance(t *testing.T) {
	// The incremental side is tiny, so one unlucky scheduler preemption in
	// its timing window could sink the ratio on a noisy runner; measure up
	// to three times and accept the best run. The differential check is
	// exact and must hold on every attempt.
	var res DiscoverChurnResult
	for attempt := 0; attempt < 3; attempt++ {
		r, err := RunDiscoverChurn(Config{Seed: 20160315}, 50000, 150, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Mismatches) != 0 {
			t.Fatalf("differential check failed:\n%s", strings.Join(r.Mismatches, "\n"))
		}
		if r.Rows != 50000 || r.Deletes == 0 || r.Updates == 0 || r.Appends == 0 {
			t.Fatalf("unexpected stream shape: %+v", r)
		}
		if attempt == 0 || r.Speedup > res.Speedup {
			res = r
		}
		if res.Speedup >= 5 {
			break
		}
	}
	if res.Speedup < 5 {
		t.Fatalf("cover refresh speedup = %.1f× (incremental %v, rediscovery %v), want ≥ 5×",
			res.Speedup, res.Incremental, res.Rediscover)
	}
	// O(affected region), not O(lattice): across the whole stream the
	// incremental side must have probed fewer lattice nodes than a single
	// full rediscovery enumerates (the rediscovery side paid that per
	// batch). With 7 NULL-free columns and MaxLHS 2 the bounded lattice has
	// 7 × (6 + C(6,2)) = 147 nodes.
	cols := len(incrementalSpecs())
	latticeNodes := cols * ((cols - 1) + (cols-1)*(cols-2)/2)
	if res.Stats.Probes >= latticeNodes {
		t.Errorf("incremental probes (%d) not below one full rediscovery (%d lattice nodes)",
			res.Stats.Probes, latticeNodes)
	}
	t.Logf("50k-row mixed-DML cover refresh: incremental %v, rediscovery %v (%.0f× faster), "+
		"ops +%d/-%d/~%d, cover %d, effort %+v",
		res.Incremental, res.Rediscover, res.Speedup,
		res.Appends, res.Deletes, res.Updates, res.CoverSize, res.Stats)
}

// TestDiscoverChurnExperimentOutput smoke-tests the registered experiment's
// report at test scale.
func TestDiscoverChurnExperimentOutput(t *testing.T) {
	out := runExperiment(t, "discoverchurn")
	for _, want := range []string{"synthetic", "cover", "speedup", "witness checks", "shape check"} {
		if !strings.Contains(out, want) {
			t.Errorf("discoverchurn output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "COVER MISMATCH") {
		t.Errorf("discoverchurn experiment reported mismatches:\n%s", out)
	}
}
