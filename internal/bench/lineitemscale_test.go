package bench

import (
	"runtime"
	"runtime/debug"
	"testing"

	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/tpch"
)

// TestLineitemScaleDifferential runs the full experiment at a reduced row
// count and checks its built-in correctness evidence: the flat arena+bitmap
// partitions must induce exactly the clusterings the legacy per-class-slice
// layout does, over every lineitem attribute and the Table 5 FD pair, and
// the find-all repair must land on the keying extensions.
func TestLineitemScaleDifferential(t *testing.T) {
	res, err := RunLineitemScale(Config{Seed: 20160315}, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DifferentialOK {
		t.Fatalf("flat/legacy clusterings diverged at %d rows", res.DifferentialRows)
	}
	if res.NumRepairs == 0 {
		t.Fatal("find-all repair returned no repairs")
	}
	if res.Rows != 20_000 {
		t.Fatalf("row override ignored: got %d rows", res.Rows)
	}
}

// TestLineitemColumnarAcceptance is the columnar core's perf gate: on a
// 1M-row lineitem, all-attribute partition builds on the flat layout must be
// ≥2× faster than the legacy layout and retain ≥2× fewer bytes per row. The
// speedup holds single-threaded (counting-sort layout vs append-per-group),
// so the gate does not demand cores — only an uninstrumented build.
//
// The collector is disabled around the timed sections: with GC on, most of
// the legacy build's wall time is collection cycles over its append-per-group
// garbage, and that component swings with the binary's baseline heap and
// with neighbor load — the measured ratio moved between 1.4× and 4.7× for
// identical code. Pure build cost is stable (~2.5×), so that is what the
// gate enforces; the GC-inclusive numbers remain visible in the
// lineitemscale experiment output.
func TestLineitemColumnarAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row ablation skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector; differential covers correctness")
	}
	const rows = 1_000_000
	rel := lineitemFor(rows, 20160315)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var flatMs, legMs, flatBPR, legBPR float64
	bestRatio := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		f, l, fb, lb := lineitemBuildAblation(rel)
		if ratio := l / f; ratio > bestRatio {
			bestRatio = ratio
			flatMs, legMs, flatBPR, legBPR = f, l, fb, lb
		}
		if bestRatio >= 2 && legBPR >= 2*flatBPR {
			t.Logf("1M-row lineitem: build %.0fms vs %.0fms legacy (%.1f×), %.1f vs %.1f B/row (%.1f×)",
				flatMs, legMs, legMs/flatMs, flatBPR, legBPR, legBPR/flatBPR)
			return
		}
	}
	t.Fatalf("columnar ablation below gate: build %.0fms vs %.0fms legacy (%.1f×, want ≥2×), %.1f vs %.1f B/row (%.1f×, want ≥2×)",
		flatMs, legMs, legMs/flatMs, flatBPR, legBPR, legBPR/flatBPR)
}

// TestLineitemProductKernelAcceptance is the product-kernel perf gate on the
// same 1M-row lineitem FD pair: the count-only product must beat the
// materialising product ≥1.5× (it writes no arena, no offsets, no bitmaps),
// and the sharded parallel product must beat the serial one ≥2× when enough
// cores exist to make that a fair ask. Best of three GC-pinned attempts per
// ratio, the de-flake idiom of the columnar gate above.
func TestLineitemProductKernelAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row kernel gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector; differential covers correctness")
	}
	const rows = 1_000_000
	rel := lineitemFor(rows, 20160315)
	fd, err := core.ParseFD(rel.Schema(), "F1", tpch.Table5FDs()["lineitem"])
	if err != nil {
		t.Fatal(err)
	}
	pairCols := fd.X.Union(fd.Y).Members()
	p, q := pli.FromColumn(rel, pairCols[0]), pli.FromColumn(rel, pairCols[1])
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	want := p.Product(q, nil).NumClasses()
	if got := p.ProductCount(q, nil); got != want {
		t.Fatalf("ProductCount = %d, materialised product has %d classes", got, want)
	}

	countRatio := 0.0
	for attempt := 0; attempt < 3 && countRatio < 1.5; attempt++ {
		serial := bestOfTwo(func() { p.Product(q, nil) })
		count := bestOfTwo(func() { p.ProductCount(q, nil) })
		if r := serial / count; r > countRatio {
			countRatio = r
		}
	}
	if countRatio < 1.5 {
		t.Fatalf("count-only product only %.2f× over materialised, want ≥1.5×", countRatio)
	}
	t.Logf("count-only product %.1f× over materialised", countRatio)

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		t.Skipf("parallel-product speedup gate needs ≥4 workers, have %d", workers)
	}
	parRatio := 0.0
	for attempt := 0; attempt < 3 && parRatio < 2; attempt++ {
		serial := bestOfTwo(func() { p.Product(q, nil) })
		par := bestOfTwo(func() { p.ProductParallel(q, workers) })
		if r := serial / par; r > parRatio {
			parRatio = r
		}
	}
	if parRatio < 2 {
		t.Fatalf("parallel product only %.2f× over serial at %d workers, want ≥2×", parRatio, workers)
	}
	t.Logf("parallel product %.1f× over serial at %d workers", parRatio, workers)
}
