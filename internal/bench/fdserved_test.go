package bench

import (
	"strings"
	"testing"
)

// TestFdservedLoadSmoke proves the loadgen harness end to end at tiny
// scale: every request must succeed and the mix must contain both request
// classes.
func TestFdservedLoadSmoke(t *testing.T) {
	res, err := RunFdservedLoad(tinyConfig(), 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors: %+v", res.Errors, res)
	}
	if res.Requests != 80 {
		t.Fatalf("completed %d requests, want 80", res.Requests)
	}
	if res.Checks == 0 || res.Appends == 0 {
		t.Fatalf("degenerate mix: %d checks, %d appends", res.Checks, res.Appends)
	}
	if res.AppendedRows != res.Appends*16 {
		t.Fatalf("appended %d rows over %d batches", res.AppendedRows, res.Appends)
	}
	if res.Throughput <= 0 || res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("implausible timing: %+v", res)
	}
	var sb strings.Builder
	if err := renderFdserved(res, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "req/s aggregate") {
		t.Fatalf("render missing throughput line:\n%s", sb.String())
	}
}

// TestFdservedThroughputAcceptance is the PR's acceptance bar: the service
// must sustain at least 1000 req/s aggregate at 8 concurrent tenants with
// the 70/30 check/append mix over loopback HTTP. Real hardware clears this
// by an order of magnitude; the floor guards against an accidental
// serialisation of the whole service (e.g. a registry-wide mutation lock).
func TestFdservedThroughputAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("loadgen acceptance skipped in -short")
	}
	floor := 1000.0
	if raceEnabled {
		// The race detector multiplies both handler and client costs; keep
		// the gate meaningful without flaking.
		floor = 200.0
	}
	// Best of three guards against one unlucky scheduler stall; correctness
	// (zero errors) must hold every time.
	var best FdservedResult
	for attempt := 0; attempt < 3; attempt++ {
		res, err := RunFdservedLoad(Config{Seed: 20160315}, 8, 2, 200)
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Fatalf("attempt %d: %d request errors", attempt, res.Errors)
		}
		if res.Tenants != 8 || res.Requests != 8*2*200 {
			t.Fatalf("unexpected run shape: %+v", res)
		}
		if attempt == 0 || res.Throughput > best.Throughput {
			best = res
		}
		if best.Throughput >= floor {
			break
		}
	}
	if best.Throughput < floor {
		t.Fatalf("throughput %.0f req/s below the %.0f req/s floor (p50 %s, p99 %s)",
			best.Throughput, floor, best.P50, best.P99)
	}
	t.Logf("fdserved loadgen: %.0f req/s aggregate at %d tenants (p50 %s, p99 %s)",
		best.Throughput, best.Tenants, best.P50, best.P99)
}
