package bench

import (
	"runtime"
	"strings"
	"testing"
)

func TestRepairScaleExperimentSmoke(t *testing.T) {
	out := runExperiment(t, "repairscale")
	for _, want := range []string{"serial, no partition reuse (baseline)", "workers, partition reuse", "shape check"} {
		if !strings.Contains(out, want) {
			t.Errorf("repairscale output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "false") {
		t.Errorf("repairscale reported a non-identical configuration:\n%s", out)
	}
}

func TestRepairScaleJSONResult(t *testing.T) {
	e, ok := Lookup("repairscale")
	if !ok || e.RunJSON == nil {
		t.Fatal("repairscale must expose a JSON result")
	}
	v, err := e.RunJSON(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, ok := v.(RepairScaleResult)
	if !ok {
		t.Fatalf("RunJSON returned %T", v)
	}
	if res.Rows < 1000 || res.NumFDs != 3 || len(res.Runs) == 0 || res.BaselineMillis <= 0 {
		t.Fatalf("JSON result malformed: %+v", res)
	}
	for _, run := range res.Runs {
		if !run.Identical {
			t.Fatalf("run at %d workers not identical to baseline", run.Workers)
		}
	}
}

// TestRepairParallelSpeedupAcceptance pins the tentpole win: the full
// multi-FD repair sweep on a ≥50k-row instance at Parallelism = GOMAXPROCS
// must run ≥ 3× faster than the serial no-reuse baseline while producing
// byte-identical RepairResults (repairs, measures, and discovery order).
// The determinism half always runs; the speedup gate needs ≥ 4 cores, as
// specified, and is skipped on smaller hosts.
func TestRepairParallelSpeedupAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-row acceptance sweep skipped in -short")
	}
	rows := 50000
	if raceEnabled {
		// Race instrumentation multiplies the sweep cost and skews parallel
		// scaling; keep the determinism half on a smaller instance there.
		rows = 5000
	}
	workers := runtime.GOMAXPROCS(0)
	res, err := RunRepairScale(Config{}, rows, []int{workers})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows < rows {
		t.Fatalf("acceptance sweep ran on %d rows, want ≥ %d", res.Rows, rows)
	}
	run := res.Runs[0]
	if !run.Identical {
		t.Fatalf("parallel sweep at %d workers diverged from the serial baseline", run.Workers)
	}
	t.Logf("rows=%d baseline=%.0fms parallel(%d workers)=%.0fms speedup=%.2f×",
		res.Rows, res.BaselineMillis, run.Workers, run.Millis, run.Speedup)
	if raceEnabled {
		t.Skip("speedup gate skipped under the race detector; determinism verified")
	}
	if workers < 4 {
		t.Skipf("speedup gate needs GOMAXPROCS ≥ 4 (have %d); determinism verified", workers)
	}
	if run.Speedup < 3 {
		t.Fatalf("parallel sweep speedup %.2f× < 3× acceptance threshold", run.Speedup)
	}
}
