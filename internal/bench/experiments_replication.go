package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	evolvefd "github.com/evolvefd/evolvefd"
	"github.com/evolvefd/evolvefd/internal/relation"
	"github.com/evolvefd/evolvefd/internal/texttable"
	"github.com/evolvefd/evolvefd/internal/wal"

	"github.com/evolvefd/evolvefd/internal/datasets"
)

func init() {
	register(Experiment{
		ID:    "replication",
		Title: "WAL replication: fresh-follower catch-up vs CSV rebuild, steady-state lag under DML",
		Run:   runReplication,
		RunJSON: func(cfg Config) (any, error) {
			rows, tail, stream := replicationParams(cfg)
			return RunReplication(cfg, rows, tail, stream)
		},
		Render: func(v any, w io.Writer) error {
			res, ok := v.(ReplicationResult)
			if !ok {
				return fmt.Errorf("bench: replication render got %T", v)
			}
			return renderReplication(res, w)
		},
	})
}

// ReplicationResult measures one replication run in two phases. Phase 1
// races a fresh follower (bootstrap from the leader's newest snapshot,
// replay the log tail, re-validate the imported discovery borders) against
// rebuilding the same advisor-ready state from the raw tuples. Phase 2
// streams DML through the leader — including a mid-stream compaction, so
// the follower crosses an epoch switchover — and measures the follower's
// steady-state catch-up latency and byte lag, with a differential asserting
// the follower answers every advisor query identically to the live leader.
type ReplicationResult struct {
	Dataset string
	// Rows is the instance size at the leader's checkpoint; TailOps the
	// logged mutations a fresh follower must replay; StreamOps the DML
	// applied during the steady-state phase; LiveRows the final live count.
	Rows, TailOps, StreamOps, LiveRows int
	// NumFDs counts the defined dependencies; CoverSize the discovered
	// minimal cover all three routes must agree on.
	NumFDs, CoverSize int
	// SnapshotBytes and LogBytes are the on-disk footprint the fresh
	// follower reads.
	SnapshotBytes, LogBytes int64
	// CatchUp times OpenFollower + CatchUp + cover refresh + serving every
	// defined FD's measures; Rebuild times reaching the same state from the
	// source CSV alone. Speedup is Rebuild / CatchUp.
	CatchUp, Rebuild time.Duration
	Speedup          float64
	// SteadyBatches counts the steady-state catch-up rounds; MaxLagBytes the
	// largest unconsumed log backlog observed before a round; AvgCatchUp the
	// mean catch-up latency per round.
	SteadyBatches int
	MaxLagBytes   int64
	AvgCatchUp    time.Duration
	// Resyncs and Quarantines surface follower health; both must be zero on
	// a healthy run (the leader compacts mid-stream, but the seal marker
	// walks the follower across without a resync).
	Resyncs, Quarantines int
	// Mismatches lists any divergence between follower, leader and rebuilt
	// state — measures, minimal cover, or ranked repairs; must stay empty.
	Mismatches []string
}

// replicationParams scales the experiment: 50k rows at default scale with a
// 2% log tail for the fresh-follower race and an equal-sized steady-state
// DML stream.
func replicationParams(cfg Config) (rows, tail, stream int) {
	rows = int(50000 * cfg.scale() / DefaultScale)
	if rows < 1500 {
		rows = 1500
	}
	return rows, rows / 50, rows / 50
}

// RunReplication builds a durable leader over a rows-row synthetic instance
// with the incremental experiment's planted FDs, checkpoints, logs tailOps
// mutations, then measures a fresh follower's catch-up against a CSV
// rebuild, and the follower's steady-state lag under streamOps further DML
// with a compaction in the middle.
func RunReplication(cfg Config, rows, tailOps, streamOps int) (ReplicationResult, error) {
	const maxLHS = 2
	res := ReplicationResult{Dataset: "synthetic", Rows: rows, TailOps: tailOps, StreamOps: streamOps}
	dir, err := os.MkdirTemp("", "evolvefd-replication-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	dataDir := filepath.Join(dir, "data")

	pool := datasets.Synthesize("replication", rows+tailOps+streamOps, cfg.seed(), incrementalSpecs())
	fdSpecs := incrementalFDSpecs()
	res.NumFDs = len(fdSpecs)
	opts := evolvefd.DurabilityOptions{GroupCommit: 256, NoFsync: true}
	s, err := evolvefd.NewDurableSession(
		datasets.Synthesize("replication", rows, cfg.seed(), incrementalSpecs()), dataDir, opts)
	if err != nil {
		return res, err
	}
	defer s.Close()
	labels := make([]string, len(fdSpecs))
	for i, spec := range fdSpecs {
		labels[i] = fmt.Sprintf("F%d", i+1)
		if err := s.Define(labels[i], spec); err != nil {
			return res, err
		}
	}
	if _, err := s.DiscoverIncremental(evolvefd.DiscoveryOptions{MaxLHS: maxLHS}); err != nil {
		return res, err
	}
	s.Compact()
	rng := rand.New(rand.NewSource(cfg.seed() + 3))
	next := rows
	mutate := func() error {
		switch roll := rng.Intn(100); {
		case roll < 50 && next < pool.NumRows():
			next++
			return s.AppendStrings(recoveryRowCells(pool, next-1)...)
		case roll < 75:
			return s.Delete(recoveryLiveRow(rng, s.Relation()))
		default:
			return s.UpdateStrings(recoveryLiveRow(rng, s.Relation()),
				recoveryRowCells(pool, rows+rng.Intn(tailOps))...)
		}
	}
	for i := 0; i < tailOps; i++ {
		if err := mutate(); err != nil {
			return res, err
		}
	}
	if err := s.Flush(); err != nil {
		return res, err
	}
	snaps, logs, err := wal.ListStates(dataDir)
	if err != nil {
		return res, err
	}
	for _, seq := range snaps {
		if st, err := os.Stat(wal.SnapshotPath(dataDir, seq)); err == nil {
			res.SnapshotBytes += st.Size()
		}
	}
	for _, seq := range logs {
		if st, err := os.Stat(wal.LogPath(dataDir, seq)); err == nil {
			res.LogBytes += st.Size()
		}
	}

	followerMeasures := func(f *evolvefd.Follower) ([]evolvefd.Measures, error) {
		ms := make([]evolvefd.Measures, len(labels))
		for i, label := range labels {
			var err error
			if ms[i], err = f.Measures(label); err != nil {
				return nil, err
			}
		}
		return ms, nil
	}
	sessionMeasures := func(s *evolvefd.Session) ([]evolvefd.Measures, error) {
		ms := make([]evolvefd.Measures, len(labels))
		for i, label := range labels {
			var err error
			if ms[i], err = s.Measures(label); err != nil {
				return nil, err
			}
		}
		return ms, nil
	}

	// Phase 1a — fresh follower: bootstrap from the newest snapshot, replay
	// the log tail, refresh the imported discovery cover, serve every
	// defined FD's measures. The leader keeps running; nothing is rebuilt.
	runtime.GC()
	start := time.Now()
	f, err := evolvefd.OpenFollower(dataDir, evolvefd.FollowerOptions{ID: "bench"})
	if err != nil {
		return res, err
	}
	defer f.Close()
	if _, err := f.CatchUp(); err != nil {
		return res, err
	}
	fCover, err := f.DiscoverIncremental(evolvefd.DiscoveryOptions{MaxLHS: maxLHS})
	if err != nil {
		return res, err
	}
	fMeasures, err := followerMeasures(f)
	if err != nil {
		return res, err
	}
	res.CatchUp = time.Since(start)
	res.CoverSize = len(fCover)

	// Phase 1b — CSV rebuild: the same advisor-ready state with no durable
	// state and no leader, re-interning every value and re-searching the
	// lattice. Writing the source file is untimed: it stands in for the
	// original data file a real deployment already has.
	csvPath := filepath.Join(dir, "source.csv")
	if err := writeRecoveryCSV(csvPath, s.Relation()); err != nil {
		return res, err
	}
	runtime.GC()
	start = time.Now()
	reb, err := relation.ReadCSVFile(csvPath, relation.CSVOptions{})
	if err != nil {
		return res, err
	}
	rb := evolvefd.NewSession(reb)
	for i, spec := range fdSpecs {
		if err := rb.Define(labels[i], spec); err != nil {
			return res, err
		}
	}
	rbCover, err := rb.DiscoverIncremental(evolvefd.DiscoveryOptions{MaxLHS: maxLHS})
	if err != nil {
		return res, err
	}
	rbMeasures, err := sessionMeasures(rb)
	if err != nil {
		return res, err
	}
	res.Rebuild = time.Since(start)
	if res.CatchUp > 0 {
		res.Speedup = float64(res.Rebuild) / float64(res.CatchUp)
	}

	// Phase 1 differential (untimed): follower vs rebuild vs live leader.
	lCover, err := s.DiscoverIncremental(evolvefd.DiscoveryOptions{MaxLHS: maxLHS})
	if err != nil {
		return res, err
	}
	lMeasures, err := sessionMeasures(s)
	if err != nil {
		return res, err
	}
	for i, label := range labels {
		if fMeasures[i] != lMeasures[i] || fMeasures[i] != rbMeasures[i] {
			res.Mismatches = append(res.Mismatches, fmt.Sprintf(
				"%s: measures %+v follower, %+v leader, %+v rebuilt",
				label, fMeasures[i], lMeasures[i], rbMeasures[i]))
		}
	}
	if !reflect.DeepEqual(fCover, lCover) || !reflect.DeepEqual(fCover, rbCover) {
		res.Mismatches = append(res.Mismatches,
			"minimal cover diverged between follower, leader and rebuild")
	}

	// Phase 2 — steady state: stream DML through the leader in batches with
	// a compaction in the middle (epoch switchover mid-tail), catching the
	// follower up after each batch.
	const batches = 10
	var totalCatchUp time.Duration
	for b := 0; b < batches; b++ {
		if b == batches/2 {
			s.Compact()
		}
		for i := 0; i < streamOps/batches; i++ {
			if err := mutate(); err != nil {
				return res, err
			}
		}
		if err := s.Flush(); err != nil {
			return res, err
		}
		if lag := f.Stats().ByteLag; lag > res.MaxLagBytes {
			res.MaxLagBytes = lag
		}
		start = time.Now()
		if _, err := f.CatchUp(); err != nil {
			return res, err
		}
		totalCatchUp += time.Since(start)
		res.SteadyBatches++
	}
	res.AvgCatchUp = totalCatchUp / batches
	res.LiveRows = s.LiveRows()

	// Final differential: after the stream (and the epoch switchover) the
	// follower still answers identically to the leader — measures, cover,
	// and the ranked repairs of the violated FD.
	fMeasures, err = followerMeasures(f)
	if err != nil {
		return res, err
	}
	lMeasures, err = sessionMeasures(s)
	if err != nil {
		return res, err
	}
	for i, label := range labels {
		if fMeasures[i] != lMeasures[i] {
			res.Mismatches = append(res.Mismatches, fmt.Sprintf(
				"steady state %s: measures %+v follower, %+v leader", label, fMeasures[i], lMeasures[i]))
		}
	}
	fCover, err1 := f.DiscoverIncremental(evolvefd.DiscoveryOptions{MaxLHS: maxLHS})
	lCover, err2 := s.DiscoverIncremental(evolvefd.DiscoveryOptions{MaxLHS: maxLHS})
	if err1 != nil || err2 != nil {
		return res, fmt.Errorf("steady-state discover: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(fCover, lCover) {
		res.Mismatches = append(res.Mismatches, "steady state: minimal cover diverged")
	}
	fRepair, err1 := f.Repair(labels[1], evolvefd.DefaultOptions())
	lRepair, err2 := s.Repair(labels[1], evolvefd.DefaultOptions())
	if err1 != nil || err2 != nil {
		return res, fmt.Errorf("repair differential: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(fRepair, lRepair) {
		res.Mismatches = append(res.Mismatches, fmt.Sprintf(
			"steady state: repair of %s diverged", labels[1]))
	}
	st := f.Stats()
	res.Resyncs, res.Quarantines = st.Resyncs, st.Quarantines
	if f.Epoch() != s.Epoch() {
		res.Mismatches = append(res.Mismatches, fmt.Sprintf(
			"epoch diverged: follower %d, leader %d", f.Epoch(), s.Epoch()))
	}
	return res, nil
}

// renderReplication writes the experiment's report table and shape notes.
func renderReplication(res ReplicationResult, w io.Writer) error {
	tab := texttable.New(
		"fresh-follower catch-up vs CSV rebuild",
		"dataset", "rows", "tail ops", "cover", "snapshot", "log",
		"catch-up", "rebuild", "speedup",
	).AlignRight(1, 2, 4, 5, 8)
	tab.Add(res.Dataset,
		fmt.Sprintf("%d", res.Rows),
		fmt.Sprintf("%d", res.TailOps),
		fmt.Sprintf("%d FDs", res.CoverSize),
		fmt.Sprintf("%d B", res.SnapshotBytes),
		fmt.Sprintf("%d B", res.LogBytes),
		fmtDuration(res.CatchUp),
		fmtDuration(res.Rebuild),
		fmt.Sprintf("%.1f×", res.Speedup))
	if _, err := io.WriteString(w, tab.Render()); err != nil {
		return err
	}
	steady := texttable.New(
		"steady-state tail under DML (leader compacts mid-stream)",
		"stream ops", "batches", "max lag", "avg catch-up", "resyncs", "quarantines",
	).AlignRight(0, 1, 2, 4, 5)
	steady.Add(
		fmt.Sprintf("%d", res.StreamOps),
		fmt.Sprintf("%d", res.SteadyBatches),
		fmt.Sprintf("%d B", res.MaxLagBytes),
		fmtDuration(res.AvgCatchUp),
		fmt.Sprintf("%d", res.Resyncs),
		fmt.Sprintf("%d", res.Quarantines))
	if _, err := io.WriteString(w, steady.Render()); err != nil {
		return err
	}
	for _, m := range res.Mismatches {
		fmt.Fprintln(w, "REPLICA MISMATCH:", m)
	}
	_, err := fmt.Fprintln(w, `shape check: the fresh follower decodes the leader's newest snapshot and
replays only the post-checkpoint log tail, while the rebuild re-interns
every value and re-searches the whole lattice; steady-state catch-up folds
each DML batch incrementally, and the mid-stream compaction walks the
follower across the epoch switchover without a resync. The differential
lines must list no mismatches.`)
	return err
}

// runReplication renders the experiment at the configured scale.
func runReplication(cfg Config, w io.Writer) error {
	rows, tail, stream := replicationParams(cfg)
	res, err := RunReplication(cfg, rows, tail, stream)
	if err != nil {
		return err
	}
	return renderReplication(res, w)
}
