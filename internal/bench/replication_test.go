package bench

import (
	"strings"
	"testing"
)

// TestReplicationDifferential proves at test scale that a follower — fresh
// catch-up and steady-state tail across a mid-stream compaction — answers
// every advisor query identically to the live leader and to a full rebuild.
func TestReplicationDifferential(t *testing.T) {
	res, err := RunReplication(tinyConfig(), 1500, 60, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mismatches) != 0 {
		t.Fatalf("replica state diverged:\n%s", strings.Join(res.Mismatches, "\n"))
	}
	if res.CoverSize == 0 {
		t.Fatal("planted FDs must appear in the discovered cover")
	}
	if res.SteadyBatches == 0 {
		t.Fatal("steady-state phase did not run")
	}
	if res.Resyncs != 0 || res.Quarantines != 0 {
		t.Fatalf("healthy run surfaced faults: %d resyncs, %d quarantines",
			res.Resyncs, res.Quarantines)
	}
	if res.SnapshotBytes == 0 || res.LogBytes == 0 {
		t.Fatalf("durable footprint missing: snapshot %d B, log %d B",
			res.SnapshotBytes, res.LogBytes)
	}
	if res.LiveRows == 0 {
		t.Fatalf("implausible live-row count: %+v", res)
	}
}

// TestReplicationSpeedupAcceptance is the PR's acceptance bar: at 50k rows
// a fresh follower catching up from the leader's checkpoint must be at
// least 5× faster than rebuilding the same advisor-ready state from the
// source CSV — with bit-equal advisor state both ways. The measured gap is
// typically far larger; 5× leaves room for noisy CI machines.
func TestReplicationSpeedupAcceptance(t *testing.T) {
	// Best of three guards the small catch-up timing window against one
	// unlucky scheduler preemption; the differential must hold every time.
	var res ReplicationResult
	for attempt := 0; attempt < 3; attempt++ {
		r, err := RunReplication(Config{Seed: 20160315}, 50000, 1000, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Mismatches) != 0 {
			t.Fatalf("differential check failed:\n%s", strings.Join(r.Mismatches, "\n"))
		}
		if r.Rows != 50000 || r.TailOps != 1000 || r.StreamOps != 1000 {
			t.Fatalf("unexpected experiment shape: %+v", r)
		}
		if attempt == 0 || r.Speedup > res.Speedup {
			res = r
		}
		if res.Speedup >= 5 {
			break
		}
	}
	if res.Speedup < 5 {
		t.Fatalf("catch-up vs rebuild speedup = %.1f× (catch-up %v, rebuild %v), want ≥ 5×",
			res.Speedup, res.CatchUp, res.Rebuild)
	}
	t.Logf("50k-row follower: %v catch-up vs %v rebuild (%.0f× faster); steady state: max lag %d B, avg catch-up %v over %d batches",
		res.CatchUp, res.Rebuild, res.Speedup, res.MaxLagBytes, res.AvgCatchUp, res.SteadyBatches)
}

// TestReplicationExperimentOutput smoke-tests the registered render path.
func TestReplicationExperimentOutput(t *testing.T) {
	out := runExperiment(t, "replication")
	for _, want := range []string{
		"fresh-follower catch-up vs CSV rebuild",
		"steady-state tail under DML",
		"speedup",
		"shape check",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("replication report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "REPLICA MISMATCH") {
		t.Errorf("replication report lists mismatches:\n%s", out)
	}
}
