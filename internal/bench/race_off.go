//go:build !race

package bench

// raceEnabled reports whether the race detector instruments this build;
// timing-sensitive acceptance gates relax under its overhead.
const raceEnabled = false
