package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps experiment tests fast.
func tinyConfig() Config {
	return Config{Scale: 0.002, SF: 0.001, Seed: 7}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper must have an experiment, plus the
	// theory comparison and the three ablations.
	want := []string{
		"running-example", "table1", "table2", "table3", "figure2",
		"table4", "table5", "figure3", "table6", "table7", "table8",
		"theorem1", "cb-vs-eb", "discover-vs-repair",
		"ablation-count", "ablation-parallel", "ablation-queue",
		"ablation-objective", "incremental", "repairscale", "churn",
		"discoverchurn", "compaction", "recovery", "replication",
		"lineitemscale", "fdserved", "products",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	// All() must be sorted by ID.
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatal("All() not sorted")
		}
	}
}

func TestLookupMiss(t *testing.T) {
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown ID must fail")
	}
}

// runExperiment executes one experiment and returns its output.
func runExperiment(t *testing.T, id string) string {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q missing", id)
	}
	var buf bytes.Buffer
	if err := e.Run(tinyConfig(), &buf); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return buf.String()
}

func TestRunningExampleOutput(t *testing.T) {
	out := runExperiment(t, "running-example")
	for _, want := range []string{
		"F1", "F2", "F3", "F4",
		"2/4 = 0.500", // c_F1
		"8/9 = 0.889", // c_F3
		"repair order",
		"0.250", "0.167", "0.056", // §4.1 printed ranks
	} {
		if !strings.Contains(out, want) {
			t.Errorf("running-example output missing %q\n%s", want, out)
		}
	}
}

func TestTable1Output(t *testing.T) {
	out := runExperiment(t, "table1")
	for _, want := range []string{"Municipal", "4/4 = 1", "7/7 = 1", "3/5 = 0.6"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q\n%s", want, out)
		}
	}
	// Municipal must be the first-ranked row.
	lines := strings.Split(out, "\n")
	firstData := ""
	for i, l := range lines {
		if strings.HasPrefix(l, "---") || strings.Contains(l, "--  ") {
			if i+1 < len(lines) {
				firstData = lines[i+1]
			}
			break
		}
	}
	if !strings.HasPrefix(firstData, "Municipal") {
		t.Errorf("first candidate row = %q, want Municipal", firstData)
	}
}

func TestTable2And3Output(t *testing.T) {
	out2 := runExperiment(t, "table2")
	if !strings.Contains(out2, "Street") || !strings.Contains(out2, "0.875") {
		t.Errorf("table2 output wrong:\n%s", out2)
	}
	out3 := runExperiment(t, "table3")
	for _, want := range []string{"Municipal", "AreaCode", "EXPERIMENTS.md", "(omitted)"} {
		if !strings.Contains(out3, want) {
			t.Errorf("table3 output missing %q", want)
		}
	}
}

func TestFigure2Output(t *testing.T) {
	out := runExperiment(t, "figure2")
	for _, want := range []string{
		"(a) F1", "(b) F′", "(c) F″",
		"no function between clusterings",
		"well-defined (bijective) function",
		"not bijective",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure2 output missing %q\n%s", want, out)
		}
	}
}

func TestTable4Output(t *testing.T) {
	out := runExperiment(t, "table4")
	for _, want := range []string{"customer", "lineitem", "region", "16", "150249", "6005428"} {
		if !strings.Contains(out, want) {
			t.Errorf("table4 output missing %q\n%s", want, out)
		}
	}
}

func TestTable5MeasurementsAndOutput(t *testing.T) {
	rows, err := RunTable5Measurements(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("table5 rows = %d, want 8", len(rows))
	}
	var lineitem, region *Table5Row
	for i := range rows {
		switch rows[i].Table {
		case "lineitem":
			lineitem = &rows[i]
		case "region":
			region = &rows[i]
		}
		if rows[i].Elapsed <= 0 {
			t.Errorf("%s: no time recorded", rows[i].Table)
		}
	}
	if lineitem == nil || region == nil {
		t.Fatal("lineitem/region rows missing")
	}
	// Shape: the largest, widest table dominates the smallest.
	if lineitem.Elapsed <= region.Elapsed {
		t.Errorf("lineitem (%v) should dominate region (%v)", lineitem.Elapsed, region.Elapsed)
	}

	out := runExperiment(t, "table5")
	for _, want := range []string{"lineitem", "1h 59m 19s 884ms", "shape check"} {
		if !strings.Contains(out, want) {
			t.Errorf("table5 output missing %q", want)
		}
	}
}

func TestFigure3Output(t *testing.T) {
	out := runExperiment(t, "figure3")
	for _, want := range []string{"(a) processing time by number of attributes",
		"(b) processing time by number of tuples",
		"(c) processing time by table dimension"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure3 output missing %q", want)
		}
	}
}

func TestTable6Output(t *testing.T) {
	out := runExperiment(t, "table6")
	for _, want := range []string{"places", "country", "rental", "image", "pagelinks", "veterans",
		"29m45s", "shape check"} {
		if !strings.Contains(out, want) {
			t.Errorf("table6 output missing %q\n%s", want, out)
		}
	}
	// Places repair must add 2 attributes (its row shows a 2-attr set).
	if !strings.Contains(out, "+{Municipal,Street}") && !strings.Contains(out, "+{AreaCode,Street}") &&
		!strings.Contains(out, "+{Street, Municipal}") {
		// The formatted set uses schema order: Municipal,Street.
		t.Errorf("places repair missing from table6:\n%s", out)
	}
}

func TestVeteransGridCells(t *testing.T) {
	cfg := tinyConfig()
	// Repairable cell: 30 attrs.
	cell, err := RunVeteransCell(cfg, 400, 30, true)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Repairs != 1 {
		t.Fatalf("30-attr find-first repairs = %d, want 1", cell.Repairs)
	}
	// Unrepairable cell: 10 attrs.
	cell, err = RunVeteransCell(cfg, 400, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Repairs != 0 {
		t.Fatalf("10-attr repairs = %d, want 0", cell.Repairs)
	}
}

func TestTables7And8Output(t *testing.T) {
	out7 := runExperiment(t, "table7")
	if !strings.Contains(out7, "find all repairs") || !strings.Contains(out7, "(no repair)") {
		t.Errorf("table7 output wrong:\n%s", out7)
	}
	out8 := runExperiment(t, "table8")
	if !strings.Contains(out8, "find the first repair") {
		t.Errorf("table8 output wrong:\n%s", out8)
	}
}

func TestTheorem1Output(t *testing.T) {
	out := runExperiment(t, "theorem1")
	if !strings.Contains(out, "converse of Theorem 1 FAILS") {
		t.Errorf("theorem1 output missing the converse row:\n%s", out)
	}
	// The forward direction must never be falsified: its count renders as
	// exactly zero.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "would falsify") && !strings.HasSuffix(strings.TrimSpace(line), " 0") {
			t.Errorf("forward direction falsified: %q", line)
		}
		if strings.Contains(line, "disagreeing with ε_CB") && !strings.HasSuffix(strings.TrimSpace(line), " 0") {
			t.Errorf("corrected measure disagreed: %q", line)
		}
	}
}

func TestCBvsEBOutput(t *testing.T) {
	out := runExperiment(t, "cb-vs-eb")
	if !strings.Contains(out, "CB best") || !strings.Contains(out, "true") {
		t.Errorf("cb-vs-eb output wrong:\n%s", out)
	}
}

func TestDiscoverVsRepairOutput(t *testing.T) {
	out := runExperiment(t, "discover-vs-repair")
	for _, want := range []string{
		"targeted repair (this paper)",
		"discover all",
		"repair +{",
		"shape check (§2)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("discover-vs-repair output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationOutputs(t *testing.T) {
	for _, id := range []string{"ablation-count", "ablation-parallel", "ablation-queue"} {
		out := runExperiment(t, id)
		if len(out) < 50 {
			t.Errorf("%s output too short:\n%s", id, out)
		}
	}
}

func TestAblationObjectiveOutput(t *testing.T) {
	out := runExperiment(t, "ablation-objective")
	if !strings.Contains(out, "minimal-first (paper)") || !strings.Contains(out, "balanced") {
		t.Errorf("objective ablation output wrong:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		// Inspect the two table rows only (identified by their labels).
		if strings.Contains(line, "minimal-first (paper)") && !strings.Contains(line, "+{ticket_id}") {
			t.Errorf("minimal-first should pick ticket_id: %q", line)
		}
		if strings.Contains(line, "balanced (size") {
			if strings.Contains(line, "+{ticket_id}") {
				t.Errorf("balanced objective picked the key-like repair: %q", line)
			}
			if !strings.Contains(line, "+{service,priority}") {
				t.Errorf("balanced should pick {service, priority}: %q", line)
			}
		}
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll covers every experiment; skipped in -short")
	}
	var buf bytes.Buffer
	if err := RunAll(tinyConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, "==== "+e.ID) {
			t.Errorf("RunAll output missing %s", e.ID)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.scale() != DefaultScale || c.sf() != DefaultSF {
		t.Fatal("zero config must use defaults")
	}
	if (Config{Scale: 5}).scale() != 1 {
		t.Fatal("scale must clamp to 1")
	}
	if c.seed() == 0 {
		t.Fatal("default seed must be non-zero")
	}
	if (Config{Seed: 9}).seed() != 9 {
		t.Fatal("explicit seed must win")
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv("EVOLVEFD_SCALE", "0.5")
	t.Setenv("EVOLVEFD_SF", "0.2")
	t.Setenv("EVOLVEFD_SEED", "123")
	cfg := FromEnv()
	if cfg.Scale != 0.5 || cfg.SF != 0.2 || cfg.Seed != 123 {
		t.Fatalf("FromEnv = %+v", cfg)
	}
	t.Setenv("EVOLVEFD_SCALE", "garbage")
	cfg = FromEnv()
	if cfg.Scale != 0 {
		t.Fatal("garbage env must be ignored")
	}
}

func TestFmtDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{90 * time.Minute, "1h 30m 0s"},
		{2*time.Minute + 3*time.Second, "2m 3s 0ms"},
		{4*time.Second + 678*time.Millisecond, "4s 678ms"},
		{5 * time.Millisecond, "5ms"},
		{250 * time.Microsecond, "250µs"},
	}
	for _, c := range cases {
		if got := fmtDuration(c.d); got != c.want {
			t.Errorf("fmtDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestGridHelpers(t *testing.T) {
	rows := GridRowCounts(1)
	if len(rows) != 7 || rows[0] != 10000 || rows[6] != 70000 {
		t.Fatalf("full-scale grid rows = %v", rows)
	}
	small := GridRowCounts(0.001)
	for _, r := range small {
		if r < 200 {
			t.Fatal("grid floor violated")
		}
	}
	if got := GridAttrCounts(); len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("grid attrs = %v", got)
	}
}
