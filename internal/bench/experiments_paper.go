package bench

import (
	"fmt"
	"io"

	"github.com/evolvefd/evolvefd/internal/cluster"
	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/datasets"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/texttable"
)

func init() {
	register(Experiment{
		ID:    "running-example",
		Title: "§1/§3/§4 running example: measures and repair order on Places",
		Run:   runRunningExample,
	})
	register(Experiment{
		ID:    "table1",
		Title: "Table 1: evolving F1 [District,Region] → [AreaCode]",
		Run: func(cfg Config, w io.Writer) error {
			return runCandidateTable(w, "F1", "District, Region -> AreaCode",
				paperTable1)
		},
	})
	register(Experiment{
		ID:    "table2",
		Title: "Table 2: evolving F4 [District] → [PhNo]",
		Run: func(cfg Config, w io.Writer) error {
			return runCandidateTable(w, "F4", "District -> PhNo", paperTable2)
		},
	})
	register(Experiment{
		ID:    "table3",
		Title: "Table 3: evolving F4+Street [District,Street] → [PhNo]",
		Run: func(cfg Config, w io.Writer) error {
			if err := runCandidateTable(w, "F4Street", "District, Street -> PhNo",
				paperTable3); err != nil {
				return err
			}
			fmt.Fprintln(w, `note: confidences match the paper exactly. The printed goodness column
(4,4,4,4,3) does not follow Definition 3 — it equals |π_XA| − |π_AreaCode|, a
slip carried over from Table 1 (with a further misprint in the City row);
Definition 3 gives the values above. The paper also omits the Region row
although Region ∈ R \ XY. See EXPERIMENTS.md.`)
			return nil
		},
	})
	register(Experiment{
		ID:    "figure2",
		Title: "Figure 2: clusterings of F1, F′ and F″",
		Run:   runFigure2,
	})
}

// paperValue pairs our measured candidate row with the paper's printed one.
type paperValue struct {
	attr string
	conf string // printed confidence, e.g. "4/4 = 1"
	good string // printed goodness
}

var paperTable1 = []paperValue{
	{"Municipal", "4/4 = 1", "0"},
	{"PhNo", "7/7 = 1", "3"},
	{"Street", "7/8 = 0.875", "3"},
	{"Zip", "4/5 = 0.8", "0"},
	{"City", "4/5 = 0.8", "0"},
	{"State", "3/5 = 0.6", "-1"},
}

var paperTable2 = []paperValue{
	{"Street", "0.875", "1"},
	{"Municipal", "0.571", "-2"},
	{"AreaCode", "0.571", "-2"},
	{"City", "0.571", "-2"},
	{"Zip", "0.5", "-2"},
	{"State", "0.429", "-3"},
	{"Region", "0.286", "-4"},
}

var paperTable3 = []paperValue{
	{"Municipal", "1", "4*"},
	{"AreaCode", "1", "4*"},
	{"Zip", "0.889", "4*"},
	{"Region", "(omitted)", "(omitted)"},
	{"City", "0.875", "4*"},
	{"State", "0.875", "3*"},
}

// runCandidateTable regenerates one candidate-ranking table on Places.
func runCandidateTable(w io.Writer, label, spec string, paper []paperValue) error {
	r := datasets.Places()
	counter := pli.NewPLICounter(r)
	fd, err := core.ParseFD(r.Schema(), label, spec)
	if err != nil {
		return err
	}
	cands := core.ExtendByOne(counter, fd, core.CandidateOptions{})
	tab := texttable.New(
		fmt.Sprintf("candidates extending %s", fd.FormatWith(r.Schema())),
		"A", "c_FA (measured)", "g_FA (measured)", "c (paper)", "g (paper)",
	).AlignRight(1, 2, 3, 4)
	paperByAttr := map[string]paperValue{}
	for _, p := range paper {
		paperByAttr[p.attr] = p
	}
	for _, c := range cands {
		name := r.Schema().Column(c.Attr).Name
		p := paperByAttr[name]
		tab.Add(name,
			fmt.Sprintf("%s = %.3g", c.Measures.ConfidenceRatio(), c.Measures.Confidence),
			fmt.Sprintf("%d", c.Measures.Goodness),
			p.conf, p.good)
	}
	_, err = io.WriteString(w, tab.Render())
	return err
}

func runRunningExample(cfg Config, w io.Writer) error {
	r := datasets.Places()
	counter := pli.NewPLICounter(r)
	var fds []core.FD
	for _, label := range []string{"F1", "F2", "F3"} {
		fd, err := core.ParseFD(r.Schema(), label, datasets.PlacesFDs()[label])
		if err != nil {
			return err
		}
		fds = append(fds, fd)
	}
	f4, err := core.ParseFD(r.Schema(), "F4", datasets.PlacesF4())
	if err != nil {
		return err
	}

	tab := texttable.New("measures (paper: c_F1=0.5 g=−2, c_F2=0.667 g=−1, c_F3=0.889 g=1, c_F4=0.29 g=−4)",
		"FD", "definition", "confidence", "goodness", "exact").AlignRight(2, 3)
	for _, fd := range append(fds, f4) {
		m := core.Compute(counter, fd)
		tab.Add(fd.Label, fd.FormatWith(r.Schema()),
			fmt.Sprintf("%s = %.3f", m.ConfidenceRatio(), m.Confidence),
			fmt.Sprintf("%d", m.Goodness),
			fmt.Sprintf("%v", m.Exact()))
	}
	if _, err := io.WriteString(w, tab.Render()); err != nil {
		return err
	}

	ranked := core.OrderFDs(counter, fds, core.ScopeConsequentOnly)
	order := texttable.New("\nrepair order (§4.1; paper prints F1 0.25, F2 0.167, F3 0.056)",
		"position", "FD", "rank O_F").AlignRight(0, 2)
	for i, rf := range ranked {
		order.Add(fmt.Sprintf("%d", i+1), rf.FD.Label, fmt.Sprintf("%.3f", rf.Rank))
	}
	_, err = io.WriteString(w, order.Render())
	return err
}

// runFigure2 renders the three clustering associations of Figure 2 in text
// form.
func runFigure2(cfg Config, w io.Writer) error {
	r := datasets.Places()
	mk := func(names ...string) cluster.Clustering {
		set, err := r.Schema().IndexSet(names...)
		if err != nil {
			panic(err)
		}
		return *cluster.New(r, set)
	}
	y := mk("AreaCode")
	sections := []struct {
		title string
		x     cluster.Clustering
	}{
		{"(a) F1: [District, Region] → [AreaCode]", mk("District", "Region")},
		{"(b) F′: [District, Region, Municipal] → [AreaCode]", mk("District", "Region", "Municipal")},
		{"(c) F″: [District, Region, PhNo] → [AreaCode]", mk("District", "Region", "PhNo")},
	}
	for _, s := range sections {
		if _, err := io.WriteString(w, cluster.RenderAssociation(s.title, &s.x, &y)); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
