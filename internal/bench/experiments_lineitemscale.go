package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/core"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
	"github.com/evolvefd/evolvefd/internal/texttable"
	"github.com/evolvefd/evolvefd/internal/tpch"
)

func init() {
	register(Experiment{
		ID:      "lineitemscale",
		Title:   "columnar partition core on 10M-row lineitem vs legacy per-class slices",
		Run:     runLineitemScale,
		RunJSON: func(cfg Config) (any, error) { return RunLineitemScale(cfg, 0) },
		Render: func(v any, w io.Writer) error {
			res, ok := v.(LineitemScaleResult)
			if !ok {
				return fmt.Errorf("bench: lineitemscale render got %T", v)
			}
			return renderLineitemScale(res, w)
		},
	})
}

// LineitemScaleResult is the machine-readable outcome of the lineitemscale
// experiment (written to BENCH_lineitemscale.json by fdbench -json). The
// before/after pair is the PR's ablation: LegacyFromColumn's one-slice-per-
// class layout against the flat arena + bitmap Partition, on the paper's
// largest table at the paper's "2 hours on lineitem" scale regime.
type LineitemScaleResult struct {
	Rows       int `json:"rows"`
	Cols       int `json:"cols"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// SynthMillis is data generation time (untimed context, recorded so the
	// JSON explains the wall clock of a full run).
	SynthMillis float64 `json:"synth_millis"`
	// FlatBuildMillis / LegacyBuildMillis time single-column partition builds
	// over every attribute of lineitem (the discovery hot loop's substrate).
	// FlatBuildMillis runs at full parallelism (BuildProcs records the actual
	// worker budget); FlatBuildSerialMillis pins GOMAXPROCS to 1 for the same
	// pass, so the sharded build's contribution is attributable rather than
	// folded into one machine-dependent number. The legacy build is inherently
	// serial.
	FlatBuildMillis       float64 `json:"flat_build_millis"`
	FlatBuildSerialMillis float64 `json:"flat_build_serial_millis"`
	BuildProcs            int     `json:"build_procs"`
	LegacyBuildMillis     float64 `json:"legacy_build_millis"`
	BuildSpeedup          float64 `json:"build_speedup"`
	// FlatBytesPerRow / LegacyBytesPerRow total the retained partition bytes
	// across all attributes divided by rows — the storage ablation.
	FlatBytesPerRow   float64 `json:"flat_bytes_per_row"`
	LegacyBytesPerRow float64 `json:"legacy_bytes_per_row"`
	BytesPerRowRatio  float64 `json:"bytes_per_row_ratio"`
	// FlatProductMillis / LegacyProductMillis time the two-attribute product
	// over the Table 5 FD's columns ({l_partkey, l_suppkey}), built from
	// scratch each side (FromSet — column builds included, for cross-PR
	// continuity).
	FlatProductMillis   float64 `json:"flat_product_millis"`
	LegacyProductMillis float64 `json:"legacy_product_millis"`
	// The kernel-level product ablation times exactly one stripped product of
	// the two pre-built FD-pair columns: serial materialising, sharded
	// parallel (ProductProcs workers), count-only, and the probe-scatter
	// fallback with the word kernels ablated. ProductCountOK records the
	// built-in cross-check that the count-only kernel returned the
	// materialised product's class count.
	ProductSerialMillis   float64 `json:"product_serial_millis"`
	ProductParallelMillis float64 `json:"product_parallel_millis"`
	ProductCountMillis    float64 `json:"product_count_millis"`
	ProductProbeMillis    float64 `json:"product_probe_millis"`
	ProductProcs          int     `json:"product_procs"`
	ProductCountOK        bool    `json:"product_count_ok"`
	// DifferentialRows / DifferentialOK report the flat-vs-legacy clustering
	// equality check (run on a reduced prefix when rows is large, so the
	// correctness evidence ships with every JSON result).
	DifferentialRows int  `json:"differential_rows"`
	DifferentialOK   bool `json:"differential_ok"`
	// RepairMillis times the find-all repair of l_partkey → l_suppkey at full
	// parallelism (RepairProcs workers); RepairSerialMillis the same search at
	// Parallelism 1. When the machine has one core the configurations are
	// identical and one measurement serves both.
	RepairMillis       float64 `json:"repair_millis"`
	RepairSerialMillis float64 `json:"repair_serial_millis"`
	RepairProcs        int     `json:"repair_procs"`
	NumRepairs         int     `json:"num_repairs"`
}

// heapUsed settles the collector (two cycles, so pool-cached scratch is
// released too) and returns the live heap.
func heapUsed() uint64 {
	runtime.GC()
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// bestOfTwo times fn twice after settling the collector and keeps the
// faster run, in milliseconds.
func bestOfTwo(fn func()) float64 {
	var best time.Duration
	for rep := 0; rep < 2; rep++ {
		runtime.GC()
		start := time.Now()
		fn()
		if elapsed := time.Since(start); rep == 0 || elapsed < best {
			best = elapsed
		}
	}
	return float64(best.Microseconds()) / 1000
}

// lineitemScaleDefaultRows is the paper-scale row target: 10M rows, past
// TPC-H SF 1's 6M lineitem — the regime whose find-FD-repairs row in Table 5
// the paper reports at hour scale.
const lineitemScaleDefaultRows = 10_000_000

// lineitemFor synthesizes a lineitem table with exactly n rows by solving
// the scale factor backwards (orders/parts/suppliers co-scale, preserving
// the ≈4-lines-per-order and 4-suppliers-per-part shape at every size).
func lineitemFor(n int, seed int64) *relation.Relation {
	sf := (float64(n) + 0.5) / 6_000_000
	return tpch.GenerateTable("lineitem", sf, seed)
}

// lineitemBuildAblation times single-column partition builds over every
// attribute, both layouts, and measures each side's retained bytes/row. Each
// side runs GC-isolated — settle the heap, build all columns retained, then
// diff live heap — so the timing excludes the other side's garbage and the
// bytes/row figure is the true footprint (allocator rounding and
// append-growth slack included, which per-class MemBytes sums miss).
func lineitemBuildAblation(rel *relation.Relation) (flatMillis, legacyMillis, flatBPR, legacyBPR float64) {
	cols := rel.NumCols()
	base := heapUsed()
	flat := make([]*pli.Partition, cols)
	start := time.Now()
	for col := 0; col < cols; col++ {
		flat[col] = pli.FromColumn(rel, col)
	}
	flatMillis = float64(time.Since(start).Microseconds()) / 1000
	flatBPR = float64(heapUsed()-base) / float64(rel.NumRows())
	runtime.KeepAlive(flat)
	flat = nil

	base = heapUsed()
	legacy := make([]*pli.LegacyPartition, cols)
	start = time.Now()
	for col := 0; col < cols; col++ {
		legacy[col] = pli.LegacyFromColumn(rel, col)
	}
	legacyMillis = float64(time.Since(start).Microseconds()) / 1000
	legacyBPR = float64(heapUsed()-base) / float64(rel.NumRows())
	runtime.KeepAlive(legacy)
	return flatMillis, legacyMillis, flatBPR, legacyBPR
}

// lineitemDifferential builds every single-column partition plus the FD
// pair's product both ways and reports whether the clusterings agree.
func lineitemDifferential(r *relation.Relation, pair bitset.Set) bool {
	for col := 0; col < r.NumCols(); col++ {
		if !pli.LegacyFromColumn(r, col).EqualsFlat(pli.FromColumn(r, col)) {
			return false
		}
	}
	return pli.LegacyFromSet(r, pair).EqualsFlat(pli.FromSet(r, pair))
}

// RunLineitemScale times the columnar-vs-legacy partition ablation on a
// synthetic lineitem of the given row count (0 derives it from cfg: Rows
// override first, else 10M scaled by cfg.Scale).
func RunLineitemScale(cfg Config, rows int) (LineitemScaleResult, error) {
	if rows <= 0 {
		rows = cfg.Rows
	}
	if rows <= 0 {
		rows = int(lineitemScaleDefaultRows * cfg.scale() / DefaultScale)
		if rows < 10_000 {
			rows = 10_000
		}
	}
	start := time.Now()
	rel := lineitemFor(rows, cfg.seed())
	res := LineitemScaleResult{
		Rows:        rel.NumRows(),
		Cols:        rel.NumCols(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		SynthMillis: float64(time.Since(start).Microseconds()) / 1000,
	}
	fd, err := core.ParseFD(rel.Schema(), "F1", tpch.Table5FDs()["lineitem"])
	if err != nil {
		return res, err
	}
	pair := fd.X.Union(fd.Y)

	res.BuildProcs = runtime.GOMAXPROCS(0)
	res.FlatBuildMillis, res.LegacyBuildMillis, res.FlatBytesPerRow, res.LegacyBytesPerRow =
		lineitemBuildAblation(rel)
	if res.BuildProcs == 1 {
		// Serial and parallel builds are the same configuration; reuse the
		// measurement instead of paying a second full pass.
		res.FlatBuildSerialMillis = res.FlatBuildMillis
	} else {
		prev := runtime.GOMAXPROCS(1)
		res.FlatBuildSerialMillis, _, _, _ = lineitemBuildAblation(rel)
		runtime.GOMAXPROCS(prev)
	}
	if res.FlatBuildMillis > 0 {
		res.BuildSpeedup = res.LegacyBuildMillis / res.FlatBuildMillis
	}
	if res.FlatBytesPerRow > 0 {
		res.BytesPerRowRatio = res.LegacyBytesPerRow / res.FlatBytesPerRow
	}

	// The FD pair's product — the repair search's unit of work. Best of two
	// GC-settled reps each, damping collector interference from the builds.
	var flatPair *pli.Partition
	var legacyPair *pli.LegacyPartition
	res.FlatProductMillis = bestOfTwo(func() {
		flatPair = pli.FromSet(rel, pair)
	})
	res.LegacyProductMillis = bestOfTwo(func() {
		legacyPair = pli.LegacyFromSet(rel, pair)
	})

	// Kernel-level ablation on the same pair: one stripped product of the two
	// pre-built columns through each dispatch path.
	res.ProductProcs = runtime.GOMAXPROCS(0)
	pairCols := pair.Members()
	pp, pq := pli.FromColumn(rel, pairCols[0]), pli.FromColumn(rel, pairCols[1])
	var serialProduct *pli.Partition
	res.ProductSerialMillis = bestOfTwo(func() { serialProduct = pp.Product(pq, nil) })
	res.ProductParallelMillis = bestOfTwo(func() { pp.ProductParallel(pq, res.ProductProcs) })
	count := 0
	res.ProductCountMillis = bestOfTwo(func() { count = pp.ProductCount(pq, nil) })
	res.ProductCountOK = count == serialProduct.NumClasses()
	prevKernels := pli.SetWordKernels(false)
	res.ProductProbeMillis = bestOfTwo(func() { pp.Product(pq, nil) })
	pli.SetWordKernels(prevKernels)
	if !res.ProductCountOK {
		return res, fmt.Errorf("bench: lineitemscale ProductCount %d diverged from materialised product (%d classes)",
			count, serialProduct.NumClasses())
	}

	// Differential: the full relation when small, a reduced regeneration
	// when the timed run is at scale (the check is O(rows·cols) legacy-side).
	diffRel, diffPair := rel, pair
	if rel.NumRows() > 100_000 {
		diffRel = lineitemFor(50_000, cfg.seed())
	}
	res.DifferentialRows = diffRel.NumRows()
	res.DifferentialOK = lineitemDifferential(diffRel, diffPair) &&
		legacyPair.EqualsFlat(flatPair)
	if !res.DifferentialOK {
		return res, fmt.Errorf("bench: lineitemscale flat/legacy clusterings diverged at %d rows", res.DifferentialRows)
	}

	// Find-all repair of the Table 5 lineitem FD. Two added attributes is
	// the smallest bound with a guaranteed hit ({l_orderkey, l_linenumber}
	// keys the table), and keeps the 10M-row frontier in the minutes range.
	maxAdded := cfg.MaxAdded
	if maxAdded <= 0 {
		maxAdded = 2
	}
	res.RepairProcs = runtime.GOMAXPROCS(0)
	if cfg.Parallelism > 0 {
		res.RepairProcs = cfg.Parallelism
	}
	timeRepair := func(parallelism int) (float64, int) {
		counter := pli.NewPLICounter(rel)
		start := time.Now()
		repair := core.FindRepairs(counter, fd, core.RepairOptions{
			MaxAdded:    maxAdded,
			Parallelism: parallelism,
			Candidates:  core.CandidateOptions{Parallelism: parallelism},
		})
		return float64(time.Since(start).Microseconds()) / 1000, len(repair.Repairs)
	}
	res.RepairMillis, res.NumRepairs = timeRepair(cfg.Parallelism)
	if res.RepairProcs == 1 {
		// One worker is one worker: the serial configuration is identical.
		res.RepairSerialMillis = res.RepairMillis
	} else {
		res.RepairSerialMillis, _ = timeRepair(1)
	}
	if res.NumRepairs == 0 {
		return res, fmt.Errorf("bench: lineitemscale found no repair — dataset shape broken")
	}
	return res, nil
}

// runLineitemScale measures the ablation and renders it.
func runLineitemScale(cfg Config, w io.Writer) error {
	res, err := RunLineitemScale(cfg, 0)
	if err != nil {
		return err
	}
	return renderLineitemScale(res, w)
}

// renderLineitemScale prints the before/after table plus the repair row.
func renderLineitemScale(res LineitemScaleResult, w io.Writer) error {
	tab := texttable.New(
		fmt.Sprintf("columnar partition core on lineitem (%d rows × %d attrs, GOMAXPROCS %d)",
			res.Rows, res.Cols, res.GOMAXPROCS),
		"phase", "legacy", "columnar", "ratio").AlignRight(1, 2, 3)
	tab.Add("single-column builds (16 attrs)",
		fmtDuration(time.Duration(res.LegacyBuildMillis*float64(time.Millisecond))),
		fmtDuration(time.Duration(res.FlatBuildMillis*float64(time.Millisecond))),
		fmt.Sprintf("%.1f×", res.BuildSpeedup))
	tab.Add("partition bytes/row",
		fmt.Sprintf("%.1f B", res.LegacyBytesPerRow),
		fmt.Sprintf("%.1f B", res.FlatBytesPerRow),
		fmt.Sprintf("%.1f×", res.BytesPerRowRatio))
	tab.Add("{l_partkey, l_suppkey} product",
		fmtDuration(time.Duration(res.LegacyProductMillis*float64(time.Millisecond))),
		fmtDuration(time.Duration(res.FlatProductMillis*float64(time.Millisecond))),
		"-")
	if _, err := io.WriteString(w, tab.Render()); err != nil {
		return err
	}
	ms := func(v float64) string { return fmtDuration(time.Duration(v * float64(time.Millisecond))) }
	kernels := texttable.New(
		fmt.Sprintf("product kernels on the FD pair (procs: build %d, product %d, repair %d)",
			res.BuildProcs, res.ProductProcs, res.RepairProcs),
		"path", "time").AlignRight(1)
	kernels.Add("flat build, serial", ms(res.FlatBuildSerialMillis))
	kernels.Add("product, serial", ms(res.ProductSerialMillis))
	kernels.Add("product, sharded parallel", ms(res.ProductParallelMillis))
	kernels.Add("product, count-only", ms(res.ProductCountMillis))
	kernels.Add("product, probe fallback (kernels off)", ms(res.ProductProbeMillis))
	if _, err := io.WriteString(w, kernels.Render()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, `find-all repair of %s (≤2 added attrs): %s parallel, %s serial, %d repairs.
differential: flat and legacy clusterings identical over every attribute and
the FD pair at %d rows; count-only product cross-checked (this run).
`, tpch.Table5FDs()["lineitem"],
		ms(res.RepairMillis), ms(res.RepairSerialMillis),
		res.NumRepairs, res.DifferentialRows)
	return err
}
