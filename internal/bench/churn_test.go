package bench

import (
	"strings"
	"testing"
)

// TestChurnStreamDifferential proves at test scale that the incremental
// counter and a from-scratch counter agree on confidence and goodness for
// every checked FD after every randomized mixed append/delete/update batch,
// and that the final state also agrees with a compacted clone of the live
// rows.
func TestChurnStreamDifferential(t *testing.T) {
	res, err := RunChurnSynthetic(tinyConfig(), 800, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mismatches) != 0 {
		t.Fatalf("incremental measures diverged from scratch:\n%s",
			strings.Join(res.Mismatches, "\n"))
	}
	if res.Appends == 0 || res.Deletes == 0 || res.Updates == 0 {
		t.Fatalf("stream did not mix operations: %+v", res)
	}
	if res.FinalLive != res.Rows+res.Appends-res.Deletes {
		t.Fatalf("live accounting broken: %d final live, %d initial +%d appends -%d deletes",
			res.FinalLive, res.Rows, res.Appends, res.Deletes)
	}
	// Deletes and updates that do not change any projection count must be
	// served from the generation-stamped cache like untouched appends are.
	if res.Reused == 0 {
		t.Error("no measure was ever reused; shrink-aware generation stamps not working")
	}
	if res.Recomputed == 0 {
		t.Error("no measure was ever recomputed; the churn must disturb some FD")
	}
}

// TestChurnSpeedupAcceptance is the PR's acceptance bar: on a 50k-row
// relation taking mixed append/delete/update batches, re-checking all FDs
// through the incrementally-maintained partitions must be at least 5× faster
// than a full PLI rebuild per batch — and agree with it exactly at every
// checkpoint (and with a compacted clone at the end). The measured gap is
// typically orders of magnitude; 5× leaves room for noisy CI machines.
func TestChurnSpeedupAcceptance(t *testing.T) {
	// The incremental side is small, so one unlucky scheduler preemption
	// inside its timing window could sink the ratio on a noisy CI runner;
	// measure up to three times and accept the best run. The differential
	// check is exact and must hold on every attempt.
	var res ChurnResult
	for attempt := 0; attempt < 3; attempt++ {
		r, err := RunChurnSynthetic(Config{Seed: 20160315}, 50000, 150, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Mismatches) != 0 {
			t.Fatalf("differential check failed:\n%s", strings.Join(r.Mismatches, "\n"))
		}
		if r.Rows != 50000 || r.Deletes == 0 || r.Updates == 0 || r.Appends == 0 {
			t.Fatalf("unexpected stream shape: %+v", r)
		}
		if attempt == 0 || r.Speedup > res.Speedup {
			res = r
		}
		if res.Speedup >= 5 {
			break
		}
	}
	if res.Speedup < 5 {
		t.Fatalf("churn re-check speedup = %.1f× (incremental %v, rebuild %v), want ≥ 5×",
			res.Speedup, res.Incremental, res.Rebuild)
	}
	t.Logf("50k-row mixed-DML re-check: incremental %v, full rebuild %v (%.0f× faster), ops +%d/-%d/~%d, reused/recomputed %d/%d",
		res.Incremental, res.Rebuild, res.Speedup,
		res.Appends, res.Deletes, res.Updates, res.Reused, res.Recomputed)
}

func TestChurnExperimentOutput(t *testing.T) {
	out := runExperiment(t, "churn")
	for _, want := range []string{"synthetic", "deletes", "updates", "speedup", "shape check"} {
		if !strings.Contains(out, want) {
			t.Errorf("churn output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "MEASURE MISMATCH") {
		t.Errorf("churn experiment reported mismatches:\n%s", out)
	}
}
