package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"

	"github.com/evolvefd/evolvefd/internal/bitset"
	"github.com/evolvefd/evolvefd/internal/cluster"
	"github.com/evolvefd/evolvefd/internal/entropy"
	"github.com/evolvefd/evolvefd/internal/pli"
	"github.com/evolvefd/evolvefd/internal/relation"
	"github.com/evolvefd/evolvefd/internal/texttable"
)

func init() {
	register(Experiment{
		ID:      "products",
		Title:   "product kernel dispatch ablation: probe scatter vs word AND/popcount, materialise vs count-only",
		Run:     runProducts,
		RunJSON: func(cfg Config) (any, error) { return RunProducts(cfg) },
		Render: func(v any, w io.Writer) error {
			res, ok := v.(ProductsResult)
			if !ok {
				return fmt.Errorf("bench: products render got %T", v)
			}
			return renderProducts(res, w)
		},
	})
}

// ProductKernelCase is one quadrant of the kernel dispatch table, measured on
// a lineitem column pair whose class storage forms select that quadrant.
type ProductKernelCase struct {
	// Name identifies the operand shapes, e.g. "dense×dense".
	Name string `json:"name"`
	// P / Q name the lineitem columns; PDense / QDense count their
	// bitmap-backed classes (0 means pure arena storage).
	P      string `json:"p"`
	Q      string `json:"q"`
	PDense int    `json:"p_dense_classes"`
	QDense int    `json:"q_dense_classes"`
	// ProductNsPerRow / CountNsPerRow / ProbeNsPerRow time one materialising
	// product, one count-only product, and one probe-fallback product (word
	// kernels ablated), normalised per relation row.
	ProductNsPerRow float64 `json:"product_ns_per_row"`
	CountNsPerRow   float64 `json:"count_ns_per_row"`
	ProbeNsPerRow   float64 `json:"probe_ns_per_row"`
	// ParallelNsPerRow times the sharded parallel product at Procs workers.
	ParallelNsPerRow float64 `json:"parallel_ns_per_row"`
	// CountAllocs is the steady-state allocation count of one count-only
	// product (0 for the all-dense quadrant — the pure popcount path).
	CountAllocs float64 `json:"count_allocs"`
	// Classes is the product's class count; the correctness cross-checks
	// (count vs materialised, ablated vs word kernels, entropy from stripped
	// sizes vs cluster-based) all passed when OK is true.
	Classes int  `json:"classes"`
	OK      bool `json:"ok"`
}

// ProductsResult is the machine-readable outcome of the products experiment
// (written to BENCH_products.json by fdbench -json).
type ProductsResult struct {
	Rows  int                 `json:"rows"`
	Procs int                 `json:"procs"`
	Cases []ProductKernelCase `json:"cases"`
}

// productsDefaultRows keeps the ablation in the seconds range: large enough
// that low-cardinality lineitem columns cross the dense-bitmap cut, small
// enough for CI.
const productsDefaultRows = 500_000

// timeNsPerRow times fn (best of two GC-settled reps, in milliseconds) and
// normalises to nanoseconds per relation row.
func timeNsPerRow(rows int, fn func()) float64 {
	return bestOfTwo(fn) * 1e6 / float64(rows)
}

// RunProducts measures every quadrant of the kernel dispatch table on
// synthetic lineitem column pairs and cross-checks each kernel against the
// materialised product.
func RunProducts(cfg Config) (ProductsResult, error) {
	rows := cfg.Rows
	if rows <= 0 {
		rows = int(float64(productsDefaultRows) * cfg.scale() / DefaultScale)
		if rows < 50_000 {
			rows = 50_000
		}
	}
	rel := lineitemFor(rows, cfg.seed())
	res := ProductsResult{Rows: rel.NumRows(), Procs: runtime.GOMAXPROCS(0)}

	// Column picks by storage form: returnflag/linestatus/shipmode have a
	// handful of huge classes (dense bitmaps at this scale); partkey/suppkey
	// are high-cardinality arena-only columns.
	col := func(name string) int { return rel.Schema().Index(name) }
	type pick struct{ name, p, q string }
	picks := []pick{
		{"dense×dense", "l_returnflag", "l_shipmode"},
		{"dense×sparse", "l_returnflag", "l_suppkey"},
		{"sparse×dense", "l_suppkey", "l_returnflag"},
		{"sparse×sparse", "l_partkey", "l_suppkey"},
	}
	for _, pk := range picks {
		pc, qc := col(pk.p), col(pk.q)
		if pc < 0 || qc < 0 {
			return res, fmt.Errorf("bench: products: column %s/%s missing from lineitem", pk.p, pk.q)
		}
		c, err := measureProductCase(rel, pk.name, pk.p, pk.q, pc, qc, res.Procs)
		if err != nil {
			return res, err
		}
		res.Cases = append(res.Cases, c)
	}
	return res, nil
}

// measureProductCase times one column pair through every kernel path and runs
// the correctness cross-checks.
func measureProductCase(rel *relation.Relation, name, pName, qName string, pc, qc, procs int) (ProductKernelCase, error) {
	p, q := pli.FromColumn(rel, pc), pli.FromColumn(rel, qc)
	c := ProductKernelCase{
		Name: name, P: pName, Q: qName,
		PDense: p.NumDenseClasses(), QDense: q.NumDenseClasses(),
	}
	rows := rel.NumRows()

	built := p.Product(q, nil)
	c.Classes = built.NumClasses()
	c.ProductNsPerRow = timeNsPerRow(rows, func() { p.Product(q, nil) })
	c.CountNsPerRow = timeNsPerRow(rows, func() { p.ProductCount(q, nil) })
	c.ParallelNsPerRow = timeNsPerRow(rows, func() { p.ProductParallel(q, procs) })
	prev := pli.SetWordKernels(false)
	probed := p.Product(q, nil)
	probedCount := p.ProductCount(q, nil)
	c.ProbeNsPerRow = timeNsPerRow(rows, func() { p.Product(q, nil) })
	pli.SetWordKernels(prev)
	c.CountAllocs = testingAllocsPerRun(20, func() { p.ProductCount(q, nil) })

	// Cross-checks: every path lands on the same clustering and count, and the
	// stripped-size entropy matches the cluster-based computation on the
	// product's attribute pair.
	countOK := p.ProductCount(q, nil) == c.Classes && probedCount == c.Classes
	clusteringOK := built.EqualPartition(probed) && built.EqualPartition(p.ProductParallel(q, procs))
	hSizes := entropy.OfClassSizes(p.ProductStrippedSizes(q, nil), built.NumRows())
	hCluster := entropy.Entropy(cluster.New(rel, bitset.New(pc, qc)))
	entropyOK := math.Abs(hSizes-hCluster) < 1e-6
	c.OK = countOK && clusteringOK && entropyOK
	if !c.OK {
		return c, fmt.Errorf("bench: products %s cross-check failed (count %v, clustering %v, entropy %v: %.9f vs %.9f)",
			name, countOK, clusteringOK, entropyOK, hSizes, hCluster)
	}
	return c, nil
}

// testingAllocsPerRun mirrors testing.AllocsPerRun without importing the
// testing package into a non-test binary.
func testingAllocsPerRun(runs int, fn func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn() // warm pools and caches
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// runProducts measures the ablation and renders it.
func runProducts(cfg Config, w io.Writer) error {
	res, err := RunProducts(cfg)
	if err != nil {
		return err
	}
	return renderProducts(res, w)
}

func renderProducts(res ProductsResult, w io.Writer) error {
	tab := texttable.New(
		fmt.Sprintf("product kernels on lineitem (%d rows, %d procs; ns/row, best of two)", res.Rows, res.Procs),
		"quadrant", "pair", "probe", "product", "parallel", "count", "count allocs").
		AlignRight(2, 3, 4, 5, 6)
	for _, c := range res.Cases {
		tab.Add(c.Name,
			fmt.Sprintf("%s·%s", c.P, c.Q),
			fmt.Sprintf("%.2f", c.ProbeNsPerRow),
			fmt.Sprintf("%.2f", c.ProductNsPerRow),
			fmt.Sprintf("%.2f", c.ParallelNsPerRow),
			fmt.Sprintf("%.2f", c.CountNsPerRow),
			fmt.Sprintf("%.0f", c.CountAllocs))
	}
	if _, err := io.WriteString(w, tab.Render()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, `every case cross-checked this run: count-only equals the materialised class
count, ablated and parallel products induce identical clusterings, and the
stripped-size entropy matches the cluster-based computation.
`)
	return err
}
