package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	evolvefd "github.com/evolvefd/evolvefd"
	"github.com/evolvefd/evolvefd/internal/datasets"
	"github.com/evolvefd/evolvefd/internal/relation"
	"github.com/evolvefd/evolvefd/internal/texttable"
	"github.com/evolvefd/evolvefd/internal/wal"
)

func init() {
	register(Experiment{
		ID:    "recovery",
		Title: "crash recovery: snapshot + log-tail replay vs full state rebuild",
		Run:   runRecovery,
		RunJSON: func(cfg Config) (any, error) {
			rows, tail := recoveryParams(cfg)
			return RunRecovery(cfg, rows, tail)
		},
		Render: func(v any, w io.Writer) error {
			res, ok := v.(RecoveryResult)
			if !ok {
				return fmt.Errorf("bench: recovery render got %T", v)
			}
			return renderRecovery(res, w)
		},
	})
}

// RecoveryResult measures one crash-recovery run: a durable session
// checkpoints (snapshot with discovery borders), absorbs a logged mutation
// tail, and dies; recovery via OpenSession (decode snapshot, replay tail,
// re-validate borders — O(snapshot + tail)) races a full rebuild from the
// raw tuples (re-intern, recompute every measure, re-search the discovery
// lattice — O(history + lattice)), with a differential asserting both land
// on identical advisor state.
type RecoveryResult struct {
	Dataset string
	// Rows is the instance size at the checkpoint; LiveRows the live tuples
	// at the crash; TailOps the logged mutations recovery must replay.
	Rows, LiveRows, TailOps int
	// NumFDs counts the defined dependencies; CoverSize the discovered
	// minimal cover both routes must agree on.
	NumFDs, CoverSize int
	// SnapshotBytes and LogBytes are the on-disk footprint recovery reads.
	SnapshotBytes, LogBytes int64
	// Recover times OpenSession + the cover refresh (border re-validation)
	// + serving every defined FD's measures; Rebuild times reaching the same
	// advisor-ready state from the raw tuples alone. Speedup is
	// Rebuild / Recover.
	Recover, Rebuild time.Duration
	Speedup          float64
	// Mismatches lists any divergence between the recovered and rebuilt
	// sessions — measures, repair suggestions, or the minimal cover; must
	// stay empty.
	Mismatches []string
}

// recoveryParams scales the experiment: 50k rows at default scale with a
// log tail mutating 2% of the instance (rows/50) since the checkpoint.
func recoveryParams(cfg Config) (rows, tail int) {
	rows = int(50000 * cfg.scale() / DefaultScale)
	if rows < 1500 {
		rows = 1500
	}
	return rows, rows / 50
}

// recoveryLiveRow picks a random live row id, deterministically under rng.
func recoveryLiveRow(rng *rand.Rand, r *evolvefd.Relation) int {
	for {
		row := rng.Intn(r.NumRows())
		if !r.IsDeleted(row) {
			return row
		}
	}
}

// writeRecoveryCSV materializes the live tuples of r as a CSV file — the
// "original source" a rebuild without durable state would re-ingest.
func writeRecoveryCSV(path string, r *evolvefd.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	schema := r.Schema()
	header := make([]string, schema.Len())
	for i := range header {
		header[i] = schema.Column(i).Name
	}
	if err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	for row := 0; row < r.NumRows(); row++ {
		if r.IsDeleted(row) {
			continue
		}
		if err := w.Write(recoveryRowCells(r, row)); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func recoveryRowCells(pool *evolvefd.Relation, row int) []string {
	cells := make([]string, pool.NumCols())
	for col := range cells {
		cells[col] = pool.Value(row, col).String()
	}
	return cells
}

// RunRecovery builds a durable session over a rows-row synthetic instance
// with the incremental experiment's planted FDs, seeds the incremental
// discoverer, checkpoints, logs tailOps further mutations, closes, and then
// times crash recovery against a full rebuild of the same end state.
func RunRecovery(cfg Config, rows, tailOps int) (RecoveryResult, error) {
	const maxLHS = 2
	res := RecoveryResult{Dataset: "synthetic", Rows: rows, TailOps: tailOps}
	dir, err := os.MkdirTemp("", "evolvefd-recovery-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	dataDir := filepath.Join(dir, "data")

	pool := datasets.Synthesize("recovery", rows+tailOps, cfg.seed(), incrementalSpecs())
	fdSpecs := incrementalFDSpecs()
	res.NumFDs = len(fdSpecs)
	// Group commit + no fsync: the experiment measures recovery, so the
	// load phase must not be fsync-bound.
	opts := evolvefd.DurabilityOptions{GroupCommit: 256, NoFsync: true}
	s, err := evolvefd.NewDurableSession(
		datasets.Synthesize("recovery", rows, cfg.seed(), incrementalSpecs()), dataDir, opts)
	if err != nil {
		return res, err
	}
	labels := make([]string, len(fdSpecs))
	for i, spec := range fdSpecs {
		labels[i] = fmt.Sprintf("F%d", i+1)
		if err := s.Define(labels[i], spec); err != nil {
			return res, err
		}
	}
	if _, err := s.DiscoverIncremental(evolvefd.DiscoveryOptions{MaxLHS: maxLHS}); err != nil {
		return res, err
	}
	// Checkpoint: the snapshot carries the relation segments, the defined
	// FDs and the discovery borders; everything after it lands in the log.
	s.Compact()
	rng := rand.New(rand.NewSource(cfg.seed() + 2))
	next := rows
	for i := 0; i < tailOps; i++ {
		switch roll := rng.Intn(100); {
		case roll < 50 && next < pool.NumRows():
			err = s.AppendStrings(recoveryRowCells(pool, next)...)
			next++
		case roll < 75:
			err = s.Delete(recoveryLiveRow(rng, s.Relation()))
		default:
			err = s.UpdateStrings(recoveryLiveRow(rng, s.Relation()),
				recoveryRowCells(pool, rows+rng.Intn(tailOps))...)
		}
		if err != nil {
			return res, err
		}
	}
	if err := s.Close(); err != nil {
		return res, err
	}
	res.LiveRows = s.LiveRows()
	snaps, logs, err := wal.ListStates(dataDir)
	if err != nil {
		return res, err
	}
	for _, seq := range snaps {
		if st, err := os.Stat(wal.SnapshotPath(dataDir, seq)); err == nil {
			res.SnapshotBytes += st.Size()
		}
	}
	for _, seq := range logs {
		if st, err := os.Stat(wal.LogPath(dataDir, seq)); err == nil {
			res.LogBytes += st.Size()
		}
	}

	// Route 1 — crash recovery: decode the snapshot (interned columns,
	// tombstones, epoch and tracked partition indexes intact), replay only
	// the post-checkpoint log tail through the ordinary session methods,
	// and re-validate the imported discovery borders. The session is
	// advisor-ready once the cover is back and every defined FD's measures
	// are served — the imported indexes answer those without refolding.
	labelsMeasures := func(s *evolvefd.Session) ([]evolvefd.Measures, error) {
		ms := make([]evolvefd.Measures, len(labels))
		for i, label := range labels {
			var err error
			if ms[i], err = s.Measures(label); err != nil {
				return nil, err
			}
		}
		return ms, nil
	}
	// Collect load-phase garbage outside both timing windows so neither
	// route pays for the other's allocations.
	runtime.GC()
	start := time.Now()
	rec, err := evolvefd.OpenSessionOptions(dataDir, opts)
	if err != nil {
		return res, err
	}
	recCover, err := rec.DiscoverIncremental(evolvefd.DiscoveryOptions{MaxLHS: maxLHS})
	if err != nil {
		return res, err
	}
	recMeasures, err := labelsMeasures(rec)
	if err != nil {
		return res, err
	}
	res.Recover = time.Since(start)
	res.CoverSize = len(recCover)
	rec.Close()

	// Route 2 — full rebuild: the same advisor-ready state with no durable
	// session state at all, the way a restarted process without the WAL
	// would have to get there — re-ingest the source CSV (parse and
	// re-intern every cell), rebuild the defined FDs' partitions and
	// re-search the whole discovery lattice. Writing the source file is
	// untimed: it stands in for the original data file a real deployment
	// already has on disk.
	final := rec.Relation()
	csvPath := filepath.Join(dir, "source.csv")
	if err := writeRecoveryCSV(csvPath, final); err != nil {
		return res, err
	}
	runtime.GC()
	start = time.Now()
	reb, err := relation.ReadCSVFile(csvPath, relation.CSVOptions{})
	if err != nil {
		return res, err
	}
	rb := evolvefd.NewSession(reb)
	for i, spec := range fdSpecs {
		if err := rb.Define(labels[i], spec); err != nil {
			return res, err
		}
	}
	rbCover, err := rb.DiscoverIncremental(evolvefd.DiscoveryOptions{MaxLHS: maxLHS})
	if err != nil {
		return res, err
	}
	rbMeasures, err := labelsMeasures(rb)
	if err != nil {
		return res, err
	}
	res.Rebuild = time.Since(start)
	if res.Recover > 0 {
		res.Speedup = float64(res.Rebuild) / float64(res.Recover)
	}

	// Differential (untimed): the recovered session and the rebuilt one
	// must agree on every advisor observable.
	for i, label := range labels {
		if recMeasures[i] != rbMeasures[i] {
			res.Mismatches = append(res.Mismatches, fmt.Sprintf(
				"%s: measures %+v recovered, %+v rebuilt", label, recMeasures[i], rbMeasures[i]))
		}
	}
	if !reflect.DeepEqual(recCover, rbCover) {
		res.Mismatches = append(res.Mismatches, fmt.Sprintf(
			"minimal cover diverged: recovered %v, rebuilt %v", recCover, rbCover))
	}
	// F2 ("district -> area") is violated by construction; its ranked
	// repairs must be identical too.
	recRepair, err1 := rec.Repair(labels[1], evolvefd.DefaultOptions())
	rbRepair, err2 := rb.Repair(labels[1], evolvefd.DefaultOptions())
	if err1 != nil || err2 != nil {
		return res, fmt.Errorf("repair differential: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(recRepair, rbRepair) {
		res.Mismatches = append(res.Mismatches, fmt.Sprintf(
			"repair of %s diverged: recovered %+v, rebuilt %+v", labels[1], recRepair, rbRepair))
	}
	return res, nil
}

// renderRecovery writes the experiment's report table and shape notes.
func renderRecovery(res RecoveryResult, w io.Writer) error {
	tab := texttable.New(
		"crash recovery vs full rebuild",
		"dataset", "rows", "live", "tail ops", "cover",
		"snapshot", "log", "recover", "rebuild", "speedup",
	).AlignRight(1, 2, 3, 5, 6, 9)
	tab.Add(res.Dataset,
		fmt.Sprintf("%d", res.Rows),
		fmt.Sprintf("%d", res.LiveRows),
		fmt.Sprintf("%d", res.TailOps),
		fmt.Sprintf("%d FDs", res.CoverSize),
		fmt.Sprintf("%d B", res.SnapshotBytes),
		fmt.Sprintf("%d B", res.LogBytes),
		fmtDuration(res.Recover),
		fmtDuration(res.Rebuild),
		fmt.Sprintf("%.1f×", res.Speedup))
	if _, err := io.WriteString(w, tab.Render()); err != nil {
		return err
	}
	for _, m := range res.Mismatches {
		fmt.Fprintln(w, "STATE MISMATCH:", m)
	}
	_, err := fmt.Fprintln(w, `shape check: recovery decodes the columnar snapshot (codes, tombstones and
epoch intact), replays only the post-checkpoint log tail, and re-validates
the imported discovery borders with O(border) probes; the rebuild side
re-interns every value, recomputes every measure from fresh partitions and
re-searches the whole lattice. The differential lines must list no
mismatches.`)
	return err
}

// runRecovery renders the experiment at the configured scale.
func runRecovery(cfg Config, w io.Writer) error {
	rows, tail := recoveryParams(cfg)
	res, err := RunRecovery(cfg, rows, tail)
	if err != nil {
		return err
	}
	return renderRecovery(res, w)
}
